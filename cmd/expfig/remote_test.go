package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
)

// TestRemoteSpecMatchesLocal runs the same spec file through the local
// -spec path and through -remote against a simd daemon, and requires
// byte-equal JSON exports from the shared sink pipeline.
func TestRemoteSpecMatchesLocal(t *testing.T) {
	srv := service.New(service.Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	}()

	dir := t.TempDir()
	specPath := filepath.Join(dir, "run.json")
	spec := sim.RunSpec{
		Workload:     sim.WorkloadSpec{Kind: "smalljob", Seed: 1002, DurationSec: 7200},
		Racks:        2,
		Policies:     []string{"SHUT", "DVFS"},
		CapFractions: []float64{0.6},
	}
	if err := sim.WriteSpecFile(specPath, spec.Normalize()); err != nil {
		t.Fatal(err)
	}

	localJSON := filepath.Join(dir, "local.json")
	remoteJSON := filepath.Join(dir, "remote.json")
	if err := run([]string{"-spec", specPath, "-json", localJSON}, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	var remoteOut bytes.Buffer
	if err := run([]string{"-spec", specPath, "-remote", ts.URL, "-json", remoteJSON}, &remoteOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(remoteOut.String(), "submitted sweep run") {
		t.Errorf("remote output missing submission line:\n%s", remoteOut.String())
	}

	a, err := os.ReadFile(localJSON)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(remoteJSON)
	if err != nil {
		t.Fatal(err)
	}
	// Sweep exports carry wall-clock fields; compare with timings
	// stripped via the deterministic fingerprint instead of bytes.
	if fpA, fpB := sweepFingerprint(t, a), sweepFingerprint(t, b); fpA != fpB {
		t.Errorf("remote sweep results differ from local: %s vs %s", fpA, fpB)
	}

	if st := srv.Stats(); st.Executions != 1 {
		t.Errorf("daemon executed %d times, want 1", st.Executions)
	}
}

// sweepFingerprint hashes a sweep JSON export with the wall-clock
// fields stripped — the deterministic content two runs of one spec must
// agree on.
func sweepFingerprint(t *testing.T, raw []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("bad sweep JSON: %v\n%.300s", err, raw)
	}
	stripElapsed(v)
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func stripElapsed(v any) {
	switch x := v.(type) {
	case map[string]any:
		delete(x, "elapsed_ms")
		delete(x, "serial_cost_ms")
		delete(x, "speedup")
		for _, vv := range x {
			stripElapsed(vv)
		}
	case []any:
		for _, vv := range x {
			stripElapsed(vv)
		}
	}
}

// TestRemoteStaticFigureRejected: static tables have no spec to submit.
func TestRemoteStaticFigureRejected(t *testing.T) {
	err := run([]string{"-fig", "2", "-remote", "http://localhost:1"}, new(bytes.Buffer))
	if err == nil || !strings.Contains(err.Error(), "static table") {
		t.Errorf("static figure over -remote: err = %v", err)
	}
}
