// Federation walkthrough: a three-cluster site under one shared power
// budget, replayed twice — once with the static pro-rata division and
// once with demand-driven reallocation — to show where the watts go
// and what the reallocation buys. Member 0 replays the bursty library
// interval (backlogged during every burst); members 1-2 are lightly
// loaded and spend most of the run donating their headroom. Both cells
// are described by one declarative sim.RunSpec (a federation sweep
// over the division axis) and executed through the facade.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/federation"
	"repro/internal/sim"
)

func main() {
	racks := flag.Int("racks", 2, "racks per member cluster (56 = full Curie)")
	members := flag.Int("members", 3, "member clusters in the federation")
	capFrac := flag.Float64("cap", 0.5, "site budget as a fraction of the summed member max draw")
	flag.Parse()

	fmt.Printf("federating %d members (%d racks each) under a %.0f%% site budget\n\n",
		*members, *racks, *capFrac*100)

	spec := sim.RunSpec{
		Name:         "federation-walkthrough",
		Racks:        *racks,
		CapFractions: []float64{*capFrac},
		Federation: &sim.FederationSpec{
			MemberCounts: []int{*members},
			Divisions:    []string{"prorata", "demand"},
		},
	}
	rep, err := sim.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}

	var results [2]federation.Result
	for i, row := range rep.FederationTable.Rows {
		r := row.Result
		if r.Err != nil {
			log.Fatalf("%s failed: %v", r.Scenario.Name, r.Err)
		}
		results[i] = r

		fmt.Printf("== %s division: aggregate BSLD %.2f, mean wait %.0fs, peak site draw %v of %v\n",
			r.Scenario.Division, r.MeanBSLD, r.MeanWaitSec, r.PeakGlobalW, r.GlobalBudgetW)
		for _, m := range r.Members {
			s := m.Summary
			fmt.Printf("   %-24s bsld %6.2f  wait %5.0fs  launched %4d/%-4d  final cap %v\n",
				m.Name, s.MeanBSLD, s.MeanWaitSec, s.JobsLaunched, s.JobsSubmitted, m.FinalCapW)
		}
		fmt.Println()
	}

	pro, dem := results[0], results[1]
	fmt.Println("how the demand division moved the budget (member-0 cap at epoch boundaries):")
	step := (len(dem.Epochs) + 7) / 8
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(dem.Epochs); i += step {
		ep := dem.Epochs[i]
		bar := int(float64(ep.CapW[0]) / float64(dem.GlobalBudgetW) * 60)
		fmt.Printf("  t=%6d %-8s %v\n", ep.T, bars(bar), ep.CapW[0])
	}
	fmt.Println()
	if pro.JobsLaunched < pro.JobsSubmitted || dem.JobsLaunched < dem.JobsSubmitted {
		// A starved run's mean BSLD skips the jobs it never launched,
		// so the stretch averages are not comparable; compare what each
		// division actually got done instead.
		fmt.Printf("launched %d/%d (pro-rata) vs %d/%d (demand) — a run that leaves jobs\n",
			pro.JobsLaunched, pro.JobsSubmitted, dem.JobsLaunched, dem.JobsSubmitted)
		fmt.Println("unlaunched censors its stretch average; grow -racks or the horizon for a")
		fmt.Println("fair BSLD comparison (the default scale drains fully under both).")
		return
	}
	if pro.MeanBSLD > 0 {
		fmt.Printf("aggregate stretch: %.2f (pro-rata) -> %.2f (demand), %.0f%% better —\n",
			pro.MeanBSLD, dem.MeanBSLD, (1-dem.MeanBSLD/pro.MeanBSLD)*100)
		fmt.Println("idle members' headroom turns into earlier launches on the bursty member,")
		fmt.Println("while the summed draw never exceeds the site budget.")
	}
}

func bars(n int) string {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
