package reservation

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/power"
)

func TestAddPowerCapValidation(t *testing.T) {
	b := NewBook()
	if _, err := b.AddPowerCap(10, 10, power.CapWatts(100)); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := b.AddPowerCap(10, 5, power.CapWatts(100)); err == nil {
		t.Error("inverted window accepted")
	}
	if _, err := b.AddPowerCap(0, 10, power.NoCap); err == nil {
		t.Error("unset cap accepted")
	}
	id, err := b.AddPowerCap(0, Horizon, power.CapWatts(100))
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Error("zero reservation ID")
	}
}

func TestCapAt(t *testing.T) {
	b := NewBook()
	mustCap(t, b, 100, 200, 500)
	mustCap(t, b, 150, 300, 300)

	cases := []struct {
		t    int64
		want power.Cap
	}{
		{50, power.NoCap},
		{100, power.CapWatts(500)},
		{149, power.CapWatts(500)},
		{150, power.CapWatts(300)}, // overlapping: tightest wins
		{199, power.CapWatts(300)},
		{200, power.CapWatts(300)},
		{299, power.CapWatts(300)},
		{300, power.NoCap}, // End is exclusive
	}
	for _, tc := range cases {
		if got := b.CapAt(tc.t); got != tc.want {
			t.Errorf("CapAt(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func mustCap(t *testing.T, b *Book, start, end int64, w power.Watts) int {
	t.Helper()
	id, err := b.AddPowerCap(start, end, power.CapWatts(w))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestMinCapOver(t *testing.T) {
	b := NewBook()
	mustCap(t, b, 100, 200, 500)
	mustCap(t, b, 400, 500, 200)

	if got := b.MinCapOver(0, 50); got.IsSet() {
		t.Errorf("span before any window capped: %v", got)
	}
	if got := b.MinCapOver(0, 150); got != power.CapWatts(500) {
		t.Errorf("span into first window = %v", got)
	}
	if got := b.MinCapOver(0, 450); got != power.CapWatts(200) {
		t.Errorf("span across both = %v, want tightest 200", got)
	}
	if got := b.MinCapOver(200, 400); got.IsSet() {
		t.Errorf("gap span capped: %v", got)
	}
	// Touching boundaries exactly does not overlap.
	if got := b.MinCapOver(500, 600); got.IsSet() {
		t.Errorf("span after window capped: %v", got)
	}
}

func TestOpenEndedCap(t *testing.T) {
	b := NewBook()
	if _, err := b.AddPowerCap(100, Horizon, power.CapWatts(700)); err != nil {
		t.Fatal(err)
	}
	if got := b.CapAt(1 << 50); got != power.CapWatts(700) {
		t.Errorf("open-ended cap at far future = %v", got)
	}
	if got := b.MinCapOver(99, 100); got.IsSet() {
		t.Errorf("span ending at start capped: %v", got)
	}
}

func TestSwitchOffValidationAndCopy(t *testing.T) {
	b := NewBook()
	if _, err := b.AddSwitchOff(5, 5, []cluster.NodeID{1}); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := b.AddSwitchOff(0, 5, nil); err == nil {
		t.Error("empty node set accepted")
	}
	nodes := []cluster.NodeID{1, 2}
	if _, err := b.AddSwitchOff(0, 5, nodes); err != nil {
		t.Fatal(err)
	}
	nodes[0] = 99 // the book must hold a copy
	offs := b.SwitchOffs()
	if len(offs) != 1 || offs[0].Nodes[0] != 1 {
		t.Errorf("book aliases the caller's slice: %+v", offs)
	}
	offs[0].Nodes[0] = 77 // and the accessor returns a copy too
	if b.SwitchOffs()[0].Nodes[0] != 1 {
		t.Error("SwitchOffs aliases the book's slice")
	}
}

func TestNodeBlockedDrainSemantics(t *testing.T) {
	b := NewBook()
	if _, err := b.AddSwitchOff(100, 200, []cluster.NodeID{5, 6}); err != nil {
		t.Fatal(err)
	}
	// lead = 0: the reservation only refuses work once its window opens.
	if !b.NodeBlocked(5, 150, 160, 0) {
		t.Error("node inside window not blocked")
	}
	if b.NodeBlocked(5, 50, 101, 0) {
		t.Error("pre-window job blocked with zero lead (drain semantics)")
	}
	if b.NodeBlocked(5, 50, 100, 0) {
		t.Error("job ending exactly at window start blocked")
	}
	if b.NodeBlocked(5, 200, 300, 0) {
		t.Error("job starting at window end blocked")
	}
	if b.NodeBlocked(7, 150, 160, 0) {
		t.Error("unreserved node blocked")
	}
}

func TestNodeBlockedWithLead(t *testing.T) {
	b := NewBook()
	if _, err := b.AddSwitchOff(100, 200, []cluster.NodeID{5}); err != nil {
		t.Fatal(err)
	}
	// lead = 30: allocations within 30 s of the window that overlap it
	// are refused; earlier ones are not.
	if !b.NodeBlocked(5, 80, 150, 30) {
		t.Error("overlapping job within the lead not blocked")
	}
	if b.NodeBlocked(5, 60, 150, 30) {
		t.Error("overlapping job before the lead blocked")
	}
	// Non-overlapping spans are never blocked regardless of lead.
	if b.NodeBlocked(5, 80, 100, 1<<40) {
		t.Error("non-overlapping job blocked by a huge lead")
	}
}

func TestRemove(t *testing.T) {
	b := NewBook()
	idCap := mustCap(t, b, 0, 100, 500)
	idOff, err := b.AddSwitchOff(0, 100, []cluster.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	b.Remove(idCap)
	if b.CapAt(50).IsSet() {
		t.Error("removed cap still active")
	}
	b.Remove(idOff)
	if b.NodeBlocked(1, 0, 100, 1<<40) {
		t.Error("removed switch-off still blocks")
	}
	b.Remove(424242) // unknown ID: no-op
}

func TestBoundaries(t *testing.T) {
	b := NewBook()
	mustCap(t, b, 100, 200, 500)
	if _, err := b.AddSwitchOff(100, 250, []cluster.NodeID{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddPowerCap(300, Horizon, power.CapWatts(10)); err != nil {
		t.Fatal(err)
	}
	got := b.Boundaries(0)
	want := []int64{100, 200, 250, 300}
	if len(got) != len(want) {
		t.Fatalf("Boundaries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Boundaries = %v, want %v", got, want)
		}
	}
	// Strictly-after filter and deduplication.
	got = b.Boundaries(200)
	if len(got) != 2 || got[0] != 250 || got[1] != 300 {
		t.Errorf("Boundaries(200) = %v, want [250 300]", got)
	}
}

func TestUpdateCap(t *testing.T) {
	b := NewBook()
	id := mustCap(t, b, 0, Horizon, 500)
	if err := b.UpdateCap(id, power.CapWatts(300)); err != nil {
		t.Fatal(err)
	}
	if got := b.CapAt(10).Watts(); got != 300 {
		t.Errorf("CapAt after update = %v, want 300", got)
	}
	// The window keeps its span: still open-ended.
	if got := b.CapAt(1 << 40).Watts(); got != 300 {
		t.Errorf("CapAt far future = %v, want 300", got)
	}
	if err := b.UpdateCap(id, power.NoCap); err == nil {
		t.Error("UpdateCap with unset cap: want error")
	}
	if err := b.UpdateCap(424242, power.CapWatts(100)); err == nil {
		t.Error("UpdateCap of unknown ID: want error")
	}
	// Switch-off IDs are not powercaps.
	offID, err := b.AddSwitchOff(0, 100, []cluster.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.UpdateCap(offID, power.CapWatts(100)); err == nil {
		t.Error("UpdateCap of a switch-off ID: want error")
	}
}
