package invariant

import (
	"testing"

	"repro/internal/federation"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/replay"
	"repro/internal/rjms"
)

// TestLibraryScenariosHoldInvariants is the single-cluster property
// sweep: every workload kind of the scenario library, under the
// uncapped baseline and every {60%, 40%} x {SHUT, DVFS, MIX} cell,
// must hold the cap-safety, node and lifecycle invariants at every
// sample.
func TestLibraryScenariosHoldInvariants(t *testing.T) {
	scens := replay.LibraryScenarios(1)
	if testing.Short() {
		scens = scens[:7]
	}
	for _, s := range scens {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			var k *Checker
			r := replay.RunWith(s, func(ctl *rjms.Controller) {
				k = Attach(ctl, s.Name)
			})
			if r.Err != nil {
				t.Fatalf("replay failed: %v", r.Err)
			}
			reportViolations(t, k)
		})
	}
}

// TestFederationHoldsInvariants attaches one checker per member and
// runs both division policies: redistribution must never break a
// member's local contracts.
func TestFederationHoldsInvariants(t *testing.T) {
	for _, div := range []replay.Division{replay.DivideProRata, replay.DivideDemand} {
		div := div
		t.Run(div.String(), func(t *testing.T) {
			fs := replay.FederationLibraryScenario(3, 2, 0.5, div)
			var checkers []*Checker
			r := federation.RunWith(fs, func(i int, name string, ctl *rjms.Controller) {
				checkers = append(checkers, Attach(ctl, name))
			})
			if r.Err != nil {
				t.Fatalf("federation failed: %v", r.Err)
			}
			if len(checkers) != len(fs.Members) {
				t.Fatalf("attached %d checkers, want %d", len(checkers), len(fs.Members))
			}
			for _, k := range checkers {
				reportViolations(t, k)
			}
		})
	}
}

// TestKillOnOverrunHoldsInvariants covers the extreme-actions path:
// kills must keep the bookkeeping consistent too.
func TestKillOnOverrunHoldsInvariants(t *testing.T) {
	s := replay.Scenario{
		Name:          "killer",
		Workload:      replay.LibraryScenarios(2)[0].Workload,
		Policy:        replay.LibraryScenarios(2)[8].Policy, // a capped cell's policy
		CapFraction:   0.4,
		ScaleRacks:    2,
		KillOnOverrun: true,
	}
	var k *Checker
	r := replay.RunWith(s, func(ctl *rjms.Controller) { k = Attach(ctl, s.Name) })
	if r.Err != nil {
		t.Fatalf("replay failed: %v", r.Err)
	}
	reportViolations(t, k)
}

func reportViolations(t *testing.T, k *Checker) {
	t.Helper()
	for _, v := range k.Violations() {
		t.Error(v)
	}
	if n := k.Dropped(); n > 0 {
		t.Errorf("%d further violations dropped", n)
	}
}

// TestLegalObserved pins the sampled-lifecycle relation.
func TestLegalObserved(t *testing.T) {
	cases := []struct {
		from, to job.State
		want     bool
	}{
		{job.StatePending, job.StatePending, true},
		{job.StatePending, job.StateRunning, true},
		{job.StatePending, job.StateCompleted, true}, // ran between samples
		{job.StatePending, job.StateKilled, true},
		{job.StateRunning, job.StateRunning, true},
		{job.StateRunning, job.StateCompleted, true},
		{job.StateRunning, job.StateKilled, true},
		{job.StateRunning, job.StatePending, false}, // regression
		{job.StateCompleted, job.StateRunning, false},
		{job.StateCompleted, job.StatePending, false},
		{job.StateCompleted, job.StateCompleted, true},
		{job.StateKilled, job.StateKilled, true},
		{job.StateKilled, job.StateCompleted, false},
	}
	for _, c := range cases {
		if got := LegalObserved(c.from, c.to); got != c.want {
			t.Errorf("LegalObserved(%v, %v) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

// TestCapRule drives checkCap directly with crafted samples to pin the
// monotone cap-approach rule, including the violations no healthy run
// produces.
func TestCapRule(t *testing.T) {
	feed := func(k *Checker, samples ...metrics.Sample) {
		for i, s := range samples {
			k.checkCap(int64(i)*120, s)
		}
	}
	cap := power.Watts(1000)

	k := &Checker{name: "rule", seen: map[job.ID]job.State{}}
	feed(k,
		metrics.Sample{Power: 800, Cap: cap},
		metrics.Sample{Power: 950, Cap: cap},  // rising under the cap: fine
		metrics.Sample{Power: 1200, Cap: cap}, // crossed above: violation
	)
	if k.Err() == nil {
		t.Error("crossing above the cap not reported")
	}

	k = &Checker{name: "drain", seen: map[job.ID]job.State{}}
	feed(k,
		metrics.Sample{Power: 1500, Cap: 0},   // uncapped
		metrics.Sample{Power: 1400, Cap: cap}, // window opened over running work: tolerated
		metrics.Sample{Power: 1200, Cap: cap}, // draining: fine
		metrics.Sample{Power: 1300, Cap: cap}, // rising while above: violation
	)
	if k.Err() == nil {
		t.Error("rising above the cap not reported")
	}

	k = &Checker{name: "tighten", seen: map[job.ID]job.State{}}
	feed(k,
		metrics.Sample{Power: 900, Cap: cap},
		metrics.Sample{Power: 900, Cap: 700}, // cap tightened over the draw: tolerated once
		metrics.Sample{Power: 650, Cap: 700},
		metrics.Sample{Power: 690, Cap: 700}, // re-launching under the new cap: fine
	)
	if err := k.Err(); err != nil {
		t.Errorf("legal tighten-and-drain reported: %v", err)
	}
}
