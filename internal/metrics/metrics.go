// Package metrics collects what the paper's evaluation reports: time
// series of core usage by CPU frequency and of power drawn by category
// (the Figure 6/7 plots), and the per-run totals of Figure 8 — consumed
// energy, launched jobs and accumulated work (core-seconds) — with the
// normalizations used there.
package metrics

import (
	"fmt"
	"sort"

	"repro/internal/dvfs"
	"repro/internal/power"
)

// Sample is one point of the Figure 6/7 time series.
type Sample struct {
	T           int64             // virtual time (s)
	CoresByFreq map[dvfs.Freq]int // busy cores keyed by node frequency
	BusyNodes   int
	IdleNodes   int
	OffNodes    int
	OffCores    int         // cores belonging to switched-off nodes
	Power       power.Watts // instantaneous cluster draw
	Cap         power.Watts // active cap (0 = uncapped)
	Bonus       power.Watts // harvested group-shutdown bonus
}

// Recorder accumulates samples, counters and the exact energy/work
// integrals of one run.
type Recorder struct {
	samples []Sample

	energy power.Meter // integrates cluster watts -> joules
	work   power.Meter // integrates busy cores -> core-seconds

	submitted int
	launched  int
	completed int
	killed    int

	launchedByFreq map[dvfs.Freq]int
	waitSecSum     int64 // accumulated queue wait of launched jobs
	rescales       int   // dynamic-DVFS re-clocks of running jobs

	bsldSum float64 // bounded slowdown accumulators (completed jobs)
	bsldMax float64
	bsldN   int
}

// NewRecorder starts a recorder at time start with the given initial
// cluster draw and busy-core count.
func NewRecorder(start int64, draw power.Watts, busyCores int) *Recorder {
	r := &Recorder{launchedByFreq: map[dvfs.Freq]int{}}
	// Meters accept the first Set as initialization.
	_ = r.energy.Set(start, draw)
	_ = r.work.Set(start, power.Watts(busyCores))
	return r
}

// NotePower records a change of the cluster draw at time t.
func (r *Recorder) NotePower(t int64, w power.Watts) error { return r.energy.Set(t, w) }

// NoteCores records a change of the busy-core count at time t.
func (r *Recorder) NoteCores(t int64, busy int) error { return r.work.Set(t, power.Watts(busy)) }

// NoteSubmit counts a submitted job.
func (r *Recorder) NoteSubmit() { r.submitted++ }

// NoteLaunch counts a launched job at frequency f that waited waitSec in
// the queue.
func (r *Recorder) NoteLaunch(f dvfs.Freq, waitSec int64) {
	r.launched++
	r.launchedByFreq[f]++
	if waitSec > 0 {
		r.waitSecSum += waitSec
	}
}

// BSLDThreshold is the short-job floor of the bounded slowdown metric
// (10 s, the convention of Etinski et al.'s power-budget scheduling
// papers the paper builds on).
const BSLDThreshold = 10

// NoteJobDone records a finished job's bounded slowdown:
// BSLD = max(1, (wait + run) / max(run, threshold)).
func (r *Recorder) NoteJobDone(waitSec, runSec int64) {
	den := float64(runSec)
	if den < BSLDThreshold {
		den = BSLDThreshold
	}
	b := (float64(waitSec) + float64(runSec)) / den
	if b < 1 {
		b = 1
	}
	r.bsldSum += b
	r.bsldN++
	if b > r.bsldMax {
		r.bsldMax = b
	}
}

// NoteRescale counts a dynamic-DVFS re-clock of a running job.
func (r *Recorder) NoteRescale() { r.rescales++ }

// NoteCompletion counts a finished job; killed marks controller kills.
func (r *Recorder) NoteCompletion(killed bool) {
	if killed {
		r.killed++
	} else {
		r.completed++
	}
}

// AddSample appends one time-series point.
func (r *Recorder) AddSample(s Sample) { r.samples = append(r.samples, s) }

// Reserve pre-sizes the sample series for n points. Callers that know
// the sampling schedule (horizon / interval) avoid the append-regrowth
// copies of long replays; a smaller or non-positive n is a no-op.
func (r *Recorder) Reserve(n int) {
	if n <= cap(r.samples) {
		return
	}
	grown := make([]Sample, len(r.samples), n)
	copy(grown, r.samples)
	r.samples = grown
}

// Samples returns the recorded series in order.
func (r *Recorder) Samples() []Sample { return r.samples }

// Summary is the per-run result row of Figure 8 plus context.
type Summary struct {
	Start, End int64

	EnergyJ     power.Joules
	WorkCoreSec float64
	PeakPower   power.Watts
	MeanPower   power.Watts

	JobsSubmitted int
	JobsLaunched  int
	JobsCompleted int
	JobsKilled    int
	Rescales      int // dynamic-DVFS re-clocks of running jobs
	MeanWaitSec   float64
	// MeanBSLD/MaxBSLD are the bounded slowdown statistics of completed
	// jobs — the job-performance metric of the power-budget scheduling
	// literature the paper compares against (Etinski et al.).
	MeanBSLD float64
	MaxBSLD  float64

	LaunchedByFreq map[dvfs.Freq]int

	// Normalizations of Figure 8: "all measures are normalized to the
	// maximal possible value".
	NormEnergy   float64 // energy / (maxPower * duration)
	NormWork     float64 // work / (totalCores * duration)
	NormLaunched float64 // launched / submitted
}

// Finalize closes the integrals at time end and normalizes against the
// machine capacity (maxPower watts, totalCores cores).
func (r *Recorder) Finalize(start, end int64, maxPower power.Watts, totalCores int) Summary {
	s := Summary{
		Start:          start,
		End:            end,
		EnergyJ:        r.energy.EnergyAt(end),
		WorkCoreSec:    float64(r.work.EnergyAt(end)),
		PeakPower:      r.energy.Peak(),
		MeanPower:      r.energy.MeanAt(end),
		JobsSubmitted:  r.submitted,
		JobsLaunched:   r.launched,
		JobsCompleted:  r.completed,
		JobsKilled:     r.killed,
		Rescales:       r.rescales,
		LaunchedByFreq: map[dvfs.Freq]int{},
	}
	for f, n := range r.launchedByFreq {
		s.LaunchedByFreq[f] = n
	}
	if r.launched > 0 {
		s.MeanWaitSec = float64(r.waitSecSum) / float64(r.launched)
	}
	if r.bsldN > 0 {
		s.MeanBSLD = r.bsldSum / float64(r.bsldN)
		s.MaxBSLD = r.bsldMax
	}
	dur := float64(end - start)
	if dur > 0 {
		if maxPower > 0 {
			s.NormEnergy = float64(s.EnergyJ) / (float64(maxPower) * dur)
		}
		if totalCores > 0 {
			s.NormWork = s.WorkCoreSec / (float64(totalCores) * dur)
		}
	}
	if r.submitted > 0 {
		s.NormLaunched = float64(r.launched) / float64(r.submitted)
	}
	return s
}

// FreqsUsed returns the frequencies appearing in the series, ascending —
// the legend of the Figure 6/7 plots.
func FreqsUsed(samples []Sample) []dvfs.Freq {
	set := map[dvfs.Freq]bool{}
	for _, s := range samples {
		for f, n := range s.CoresByFreq {
			if n > 0 {
				set[f] = true
			}
		}
	}
	out := make([]dvfs.Freq, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders a one-line digest, handy for examples and logs.
func (s Summary) String() string {
	return fmt.Sprintf("energy=%v work=%.3g core-s launched=%d/%d completed=%d killed=%d peak=%v",
		s.EnergyJ, s.WorkCoreSec, s.JobsLaunched, s.JobsSubmitted, s.JobsCompleted, s.JobsKilled, s.PeakPower)
}
