package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/signal"
)

func f64(v float64) *float64 { return &v }

// complexSpec exercises every RunSpec field at once.
func complexSpec() RunSpec {
	return RunSpec{
		Name: "everything",
		Workload: WorkloadSpec{
			Kind: "bursty", Seed: 42, DurationSec: 7200, LoadFactor: 0.8,
			BacklogFraction: 0.1, Users: 12,
			SWF: &SWFSpec{Path: "trace.swf", WindowStartSec: 100, WindowEndSec: 200, TimeScale: 0.5, Cores: 80640, MaxJobs: 1000},
		},
		Racks:        4,
		Policies:     []string{"SHUT", "MIX"},
		CapFractions: []float64{0, 0.6, 0.4},
		Cap:          CapSpec{StartSec: 1800, DurationSec: 900, OpenEnded: false},
		Options: OptionSpec{
			KillOnOverrun: true, Scattered: true, ReservationLeadSec: 60,
			PlanningHorizonSec: 1800, DynamicDVFS: true, Compact: true,
			MeasuredNoise: 0.01, SampleEverySec: 120, BackfillDepth: 7,
		},
		Workers: 3,
	}
}

func TestSpecJSONRoundTripExact(t *testing.T) {
	for name, spec := range map[string]RunSpec{
		"zero":       {},
		"normalized": RunSpec{}.Normalize(),
		"complex":    complexSpec(),
		"cells": {
			Name: "cells",
			Cells: []CellSpec{
				{Policy: "SHUT", CapFraction: 0.6},
				{Name: "x", Workload: &WorkloadSpec{Kind: "bigjob", Seed: 7},
					Policy: "DVFS", CapFraction: 0.4,
					Cap:     &CapSpec{OpenEnded: true, StartSec: 10},
					Options: &OptionSpec{Scattered: true}},
			},
		},
		"federation": {
			CapFractions: []float64{0.5},
			Federation:   &FederationSpec{MemberCounts: []int{2, 3}, Divisions: []string{"prorata"}, EpochSec: 600},
		},
		"federation-signal": {
			CapFractions: []float64{0.5},
			Federation: &FederationSpec{EpochSec: 600, Signal: &signal.Spec{
				Kind: "clamp", Min: f64(0.5), Max: f64(1.0),
				Input: &signal.Spec{Kind: "compose", Inputs: []*signal.Spec{
					{Kind: "diurnal", Mean: 1, Amplitude: 0.3},
					{Kind: "step", Times: []int64{0, 43200}, Values: []float64{1, 0.8}},
				}},
			}},
		},
	} {
		var buf bytes.Buffer
		if err := spec.EncodeJSON(&buf); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := DecodeJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, spec) {
			t.Errorf("%s: round trip drifted:\nin:  %+v\nout: %+v", name, spec, got)
		}
		// And the byte-level property CI checks on spec files.
		if err := RoundTrips(buf.Bytes()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := DecodeJSON(strings.NewReader(`{"workolad": {"kind": "bigjob"}}`))
	if err == nil {
		t.Fatal("typo field decoded silently")
	}
}

func TestEffectiveModeDerivation(t *testing.T) {
	cases := []struct {
		spec RunSpec
		want Mode
	}{
		{RunSpec{}, ModeSingle},
		{RunSpec{Policies: []string{"SHUT"}, CapFractions: []float64{0.6}}, ModeSingle},
		{RunSpec{Policies: []string{"SHUT", "DVFS"}, CapFractions: []float64{0.6}}, ModeSweep},
		{RunSpec{Policies: []string{"SHUT"}, CapFractions: []float64{0.6, 0.4}}, ModeSweep},
		{RunSpec{Cells: []CellSpec{{Policy: "SHUT"}}}, ModeSweep},
		{RunSpec{Federation: &FederationSpec{}}, ModeFederation},
	}
	for i, tc := range cases {
		if got := tc.spec.EffectiveMode(); got != tc.want {
			t.Errorf("case %d: mode %q, want %q", i, got, tc.want)
		}
	}
}

func TestNormalizeFillsDefaults(t *testing.T) {
	n := RunSpec{}.Normalize()
	if n.Mode != ModeSingle || n.Workload.Kind != "medianjob" ||
		len(n.Policies) != 1 || n.Policies[0] != "SHUT" ||
		len(n.CapFractions) != 1 || n.CapFractions[0] != 0.6 {
		t.Errorf("zero-spec defaults wrong: %+v", n)
	}

	f := RunSpec{Federation: &FederationSpec{}, CapFractions: []float64{0.5}}.Normalize()
	if f.Mode != ModeFederation || len(f.Federation.MemberCounts) != 1 ||
		f.Federation.MemberCounts[0] != 3 || f.Federation.Divisions[0] != "demand" {
		t.Errorf("federation defaults wrong: %+v", f)
	}
	if f.Workload.Kind != "" {
		t.Errorf("federation spec grew a workload: %+v", f.Workload)
	}
}

func TestValidateEnumeratesRegisteredNames(t *testing.T) {
	cases := []struct {
		spec    RunSpec
		mention string
	}{
		{RunSpec{Policies: []string{"TURBO"}}, "SHUT"},
		{RunSpec{Workload: WorkloadSpec{Kind: "mystery"}}, "medianjob"},
		{RunSpec{CapFractions: []float64{0.5},
			Federation: &FederationSpec{Divisions: []string{"fair"}}}, "prorata"},
		{RunSpec{Cells: []CellSpec{{Policy: "TURBO"}}}, "SHUT"},
	}
	for i, tc := range cases {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
			continue
		}
		if !strings.Contains(err.Error(), tc.mention) {
			t.Errorf("case %d: error %q does not enumerate registered names (want %q)", i, err, tc.mention)
		}
	}
}

func TestValidateRejectsStructuralProblems(t *testing.T) {
	bad := []RunSpec{
		{Mode: ModeSweep}, // mode contradicts fields
		{Racks: -1},       // negative machine
		{Workers: -2},     // negative pool
		{Workload: WorkloadSpec{SWF: &SWFSpec{}}},                                                        // SWF without path
		{Workload: WorkloadSpec{SWF: &SWFSpec{Path: "x", WindowStartSec: 10, WindowEndSec: 5}}},          // empty window
		{CapFractions: []float64{1.5}, Federation: &FederationSpec{}},                                    // fed cap outside (0,1)
		{CapFractions: []float64{0.5}, Federation: &FederationSpec{MemberCounts: []int{0}}},              // zero members
		{CapFractions: []float64{0.5}, Federation: &FederationSpec{EpochSec: -1}},                        // negative epoch
		{CapFractions: []float64{0.5}, Federation: &FederationSpec{Signal: &signal.Spec{Kind: "bogus"}}}, // unknown signal kind
		{CapFractions: []float64{0.5}, Federation: &FederationSpec{Signal: &signal.Spec{Kind: "step"}}},  // step without breakpoints
		{Cap: CapSpec{StartSec: -5}}, // negative window
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, spec)
		}
	}
	if err := complexSpec().Validate(); err != nil {
		t.Errorf("complex-but-valid spec rejected: %v", err)
	}
}

// TestFederationEpochValidation pins the epoch contract: a negative
// epoch is rejected with an error naming the positive-duration
// requirement and the default, zero keeps meaning "default 900 s"
// (every checked-in federation spec omits the field), and an explicit
// epoch survives the JSON round trip exactly.
func TestFederationEpochValidation(t *testing.T) {
	neg := RunSpec{CapFractions: []float64{0.5}, Federation: &FederationSpec{EpochSec: -900}}
	err := neg.Validate()
	if err == nil {
		t.Fatal("negative federation epoch accepted")
	}
	if !strings.Contains(err.Error(), "positive") || !strings.Contains(err.Error(), "900") {
		t.Errorf("epoch error %q does not explain the contract", err)
	}

	zero := RunSpec{CapFractions: []float64{0.5}, Federation: &FederationSpec{}}
	if err := zero.Validate(); err != nil {
		t.Fatalf("zero (defaulted) federation epoch rejected: %v", err)
	}
	scens, err := zero.Normalize().FederationScenarios()
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range scens {
		if fs.Epoch() != 900 {
			t.Errorf("defaulted epoch lowered to %d, want 900", fs.Epoch())
		}
	}

	var buf bytes.Buffer
	explicit := RunSpec{CapFractions: []float64{0.5}, Federation: &FederationSpec{EpochSec: 600}}
	if err := explicit.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Federation.EpochSec != 600 {
		t.Errorf("explicit epoch drifted through the round trip: %d", got.Federation.EpochSec)
	}
	if err := RoundTrips(buf.Bytes()); err != nil {
		t.Error(err)
	}
}

// TestFacadeRegistriesExposeEntries pins the facade surface: the
// re-exported registries list the expected vocabulary.
func TestFacadeRegistriesExposeEntries(t *testing.T) {
	if got := Policies.Join("|"); got != "NONE|SHUT|DVFS|MIX|IDLE" {
		t.Errorf("Policies = %q", got)
	}
	if got := Workloads.Join("|"); got != "medianjob|smalljob|bigjob|24h|diurnal|bursty|heavytail" {
		t.Errorf("Workloads = %q", got)
	}
	if got := Divisions.Join("|"); got != "prorata|demand" {
		t.Errorf("Divisions = %q", got)
	}
	if got := Sinks.Join("|"); got != "json|csv|ascii" {
		t.Errorf("Sinks = %q", got)
	}
}
