package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
	"repro/internal/power"
)

func small() *Cluster {
	// 2 racks x 2 chassis x 3 nodes = 12 nodes, 4 cores each.
	topo := Topology{Racks: 2, ChassisPerRack: 2, NodesPerChassis: 3, CoresPerNode: 4}
	c, err := New(topo, power.CurieProfile(), CurieOverhead())
	if err != nil {
		panic(err)
	}
	return c
}

// brutePower recomputes the cluster draw from scratch; the incremental
// Power() must always match it.
func brutePower(c *Cluster) power.Watts {
	topo := c.Topology()
	prof := c.Profile()
	ov := c.Overhead()
	total := 0.0
	for r := 0; r < topo.Racks; r++ {
		rackOff := true
		rackSum := 0.0
		for ci := 0; ci < topo.ChassisPerRack; ci++ {
			ch := r*topo.ChassisPerRack + ci
			first, n := topo.ChassisNodes(ch)
			chassisOff := true
			chassisSum := 0.0
			for i := 0; i < n; i++ {
				info, _ := c.Info(first + NodeID(i))
				switch info.State {
				case StateOff:
					chassisSum += float64(prof.Down())
				case StateIdle:
					chassisSum += float64(prof.Idle())
					chassisOff = false
				case StateBusy:
					chassisSum += float64(prof.Busy(info.Freq))
					chassisOff = false
				}
			}
			if chassisOff {
				rackSum += 0 // full chassis bonus: nodes' BMCs and equipment off
			} else {
				rackSum += chassisSum + ov.ChassisWatts
				rackOff = false
			}
		}
		if !rackOff {
			total += rackSum + ov.RackWatts
		}
	}
	return power.Watts(total)
}

func TestCurieTopologyConstants(t *testing.T) {
	topo := CurieTopology()
	if topo.Nodes() != 5040 {
		t.Errorf("Curie nodes = %d, want 5040", topo.Nodes())
	}
	if topo.Cores() != 80640 {
		t.Errorf("Curie cores = %d, want 80640", topo.Cores())
	}
	if topo.Chassis() != 280 {
		t.Errorf("Curie chassis = %d, want 280", topo.Chassis())
	}
}

func TestTopologyIndexing(t *testing.T) {
	topo := CurieTopology()
	if got := topo.ChassisOf(0); got != 0 {
		t.Errorf("ChassisOf(0) = %d", got)
	}
	if got := topo.ChassisOf(17); got != 0 {
		t.Errorf("ChassisOf(17) = %d, want 0", got)
	}
	if got := topo.ChassisOf(18); got != 1 {
		t.Errorf("ChassisOf(18) = %d, want 1", got)
	}
	if got := topo.RackOf(89); got != 0 {
		t.Errorf("RackOf(89) = %d, want 0", got)
	}
	if got := topo.RackOf(90); got != 1 {
		t.Errorf("RackOf(90) = %d, want 1", got)
	}
	first, n := topo.ChassisNodes(2)
	if first != 36 || n != 18 {
		t.Errorf("ChassisNodes(2) = %d,%d", first, n)
	}
	first, n = topo.RackNodes(1)
	if first != 90 || n != 90 {
		t.Errorf("RackNodes(1) = %d,%d", first, n)
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := CurieTopology().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Topology{Racks: 0, ChassisPerRack: 5, NodesPerChassis: 18, CoresPerNode: 16}
	if err := bad.Validate(); err == nil {
		t.Error("zero racks accepted")
	}
}

func TestNewRejects(t *testing.T) {
	topo := CurieTopology()
	if _, err := New(topo, nil, CurieOverhead()); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := New(topo, power.CurieProfile(), Overhead{ChassisWatts: -1}); err == nil {
		t.Error("negative overhead accepted")
	}
	if _, err := New(Topology{}, power.CurieProfile(), CurieOverhead()); err == nil {
		t.Error("invalid topology accepted")
	}
}

func TestInitialState(t *testing.T) {
	c := small()
	if c.Count(StateIdle) != 12 || c.Count(StateBusy) != 0 || c.Count(StateOff) != 0 {
		t.Fatalf("initial counts off/idle/busy = %d/%d/%d",
			c.Count(StateOff), c.Count(StateIdle), c.Count(StateBusy))
	}
	if got, want := c.Power(), brutePower(c); got != want {
		t.Errorf("initial Power = %v, want %v", got, want)
	}
	if c.Power() != c.IdlePower() {
		t.Errorf("initial Power %v != IdlePower %v", c.Power(), c.IdlePower())
	}
}

func TestCurieMaxPower(t *testing.T) {
	c := NewCurie()
	// 5040x358 + 280x248 + 56x900 = 1804320 + 69440 + 50400.
	if got, want := c.MaxPower(), power.Watts(1924160); got != want {
		t.Errorf("Curie MaxPower = %v, want %v", got, want)
	}
}

func TestOccupyVacatePowerCycle(t *testing.T) {
	c := small()
	base := c.Power()
	if err := c.Occupy(0, 4, dvfs.F2700); err != nil {
		t.Fatal(err)
	}
	if got := c.Power() - base; got != 358-117 {
		t.Errorf("occupy delta = %v, want 241", got)
	}
	if c.State(0) != StateBusy || c.BusyCores() != 4 {
		t.Errorf("state/cores = %v/%d", c.State(0), c.BusyCores())
	}
	if err := c.Vacate(0, 4, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Power(); got != base {
		t.Errorf("power after vacate = %v, want %v", got, base)
	}
	if c.State(0) != StateIdle {
		t.Errorf("state after vacate = %v", c.State(0))
	}
}

func TestOccupySharedNodeHighestFreqWins(t *testing.T) {
	c := small()
	if err := c.Occupy(3, 1, dvfs.F1200); err != nil {
		t.Fatal(err)
	}
	info, _ := c.Info(3)
	if info.Freq != dvfs.F1200 {
		t.Fatalf("freq = %v, want 1.2 GHz", info.Freq)
	}
	if err := c.Occupy(3, 1, dvfs.F2400); err != nil {
		t.Fatal(err)
	}
	info, _ = c.Info(3)
	if info.Freq != dvfs.F2400 {
		t.Errorf("freq after second job = %v, want 2.4 GHz", info.Freq)
	}
	// Lower-frequency jobs never drag the node frequency down.
	if err := c.Occupy(3, 1, dvfs.F1400); err != nil {
		t.Fatal(err)
	}
	info, _ = c.Info(3)
	if info.Freq != dvfs.F2400 {
		t.Errorf("freq after low-freq third job = %v, want 2.4 GHz", info.Freq)
	}
	if got, want := c.Power(), brutePower(c); got != want {
		t.Errorf("Power = %v, want %v", got, want)
	}
}

func TestVacateRemainingFreq(t *testing.T) {
	c := small()
	if err := c.Occupy(5, 2, dvfs.F2700); err != nil {
		t.Fatal(err)
	}
	if err := c.Occupy(5, 1, dvfs.F1200); err != nil {
		t.Fatal(err)
	}
	// The 2.7 GHz job leaves; remaining job runs at 1.2 GHz.
	if err := c.Vacate(5, 2, dvfs.F1200); err != nil {
		t.Fatal(err)
	}
	info, _ := c.Info(5)
	if info.State != StateBusy || info.Freq != dvfs.F1200 || info.UsedCores != 1 {
		t.Errorf("after vacate: %+v", info)
	}
	if got, want := c.Power(), brutePower(c); got != want {
		t.Errorf("Power = %v, want %v", got, want)
	}
}

func TestOccupyErrors(t *testing.T) {
	c := small()
	if err := c.Occupy(0, 5, 0); err == nil {
		t.Error("overcommit accepted")
	}
	if err := c.Occupy(0, 0, 0); err == nil {
		t.Error("zero cores accepted")
	}
	if err := c.Occupy(99, 1, 0); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := c.PowerOff(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Occupy(1, 1, 0); err == nil {
		t.Error("occupy of off node accepted")
	}
}

func TestVacateErrors(t *testing.T) {
	c := small()
	if err := c.Vacate(0, 1, 0); err == nil {
		t.Error("vacate of idle node accepted")
	}
	if err := c.Occupy(0, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Vacate(0, 3, 0); err == nil {
		t.Error("vacate more cores than held accepted")
	}
	if err := c.Vacate(0, 0, 0); err == nil {
		t.Error("vacate zero cores accepted")
	}
	if err := c.Vacate(99, 1, 0); err == nil {
		t.Error("vacate out-of-range node accepted")
	}
}

func TestPowerOffOnErrorsAndIdempotence(t *testing.T) {
	c := small()
	if err := c.Occupy(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.PowerOff(0); err == nil {
		t.Error("power off of busy node accepted")
	}
	if err := c.PowerOff(2); err != nil {
		t.Fatal(err)
	}
	if err := c.PowerOff(2); err != nil {
		t.Errorf("double power off should be a no-op, got %v", err)
	}
	if err := c.PowerOn(2); err != nil {
		t.Fatal(err)
	}
	if err := c.PowerOn(2); err != nil {
		t.Errorf("double power on should be a no-op, got %v", err)
	}
	if err := c.PowerOff(99); err == nil {
		t.Error("out-of-range power off accepted")
	}
}

// TestChassisBonusFigure2 verifies the worked example of Section VI-A:
// switching off one full 18-node chassis saves 6692 W versus those nodes
// running at max power, and a full rack saves 34360 W.
func TestChassisBonusFigure2(t *testing.T) {
	c := NewCurie()
	topo := c.Topology()

	// Occupy everything at nominal: draw == MaxPower.
	for id := 0; id < topo.Nodes(); id++ {
		if err := c.Occupy(NodeID(id), topo.CoresPerNode, dvfs.F2700); err != nil {
			t.Fatal(err)
		}
	}
	if c.Power() != c.MaxPower() {
		t.Fatalf("all-busy power %v != MaxPower %v", c.Power(), c.MaxPower())
	}

	// Free and switch off chassis 0.
	before := c.Power()
	first, n := topo.ChassisNodes(0)
	for i := 0; i < n; i++ {
		if err := c.Vacate(first+NodeID(i), topo.CoresPerNode, 0); err != nil {
			t.Fatal(err)
		}
		if err := c.PowerOff(first + NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	saved := before - c.Power()
	if saved != 6692 {
		t.Errorf("full-chassis saving = %v, want 6692 W (Figure 2)", saved)
	}
	if c.FullyOffChassis() != 1 {
		t.Errorf("FullyOffChassis = %d, want 1", c.FullyOffChassis())
	}
	if got := c.BonusWatts(); got != 500 {
		t.Errorf("BonusWatts = %v, want 500 (chassis bonus)", got)
	}

	// Now switch off the rest of rack 0.
	firstRack, nr := topo.RackNodes(0)
	for i := 0; i < nr; i++ {
		id := firstRack + NodeID(i)
		if c.State(id) == StateBusy {
			if err := c.Vacate(id, topo.CoresPerNode, 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.PowerOff(id); err != nil {
			t.Fatal(err)
		}
	}
	savedRack := before - c.Power()
	if savedRack != 34360 {
		t.Errorf("full-rack saving = %v, want 34360 W (Figure 2)", savedRack)
	}
	if c.FullyOffRacks() != 1 {
		t.Errorf("FullyOffRacks = %d, want 1", c.FullyOffRacks())
	}
	if got, want := c.Power(), brutePower(c); got != want {
		t.Errorf("Power = %v, want brute %v", got, want)
	}
}

// TestScatteredVersusGrouped reproduces the Section VI-A example: 20
// scattered node switch-offs save 20x344 = 6880 W, while a full chassis
// (18 nodes) saves 6692 W, nearly as much with 2 fewer nodes sacrificed.
func TestScatteredVersusGrouped(t *testing.T) {
	c := NewCurie()
	ids := SelectScattered(c, 20, nil)
	if len(ids) != 20 {
		t.Fatalf("scattered selection returned %d nodes", len(ids))
	}
	if got := PlannedSaving(c, ids); got != 6880 {
		t.Errorf("scattered 20-node saving = %v, want 6880 W", got)
	}
	first, n := c.Topology().ChassisNodes(0)
	chassis := make([]NodeID, n)
	for i := range chassis {
		chassis[i] = first + NodeID(i)
	}
	if got := PlannedSaving(c, chassis); got != 6692 {
		t.Errorf("chassis saving = %v, want 6692 W", got)
	}
}

func TestSelectGroupedPrefersWholeRacks(t *testing.T) {
	c := NewCurie()
	topo := c.Topology()
	perRack := topo.NodesPerRack()
	ids := SelectGrouped(c, perRack, nil)
	if len(ids) != perRack {
		t.Fatalf("got %d nodes, want %d", len(ids), perRack)
	}
	racks := map[int]int{}
	for _, id := range ids {
		racks[topo.RackOf(id)]++
	}
	if len(racks) != 1 {
		t.Errorf("selection spans %d racks, want exactly 1 full rack", len(racks))
	}
	if got := PlannedSaving(c, ids); got != 34360 {
		t.Errorf("full-rack planned saving = %v, want 34360", got)
	}
}

func TestSelectGroupedChassisAlignment(t *testing.T) {
	c := NewCurie()
	topo := c.Topology()
	// 40 nodes = 2 full chassis (36) + 4 singles.
	ids := SelectGrouped(c, 40, nil)
	if len(ids) != 40 {
		t.Fatalf("got %d nodes", len(ids))
	}
	perChassis := map[int]int{}
	for _, id := range ids {
		perChassis[topo.ChassisOf(id)]++
	}
	full := 0
	for _, n := range perChassis {
		if n == topo.NodesPerChassis {
			full++
		}
	}
	if full < 2 {
		t.Errorf("selection completed %d chassis, want >= 2", full)
	}
	// Grouped selection must beat scattered selection on planned savings.
	scat := SelectScattered(c, 40, nil)
	if g, s := PlannedSaving(c, ids), PlannedSaving(c, scat); g <= s {
		t.Errorf("grouped saving %v <= scattered %v", g, s)
	}
}

func TestSelectGroupedRespectsEligibility(t *testing.T) {
	c := small()
	// Node 0 ineligible: its chassis (nodes 0..2) cannot be taken whole.
	ids := SelectGrouped(c, 3, func(id NodeID) bool { return id != 0 })
	for _, id := range ids {
		if id == 0 {
			t.Fatalf("ineligible node selected: %v", ids)
		}
	}
	if len(ids) != 3 {
		t.Errorf("got %d nodes, want 3", len(ids))
	}
}

func TestSelectGroupedWantZero(t *testing.T) {
	c := small()
	if got := SelectGrouped(c, 0, nil); got != nil {
		t.Errorf("want=0 returned %v", got)
	}
	if got := SelectScattered(c, -1, nil); got != nil {
		t.Errorf("scattered want=-1 returned %v", got)
	}
}

func TestSelectScatteredAvoidsBonus(t *testing.T) {
	c := small() // 4 chassis of 3 nodes
	ids := SelectScattered(c, 4, nil)
	chassisSeen := map[int]bool{}
	for _, id := range ids {
		chassisSeen[c.Topology().ChassisOf(id)] = true
	}
	if len(chassisSeen) != 4 {
		t.Errorf("scattered selection used %d chassis, want 4", len(chassisSeen))
	}
}

func TestOccupyDelta(t *testing.T) {
	c := small()
	// Idle node at 2.7: +241. Idle node at 1.2: +76.
	if got := c.OccupyDelta([]NodeID{0}, dvfs.F2700); got != 241 {
		t.Errorf("delta idle->2.7 = %v, want 241", got)
	}
	if got := c.OccupyDelta([]NodeID{0}, dvfs.F1200); got != 76 {
		t.Errorf("delta idle->1.2 = %v, want 76", got)
	}
	// Busy node at equal or higher freq adds nothing.
	if err := c.Occupy(1, 1, dvfs.F2700); err != nil {
		t.Fatal(err)
	}
	if got := c.OccupyDelta([]NodeID{1}, dvfs.F2400); got != 0 {
		t.Errorf("delta busy(2.7)->2.4 = %v, want 0", got)
	}
	// Busy node at lower freq pays the uplift.
	if err := c.Occupy(2, 1, dvfs.F1200); err != nil {
		t.Fatal(err)
	}
	if got := c.OccupyDelta([]NodeID{2}, dvfs.F2700); got != 358-193 {
		t.Errorf("delta busy(1.2)->2.7 = %v, want 165", got)
	}
	// Off node pays busy-down.
	if err := c.PowerOff(3); err != nil {
		t.Fatal(err)
	}
	if got := c.OccupyDelta([]NodeID{3}, dvfs.F2700); got != 358-14 {
		t.Errorf("delta off->2.7 = %v, want 344", got)
	}
	// Nominal default when f == 0.
	if got := c.OccupyDelta([]NodeID{0}, 0); got != 241 {
		t.Errorf("delta f=0 = %v, want 241", got)
	}
	// OccupyDelta must match the real power change for idle nodes.
	before := c.Power()
	delta := c.OccupyDelta([]NodeID{0}, dvfs.F2000)
	if err := c.Occupy(0, 1, dvfs.F2000); err != nil {
		t.Fatal(err)
	}
	if got := c.Power() - before; got != delta {
		t.Errorf("actual delta %v != predicted %v", got, delta)
	}
}

func TestCoresByFreq(t *testing.T) {
	c := small()
	if err := c.Occupy(0, 4, dvfs.F2700); err != nil {
		t.Fatal(err)
	}
	if err := c.Occupy(1, 2, dvfs.F2000); err != nil {
		t.Fatal(err)
	}
	h := c.CoresByFreq()
	if h[dvfs.F2700] != 4 || h[dvfs.F2000] != 2 {
		t.Errorf("histogram = %v", h)
	}
	if err := c.Vacate(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	h = c.CoresByFreq()
	if _, ok := h[dvfs.F2000]; ok {
		t.Errorf("empty bucket kept: %v", h)
	}
}

func TestReservedFlag(t *testing.T) {
	c := small()
	if err := c.SetReserved(4, true); err != nil {
		t.Fatal(err)
	}
	if !c.Reserved(4) {
		t.Error("Reserved(4) = false")
	}
	if err := c.SetReserved(4, true); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := c.SetReserved(4, false); err != nil {
		t.Fatal(err)
	}
	if c.Reserved(4) {
		t.Error("Reserved(4) still true")
	}
	if err := c.SetReserved(99, true); err == nil {
		t.Error("out-of-range reserve accepted")
	}
	if c.Reserved(99) {
		t.Error("out-of-range Reserved = true")
	}
}

func TestForEach(t *testing.T) {
	c := small()
	var seen int
	c.ForEach(func(NodeInfo) bool { seen++; return true })
	if seen != 12 {
		t.Errorf("ForEach visited %d nodes, want 12", seen)
	}
	seen = 0
	c.ForEach(func(NodeInfo) bool { seen++; return seen < 5 })
	if seen != 5 {
		t.Errorf("early-stop ForEach visited %d, want 5", seen)
	}
}

func TestStateAndFreeCoresOutOfRange(t *testing.T) {
	c := small()
	if c.State(-1) != StateOff {
		t.Error("out-of-range State should report off")
	}
	if c.FreeCores(-1) != 0 {
		t.Error("out-of-range FreeCores should be 0")
	}
	if _, err := c.Info(-1); err == nil {
		t.Error("out-of-range Info accepted")
	}
	if err := c.PowerOff(0); err != nil {
		t.Fatal(err)
	}
	if c.FreeCores(0) != 0 {
		t.Error("off node should have 0 free cores")
	}
}

func TestNodeStateString(t *testing.T) {
	if StateOff.String() != "off" || StateIdle.String() != "idle" || StateBusy.String() != "busy" {
		t.Error("NodeState strings wrong")
	}
	if NodeState(9).String() != "NodeState(9)" {
		t.Error("unknown NodeState string wrong")
	}
}

// Property test: after any random sequence of operations the incremental
// power equals the brute-force recomputation and counts are consistent.
func TestPowerIncrementalMatchesBrute(t *testing.T) {
	type op struct {
		Kind  uint8
		Node  uint8
		Cores uint8
		Rung  uint8
	}
	ladder := dvfs.CurieLadder()
	f := func(ops []op) bool {
		c := small()
		held := make(map[NodeID]int)
		for _, o := range ops {
			id := NodeID(int(o.Node) % c.Nodes())
			switch o.Kind % 4 {
			case 0:
				cores := int(o.Cores)%2 + 1
				fr := ladder[int(o.Rung)%len(ladder)]
				if c.FreeCores(id) >= cores && c.State(id) != StateOff {
					if err := c.Occupy(id, cores, fr); err != nil {
						return false
					}
					held[id] += cores
				}
			case 1:
				if held[id] > 0 {
					if err := c.Vacate(id, held[id], 0); err != nil {
						return false
					}
					delete(held, id)
				}
			case 2:
				if c.State(id) == StateIdle {
					if err := c.PowerOff(id); err != nil {
						return false
					}
				}
			case 3:
				if c.State(id) == StateOff {
					if err := c.PowerOn(id); err != nil {
						return false
					}
				}
			}
		}
		return math.Abs(float64(c.Power()-brutePower(c))) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: counts always sum to the node count.
func TestCountsConsistency(t *testing.T) {
	c := small()
	checkCounts := func() {
		t.Helper()
		sum := c.Count(StateOff) + c.Count(StateIdle) + c.Count(StateBusy)
		if sum != c.Nodes() {
			t.Fatalf("counts sum to %d, want %d", sum, c.Nodes())
		}
	}
	checkCounts()
	if err := c.Occupy(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	checkCounts()
	if err := c.PowerOff(1); err != nil {
		t.Fatal(err)
	}
	checkCounts()
	if c.Count(NodeState(99)) != 0 {
		t.Error("invalid state count should be 0")
	}
}

func TestPlannedSavingDeduplicates(t *testing.T) {
	c := NewCurie()
	ids := []NodeID{0, 0, 1}
	if got := PlannedSaving(c, ids); got != 2*344 {
		t.Errorf("deduplicated saving = %v, want 688", got)
	}
	if got := PlannedSaving(c, []NodeID{-1, 9999999}); got != 0 {
		t.Errorf("invalid IDs saving = %v, want 0", got)
	}
}
