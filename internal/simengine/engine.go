// Package simengine is a deterministic discrete-event simulation core. It
// replaces the paper's real-time "multiple-slurmd" emulation (Section VII-A)
// with virtual time: the controller logic runs unchanged, but hours of
// replayed workload execute in milliseconds and every run is exactly
// reproducible. Events at equal timestamps fire in scheduling order (FIFO),
// which gives the deterministic tie-breaking the replay methodology of
// Section VII-B relies on ("as the replay is deterministic, we can compare
// the different replays").
package simengine

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in seconds since the start of the simulation.
type Time = int64

// Handler is an event callback; it receives the current virtual time.
type Handler func(now Time)

type event struct {
	at       Time
	seq      uint64 // FIFO tie-break for equal timestamps
	fn       Handler
	canceled bool
	index    int // heap index, -1 when popped
}

// EventID allows cancelling a scheduled event.
type EventID struct{ ev *event }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine owns the virtual clock and the pending event set. It is not safe
// for concurrent use; run independent engines in parallel instead.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	running bool
	stopped bool
	fired   uint64
}

// New returns an engine whose clock starts at time start.
func New(start Time) *Engine {
	return &Engine{now: start}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns how many events are scheduled and not yet fired or
// cancelled.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// At schedules fn at absolute time at. Scheduling in the past (before the
// current clock) is an error: a simulator that silently reorders causality
// produces wrong replays.
func (e *Engine) At(at Time, fn Handler) (EventID, error) {
	if fn == nil {
		return EventID{}, fmt.Errorf("simengine: nil handler")
	}
	if at < e.now {
		return EventID{}, fmt.Errorf("simengine: schedule at t=%d before now t=%d", at, e.now)
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return EventID{ev: ev}, nil
}

// After schedules fn d seconds from now; d must be >= 0.
func (e *Engine) After(d int64, fn Handler) (EventID, error) {
	if d < 0 {
		return EventID{}, fmt.Errorf("simengine: negative delay %d", d)
	}
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an already
// fired or already cancelled event is a harmless no-op.
func (e *Engine) Cancel(id EventID) {
	if id.ev != nil {
		id.ev.canceled = true
	}
}

// Stop makes Run return after the currently executing handler.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the next event lies strictly beyond horizon (which then
// becomes the clock value). A negative horizon means "no horizon".
// Handlers may schedule further events, including at the current time.
func (e *Engine) Run(horizon Time) error {
	if e.running {
		return fmt.Errorf("simengine: Run reentered")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for len(e.events) > 0 && !e.stopped {
		ev := e.events[0]
		if ev.canceled {
			heap.Pop(&e.events)
			continue
		}
		if horizon >= 0 && ev.at > horizon {
			e.now = horizon
			return nil
		}
		heap.Pop(&e.events)
		e.now = ev.at
		e.fired++
		ev.fn(e.now)
	}
	if horizon >= 0 && e.now < horizon {
		e.now = horizon
	}
	return nil
}

// Step fires exactly the next pending event (if any) and reports whether
// one fired.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn(e.now)
		return true
	}
	return false
}
