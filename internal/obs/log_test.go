package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func pinnedClock() func() time.Time {
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	return func() time.Time { return t0 }
}

func TestLoggerFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.SetClock(pinnedClock())
	l.Component("service").Info("run done", "run", "r000001", "elapsed", 1500*time.Millisecond)

	got := buf.String()
	want := `ts=2026-08-07T12:00:00.000Z level=info component=service msg="run done" run=r000001 elapsed=1.5s` + "\n"
	if got != want {
		t.Errorf("line = %q\nwant  %q", got, want)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn)
	l.Debug("hidden")
	l.Info("hidden")
	l.Warn("shown")
	l.Error("shown too", "err", "boom")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("filtered levels leaked: %q", out)
	}
	if strings.Count(out, "\n") != 2 {
		t.Errorf("want 2 lines, got %q", out)
	}
	l.SetLevel(LevelDebug)
	l.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Error("SetLevel did not open debug")
	}
}

func TestLoggerQuoting(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.SetClock(pinnedClock())
	l.Info("msg with spaces", "key", `va"l ue`, "empty", "")
	out := buf.String()
	if !strings.Contains(out, `msg="msg with spaces"`) {
		t.Errorf("msg not quoted: %q", out)
	}
	if !strings.Contains(out, `key="va\"l ue"`) {
		t.Errorf("value not quoted: %q", out)
	}
	if !strings.Contains(out, `empty=""`) {
		t.Errorf("empty value not quoted: %q", out)
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Info("into the void", "k", "v") // must not panic
	l.Component("x").With("a", 1).Error("still void")
	if l.Enabled(LevelError) {
		t.Error("nil logger claims enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "INFO": LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) should error")
	}
}
