package dvfs

import "fmt"

// Degradation models the completion-time penalty of running a job below the
// nominal frequency. Following Section V of the paper, the penalty is
// degMin at the minimum frequency of the ladder, 1.0 at the nominal
// frequency, and linearly interpolated (in frequency) in between:
//
//	factor(f) = 1 + (degMin-1) * (fmax-f)/(fmax-fmin)
//
// The paper uses degMin = 1.63 for the full 1.2-2.7 GHz range (the "common
// value" of Etinski et al.) and degMin = 1.29 for the MIX policy whose
// minimum frequency is 2.0 GHz.
type Degradation struct {
	ladder Ladder
	degMin float64
}

// Canonical degradation constants from Section VI-B / VII-B of the paper.
const (
	// DegMinCommon is the walltime degradation factor at 1.2 GHz assumed
	// for replayed jobs ("a degradation of 163% is assumed to be a good
	// approximation").
	DegMinCommon = 1.63
	// DegMinMix is the degradation at the 2.0 GHz floor of the MIX policy.
	DegMinMix = 1.29
)

// NewDegradation builds a degradation model over the given ladder.
// degMin must be >= 1 (1.0 means frequency has no impact at all).
func NewDegradation(l Ladder, degMin float64) (*Degradation, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if degMin < 1 {
		return nil, fmt.Errorf("dvfs: degradation factor %.3f < 1", degMin)
	}
	return &Degradation{ladder: l.Clone(), degMin: degMin}, nil
}

// MustDegradation is NewDegradation that panics on invalid input; intended
// for package-level defaults built from known-good constants.
func MustDegradation(l Ladder, degMin float64) *Degradation {
	d, err := NewDegradation(l, degMin)
	if err != nil {
		panic(err)
	}
	return d
}

// CurieDegradation returns the default replay model: full Curie ladder with
// the common 1.63 degradation at 1.2 GHz.
func CurieDegradation() *Degradation {
	return MustDegradation(CurieLadder(), DegMinCommon)
}

// MixDegradation returns the MIX-policy model: 2.0-2.7 GHz ladder with 1.29
// degradation at the 2.0 GHz floor.
func MixDegradation() *Degradation {
	return MustDegradation(MixLadder(), DegMinMix)
}

// Ladder returns the frequency ladder the model interpolates over.
func (d *Degradation) Ladder() Ladder { return d.ladder.Clone() }

// DegMin returns the degradation factor at the ladder's minimum frequency.
func (d *Degradation) DegMin() float64 { return d.degMin }

// Factor returns the multiplicative completion-time penalty at frequency f.
// Frequencies are clamped to the ladder's range; f == 0 means nominal.
func (d *Degradation) Factor(f Freq) float64 {
	fmax, fmin := d.ladder.Max(), d.ladder.Min()
	if f == 0 || f >= fmax {
		return 1
	}
	if f <= fmin {
		return d.degMin
	}
	span := float64(fmax - fmin)
	return 1 + (d.degMin-1)*float64(fmax-f)/span
}

// ScaleDuration stretches a nominal-duration (expressed in any integer time
// unit) by the degradation factor at frequency f, rounding half up. The
// result is never shorter than the input for f below nominal.
func (d *Degradation) ScaleDuration(nominal int64, f Freq) int64 {
	if nominal <= 0 {
		return nominal
	}
	scaled := float64(nominal)*d.Factor(f) + 0.5
	out := int64(scaled)
	if out < nominal {
		out = nominal
	}
	return out
}

// Speed returns the relative computational speed at frequency f, i.e.
// 1/Factor(f). Speed(nominal) == 1.
func (d *Degradation) Speed(f Freq) float64 { return 1 / d.Factor(f) }

// Rho computes the Section III-A criterion deciding between DVFS and
// shutdown, exactly as tabulated in Figure 5 of the paper:
//
//	rho = 1 - 1/degMin - pMin/(pMax-pOff)
//
// where pMax, pMin and pOff are the per-node draws at nominal frequency, at
// the minimum DVFS frequency, and switched off. The paper prints the last
// term as (Pmax-Pdvfs)/(Pmax-Poff); its published table values only
// reproduce when "Pdvfs" is read as the power reduction achieved by DVFS
// (Pmax-Pmin), so that Pmax-Pdvfs = Pmin. We follow the published table:
// every Figure 5 row and its break-even degradation of ~2.27 come out
// exactly. Per the paper's rule, DVFS is selected when rho > 0 and
// switch-off when rho <= 0.
//
// Note: a from-first-principles comparison of extractable work (see
// internal/model, which maximizes W under constraints C1-C3 directly)
// yields the threshold (pMax-pMin)/(pMax-pOff) instead, with a Curie
// break-even near degMin = 1.92. The scheduler follows the published
// criterion so that policy decisions match the paper's system.
func Rho(degMin, pMax, pMin, pOff float64) float64 {
	return 1 - 1/degMin - pMin/(pMax-pOff)
}

// Mechanism is the power-reduction mechanism selected by the model.
type Mechanism int

const (
	// MechanismShutdown switches whole nodes off.
	MechanismShutdown Mechanism = iota
	// MechanismDVFS lowers CPU frequencies of running nodes.
	MechanismDVFS
	// MechanismEither marks the degenerate case rho == 0 where both
	// mechanisms extract the same amount of work.
	MechanismEither
)

// String implements fmt.Stringer.
func (m Mechanism) String() string {
	switch m {
	case MechanismShutdown:
		return "Switch-off"
	case MechanismDVFS:
		return "DVFS"
	case MechanismEither:
		return "Either"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// ChooseMechanism applies the rho criterion: rho > 0 selects DVFS,
// rho < 0 selects shutdown, rho == 0 reports either.
func ChooseMechanism(rho float64) Mechanism {
	switch {
	case rho > 0:
		return MechanismDVFS
	case rho < 0:
		return MechanismShutdown
	default:
		return MechanismEither
	}
}
