package power

import "repro/internal/dvfs"

// ProjectionMemo caches budget→frequency projection results within a
// scheduling pass. The power-aware launch check projects "what is the
// highest frequency the survivors can run at under this future budget"
// for every probe, and a pass probes up to its backfill depth of jobs
// against the same handful of reservation budgets — the projection is a
// pure function of (budget, survivor statistics), so the controller
// keys the memo by budget watts and invalidates it whenever the
// survivor set (reservation flags) changes. The zero value is ready to
// use.
type ProjectionMemo struct {
	m            map[Watts]dvfs.Freq
	hits, misses uint64
}

// Get returns the cached frequency for a budget, if present.
func (pm *ProjectionMemo) Get(w Watts) (dvfs.Freq, bool) {
	f, ok := pm.m[w]
	if ok {
		pm.hits++
	} else {
		pm.misses++
	}
	return f, ok
}

// Stats returns the lifetime hit/miss counts. Plain uint64 increments
// on the single-threaded simulation path — readers sample them
// out-of-band between scheduling passes.
func (pm *ProjectionMemo) Stats() (hits, misses uint64) {
	return pm.hits, pm.misses
}

// Put stores the frequency projected for a budget.
func (pm *ProjectionMemo) Put(w Watts, f dvfs.Freq) {
	if pm.m == nil {
		pm.m = make(map[Watts]dvfs.Freq, 4)
	}
	pm.m[w] = f
}

// Invalidate drops every cached projection (the keyed entries stay
// allocated for reuse).
func (pm *ProjectionMemo) Invalidate() {
	clear(pm.m)
}
