package trace

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/job"
)

// countingStream wraps a Stream and counts Next calls, so tests can
// prove a transform stops pulling early.
type countingStream struct {
	src   Stream
	pulls int
}

func (c *countingStream) Next() (*job.Job, error) {
	c.pulls++
	return c.src.Next()
}

func seqJobs(n int, submitStep int64) []*job.Job {
	out := make([]*job.Job, n)
	for i := range out {
		out[i] = &job.Job{
			ID: job.ID(i + 1), User: "user1", Cores: 2,
			Submit: int64(i) * submitStep, Runtime: 30, Walltime: 300,
		}
	}
	return out
}

func TestScannerStreamsInFileOrder(t *testing.T) {
	in := `; header comment
3 20 -1 50 8 -1 -1 8 100 -1 1 2 -1 -1 -1 -1 -1 -1
1 5 -1 10 4 -1 -1 4 20 -1 1 1 -1 -1 -1 -1 -1 -1
2 5 -1 -1 4 -1 -1 4 20 -1 0 1 -1 -1 -1 -1 -1 -1
`
	sc := NewScanner(strings.NewReader(in))
	var ids []job.ID
	for {
		j, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if j == nil {
			break
		}
		ids = append(ids, j.ID)
	}
	// File order, not submit order — and the -1-runtime record dropped.
	if !reflect.DeepEqual(ids, []job.ID{3, 1}) {
		t.Fatalf("ids = %v, want [3 1]", ids)
	}
	if sc.Skipped() != 1 {
		t.Errorf("Skipped = %d, want 1", sc.Skipped())
	}
	if j, err := sc.Next(); j != nil || err != nil {
		t.Errorf("post-end Next = %v, %v", j, err)
	}
}

func TestScannerStickyError(t *testing.T) {
	sc := NewScanner(strings.NewReader("1 2 3\n4 5 6\n"))
	if _, err := sc.Next(); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := sc.Next(); err == nil {
		t.Fatal("error not sticky")
	}
}

func TestWindowExtractsRebasesAndStopsEarly(t *testing.T) {
	src := &countingStream{src: SliceStream(seqJobs(100, 10))}
	got, err := Collect(Window(src, 200, 400))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("window kept %d jobs, want 20", len(got))
	}
	if got[0].ID != 21 || got[0].Submit != 0 {
		t.Errorf("first windowed job = id %d submit %d, want id 21 submit 0", got[0].ID, got[0].Submit)
	}
	if last := got[len(got)-1]; last.Submit != 190 {
		t.Errorf("last rebased submit = %d, want 190", last.Submit)
	}
	// Jobs 1..40 pulled before submit 400 appears at job 41; beyond
	// that the source must never be touched again — the bounded-memory
	// guarantee for windowing a huge archive trace.
	if src.pulls != 41 {
		t.Errorf("source pulled %d times, want 41 (early stop)", src.pulls)
	}
}

func TestWindowKeepsSourceErrorSticky(t *testing.T) {
	// A corrupt record inside the window must keep erroring on every
	// Next, never degrade into a clean EOF.
	sc := NewScanner(strings.NewReader("1 5 -1 10 4 -1 -1 4 20 -1 1 1 -1 -1 -1 -1 -1 -1\nbad line\n"))
	w := Window(sc, 0, 100)
	if j, err := w.Next(); err != nil || j == nil {
		t.Fatalf("first Next = %v, %v", j, err)
	}
	if _, err := w.Next(); err == nil {
		t.Fatal("corrupt record not reported")
	}
	if j, err := w.Next(); err == nil {
		t.Fatalf("window error not sticky: got %v, nil", j)
	}
}

func TestSliceStreamClonesJobs(t *testing.T) {
	jobs := seqJobs(5, 100)
	if _, err := Collect(Window(SliceStream(jobs), 100, 500)); err != nil {
		t.Fatal(err)
	}
	// The transform rebased its copies, never the caller's slice.
	for i, j := range jobs {
		if j.Submit != int64(i)*100 {
			t.Fatalf("SliceStream leaked mutation: job %d submit = %d", i, j.Submit)
		}
	}
}

func TestWindowRejectsEmpty(t *testing.T) {
	if _, err := Collect(Window(SliceStream(nil), 10, 10)); err == nil {
		t.Error("empty window accepted")
	}
}

func TestScaleTimeAndCores(t *testing.T) {
	jobs := seqJobs(4, 100)
	jobs[3].Cores = 1000
	src := ScaleCores(ScaleTime(SliceStream(jobs), 0.5), 1000, 100)
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if got[2].Submit != 100 {
		t.Errorf("scaled submit = %d, want 100", got[2].Submit)
	}
	if got[0].Cores != 1 {
		t.Errorf("narrow job rescaled to %d cores, want 1 (floor)", got[0].Cores)
	}
	if got[3].Cores != 100 {
		t.Errorf("full-width job rescaled to %d cores, want 100", got[3].Cores)
	}
	if _, err := Collect(ScaleTime(SliceStream(nil), 0)); err == nil {
		t.Error("zero time scale accepted")
	}
	if _, err := Collect(ScaleCores(SliceStream(nil), 0, 5)); err == nil {
		t.Error("zero machine size accepted")
	}
}

func TestFilterAndLimit(t *testing.T) {
	src := Limit(Filter(SliceStream(seqJobs(50, 1)), func(j *job.Job) bool { return j.ID%2 == 0 }), 10)
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0].ID != 2 || got[9].ID != 20 {
		t.Fatalf("filter+limit yielded %d jobs, first %v last %v", len(got), got[0].ID, got[len(got)-1].ID)
	}
}

// TestStreamingRoundTrip is the Scanner -> Writer -> Scanner golden
// test: a generated workload streamed out and back must survive
// unchanged, and the streaming Writer must produce byte-identical SWF to
// the materialized WriteSWF.
func TestStreamingRoundTrip(t *testing.T) {
	jobs, err := Generate(Config{Kind: SmallJob, Seed: 33, Cores: 2048, DurationSec: 1800})
	if err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	w := NewWriter(&streamed, "round trip")
	n, err := Copy(w, SliceStream(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(jobs) {
		t.Fatalf("Copy wrote %d records, want %d", n, len(jobs))
	}
	var whole bytes.Buffer
	if err := WriteSWF(&whole, jobs, "round trip"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), whole.Bytes()) {
		t.Fatal("streaming Writer output differs from WriteSWF")
	}
	back, err := Collect(NewScanner(&streamed))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("round trip lost jobs: %d vs %d", len(back), len(jobs))
	}
	for i := range jobs {
		if !sameJob(jobs[i], back[i]) {
			t.Fatalf("job %d mismatch:\n  wrote %+v\n  read  %+v", i, jobs[i], back[i])
		}
	}
}

func TestSWFEdgeCases(t *testing.T) {
	in := strings.Join([]string{
		"; Version: 2.2",
		"; Computer: test",
		"",
		"  ; indented comment",
		// zero-duration job: kept, walltime falls back to the request
		"1 0 -1 0 4 -1 -1 4 600 -1 1 7 -1 -1 -1 -1 -1 -1",
		// -1 sentinels everywhere they are allowed: procs falls back to
		// requested, walltime to runtime, submit clamps to 0
		"2 -3 -1 42 -1 -1 -1 16 -1 -1 1 -1 -1 -1 -1 -1 -1 -1",
		// truncated record (7 fields >= 5): missing trailing fields read
		// as -1
		"3 50 -1 10 2 -1 -1",
		// unknown runtime and unknown procs: both dropped
		"4 60 -1 -1 8 -1 -1 8 100 -1 0 1 -1 -1 -1 -1 -1 -1",
		"5 70 -1 10 -1 -1 -1 -1 100 -1 1 1 -1 -1 -1 -1 -1 -1",
	}, "\n") + "\n"
	sc := NewScanner(strings.NewReader(in))
	jobs, err := Collect(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("got %d jobs, want 3: %+v", len(jobs), jobs)
	}
	if jobs[0].Runtime != 0 || jobs[0].Walltime != 600 {
		t.Errorf("zero-duration job parsed wrong: %+v", jobs[0])
	}
	if jobs[1].Cores != 16 || jobs[1].Walltime != 42 || jobs[1].Submit != 0 || jobs[1].User != "user-1" {
		t.Errorf("sentinel job parsed wrong: %+v", jobs[1])
	}
	if jobs[2].Cores != 2 || jobs[2].Walltime != 10 {
		t.Errorf("truncated record parsed wrong: %+v", jobs[2])
	}
	if sc.Skipped() != 2 {
		t.Errorf("Skipped = %d, want 2", sc.Skipped())
	}
	// The zero-duration job must also flow through the summary path.
	s := Summarize(jobs, 1000)
	if s.ZeroRuntimeJobs != 1 {
		t.Errorf("ZeroRuntimeJobs = %d, want 1", s.ZeroRuntimeJobs)
	}
}

func TestSummarizeStreamMatchesSummarize(t *testing.T) {
	jobs, err := Generate(Config{Kind: MedianJob, Seed: 11, Cores: 4096, DurationSec: 3600})
	if err != nil {
		t.Fatal(err)
	}
	want := Summarize(jobs, int64(4096)*3600)
	got, err := SummarizeStream(SliceStream(jobs), int64(4096)*3600)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streaming summary differs:\n got %+v\nwant %+v", got, want)
	}
}

func TestSWFSourceLoadAppliesTransforms(t *testing.T) {
	jobs := seqJobs(100, 60) // submits 0, 60, ..., 5940
	for _, j := range jobs {
		j.Cores = 512
	}
	dir := t.TempDir()
	path := dir + "/trace.swf"
	var buf bytes.Buffer
	if err := WriteSWF(&buf, jobs, "source test"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	src := SWFSource{
		Path:        path,
		WindowStart: 600, WindowEnd: 3600,
		TimeScale: 0.5,
		CoresFrom: 1024, CoresTo: 128,
		MaxJobs: 20,
	}
	got, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("loaded %d jobs, want 20 (limit)", len(got))
	}
	if got[0].Submit != 0 || got[1].Submit != 30 {
		t.Errorf("windowed+rescaled submits = %d, %d, want 0, 30", got[0].Submit, got[1].Submit)
	}
	if got[0].Cores != 64 {
		t.Errorf("rescaled cores = %d, want 64", got[0].Cores)
	}
	if _, err := (SWFSource{Path: dir + "/missing.swf"}).Load(); err == nil {
		t.Error("missing file accepted")
	}
	// Open-ended window: from 3000 to the end of the trace.
	open, err := (SWFSource{Path: path, WindowStart: 3000}).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(open) != 50 || open[0].Submit != 0 {
		t.Errorf("open-ended window loaded %d jobs (first submit %d), want 50 re-based to 0",
			len(open), open[0].Submit)
	}
	// Configured-but-invalid transforms must error, not silently no-op.
	if _, err := (SWFSource{Path: path, TimeScale: -2}).Load(); err == nil {
		t.Error("negative TimeScale silently ignored")
	}
	if _, err := (SWFSource{Path: path, CoresFrom: 1024}).Load(); err == nil {
		t.Error("half-configured core rescale silently ignored")
	}
}

// TestScannerBoundedOnHugeTrace scans a 150k-record synthetic trace
// produced lazily (no backing slice or file) and windows its first 5%,
// proving the pipeline touches only the prefix it needs.
func TestScannerBoundedOnHugeTrace(t *testing.T) {
	const n = 150000
	gen := &swfGenReader{n: n}
	sc := NewScanner(gen)
	got, err := Collect(Window(sc, 0, 7500)) // submits are 1/s: first 5%
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7500 {
		t.Fatalf("windowed %d jobs, want 7500", len(got))
	}
	if gen.produced >= n {
		t.Fatalf("window drained the whole %d-record trace (early stop failed)", n)
	}
}

// swfGenReader produces SWF lines on demand: record i submits at second
// i. It never holds more than one line in memory.
type swfGenReader struct {
	n        int
	produced int
	buf      []byte
}

func (g *swfGenReader) Read(p []byte) (int, error) {
	for len(g.buf) == 0 {
		if g.produced >= g.n {
			return 0, fmt.Errorf("swfGenReader: read past end") // Scanner must stop before EOF
		}
		i := g.produced
		g.produced++
		g.buf = []byte(fmt.Sprintf("%d %d -1 %d %d -1 -1 %d %d -1 1 %d -1 -1 -1 -1 -1 -1\n",
			i+1, i, 20+i%40, 1+i%4, 1+i%4, 3600, i%97))
	}
	n := copy(p, g.buf)
	g.buf = g.buf[n:]
	return n, nil
}
