package rjms

import (
	"fmt"
	"sort"

	"repro/internal/dvfs"
	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/simengine"
)

// Dynamic DVFS of running jobs — the paper's first future-work item
// (Section VIII): "dynamically change the CPU frequencies while the jobs
// are running; this will allow nodes to adjust the power consumption
// instantly whenever it is needed. This will eventually result into
// faster power decrease when a powercap period is approaching and lower
// jobs' turnaround time after a powercap period is over."
//
// When Config.DynamicDVFS is set (DVFS and MIX policies), the controller
// re-clocks running jobs at cap boundaries: down, largest consumers
// first, until the active budget is met; and back up, oldest jobs first,
// once the window closes. Progress is accounted exactly: a job's
// remaining nominal work shrinks with elapsed time divided by the
// degradation factor of the frequency it ran at, and its completion
// event is rescheduled accordingly.

// runState tracks one running job's progress for re-clocking.
type runState struct {
	endEv            simengine.EventID
	remainingNominal float64 // nominal-frequency seconds of work left at freqSince
	freqSince        int64   // when the current frequency took effect
}

// nodeJobEntry is one running job hosted on a node and the frequency it
// runs at — the per-node slice replaces a map so re-clock and vacate walk
// a handful of contiguous entries instead of hashing.
type nodeJobEntry struct {
	id job.ID
	f  dvfs.Freq
}

// reclock moves a running job to frequency f at time now, updating the
// job's nodes, its remaining-work accounting and its completion event.
func (c *Controller) reclock(j *job.Job, now int64, f dvfs.Freq) {
	rs, ok := c.runStates[j.ID]
	if !ok || j.State != job.StateRunning || f == j.Freq {
		return
	}
	c.invalidatePassMemo()
	// Consume the progress made at the old frequency.
	elapsed := now - rs.freqSince
	if elapsed > 0 {
		rs.remainingNominal -= float64(elapsed) / c.pm.Deg.Factor(j.Freq)
		if rs.remainingNominal < 0 {
			rs.remainingNominal = 0
		}
	}
	rs.freqSince = now
	// The backfill view keys on the walltime scaled by the job's current
	// frequency — move the entry to its new position.
	c.viewRemove(c.viewKey(j))
	j.Freq = f
	c.viewInsert(c.viewKey(j))

	// Re-derive each hosting node's frequency.
	for _, a := range j.Allocs {
		nj := c.nodeJobs[a.Node]
		max := dvfs.Freq(0)
		for k := range nj {
			if nj[k].id == j.ID {
				nj[k].f = f
			}
			if nj[k].f > max {
				max = nj[k].f
			}
		}
		if err := c.clus.SetFreq(a.Node, max); err != nil {
			panic(fmt.Sprintf("rjms: reclock job %d node %d: %v", j.ID, a.Node, err))
		}
	}

	// Reschedule completion: remaining work stretched by the new factor,
	// rounded up so the job never finishes with work outstanding.
	c.eng.Cancel(rs.endEv)
	left := int64(rs.remainingNominal*c.pm.Deg.Factor(f) + 0.999999)
	ev, err := c.eng.At(now+left, func(t int64) { c.finish(j, t, false) })
	if err != nil {
		panic(fmt.Sprintf("rjms: reclock end scheduling for job %d: %v", j.ID, err))
	}
	rs.endEv = ev
	c.runStates[j.ID] = rs
	c.rec.NoteRescale()
	c.noteState(now)
}

// sortedRunning returns the running jobs in a deterministic order chosen
// by less.
func (c *Controller) sortedRunning(less func(a, b *job.Job) bool) []*job.Job {
	out := make([]*job.Job, 0, len(c.running))
	for _, j := range c.running {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return less(out[i], out[k]) })
	return out
}

// throttleRunning lowers running jobs' frequencies, one ladder rung at a
// time — highest frequency first, then youngest — until the active cap
// admits the cluster draw or everything sits at the policy floor.
func (c *Controller) throttleRunning(now int64) {
	budget := c.book.CapAt(now)
	if !budget.IsSet() || budget.Allows(c.observedPower()) {
		return
	}
	jobs := c.sortedRunning(func(a, b *job.Job) bool {
		if a.Freq != b.Freq {
			return a.Freq > b.Freq
		}
		if a.StartTime != b.StartTime {
			return a.StartTime > b.StartTime
		}
		return a.ID > b.ID
	})
	floor := c.pm.Ladder.Min()
	// Round-robin rung-by-rung so the slowdown spreads fairly instead of
	// pinning a few victims to the floor.
	for rung := 0; rung < len(c.pm.Ladder); rung++ {
		changed := false
		for _, j := range jobs {
			if budget.Allows(c.observedPower()) {
				return
			}
			if j.State != job.StateRunning || j.Freq <= floor {
				continue
			}
			below, ok := c.pm.Ladder.Below(j.Freq)
			if !ok {
				continue
			}
			c.reclock(j, now, below)
			changed = true
		}
		if !changed {
			return
		}
	}
}

// boostRunning raises running jobs back toward nominal frequency, oldest
// first, while any still-active budget admits the uplift. With no active
// cap every job returns to nominal — the paper's "lower jobs' turnaround
// time after a powercap period is over".
func (c *Controller) boostRunning(now int64) {
	budget := c.book.CapAt(now)
	jobs := c.sortedRunning(func(a, b *job.Job) bool {
		if a.StartTime != b.StartTime {
			return a.StartTime < b.StartTime
		}
		return a.ID < b.ID
	})
	nominal := c.pm.Ladder.Max()
	for _, j := range jobs {
		if j.State != job.StateRunning || j.Freq >= nominal {
			continue
		}
		target := nominal
		for target > j.Freq {
			if !budget.IsSet() || budget.Allows(c.observedPower()+c.upliftDelta(j, target)) {
				break
			}
			below, ok := c.pm.Ladder.Below(target)
			if !ok || below <= j.Freq {
				target = j.Freq
				break
			}
			target = below
		}
		if target > j.Freq {
			c.reclock(j, now, target)
		}
	}
}

// upliftDelta computes the extra draw of raising one running job to
// frequency f, given the other jobs sharing its nodes.
func (c *Controller) upliftDelta(j *job.Job, f dvfs.Freq) (d power.Watts) {
	prof := c.clus.Profile()
	for _, a := range j.Allocs {
		info, err := c.clus.Info(a.Node)
		if err != nil {
			continue
		}
		maxOther := dvfs.Freq(0)
		for _, e := range c.nodeJobs[a.Node] {
			if e.id != j.ID && e.f > maxOther {
				maxOther = e.f
			}
		}
		newF := f
		if maxOther > newF {
			newF = maxOther
		}
		if newF > info.Freq {
			d += prof.Busy(newF) - prof.Busy(info.Freq)
		}
	}
	return d
}
