// Package slurmconf reads and writes a SLURM-flavoured configuration
// format for the powercap controller, mirroring how Section V of the
// paper surfaces its mechanism: per-node watt parameters (IdleWatts,
// MaxWatts, DownWatts, CpuFreqXWatts), the PowerCap controller state, the
// SchedulerParameters powercap mode (SHUT/DVFS/MIX) and the topology
// layout. The format is line-oriented `Key=Value` with `#` comments,
// case-insensitive keys, and watt lists as `freq:watts` pairs.
//
// Example:
//
//	# curie.conf
//	ClusterName=curie
//	Topology=56x5x18
//	CoresPerNode=16
//	DownWatts=14
//	IdleWatts=117
//	CpuFreqWatts=1200:193,1400:213,1600:234,1800:248,2000:269,2200:289,2400:317,2700:358
//	ChassisWatts=248
//	RackWatts=900
//	SchedulerParameters=powercap_policy=MIX,bf_max_job_test=100
//	ReservationLead=1800
//	CapPlanningHorizon=3600
package slurmconf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/rjms"
)

// File is the parsed configuration.
type File struct {
	ClusterName string
	Config      rjms.Config
}

// Parse reads the configuration format from r. Unknown keys are an
// error (the paper's deployment depends on exact parameter names).
func Parse(r io.Reader) (*File, error) {
	f := &File{}
	freqWatts := map[dvfs.Freq]power.Watts{}
	var downW, idleW power.Watts
	haveProfile := false
	var overhead cluster.Overhead
	haveOverhead := false

	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if i := strings.Index(text, "#"); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		eq := strings.Index(text, "=")
		if eq < 0 {
			return nil, fmt.Errorf("slurmconf: line %d: missing '=' in %q", line, text)
		}
		key := strings.ToLower(strings.TrimSpace(text[:eq]))
		val := strings.TrimSpace(text[eq+1:])
		var err error
		switch key {
		case "clustername":
			f.ClusterName = val
		case "topology":
			f.Config.Topology, err = parseTopology(val, f.Config.Topology.CoresPerNode)
		case "corespernode":
			var n int
			n, err = strconv.Atoi(val)
			f.Config.Topology.CoresPerNode = n
		case "downwatts":
			downW, err = parseWatts(val)
			haveProfile = true
		case "idlewatts":
			idleW, err = parseWatts(val)
			haveProfile = true
		case "cpufreqwatts":
			err = parseFreqWatts(val, freqWatts)
			haveProfile = true
		case "chassiswatts":
			var w power.Watts
			w, err = parseWatts(val)
			overhead.ChassisWatts = float64(w)
			haveOverhead = true
		case "rackwatts":
			var w power.Watts
			w, err = parseWatts(val)
			overhead.RackWatts = float64(w)
			haveOverhead = true
		case "schedulerparameters":
			err = parseSchedulerParameters(val, &f.Config)
		case "reservationlead":
			f.Config.ReservationLead, err = strconv.ParseInt(val, 10, 64)
		case "capplanninghorizon":
			f.Config.CapPlanningHorizon, err = strconv.ParseInt(val, 10, 64)
		case "sampleinterval":
			f.Config.SampleInterval, err = strconv.ParseInt(val, 10, 64)
		case "degminfull":
			f.Config.DegMinFull, err = strconv.ParseFloat(val, 64)
		case "degminmix":
			f.Config.DegMinMix, err = strconv.ParseFloat(val, 64)
		case "mixfloor":
			f.Config.MixFloor, err = dvfs.ParseFreq(val)
		case "killonoverrun":
			f.Config.KillOnOverrun, err = strconv.ParseBool(val)
		case "dynamicdvfs":
			f.Config.DynamicDVFS, err = strconv.ParseBool(val)
		case "measuredpowernoise":
			f.Config.MeasuredPowerNoise, err = strconv.ParseFloat(val, 64)
		case "measuredpowerseed":
			f.Config.MeasuredPowerSeed, err = strconv.ParseInt(val, 10, 64)
		case "measuredpowerwindow":
			f.Config.MeasuredPowerWindow, err = strconv.Atoi(val)
		case "measuredpowerguard":
			f.Config.MeasuredPowerGuard, err = strconv.ParseFloat(val, 64)
		default:
			return nil, fmt.Errorf("slurmconf: line %d: unknown key %q", line, key)
		}
		if err != nil {
			return nil, fmt.Errorf("slurmconf: line %d (%s): %v", line, key, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("slurmconf: %v", err)
	}

	if haveProfile {
		if len(freqWatts) == 0 {
			return nil, fmt.Errorf("slurmconf: DownWatts/IdleWatts given without CpuFreqWatts")
		}
		prof, err := power.NewProfile(downW, idleW, freqWatts)
		if err != nil {
			return nil, fmt.Errorf("slurmconf: %v", err)
		}
		f.Config.Profile = prof
	}
	if haveOverhead {
		f.Config.Overhead = &overhead
	}
	return f, nil
}

func parseWatts(s string) (power.Watts, error) {
	s = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), "W"))
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, fmt.Errorf("negative wattage %v", v)
	}
	return power.Watts(v), nil
}

func parseTopology(s string, coresPerNode int) (cluster.Topology, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 && len(parts) != 4 {
		return cluster.Topology{}, fmt.Errorf("topology %q, want RACKSxCHASSISxNODES[xCORES]", s)
	}
	nums := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return cluster.Topology{}, err
		}
		nums[i] = n
	}
	t := cluster.Topology{Racks: nums[0], ChassisPerRack: nums[1], NodesPerChassis: nums[2], CoresPerNode: coresPerNode}
	if len(nums) == 4 {
		t.CoresPerNode = nums[3]
	}
	if t.CoresPerNode == 0 {
		t.CoresPerNode = 16
	}
	return t, t.Validate()
}

func parseFreqWatts(s string, out map[dvfs.Freq]power.Watts) error {
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		kv := strings.Split(pair, ":")
		if len(kv) != 2 {
			return fmt.Errorf("CpuFreqWatts entry %q, want freq:watts", pair)
		}
		fr, err := dvfs.ParseFreq(kv[0])
		if err != nil {
			return err
		}
		w, err := parseWatts(kv[1])
		if err != nil {
			return err
		}
		out[fr] = w
	}
	if len(out) == 0 {
		return fmt.Errorf("empty CpuFreqWatts")
	}
	return nil
}

func parseSchedulerParameters(s string, cfg *rjms.Config) error {
	for _, opt := range strings.Split(s, ",") {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			continue
		}
		kv := strings.SplitN(opt, "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("SchedulerParameters option %q, want key=value", opt)
		}
		key := strings.ToLower(strings.TrimSpace(kv[0]))
		val := strings.TrimSpace(kv[1])
		switch key {
		case "powercap_policy":
			p, err := core.ParsePolicy(val)
			if err != nil {
				return err
			}
			cfg.Policy = p
		case "bf_max_job_test":
			n, err := strconv.Atoi(val)
			if err != nil {
				return err
			}
			cfg.BackfillDepth = n
		case "powercap_scattered":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return err
			}
			cfg.ScatteredShutdown = b
		case "topology_compact":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return err
			}
			cfg.CompactPlacement = b
		default:
			return fmt.Errorf("unknown SchedulerParameters option %q", key)
		}
	}
	return nil
}

// Write serializes a configuration in the same format Parse accepts.
func Write(w io.Writer, f *File) error {
	bw := bufio.NewWriter(w)
	cfg := f.Config
	if f.ClusterName != "" {
		fmt.Fprintf(bw, "ClusterName=%s\n", f.ClusterName)
	}
	if cfg.Topology != (cluster.Topology{}) {
		fmt.Fprintf(bw, "Topology=%dx%dx%dx%d\n",
			cfg.Topology.Racks, cfg.Topology.ChassisPerRack,
			cfg.Topology.NodesPerChassis, cfg.Topology.CoresPerNode)
	}
	if p := cfg.Profile; p != nil {
		fmt.Fprintf(bw, "DownWatts=%.0f\n", float64(p.Down()))
		fmt.Fprintf(bw, "IdleWatts=%.0f\n", float64(p.Idle()))
		freqs := p.Frequencies()
		sort.Slice(freqs, func(i, j int) bool { return freqs[i] < freqs[j] })
		entries := make([]string, len(freqs))
		for i, fr := range freqs {
			entries[i] = fmt.Sprintf("%d:%.0f", int(fr), float64(p.Busy(fr)))
		}
		fmt.Fprintf(bw, "CpuFreqWatts=%s\n", strings.Join(entries, ","))
	}
	if ov := cfg.Overhead; ov != nil {
		fmt.Fprintf(bw, "ChassisWatts=%.0f\n", ov.ChassisWatts)
		fmt.Fprintf(bw, "RackWatts=%.0f\n", ov.RackWatts)
	}
	params := []string{fmt.Sprintf("powercap_policy=%s", cfg.Policy)}
	if cfg.BackfillDepth != 0 {
		params = append(params, fmt.Sprintf("bf_max_job_test=%d", cfg.BackfillDepth))
	}
	if cfg.ScatteredShutdown {
		params = append(params, "powercap_scattered=true")
	}
	if cfg.CompactPlacement {
		params = append(params, "topology_compact=true")
	}
	fmt.Fprintf(bw, "SchedulerParameters=%s\n", strings.Join(params, ","))
	if cfg.ReservationLead != 0 {
		fmt.Fprintf(bw, "ReservationLead=%d\n", cfg.ReservationLead)
	}
	if cfg.CapPlanningHorizon != 0 {
		fmt.Fprintf(bw, "CapPlanningHorizon=%d\n", cfg.CapPlanningHorizon)
	}
	if cfg.SampleInterval != 0 {
		fmt.Fprintf(bw, "SampleInterval=%d\n", cfg.SampleInterval)
	}
	if cfg.DegMinFull != 0 {
		fmt.Fprintf(bw, "DegMinFull=%g\n", cfg.DegMinFull)
	}
	if cfg.DegMinMix != 0 {
		fmt.Fprintf(bw, "DegMinMix=%g\n", cfg.DegMinMix)
	}
	if cfg.MixFloor != 0 {
		fmt.Fprintf(bw, "MixFloor=%d\n", int(cfg.MixFloor))
	}
	if cfg.KillOnOverrun {
		fmt.Fprintf(bw, "KillOnOverrun=true\n")
	}
	if cfg.DynamicDVFS {
		fmt.Fprintf(bw, "DynamicDVFS=true\n")
	}
	if cfg.MeasuredPowerNoise > 0 {
		fmt.Fprintf(bw, "MeasuredPowerNoise=%g\n", cfg.MeasuredPowerNoise)
		if cfg.MeasuredPowerSeed != 0 {
			fmt.Fprintf(bw, "MeasuredPowerSeed=%d\n", cfg.MeasuredPowerSeed)
		}
		if cfg.MeasuredPowerWindow != 0 {
			fmt.Fprintf(bw, "MeasuredPowerWindow=%d\n", cfg.MeasuredPowerWindow)
		}
		if cfg.MeasuredPowerGuard != 0 {
			fmt.Fprintf(bw, "MeasuredPowerGuard=%g\n", cfg.MeasuredPowerGuard)
		}
	}
	return bw.Flush()
}

// CurieFile returns the configuration of the paper's testbed.
func CurieFile(policy core.Policy) *File {
	prof := power.CurieProfile()
	ov := cluster.CurieOverhead()
	return &File{
		ClusterName: "curie",
		Config: rjms.Config{
			Topology: cluster.CurieTopology(),
			Profile:  prof,
			Overhead: &ov,
			Policy:   policy,
		},
	}
}
