// Package ascii renders the paper's figures as terminal charts: stacked
// area plots for the Figure 6/7 core-utilization and power series, and
// horizontal bar groups for the Figure 8 comparison. Pure text output —
// the reproduction is inspectable without any plotting dependency.
package ascii

import (
	"fmt"
	"strings"
)

// Series is one stacked band of an area chart.
type Series struct {
	Label  string
	Values []float64 // one value per time step, bottom-up stacking order
	Rune   rune      // fill character
}

// StackedArea renders bands stacked bottom-to-top over width x height
// cells. All series must share the same length; values are resampled to
// the width by averaging. yMax fixes the vertical scale (0 means the
// stacked maximum). A reference line (e.g. a powercap) can be overlaid
// with refLine >= 0; it renders as '=' where above the stack.
func StackedArea(series []Series, width, height int, yMax, refLine float64, title, yLabel string) string {
	if len(series) == 0 || width <= 0 || height <= 0 {
		return ""
	}
	n := len(series[0].Values)
	for _, s := range series {
		if len(s.Values) != n {
			return fmt.Sprintf("ascii: series %q has %d points, want %d\n", s.Label, len(s.Values), n)
		}
	}
	if n == 0 {
		return ""
	}

	// Resample each series to `width` columns by block averaging.
	cols := make([][]float64, len(series))
	for i, s := range series {
		cols[i] = resample(s.Values, width)
	}
	// Stack.
	stackTop := make([][]float64, len(series))
	acc := make([]float64, width)
	for i := range series {
		stackTop[i] = make([]float64, width)
		for x := 0; x < width; x++ {
			acc[x] += cols[i][x]
			stackTop[i][x] = acc[x]
		}
	}
	max := yMax
	if max <= 0 {
		for x := 0; x < width; x++ {
			if acc[x] > max {
				max = acc[x]
			}
		}
		if refLine > max {
			max = refLine
		}
	}
	if max <= 0 {
		max = 1
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	cell := max / float64(height)
	for row := height; row >= 1; row-- {
		yLo := float64(row-1) * cell
		yMid := (float64(row) - 0.5) * cell
		// y-axis tick label every few rows.
		label := "          "
		if row == height || row == 1 || row == (height+1)/2 {
			label = fmt.Sprintf("%9.3g ", float64(row)*cell)
		}
		b.WriteString(label)
		b.WriteByte('|')
		for x := 0; x < width; x++ {
			ch := ' '
			for i := len(series) - 1; i >= 0; i-- {
				if stackTop[i][x] >= yMid {
					ch = series[i].Rune
				}
			}
			if refLine > 0 && refLine >= yLo && refLine < yLo+cell && ch == ' ' {
				ch = '='
			}
			b.WriteRune(ch)
		}
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 10))
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	// Legend.
	b.WriteString(strings.Repeat(" ", 11))
	for _, s := range series {
		fmt.Fprintf(&b, "%c=%s  ", s.Rune, s.Label)
	}
	if refLine > 0 {
		b.WriteString("==powercap")
	}
	if yLabel != "" {
		fmt.Fprintf(&b, " (%s)", yLabel)
	}
	b.WriteByte('\n')
	return b.String()
}

func resample(vals []float64, width int) []float64 {
	out := make([]float64, width)
	n := len(vals)
	for x := 0; x < width; x++ {
		lo := x * n / width
		hi := (x + 1) * n / width
		if hi <= lo {
			hi = lo + 1
		}
		if hi > n {
			hi = n
		}
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += vals[i]
		}
		out[x] = sum / float64(hi-lo)
	}
	return out
}

// Bar is one row of a horizontal bar chart.
type Bar struct {
	Label string
	Value float64 // expected in [0, 1] for normalized figures
}

// BarChart renders labelled horizontal bars scaled to width cells; values
// are clamped to [0, max] (max 0 means 1).
func BarChart(bars []Bar, width int, max float64, title string) string {
	if max <= 0 {
		max = 1
	}
	labelW := 0
	for _, b := range bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	for _, b := range bars {
		v := b.Value
		if v < 0 {
			v = 0
		}
		if v > max {
			v = max
		}
		n := int(v/max*float64(width) + 0.5)
		fmt.Fprintf(&sb, "%-*s |%s%s| %.3f\n",
			labelW, b.Label, strings.Repeat("#", n), strings.Repeat(" ", width-n), b.Value)
	}
	return sb.String()
}

// Scatter renders points (x, y, tag) on a width x height grid, each point
// drawn with the first rune of its tag — the Figure 3 style of labelled
// frequency markers per application.
type ScatterPoint struct {
	X, Y float64
	Tag  string
}

// ScatterPlot renders the points with axes spanning [xMin,xMax]x[yMin,yMax]
// (zeros mean auto).
func ScatterPlot(points []ScatterPoint, width, height int, xMin, xMax, yMin, yMax float64, title string) string {
	if len(points) == 0 || width <= 0 || height <= 0 {
		return ""
	}
	if xMin == 0 && xMax == 0 {
		xMin, xMax = points[0].X, points[0].X
		for _, p := range points {
			if p.X < xMin {
				xMin = p.X
			}
			if p.X > xMax {
				xMax = p.X
			}
		}
	}
	if yMin == 0 && yMax == 0 {
		yMin, yMax = points[0].Y, points[0].Y
		for _, p := range points {
			if p.Y < yMin {
				yMin = p.Y
			}
			if p.Y > yMax {
				yMax = p.Y
			}
		}
	}
	if xMax <= xMin {
		xMax = xMin + 1
	}
	if yMax <= yMin {
		yMax = yMin + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = make([]rune, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for _, p := range points {
		x := int((p.X - xMin) / (xMax - xMin) * float64(width-1))
		y := int((p.Y - yMin) / (yMax - yMin) * float64(height-1))
		if x < 0 || x >= width || y < 0 || y >= height {
			continue
		}
		r := '*'
		if p.Tag != "" {
			r = rune(p.Tag[0])
		}
		grid[height-1-y][x] = r
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "%9.3g\n", yMax)
	for _, row := range grid {
		b.WriteString("          |")
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%9.3g +%s\n", yMin, strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s %-8.3g%*s%.3g\n", "", xMin, width-16, "", xMax)
	return b.String()
}
