package replay

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/metrics"
)

// exported mirrors Result with stable JSON field names and without
// unexported machinery; the samples stay in their compact struct form.
type exported struct {
	Name         string         `json:"name"`
	Workload     string         `json:"workload"`
	Policy       string         `json:"policy"`
	CapFraction  float64        `json:"cap_fraction"`
	WindowStart  int64          `json:"window_start,omitempty"`
	WindowEnd    int64          `json:"window_end,omitempty"`
	Racks        int            `json:"racks"`
	Nodes        int            `json:"nodes"`
	Cores        int            `json:"cores"`
	MaxPowerW    float64        `json:"max_power_w"`
	PlanOffNodes int            `json:"plan_off_nodes"`
	PlanSavingW  float64        `json:"plan_saving_w"`
	EnergyJ      float64        `json:"energy_j"`
	WorkCoreSec  float64        `json:"work_core_sec"`
	PeakPowerW   float64        `json:"peak_power_w"`
	MeanPowerW   float64        `json:"mean_power_w"`
	Submitted    int            `json:"jobs_submitted"`
	Launched     int            `json:"jobs_launched"`
	Completed    int            `json:"jobs_completed"`
	Killed       int            `json:"jobs_killed"`
	Rescales     int            `json:"rescales"`
	MeanWaitSec  float64        `json:"mean_wait_sec"`
	NormEnergy   float64        `json:"norm_energy"`
	NormWork     float64        `json:"norm_work"`
	NormLaunched float64        `json:"norm_launched"`
	ByFreq       map[string]int `json:"launched_by_freq"`
	Error        string         `json:"error,omitempty"`
}

func export(r Result) exported {
	e := exported{
		Name:        r.Scenario.Name,
		Workload:    r.Scenario.Workload.Kind.String(),
		Policy:      r.Scenario.Policy.String(),
		CapFraction: r.Scenario.CapFraction,
		Racks:       r.Scenario.Machine().Racks,
		Nodes:       r.Scenario.Machine().Nodes(),
		Cores:       r.Cores,
		MaxPowerW:   float64(r.MaxPower),
		ByFreq:      map[string]int{},
	}
	if r.Scenario.Capped() {
		e.WindowStart, e.WindowEnd = r.Scenario.Window()
	}
	if r.Err != nil {
		e.Error = r.Err.Error()
		return e
	}
	s := r.Summary
	e.PlanOffNodes = len(r.Plan.OffNodes)
	e.PlanSavingW = float64(r.Plan.PlannedSaving)
	e.EnergyJ = float64(s.EnergyJ)
	e.WorkCoreSec = s.WorkCoreSec
	e.PeakPowerW = float64(s.PeakPower)
	e.MeanPowerW = float64(s.MeanPower)
	e.Submitted = s.JobsSubmitted
	e.Launched = s.JobsLaunched
	e.Completed = s.JobsCompleted
	e.Killed = s.JobsKilled
	e.Rescales = s.Rescales
	e.MeanWaitSec = s.MeanWaitSec
	e.NormEnergy = s.NormEnergy
	e.NormWork = s.NormWork
	e.NormLaunched = s.NormLaunched
	for f, n := range s.LaunchedByFreq {
		e.ByFreq[f.String()] = n
	}
	return e
}

// WriteJSON serializes results (without their sample series) as indented
// JSON, suitable for archiving sweep outcomes.
func WriteJSON(w io.Writer, results []Result) error {
	out := make([]exported, len(results))
	for i, r := range results {
		out[i] = export(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteSeriesCSV writes one run's time series as CSV: a fixed prefix of
// columns followed by one busy-cores column per frequency that appears in
// the series (ascending). The file plots directly with any tool.
func WriteSeriesCSV(w io.Writer, samples []metrics.Sample) error {
	cw := csv.NewWriter(w)
	freqs := metrics.FreqsUsed(samples)
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] < freqs[j] })
	header := []string{"t_sec", "power_w", "cap_w", "bonus_w", "busy_nodes", "idle_nodes", "off_nodes", "off_cores"}
	for _, f := range freqs {
		header = append(header, fmt.Sprintf("cores_%dmhz", int(f)))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, len(header))
	for _, s := range samples {
		row = row[:0]
		row = append(row,
			strconv.FormatInt(s.T, 10),
			strconv.FormatFloat(float64(s.Power), 'f', 1, 64),
			strconv.FormatFloat(float64(s.Cap), 'f', 1, 64),
			strconv.FormatFloat(float64(s.Bonus), 'f', 1, 64),
			strconv.Itoa(s.BusyNodes),
			strconv.Itoa(s.IdleNodes),
			strconv.Itoa(s.OffNodes),
			strconv.Itoa(s.OffCores),
		)
		for _, f := range freqs {
			row = append(row, strconv.Itoa(s.CoresByFreq[f]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
