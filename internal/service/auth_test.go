package service

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testAuth(t *testing.T, tenants ...TenantConfig) *Auth {
	t.Helper()
	a, err := NewAuth(tenants)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAuthAuthenticate(t *testing.T) {
	a := testAuth(t,
		TenantConfig{Name: "alice", Token: "tok-a"},
		TenantConfig{Name: "bob", Token: "tok-b", Admin: true},
	)
	cases := []struct {
		header string
		want   string // tenant name, "" = 401
	}{
		{"Bearer tok-a", "alice"},
		{"bearer tok-b", "bob"}, // scheme is case-insensitive
		{"Bearer  tok-a", "alice"},
		{"", ""},
		{"tok-a", ""},        // no scheme
		{"Basic tok-a", ""},  // wrong scheme
		{"Bearer tok-c", ""}, // unknown token
		{"Bearer tok-a extra", ""},
	}
	for _, tc := range cases {
		tcfg, err := a.Authenticate(tc.header)
		if tc.want == "" {
			if err == nil {
				t.Errorf("Authenticate(%q) accepted", tc.header)
			} else if apiErr, ok := err.(*Error); !ok || apiErr.Status != 401 {
				t.Errorf("Authenticate(%q) error = %v, want 401", tc.header, err)
			}
			continue
		}
		if err != nil || tcfg.Name != tc.want {
			t.Errorf("Authenticate(%q) = %q, %v; want %q", tc.header, tcfg.Name, err, tc.want)
		}
	}
}

func TestAuthConfigValidation(t *testing.T) {
	bad := [][]TenantConfig{
		nil,
		{{Name: "", Token: "x"}},
		{{Name: "x", Token: ""}},
		{{Name: "a", Token: "t"}, {Name: "a", Token: "u"}}, // dup name
		{{Name: "a", Token: "t"}, {Name: "b", Token: "t"}}, // dup token
		{{Name: "a", Token: "t", MaxQueued: -1}},
		{{Name: "a", Token: "t", RatePerMin: -1}},
	}
	for i, tenants := range bad {
		if _, err := NewAuth(tenants); err == nil {
			t.Errorf("case %d: bad tenant set accepted: %+v", i, tenants)
		}
	}
}

// TestAuthRateLimit drives the token bucket on a fake clock: burst
// drains, refill accrues at the configured rate, and the refusal's
// retry hint is exactly the time to the next whole token.
func TestAuthRateLimit(t *testing.T) {
	a := testAuth(t, TenantConfig{Name: "alice", Token: "t", RatePerMin: 60, Burst: 2})
	now := time.Unix(1000, 0)
	a.now = func() time.Time { return now }

	// Burst of 2 passes, the third is refused with a ~1s retry hint
	// (60/min = 1 token per second).
	for i := 0; i < 2; i++ {
		if _, ok := a.AllowSubmit("alice"); !ok {
			t.Fatalf("burst submission %d refused", i)
		}
	}
	wait, ok := a.AllowSubmit("alice")
	if ok {
		t.Fatal("over-burst submission allowed")
	}
	if wait <= 0 || wait > time.Second {
		t.Errorf("retry hint = %v, want (0, 1s]", wait)
	}

	// Refill: one second later exactly one more token exists.
	now = now.Add(time.Second)
	if _, ok := a.AllowSubmit("alice"); !ok {
		t.Error("refilled token refused")
	}
	if _, ok := a.AllowSubmit("alice"); ok {
		t.Error("second token granted after one refill second")
	}

	// The bucket never overflows its burst.
	now = now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if _, ok := a.AllowSubmit("alice"); !ok {
			t.Fatalf("post-idle submission %d refused", i)
		}
	}
	if _, ok := a.AllowSubmit("alice"); ok {
		t.Error("idle time grew the bucket beyond burst")
	}

	// Unlimited tenants and unknown names always pass.
	b := testAuth(t, TenantConfig{Name: "free", Token: "f"})
	for i := 0; i < 100; i++ {
		if _, ok := b.AllowSubmit("free"); !ok {
			t.Fatal("unlimited tenant throttled")
		}
	}
	if _, ok := b.AllowSubmit("stranger"); !ok {
		t.Error("unknown tenant name throttled")
	}
}

func TestLoadTokens(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tokens.json")
	body := `{"tenants": [
		{"name": "alice", "token": "s3cret", "max_queued": 4, "rate_per_min": 120},
		{"name": "ops", "token": "0p5", "admin": true}
	]}`
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	tenants, err := LoadTokens(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 2 || tenants[0].Name != "alice" || tenants[0].MaxQueued != 4 || !tenants[1].Admin {
		t.Errorf("LoadTokens = %+v", tenants)
	}

	if err := os.WriteFile(path, []byte(`{"tenants": [], "typo": 1}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTokens(path); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := LoadTokens(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
