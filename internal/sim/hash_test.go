package sim

import (
	"bytes"
	"reflect"
	"testing"
)

// hashSpecs is the spec corpus the normalization/hashing properties are
// checked over: every mode, terse and fully spelled forms, aliased
// names, and the equivalent-spelling corners cache keying surfaced.
func hashSpecs() map[string]RunSpec {
	return map[string]RunSpec{
		"zero":        {},
		"lower-names": {Workload: WorkloadSpec{Kind: "medianjob"}, Policies: []string{"shut"}},
		"upper-names": {Workload: WorkloadSpec{Kind: "MEDIANJOB"}, Policies: []string{"SHUT"}},
		"explicit-mode": {
			Mode:         ModeSweep,
			Workload:     WorkloadSpec{Kind: "24h", Seed: 1004},
			Policies:     []string{"shut", "dvfs"},
			CapFractions: []float64{0.6, 0.4},
		},
		"cells": {
			Cells: []CellSpec{
				{Policy: "mix", CapFraction: 0.4, Workload: &WorkloadSpec{Kind: "smalljob"}},
				{Policy: "SHUT", CapFraction: 0.6},
			},
		},
		"federation": {
			Racks:        2,
			CapFractions: []float64{0.5},
			Federation:   &FederationSpec{Divisions: []string{"PRORATA"}},
		},
		"swf-timescale-one": {
			Workload: WorkloadSpec{SWF: &SWFSpec{Path: "trace.swf", TimeScale: 1}},
		},
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	for name, spec := range hashSpecs() {
		once := spec.Normalize()
		twice := once.Normalize()
		if !reflect.DeepEqual(once, twice) {
			t.Errorf("%s: Normalize not idempotent:\nonce:  %+v\ntwice: %+v", name, once, twice)
		}
	}
}

func TestNormalizeDoesNotMutateInput(t *testing.T) {
	spec := RunSpec{
		Policies: []string{"shut"},
		Cells:    []CellSpec{{Policy: "mix", Workload: &WorkloadSpec{Kind: "smalljob"}}},
		Workload: WorkloadSpec{SWF: &SWFSpec{Path: "t.swf", TimeScale: 1}},
	}
	spec.Normalize()
	if spec.Policies[0] != "shut" || spec.Cells[0].Policy != "mix" || spec.Workload.SWF.TimeScale != 1 {
		t.Fatalf("Normalize mutated its input: %+v", spec)
	}
}

// TestSpecHashStableAcrossJSONRoundTrip pins the cache-key property:
// hashing a spec, its normalized form, and its decode(encode(...))
// round trip all yield the same address.
func TestSpecHashStableAcrossJSONRoundTrip(t *testing.T) {
	for name, spec := range hashSpecs() {
		h0, err := SpecHash(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		hNorm, err := SpecHash(spec.Normalize())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h0 != hNorm {
			t.Errorf("%s: hash(spec) %s != hash(Normalize(spec)) %s", name, h0, hNorm)
		}
		var buf bytes.Buffer
		if err := spec.Normalize().EncodeJSON(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		decoded, err := DecodeJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		hRT, err := SpecHash(decoded)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h0 != hRT {
			t.Errorf("%s: hash drifted across JSON round trip: %s != %s", name, h0, hRT)
		}
	}
}

// TestSpecHashCollapsesEquivalentSpellings pins that the spellings
// Normalize declares equivalent content-address identically, and that
// result-changing fields do not collapse.
func TestSpecHashCollapsesEquivalentSpellings(t *testing.T) {
	hash := func(s RunSpec) string {
		t.Helper()
		h, err := SpecHash(s)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}

	terse := hash(RunSpec{})
	spelled := hash(RunSpec{
		Mode:         ModeSingle,
		Workload:     WorkloadSpec{Kind: "MedianJob"},
		Policies:     []string{"shut"},
		CapFractions: []float64{0.6},
	})
	if terse != spelled {
		t.Errorf("zero spec and its spelled-out default hash differently: %s vs %s", terse, spelled)
	}

	if a, b := hash(RunSpec{Workers: 0}), hash(RunSpec{Workers: 8}); a != b {
		t.Errorf("worker count changed the hash: %s vs %s (pool size never changes results)", a, b)
	}
	one := RunSpec{Workload: WorkloadSpec{SWF: &SWFSpec{Path: "t.swf", TimeScale: 1}}}
	zeroTS := RunSpec{Workload: WorkloadSpec{SWF: &SWFSpec{Path: "t.swf"}}}
	if a, b := hash(one), hash(zeroTS); a != b {
		t.Errorf("TimeScale 1 and 0 hash differently: %s vs %s", a, b)
	}

	if a, b := hash(RunSpec{}), hash(RunSpec{CapFractions: []float64{0.4}}); a == b {
		t.Error("different cap fractions hashed identically")
	}
	if a, b := hash(RunSpec{}), hash(RunSpec{Name: "labelled"}); a == b {
		t.Error("different names hashed identically (names label exports and belong in the address)")
	}
}

func TestRegistryCanonical(t *testing.T) {
	for _, in := range []string{"shut", "SHUT", " Shut "} {
		c, err := Policies.Canonical(in)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", in, err)
		}
		if c != "SHUT" {
			t.Errorf("Canonical(%q) = %q, want SHUT", in, c)
		}
	}
	if _, err := Policies.Canonical("nope"); err == nil {
		t.Error("Canonical of an unknown name succeeded")
	}
}
