package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/tsdb"
)

// FSStore is the durable RunStore: a filesystem archive of completed
// runs, one versioned JSON envelope per spec hash, modeled on
// cc-backend's file-backed job archive. Records are content-addressed
// by sim.SpecHash — "<hash>.json" in the archive directory — and
// written atomically (temp file, fsync, rename), so a crash mid-write
// never leaves a half-record behind and concurrent writers of one hash
// converge on a whole file.
//
// Opening a store scans the directory once into an in-memory metadata
// index (everything List and ByHash need); Get reads and verifies the
// envelope from disk. Files that fail to decode — truncated, corrupt,
// or written by an unknown format version — are skipped at open and
// reported via Skipped, not fatal: one bad file must not take the whole
// archive down with it.
type FSStore struct {
	dir     string
	max     int
	maxAge  time.Duration
	onEvict func(Record)
	// now is the age-sweep clock, replaceable in tests.
	now func() time.Time

	mu      sync.Mutex
	meta    map[string]Record // hash -> light record
	byID    map[string]string // id -> hash
	skipped []string
}

// FSOptions bound a filesystem archive.
type FSOptions struct {
	// MaxRecords caps the archive (0 = keep everything forever, the
	// archive default); beyond it the oldest records are deleted.
	MaxRecords int
	// MaxAge expires records older than this (0 = keep forever). Age
	// is measured from the record's Finished time — Submitted for
	// records that never finished — and the sweep runs at open and on
	// every Put, so an idle archive shrinks the next time the daemon
	// boots or stores a run.
	MaxAge time.Duration
	// OnEvict observes each evicted or replaced record.
	OnEvict func(Record)
}

// OpenFSStore opens (creating if needed) the archive directory and
// indexes its envelopes.
func OpenFSStore(dir string, opt FSOptions) (*FSStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("service: archive needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: creating archive dir: %w", err)
	}
	st := &FSStore{
		dir:     dir,
		max:     opt.MaxRecords,
		maxAge:  opt.MaxAge,
		onEvict: opt.OnEvict,
		now:     time.Now,
		meta:    map[string]Record{},
		byID:    map[string]string{},
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("service: scanning archive dir: %w", err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		rec, err := st.readFile(filepath.Join(dir, name))
		if err != nil {
			st.skipped = append(st.skipped, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		st.meta[rec.SpecHash] = rec.light()
		st.byID[rec.ID] = rec.SpecHash
	}
	// Age out stale records before the store serves anything: a daemon
	// rebooting after a quiet week must not resurrect expired results.
	st.mu.Lock()
	expired := st.sweepAgeLocked("")
	st.mu.Unlock()
	for _, e := range expired {
		if st.onEvict != nil {
			st.onEvict(e)
		}
	}
	return st, nil
}

// Dir returns the archive directory.
func (st *FSStore) Dir() string { return st.dir }

// Skipped reports the files the open scan could not decode (corrupt or
// foreign), one "name: reason" line each.
func (st *FSStore) Skipped() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]string(nil), st.skipped...)
}

func (st *FSStore) path(hash string) string {
	return filepath.Join(st.dir, hash+".json")
}

// recordMeta is the archived form of a Record's service-level metadata
// — the envelope's opaque Meta payload.
type recordMeta struct {
	ID         string    `json:"id"`
	Seq        int       `json:"seq"`
	Tenant     string    `json:"tenant,omitempty"`
	Name       string    `json:"name,omitempty"`
	Mode       sim.Mode  `json:"mode"`
	Policies   []string  `json:"policies,omitempty"`
	Kinds      []string  `json:"kinds,omitempty"`
	State      State     `json:"state"`
	Error      string    `json:"error,omitempty"`
	Submitted  time.Time `json:"submitted_at"`
	Started    time.Time `json:"started_at,omitempty"`
	Finished   time.Time `json:"finished_at,omitempty"`
	CacheHits  int       `json:"cache_hits"`
	CellsDone  int       `json:"cells_done"`
	CellsTotal int       `json:"cells_total"`
	// Stages is absent in archives written before stage timing existed;
	// those decode with a nil pointer, not an error.
	Stages *StageTimings `json:"stages,omitempty"`
	Events []Event       `json:"events,omitempty"`
}

// encodeRecord builds the archive envelope for a record. The live
// Report pointer is process state and is deliberately not encoded; the
// Renders carry what readers consume.
func encodeRecord(rec Record) (sim.Envelope, error) {
	env, err := sim.NewEnvelope(rec.Spec)
	if err != nil {
		return sim.Envelope{}, err
	}
	if env.SpecHash != rec.SpecHash {
		return sim.Envelope{}, fmt.Errorf("service: record %s claims hash %.12s but its spec hashes to %.12s",
			rec.ID, rec.SpecHash, env.SpecHash)
	}
	meta := recordMeta{
		ID: rec.ID, Seq: rec.Seq, Tenant: rec.Tenant,
		Name: rec.Name, Mode: rec.Mode,
		Policies: rec.Policies, Kinds: rec.Kinds,
		State: rec.State, Error: rec.Error,
		Submitted: rec.Submitted, Started: rec.Started, Finished: rec.Finished,
		CacheHits: rec.CacheHits, CellsDone: rec.CellsDone, CellsTotal: rec.CellsTotal,
		Stages: rec.Stages, Events: rec.Events,
	}
	if env.Meta, err = json.Marshal(meta); err != nil {
		return sim.Envelope{}, err
	}
	env.Renders = rec.Renders
	if rec.Telemetry != nil {
		if env.Telemetry, err = json.Marshal(rec.Telemetry); err != nil {
			return sim.Envelope{}, err
		}
	}
	return env, nil
}

// decodeRecord rebuilds a Record from a verified envelope.
func decodeRecord(env sim.Envelope) (Record, error) {
	var meta recordMeta
	if len(env.Meta) == 0 {
		return Record{}, fmt.Errorf("service: archive envelope carries no run metadata")
	}
	if err := json.Unmarshal(env.Meta, &meta); err != nil {
		return Record{}, fmt.Errorf("service: archive metadata: %w", err)
	}
	if meta.ID == "" {
		return Record{}, fmt.Errorf("service: archive metadata names no run id")
	}
	rec := Record{
		ID: meta.ID, Seq: meta.Seq, Tenant: meta.Tenant,
		SpecHash: env.SpecHash, Name: meta.Name, Mode: meta.Mode,
		Policies: meta.Policies, Kinds: meta.Kinds,
		State: meta.State, Error: meta.Error,
		Submitted: meta.Submitted, Started: meta.Started, Finished: meta.Finished,
		CacheHits: meta.CacheHits, CellsDone: meta.CellsDone, CellsTotal: meta.CellsTotal,
		Stages: meta.Stages, Events: meta.Events,
		Spec: env.Spec,
	}
	rec.Renders = env.Renders
	if len(env.Telemetry) > 0 {
		var snap tsdb.Snapshot
		if err := json.Unmarshal(env.Telemetry, &snap); err != nil {
			return Record{}, fmt.Errorf("service: archive telemetry snapshot: %w", err)
		}
		rec.Telemetry = &snap
	}
	return rec, nil
}

// readFile decodes and verifies one archive file.
func (st *FSStore) readFile(path string) (Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return Record{}, err
	}
	defer f.Close()
	env, err := sim.DecodeEnvelope(f)
	if err != nil {
		return Record{}, err
	}
	return decodeRecord(env)
}

// Put archives the record atomically: encode to a temp file in the
// archive directory, fsync, rename onto "<hash>.json". A replaced
// record of the same hash simply loses the rename race — the invariant
// "one record per hash, the newest write wins" is the filesystem's.
func (st *FSStore) Put(rec Record) error {
	if rec.ID == "" || rec.SpecHash == "" {
		return fmt.Errorf("service: record needs an id and a spec hash")
	}
	env, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(st.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("service: archive temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := env.Encode(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("service: archive fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), st.path(rec.SpecHash)); err != nil {
		return fmt.Errorf("service: archive rename: %w", err)
	}

	st.mu.Lock()
	var evicted []Record
	if prev, ok := st.meta[rec.SpecHash]; ok && prev.ID != rec.ID {
		delete(st.byID, prev.ID)
		evicted = append(evicted, prev)
	}
	st.meta[rec.SpecHash] = rec.light()
	st.byID[rec.ID] = rec.SpecHash
	evicted = append(evicted, st.sweepAgeLocked(rec.SpecHash)...)
	for st.max > 0 && len(st.meta) > st.max {
		oldest, ok := st.oldestLocked(rec.SpecHash)
		if !ok {
			break
		}
		evicted = append(evicted, st.meta[oldest])
		st.removeLocked(oldest)
	}
	st.mu.Unlock()
	for _, e := range evicted {
		if st.onEvict != nil {
			st.onEvict(e)
		}
	}
	return nil
}

// sweepAgeLocked removes every record past MaxAge except keep (the
// record a Put just wrote is never its own victim) and returns the
// expired records for OnEvict; st.mu held. Age comes from Finished,
// falling back to Submitted for records that never finished.
func (st *FSStore) sweepAgeLocked(keep string) []Record {
	if st.maxAge <= 0 {
		return nil
	}
	cutoff := st.now().Add(-st.maxAge)
	var expired []Record
	for hash, rec := range st.meta {
		if hash == keep {
			continue
		}
		ts := rec.Finished
		if ts.IsZero() {
			ts = rec.Submitted
		}
		if ts.Before(cutoff) {
			expired = append(expired, rec)
		}
	}
	// Deterministic eviction order (oldest Seq first) so OnEvict
	// observers see a stable sequence.
	sort.Slice(expired, func(i, j int) bool { return expired[i].Seq < expired[j].Seq })
	for _, rec := range expired {
		st.removeLocked(rec.SpecHash)
	}
	return expired
}

// oldestLocked finds the lowest-Seq hash other than keep; st.mu held.
func (st *FSStore) oldestLocked(keep string) (string, bool) {
	best, bestSeq := "", -1
	for hash, rec := range st.meta {
		if hash == keep {
			continue
		}
		if bestSeq < 0 || rec.Seq < bestSeq {
			best, bestSeq = hash, rec.Seq
		}
	}
	return best, best != ""
}

// removeLocked drops the record from the index and disk; st.mu held.
func (st *FSStore) removeLocked(hash string) {
	rec, ok := st.meta[hash]
	if !ok {
		return
	}
	delete(st.meta, hash)
	if st.byID[rec.ID] == hash {
		delete(st.byID, rec.ID)
	}
	_ = os.Remove(st.path(hash))
}

// Get reads the record owning the run id from disk.
func (st *FSStore) Get(id string) (Record, bool, error) {
	st.mu.Lock()
	hash, ok := st.byID[id]
	st.mu.Unlock()
	if !ok {
		return Record{}, false, nil
	}
	rec, err := st.readFile(st.path(hash))
	if err != nil {
		if os.IsNotExist(err) {
			return Record{}, false, nil
		}
		return Record{}, false, fmt.Errorf("service: reading archived run %s: %w", id, err)
	}
	return rec, true, nil
}

// ByHash reads the record for the spec hash from disk.
func (st *FSStore) ByHash(hash string) (Record, bool, error) {
	st.mu.Lock()
	_, ok := st.meta[hash]
	st.mu.Unlock()
	if !ok {
		return Record{}, false, nil
	}
	rec, err := st.readFile(st.path(hash))
	if err != nil {
		if os.IsNotExist(err) {
			return Record{}, false, nil
		}
		return Record{}, false, fmt.Errorf("service: reading archived spec %.12s: %w", hash, err)
	}
	return rec, true, nil
}

// List answers from the in-memory metadata index — no file reads, so
// paging a large archive stays cheap.
func (st *FSStore) List(f ListFilter) ([]Record, string, error) {
	st.mu.Lock()
	records := make([]Record, 0, len(st.meta))
	for _, rec := range st.meta {
		records = append(records, rec)
	}
	st.mu.Unlock()
	sort.Slice(records, func(i, j int) bool { return records[i].Seq < records[j].Seq })
	return pageRecords(records, f)
}

// Delete removes the record owning the run id from index and disk.
func (st *FSStore) Delete(id string) (bool, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	hash, ok := st.byID[id]
	if !ok {
		return false, nil
	}
	st.removeLocked(hash)
	return true, nil
}

// Len counts the archived records.
func (st *FSStore) Len() (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.meta), nil
}

// MaxSeq returns the highest archived sequence number, or -1 when
// empty.
func (st *FSStore) MaxSeq() (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	max := -1
	for _, rec := range st.meta {
		if rec.Seq > max {
			max = rec.Seq
		}
	}
	return max, nil
}

// Close releases the store. The archive holds no open handles between
// calls, so this is a no-op kept for the interface's lifecycle.
func (st *FSStore) Close() error { return nil }
