package replay

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestClaims24hShape is the Section VII-C integration test at reduced
// scale (8 racks, 720 nodes): the 24-hour workload under a one-hour 40%
// reservation across all policies. Asserts the shape relations the paper
// reports; see EXPERIMENTS.md for the full-scale record.
func TestClaims24hShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute integration sweep")
	}
	const racks = 8
	wl := trace.Config{Kind: trace.Day24h, Seed: 1004}
	mk := func(p core.Policy, frac float64) Scenario {
		return Scenario{
			Name: fmt.Sprintf("it/%v/%.0f%%", p, frac*100), Workload: wl,
			Policy: p, CapFraction: frac, ScaleRacks: racks,
		}
	}
	scens := []Scenario{
		mk(core.PolicyNone, 0),
		mk(core.PolicyShut, 0.4),
		mk(core.PolicyDvfs, 0.4),
		mk(core.PolicyMix, 0.4),
		mk(core.PolicyIdle, 0.4),
	}
	rs := RunAll(scens, 0)
	for _, r := range rs {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	base, shut, dvfsR, mix, idle := rs[0], rs[1], rs[2], rs[3], rs[4]

	// Work: high utilization everywhere (the window is 1 h of 24 h);
	// every capped policy below the baseline.
	if base.Summary.NormWork < 0.9 {
		t.Errorf("baseline work %.3f too low", base.Summary.NormWork)
	}
	for _, r := range []Result{shut, dvfsR, mix, idle} {
		if r.Summary.NormWork >= base.Summary.NormWork {
			t.Errorf("%s work %.3f >= baseline %.3f", r.Scenario.Name,
				r.Summary.NormWork, base.Summary.NormWork)
		}
		if r.Summary.JobsKilled != 0 {
			t.Errorf("%s killed jobs without KillOnOverrun", r.Scenario.Name)
		}
	}
	// Energy: every capped policy saves energy; MIX at or below SHUT
	// (the paper's "lowest energy in MIX mode" claim, which we verify as
	// MIX <= SHUT since DVFS's deep 1.2 GHz preparation varies by trace).
	for _, r := range []Result{shut, dvfsR, mix} {
		if r.Summary.EnergyJ >= base.Summary.EnergyJ {
			t.Errorf("%s energy %v >= baseline %v", r.Scenario.Name,
				r.Summary.EnergyJ, base.Summary.EnergyJ)
		}
	}
	// At reduced scale the MIX/SHUT energy gap sits inside trace noise;
	// allow half a percent (the full-scale record in EXPERIMENTS.md has
	// MIX strictly lowest).
	if float64(mix.Summary.EnergyJ) > float64(shut.Summary.EnergyJ)*1.005 {
		t.Errorf("MIX energy %v above SHUT %v", mix.Summary.EnergyJ, shut.Summary.EnergyJ)
	}
	// Shutdown actually happened for SHUT and MIX, never for DVFS/IDLE.
	if len(shut.Plan.OffNodes) == 0 || len(mix.Plan.OffNodes) == 0 {
		t.Error("SHUT/MIX planned no shutdown at 40%")
	}
	if len(dvfsR.Plan.OffNodes) != 0 || len(idle.Plan.OffNodes) != 0 {
		t.Error("DVFS/IDLE planned a shutdown")
	}
	// In-window behaviour for SHUT: the draw falls substantially toward
	// the cap as the group drains (long jobs crossing the window may
	// hold a transient above it — the paper's documented default), and
	// the late-window mean improves on the early-window mean.
	start, end := shut.Scenario.Window()
	capW := 0.4 * float64(shut.MaxPower)
	meanOver := func(from, to int64) float64 {
		var sum float64
		var n int
		for _, s := range shut.Samples {
			if s.T >= from && s.T < to {
				sum += float64(s.Power)
				n++
			}
		}
		if n == 0 {
			t.Fatal("no samples in the window")
		}
		return sum / float64(n)
	}
	early := meanOver(start, (start+end)/2)
	late := meanOver((start+end)/2, end)
	if late >= early {
		t.Errorf("SHUT window draw not draining: late mean %.0f >= early %.0f", late, early)
	}
	if late > capW*1.3 {
		t.Errorf("SHUT late-window mean draw %.0f exceeds cap %.0f by >30%%", late, capW)
	}
	preWindow := meanOver(start-3600, start-1800)
	if late >= preWindow {
		t.Errorf("window draw %.0f not below pre-window draw %.0f", late, preWindow)
	}
	// MIX prepared with 2.0 GHz launches.
	found := false
	for f, cnt := range mix.Summary.LaunchedByFreq {
		if int(f) == 2000 && cnt > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("MIX launched nothing at the 2.0 GHz floor: %v", mix.Summary.LaunchedByFreq)
	}
}

// TestDynamicDVFSImprovesCompliance: with the Section VIII extension the
// DVFS policy meets the cap faster when the window opens (running jobs
// are re-clocked instead of waiting for drain).
func TestDynamicDVFSImprovesCompliance(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	wl := trace.Config{Kind: trace.MedianJob, Seed: 1001, DurationSec: 3 * 3600}
	mk := func(dynamic bool) Scenario {
		return Scenario{
			Name: fmt.Sprintf("dyn=%v", dynamic), Workload: wl,
			Policy: core.PolicyDvfs, CapFraction: 0.6, ScaleRacks: 4,
			DynamicDVFS: dynamic,
		}
	}
	rs := RunAll([]Scenario{mk(false), mk(true)}, 0)
	for _, r := range rs {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	static, dynamic := rs[0], rs[1]
	if dynamic.Summary.Rescales == 0 {
		t.Fatal("dynamic run performed no rescales")
	}
	if static.Summary.Rescales != 0 {
		t.Fatal("static run rescaled jobs")
	}
	// Energy right after the window opens: the dynamic run must draw no
	// more than the static one (it sheds power immediately).
	start, _ := static.Scenario.Window()
	earlyMean := func(r Result) float64 {
		var sum float64
		var n int
		for _, s := range r.Samples {
			if s.T >= start && s.T < start+600 {
				sum += float64(s.Power)
				n++
			}
		}
		if n == 0 {
			t.Fatal("no early-window samples")
		}
		return sum / float64(n)
	}
	if ds, ss := earlyMean(dynamic), earlyMean(static); ds > ss {
		t.Errorf("dynamic early-window draw %.0f above static %.0f", ds, ss)
	}
}
