package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Handler returns the gateway's HTTP API — the daemon /v1 surface plus
// the fleet endpoints:
//
//	POST   /v1/runs                 submit (routed to a worker)
//	GET    /v1/runs                 list routed runs (daemon filters)
//	GET    /v1/runs/{id}            status (+ report), proxied live
//	DELETE /v1/runs/{id}            cancel, proxied to the worker
//	GET    /v1/runs/{id}/report     proxied report rendering
//	GET    /v1/runs/{id}/metrics    proxied telemetry
//	GET    /v1/runs/{id}/series     proxied single-metric query
//	GET    /v1/runs/{id}/events     proxied SSE progress stream
//	GET    /v1/stats                fleet-wide stats (gateway + members)
//	GET    /v1/fleet                member table
//	POST   /v1/fleet/join           worker registration {name, url}
//	POST   /v1/fleet/heartbeat      lease renewal {name}
//	GET    /healthz                 liveness
//
// Clients cannot tell a gateway from a daemon on the /v1/runs surface:
// ids, errors, tenancy and cache-hit semantics match. With Auth
// configured the same bearer rules apply, and the fleet endpoints
// additionally require an admin token — workers join with operator
// credentials, tenants never see the member table.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/runs", g.handleRuns)
	mux.HandleFunc("/v1/runs/", g.handleRun)
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, 200, g.Stats(r.Context()))
	})
	mux.HandleFunc("/v1/fleet", g.adminOnly(g.handleFleet))
	mux.HandleFunc("/v1/fleet/join", g.adminOnly(g.handleJoin))
	mux.HandleFunc("/v1/fleet/heartbeat", g.adminOnly(g.handleHeartbeat))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, 200, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/metrics", g.handleMetrics)
	// pprof mirrors the daemon's gating: open gateways expose it, authed
	// gateways answer non-admins with the same 404 an absent route gets.
	mux.HandleFunc("/debug/pprof/", g.gatePprof(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", g.gatePprof(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", g.gatePprof(pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", g.gatePprof(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", g.gatePprof(pprof.Trace))

	var h http.Handler = mux
	if g.cfg.Auth != nil {
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// /healthz and /metrics stay open: probes and scrapers run
			// without tenant credentials, same as on a daemon.
			if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
				mux.ServeHTTP(w, r)
				return
			}
			tc, err := g.cfg.Auth.Authenticate(r.Header.Get("Authorization"))
			if err != nil {
				w.Header().Set("WWW-Authenticate", `Bearer realm="simd"`)
				writeErr(w, err)
				return
			}
			mux.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantKey, tc)))
		})
	}
	// Middleware outermost: auth refusals are counted and traced too.
	return obs.Middleware(h, obs.MiddlewareOptions{
		Metrics: g.met.httpMet,
		Log:     g.cfg.Logger.Component("gateway-http"),
		Route:   routeTemplate,
	})
}

// gatePprof hides the profiler from non-admin tenants on authenticated
// gateways: a plain 404, indistinguishable from the route not existing.
func (g *Gateway) gatePprof(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if g.cfg.Auth != nil && !requestTenant(r).Admin {
			writeErr(w, &Error{Status: 404, Msg: "not found"})
			return
		}
		h(w, r)
	}
}

// handleMetrics is the gateway's Prometheus exposition: its own
// families plus the fleet-aggregated simd_fleet_* snapshot (which fans
// out to every member's /v1/stats, like GET /v1/stats does).
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = g.met.scrape(w, g.Stats(r.Context()))
}

// adminOnly gates fleet management behind operator tokens on
// authenticated gateways.
func (g *Gateway) adminOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if g.cfg.Auth != nil && !requestTenant(r).Admin {
			writeErr(w, &Error{Status: 403, Msg: "gateway: fleet endpoints require an admin token"})
			return
		}
		h(w, r)
	}
}

func (g *Gateway) handleRuns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		spec, err := sim.DecodeJSON(http.MaxBytesReader(w, r.Body, maxSpecBytes))
		if err != nil {
			writeErr(w, &Error{Status: 400, Msg: err.Error()})
			return
		}
		v, hit, err := g.SubmitTraced(r.Context(), requestTenant(r), spec)
		if err != nil {
			writeErr(w, err)
			return
		}
		status := http.StatusCreated
		if hit {
			status = http.StatusOK
		}
		writeJSON(w, status, submitResponse{Run: v, CacheHit: hit})
	case http.MethodGet:
		q := r.URL.Query()
		tenant := requestTenant(r)
		if err := checkTenantScope(q.Get("tenant"), g.cfg.Auth, tenant); err != nil {
			writeErr(w, err)
			return
		}
		f, err := ParseListFilter(q)
		if err != nil {
			writeErr(w, err)
			return
		}
		applyTenantScope(&f, g.cfg.Auth, tenant)
		views, next, err := g.List(f)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, 200, listResponse{Runs: views, NextCursor: next})
	default:
		writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
	}
}

func (g *Gateway) handleRun(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/runs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		writeErr(w, &Error{Status: 404, Msg: "missing run id"})
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			v, err := g.GetAs(requestTenant(r), id, r.URL.Query().Get("report") != "0")
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, 200, v)
		case http.MethodDelete:
			v, err := g.CancelAs(requestTenant(r), id)
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, 200, v)
		default:
			writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
		}
	case "report", "metrics", "series", "events":
		if r.Method != http.MethodGet {
			writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
			return
		}
		g.proxySubresource(w, r, id, sub)
	default:
		writeErr(w, &Error{Status: 404, Msg: fmt.Sprintf("unknown resource %q", sub)})
	}
}

// proxySubresource forwards a per-run read to the assigned worker,
// translating the run id both ways. Unassigned runs answer from
// gateway state (a queued run has no report, telemetry or events yet);
// a worker that fails mid-proxy is declared dead — the client retries
// and finds the run requeued.
func (g *Gateway) proxySubresource(w http.ResponseWriter, r *http.Request, id, sub string) {
	gr, err := g.lookup(requestTenant(r), id)
	if err != nil {
		writeErr(w, err)
		return
	}
	m, workerRunID, local := g.assignment(gr)
	if m == nil || workerRunID == "" {
		switch sub {
		case "report":
			writeErr(w, &Error{Status: 409, Msg: fmt.Sprintf("service: run %s is %s; report not ready", id, local.State)})
		case "events":
			g.localEvents(w, r, local)
		default:
			writeErr(w, &Error{Status: 404, Msg: fmt.Sprintf("run %s recorded no telemetry", id)})
		}
		return
	}

	path := "/v1/runs/" + workerRunID + "/" + sub
	if raw := r.URL.RawQuery; raw != "" {
		path += "?" + raw
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, m.client.Base+path, nil)
	if err != nil {
		writeErr(w, &Error{Status: 500, Msg: err.Error()})
		return
	}
	if reqID := obs.RequestIDFrom(r.Context()); reqID != "" {
		req.Header.Set(obs.RequestIDHeader, reqID)
	}
	resp, err := m.client.http().Do(req)
	if err != nil {
		g.met.proxyErrors.Inc()
		if g.baseCtx.Err() == nil && r.Context().Err() == nil {
			g.markDead(m.name)
		}
		writeErr(w, &Error{Status: 503, Msg: fmt.Sprintf("gateway: worker %s unreachable; run requeued", m.name)})
		return
	}
	defer resp.Body.Close()

	switch sub {
	case "metrics", "series":
		// Small JSON bodies naming the worker's run id — rewrite it.
		g.patchRunField(w, resp, gr.id)
	default:
		// report: opaque rendering; events: SSE stream. Neither carries
		// run ids — relay verbatim, flushing per chunk so live event
		// streams stay live.
		copyResponse(w, resp)
	}
}

// patchRunField relays a JSON response, rewriting its "run" field into
// the gateway's id namespace.
func (g *Gateway) patchRunField(w http.ResponseWriter, resp *http.Response, gwID string) {
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxSpecBytes))
	if err != nil {
		writeErr(w, &Error{Status: 502, Msg: fmt.Sprintf("gateway: reading worker response: %v", err)})
		return
	}
	if resp.StatusCode >= 400 {
		relayBody(w, resp.StatusCode, resp.Header.Get("Content-Type"), body)
		return
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		relayBody(w, resp.StatusCode, resp.Header.Get("Content-Type"), body)
		return
	}
	if _, ok := m["run"]; ok {
		m["run"] = gwID
	}
	writeJSON(w, resp.StatusCode, m)
}

func relayBody(w http.ResponseWriter, status int, contentType string, body []byte) {
	if contentType != "" {
		w.Header().Set("Content-Type", contentType)
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// copyResponse relays status, content type and body, flushing as bytes
// arrive (SSE streams must not buffer).
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "" {
		w.Header().Set("Cache-Control", cc)
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// localEvents streams the events a gateway-held run has: the queued
// marker, plus the terminal marker for runs that ended without ever
// reaching a worker. The stream closes after the replay — assigned
// runs get the worker's live (keepalive-bearing) stream proxied
// instead.
func (g *Gateway) localEvents(w http.ResponseWriter, r *http.Request, v RunView) {
	serveSSE(w, r, 0, func(ctx context.Context, emit func(Event) error) error {
		if err := emit(Event{Seq: 0, Type: "queued"}); err != nil {
			return err
		}
		if v.Terminal() {
			return emit(Event{Seq: 1, Type: string(v.State), Error: v.Error})
		}
		return nil
	})
}

// joinRequest is the POST /v1/fleet/join body.
type joinRequest struct {
	// Name is the worker's stable identity (rendezvous hashing keys on
	// it — renaming a worker moves its cache affinity).
	Name string `json:"name"`
	// URL is the worker's advertised base address, reachable from the
	// gateway.
	URL string `json:"url"`
}

// joinResponse tells the worker its heartbeat deadline.
type joinResponse struct {
	// LeaseTTL is the Go duration string the worker must heartbeat
	// within.
	LeaseTTL string `json:"lease_ttl"`
}

func (g *Gateway) handleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
		return
	}
	var req joinRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeErr(w, &Error{Status: 400, Msg: fmt.Sprintf("gateway: bad join body: %v", err)})
		return
	}
	ttl, err := g.Register(req.Name, req.URL)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, 200, joinResponse{LeaseTTL: ttl.String()})
}

func (g *Gateway) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
		return
	}
	var req joinRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeErr(w, &Error{Status: 400, Msg: fmt.Sprintf("gateway: bad heartbeat body: %v", err)})
		return
	}
	if err := g.Heartbeat(req.Name); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, 200, map[string]string{"status": "ok"})
}

func (g *Gateway) handleFleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
		return
	}
	writeJSON(w, 200, g.Fleet())
}
