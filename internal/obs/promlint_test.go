package obs

import (
	"strings"
	"testing"
)

func lintString(s string) []string { return Lint(strings.NewReader(s)) }

func wantProblem(t *testing.T, problems []string, substr string) {
	t.Helper()
	for _, p := range problems {
		if strings.Contains(p, substr) {
			return
		}
	}
	t.Errorf("no problem containing %q in %v", substr, problems)
}

func TestLintClean(t *testing.T) {
	exposition := `# HELP app_ops_total Operations.
# TYPE app_ops_total counter
app_ops_total 12
# HELP app_depth Queue depth.
# TYPE app_depth gauge
app_depth{pool="a"} 3
app_depth{pool="b"} 0
# HELP app_latency_seconds Latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 2
app_latency_seconds_bucket{le="1"} 5
app_latency_seconds_bucket{le="+Inf"} 7
app_latency_seconds_sum 9.25
app_latency_seconds_count 7
`
	if problems := lintString(exposition); len(problems) != 0 {
		t.Errorf("clean exposition flagged: %v", problems)
	}
}

func TestLintMissingFamily(t *testing.T) {
	wantProblem(t, lintString("orphan_total 1\n"), "no # HELP/# TYPE family")
}

func TestLintDuplicateType(t *testing.T) {
	s := `# HELP a_total x.
# TYPE a_total counter
# TYPE a_total counter
a_total 1
`
	wantProblem(t, lintString(s), "duplicate TYPE")
}

func TestLintCounterNaming(t *testing.T) {
	s := `# HELP a_ops x.
# TYPE a_ops counter
a_ops 1
# HELP a_live_total y.
# TYPE a_live_total gauge
a_live_total 1
`
	problems := lintString(s)
	wantProblem(t, problems, "should end in _total")
	wantProblem(t, problems, "should not end in _total")
}

func TestLintHistogramBucketOrder(t *testing.T) {
	s := `# HELP h_seconds x.
# TYPE h_seconds histogram
h_seconds_bucket{le="1"} 2
h_seconds_bucket{le="0.5"} 3
h_seconds_bucket{le="+Inf"} 4
h_seconds_sum 1
h_seconds_count 4
`
	wantProblem(t, lintString(s), "bucket bounds not increasing")
}

func TestLintHistogramNonCumulative(t *testing.T) {
	s := `# HELP h_seconds x.
# TYPE h_seconds histogram
h_seconds_bucket{le="0.5"} 5
h_seconds_bucket{le="1"} 3
h_seconds_bucket{le="+Inf"} 5
h_seconds_sum 1
h_seconds_count 5
`
	wantProblem(t, lintString(s), "cumulative bucket count decreased")
}

func TestLintHistogramMissingInf(t *testing.T) {
	s := `# HELP h_seconds x.
# TYPE h_seconds histogram
h_seconds_bucket{le="1"} 2
h_seconds_sum 1
h_seconds_count 2
`
	wantProblem(t, lintString(s), "no +Inf bucket")
}

func TestLintHistogramCountMismatch(t *testing.T) {
	s := `# HELP h_seconds x.
# TYPE h_seconds histogram
h_seconds_bucket{le="+Inf"} 4
h_seconds_sum 1
h_seconds_count 5
`
	wantProblem(t, lintString(s), "_count 5 != +Inf bucket 4")
}

func TestLintDeclaredNeverSampled(t *testing.T) {
	s := `# HELP ghost_total x.
# TYPE ghost_total counter
`
	wantProblem(t, lintString(s), "declared but never sampled")
}

func TestLintBadValueAndName(t *testing.T) {
	s := `# HELP a_total x.
# TYPE a_total counter
a_total notanumber
`
	wantProblem(t, lintString(s), "bad value")
	wantProblem(t, lintString("0bad 1\n"), "invalid metric name")
}

func TestLintPerLabelSetHistograms(t *testing.T) {
	// Two label sets of the same histogram family are independent series:
	// each needs its own +Inf and consistent counts.
	s := `# HELP h_seconds x.
# TYPE h_seconds histogram
h_seconds_bucket{route="/a",le="1"} 2
h_seconds_bucket{route="/a",le="+Inf"} 3
h_seconds_sum{route="/a"} 1.5
h_seconds_count{route="/a"} 3
h_seconds_bucket{route="/b",le="1"} 0
h_seconds_bucket{route="/b",le="+Inf"} 1
h_seconds_sum{route="/b"} 2
h_seconds_count{route="/b"} 1
`
	if problems := lintString(s); len(problems) != 0 {
		t.Errorf("independent label sets flagged: %v", problems)
	}
}
