package replay

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

func TestWriteJSON(t *testing.T) {
	s := Scenario{
		Name:     "json-test",
		Workload: shortWorkload(trace.MedianJob, 5),
		Policy:   core.PolicyShut, CapFraction: 0.6, ScaleRacks: testRacks,
	}
	results := []Result{Run(s)}
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	var back []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(back) != 1 {
		t.Fatalf("entries = %d", len(back))
	}
	e := back[0]
	if e["name"] != "json-test" || e["policy"] != "SHUT" {
		t.Errorf("identity fields wrong: %v %v", e["name"], e["policy"])
	}
	if e["cap_fraction"].(float64) != 0.6 {
		t.Errorf("cap_fraction = %v", e["cap_fraction"])
	}
	if e["energy_j"].(float64) <= 0 || e["work_core_sec"].(float64) <= 0 {
		t.Errorf("integrals missing: %v %v", e["energy_j"], e["work_core_sec"])
	}
	if e["plan_off_nodes"].(float64) <= 0 {
		t.Errorf("plan_off_nodes = %v", e["plan_off_nodes"])
	}
	if _, ok := e["launched_by_freq"].(map[string]any); !ok {
		t.Errorf("launched_by_freq missing")
	}
	if _, ok := e["error"]; ok {
		t.Error("error field present on success")
	}
}

func TestWriteJSONError(t *testing.T) {
	bad := Run(Scenario{Workload: trace.Config{Kind: trace.MedianJob, DurationSec: -1}})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []Result{bad}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"error"`) {
		t.Errorf("error not exported:\n%s", buf.String())
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	s := Scenario{
		Workload: shortWorkload(trace.MedianJob, 5),
		Policy:   core.PolicyDvfs, CapFraction: 0.5, ScaleRacks: testRacks,
		SampleEvery: 300,
	}
	r := Run(s)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, r.Samples); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(r.Samples)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(r.Samples)+1)
	}
	header := rows[0]
	for _, want := range []string{"t_sec", "power_w", "cap_w", "off_nodes"} {
		found := false
		for _, h := range header {
			if h == want {
				found = true
			}
		}
		if !found {
			t.Errorf("header missing %q: %v", want, header)
		}
	}
	freqCols := 0
	for _, h := range header {
		if strings.HasPrefix(h, "cores_") {
			freqCols++
		}
	}
	if freqCols == 0 {
		t.Error("no per-frequency columns")
	}
	for i, row := range rows {
		if len(row) != len(header) {
			t.Fatalf("row %d has %d cells, want %d", i, len(row), len(header))
		}
	}
}
