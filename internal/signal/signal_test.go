package signal

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func ptr(v float64) *float64 { return &v }

// sampleTimes is the conformance probe grid: boundaries, interior
// points and far-future instants every determinism check evaluates.
var sampleTimes = []int64{0, 1, 59, 900, 901, 3600, 43200, 86399, 86400, 86401, 604800, 1 << 31}

// conformanceSpecs enumerates one spec per registered kind plus nested
// combinator trees — the suite every property test below iterates.
func conformanceSpecs() map[string]*Spec {
	return map[string]*Spec{
		"constant": {Kind: "constant", Value: 0.75},
		"step":     {Kind: "step", Times: []int64{0, 3600, 7200}, Values: []float64{1, 0.5, 0.9}},
		"sinusoid": {Kind: "sinusoid", Mean: 1, Amplitude: 0.25, PeriodSec: 3600},
		"diurnal":  {Kind: "diurnal", Mean: 1, Amplitude: 0.3, PhaseSec: 1800},
		"trace":    {Kind: "trace", Times: []int64{0, 1800}, Values: []float64{0.8, 1.1}},
		"clamp": {Kind: "clamp", Min: ptr(0.8), Max: ptr(1.1),
			Input: &Spec{Kind: "sinusoid", Mean: 1, Amplitude: 0.5, PeriodSec: 7200}},
		"scale": {Kind: "scale", Factor: 0.5, Input: &Spec{Kind: "constant", Value: 2}},
		"compose": {Kind: "compose", Inputs: []*Spec{
			{Kind: "diurnal", Mean: 1, Amplitude: 0.2},
			{Kind: "step", Times: []int64{0, 43200}, Values: []float64{1, 0.7}},
		}},
	}
}

// TestDeterminismAcrossRebuilds pins the replay contract: building the
// same spec twice — as a restarted daemon would — yields bit-identical
// samples at every probe instant.
func TestDeterminismAcrossRebuilds(t *testing.T) {
	for name, spec := range conformanceSpecs() {
		// Round-trip through JSON to model a spec stored and reloaded
		// across a restart.
		raw, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var reloaded Spec
		if err := json.Unmarshal(raw, &reloaded); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		a, err := Build(spec)
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		b, err := Build(&reloaded)
		if err != nil {
			t.Fatalf("%s: rebuild: %v", name, err)
		}
		for _, at := range sampleTimes {
			if va, vb := a.At(at), b.At(at); va != vb {
				t.Errorf("%s: At(%d) differs across rebuilds: %v vs %v", name, at, va, vb)
			}
			// A Source must also be pure: the same instant twice gives
			// the same value.
			if v1, v2 := a.At(at), a.At(at); v1 != v2 {
				t.Errorf("%s: At(%d) not pure: %v then %v", name, at, v1, v2)
			}
		}
	}
}

// TestClampBounds verifies every clamp output lands inside its bounds
// regardless of the input's range.
func TestClampBounds(t *testing.T) {
	spec := &Spec{Kind: "clamp", Min: ptr(0.9), Max: ptr(1.05),
		Input: &Spec{Kind: "sinusoid", Mean: 1, Amplitude: 2, PeriodSec: 600}}
	src, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	for at := int64(0); at < 1200; at += 7 {
		if v := src.At(at); v < 0.9 || v > 1.05 {
			t.Fatalf("At(%d)=%v escapes [0.9,1.05]", at, v)
		}
	}
	// One-sided clamps leave the other side open.
	lo, err := Build(&Spec{Kind: "clamp", Min: ptr(0.5), Input: &Spec{Kind: "constant", Value: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if v := lo.At(0); v != 3 {
		t.Fatalf("min-only clamp capped from above: got %v, want 3", v)
	}
}

// TestCombinatorAlgebra pins the compose/clamp/scale laws the docs
// promise: compose multiplies pointwise, scale is compose-with-a-
// constant, clamping an in-bounds signal is the identity.
func TestCombinatorAlgebra(t *testing.T) {
	base := &Spec{Kind: "sinusoid", Mean: 1, Amplitude: 0.25, PeriodSec: 3600}
	scaled, err := Build(&Spec{Kind: "scale", Factor: 0.5, Input: base})
	if err != nil {
		t.Fatal(err)
	}
	composed, err := Build(&Spec{Kind: "compose", Inputs: []*Spec{
		{Kind: "constant", Value: 0.5}, base,
	}})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	identity, err := Build(&Spec{Kind: "clamp", Min: ptr(0.0), Max: ptr(10.0), Input: base})
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range sampleTimes {
		want := 0.5 * direct.At(at)
		if v := scaled.At(at); math.Abs(v-want) > 1e-12 {
			t.Errorf("scale: At(%d)=%v, want %v", at, v, want)
		}
		if v := composed.At(at); math.Abs(v-want) > 1e-12 {
			t.Errorf("compose: At(%d)=%v, want %v", at, v, want)
		}
		if v := identity.At(at); v != direct.At(at) {
			t.Errorf("in-bounds clamp not identity at %d: %v vs %v", at, v, direct.At(at))
		}
	}
}

func TestStepHold(t *testing.T) {
	src, err := Build(&Spec{Kind: "step", Times: []int64{100, 200}, Values: []float64{1, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   int64
		want float64
	}{{0, 1}, {99, 1}, {100, 1}, {199, 1}, {200, 0.5}, {10000, 0.5}}
	for _, c := range cases {
		if v := src.At(c.at); v != c.want {
			t.Errorf("At(%d)=%v, want %v", c.at, v, c.want)
		}
	}
}

func TestSinusoidPeriodic(t *testing.T) {
	src, err := Build(&Spec{Kind: "sinusoid", Mean: 1, Amplitude: 0.25, PeriodSec: 3600})
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []int64{0, 137, 1800} {
		if a, b := src.At(at), src.At(at+3600); math.Abs(a-b) > 1e-9 {
			t.Errorf("not periodic: At(%d)=%v, At(%d)=%v", at, a, at+3600, b)
		}
	}
}

func TestDiurnalShape(t *testing.T) {
	src, err := Build(&Spec{Kind: "diurnal", Mean: 1, Amplitude: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if v := src.At(0); math.Abs(v-0.7) > 1e-9 {
		t.Errorf("midnight trough: got %v, want 0.7", v)
	}
	if v := src.At(43200); math.Abs(v-1.3) > 1e-9 {
		t.Errorf("noon crest: got %v, want 1.3", v)
	}
}

func TestTraceCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "price.csv")
	data := "# energy price trace\n0, 1.0\n\n3600, 0.6\n7200, 1.2\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := Build(&Spec{Kind: "trace", Path: path})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   int64
		want float64
	}{{0, 1}, {3599, 1}, {3600, 0.6}, {7200, 1.2}, {1 << 20, 1.2}}
	for _, c := range cases {
		if v := src.At(c.at); v != c.want {
			t.Errorf("At(%d)=%v, want %v", c.at, v, c.want)
		}
	}
}

func TestTraceErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, data string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"empty":      "# only comments\n",
		"no-comma":   "0 1.0\n",
		"bad-time":   "x,1.0\n",
		"bad-value":  "0,y\n",
		"descending": "100,1\n50,2\n",
	}
	for name, data := range cases {
		if _, err := Build(&Spec{Kind: "trace", Path: write(name+".csv", data)}); err == nil {
			t.Errorf("%s: Build accepted malformed trace", name)
		}
	}
	if _, err := Build(&Spec{Kind: "trace", Path: filepath.Join(dir, "absent.csv")}); err == nil {
		t.Error("Build accepted missing trace file")
	}
}

func TestNormalizeCanonicalAndIdempotent(t *testing.T) {
	s := &Spec{Kind: "SINE", PeriodSec: 60, Inputs: nil}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Kind != "sinusoid" {
		t.Fatalf("alias not canonicalized: %q", s.Kind)
	}
	if s.Mean != 1 {
		t.Fatalf("mean default not applied: %v", s.Mean)
	}
	before := *s
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, *s) {
		t.Fatalf("Normalize not idempotent: %+v then %+v", before, *s)
	}
	// Defaults for the other kinds.
	c := &Spec{Kind: "constant"}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Value != 1 {
		t.Fatalf("constant default: %v", c.Value)
	}
	sc := &Spec{Kind: "scale", Input: &Spec{Kind: "constant"}}
	if err := sc.Normalize(); err != nil {
		t.Fatal(err)
	}
	if sc.Factor != 1 || sc.Input.Value != 1 {
		t.Fatalf("scale defaults not recursive: %+v", sc)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]*Spec{
		"unknown-kind":     {Kind: "nope"},
		"step-empty":       {Kind: "step"},
		"step-mismatch":    {Kind: "step", Times: []int64{0, 1}, Values: []float64{1}},
		"step-unsorted":    {Kind: "step", Times: []int64{5, 5}, Values: []float64{1, 2}},
		"sinusoid-period":  {Kind: "sinusoid", Mean: 1},
		"trace-neither":    {Kind: "trace"},
		"trace-both":       {Kind: "trace", Path: "x.csv", Times: []int64{0}, Values: []float64{1}},
		"clamp-no-input":   {Kind: "clamp", Min: ptr(0.0)},
		"clamp-no-bounds":  {Kind: "clamp", Input: &Spec{Kind: "constant"}},
		"clamp-inverted":   {Kind: "clamp", Min: ptr(2.0), Max: ptr(1.0), Input: &Spec{Kind: "constant"}},
		"scale-no-input":   {Kind: "scale", Factor: 2},
		"compose-empty":    {Kind: "compose"},
		"nested-bad-input": {Kind: "scale", Input: &Spec{Kind: "step"}},
		"nested-bad-list":  {Kind: "compose", Inputs: []*Spec{{Kind: "constant"}, {Kind: "bogus"}}},
	}
	for name, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, spec)
		}
		if _, err := Build(spec); err == nil {
			t.Errorf("%s: Build accepted %+v", name, spec)
		}
	}
}

func TestBuildNil(t *testing.T) {
	src, err := Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range sampleTimes {
		if v := src.At(at); v != 1 {
			t.Fatalf("nil spec At(%d)=%v, want 1", at, v)
		}
	}
}
