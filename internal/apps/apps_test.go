package apps

import (
	"math"
	"testing"

	"repro/internal/dvfs"
	"repro/internal/power"
)

// TestFigure5Reproduction checks every published rho value and mechanism
// verdict of the Figure 5 table.
func TestFigure5Reproduction(t *testing.T) {
	prof := power.CurieProfile()
	want := map[string]float64{
		"NA": 0.0, "linpack": -0.027, "IMB": -0.029,
		"SPEC Float": -0.088, "SPEC Integer": -0.134,
		"Common value": -0.174, "NAS suite": -0.225,
		"STREAM": -0.350, "GROMACS": -0.422,
	}
	rows := Figure5Rows()
	if len(rows) != len(want) {
		t.Fatalf("Figure5Rows has %d rows, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		wantRho, ok := want[r.Name]
		if !ok {
			t.Errorf("unexpected row %q", r.Name)
			continue
		}
		got := r.Rho(prof)
		if math.Abs(got-wantRho) > 0.006 {
			t.Errorf("%s: rho = %.4f, want %.3f", r.Name, got, wantRho)
		}
		// Every row at or below the 2.27 break-even picks switch-off.
		if r.Name != "NA" && r.BestMechanism(prof) != dvfs.MechanismShutdown {
			t.Errorf("%s: mechanism = %v, want switch-off", r.Name, r.BestMechanism(prof))
		}
	}
}

func TestMeasuredApps(t *testing.T) {
	apps := Measured()
	if len(apps) != 4 {
		t.Fatalf("Measured returned %d apps", len(apps))
	}
	var linpack *Profile
	for i := range apps {
		if apps[i].Name == "linpack" {
			linpack = &apps[i]
		}
	}
	if linpack == nil || linpack.PowerAlpha != 1 {
		t.Fatal("linpack must stress the full table power (alpha 1)")
	}
}

func TestMaxPowerEndpoints(t *testing.T) {
	prof := power.CurieProfile()
	lp, err := ByName("linpack")
	if err != nil {
		t.Fatal(err)
	}
	// Linpack at nominal hits the table maximum (358 W) and at 1.2 GHz
	// the table value 193 W.
	if got := lp.MaxPowerAt(prof, dvfs.F2700); got != 358 {
		t.Errorf("linpack at 2.7 GHz = %v, want 358", got)
	}
	if got := lp.MaxPowerAt(prof, dvfs.F1200); got != 193 {
		t.Errorf("linpack at 1.2 GHz = %v, want 193", got)
	}
	// Lower-alpha codes draw strictly less at every frequency.
	st, err := ByName("STREAM")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range prof.Frequencies() {
		if st.MaxPowerAt(prof, f) >= lp.MaxPowerAt(prof, f) {
			t.Errorf("STREAM draw at %v not below linpack", f)
		}
	}
}

func TestNormTimeEndpointsAndMonotonicity(t *testing.T) {
	prof := power.CurieProfile()
	for _, app := range Measured() {
		if got := app.NormTimeAt(prof, dvfs.F2700); got != 1 {
			t.Errorf("%s: NormTime(2.7) = %v, want 1", app.Name, got)
		}
		if got := app.NormTimeAt(prof, dvfs.F1200); math.Abs(got-app.DegMin) > 1e-9 {
			t.Errorf("%s: NormTime(1.2) = %v, want %v", app.Name, got, app.DegMin)
		}
		prev := math.Inf(1)
		for _, f := range prof.Frequencies() {
			v := app.NormTimeAt(prof, f)
			if v > prev {
				t.Errorf("%s: NormTime not decreasing with frequency at %v", app.Name, f)
			}
			prev = v
		}
	}
}

func TestNormTimeClamps(t *testing.T) {
	prof := power.CurieProfile()
	lp, _ := ByName("linpack")
	if got := lp.NormTimeAt(prof, 0); got != 1 {
		t.Errorf("NormTime(0=nominal) = %v", got)
	}
	if got := lp.NormTimeAt(prof, 500); math.Abs(got-lp.DegMin) > 1e-9 {
		t.Errorf("NormTime below range = %v, want clamp to DegMin", got)
	}
	if got := lp.NormTimeAt(prof, 9000); got != 1 {
		t.Errorf("NormTime above range = %v, want clamp to 1", got)
	}
}

func TestFigure3Points(t *testing.T) {
	prof := power.CurieProfile()
	pts := Figure3Points(prof)
	if len(pts) != 4*8 {
		t.Fatalf("points = %d, want 32 (4 apps x 8 freqs)", len(pts))
	}
	// The 1/f interpolation bows below the straight line in f: mid-range
	// frequencies cost less slowdown than a linear model would claim,
	// with the penalty accelerating toward the ladder bottom.
	lp, _ := ByName("linpack")
	mid := lp.NormTimeAt(prof, dvfs.F1800)
	linear := 1 + (lp.DegMin-1)*float64(dvfs.F2700-dvfs.F1800)/float64(dvfs.F2700-dvfs.F1200)
	if mid >= linear {
		t.Errorf("1/f model midpoint %v not below linear-in-f %v", mid, linear)
	}
	// All points within the physical envelope.
	for _, p := range pts {
		if p.Watts < prof.Idle() || p.Watts > prof.Max() {
			t.Errorf("%s@%v draw %v outside [idle,max]", p.App, p.Freq, p.Watts)
		}
		if p.NormTime < 1 || p.NormTime > 2.27 {
			t.Errorf("%s@%v time %v outside [1, 2.27]", p.App, p.Freq, p.NormTime)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown app accepted")
	}
}
