// Package simengine is a deterministic discrete-event simulation core. It
// replaces the paper's real-time "multiple-slurmd" emulation (Section VII-A)
// with virtual time: the controller logic runs unchanged, but hours of
// replayed workload execute in milliseconds and every run is exactly
// reproducible. Events at equal timestamps fire in scheduling order (FIFO),
// which gives the deterministic tie-breaking the replay methodology of
// Section VII-B relies on ("as the replay is deterministic, we can compare
// the different replays").
//
// The pending set is a 4-ary implicit heap ordered by (time, seq) plus a
// same-timestamp FIFO lane: events scheduled at the current clock value
// bypass the heap entirely (the dominant pattern in the RJMS hot path —
// handlers chaining same-time follow-ups) and fire in append order after
// every heap event carrying that timestamp. That order is exactly the
// global (time, seq) order, because a heap event at the current time was
// necessarily scheduled before the clock reached it and therefore holds a
// smaller seq than any lane event. Fired events return to a free list and
// Cancel is a tombstone checked against a per-slot generation counter, so
// the steady state allocates nothing and cancellation is O(1).
package simengine

import (
	"fmt"
)

// Time is virtual time in seconds since the start of the simulation.
type Time = int64

// Handler is an event callback; it receives the current virtual time.
type Handler func(now Time)

type event struct {
	at       Time
	seq      uint64 // FIFO tie-break for equal timestamps
	gen      uint64 // incremented on recycle; stale EventIDs no-op
	fn       Handler
	canceled bool
}

// EventID allows cancelling a scheduled event. The zero value is inert.
type EventID struct {
	ev  *event
	gen uint64
}

// Engine owns the virtual clock and the pending event set. It is not safe
// for concurrent use; run independent engines in parallel instead.
type Engine struct {
	now     Time
	seq     uint64
	heap    []*event // 4-ary implicit heap on (at, seq)
	lane    []*event // FIFO lane of events with at == now
	laneOff int      // index of the lane head
	free    []*event // recycled event slots
	pending int      // live (scheduled, unfired, uncancelled) events
	running bool
	stopped bool
	fired   uint64
}

// New returns an engine whose clock starts at time start.
func New(start Time) *Engine {
	return &Engine{now: start}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns how many events are scheduled and not yet fired or
// cancelled. The count is maintained live — tombstoned cancellations
// still occupying the heap do not inflate it.
func (e *Engine) Pending() int { return e.pending }

// less orders events by (time, seq) — the global deterministic firing
// order.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush appends ev and sifts it up the 4-ary heap.
func (e *Engine) heapPush(ev *event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !less(ev, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		i = p
	}
	e.heap[i] = ev
}

// heapPop removes and returns the minimum event.
func (e *Engine) heapPop() *event {
	top := e.heap[0]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap[n] = nil
	e.heap = e.heap[:n]
	if n == 0 {
		return top
	}
	// Sift the displaced last element down from the root.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if less(e.heap[j], e.heap[m]) {
				m = j
			}
		}
		if !less(e.heap[m], last) {
			break
		}
		e.heap[i] = e.heap[m]
		i = m
	}
	e.heap[i] = last
	return top
}

// recycle returns a popped event slot to the free list. The generation
// bump invalidates every outstanding EventID pointing at the slot, so
// it happens before the handler runs — a handler rescheduling into the
// slot it is firing from is safe.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.canceled = false
	e.free = append(e.free, ev)
}

// next returns the globally next event without removing it, or nil.
// The lane holds equal-timestamp events in seq order, so its head is
// the lane minimum; comparing it against the heap top by (at, seq)
// yields the global minimum.
func (e *Engine) next() *event {
	var h *event
	if len(e.heap) > 0 {
		h = e.heap[0]
	}
	if e.laneOff >= len(e.lane) {
		return h
	}
	l := e.lane[e.laneOff]
	if h != nil && less(h, l) {
		return h
	}
	return l
}

// pop removes the event next() returned. ev tells pop which structure
// it came from.
func (e *Engine) pop(ev *event) {
	if e.laneOff < len(e.lane) && e.lane[e.laneOff] == ev {
		e.lane[e.laneOff] = nil
		e.laneOff++
		if e.laneOff == len(e.lane) {
			e.lane = e.lane[:0]
			e.laneOff = 0
		}
		return
	}
	e.heapPop()
}

// At schedules fn at absolute time at. Scheduling in the past (before the
// current clock) is an error: a simulator that silently reorders causality
// produces wrong replays.
func (e *Engine) At(at Time, fn Handler) (EventID, error) {
	if fn == nil {
		return EventID{}, fmt.Errorf("simengine: nil handler")
	}
	if at < e.now {
		return EventID{}, fmt.Errorf("simengine: schedule at t=%d before now t=%d", at, e.now)
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.pending++
	if at == e.now && (e.laneOff >= len(e.lane) || e.lane[len(e.lane)-1].at == at) {
		// Same-time events fire after every pending heap event at this
		// timestamp (all scheduled earlier, so smaller seq) in append
		// order — global (time, seq) order without touching the heap.
		// The lane stays single-timestamped: if a backwards horizon
		// left stale lane entries, new events take the heap instead.
		e.lane = append(e.lane, ev)
	} else {
		e.heapPush(ev)
	}
	return EventID{ev: ev, gen: ev.gen}, nil
}

// After schedules fn d seconds from now; d must be >= 0.
func (e *Engine) After(d int64, fn Handler) (EventID, error) {
	if d < 0 {
		return EventID{}, fmt.Errorf("simengine: negative delay %d", d)
	}
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an already
// fired or already cancelled event is a harmless no-op (the generation
// check catches IDs whose slot has been recycled). The tombstoned slot
// is reclaimed when the queue reaches its timestamp.
func (e *Engine) Cancel(id EventID) {
	if id.ev == nil || id.ev.gen != id.gen || id.ev.canceled {
		return
	}
	id.ev.canceled = true
	e.pending--
}

// Stop makes Run return after the currently executing handler.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the next event lies strictly beyond horizon (which then
// becomes the clock value). A negative horizon means "no horizon".
// Handlers may schedule further events, including at the current time.
func (e *Engine) Run(horizon Time) error {
	if e.running {
		return fmt.Errorf("simengine: Run reentered")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for !e.stopped {
		ev := e.next()
		if ev == nil {
			break
		}
		if ev.canceled {
			e.pop(ev)
			e.recycle(ev)
			continue
		}
		if horizon >= 0 && ev.at > horizon {
			e.now = horizon
			return nil
		}
		e.pop(ev)
		e.now = ev.at
		e.fired++
		e.pending--
		fn := ev.fn
		e.recycle(ev)
		fn(e.now)
	}
	if horizon >= 0 && e.now < horizon {
		e.now = horizon
	}
	return nil
}

// Step fires exactly the next pending event (if any) and reports whether
// one fired.
func (e *Engine) Step() bool {
	for {
		ev := e.next()
		if ev == nil {
			return false
		}
		e.pop(ev)
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		e.pending--
		fn := ev.fn
		e.recycle(ev)
		fn(e.now)
		return true
	}
}
