package simengine

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestRunOrders(t *testing.T) {
	e := New(0)
	var got []int64
	for _, at := range []Time{30, 10, 20} {
		at := at
		if _, err := e.At(at, func(now Time) { got = append(got, now) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now = %d, want 30", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("Fired = %d, want 3", e.Fired())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New(0)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := e.At(5, func(Time) { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(got) {
		t.Errorf("same-time events fired out of FIFO order: %v", got)
	}
}

func TestSchedulingFromHandler(t *testing.T) {
	e := New(0)
	var hits []Time
	if _, err := e.At(1, func(now Time) {
		hits = append(hits, now)
		if _, err := e.After(2, func(now Time) { hits = append(hits, now) }); err != nil {
			t.Error(err)
		}
		// Same-time chaining is allowed.
		if _, err := e.After(0, func(now Time) { hits = append(hits, now) }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	want := []Time{1, 1, 3}
	if len(hits) != 3 || hits[0] != want[0] || hits[1] != want[1] || hits[2] != want[2] {
		t.Errorf("hits = %v, want %v", hits, want)
	}
}

func TestPastSchedulingRejected(t *testing.T) {
	e := New(100)
	if _, err := e.At(99, func(Time) {}); err == nil {
		t.Error("past event accepted")
	}
	if _, err := e.After(-1, func(Time) {}); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := e.At(100, nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestCancel(t *testing.T) {
	e := New(0)
	fired := false
	id, err := e.At(5, func(Time) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	e.Cancel(id)
	e.Cancel(id) // double cancel is a no-op
	e.Cancel(EventID{})
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d", e.Pending())
	}
}

func TestHorizon(t *testing.T) {
	e := New(0)
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		if _, err := e.At(at, func(now Time) { fired = append(fired, now) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want two events", fired)
	}
	if e.Now() != 20 {
		t.Errorf("Now = %d, want horizon 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	// Resume to drain the rest.
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 || fired[2] != 25 {
		t.Errorf("after resume fired = %v", fired)
	}
}

func TestHorizonAdvancesEmptyClock(t *testing.T) {
	e := New(0)
	if err := e.Run(42); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 42 {
		t.Errorf("Now = %d, want 42", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := New(0)
	count := 0
	for i := Time(1); i <= 10; i++ {
		if _, err := e.At(i, func(Time) {
			count++
			if count == 3 {
				e.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3 (stopped)", count)
	}
}

func TestStep(t *testing.T) {
	e := New(0)
	n := 0
	for i := Time(1); i <= 3; i++ {
		if _, err := e.At(i, func(Time) { n++ }); err != nil {
			t.Fatal(err)
		}
	}
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !e.Step() || !e.Step() {
		t.Fatal("steps failed")
	}
	if e.Step() {
		t.Error("Step on empty queue reported true")
	}
	if n != 3 {
		t.Errorf("n = %d", n)
	}
}

func TestStepSkipsCancelled(t *testing.T) {
	e := New(0)
	fired := false
	id, _ := e.At(1, func(Time) {})
	if _, err := e.At(2, func(Time) { fired = true }); err != nil {
		t.Fatal(err)
	}
	e.Cancel(id)
	if !e.Step() {
		t.Fatal("Step found nothing")
	}
	if !fired {
		t.Error("Step fired the cancelled event instead of the live one")
	}
}

func TestRunReentry(t *testing.T) {
	e := New(0)
	var inner error
	if _, err := e.At(1, func(Time) { inner = e.Run(-1) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	if inner == nil {
		t.Error("reentrant Run accepted")
	}
}

// Property: any multiset of event times fires in sorted order.
func TestFiringOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := New(0)
		var fired []Time
		for _, at := range times {
			if _, err := e.At(Time(at), func(now Time) { fired = append(fired, now) }); err != nil {
				return false
			}
		}
		if err := e.Run(-1); err != nil {
			return false
		}
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPendingExactUnderCancel pins the live counter: tombstoned
// cancellations must not inflate Pending even while their slots still
// sit in the queue.
func TestPendingExactUnderCancel(t *testing.T) {
	e := New(0)
	ids := make([]EventID, 10)
	for i := range ids {
		id, err := e.At(Time(i+1), func(Time) {})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	for _, id := range ids[:4] {
		e.Cancel(id)
	}
	e.Cancel(ids[0]) // double cancel must not double-decrement
	if e.Pending() != 6 {
		t.Fatalf("Pending after cancels = %d, want 6", e.Pending())
	}
	if !e.Step() {
		t.Fatal("Step found nothing")
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending after step = %d, want 5", e.Pending())
	}
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", e.Pending())
	}
	if e.Fired() != 6 {
		t.Fatalf("Fired = %d, want 6", e.Fired())
	}
}

// TestStaleCancelAfterRecycle pins the generation check: an EventID
// whose slot has fired and been reused must not cancel the new tenant.
func TestStaleCancelAfterRecycle(t *testing.T) {
	e := New(0)
	stale, err := e.At(1, func(Time) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(1); err != nil {
		t.Fatal(err)
	}
	// The slot is free; the next At reuses it.
	fired := false
	if _, err := e.At(2, func(Time) { fired = true }); err != nil {
		t.Fatal(err)
	}
	e.Cancel(stale) // stale generation: must be a no-op
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (stale cancel hit the new event)", e.Pending())
	}
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("recycled slot's event was cancelled by a stale id")
	}
}

// TestSameTimeLaneOrder pins the heap/lane merge rule: events scheduled
// for time T before the clock reaches T fire before events scheduled at
// T from within T's handlers, and both groups fire in scheduling order.
func TestSameTimeLaneOrder(t *testing.T) {
	e := New(0)
	var got []int
	rec := func(i int) Handler { return func(Time) { got = append(got, i) } }
	if _, err := e.At(5, func(Time) {
		got = append(got, 0)
		// Chained same-time events: must fire after every pre-scheduled
		// t=5 event, in this order.
		if _, err := e.After(0, rec(3)); err != nil {
			t.Error(err)
		}
		if _, err := e.After(0, rec(4)); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.At(5, rec(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.At(5, rec(2)); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(-1); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order = %v, want %v", got, want)
		}
	}
}

// TestSteadyStateAllocFree pins the free-list promise: once warmed up,
// the schedule/fire cycle allocates nothing.
func TestSteadyStateAllocFree(t *testing.T) {
	e := New(0)
	fn := func(Time) {}
	for i := 0; i < 64; i++ { // warm the free list and heap capacity
		if _, err := e.After(1, fn); err != nil {
			t.Fatal(err)
		}
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := e.After(1, fn); err != nil {
			t.Fatal(err)
		}
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule+fire allocates %.1f times per op, want 0", allocs)
	}
}
