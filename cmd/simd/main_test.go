package main

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
)

// TestServeSubmitDrain boots the daemon on an ephemeral port, submits a
// spec twice (the second must dedupe), sends itself SIGTERM and checks
// the drain exits cleanly — the CI smoke in miniature.
func TestServeSubmitDrain(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan string, 1)
	var (
		wg     sync.WaitGroup
		runErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		runErr = run([]string{"-listen", "127.0.0.1:0", "-workers", "1"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never came up")
	}

	c := service.NewClient("http://" + addr)
	c.PollInterval = 20 * time.Millisecond
	ctx := context.Background()
	spec := sim.RunSpec{
		Workload:     sim.WorkloadSpec{Kind: "smalljob", Seed: 9, DurationSec: 1800},
		Racks:        1,
		Policies:     []string{"SHUT"},
		CapFractions: []float64{0.6},
	}
	v1, hit, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first submission was a cache hit")
	}
	v2, hit, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || v2.ID != v1.ID {
		t.Errorf("second identical submission: hit=%v id=%s want id=%s", hit, v2.ID, v1.ID)
	}
	if _, err := c.Wait(ctx, v1.ID, nil); err != nil {
		t.Fatal(err)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if runErr != nil {
		t.Fatalf("daemon exited with error: %v", runErr)
	}
	if !strings.Contains(out.String(), "1 cache hits") {
		t.Errorf("drain summary missing cache hit count:\n%s", out.String())
	}
}
