package sim

import (
	"fmt"
	"io"
	"os"

	"repro/internal/figures"
	"repro/internal/registry"
	"repro/internal/replay"
)

// SinkOptions parameterize rendering; zero values pick the historical
// defaults (96x16 charts, 40-column comparison bars).
type SinkOptions struct {
	// Width/Height size ASCII charts.
	Width, Height int
}

func (o SinkOptions) withDefaults() SinkOptions {
	if o.Width <= 0 {
		o.Width = 96
	}
	if o.Height <= 0 {
		o.Height = 16
	}
	return o
}

// Sink encodes a Report into one output format. Sinks must handle
// every mode: single results, sweep tables and federation tables all
// flow through the same pipeline, so a CLI (or service) asks for a
// format by name and never dispatches on what kind of run it was.
type Sink func(w io.Writer, rep Report, opt SinkOptions) error

// SinksRegistry holds the output formats: json, csv, ascii. Register
// new encoders here (e.g. a metrics-push or parquet sink) and every
// CLI -json/-csv-style flag surface can name them.
var Sinks = registry.New[Sink]("sink")

func init() {
	Sinks.Register("json", encodeJSON, "machine-readable results (summaries, tables; no sample series)")
	Sinks.Register("csv", encodeCSV, "time-series CSV for single runs, the summary table for sweeps")
	Sinks.Register("ascii", encodeASCII, "the terminal rendering: charts and comparison tables")
}

// Export encodes the report in the named format (a Sinks registry
// lookup, so errors enumerate the registered formats).
func Export(w io.Writer, format string, rep Report, opt SinkOptions) error {
	sink, err := Sinks.Lookup(format)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return sink(w, rep, opt)
}

// WriteReportFile encodes the report into a freshly created file — the
// shared backing of every CLI's -json/-csv flags.
func WriteReportFile(path, format string, rep Report, opt SinkOptions) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Export(f, format, rep, opt); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// errEmptyReport makes an unpopulated report a loud error instead of
// silent empty output.
func errEmptyReport() error {
	return fmt.Errorf("sim: report carries no result to encode (run not executed?)")
}

// encodeJSON writes the historical JSON forms: the single-run result
// array, the sweep table envelope, or the federation table envelope —
// byte-identical to what the CLIs wrote before the facade.
func encodeJSON(w io.Writer, rep Report, opt SinkOptions) error {
	switch {
	case rep.Single != nil:
		return replay.WriteJSON(w, []replay.Result{*rep.Single})
	case rep.Table != nil:
		return rep.Table.WriteJSON(w)
	case rep.FederationTable != nil:
		return rep.FederationTable.WriteJSON(w)
	}
	return errEmptyReport()
}

// encodeCSV writes the time series of a single run, or the summary
// table of a sweep — the historical meaning of each CLI's -csv flag.
func encodeCSV(w io.Writer, rep Report, opt SinkOptions) error {
	switch {
	case rep.Single != nil:
		return replay.WriteSeriesCSV(w, rep.Single.Samples)
	case rep.Table != nil:
		return rep.Table.WriteCSV(w)
	case rep.FederationTable != nil:
		return rep.FederationTable.WriteCSV(w)
	}
	return errEmptyReport()
}

// encodeASCII renders the terminal form: the stacked time-series chart
// plus summary for single runs, the comparison tables for sweeps.
func encodeASCII(w io.Writer, rep Report, opt SinkOptions) error {
	opt = opt.withDefaults()
	switch {
	case rep.Single != nil:
		r := *rep.Single
		if r.Err != nil {
			_, err := fmt.Fprintf(w, "%s: ERROR: %v\n", r.Scenario.Name, r.Err)
			return err
		}
		if _, err := io.WriteString(w, figures.TimeSeries(r, opt.Width, opt.Height)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "\nsummary: %v\nnormalized: energy=%.3f work=%.3f launched=%.3f mean-wait=%.0fs\n",
			r.Summary, r.Summary.NormEnergy, r.Summary.NormWork, r.Summary.NormLaunched, r.Summary.MeanWaitSec)
		return err
	case rep.Table != nil:
		_, err := io.WriteString(w, rep.Table.ASCII(40))
		return err
	case rep.FederationTable != nil:
		_, err := io.WriteString(w, rep.FederationTable.ASCII(opt.Width))
		return err
	}
	return errEmptyReport()
}

// Fingerprint hashes the report's deterministic content — the sweep
// table fingerprints, or the single run's JSON export — so tests can
// assert that two invocation paths (flags vs a spec file) produced the
// same results bit for bit.
func (r Report) Fingerprint() (string, error) {
	switch {
	case r.Table != nil:
		return r.Table.Fingerprint(), nil
	case r.FederationTable != nil:
		return r.FederationTable.Fingerprint(), nil
	case r.Single != nil:
		h := fingerprintWriter{}
		if err := replay.WriteJSON(&h, []replay.Result{*r.Single}); err != nil {
			return "", err
		}
		return h.Sum(), nil
	}
	return "", errEmptyReport()
}
