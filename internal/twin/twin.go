// Package twin turns the batch federation broker into a long-lived
// digital twin of a multi-cluster site: a continuous lockstep session
// over rjms controllers, driven by a virtual clock with a configurable
// real-time ratio (including as-fast-as-possible), streaming telemetry
// into a sink at every epoch boundary and accepting live mutations —
// budget overrides, member add/remove, node failure and repair — from
// a serialized queue that only ever applies at epoch boundaries.
//
// Determinism is the load-bearing contract: the member simulations are
// pure functions of their scenarios, the budget signal is a pure
// function of virtual time, and mutations take effect only at epoch
// boundaries, so a session replayed from the same Spec plus its
// recorded mutation log (Log) produces byte-identical telemetry. That
// is what makes failover and audit of a long-lived twin possible: any
// observer can reconstruct exactly what the site saw.
package twin

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/federation"
	"repro/internal/power"
	"repro/internal/replay"
	"repro/internal/reservation"
	"repro/internal/rjms"
	"repro/internal/signal"
	"repro/internal/sim"
)

// DefaultEpoch is the redistribution period when EpochSec is zero —
// the federation default.
const DefaultEpoch = replay.DefaultFederationEpoch

// DefaultHorizon is the virtual horizon when HorizonSec is zero: one
// simulated week. A twin is long-lived but not literally unbounded —
// the controllers preallocate their sample storage from the horizon,
// so "forever" must stay finite.
const DefaultHorizon = int64(7 * 24 * 3600)

// MemberSpec describes one member cluster of a twin: a workload, a
// policy and a machine scale. No cap fields — the twin's broker owns
// every member's budget, exactly like the batch federation.
type MemberSpec struct {
	// Name identifies the member in mutations and telemetry series;
	// empty names default to member<i> at build. Names must be unique.
	Name string `json:"name,omitempty"`
	// Workload is the member's job source (synthetic kind or SWF).
	Workload sim.WorkloadSpec `json:"workload"`
	// Policy is the member's powercap policy (registry name, default
	// DVFS — every node stays powered, so budget moves translate into
	// launch headroom immediately).
	Policy string `json:"policy,omitempty"`
	// Racks scales the member machine (0 = full Curie).
	Racks int `json:"racks,omitempty"`
}

// Spec declares a twin session. It is JSON-serializable with the same
// Validate-then-Normalize contract as sim.RunSpec.
type Spec struct {
	Name string `json:"name,omitempty"`
	// Members are the initial fleet (at least one).
	Members []MemberSpec `json:"members"`
	// GlobalCapFraction is the site budget as a fraction of the summed
	// member maximum draws; must be in (0, 1).
	GlobalCapFraction float64 `json:"global_cap_fraction"`
	// Division picks the redistribution policy (default "demand").
	Division string `json:"division,omitempty"`
	// EpochSec is the redistribution period; 0 means 900 s. Negative
	// values are rejected.
	EpochSec int64 `json:"epoch_sec,omitempty"`
	// HorizonSec bounds the virtual lifetime; 0 means one week.
	HorizonSec int64 `json:"horizon_sec,omitempty"`
	// RealTimeRatio paces the virtual clock: simulated seconds per
	// wall-clock second. 0 runs as fast as possible; 1 runs in real
	// time; 3600 runs an hour a second.
	RealTimeRatio float64 `json:"real_time_ratio,omitempty"`
	// Signal, when non-nil, scales the global budget over virtual time
	// (see internal/signal).
	Signal *signal.Spec `json:"signal,omitempty"`
}

// Validate reports structural problems without touching the
// filesystem (bad trace paths surface when the session builds).
func (s Spec) Validate() error {
	if len(s.Members) == 0 {
		return fmt.Errorf("twin: spec %q has no members", s.Name)
	}
	if s.GlobalCapFraction <= 0 || s.GlobalCapFraction >= 1 {
		return fmt.Errorf("twin: spec %q global cap fraction %v outside (0, 1)", s.Name, s.GlobalCapFraction)
	}
	if s.Division != "" {
		if _, err := sim.Divisions.Lookup(s.Division); err != nil {
			return fmt.Errorf("twin: %w", err)
		}
	}
	if s.EpochSec < 0 {
		return fmt.Errorf("twin: epoch must be a positive duration, got %d (omit or 0 for the %d s default)", s.EpochSec, DefaultEpoch)
	}
	if s.HorizonSec < 0 {
		return fmt.Errorf("twin: negative horizon %d", s.HorizonSec)
	}
	epoch, horizon := s.EpochSec, s.HorizonSec
	if epoch == 0 {
		epoch = DefaultEpoch
	}
	if horizon == 0 {
		horizon = DefaultHorizon
	}
	if horizon < epoch {
		return fmt.Errorf("twin: horizon %d shorter than epoch %d", horizon, epoch)
	}
	if s.RealTimeRatio < 0 {
		return fmt.Errorf("twin: negative real-time ratio %v", s.RealTimeRatio)
	}
	seen := map[string]bool{}
	for i, m := range s.Members {
		if err := validateMember(m, i); err != nil {
			return err
		}
		name := memberName(m, i)
		if seen[name] {
			return fmt.Errorf("twin: duplicate member name %q", name)
		}
		seen[name] = true
	}
	if s.Signal != nil {
		if err := s.Signal.Validate(); err != nil {
			return fmt.Errorf("twin: budget signal: %w", err)
		}
	}
	return nil
}

func validateMember(m MemberSpec, i int) error {
	policy := m.Policy
	if policy == "" {
		policy = "DVFS"
	}
	if _, err := sim.MemberScenario(memberName(m, i), m.Workload, policy, m.Racks); err != nil {
		return fmt.Errorf("twin: member %d (%s): %w", i, memberName(m, i), err)
	}
	return nil
}

func memberName(m MemberSpec, i int) string {
	if m.Name != "" {
		return m.Name
	}
	return fmt.Sprintf("member%d", i)
}

// Normalize fills defaults (division, epoch, horizon, member names and
// policies) and canonicalizes registry names. Idempotent; normalized
// specs round-trip exactly through JSON.
func (s Spec) Normalize() Spec {
	out := s
	if out.Division == "" {
		out.Division = replay.DivideDemand.String()
	} else if c, err := sim.Divisions.Canonical(out.Division); err == nil {
		out.Division = c
	}
	if out.EpochSec == 0 {
		out.EpochSec = DefaultEpoch
	}
	if out.HorizonSec == 0 {
		out.HorizonSec = DefaultHorizon
	}
	members := make([]MemberSpec, len(out.Members))
	for i, m := range out.Members {
		members[i] = normalizeMember(m, i)
	}
	out.Members = members
	if out.Signal != nil {
		copied := *out.Signal
		if err := copied.Normalize(); err == nil {
			out.Signal = &copied
		}
	}
	return out
}

func normalizeMember(m MemberSpec, i int) MemberSpec {
	m.Name = memberName(m, i)
	if m.Policy == "" {
		m.Policy = "DVFS"
	} else if c, err := sim.Policies.Canonical(m.Policy); err == nil {
		m.Policy = c
	}
	if c, err := sim.Workloads.Canonical(m.Workload.Kind); m.Workload.Kind != "" && err == nil {
		m.Workload.Kind = c
	}
	return m
}

// Op names a mutation kind.
type Op string

const (
	// OpSetBudget overrides the global cap fraction.
	OpSetBudget Op = "set_budget"
	// OpAddMember joins a new member cluster at the boundary; its
	// workload catches up from virtual zero.
	OpAddMember Op = "add_member"
	// OpRemoveMember retires a member; its telemetry series stop.
	OpRemoveMember Op = "remove_member"
	// OpFailNode kills and requeues the jobs on one member node and
	// takes the node out of service.
	OpFailNode Op = "fail_node"
	// OpRepairNode returns a failed node to service.
	OpRepairNode Op = "repair_node"
)

// Mutation is one live change request. Mutations are serialized
// through the session queue and applied only at epoch boundaries — the
// mutation-at-epoch contract that keeps the twin deterministic.
type Mutation struct {
	Op Op `json:"op"`
	// AtSec, when positive, defers the mutation to the first boundary
	// at or after that virtual time; 0 means the next boundary. Replay
	// pins it to the recorded boundary.
	AtSec int64 `json:"at_sec,omitempty"`
	// BudgetFraction is the new global cap fraction (set_budget).
	BudgetFraction float64 `json:"budget_fraction,omitempty"`
	// Member describes the joining cluster (add_member).
	Member *MemberSpec `json:"member,omitempty"`
	// Name targets a member (remove_member, fail_node, repair_node).
	Name string `json:"name,omitempty"`
	// Node is the member-local node index (fail_node, repair_node).
	Node int `json:"node,omitempty"`
}

// Applied is one mutation-log entry: what applied, at which boundary,
// and whether it failed (failed mutations are no-ops, recorded so a
// replayed log reproduces exactly the same no-op).
type Applied struct {
	Seq      int      `json:"seq"`
	AtEpoch  int64    `json:"at_epoch"`
	Mutation Mutation `json:"mutation"`
	Err      string   `json:"error,omitempty"`
}

// Sink receives the twin's telemetry stream. tsdb.Run satisfies it.
type Sink interface {
	Append(name string, t int64, v float64) error
}

// Config carries the session's environment hooks; the zero value runs
// silent and as fast as the pacing allows.
type Config struct {
	// Sink receives telemetry points at every epoch boundary; nil
	// discards them.
	Sink Sink
	// Observe sees every member controller as it is assembled (initial
	// members before any virtual time passes, added members before
	// their catch-up) — where an invariant checker attaches.
	Observe func(name string, ctl *rjms.Controller)
	// OnEpoch runs after every boundary with the fresh status.
	OnEpoch func(st Status)
	// OnApplied runs after every mutation application.
	OnApplied func(a Applied)
	// Sleep replaces the pacing sleep (tests); nil uses a real timer.
	// It must honor ctx cancellation when d is long.
	Sleep func(ctx context.Context, d time.Duration)
}

// MemberStatus is one member's slice of the status snapshot.
type MemberStatus struct {
	Name         string  `json:"name"`
	CapW         float64 `json:"cap_w"`
	PowerW       float64 `json:"power_w"`
	MaxPowerW    float64 `json:"max_power_w"`
	PendingCores int     `json:"pending_cores"`
	RunningJobs  int     `json:"running_jobs"`
	FailedNodes  []int   `json:"failed_nodes,omitempty"`
}

// Status is the session's externally visible state, snapshotted at
// every epoch boundary (reads never touch live controller state).
type Status struct {
	Name string `json:"name,omitempty"`
	// VirtualTime is the twin clock: the last completed boundary.
	VirtualTime int64 `json:"virtual_time"`
	HorizonSec  int64 `json:"horizon_sec"`
	EpochSec    int64 `json:"epoch_sec"`
	// RealTimeRatio is the configured pacing (0 = as fast as possible).
	RealTimeRatio float64 `json:"real_time_ratio,omitempty"`
	// BudgetFraction is the active cap fraction (spec value or the
	// latest set_budget override).
	BudgetFraction float64 `json:"budget_fraction"`
	// SignalValue is the budget signal evaluated at VirtualTime.
	SignalValue float64 `json:"signal_value"`
	// BudgetW is the effective site budget at VirtualTime.
	BudgetW float64 `json:"budget_w"`
	// PowerW is the summed member draw at VirtualTime.
	PowerW  float64        `json:"power_w"`
	Members []MemberStatus `json:"members"`
	// MutationsApplied/MutationsQueued count the log and the backlog.
	MutationsApplied int `json:"mutations_applied"`
	MutationsQueued  int `json:"mutations_queued"`
	// Finished is set once the horizon is reached.
	Finished bool `json:"finished"`
}

// twinMember is the session's bookkeeping for one live member.
type twinMember struct {
	name     string
	ctl      *rjms.Controller
	cleanup  func()
	capID    int
	maxPower power.Watts
	capW     power.Watts
}

// Session is one live twin. Run drives it on a single goroutine (the
// controllers' single-goroutine contract); Status, Log and Mutate are
// safe from any goroutine.
type Session struct {
	spec     Spec
	cfg      Config
	division replay.Division
	sig      signal.Source
	members  []*twinMember

	mu       sync.Mutex
	fraction float64 // active cap fraction (mutable via set_budget)
	queue    []Mutation
	applied  []Applied
	status   Status
}

// New validates, normalizes and assembles a session: members built and
// their workloads loaded, open-ended powercap reservations placed at
// the initial division, virtual clocks at zero. Run starts time.
func New(spec Spec, cfg Config) (*Session, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.Normalize()
	div, err := sim.Divisions.Lookup(spec.Division)
	if err != nil {
		return nil, fmt.Errorf("twin: %w", err)
	}
	sig, err := signal.Build(spec.Signal)
	if err != nil {
		return nil, fmt.Errorf("twin: budget signal: %w", err)
	}
	s := &Session{spec: spec, cfg: cfg, division: div, sig: sig, fraction: spec.GlobalCapFraction}
	ok := false
	defer func() {
		if !ok {
			s.close()
		}
	}()
	for i, ms := range spec.Members {
		m, err := s.buildMember(ms, i)
		if err != nil {
			return nil, err
		}
		s.members = append(s.members, m)
	}
	// Initial division: pro-rata at the t=0 budget, like the batch
	// broker — no demand observed yet.
	budget, _ := s.budgetAt(0)
	var sumMax power.Watts
	for _, m := range s.members {
		sumMax += m.maxPower
	}
	for _, m := range s.members {
		m.capW = power.Watts(float64(budget) * float64(m.maxPower) / float64(sumMax))
		id, _, err := m.ctl.ReservePowerCapID(0, reservation.Horizon, power.CapWatts(m.capW))
		if err != nil {
			return nil, fmt.Errorf("twin: member %s: %w", m.name, err)
		}
		m.capID = id
		if cfg.Observe != nil {
			cfg.Observe(m.name, m.ctl)
		}
		if err := m.ctl.Start(spec.HorizonSec); err != nil {
			return nil, fmt.Errorf("twin: member %s: %w", m.name, err)
		}
	}
	s.snapshot(0, false)
	ok = true
	return s, nil
}

// buildMember assembles one member controller with its workload
// loaded; the caller reserves its cap and starts its clock.
func (s *Session) buildMember(ms MemberSpec, i int) (*twinMember, error) {
	name := memberName(ms, i)
	sc, err := sim.MemberScenario(name, ms.Workload, ms.Policy, ms.Racks)
	if err != nil {
		return nil, fmt.Errorf("twin: member %s: %w", name, err)
	}
	ctl, cleanup, err := replay.Build(sc)
	if err != nil {
		return nil, fmt.Errorf("twin: member %s: %w", name, err)
	}
	return &twinMember{name: name, ctl: ctl, cleanup: cleanup, maxPower: ctl.Cluster().MaxPower()}, nil
}

// close releases every member's resources.
func (s *Session) close() {
	for _, m := range s.members {
		if m.cleanup != nil {
			m.cleanup()
		}
	}
	s.members = nil
}

// Spec returns the session's normalized spec.
func (s *Session) Spec() Spec { return s.spec }

// Status returns the boundary-consistent snapshot.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.status
	st.Members = append([]MemberStatus(nil), s.status.Members...)
	st.MutationsQueued = len(s.queue)
	st.MutationsApplied = len(s.applied)
	return st
}

// Log returns a copy of the applied-mutation log — together with the
// spec, everything Replay needs to reproduce the session.
func (s *Session) Log() []Applied {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Applied(nil), s.applied...)
}

// Mutate enqueues a mutation; it applies at the first epoch boundary
// at or after its AtSec (the next boundary when zero). Structural
// problems surface in the Applied log, not here — acceptance into the
// queue only checks the op is known.
func (s *Session) Mutate(m Mutation) error {
	switch m.Op {
	case OpSetBudget, OpAddMember, OpRemoveMember, OpFailNode, OpRepairNode:
	default:
		return fmt.Errorf("twin: unknown mutation op %q", m.Op)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue = append(s.queue, m)
	return nil
}

// Run drives the session to its horizon: pace, advance every member in
// lockstep to the boundary, drain due mutations, redistribute the
// budget, stream telemetry, snapshot. It blocks until the horizon or
// ctx cancellation (returning ctx.Err()) and must be called exactly
// once; member resources are released when it returns.
func (s *Session) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	defer s.close()
	epoch, horizon := s.spec.EpochSec, s.spec.HorizonSec
	s.telemetry(0)
	for t := epoch; t <= horizon; t += epoch {
		if err := s.pace(ctx, epoch); err != nil {
			return err
		}
		for _, m := range s.members {
			if err := m.ctl.Advance(t); err != nil {
				return fmt.Errorf("twin: member %s at t=%d: %w", m.name, t, err)
			}
		}
		s.applyDue(t)
		s.redistribute(t)
		s.telemetry(t)
		s.snapshot(t, t+epoch > horizon)
		if s.cfg.OnEpoch != nil {
			s.cfg.OnEpoch(s.Status())
		}
	}
	return nil
}

// pace holds the virtual clock to the configured real-time ratio: a
// boundary may not start earlier than epoch/ratio wall seconds after
// the previous one. Ratio 0 never sleeps.
func (s *Session) pace(ctx context.Context, epoch int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.spec.RealTimeRatio <= 0 {
		return nil
	}
	d := time.Duration(float64(epoch) / s.spec.RealTimeRatio * float64(time.Second))
	if d <= 0 {
		return nil
	}
	if s.cfg.Sleep != nil {
		s.cfg.Sleep(ctx, d)
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// applyDue drains the mutations due at boundary t, in arrival order,
// recording each in the applied log.
func (s *Session) applyDue(t int64) {
	s.mu.Lock()
	var due []Mutation
	rest := s.queue[:0]
	for _, m := range s.queue {
		if m.AtSec <= t {
			due = append(due, m)
		} else {
			rest = append(rest, m)
		}
	}
	s.queue = rest
	s.mu.Unlock()
	for _, m := range due {
		err := s.apply(m, t)
		a := Applied{AtEpoch: t, Mutation: m}
		if err != nil {
			a.Err = err.Error()
		}
		s.mu.Lock()
		a.Seq = len(s.applied) + 1
		s.applied = append(s.applied, a)
		s.mu.Unlock()
		if s.cfg.OnApplied != nil {
			s.cfg.OnApplied(a)
		}
	}
}

// apply executes one mutation at boundary t. Errors make the mutation
// a recorded no-op; the session keeps running.
func (s *Session) apply(m Mutation, t int64) error {
	switch m.Op {
	case OpSetBudget:
		if m.BudgetFraction <= 0 || m.BudgetFraction >= 1 {
			return fmt.Errorf("twin: set_budget fraction %v outside (0, 1)", m.BudgetFraction)
		}
		s.mu.Lock()
		s.fraction = m.BudgetFraction
		s.mu.Unlock()
		return nil
	case OpAddMember:
		if m.Member == nil {
			return fmt.Errorf("twin: add_member without a member spec")
		}
		ms := normalizeMember(*m.Member, len(s.members))
		if s.findMember(ms.Name) != nil {
			return fmt.Errorf("twin: member %q already exists", ms.Name)
		}
		nm, err := s.buildMember(ms, len(s.members))
		if err != nil {
			return err
		}
		// The newcomer reserves at its pro-rata share of the current
		// budget (fleet including itself); the boundary's
		// redistribution below refines it immediately.
		var sumMax power.Watts
		for _, mem := range s.members {
			sumMax += mem.maxPower
		}
		sumMax += nm.maxPower
		budget, _ := s.budgetWith(t, sumMax)
		nm.capW = power.Watts(float64(budget) * float64(nm.maxPower) / float64(sumMax))
		id, _, err := nm.ctl.ReservePowerCapID(0, reservation.Horizon, power.CapWatts(nm.capW))
		if err != nil {
			nm.cleanup()
			return fmt.Errorf("twin: member %s: %w", nm.name, err)
		}
		nm.capID = id
		if s.cfg.Observe != nil {
			s.cfg.Observe(nm.name, nm.ctl)
		}
		// Catch up: the member's virtual clock starts at zero and
		// fast-forwards to the boundary, replaying its workload's
		// backlog deterministically.
		if err := nm.ctl.Start(s.spec.HorizonSec); err != nil {
			nm.cleanup()
			return fmt.Errorf("twin: member %s: %w", nm.name, err)
		}
		if err := nm.ctl.Advance(t); err != nil {
			nm.cleanup()
			return fmt.Errorf("twin: member %s catch-up: %w", nm.name, err)
		}
		s.members = append(s.members, nm)
		return nil
	case OpRemoveMember:
		if len(s.members) == 1 {
			return fmt.Errorf("twin: cannot remove the last member %q", m.Name)
		}
		for i, mem := range s.members {
			if mem.name == m.Name {
				mem.cleanup()
				s.members = append(s.members[:i], s.members[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("twin: unknown member %q", m.Name)
	case OpFailNode:
		mem := s.findMember(m.Name)
		if mem == nil {
			return fmt.Errorf("twin: unknown member %q", m.Name)
		}
		return mem.ctl.FailNode(cluster.NodeID(m.Node))
	case OpRepairNode:
		mem := s.findMember(m.Name)
		if mem == nil {
			return fmt.Errorf("twin: unknown member %q", m.Name)
		}
		return mem.ctl.RepairNode(cluster.NodeID(m.Node))
	default:
		return fmt.Errorf("twin: unknown mutation op %q", m.Op)
	}
}

func (s *Session) findMember(name string) *twinMember {
	for _, m := range s.members {
		if m.name == name {
			return m
		}
	}
	return nil
}

// budgetAt evaluates the effective site budget at virtual time t over
// the current fleet.
func (s *Session) budgetAt(t int64) (power.Watts, float64) {
	var sumMax power.Watts
	for _, m := range s.members {
		sumMax += m.maxPower
	}
	return s.budgetWith(t, sumMax)
}

// budgetWith evaluates the budget against an explicit fleet maximum
// (add_member sizes the joined fleet before appending).
func (s *Session) budgetWith(t int64, sumMax power.Watts) (power.Watts, float64) {
	s.mu.Lock()
	fraction := s.fraction
	s.mu.Unlock()
	sv := s.sig.At(t)
	b := power.Watts(fraction * float64(sumMax) * sv)
	if b < 0 {
		b = 0
	}
	if b > sumMax {
		b = sumMax
	}
	return b, sv
}

// redistribute divides the boundary's budget across the fleet with the
// batch broker's arithmetic and re-budgets members whose share moved.
func (s *Session) redistribute(t int64) {
	budget, _ := s.budgetAt(t)
	states := make([]federation.MemberState, len(s.members))
	for i, m := range s.members {
		states[i] = federation.MemberState{
			MaxPower:     m.maxPower,
			Draw:         m.ctl.Cluster().Power(),
			PendingCores: m.ctl.PendingCores(),
		}
	}
	shares := federation.Divide(s.division, budget, states)
	for i, m := range s.members {
		if shares[i] != m.capW {
			m.capW = shares[i]
			// UpdateCap cannot fail on a live reservation id and the
			// boundary reactions run inline; a failure here would be a
			// programming error, surfaced via the telemetry flatline.
			_ = m.ctl.AdjustPowerCap(m.capID, power.CapWatts(shares[i]))
		}
	}
}

// telemetry streams the boundary's samples: per-member power, cap,
// queue depth and running jobs, plus the site aggregates and the raw
// signal value.
func (s *Session) telemetry(t int64) {
	if s.cfg.Sink == nil {
		return
	}
	budget, sv := s.budgetAt(t)
	var total power.Watts
	for _, m := range s.members {
		p := m.ctl.Cluster().Power()
		total += p
		_ = s.cfg.Sink.Append(m.name+"/power", t, float64(p))
		_ = s.cfg.Sink.Append(m.name+"/cap", t, float64(m.capW))
		_ = s.cfg.Sink.Append(m.name+"/pending_cores", t, float64(m.ctl.PendingCores()))
		_ = s.cfg.Sink.Append(m.name+"/running_jobs", t, float64(m.ctl.RunningCount()))
	}
	_ = s.cfg.Sink.Append("power", t, float64(total))
	_ = s.cfg.Sink.Append("budget", t, float64(budget))
	_ = s.cfg.Sink.Append("signal", t, sv)
}

// snapshot refreshes the Status copy readers see.
func (s *Session) snapshot(t int64, finished bool) {
	budget, sv := s.budgetAt(t)
	members := make([]MemberStatus, len(s.members))
	var total power.Watts
	for i, m := range s.members {
		p := m.ctl.Cluster().Power()
		total += p
		ms := MemberStatus{
			Name:         m.name,
			CapW:         float64(m.capW),
			PowerW:       float64(p),
			MaxPowerW:    float64(m.maxPower),
			PendingCores: m.ctl.PendingCores(),
			RunningJobs:  m.ctl.RunningCount(),
		}
		for _, id := range m.ctl.FailedNodes() {
			ms.FailedNodes = append(ms.FailedNodes, int(id))
		}
		members[i] = ms
	}
	s.mu.Lock()
	s.status = Status{
		Name:           s.spec.Name,
		VirtualTime:    t,
		HorizonSec:     s.spec.HorizonSec,
		EpochSec:       s.spec.EpochSec,
		RealTimeRatio:  s.spec.RealTimeRatio,
		BudgetFraction: s.fraction,
		SignalValue:    sv,
		BudgetW:        float64(budget),
		PowerW:         float64(total),
		Members:        members,
		Finished:       finished,
	}
	s.mu.Unlock()
}

// Replay reconstructs a session from a spec plus a recorded mutation
// log and runs it to the log's horizon as fast as possible: every
// logged mutation re-applies at its recorded boundary, so the
// telemetry streamed into cfg.Sink is byte-identical to the original
// session's (the determinism guardrail, pinned by test). The replayed
// session ignores the spec's real-time ratio.
func Replay(ctx context.Context, spec Spec, log []Applied, cfg Config) error {
	spec.RealTimeRatio = 0
	s, err := New(spec, cfg)
	if err != nil {
		return err
	}
	for _, a := range log {
		m := a.Mutation
		m.AtSec = a.AtEpoch
		if err := s.Mutate(m); err != nil {
			return fmt.Errorf("twin: replay: %w", err)
		}
	}
	return s.Run(ctx)
}
