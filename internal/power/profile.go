package power

import (
	"fmt"
	"sort"

	"repro/internal/dvfs"
)

// Profile holds the per-node power draws the controller is configured with:
// the SLURM parameters DownWatts, IdleWatts, MaxWatts and CpuFreqXWatts of
// Section V of the paper. Draws for intermediate frequencies that were not
// measured are linearly interpolated between the nearest configured rungs.
type Profile struct {
	down  Watts // node switched off (BMC still powered)
	idle  Watts // node powered on, no job
	freqW map[dvfs.Freq]Watts
	order []dvfs.Freq // ascending keys of freqW
}

// NewProfile builds a profile. freqW must contain at least one frequency;
// its maximum frequency entry is the MaxWatts value. Requirements:
// 0 <= down <= idle <= min over freqW, and draws must not decrease with
// frequency.
func NewProfile(down, idle Watts, freqW map[dvfs.Freq]Watts) (*Profile, error) {
	if len(freqW) == 0 {
		return nil, fmt.Errorf("power: profile needs at least one frequency entry")
	}
	if down < 0 {
		return nil, fmt.Errorf("power: negative DownWatts %v", down)
	}
	if idle < down {
		return nil, fmt.Errorf("power: IdleWatts %v below DownWatts %v", idle, down)
	}
	order := make([]dvfs.Freq, 0, len(freqW))
	for f := range freqW {
		if f <= 0 {
			return nil, fmt.Errorf("power: non-positive frequency %d in profile", f)
		}
		order = append(order, f)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	prev := idle
	for _, f := range order {
		w := freqW[f]
		if w < prev {
			return nil, fmt.Errorf("power: draw %v at %v below previous %v (non-monotonic)", w, f, prev)
		}
		prev = w
	}
	m := make(map[dvfs.Freq]Watts, len(freqW))
	for f, w := range freqW {
		m[f] = w
	}
	return &Profile{down: down, idle: idle, freqW: m, order: order}, nil
}

// CurieProfile returns the measured Curie node profile of Figure 4:
//
//	Switch-off 14 W, Idle 117 W, and 193..358 W across 1.2-2.7 GHz.
func CurieProfile() *Profile {
	p, err := NewProfile(14, 117, map[dvfs.Freq]Watts{
		dvfs.F1200: 193,
		dvfs.F1400: 213,
		dvfs.F1600: 234,
		dvfs.F1800: 248,
		dvfs.F2000: 269,
		dvfs.F2200: 289,
		dvfs.F2400: 317,
		dvfs.F2700: 358,
	})
	if err != nil {
		panic(err) // constants above are known-valid
	}
	return p
}

// Down returns the draw of a switched-off node (its BMC stays powered so a
// remote power-on is possible; 14 W on Curie).
func (p *Profile) Down() Watts { return p.down }

// Idle returns the draw of a powered-on node with no job.
func (p *Profile) Idle() Watts { return p.idle }

// Max returns the draw of a fully busy node at nominal frequency
// (the MaxWatts controller parameter).
func (p *Profile) Max() Watts { return p.freqW[p.order[len(p.order)-1]] }

// MinBusy returns the draw of a busy node at the lowest configured
// frequency.
func (p *Profile) MinBusy() Watts { return p.freqW[p.order[0]] }

// Nominal returns the highest configured frequency.
func (p *Profile) Nominal() dvfs.Freq { return p.order[len(p.order)-1] }

// MinFreq returns the lowest configured frequency.
func (p *Profile) MinFreq() dvfs.Freq { return p.order[0] }

// Frequencies returns the configured frequencies, ascending.
func (p *Profile) Frequencies() []dvfs.Freq {
	out := make([]dvfs.Freq, len(p.order))
	copy(out, p.order)
	return out
}

// Busy returns the draw of a node running at frequency f. Frequencies
// outside the configured range clamp to the nearest rung; intermediate
// frequencies interpolate linearly. f == 0 means nominal frequency.
func (p *Profile) Busy(f dvfs.Freq) Watts {
	if f == 0 {
		return p.Max()
	}
	if w, ok := p.freqW[f]; ok {
		return w
	}
	lo, hi := p.order[0], p.order[len(p.order)-1]
	if f <= lo {
		return p.freqW[lo]
	}
	if f >= hi {
		return p.freqW[hi]
	}
	i := sort.Search(len(p.order), func(i int) bool { return p.order[i] > f })
	a, b := p.order[i-1], p.order[i]
	wa, wb := p.freqW[a], p.freqW[b]
	t := float64(f-a) / float64(b-a)
	return wa + Watts(t*float64(wb-wa))
}

// Ladder returns the profile's frequencies as a dvfs.Ladder.
func (p *Profile) Ladder() dvfs.Ladder {
	return dvfs.Ladder(p.Frequencies())
}

// Rho evaluates the DVFS-vs-shutdown criterion of Section III-A (as
// published in Figure 5; see dvfs.Rho) for this profile and a degradation
// factor degMin at frequency fmin.
func (p *Profile) Rho(degMin float64, fmin dvfs.Freq) float64 {
	return dvfs.Rho(degMin, float64(p.Max()), float64(p.Busy(fmin)), float64(p.Down()))
}
