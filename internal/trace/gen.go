package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/job"
	"repro/internal/registry"
)

// Kind selects one of the four replayed workload intervals of Section
// VII-B.
type Kind int

const (
	// MedianJob is the 5-hour interval with jobs representative of the
	// whole Curie workload.
	MedianJob Kind = iota
	// SmallJob is the 5-hour interval with more small jobs.
	SmallJob
	// BigJob is the 5-hour interval with more big jobs.
	BigJob
	// Day24h is the 24-hour representative interval.
	Day24h

	// The kinds below extend the paper's four intervals into a scenario
	// library; they share the Curie job mix machinery but exercise
	// arrival patterns and size distributions the paper does not.

	// Diurnal is a 24-hour interval whose arrivals follow a day/night
	// sinusoid: submission pressure peaks mid-day at about twelve times
	// the overnight trough, the shape production HPC ingest sees.
	Diurnal
	// Bursty is a 5-hour interval dominated by submission storms:
	// most jobs land in a handful of tight bursts (campaign submissions,
	// array jobs) over a thin uniform background.
	Bursty
	// HeavyTail is a 5-hour interval whose job widths are Pareto
	// distributed: many single-node jobs, a long tail of very wide ones,
	// with no small/medium/huge class structure.
	HeavyTail
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case MedianJob:
		return "medianjob"
	case SmallJob:
		return "smalljob"
	case BigJob:
		return "bigjob"
	case Day24h:
		return "24h"
	case Diurnal:
		return "diurnal"
	case Bursty:
		return "bursty"
	case HeavyTail:
		return "heavytail"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds is the workload-kind registry. The paper's four intervals and
// the library extensions self-register below; ParseKind, flag help and
// the sim facade all read this, so a new kind shows up everywhere at
// once.
var Kinds = registry.New[Kind]("workload kind")

func init() {
	Kinds.Register("medianjob", MedianJob, "5 h interval representative of the whole Curie mix", "median")
	Kinds.Register("smalljob", SmallJob, "5 h interval skewed to small jobs", "small")
	Kinds.Register("bigjob", BigJob, "5 h interval skewed to big jobs", "big")
	Kinds.Register("24h", Day24h, "the 24 h representative interval", "day")
	Kinds.Register("diurnal", Diurnal, "24 h day/night sinusoid arrivals")
	Kinds.Register("bursty", Bursty, "5 h of submission storms over a thin background", "burst")
	Kinds.Register("heavytail", HeavyTail, "5 h with Pareto-distributed job widths", "heavy")
}

// ParseKind parses the interval names used on command lines — a
// registry lookup, so unknown-name errors enumerate what is registered.
func ParseKind(s string) (Kind, error) {
	k, err := Kinds.Lookup(s)
	if err != nil {
		return 0, fmt.Errorf("trace: %w", err)
	}
	return k, nil
}

// Duration returns the interval length in seconds (5 h, or 24 h for the
// day-scale kinds).
func (k Kind) Duration() int64 {
	if k == Day24h || k == Diurnal {
		return 24 * 3600
	}
	return 5 * 3600
}

// Config parameterizes the synthetic Curie workload generator.
type Config struct {
	Kind Kind
	Seed int64
	// DurationSec is the interval length; 0 means the kind's default.
	DurationSec int64
	// Cores is the machine size; 0 means Curie's 80640.
	Cores int
	// LoadFactor scales the submitted work relative to the machine's
	// capacity over the interval. The paper's intervals are overloaded:
	// "there are always at least enough jobs in the submission queues
	// to fill a second cluster of the same size", i.e. a factor of 2.
	// 0 means 2.0.
	LoadFactor float64
	// BacklogFraction is the fraction of jobs already queued at t=0
	// (the "interval initial state"); 0 means 0.3.
	BacklogFraction float64
	// Users is the distinct-user count for fairshare; 0 means 150.
	Users int
}

func (c Config) withDefaults() Config {
	if c.DurationSec == 0 {
		c.DurationSec = c.Kind.Duration()
	}
	if c.Cores == 0 {
		c.Cores = 80640
	}
	if c.LoadFactor == 0 {
		c.LoadFactor = 2.0
	}
	if c.BacklogFraction == 0 {
		c.BacklogFraction = 0.3
	}
	if c.Users == 0 {
		c.Users = 150
	}
	return c
}

// class mix per workload kind; fractions are by job count.
type mix struct{ small, medium float64 } // huge = 1 - small - medium

func kindMix(k Kind) mix {
	switch k {
	case SmallJob:
		return mix{small: 0.85, medium: 0.1495}
	case BigJob:
		return mix{small: 0.52, medium: 0.475}
	default: // MedianJob, Day24h: the paper's whole-workload shape
		return mix{small: 0.69, medium: 0.309}
	}
}

// Generate synthesizes a deterministic workload interval. The same Config
// always yields the identical job list.
func Generate(cfg Config) ([]*job.Job, error) {
	c := cfg.withDefaults()
	if c.DurationSec <= 0 {
		return nil, fmt.Errorf("trace: non-positive duration %d", c.DurationSec)
	}
	if c.Cores <= 0 {
		return nil, fmt.Errorf("trace: non-positive machine size %d", c.Cores)
	}
	if c.LoadFactor < 0 || c.BacklogFraction < 0 || c.BacklogFraction > 1 {
		return nil, fmt.Errorf("trace: invalid load %v / backlog %v", c.LoadFactor, c.BacklogFraction)
	}
	rng := rand.New(rand.NewSource(c.Seed))
	m := kindMix(c.Kind)
	targetWork := c.LoadFactor * float64(c.Cores) * float64(c.DurationSec)
	hugeThreshold := float64(c.Cores) * 3600

	// The library kinds hook in here; the four paper kinds keep the
	// exact sampler and RNG call sequence below, so their workloads (and
	// every downstream sweep fingerprint) are bit-identical across
	// library growth.
	sample := func() *job.Job { return sampleJob(rng, c, m, hugeThreshold) }
	if c.Kind == HeavyTail {
		sample = func() *job.Job { return sampleHeavyTail(rng, c) }
	}

	var jobs []*job.Job
	var work float64
	id := job.ID(1)
	// Hard safety bound against runaway sampling. Sized so every library
	// kind reaches its work target at full Curie scale (heavytail needs
	// the most jobs: its width distribution is dominated by single-core
	// jobs); Generate errors below if a config exhausts it short of the
	// target rather than silently delivering an underloaded interval.
	const maxJobs = 600000
	for work < targetWork && len(jobs) < maxJobs {
		j := sample()
		j.ID = id
		id++
		work += float64(j.Cores) * float64(j.Runtime)
		jobs = append(jobs, j)
	}
	if work < targetWork {
		return nil, fmt.Errorf("trace: %s config needs more than %d jobs to reach load %.2f (got %.2f)",
			c.Kind, maxJobs, c.LoadFactor, c.LoadFactor*work/targetWork)
	}

	// Arrival process: by default a backlog at t=0 plus uniform arrivals
	// over the first 90% of the interval so the queue never drains; the
	// diurnal and bursty kinds substitute their own processes.
	arrive := func(j *job.Job) {
		if rng.Float64() < c.BacklogFraction {
			j.Submit = 0
		} else {
			j.Submit = int64(rng.Float64() * 0.9 * float64(c.DurationSec))
		}
	}
	switch c.Kind {
	case Diurnal:
		arrive = diurnalArrivals(rng, c)
	case Bursty:
		arrive = burstyArrivals(rng, c)
	}
	for _, j := range jobs {
		arrive(j)
	}
	sort.SliceStable(jobs, func(i, k int) bool {
		if jobs[i].Submit != jobs[k].Submit {
			return jobs[i].Submit < jobs[k].Submit
		}
		return jobs[i].ID < jobs[k].ID
	})
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("trace: generator produced invalid job: %v", err)
		}
	}
	return jobs, nil
}

// logUniform samples exp(U(ln lo, ln hi)).
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
}

// bits16 returns how many power-of-two size buckets fit below n
// (1 -> 1, 256..511 -> 9), capped at 9 to mirror the 1..256 ladder.
func bits16(n int) int {
	b := 1
	for v := 2; v <= n && b < 9; v *= 2 {
		b++
	}
	return b
}

var walltimeMenu = []int64{1800, 3600, 7200, 14400, 43200, 86400}

// pickWalltime returns a requested time from the common menu, at least
// min, biased towards 24 h — the source of the four-orders-of-magnitude
// overestimation of Section VII-B.
func pickWalltime(rng *rand.Rand, min int64) int64 {
	if rng.Float64() < 0.55 {
		if min <= 86400 {
			return 86400
		}
		return min
	}
	for _, w := range walltimeMenu {
		if w >= min && rng.Float64() < 0.5 {
			return w
		}
	}
	if min < 86400 {
		return 86400
	}
	return min
}

func sampleJob(rng *rand.Rand, c Config, m mix, hugeThreshold float64) *job.Job {
	u := rng.Float64()
	j := &job.Job{User: "user" + strconv.Itoa(rng.Intn(c.Users))}
	// Size classes scale with the machine so reduced-scale replays keep
	// the Curie shape: "small" tops out at 512 cores of 80640 (0.64%),
	// "medium" spans roughly 0.64%-10% of the machine.
	smallMax := c.Cores * 512 / 80640
	if smallMax < 1 {
		smallMax = 1
	}
	switch {
	case u < m.small:
		// Small and short: <512-equivalent cores, <2 minutes.
		j.Cores = 1 << rng.Intn(bits16(smallMax))
		if rng.Float64() < 0.2 {
			j.Cores = smallMax - smallMax/50
		}
		j.Runtime = int64(logUniform(rng, 2, 115))
	case u < m.small+m.medium:
		// Medium: fractions of a percent to ~10% of the machine.
		// Runtimes stay short — the Curie trace is dominated by jobs of
		// seconds to minutes (median walltime overestimation of 12000x
		// against mostly 24 h requests), with a thin tail up to an
		// hour.
		j.Cores = smallMax << rng.Intn(5)
		j.Runtime = int64(logUniform(rng, 30, 3600))
	default:
		// Huge: "more than the equivalent of the whole cluster for 1
		// hour" — cores x runtime above the cluster-hour. These are
		// wide-and-long rather than machine-wide: a tenth to a third
		// of the machine for many hours.
		width := 10 - rng.Intn(8) // machine/10 .. machine/3
		j.Cores = c.Cores / width
		j.Cores -= j.Cores % 16
		if j.Cores <= 0 {
			j.Cores = 16
		}
		minRun := hugeThreshold/float64(j.Cores) + 1
		j.Runtime = int64(minRun * (1.05 + rng.Float64()))
	}
	if j.Cores > c.Cores {
		j.Cores = c.Cores
	}
	if j.Runtime < 1 {
		j.Runtime = 1
	}
	j.Walltime = pickWalltime(rng, j.Runtime)
	if j.Walltime < j.Runtime {
		j.Walltime = j.Runtime
	}
	return j
}

// sampleHeavyTail draws a HeavyTail job: width from a bounded Pareto
// (alpha ~1.2, so single-core jobs dominate but the widest jobs span a
// large machine fraction), runtime log-uniform from seconds to hours, and
// the usual over-requested walltime menu.
func sampleHeavyTail(rng *rand.Rand, c Config) *job.Job {
	j := &job.Job{User: "user" + strconv.Itoa(rng.Intn(c.Users))}
	const alpha = 1.2
	u := rng.Float64()
	// Clip the unbounded tail exactly where the machine cap sits, so the
	// widest draws reach a machine-wide job on any cluster size.
	if uMax := 1 - math.Pow(float64(c.Cores), -alpha); u > uMax {
		u = uMax
	}
	j.Cores = int(math.Pow(1-u, -1/alpha))
	if j.Cores > c.Cores {
		j.Cores = c.Cores
	}
	if j.Cores < 1 {
		j.Cores = 1
	}
	// Runtimes are heavy-tailed too: minutes to a quarter day,
	// log-uniform, so the width and duration tails compound.
	j.Runtime = int64(logUniform(rng, 30, 6*3600))
	if j.Runtime < 1 {
		j.Runtime = 1
	}
	j.Walltime = pickWalltime(rng, j.Runtime)
	if j.Walltime < j.Runtime {
		j.Walltime = j.Runtime
	}
	return j
}

// diurnalArrivals assigns submit times from a day/night sinusoid: the
// submission intensity is 1 + A*sin(...) with its peak at mid-day and
// its trough at midnight, sampled by rejection so the same seed always
// yields the same trace. A third of the configured backlog still queues
// at t=0 as the interval's initial state.
func diurnalArrivals(rng *rand.Rand, c Config) func(*job.Job) {
	const amplitude = 0.85
	day := float64(86400)
	span := 0.95 * float64(c.DurationSec)
	return func(j *job.Job) {
		if rng.Float64() < c.BacklogFraction/3 {
			j.Submit = 0
			return
		}
		for {
			t := rng.Float64() * span
			// Peak at t = day/2 (mid-day), trough at t = 0 (midnight).
			intensity := 1 + amplitude*math.Sin(2*math.Pi*t/day-math.Pi/2)
			if rng.Float64()*(1+amplitude) < intensity {
				j.Submit = int64(t)
				return
			}
		}
	}
}

// burstyArrivals assigns most submit times to a handful of tight
// submission storms (campaign or array submissions) over a thin uniform
// background.
func burstyArrivals(rng *rand.Rand, c Config) func(*job.Job) {
	nBursts := 4 + rng.Intn(4)
	centers := make([]float64, nBursts)
	span := 0.9 * float64(c.DurationSec)
	for i := range centers {
		centers[i] = rng.Float64() * span
	}
	const burstSpread = 180.0 // seconds of jitter around a storm center
	return func(j *job.Job) {
		switch u := rng.Float64(); {
		case u < c.BacklogFraction/3:
			j.Submit = 0
		case u < 0.8:
			t := centers[rng.Intn(nBursts)] + rng.NormFloat64()*burstSpread
			if t < 0 {
				t = 0
			}
			if t > span {
				t = span
			}
			j.Submit = int64(t)
		default:
			j.Submit = int64(rng.Float64() * span)
		}
	}
}

// Workloads returns the four paper intervals with deterministic seeds.
func Workloads() []Config {
	return []Config{
		{Kind: MedianJob, Seed: 1001},
		{Kind: SmallJob, Seed: 1002},
		{Kind: BigJob, Seed: 1003},
		{Kind: Day24h, Seed: 1004},
	}
}

// LibraryWorkloads returns the full scenario library: the paper's four
// intervals plus the extended arrival/size patterns, all with fixed
// seeds.
func LibraryWorkloads() []Config {
	return append(Workloads(),
		Config{Kind: Diurnal, Seed: 1005},
		Config{Kind: Bursty, Seed: 1006},
		Config{Kind: HeavyTail, Seed: 1007},
	)
}
