package job

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dvfs"
)

func valid() *Job {
	return &Job{ID: 1, User: "u1", Cores: 32, Submit: 10, Runtime: 120, Walltime: 3600}
}

func TestValidate(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Job){
		func(j *Job) { j.Cores = 0 },
		func(j *Job) { j.Submit = -1 },
		func(j *Job) { j.Runtime = -1 },
		func(j *Job) { j.Walltime = 60 }, // below runtime
	}
	for i, mutate := range cases {
		j := valid()
		mutate(j)
		if err := j.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, j)
		}
	}
}

func TestScaledRuntimeAndWalltime(t *testing.T) {
	j := valid()
	deg := dvfs.CurieDegradation()
	if got := j.ScaledRuntime(deg, dvfs.F2700); got != 120 {
		t.Errorf("nominal runtime = %d", got)
	}
	if got := j.ScaledRuntime(deg, dvfs.F1200); got != 196 {
		t.Errorf("min-freq runtime = %d, want 196", got)
	}
	if got := j.ScaledWalltime(deg, dvfs.F1200); got != 5868 {
		t.Errorf("min-freq walltime = %d, want 5868", got)
	}
}

func TestCoreSeconds(t *testing.T) {
	j := valid()
	if got := j.CoreSeconds(1000); got != 0 {
		t.Errorf("pending work = %d, want 0", got)
	}
	j.State = StateRunning
	j.StartTime = 100
	if got := j.CoreSeconds(160); got != 32*60 {
		t.Errorf("running work = %d, want %d", got, 32*60)
	}
	if got := j.CoreSeconds(50); got != 0 {
		t.Errorf("work before start = %d, want 0", got)
	}
	j.State = StateCompleted
	j.EndTime = 220
	if got := j.CoreSeconds(0); got != 32*120 {
		t.Errorf("completed work = %d, want %d", got, 32*120)
	}
	j.State = StateKilled
	if got := j.CoreSeconds(0); got != 32*120 {
		t.Errorf("killed work = %d", got)
	}
}

func TestAllocatedCores(t *testing.T) {
	j := valid()
	j.Allocs = []Alloc{{Node: 0, Cores: 16}, {Node: 1, Cores: 16}}
	if got := j.AllocatedCores(); got != 32 {
		t.Errorf("AllocatedCores = %d", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	j := valid()
	j.Allocs = []Alloc{{Node: cluster.NodeID(3), Cores: 4}}
	cp := j.Clone()
	cp.Allocs[0].Cores = 99
	if j.Allocs[0].Cores == 99 {
		t.Error("Clone shares the Allocs slice")
	}
	j2 := &Job{}
	if cp2 := j2.Clone(); cp2.Allocs != nil {
		t.Error("Clone invented an Allocs slice")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StatePending: "pending", StateRunning: "running",
		StateCompleted: "completed", StateKilled: "killed",
		State(7): "State(7)",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d) = %q, want %q", int(s), got, want)
		}
	}
}
