package service

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/tsdb"
)

// blockingArchive wraps a MemStore so Get parks until the test releases
// the gate — a stand-in for a slow archive read, wide enough to pile
// concurrent first queries onto one evicted run.
type blockingArchive struct {
	*MemStore
	gate    chan struct{} // closed to release parked Gets
	entered chan struct{} // one send per Get that reaches the archive

	mu   sync.Mutex
	gets int
}

func (b *blockingArchive) Get(id string) (Record, bool, error) {
	b.mu.Lock()
	b.gets++
	b.mu.Unlock()
	b.entered <- struct{}{}
	<-b.gate
	return b.MemStore.Get(id)
}

// TestRunSeriesRestoreSingleFlight pins the restore path's concurrency
// contract: N concurrent first queries for a run whose telemetry lives
// only in the archive perform exactly one archive read and one
// tsdb.Restore, and every caller gets the same installed *tsdb.Run —
// no duplicated deserialization, no later restore replacing an earlier
// caller's handle.
func TestRunSeriesRestoreSingleFlight(t *testing.T) {
	// A snapshot worth restoring.
	src := tsdb.New(tsdb.Options{})
	run := src.Run("seed")
	for i := int64(0); i < 10; i++ {
		if err := run.Append("power", i*60, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := run.Snapshot()

	arch := &blockingArchive{
		MemStore: NewMemStore(0, nil),
		gate:     make(chan struct{}),
		entered:  make(chan struct{}, 16),
	}
	const id = "r000001"
	if err := arch.MemStore.Put(Record{ID: id, SpecHash: "sf-hash", State: StateDone, Telemetry: snap}); err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 1, Archive: arch})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	const callers = 4
	type result struct {
		rs  *tsdb.Run
		err error
	}
	results := make(chan result, callers)
	for i := 0; i < callers; i++ {
		go func() {
			rs, err := s.runSeries(id)
			results <- result{rs, err}
		}()
	}

	// Exactly one caller reaches the archive; the rest park on the
	// single-flight channel. Give the losers a beat to arrive before
	// releasing, so a buggy implementation would have every chance to
	// duplicate the read.
	select {
	case <-arch.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("no caller reached the archive")
	}
	time.Sleep(50 * time.Millisecond)
	close(arch.gate)

	var first *tsdb.Run
	for i := 0; i < callers; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("runSeries: %v", r.err)
		}
		if first == nil {
			first = r.rs
		} else if r.rs != first {
			t.Fatalf("caller %d got a different *tsdb.Run — a duplicate restore replaced the installed run", i)
		}
	}

	arch.mu.Lock()
	gets := arch.gets
	arch.mu.Unlock()
	if gets != 1 {
		t.Errorf("archive reads = %d, want exactly 1", gets)
	}

	// Once restored, further queries answer from the live store.
	if rs, err := s.runSeries(id); err != nil || rs != first {
		t.Errorf("post-restore query: rs=%p err=%v, want the cached run %p", rs, err, first)
	}
	arch.mu.Lock()
	if arch.gets != 1 {
		t.Errorf("post-restore archive reads = %d, want still 1", arch.gets)
	}
	arch.mu.Unlock()
}
