package registry

import (
	"strings"
	"testing"
)

func TestLookupCanonicalAliasAndCase(t *testing.T) {
	r := New[int]("thing")
	r.Register("SHUT", 1, "switch nodes off", "shutdown")
	r.Register("DVFS", 2, "slow jobs down")

	for _, name := range []string{"SHUT", "shut", " Shutdown ", "dvfs"} {
		if _, err := r.Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
	v, err := r.Lookup("shutdown")
	if err != nil || v != 1 {
		t.Fatalf("alias lookup = %d, %v; want 1, nil", v, err)
	}
}

func TestUnknownNameEnumeratesRegistered(t *testing.T) {
	r := New[int]("policy")
	r.Register("SHUT", 1, "")
	r.Register("MIX", 2, "")
	_, err := r.Lookup("nope")
	if err == nil {
		t.Fatal("want error for unknown name")
	}
	for _, want := range []string{"policy", `"nope"`, "SHUT|MIX"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
}

func TestNamesKeepRegistrationOrder(t *testing.T) {
	r := New[int]("x")
	r.Register("b", 1, "")
	r.Register("a", 2, "")
	r.Register("c", 3, "")
	if got := r.Join("|"); got != "b|a|c" {
		t.Fatalf("Join = %q, want b|a|c", got)
	}
}

func TestDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := New[int]("x")
	r.Register("a", 1, "")
	r.Register("A", 2, "") // case-insensitive clash
}

func TestHelpRendersEntries(t *testing.T) {
	r := New[int]("x")
	r.Register("a", 1, "first")
	r.Register("b", 2, "")
	want := "a - first\nb\n"
	if got := r.Help(); got != want {
		t.Fatalf("Help = %q, want %q", got, want)
	}
}
