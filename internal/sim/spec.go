// Package sim is the simulator's facade: one programmable entry point
// over the replay, experiment and federation layers. A declarative,
// JSON-serializable RunSpec describes any run the command-line tools
// can express — a single scenario replay, a (policy x cap) sweep, an
// explicit cell list, or a federated multi-cluster run — and
// Run(ctx, spec) executes it with cancellation, progress reporting and
// a unified Report that one sink pipeline encodes as JSON, CSV or
// ASCII.
//
// The extensible vocabulary lives in registries: Policies, Workloads
// and Divisions re-export the self-registering registries of core,
// trace and replay, and Figures holds the paper's figure builders.
// Command-line tools derive flag help and error messages from them, so
// a newly registered name shows up everywhere at once.
//
// Layering (see ARCHITECTURE.md "Facade & registries"):
//
//	cmd/powersched, cmd/expfig, examples, future services
//	        |        flags / -spec file.json -> RunSpec
//	        v
//	internal/sim     Run(ctx, spec) -> Report -> sinks
//	        v
//	internal/{replay, experiment, federation}
//	        v
//	internal/{rjms, trace, core, ...}
package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/replay"
	"repro/internal/signal"
	"repro/internal/trace"
)

// Facade views of the self-registering registries owned by the layers
// below, plus the figure registry owned here. External callers extend
// the simulator by registering into these (typically in package init)
// and describing runs that name the new entries.
var (
	// Policies maps powercap-policy names (NONE|SHUT|DVFS|MIX|IDLE) to
	// core.Policy values.
	Policies = core.Policies
	// Workloads maps workload-kind names (medianjob|...|heavytail) to
	// trace.Kind values.
	Workloads = trace.Kinds
	// Divisions maps federation budget-division names (prorata|demand)
	// to replay.Division values.
	Divisions = replay.Divisions
)

// Mode selects how a RunSpec executes.
type Mode string

const (
	// ModeSingle replays one scenario and keeps its full time series.
	ModeSingle Mode = "single"
	// ModeSweep fans a scenario list out across the worker pool and
	// aggregates the comparison table.
	ModeSweep Mode = "sweep"
	// ModeFederation runs federated multi-cluster cells (one or a
	// sweep of them) under shared site budgets.
	ModeFederation Mode = "federation"
)

// RunSpec is the declarative description of a run: everything the
// powersched and expfig command lines can express, as one
// JSON-serializable value. The zero value (plus Normalize defaulting)
// is the powersched default run — a medianjob replay under SHUT at a
// 60% cap.
//
// Axes: Policies x CapFractions is the sweep cross product over the
// single Workload; Cells, when set, replaces the cross product with an
// explicit scenario list (the form the non-uniform figure grids use);
// Federation switches to federated cells built from the scenario
// library. Exactly one scenario (one policy, one cap, no cells, no
// federation) runs in single mode with the full time series kept.
type RunSpec struct {
	// Name labels the run in exports; empty means mode-derived.
	Name string `json:"name,omitempty"`
	// Mode is derived (single|sweep|federation) when empty; setting it
	// only validates the derivation, it cannot force a mismatched mode.
	Mode Mode `json:"mode,omitempty"`
	// Workload is the replayed workload of single/sweep modes.
	Workload WorkloadSpec `json:"workload"`
	// Racks shrinks the machine to this many racks; 0 means the full
	// 56-rack Curie.
	Racks int `json:"racks,omitempty"`
	// Policies is the powercap-policy axis (registry names).
	Policies []string `json:"policies,omitempty"`
	// CapFractions is the powercap axis; values outside (0, 1) mean
	// the uncapped baseline.
	CapFractions []float64 `json:"cap_fractions,omitempty"`
	// Cap positions the powercap reservation window (zero value: the
	// paper's one-hour window centred in the interval).
	Cap CapSpec `json:"cap"`
	// Options carries the controller ablations and switches.
	Options OptionSpec `json:"options"`
	// Cells, when non-empty, is the explicit scenario list replacing
	// the Policies x CapFractions cross product. Cell fields default to
	// the spec-level Workload/Cap/Options.
	Cells []CellSpec `json:"cells,omitempty"`
	// Federation, when set, switches to federated mode.
	Federation *FederationSpec `json:"federation,omitempty"`
	// Workers bounds the sweep worker pool; 0 means GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
}

// WorkloadSpec describes a workload: a synthetic kind, or an SWF trace
// file with its transform chain.
type WorkloadSpec struct {
	// Kind is a workload-kind registry name; with SWF set it only
	// labels the run.
	Kind string `json:"kind,omitempty"`
	// Seed seeds the synthetic generator.
	Seed int64 `json:"seed,omitempty"`
	// DurationSec bounds the replayed interval; 0 means the kind's
	// default length.
	DurationSec int64 `json:"duration_sec,omitempty"`
	// LoadFactor scales submitted work against machine capacity over
	// the interval; 0 means the paper's 2.0.
	LoadFactor float64 `json:"load_factor,omitempty"`
	// BacklogFraction is the fraction of jobs queued at t=0; 0 means 0.3.
	BacklogFraction float64 `json:"backlog_fraction,omitempty"`
	// Users is the distinct-user count for fairshare; 0 means 150.
	Users int `json:"users,omitempty"`
	// SWF streams the workload from a trace file instead.
	SWF *SWFSpec `json:"swf,omitempty"`
}

// SWFSpec configures streaming replay of an SWF trace file.
type SWFSpec struct {
	// Path is the trace file.
	Path string `json:"path"`
	// WindowStartSec/WindowEndSec replay the submit window
	// [start, end), re-based to t=0; both zero means the whole trace.
	WindowStartSec int64 `json:"window_start_sec,omitempty"`
	WindowEndSec   int64 `json:"window_end_sec,omitempty"`
	// TimeScale multiplies submit times (0.5 doubles the arrival
	// rate); 0 or 1 leaves them unchanged.
	TimeScale float64 `json:"time_scale,omitempty"`
	// Cores is the trace's native machine size; when set, job widths
	// are rescaled onto the replayed machine.
	Cores int `json:"cores,omitempty"`
	// MaxJobs truncates the stream after that many jobs (0 = all).
	MaxJobs int `json:"max_jobs,omitempty"`
}

// CapSpec positions the powercap reservation window.
type CapSpec struct {
	// StartSec is the window start; 0 centres the default window.
	StartSec int64 `json:"start_sec,omitempty"`
	// DurationSec is the window length; 0 means the paper's hour.
	DurationSec int64 `json:"duration_sec,omitempty"`
	// OpenEnded makes the cap start at StartSec and never end.
	OpenEnded bool `json:"open_ended,omitempty"`
}

// OptionSpec carries the controller options and ablation switches of
// replay.Scenario.
type OptionSpec struct {
	KillOnOverrun      bool    `json:"kill_on_overrun,omitempty"`
	Scattered          bool    `json:"scattered,omitempty"`
	ReservationLeadSec int64   `json:"reservation_lead_sec,omitempty"`
	PlanningHorizonSec int64   `json:"planning_horizon_sec,omitempty"`
	DynamicDVFS        bool    `json:"dynamic_dvfs,omitempty"`
	Compact            bool    `json:"compact,omitempty"`
	MeasuredNoise      float64 `json:"measured_noise,omitempty"`
	SampleEverySec     int64   `json:"sample_every_sec,omitempty"`
	BackfillDepth      int     `json:"backfill_depth,omitempty"`
}

// CellSpec is one explicit sweep cell. Nil Workload/Cap/Options inherit
// the spec-level values, so a cell usually just names its policy and
// cap.
type CellSpec struct {
	// Name labels the cell; empty derives the usual
	// "workload/cap%/policy" label.
	Name string `json:"name,omitempty"`
	// Workload overrides the spec-level workload for this cell.
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Policy is the cell's powercap policy (registry name).
	Policy string `json:"policy,omitempty"`
	// CapFraction is the cell's cap; outside (0, 1) means uncapped.
	CapFraction float64 `json:"cap_fraction,omitempty"`
	// Cap overrides the spec-level window placement.
	Cap *CapSpec `json:"cap,omitempty"`
	// Options overrides the spec-level options (ablation cells).
	Options *OptionSpec `json:"options,omitempty"`
}

// FederationSpec describes federated runs: fleets built from the
// workload scenario library under shared site budgets (the spec-level
// CapFractions), swept across member counts and division policies.
type FederationSpec struct {
	// MemberCounts is the fleet-size axis; empty means [3].
	MemberCounts []int `json:"member_counts,omitempty"`
	// Divisions is the budget-division axis (registry names); empty
	// means ["demand"].
	Divisions []string `json:"divisions,omitempty"`
	// EpochSec is the redistribution period; 0 keeps the library
	// default (900 s). Negative values are rejected — the broker's
	// lockstep loop needs a positive epoch.
	EpochSec int64 `json:"epoch_sec,omitempty"`
	// Signal, when non-nil, scales the global site budget over time: at
	// every epoch boundary the broker multiplies the cap-fraction base
	// by the signal's value at that instant. See internal/signal for
	// the source kinds (step, diurnal, sinusoid, CSV trace replay,
	// clamp/scale/compose).
	Signal *signal.Spec `json:"signal,omitempty"`
}

// EffectiveMode derives the execution mode from the populated fields:
// federation when Federation is set, sweep when Cells or a multi-valued
// Policies x CapFractions axis is present, single otherwise. An
// explicit Mode must agree (Validate enforces it).
func (s RunSpec) EffectiveMode() Mode {
	switch {
	case s.Federation != nil:
		return ModeFederation
	case len(s.Cells) > 0:
		return ModeSweep
	case len(s.Policies)*len(s.CapFractions) > 1:
		return ModeSweep
	default:
		return ModeSingle
	}
}

// Normalize returns the spec with defaults filled in and every
// registry name canonicalized: the derived Mode, the powersched
// default workload/policy/cap for empty axes, the default federation
// axes, and the registries' canonical spellings for policy, kind and
// division names ("shut" becomes "SHUT"). Normalize never changes what
// a spec means — a normalized spec runs identically to its terse form
// — it is idempotent, and normalized specs round-trip exactly through
// EncodeJSON/DecodeJSON (the properties SpecHash and the result cache
// key on). Unregistered names pass through unchanged; Validate, not
// Normalize, reports them.
func (s RunSpec) Normalize() RunSpec {
	out := s
	if out.Federation == nil && len(out.Cells) == 0 {
		if out.Workload.Kind == "" && out.Workload.SWF == nil {
			out.Workload.Kind = trace.MedianJob.String()
		}
		if len(out.Policies) == 0 {
			out.Policies = []string{core.PolicyShut.String()}
		}
		if len(out.CapFractions) == 0 {
			out.CapFractions = []float64{0.6}
		}
	}
	out.Workload = out.Workload.normalize()
	out.Policies = canonicalNames(Policies, out.Policies)
	if len(out.Cells) > 0 {
		cells := make([]CellSpec, len(out.Cells))
		for i, c := range out.Cells {
			c.Policy = canonicalName(Policies, c.Policy)
			if c.Workload != nil {
				w := c.Workload.normalize()
				c.Workload = &w
			}
			cells[i] = c
		}
		out.Cells = cells
	}
	if f := out.Federation; f != nil {
		ff := *f
		if len(ff.MemberCounts) == 0 {
			ff.MemberCounts = []int{3}
		}
		if len(ff.Divisions) == 0 {
			ff.Divisions = []string{replay.DivideDemand.String()}
		}
		ff.Divisions = canonicalNames(Divisions, ff.Divisions)
		ff.Signal = normalizeSignal(ff.Signal)
		if len(out.CapFractions) == 0 {
			out.CapFractions = []float64{0.6}
		}
		out.Federation = &ff
	}
	out.Mode = out.EffectiveMode()
	return out
}

// normalize canonicalizes the registry names and collapses the
// equivalent spellings of a workload (an SWF TimeScale of 1 means the
// same as the zero value: unchanged arrival times).
func (w WorkloadSpec) normalize() WorkloadSpec {
	w.Kind = canonicalName(Workloads, w.Kind)
	if swf := w.SWF; swf != nil && swf.TimeScale == 1 {
		s := *swf
		s.TimeScale = 0
		w.SWF = &s
	}
	return w
}

// normalizeSignal canonicalizes a budget-signal tree on a deep copy,
// passing the original through untouched when any kind is unregistered
// (Normalize must not fail; Validate reports unknown kinds).
func normalizeSignal(s *signal.Spec) *signal.Spec {
	if s == nil {
		return nil
	}
	raw, err := json.Marshal(s)
	if err != nil {
		return s
	}
	var copied signal.Spec
	if err := json.Unmarshal(raw, &copied); err != nil {
		return s
	}
	if err := copied.Normalize(); err != nil {
		return s
	}
	return &copied
}

// canonicalName resolves a registry name to its canonical spelling,
// passing empty and unregistered names through unchanged (Normalize
// must not fail; Validate reports unknown names).
func canonicalName[T any](reg *registry.Registry[T], name string) string {
	if name == "" {
		return name
	}
	if c, err := reg.Canonical(name); err == nil {
		return c
	}
	return name
}

// canonicalNames maps canonicalName over a name list, leaving the
// input slice untouched.
func canonicalNames[T any](reg *registry.Registry[T], names []string) []string {
	if len(names) == 0 {
		return names
	}
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = canonicalName(reg, n)
	}
	return out
}

// Validate reports the first structural problem a run would trip over:
// unregistered policy/kind/division names (the error enumerates what is
// registered), impossible windows, bad federation axes, a mode that
// contradicts the populated fields. Valid specs may still fail at run
// time (a missing SWF file, an empty window) — Validate checks the
// description, not the world.
func (s RunSpec) Validate() error {
	if s.Mode != "" && s.Mode != s.EffectiveMode() {
		return fmt.Errorf("sim: spec says mode %q but its fields derive %q", s.Mode, s.EffectiveMode())
	}
	if s.Racks < 0 {
		return fmt.Errorf("sim: negative racks %d", s.Racks)
	}
	if s.Workers < 0 {
		return fmt.Errorf("sim: negative workers %d", s.Workers)
	}
	if err := s.Workload.validate(); err != nil {
		return err
	}
	if err := s.Cap.validate(); err != nil {
		return err
	}
	for _, p := range s.Policies {
		if _, err := Policies.Lookup(p); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	for i, c := range s.Cells {
		if c.Policy != "" {
			if _, err := Policies.Lookup(c.Policy); err != nil {
				return fmt.Errorf("sim: cell %d: %w", i, err)
			}
		}
		if c.Workload != nil {
			if err := c.Workload.validate(); err != nil {
				return fmt.Errorf("sim: cell %d: %w", i, err)
			}
		}
		if c.Cap != nil {
			if err := c.Cap.validate(); err != nil {
				return fmt.Errorf("sim: cell %d: %w", i, err)
			}
		}
	}
	if f := s.Federation; f != nil {
		if len(s.Cells) > 0 {
			return fmt.Errorf("sim: federation specs cannot carry explicit cells")
		}
		for _, n := range f.MemberCounts {
			if n <= 0 {
				return fmt.Errorf("sim: federation member count %d must be positive", n)
			}
		}
		for _, d := range f.Divisions {
			if _, err := Divisions.Lookup(d); err != nil {
				return fmt.Errorf("sim: %w", err)
			}
		}
		if f.EpochSec < 0 {
			return fmt.Errorf("sim: federation epoch must be a positive duration, got %d (omit or 0 for the %d s default)",
				f.EpochSec, replay.DefaultFederationEpoch)
		}
		if f.Signal != nil {
			if err := f.Signal.Validate(); err != nil {
				return fmt.Errorf("sim: federation signal: %w", err)
			}
		}
		for _, frac := range s.CapFractions {
			if frac <= 0 || frac >= 1 {
				return fmt.Errorf("sim: federated mode needs cap fractions in (0, 1), got %v", frac)
			}
		}
	}
	return nil
}

func (w WorkloadSpec) validate() error {
	if w.Kind != "" {
		if _, err := Workloads.Lookup(w.Kind); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if w.DurationSec < 0 {
		return fmt.Errorf("sim: negative workload duration %d", w.DurationSec)
	}
	if w.LoadFactor < 0 {
		return fmt.Errorf("sim: negative load factor %v", w.LoadFactor)
	}
	if swf := w.SWF; swf != nil {
		if swf.Path == "" {
			return fmt.Errorf("sim: swf workload without a path")
		}
		if swf.WindowStartSec < 0 {
			return fmt.Errorf("sim: negative swf window start %d", swf.WindowStartSec)
		}
		if swf.WindowEndSec != 0 && swf.WindowEndSec <= swf.WindowStartSec {
			return fmt.Errorf("sim: swf window [%d, %d) is empty", swf.WindowStartSec, swf.WindowEndSec)
		}
		if swf.TimeScale < 0 {
			return fmt.Errorf("sim: negative swf time scale %v", swf.TimeScale)
		}
		if swf.Cores < 0 {
			return fmt.Errorf("sim: negative swf cores %d", swf.Cores)
		}
		if swf.MaxJobs < 0 {
			return fmt.Errorf("sim: negative swf max jobs %d", swf.MaxJobs)
		}
	}
	return nil
}

func (c CapSpec) validate() error {
	if c.StartSec < 0 {
		return fmt.Errorf("sim: negative cap window start %d", c.StartSec)
	}
	if c.DurationSec < 0 {
		return fmt.Errorf("sim: negative cap window duration %d", c.DurationSec)
	}
	return nil
}

// EncodeJSON writes the spec as indented JSON. Encoding a decoded spec
// reproduces the bytes exactly (the round-trip property the spec
// golden CI job checks), so spec files survive load-edit-dump cycles
// without noise.
func (s RunSpec) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// DecodeJSON reads one spec from r, rejecting unknown fields — a typo
// in a spec file is an error, not a silently ignored knob.
func DecodeJSON(r io.Reader) (RunSpec, error) {
	var s RunSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return RunSpec{}, fmt.Errorf("sim: decoding spec: %w", err)
	}
	return s, nil
}

// LoadSpec reads and validates a spec file.
func LoadSpec(path string) (RunSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return RunSpec{}, err
	}
	defer f.Close()
	s, err := DecodeJSON(f)
	if err != nil {
		return RunSpec{}, fmt.Errorf("%s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return RunSpec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// WriteSpecFile encodes the spec into a freshly created file — the
// shared backing of the CLIs' -dumpspec flags (the spec counterpart of
// WriteReportFile).
func WriteSpecFile(path string, spec RunSpec) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := spec.EncodeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RoundTrips checks the exact-encoding property on one spec's JSON
// form: decode, re-encode, compare bytes. CI runs this over every
// checked-in spec file.
func RoundTrips(data []byte) error {
	s, err := DecodeJSON(bytes.NewReader(data))
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := s.EncodeJSON(&buf); err != nil {
		return err
	}
	if !bytes.Equal(bytes.TrimSpace(data), bytes.TrimSpace(buf.Bytes())) {
		return fmt.Errorf("sim: spec does not round-trip: re-encoding drifted\ngot:\n%s", buf.String())
	}
	return nil
}
