package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	g := r.Gauge("test_depth", "Queue depth.")
	c.Add(3)
	g.Set(2.5)
	g.Add(-0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP test_ops_total Operations.\n",
		"# TYPE test_ops_total counter\n",
		"test_ops_total 3\n",
		"# TYPE test_depth gauge\n",
		"test_depth 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if problems := Lint(strings.NewReader(out)); len(problems) != 0 {
		t.Errorf("lint problems: %v", problems)
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_req_total", "Requests.", "route", "code")
	v.With("/v1/runs", "200").Inc()
	v.With("/v1/runs", "200").Inc()
	v.With(`/v1/"odd"`, "404").Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `test_req_total{route="/v1/runs",code="200"} 2`) {
		t.Errorf("missing labeled sample:\n%s", out)
	}
	if !strings.Contains(out, `test_req_total{route="/v1/\"odd\"",code="404"} 1`) {
		t.Errorf("label escaping broken:\n%s", out)
	}
	if problems := Lint(strings.NewReader(out)); len(problems) != 0 {
		t.Errorf("lint problems: %v", problems)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.1"} 2`, // 0.05 and the boundary 0.1
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="10"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_count 5`,
		`test_latency_seconds_sum 105.6`, // prefix: float accumulation may carry ulps
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if problems := Lint(strings.NewReader(out)); len(problems) != 0 {
		t.Errorf("lint problems: %v", problems)
	}
}

func TestGaugeAndCounterFunc(t *testing.T) {
	r := NewRegistry()
	n := 7.0
	r.GaugeFunc("test_live", "Live things.", func() float64 { return n })
	r.CounterFunc("test_seen_total", "Things seen.", func() float64 { return 41 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test_live 7\n") || !strings.Contains(out, "test_seen_total 41\n") {
		t.Errorf("func samples missing:\n%s", out)
	}
	if problems := Lint(strings.NewReader(out)); len(problems) != 0 {
		t.Errorf("lint problems: %v", problems)
	}
}

func TestEmptyVecOmitted(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_unused_total", "Never touched.", "x")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("untouched vec family should emit nothing, got:\n%s", buf.String())
	}
}

func TestCounterNamePolicy(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("counter without _total", func() { r.Counter("test_bad", "x") })
	mustPanic("gauge with _total", func() { r.Gauge("test_bad_total", "x") })
	mustPanic("bad name", func() { r.Gauge("0bad", "x") })
	mustPanic("reshape", func() {
		r.Counter("test_dup_total", "x")
		r.GaugeFunc("test_dup_total", "x", func() float64 { return 0 })
	})
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_conc_seconds", "x", nil)
	c := r.Counter("test_conc_total", "x")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.01)
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Errorf("count = %d/%d, want 8000", h.Count(), c.Value())
	}
}
