package obs

import (
	"net/http"
	"strconv"
	"time"
)

// HTTPMetrics is the per-route instrument set the middleware drives.
type HTTPMetrics struct {
	// InFlight counts requests currently being served.
	InFlight *Gauge
	// Requests counts finished requests by route/method/status code.
	Requests *CounterVec
	// Duration is the request latency histogram by route.
	Duration *HistogramVec
}

// NewHTTPMetrics registers the HTTP families under a namespace prefix
// (e.g. "simd" → simd_http_requests_total).
func NewHTTPMetrics(r *Registry, namespace string) *HTTPMetrics {
	return &HTTPMetrics{
		InFlight: r.Gauge(namespace+"_http_in_flight",
			"HTTP requests currently being served."),
		Requests: r.CounterVec(namespace+"_http_requests_total",
			"HTTP requests served, by route, method and status code.",
			"route", "method", "code"),
		Duration: r.HistogramVec(namespace+"_http_request_duration_seconds",
			"HTTP request latency in seconds, by route.",
			nil, "route"),
	}
}

// MiddlewareOptions configures Middleware. All fields are optional —
// a zero options value still traces request IDs.
type MiddlewareOptions struct {
	// Metrics, when set, records in-flight, count and latency.
	Metrics *HTTPMetrics
	// Log, when non-nil, writes one access line per request at debug
	// (2xx/3xx) or info (4xx/5xx) level with the request ID attached.
	Log *Logger
	// Route maps a request to its metric label (a bounded template like
	// "/v1/runs/{id}", never the raw path — label cardinality must stay
	// finite). Nil uses the raw path.
	Route func(*http.Request) string
}

// Middleware wraps an HTTP handler with request tracing and
// instrumentation: it assigns (or validates and adopts) the
// X-Request-ID, stamps it on the response and into the request
// context, and records per-route latency, status counts and in-flight
// gauge movement. The ResponseWriter handed downstream preserves
// http.Flusher, so SSE endpoints stream through it unchanged.
func Middleware(next http.Handler, opt MiddlewareOptions) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(RequestIDHeader)
		if !ValidRequestID(reqID) {
			reqID = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, reqID)
		r = r.WithContext(WithRequestID(r.Context(), reqID))

		route := r.URL.Path
		if opt.Route != nil {
			route = opt.Route(r)
		}
		sw := &statusWriter{ResponseWriter: w, reqID: reqID}
		var out http.ResponseWriter = sw
		if _, ok := w.(http.Flusher); ok {
			out = flushWriter{sw}
		}

		if opt.Metrics != nil {
			opt.Metrics.InFlight.Inc()
		}
		start := time.Now()
		// Observe in a defer: a handler that panics (e.g. aborting a
		// half-streamed response with http.ErrAbortHandler) still
		// accounts its request before the panic unwinds.
		defer func() {
			elapsed := time.Since(start)
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			if opt.Metrics != nil {
				opt.Metrics.InFlight.Dec()
				opt.Metrics.Requests.With(route, r.Method, strconv.Itoa(status)).Inc()
				opt.Metrics.Duration.With(route).Observe(elapsed.Seconds())
			}
			if opt.Log != nil {
				level := LevelDebug
				if status >= 400 {
					level = LevelInfo
				}
				if opt.Log.Enabled(level) {
					kv := []any{
						"method", r.Method, "path", r.URL.Path, "route", route,
						"status", status, "duration", elapsed.Round(time.Microsecond),
						"request_id", reqID,
					}
					if level == LevelDebug {
						opt.Log.Debug("http request", kv...)
					} else {
						opt.Log.Info("http request", kv...)
					}
				}
			}
		}()
		next.ServeHTTP(out, r)
	})
}

// statusWriter records the response status and carries the request ID
// down to error writers (see ResponseRequestID).
type statusWriter struct {
	http.ResponseWriter
	status int
	reqID  string
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) requestID() string { return w.reqID }

// flushWriter adds Flush only when the underlying writer supports it,
// so SSE handlers' Flusher type-assertions keep telling the truth.
type flushWriter struct{ *statusWriter }

func (w flushWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ResponseRequestID returns the request ID the middleware bound to
// this response, or "" when the writer never passed through
// Middleware — error writers use it to stamp request_id into bodies
// without threading the ID through every call site.
func ResponseRequestID(w http.ResponseWriter) string {
	if rw, ok := w.(interface{ requestID() string }); ok {
		return rw.requestID()
	}
	return ""
}
