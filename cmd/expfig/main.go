// Command expfig regenerates the paper's tables and figures.
//
// Usage:
//
//	expfig -fig 2|3|4|5|6|7a|7b|8|claims|ablation|all [-racks 56] [-workers 0]
//
// Figures 2-5 are static tables derived from the hardware model; 6-8 and
// the Section VII-C claims replay full workloads (use -racks to shrink
// the machine for quick looks).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/figures"
	"repro/internal/replay"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "which artifact: 2|3|4|5|6|7a|7b|8|claims|ablation|all")
		racks   = flag.Int("racks", 56, "machine size in racks for the replayed figures")
		workers = flag.Int("workers", 0, "parallel scenario workers (0 = GOMAXPROCS)")
		width   = flag.Int("width", 96, "chart width")
		height  = flag.Int("height", 14, "chart height")
	)
	flag.Parse()

	scale := 0
	if *racks != 56 {
		scale = *racks
	}
	want := func(name string) bool { return *fig == "all" || *fig == name }
	printed := false
	show := func(s string) {
		if printed {
			fmt.Println(strings.Repeat("-", 80))
		}
		fmt.Print(s)
		printed = true
	}

	if want("2") {
		show(figures.Fig2())
	}
	if want("3") {
		show(figures.Fig3())
	}
	if want("4") {
		show(figures.Fig4())
	}
	if want("5") {
		show(figures.Fig5())
	}
	if want("6") {
		r := replay.Run(replay.Fig6Scenario(scale))
		if r.Err != nil {
			fail(r.Err)
		}
		show("Figure 6: 24 h workload, MIX policy, 1 h reservation at 40%\n\n" +
			figures.TimeSeries(r, *width, *height))
	}
	if want("7a") {
		r := replay.Run(replay.Fig7aScenario(scale))
		if r.Err != nil {
			fail(r.Err)
		}
		show("Figure 7a: bigjob workload, SHUT policy, 60% cap\n\n" +
			figures.TimeSeries(r, *width, *height))
	}
	if want("7b") {
		r := replay.Run(replay.Fig7bScenario(scale))
		if r.Err != nil {
			fail(r.Err)
		}
		show("Figure 7b: smalljob workload, DVFS policy, 40% cap\n\n" +
			figures.TimeSeries(r, *width, *height))
	}
	if want("8") {
		rs := replay.RunAll(replay.Fig8Scenarios(scale), *workers)
		show(figures.Fig8(rs) + "\n" + figures.SummaryTable(rs))
	}
	if want("claims") {
		rs := replay.RunAll(replay.Claims24hScenarios(scale), *workers)
		show("Section VII-C 24 h claims (SHUT vs DVFS vs MIX vs IDLE at 40%)\n\n" +
			figures.SummaryTable(rs))
	}
	if want("ablation") {
		scens := append(replay.AblationGroupingScenarios(scale), replay.AblationMixFloorScenarios(scale)...)
		scens = append(scens, replay.AblationDynamicDVFSScenarios(scale)...)
		rs := replay.RunAll(scens, *workers)
		show("Ablations: grouped vs scattered shutdown; MIX floor vs full-range DVFS;\n" +
			"static vs dynamic DVFS\n\n" + figures.SummaryTable(rs))
	}
	if !printed {
		fail(fmt.Errorf("unknown figure %q", *fig))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
