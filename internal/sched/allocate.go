package sched

import (
	"repro/internal/cluster"
	"repro/internal/job"
)

// Allocate finds cores for a job on the cluster. It packs partially used
// busy nodes first (cheapest under the powercap: the paper notes jobs
// "filling partially used nodes will always pass the powercapping
// criteria"), then idle nodes in ascending ID order. eligible filters
// nodes (nil accepts all powered-on nodes); off nodes are never used.
// Returns nil when the request cannot be satisfied.
func Allocate(c *cluster.Cluster, cores int, eligible func(cluster.NodeID) bool) []job.Alloc {
	return AllocatePreferring(c, cores, eligible, nil)
}

// AllocatePreferring is Allocate with a node preference: preferred nodes
// are packed before the others (busy-partial first within each class).
// The powercap controller prefers nodes earmarked for an upcoming
// switch-off — work placed there drains away before the window while the
// surviving nodes' power budget is saved for jobs that outlast it.
func AllocatePreferring(c *cluster.Cluster, cores int, eligible, prefer func(cluster.NodeID) bool) []job.Alloc {
	allocs, found := AllocateInto(nil, c, cores, eligible, prefer)
	if !found {
		return nil
	}
	return allocs
}

// AllocateInto is AllocatePreferring appending into dst[:0]. A
// scheduling pass probes allocations for many jobs per event and most
// probes fail (the cluster is full or the power check refuses); reusing
// one candidate buffer across probes removes that churn. The returned
// slice always carries the (possibly grown) buffer so the caller can
// keep reusing it; found reports whether it holds a complete
// allocation. The slice aliases dst's backing array — callers that
// retain a successful allocation (e.g. in job state) must copy it out
// first.
func AllocateInto(dst []job.Alloc, c *cluster.Cluster, cores int, eligible, prefer func(cluster.NodeID) bool) (allocs []job.Alloc, found bool) {
	if cores <= 0 {
		return dst[:0], false
	}
	ok := eligible
	if ok == nil {
		ok = func(cluster.NodeID) bool { return true }
	}
	need := cores
	allocs = dst[:0]

	grabNode := func(id cluster.NodeID, free int, preferred bool) bool {
		if need <= 0 {
			return false
		}
		if prefer != nil && prefer(id) != preferred {
			return true
		}
		if !ok(id) {
			return true
		}
		grab := free
		if grab > need {
			grab = need
		}
		allocs = append(allocs, job.Alloc{Node: id, Cores: grab})
		need -= grab
		return true
	}
	// The cluster's candidate indexes (busy-with-free-cores, idle) walk
	// in ascending ID order, exactly the nodes the old full scan kept:
	// full busy nodes were skipped (free <= 0) and off nodes never
	// qualify for either state.
	perNode := c.Topology().CoresPerNode
	takeBusy := func(preferred bool) {
		c.ForEachBusyFree(func(id cluster.NodeID, free int) bool {
			return grabNode(id, free, preferred)
		})
	}
	takeIdle := func(preferred bool) {
		c.ForEachIdle(func(id cluster.NodeID) bool {
			return grabNode(id, perNode, preferred)
		})
	}
	if prefer != nil {
		takeBusy(true)
		takeIdle(true)
	}
	takeBusy(false)
	if need > 0 {
		takeIdle(false)
	}
	return allocs, need <= 0
}

// FreeCores returns the total free cores on powered-on nodes accepted by
// eligible (nil accepts all). Used as the quick feasibility check before
// a full Allocate scan.
func FreeCores(c *cluster.Cluster, eligible func(cluster.NodeID) bool) int {
	total := 0
	c.ForEach(func(n cluster.NodeInfo) bool {
		if n.State == cluster.StateOff {
			return true
		}
		if eligible != nil && !eligible(n.ID) {
			return true
		}
		total += c.FreeCores(n.ID)
		return true
	})
	return total
}
