// Command powercalc explores the Section III analytic model: given the
// cluster size, per-node power constants and a powercap, it reports how
// many nodes to switch off or slow down, the extractable work, the case
// classification and the mechanism chosen by the published rho criterion
// versus the direct work comparison.
//
// Usage:
//
//	powercalc [-n 5040] [-pmax 358] [-pmin 193] [-poff 14] [-deg 1.63] \
//	          [-lambda 0.6 | -cap <watts>] [-sweep]
//
// With -sweep the full lambda range is tabulated instead of a single
// point.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/model"
)

func main() {
	var (
		n      = flag.Int("n", 5040, "cluster node count")
		pmax   = flag.Float64("pmax", 358, "per-node draw busy at nominal frequency (W)")
		pmin   = flag.Float64("pmin", 193, "per-node draw busy at minimum frequency (W)")
		poff   = flag.Float64("poff", 14, "per-node draw switched off (W)")
		deg    = flag.Float64("deg", 1.63, "walltime degradation at minimum frequency")
		lambda = flag.Float64("lambda", 0.6, "powercap as a fraction of N*Pmax")
		capW   = flag.Float64("cap", 0, "powercap in watts (overrides -lambda when > 0)")
		sweep  = flag.Bool("sweep", false, "tabulate the whole lambda range")
	)
	flag.Parse()

	p := model.Params{N: *n, PMax: *pmax, PMin: *pmin, POff: *poff, DegMin: *deg}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *sweep {
		runSweep(p)
		return
	}
	watts := *capW
	if watts <= 0 {
		watts = *lambda * p.MaxPower()
	}
	pl, err := model.Solve(p, watts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cluster: N=%d Pmax=%.0fW Pmin=%.0fW Poff=%.0fW degmin=%.2f\n",
		p.N, p.PMax, p.PMin, p.POff, p.DegMin)
	fmt.Printf("powercap: %.0f W (lambda=%.3f, lambda_min=Pmin/Pmax=%.3f)\n",
		watts, watts/p.MaxPower(), p.LambdaMin())
	fmt.Printf("case: %v\n", pl.Case)
	fmt.Printf("rho (published, Fig.5): %+.4f -> paper picks %v\n", pl.Rho, pl.PaperChoice)
	fmt.Printf("direct work comparison  -> %v (Woff=%.1f Wdvfs=%s)\n",
		pl.DerivedChoice, pl.WorkOff, fmtWork(pl.WorkDvfs))
	fmt.Printf("optimal (continuous): Noff=%.2f Ndvfs=%.2f W=%.2f node-units\n",
		pl.NOff, pl.NDvfs, pl.Work)
	fmt.Printf("integral plan: Noff=%d Ndvfs=%d -> draw %.0f W, work %.2f\n",
		pl.IntNOff, pl.IntNDvfs,
		model.PowerOfCounts(p, pl.IntNOff, pl.IntNDvfs),
		model.WorkOfCounts(p, pl.IntNOff, pl.IntNDvfs))
}

func fmtWork(w float64) string {
	if math.IsNaN(w) {
		return "infeasible"
	}
	return fmt.Sprintf("%.1f", w)
}

func runSweep(p model.Params) {
	fmt.Printf("%8s %14s %10s %10s %10s %8s %s\n",
		"lambda", "cap(W)", "Noff", "Ndvfs", "W", "W/N", "case")
	for l := 10; l <= 100; l += 5 {
		lambda := float64(l) / 100
		pl, err := model.SolveFraction(p, lambda)
		if err != nil {
			fmt.Printf("%8.2f %14.0f %s\n", lambda, lambda*p.MaxPower(), err)
			continue
		}
		fmt.Printf("%8.2f %14.0f %10.1f %10.1f %10.1f %8.3f %v\n",
			lambda, lambda*p.MaxPower(), pl.NOff, pl.NDvfs, pl.Work,
			pl.Work/float64(p.N), pl.Case)
	}
}
