package service_test

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/tsdb"
)

// fastSpec is a sub-second single run: one rack, one simulated hour.
func fastSpec(name string) sim.RunSpec {
	return sim.RunSpec{
		Name:         name,
		Workload:     sim.WorkloadSpec{Kind: "smalljob", Seed: 42, DurationSec: 3600},
		Racks:        1,
		Policies:     []string{"SHUT"},
		CapFractions: []float64{0.6},
	}
}

// sweepSpec expands to four cells.
func sweepSpec() sim.RunSpec {
	return sim.RunSpec{
		Name:         "test-sweep",
		Workload:     sim.WorkloadSpec{Kind: "smalljob", Seed: 42, DurationSec: 3600},
		Racks:        1,
		Policies:     []string{"SHUT", "DVFS"},
		CapFractions: []float64{0.6, 0.4},
	}
}

// longSpec runs long enough to cancel mid-flight.
func longSpec() sim.RunSpec {
	return sim.RunSpec{
		Name:         "test-long",
		Workload:     sim.WorkloadSpec{Kind: "24h", Seed: 7},
		Racks:        4,
		Policies:     []string{"MIX"},
		CapFractions: []float64{0.5},
	}
}

func newTestServer(t *testing.T, cfg service.Config) (*service.Server, *service.Client) {
	t.Helper()
	s := service.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})
	c := service.NewClient(ts.URL)
	c.PollInterval = 20 * time.Millisecond
	return s, c
}

func TestSubmitStatusReportMetrics(t *testing.T) {
	s, c := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	v, hit, err := c.Submit(ctx, fastSpec("single"))
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first submission reported a cache hit")
	}
	if v.State != service.StateQueued && v.State != service.StateRunning {
		t.Fatalf("fresh run state = %s", v.State)
	}

	v, err = c.Wait(ctx, v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != service.StateDone {
		t.Fatalf("state = %s (%s), want done", v.State, v.Error)
	}

	// The report endpoint renders through the sink pipeline.
	var ascii, jsonOut strings.Builder
	if err := c.WriteReport(ctx, v.ID, "ascii", sim.SinkOptions{Width: 60, Height: 8}, &ascii); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ascii.String(), "summary:") {
		t.Errorf("ascii report missing summary:\n%s", ascii.String())
	}
	if err := c.WriteReport(ctx, v.ID, "json", sim.SinkOptions{}, &jsonOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonOut.String(), "\"max_power_w\"") {
		t.Errorf("json report looks empty: %.200s", jsonOut.String())
	}

	// Telemetry must agree with the run's own sample series: the
	// collector fires once per recorded sample with identical values.
	var rep sim.Report
	if err := s.Report(v.ID, func(r sim.Report) error { rep = r; return nil }); err != nil {
		t.Fatal(err)
	}
	rs := s.TSDB().Lookup(v.ID)
	if rs == nil {
		t.Fatal("run recorded no telemetry")
	}
	for _, name := range []string{"power", "cap", "pending_cores", "running_jobs"} {
		pts, per, err := rs.Query(name, 0, 0, 0)
		if err != nil {
			t.Fatalf("query %s: %v", name, err)
		}
		if per != 1 {
			t.Errorf("%s answered at raw_per_point=%d, want raw", name, per)
		}
		if len(pts) != len(rep.Single.Samples) {
			t.Fatalf("%s holds %d points, report has %d samples", name, len(pts), len(rep.Single.Samples))
		}
	}
	pts, _, _ := rs.Query("power", 0, 0, 0)
	capPts, _, _ := rs.Query("cap", 0, 0, 0)
	for i, sm := range rep.Single.Samples {
		if pts[i].T != sm.T || pts[i].Mean != float64(sm.Power) {
			t.Fatalf("power[%d] = (%d, %v), sample = (%d, %v)", i, pts[i].T, pts[i].Mean, sm.T, float64(sm.Power))
		}
		if capPts[i].Mean != float64(sm.Cap) {
			t.Fatalf("cap[%d] = %v, sample cap = %v", i, capPts[i].Mean, float64(sm.Cap))
		}
	}

	// HTTP metrics endpoint: discovery then a downsampled query.
	resp, err := http.Get(fmt.Sprintf("%s/v1/runs/%s/metrics", c.Base, v.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics discovery status %d", resp.StatusCode)
	}
}

// TestCacheHitDedupe pins the heavy-traffic story: 50 concurrent
// identical submissions collapse into one execution.
func TestCacheHitDedupe(t *testing.T) {
	s, c := newTestServer(t, service.Config{Workers: 2})
	ctx := context.Background()

	const n = 50
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		ids  = map[string]int{}
		hits int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := c.Submit(ctx, fastSpec("dedupe"))
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			ids[v.ID]++
			if hit {
				hits++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(ids) != 1 {
		t.Fatalf("submissions landed on %d distinct runs, want 1: %v", len(ids), ids)
	}
	if hits != n-1 {
		t.Errorf("cache hits = %d, want %d", hits, n-1)
	}
	var id string
	for k := range ids {
		id = k
	}
	v, err := c.Wait(ctx, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != service.StateDone {
		t.Fatalf("state = %s (%s)", v.State, v.Error)
	}
	if v.CacheHits != n-1 {
		t.Errorf("run metadata cache_hits = %d, want %d", v.CacheHits, n-1)
	}
	st := s.Stats()
	if st.Executions != 1 {
		t.Errorf("executions = %d, want 1", st.Executions)
	}
	if st.CacheHits != n-1 {
		t.Errorf("stats cache hits = %d, want %d", st.CacheHits, n-1)
	}

	// A later identical submission hits the finished result instantly.
	v2, hit, err := c.Submit(ctx, fastSpec("dedupe"))
	if err != nil {
		t.Fatal(err)
	}
	if !hit || v2.ID != id || v2.State != service.StateDone {
		t.Errorf("post-completion resubmit: hit=%v id=%s state=%s", hit, v2.ID, v2.State)
	}
}

func TestCancelRunningPromptly(t *testing.T) {
	_, c := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	v, _, err := c.Submit(ctx, longSpec())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		got, err := c.Get(ctx, v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == service.StateRunning {
			break
		}
		if got.Terminal() {
			t.Fatalf("run finished before it could be cancelled (state %s); grow longSpec", got.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("run never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	t0 := time.Now()
	if _, err := c.Cancel(ctx, v.ID); err != nil {
		t.Fatal(err)
	}
	got, err := c.Wait(ctx, v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != service.StateCancelled {
		t.Fatalf("state after cancel = %s", got.State)
	}
	if wait := time.Since(t0); wait > 10*time.Second {
		t.Errorf("cancellation took %v", wait)
	}

	// A fresh identical submission must re-execute, not serve the
	// cancelled run.
	v2, hit, err := c.Submit(ctx, longSpec())
	if err != nil {
		t.Fatal(err)
	}
	if hit || v2.ID == v.ID {
		t.Errorf("cancelled run served as a cache entry (hit=%v, id=%s)", hit, v2.ID)
	}
	if _, err := c.Cancel(ctx, v2.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, v2.ID, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCancelQueued(t *testing.T) {
	_, c := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	// Occupy the single worker, then queue a second run behind it.
	first, _, err := c.Submit(ctx, longSpec())
	if err != nil {
		t.Fatal(err)
	}
	queued, _, err := c.Submit(ctx, fastSpec("queued-cancel"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != service.StateCancelled {
		t.Fatalf("queued run state after cancel = %s, want cancelled immediately", v.State)
	}
	if _, err := c.Cancel(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, first.ID, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSSEEventOrdering reads the event stream of a sweep run and checks
// the protocol: queued, started, cells with increasing done counters,
// then done — and that a late subscriber replays the identical history.
func TestSSEEventOrdering(t *testing.T) {
	_, c := newTestServer(t, service.Config{Workers: 1, SweepWorkers: 2})
	ctx := context.Background()

	v, _, err := c.Submit(ctx, sweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	readEvents := func() []string {
		resp, err := http.Get(fmt.Sprintf("%s/v1/runs/%s/events", c.Base, v.ID))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("content type %q", ct)
		}
		var types []string
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "event: ") {
				types = append(types, strings.TrimPrefix(sc.Text(), "event: "))
			}
		}
		return types
	}

	live := readEvents() // follows until terminal
	want := []string{"queued", "started", "cell", "cell", "cell", "cell", "done"}
	if strings.Join(live, ",") != strings.Join(want, ",") {
		t.Fatalf("live event order = %v, want %v", live, want)
	}
	replay := readEvents() // late subscriber: history replay, then close
	if strings.Join(replay, ",") != strings.Join(live, ",") {
		t.Fatalf("replayed events %v != live %v", replay, live)
	}
}

func TestListFiltersAndErrors(t *testing.T) {
	_, c := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	a, _, err := c.Submit(ctx, fastSpec("list-a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Submit(ctx, fastSpec("list-b")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, a.ID, nil); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(c.Base + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<20)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), a.ID) {
		t.Errorf("listing misses %s: %.300s", a.ID, body[:n])
	}

	if _, err := c.Get(ctx, "r999999"); err == nil {
		t.Error("unknown run id succeeded")
	} else if apiErr, ok := err.(*service.Error); !ok || apiErr.Status != 404 {
		t.Errorf("unknown run error = %v", err)
	}

	bad := fastSpec("bad")
	bad.Policies = []string{"NOPE"}
	if _, _, err := c.Submit(ctx, bad); err == nil {
		t.Error("invalid spec accepted")
	} else if apiErr, ok := err.(*service.Error); !ok || apiErr.Status != 400 {
		t.Errorf("invalid spec error = %v", err)
	}
}

// TestShutdownDrains checks the SIGTERM path: queued runs cancel,
// running runs finish, later submissions are refused.
func TestShutdownDrains(t *testing.T) {
	s, c := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	// Occupy the single worker with a run long enough to still be in
	// flight when Shutdown fires, so the second submission stays queued.
	running, _, err := c.Submit(ctx, longSpec())
	if err != nil {
		t.Fatal(err)
	}
	queued, _, err := c.Submit(ctx, fastSpec("drain-queued"))
	if err != nil {
		t.Fatal(err)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	got, err := c.Get(ctx, running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != service.StateDone && got.State != service.StateCancelled {
		t.Errorf("in-flight run state after drain = %s", got.State)
	}
	gotQ, err := c.Get(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if gotQ.State != service.StateCancelled {
		t.Errorf("queued run state after drain = %s, want cancelled", gotQ.State)
	}
	if _, _, err := c.Submit(ctx, fastSpec("post-drain")); err == nil {
		t.Error("submission accepted while draining")
	} else if apiErr, ok := err.(*service.Error); !ok || apiErr.Status != 503 {
		t.Errorf("draining submit error = %v", err)
	}
}

// TestTSDBBoundsFromConfig checks the config plumbing into the store.
func TestTSDBBoundsFromConfig(t *testing.T) {
	s, c := newTestServer(t, service.Config{
		Workers: 1,
		TSDB:    tsdb.Options{PointsPerLevel: 8, Levels: 2, Fanout: 2},
	})
	ctx := context.Background()
	v, _, err := c.Submit(ctx, fastSpec("bounds"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, v.ID, nil); err != nil {
		t.Fatal(err)
	}
	rs := s.TSDB().Lookup(v.ID)
	if rs == nil {
		t.Fatal("no telemetry")
	}
	for _, lv := range rs.Levels("power") {
		if lv.Points > 8 {
			t.Errorf("level %d holds %d points, cap 8", lv.Level, lv.Points)
		}
	}
}
