package sim_test

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// fuzzSpec is the valid spec the seed envelopes wrap.
func fuzzSpec() sim.RunSpec {
	return sim.RunSpec{
		Name:         "fuzz-envelope",
		Workload:     sim.WorkloadSpec{Kind: "smalljob", Seed: 42, DurationSec: 3600},
		Racks:        1,
		Policies:     []string{"SHUT"},
		CapFractions: []float64{0.6},
	}.Normalize()
}

// FuzzEnvelopeDecode pins the archive decoder's hostile-input contract
// (seed corpus inline plus the checked-in files under testdata/fuzz/):
// corrupt, truncated or tampered envelopes return an error — never a
// panic, and never a silently misread record — while anything accepted
// must hold a verified seal and re-encode losslessly.
func FuzzEnvelopeDecode(f *testing.F) {
	env, err := sim.NewEnvelope(fuzzSpec())
	if err != nil {
		f.Fatal(err)
	}
	env.Renders = map[string][]byte{"json": []byte(`{"ok":true}`)}
	env.Meta = []byte(`{"id":"r000001","seq":0,"state":"done"}`)
	var valid bytes.Buffer
	if err := env.Encode(&valid); err != nil {
		f.Fatal(err)
	}
	seeds := [][]byte{
		valid.Bytes(),
		valid.Bytes()[:valid.Len()/2], // truncated mid-object
		bytes.Replace(valid.Bytes(), []byte(`"SHUT"`), []byte(`"DVFS"`), 1), // edited spec, stale seal
		bytes.Replace(valid.Bytes(), []byte(`"version": 1`), []byte(`"version": 99`), 1),
		[]byte(``),
		[]byte(`{}`),
		[]byte(`null`),
		[]byte(`{"version":1,"spec_hash":"","spec":{}}`),
		[]byte(`{"version":1,"spec_hash":"deadbeef","spec":{"workload":{"kind":"smalljob"}}}`),
		[]byte(`[1,2,3]`),
		[]byte("\x00\x01\x02"),
		[]byte(`{"version":1,"spec_hash":` + "\x00" + `}`),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := sim.DecodeEnvelope(bytes.NewReader(data))
		if err != nil {
			return // rejected: exactly what corrupt input should get
		}
		// Accepted envelopes hold a verified seal: the spec re-hashes
		// to the claimed address...
		hash, herr := sim.SpecHash(got.Spec)
		if herr != nil || hash != got.SpecHash {
			t.Fatalf("accepted envelope fails its own seal: hash=%q err=%v claimed=%q", hash, herr, got.SpecHash)
		}
		// ...and re-encoding round-trips to an equally valid envelope.
		var buf bytes.Buffer
		if err := got.Encode(&buf); err != nil {
			t.Fatalf("accepted envelope does not re-encode: %v", err)
		}
		again, err := sim.DecodeEnvelope(&buf)
		if err != nil {
			t.Fatalf("re-encoded envelope does not decode: %v", err)
		}
		if again.SpecHash != got.SpecHash || again.Version != got.Version {
			t.Fatalf("round trip drifted: %q/%d vs %q/%d", again.SpecHash, again.Version, got.SpecHash, got.Version)
		}
	})
}
