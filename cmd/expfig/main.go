// Command expfig regenerates the paper's tables and figures.
//
// Usage:
//
//	expfig -fig 2|3|4|5|6|7a|7b|8|claims|ablation|sweep|scenarios|federation|all \
//	       [-racks 56] [-workers 0]
//	expfig -fig 8 -dumpspec fig8.json    # write the figure's sim.RunSpec
//	expfig -spec run.json                # run any spec, render like a figure
//
// Figures 2-5 are static tables derived from the hardware model; the
// rest replay whole workloads (use -racks to shrink the machine for
// quick looks). The figure catalogue is the sim.Figures registry — the
// command itself is a thin iteration over it, and every replayed
// artifact is described by a declarative sim.RunSpec run through the
// parallel sweep engine (one independent controller per scenario,
// fanned out across -workers goroutines with deterministic results).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/service"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is the testable entry point.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("expfig", flag.ExitOnError)
	var (
		fig      = fs.String("fig", "all", "which artifact: "+sim.Figures.Join("|")+"|all")
		racks    = fs.Int("racks", 56, "machine size in racks for the replayed figures")
		workers  = fs.Int("workers", 0, "parallel scenario workers (0 = GOMAXPROCS)")
		width    = fs.Int("width", 96, "chart width")
		height   = fs.Int("height", 14, "chart height")
		csvOut   = fs.String("csv", "", "write the sweep summary table as CSV to this file")
		jsonOut  = fs.String("json", "", "write the sweep results as JSON to this file")
		specPath = fs.String("spec", "", "run this sim.RunSpec JSON file instead of a named figure")
		dumpSpec = fs.String("dumpspec", "", "write the selected -fig's sim.RunSpec as JSON and exit")
		remote   = fs.String("remote", "", "submit the run to a simd daemon at this base URL instead of executing locally (replayed figures and -spec runs; rendered through the generic sink)")
	)
	fs.Parse(args)

	scale := 0
	if *racks != 56 {
		scale = *racks
	}
	opt := sim.FigureOptions{Racks: scale, Workers: *workers, Width: *width, Height: *height}

	if *dumpSpec != "" {
		return dumpFigureSpec(*fig, opt, *dumpSpec, out)
	}

	if *remote != "" {
		spec, err := remoteSpec(*specPath, *fig, opt, *workers)
		if err != nil {
			return err
		}
		return runRemote(*remote, spec, opt, *csvOut, *jsonOut, out)
	}

	// -spec: any declarative run, rendered through the ASCII sink and
	// exported like a figure sweep.
	if *specPath != "" {
		spec, err := sim.LoadSpec(*specPath)
		if err != nil {
			return err
		}
		if *workers != 0 {
			spec.Workers = *workers
		}
		rep, err := sim.Run(context.Background(), spec)
		if err != nil {
			return err
		}
		if err := sim.Export(out, "ascii", rep, sim.SinkOptions{Width: *width, Height: *height}); err != nil {
			return err
		}
		if err := exportReport(&rep, *csvOut, *jsonOut, rep.Spec.Name, out); err != nil {
			return err
		}
		if errs := rep.Errs(); len(errs) > 0 {
			return errs[0]
		}
		return nil
	}

	names := []string{*fig}
	if *fig == "all" {
		names = sim.FigureNamesInAll()
	}
	printed := false
	var lastSweep *sim.Report
	for _, name := range names {
		text, rep, err := sim.RunFigure(context.Background(), name, opt)
		if err != nil {
			return err
		}
		if printed {
			fmt.Fprintln(out, strings.Repeat("-", 80))
		}
		fmt.Fprint(out, text)
		printed = true
		if rep != nil && (rep.Table != nil || rep.FederationTable != nil) {
			lastSweep = rep
		}
	}

	if *csvOut != "" || *jsonOut != "" {
		// With -fig all, several sweeps run; the export covers the last
		// one, so name it.
		if lastSweep == nil {
			return fmt.Errorf("-csv/-json export sweep results, but -fig %s ran no sweep (use 8, claims, ablation, sweep, scenarios or federation)", *fig)
		}
		name := lastSweep.Spec.Name
		if err := exportReport(lastSweep, *csvOut, *jsonOut, name, out); err != nil {
			return err
		}
	}
	return nil
}

// exportReport writes the report's CSV/JSON forms through the sink
// pipeline when the paths are set. Labels follow the payload: a
// single-mode report's CSV is the per-sample time series, not a sweep
// table.
func exportReport(rep *sim.Report, csvOut, jsonOut, name string, out io.Writer) error {
	csvLabel, jsonLabel := "sweep summary CSV", "sweep JSON"
	if rep.Single != nil {
		csvLabel, jsonLabel = "time series CSV", "summary JSON"
	}
	if csvOut != "" {
		if err := sim.WriteReportFile(csvOut, "csv", *rep, sim.SinkOptions{}); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s (%s) written to %s\n", csvLabel, name, csvOut)
	}
	if jsonOut != "" {
		if err := sim.WriteReportFile(jsonOut, "json", *rep, sim.SinkOptions{}); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s (%s) written to %s\n", jsonLabel, name, jsonOut)
	}
	return nil
}

// remoteSpec resolves what -remote submits: the -spec file when given,
// otherwise the selected replayed figure's RunSpec (static tables and
// the "all" set render locally only).
func remoteSpec(specPath, fig string, opt sim.FigureOptions, workers int) (sim.RunSpec, error) {
	if specPath != "" {
		spec, err := sim.LoadSpec(specPath)
		if err != nil {
			return sim.RunSpec{}, err
		}
		if workers != 0 {
			spec.Workers = workers
		}
		return spec, nil
	}
	if fig == "all" {
		return sim.RunSpec{}, fmt.Errorf("-remote submits one run; pick a replayed figure or a -spec file")
	}
	f, err := sim.Figures.Lookup(fig)
	if err != nil {
		return sim.RunSpec{}, fmt.Errorf("sim: %w", err)
	}
	if f.Static != nil {
		return sim.RunSpec{}, fmt.Errorf("figure %s is a static table; it renders locally without a simulation", fig)
	}
	spec, err := f.Spec(opt)
	if err != nil {
		return sim.RunSpec{}, err
	}
	spec.Workers = workers
	return spec, nil
}

// runRemote submits the spec to a simd daemon, polls for completion and
// streams the daemon's sink-pipeline renderings: the generic ASCII form
// to the terminal, json/csv to the -json/-csv files.
func runRemote(base string, spec sim.RunSpec, opt sim.FigureOptions, csvOut, jsonOut string, out io.Writer) error {
	return service.NewClient(base).RunAndRender(context.Background(), spec,
		sim.SinkOptions{Width: opt.Width, Height: opt.Height}, out,
		service.Export{Path: csvOut, Format: "csv", Label: "CSV"},
		service.Export{Path: jsonOut, Format: "json", Label: "JSON"},
	)
}

// dumpFigureSpec writes the RunSpec a replayed figure would execute —
// the bridge from the built-in catalogue to the spec-file scenario
// library.
func dumpFigureSpec(fig string, opt sim.FigureOptions, path string, out io.Writer) error {
	f, err := sim.Figures.Lookup(fig)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if f.Static != nil {
		return fmt.Errorf("figure %s is a static table; only replayed figures have specs", fig)
	}
	spec, err := f.Spec(opt)
	if err != nil {
		return err
	}
	spec.Workers = opt.Workers
	if err := spec.Validate(); err != nil {
		return err
	}
	spec = spec.Normalize()
	if err := sim.WriteSpecFile(path, spec); err != nil {
		return err
	}
	fmt.Fprintf(out, "figure %s spec written to %s\n", fig, path)
	return nil
}
