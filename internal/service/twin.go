package service

// The twin layer: long-lived digital-twin sessions hosted next to the
// batch run registry. A twin is not a run — it has no spec-hash cache
// (two tenants starting the same twin get two live sessions), no
// archive tier (a twin's durable artifact is its spec + mutation log,
// which replays byte-identically), and no terminal report. It shares
// the daemon's tsdb (series under the twin id), the auth/quota layer,
// the SSE idiom and the drain discipline.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/twin"
)

// twinRun is the server-side record of one twin session, live or
// finished. Finished twins stay in the registry (status, mutation log
// and telemetry remain queryable) until the daemon exits; they are
// bounded by the tenants' session quotas, not MaxRuns.
type twinRun struct {
	id      string
	seq     int
	tenant  string
	session *twin.Session
	cancel  context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	state     State
	errMsg    string
	submitted time.Time
	finished  time.Time
	events    []Event
}

func (t *twinRun) appendEventLocked(typ string, e Event) {
	e.Seq = len(t.events)
	e.Type = typ
	t.events = append(t.events, e)
	t.cond.Broadcast()
}

// TwinView is the wire form of one twin session.
type TwinView struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State State  `json:"state"` // running|done|failed|cancelled
	Error string `json:"error,omitempty"`
	// Tenant is the owning tenant's name (empty on open daemons).
	Tenant string `json:"tenant,omitempty"`
	// Spec is the normalized twin spec; only the single-twin GET
	// carries it (listings stay light).
	Spec *twin.Spec `json:"spec,omitempty"`
	// Status is the session's last epoch-boundary snapshot: virtual
	// clock, active signal value, effective budget, per-member state.
	Status twin.Status `json:"status"`
	// Mutations is the applied-mutation log — together with Spec,
	// everything needed to replay the session byte-identically. Only
	// the single-twin GET carries it.
	Mutations []twin.Applied `json:"mutations,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// view renders the twin; full attaches the spec and mutation log (the
// single-twin GET).
func (t *twinRun) view(full bool) TwinView {
	st := t.session.Status()
	t.mu.Lock()
	defer t.mu.Unlock()
	v := TwinView{
		ID:          t.id,
		Name:        st.Name,
		State:       t.state,
		Error:       t.errMsg,
		Tenant:      t.tenant,
		Status:      st,
		SubmittedAt: t.submitted,
	}
	if !t.finished.IsZero() {
		ft := t.finished
		v.FinishedAt = &ft
	}
	if full {
		sp := t.session.Spec()
		v.Spec = &sp
		v.Mutations = t.session.Log()
	}
	return v
}

// errUnknownTwin is THE not-found answer for a twin id: foreign-tenant
// reads reuse it verbatim so "never existed" and "someone else's" are
// indistinguishable (same oracle-closing contract as errUnknownRun).
func errUnknownTwin(id string) *Error {
	return &Error{Status: 404, Msg: fmt.Sprintf("service: unknown twin %q", id)}
}

// twinReadAllowed is the per-twin read ownership check, mirroring
// readAllowed.
func twinReadAllowed(auth *Auth, tenant TenantConfig, owner, id string) error {
	if auth == nil || tenant.Admin || tenant.Name == "" || tenant.Name == owner {
		return nil
	}
	return errUnknownTwin(id)
}

// twinWriteAllowed is the mutation/stop ownership check, mirroring
// cancelAllowed (the id was already confirmed readable or the caller
// owns it, so a 403 here leaks nothing new to an owner; foreign
// writers without read rights never reach it).
func twinWriteAllowed(auth *Auth, tenant TenantConfig, owner string) error {
	if auth == nil || tenant.Admin || tenant.Name == "" || tenant.Name == owner {
		return nil
	}
	return &Error{Status: 403, Msg: "service: twin belongs to another tenant"}
}

// StartTwin is StartTwinAs for the open daemon / trusted callers.
func (s *Server) StartTwin(spec twin.Spec) (TwinView, error) {
	return s.StartTwinAs(TenantConfig{}, spec)
}

// StartTwinAs validates and boots a twin session on behalf of a
// tenant: members built, reservations placed, the lockstep loop
// running on its own goroutine until the horizon, a stop or shutdown.
// Twin starts share the tenant's submission rate limit with runs — a
// live session is strictly more expensive than a batch run.
func (s *Server) StartTwinAs(tenant TenantConfig, spec twin.Spec) (TwinView, error) {
	if s.cfg.Auth != nil && tenant.Name != "" {
		if wait, ok := s.cfg.Auth.AllowSubmit(tenant.Name); !ok {
			return TwinView{}, &Error{
				Status:     429,
				Msg:        fmt.Sprintf("service: tenant %s over submission rate", tenant.Name),
				RetryAfter: wait,
			}
		}
	}
	if err := spec.Validate(); err != nil {
		return TwinView{}, &Error{Status: 400, Msg: err.Error()}
	}

	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return TwinView{}, &Error{Status: 503, Msg: "service: draining, not accepting twins"}
	}

	// Claim the id before the (potentially slow) member build so
	// concurrent starts never race the sequence.
	s.twinMu.Lock()
	id := fmt.Sprintf("t%06d", s.nextTwinSeq+1)
	seq := s.nextTwinSeq
	s.nextTwinSeq++
	s.twinMu.Unlock()

	t := &twinRun{id: id, seq: seq, tenant: tenant.Name, state: StateRunning, submitted: time.Now()}
	t.cond = sync.NewCond(&t.mu)
	sink := s.tsdb.Run(id)
	session, err := twin.New(spec, twin.Config{
		Sink: sink,
		OnEpoch: func(st twin.Status) {
			t.mu.Lock()
			t.appendEventLocked("epoch", Event{Done: int(st.VirtualTime), Total: int(st.HorizonSec)})
			t.mu.Unlock()
		},
		OnApplied: func(a twin.Applied) {
			t.mu.Lock()
			t.appendEventLocked("mutation", Event{Cell: string(a.Mutation.Op), Done: int(a.AtEpoch), Error: a.Err})
			t.mu.Unlock()
		},
	})
	if err != nil {
		s.tsdb.Drop(id)
		return TwinView{}, &Error{Status: 400, Msg: err.Error()}
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	t.session = session
	t.cancel = cancel

	s.twinMu.Lock()
	s.twins[id] = t
	s.twinOrder = append(s.twinOrder, t)
	s.twinMu.Unlock()

	t.mu.Lock()
	t.appendEventLocked("started", Event{})
	t.mu.Unlock()

	s.twinWG.Add(1)
	go func() {
		defer s.twinWG.Done()
		defer cancel()
		err := session.Run(ctx)
		t.mu.Lock()
		t.finished = time.Now()
		switch {
		case err == nil:
			t.state = StateDone
			t.appendEventLocked("done", Event{})
		case ctx.Err() != nil:
			t.state = StateCancelled
			t.errMsg = err.Error()
			t.appendEventLocked("cancelled", Event{Error: t.errMsg})
		default:
			t.state = StateFailed
			t.errMsg = err.Error()
			t.appendEventLocked("failed", Event{Error: t.errMsg})
		}
		t.mu.Unlock()
	}()
	return t.view(false), nil
}

// twinByID resolves a twin id without tenancy (internal).
func (s *Server) twinByID(id string) *twinRun {
	s.twinMu.Lock()
	defer s.twinMu.Unlock()
	return s.twins[id]
}

// Twin is TwinAs with operator rights.
func (s *Server) Twin(id string) (TwinView, error) {
	return s.TwinAs(TenantConfig{Admin: true}, id)
}

// TwinAs returns one twin's view — spec and mutation log included —
// with the caller's tenancy applied: someone else's twin answers the
// exact 404 an id that never existed answers.
func (s *Server) TwinAs(tenant TenantConfig, id string) (TwinView, error) {
	t := s.twinByID(id)
	if t == nil {
		return TwinView{}, errUnknownTwin(id)
	}
	if err := twinReadAllowed(s.cfg.Auth, tenant, t.tenant, id); err != nil {
		return TwinView{}, err
	}
	return t.view(true), nil
}

// ListTwinsAs returns the caller-visible twins in start order (admins
// and open daemons see all).
func (s *Server) ListTwinsAs(tenant TenantConfig) []TwinView {
	s.twinMu.Lock()
	order := append([]*twinRun(nil), s.twinOrder...)
	s.twinMu.Unlock()
	sort.Slice(order, func(i, j int) bool { return order[i].seq < order[j].seq })
	views := make([]TwinView, 0, len(order))
	for _, t := range order {
		if twinReadAllowed(s.cfg.Auth, tenant, t.tenant, t.id) != nil {
			continue
		}
		views = append(views, t.view(false))
	}
	return views
}

// MutateTwinAs enqueues a live mutation; it applies at the first epoch
// boundary at or after its AtSec. Unknown ops are 400; mutating a
// finished twin is 409; the returned view shows the queue growing
// (application is asynchronous by design — the boundary contract).
func (s *Server) MutateTwinAs(tenant TenantConfig, id string, m twin.Mutation) (TwinView, error) {
	t := s.twinByID(id)
	if t == nil {
		return TwinView{}, errUnknownTwin(id)
	}
	if err := twinReadAllowed(s.cfg.Auth, tenant, t.tenant, id); err != nil {
		return TwinView{}, err
	}
	if err := twinWriteAllowed(s.cfg.Auth, tenant, t.tenant); err != nil {
		return TwinView{}, err
	}
	t.mu.Lock()
	terminal := t.state.Terminal()
	t.mu.Unlock()
	if terminal {
		return TwinView{}, &Error{Status: 409, Msg: fmt.Sprintf("service: twin %s is finished; mutations no longer apply", id)}
	}
	if err := t.session.Mutate(m); err != nil {
		return TwinView{}, &Error{Status: 400, Msg: err.Error()}
	}
	return t.view(false), nil
}

// StopTwinAs stops a twin: its context is cancelled and the session
// unwinds at the next boundary (or mid-sleep for paced twins).
// Stopping a finished twin is a no-op; the view reports the state
// reached. The twin's status, log and telemetry remain readable.
func (s *Server) StopTwinAs(tenant TenantConfig, id string) (TwinView, error) {
	t := s.twinByID(id)
	if t == nil {
		return TwinView{}, errUnknownTwin(id)
	}
	if err := twinReadAllowed(s.cfg.Auth, tenant, t.tenant, id); err != nil {
		return TwinView{}, err
	}
	if err := twinWriteAllowed(s.cfg.Auth, tenant, t.tenant); err != nil {
		return TwinView{}, err
	}
	t.cancel()
	return t.view(false), nil
}

// FollowTwin replays a twin's event log from the start and then
// follows live appends until the twin finishes, fn errors or ctx ends
// — the twin SSE loop, same discipline as Follow.
func (s *Server) FollowTwin(ctx context.Context, id string, fn func(Event) error) error {
	t := s.twinByID(id)
	if t == nil {
		return errUnknownTwin(id)
	}
	stop := context.AfterFunc(ctx, func() {
		t.mu.Lock()
		t.cond.Broadcast()
		t.mu.Unlock()
	})
	defer stop()

	idx := 0
	t.mu.Lock()
	for {
		for idx < len(t.events) {
			e := t.events[idx]
			idx++
			t.mu.Unlock()
			if err := fn(e); err != nil {
				return err
			}
			t.mu.Lock()
		}
		if t.state.Terminal() {
			t.mu.Unlock()
			return nil
		}
		if err := ctx.Err(); err != nil {
			t.mu.Unlock()
			return err
		}
		t.cond.Wait()
	}
}

// twinStats counts the registry for Stats (live = still running).
func (s *Server) twinStats() (live, total int) {
	s.twinMu.Lock()
	defer s.twinMu.Unlock()
	for _, t := range s.twins {
		t.mu.Lock()
		if !t.state.Terminal() {
			live++
		}
		t.mu.Unlock()
	}
	return live, len(s.twins)
}

// stopTwins cancels every live twin and waits for their goroutines,
// bounded by ctx — the Shutdown leg of the twin registry.
func (s *Server) stopTwins(ctx context.Context) error {
	s.twinMu.Lock()
	for _, t := range s.twins {
		t.cancel()
	}
	s.twinMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.twinWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- HTTP ---

// handleTwins serves the collection: POST starts a twin, GET lists the
// caller's twins.
func (s *Server) handleTwins(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
		dec.DisallowUnknownFields()
		var spec twin.Spec
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, &Error{Status: 400, Msg: fmt.Sprintf("service: decoding twin spec: %v", err)})
			return
		}
		v, err := s.StartTwinAs(requestTenant(r), spec)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, v)
	case http.MethodGet:
		writeJSON(w, 200, twinListResponse{Twins: s.ListTwinsAs(requestTenant(r))})
	default:
		writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
	}
}

// twinListResponse is the GET /v1/twin answer.
type twinListResponse struct {
	Twins []TwinView `json:"twins"`
}

// handleTwin routes /v1/twin/{id}[/mutations|series|events].
func (s *Server) handleTwin(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/twin/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		writeErr(w, &Error{Status: 404, Msg: "missing twin id"})
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			v, err := s.TwinAs(requestTenant(r), id)
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, 200, v)
		case http.MethodDelete:
			v, err := s.StopTwinAs(requestTenant(r), id)
			if err != nil {
				writeErr(w, err)
				return
			}
			writeJSON(w, 200, v)
		default:
			writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
		}
	case "mutations":
		s.handleTwinMutations(w, r, id)
	case "series":
		s.handleTwinSeries(w, r, id)
	case "events":
		s.handleTwinEvents(w, r, id)
	default:
		writeErr(w, &Error{Status: 404, Msg: fmt.Sprintf("unknown resource %q", sub)})
	}
}

// handleTwinMutations serves POST (enqueue a mutation) and GET (the
// applied log) on /v1/twin/{id}/mutations.
func (s *Server) handleTwinMutations(w http.ResponseWriter, r *http.Request, id string) {
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
		dec.DisallowUnknownFields()
		var m twin.Mutation
		if err := dec.Decode(&m); err != nil {
			writeErr(w, &Error{Status: 400, Msg: fmt.Sprintf("service: decoding mutation: %v", err)})
			return
		}
		v, err := s.MutateTwinAs(requestTenant(r), id, m)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, v)
	case http.MethodGet:
		v, err := s.TwinAs(requestTenant(r), id)
		if err != nil {
			writeErr(w, err)
			return
		}
		if v.Mutations == nil {
			v.Mutations = []twin.Applied{}
		}
		writeJSON(w, 200, v.Mutations)
	default:
		writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
	}
}

// handleTwinSeries serves GET /v1/twin/{id}/series?metric=&from=&to=
// &res= — the run series endpoint over the twin's telemetry. Twins
// have no archive tier: the live tsdb is the only source.
func (s *Server) handleTwinSeries(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
		return
	}
	if _, err := s.TwinAs(requestTenant(r), id); err != nil {
		writeErr(w, err)
		return
	}
	rs := s.tsdb.Lookup(id)
	if rs == nil {
		writeErr(w, &Error{Status: 404, Msg: fmt.Sprintf("twin %s recorded no telemetry", id)})
		return
	}
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		writeJSON(w, 200, SeriesResponse{Run: id, Metrics: rs.Series(), DroppedSeries: rs.Dropped()})
		return
	}
	from, to, res, err := timeRangeParams(q)
	if err != nil {
		writeErr(w, err)
		return
	}
	pts, per, err := rs.Query(metric, from, to, res)
	if err != nil {
		writeErr(w, &Error{Status: 404, Msg: err.Error()})
		return
	}
	writeJSON(w, 200, SeriesResponse{
		Run:           id,
		Metric:        metric,
		RawPerPoint:   per,
		Points:        pts,
		DroppedSeries: rs.Dropped(),
	})
}

// handleTwinEvents streams the twin's event log as SSE: started,
// epoch (virtual-clock ticks), mutation, done/failed/cancelled.
func (s *Server) handleTwinEvents(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
		return
	}
	if _, err := s.TwinAs(requestTenant(r), id); err != nil {
		writeErr(w, err)
		return
	}
	serveSSE(w, r, s.cfg.SSEKeepalive, func(ctx context.Context, emit func(Event) error) error {
		return s.FollowTwin(ctx, id, emit)
	})
}

// handlePromMetrics serves the Prometheus text exposition on /metrics
// — unauthenticated like /healthz, so scrapers need no tenant token
// (the families are aggregate counters, no per-tenant data). The
// registry carries everything: the stats-derived gauge/counter set,
// per-route HTTP histograms, scheduler wait/depth, engine hot-path
// counters, cache-tier hits and run stage timings.
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, &Error{Status: 405, Msg: "method not allowed"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.met.scrape(w, s.Stats())
}

// --- Client ---

// StartTwin posts a twin spec and returns the live session's view.
func (c *Client) StartTwin(ctx context.Context, spec twin.Spec) (TwinView, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(spec); err != nil {
		return TwinView{}, err
	}
	var v TwinView
	err := c.do(ctx, http.MethodPost, "/v1/twin", &buf, &v)
	return v, err
}

// Twin fetches one twin's status, spec and mutation log.
func (c *Client) Twin(ctx context.Context, id string) (TwinView, error) {
	var v TwinView
	err := c.do(ctx, http.MethodGet, "/v1/twin/"+id, nil, &v)
	return v, err
}

// ListTwins fetches the caller-visible twin sessions.
func (c *Client) ListTwins(ctx context.Context) ([]TwinView, error) {
	var resp twinListResponse
	err := c.do(ctx, http.MethodGet, "/v1/twin", nil, &resp)
	return resp.Twins, err
}

// MutateTwin enqueues a live mutation on a twin.
func (c *Client) MutateTwin(ctx context.Context, id string, m twin.Mutation) (TwinView, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(m); err != nil {
		return TwinView{}, err
	}
	var v TwinView
	err := c.do(ctx, http.MethodPost, "/v1/twin/"+id+"/mutations", &buf, &v)
	return v, err
}

// StopTwin stops a twin session (its telemetry stays queryable).
func (c *Client) StopTwin(ctx context.Context, id string) (TwinView, error) {
	var v TwinView
	err := c.do(ctx, http.MethodDelete, "/v1/twin/"+id, nil, &v)
	return v, err
}

// TwinSeries fetches one metric's points from a twin's telemetry; an
// empty metric enumerates the recorded metrics.
func (c *Client) TwinSeries(ctx context.Context, id, metric string, sq SeriesQuery) (SeriesResponse, error) {
	q := url.Values{}
	if metric != "" {
		q.Set("metric", metric)
	}
	if sq.From != 0 {
		q.Set("from", strconv.FormatInt(sq.From, 10))
	}
	if sq.To != 0 {
		q.Set("to", strconv.FormatInt(sq.To, 10))
	}
	if sq.Res != 0 {
		q.Set("res", strconv.FormatInt(sq.Res, 10))
	}
	path := "/v1/twin/" + id + "/series"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var resp SeriesResponse
	err := c.do(ctx, http.MethodGet, path, nil, &resp)
	return resp, err
}
