package service_test

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/twin"
)

// fastTwinSpec is a twin small enough to run to its horizon in well
// under a second: two one-rack members, one virtual hour, no pacing.
func fastTwinSpec(name string) twin.Spec {
	return twin.Spec{
		Name: name,
		Members: []twin.MemberSpec{
			{Name: "alpha", Workload: sim.WorkloadSpec{Kind: "bursty", Seed: 21, DurationSec: 1800, LoadFactor: 0.7}, Racks: 1},
			{Name: "beta", Workload: sim.WorkloadSpec{Kind: "smalljob", Seed: 22, DurationSec: 1800, LoadFactor: 0.4}, Racks: 1},
		},
		GlobalCapFraction: 0.6,
		EpochSec:          900,
		HorizonSec:        3600,
	}
}

// pacedTwinSpec never finishes on its own within a test's patience —
// the target for stop and drain paths.
func pacedTwinSpec(name string) twin.Spec {
	s := fastTwinSpec(name)
	s.HorizonSec = 7 * 24 * 3600
	s.RealTimeRatio = 900 // one epoch per wall second
	return s
}

// waitTwinState polls until the twin reaches a terminal state.
func waitTwinState(t *testing.T, c *service.Client, id string) service.TwinView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := c.Twin(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("twin %s did not finish: %+v", id, v)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestTwinLifecycleOverHTTP(t *testing.T) {
	s, c := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	// Pace the twin to ~100ms per epoch so the mutation below arrives
	// while the session is still short of its t=1800 boundary.
	spec := fastTwinSpec("lifecycle")
	spec.RealTimeRatio = 9000
	v, err := c.StartTwin(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(v.ID, "t") {
		t.Fatalf("twin id = %q, want t-prefixed", v.ID)
	}
	if v.State != service.StateRunning {
		t.Fatalf("fresh twin state = %s", v.State)
	}

	// A mutation enqueued mid-flight lands in the applied log.
	if _, err := c.MutateTwin(ctx, v.ID, twin.Mutation{Op: twin.OpSetBudget, AtSec: 1800, BudgetFraction: 0.3}); err != nil {
		t.Fatal(err)
	}

	final := waitTwinState(t, c, v.ID)
	if final.State != service.StateDone {
		t.Fatalf("twin finished %s: %s", final.State, final.Error)
	}
	if !final.Status.Finished || final.Status.VirtualTime != 3600 {
		t.Fatalf("final status: %+v", final.Status)
	}
	if len(final.Mutations) != 1 || final.Mutations[0].Err != "" || final.Mutations[0].AtEpoch != 1800 {
		t.Fatalf("mutation log: %+v", final.Mutations)
	}
	if final.Spec == nil || final.Spec.Division != "demand" {
		t.Fatalf("single GET carries no normalized spec: %+v", final.Spec)
	}

	// The budget series reflects the cut: both endpoint and client.
	sr, err := c.TwinSeries(ctx, v.ID, "budget", service.SeriesQuery{})
	if err != nil {
		t.Fatal(err)
	}
	var before, after float64
	for _, p := range sr.Points {
		if p.T < 1800 {
			before = p.Mean
		}
		if p.T == 1800 {
			after = p.Mean
		}
	}
	if before <= 0 || after >= before {
		t.Fatalf("budget mutation invisible in series: before=%v after=%v", before, after)
	}

	// Discovery mode enumerates per-member and site series.
	names, err := c.TwinSeries(ctx, v.ID, "", service.SeriesQuery{})
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(names.Metrics, ",")
	for _, want := range []string{"alpha/power", "beta/cap", "power", "budget", "signal"} {
		if !strings.Contains(got, want) {
			t.Errorf("series enumeration %q missing %q", got, want)
		}
	}

	// Stats fold the (now finished) twin into the counters.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.TwinsTotal != 1 || st.TwinsLive != 0 {
		t.Errorf("stats twins = %d live / %d total, want 0/1", st.TwinsLive, st.TwinsTotal)
	}

	// The listing shows the twin without the heavy payloads.
	twins, err := c.ListTwins(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(twins) != 1 || twins[0].ID != v.ID || twins[0].Spec != nil || twins[0].Mutations != nil {
		t.Fatalf("listing = %+v", twins)
	}

	// Mutating a finished twin is a 409.
	_, err = c.MutateTwin(ctx, v.ID, twin.Mutation{Op: twin.OpSetBudget, BudgetFraction: 0.5})
	if apiErr, ok := err.(*service.Error); !ok || apiErr.Status != 409 {
		t.Fatalf("mutate finished twin error = %v, want 409", err)
	}
	_ = s
}

func TestTwinStopAndEvents(t *testing.T) {
	_, c := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	v, err := c.StartTwin(ctx, pacedTwinSpec("stop"))
	if err != nil {
		t.Fatal(err)
	}

	// Stream SSE until the started event shows up.
	req, _ := http.NewRequest(http.MethodGet, c.Base+"/v1/twin/"+v.ID+"/events", nil)
	sseCtx, sseCancel := context.WithTimeout(ctx, 10*time.Second)
	defer sseCancel()
	resp, err := http.DefaultClient.Do(req.WithContext(sseCtx))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type = %q", ct)
	}
	scanner := bufio.NewScanner(resp.Body)
	sawStarted := false
	for scanner.Scan() {
		if strings.Contains(scanner.Text(), "event: started") {
			sawStarted = true
			break
		}
	}
	if !sawStarted {
		t.Fatal("SSE stream never delivered the started event")
	}

	stopped, err := c.StopTwin(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	_ = stopped
	final := waitTwinState(t, c, v.ID)
	if final.State != service.StateCancelled {
		t.Fatalf("stopped twin state = %s", final.State)
	}
	// Stopping again is a readable no-op.
	again, err := c.StopTwin(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.State != service.StateCancelled {
		t.Fatalf("re-stop state = %s", again.State)
	}
}

func TestTwinBadSpecAndBadMutation(t *testing.T) {
	_, c := newTestServer(t, service.Config{Workers: 1})
	ctx := context.Background()

	bad := fastTwinSpec("bad")
	bad.GlobalCapFraction = 2
	_, err := c.StartTwin(ctx, bad)
	if apiErr, ok := err.(*service.Error); !ok || apiErr.Status != 400 {
		t.Fatalf("bad spec error = %v, want 400", err)
	}

	v, err := c.StartTwin(ctx, pacedTwinSpec("mutate-bad"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.StopTwin(ctx, v.ID)
	_, err = c.MutateTwin(ctx, v.ID, twin.Mutation{Op: "explode"})
	if apiErr, ok := err.(*service.Error); !ok || apiErr.Status != 400 {
		t.Fatalf("bad mutation error = %v, want 400", err)
	}
	_, err = c.Twin(ctx, "t999999")
	if apiErr, ok := err.(*service.Error); !ok || apiErr.Status != 404 {
		t.Fatalf("unknown twin error = %v, want 404", err)
	}
}

// TestTwinTenancy pins the oracle-closing contract: a foreign tenant's
// GET answers byte-identically to a never-issued id's, writes are 403
// only for callers who can already read the twin, and listings are
// tenant-scoped.
func TestTwinTenancy(t *testing.T) {
	_, base := newAuthServer(t)
	ctx := context.Background()
	alice := authClient(base, "tok-alice")
	bob := authClient(base, "tok-bob")
	ops := authClient(base, "tok-ops")

	v, err := alice.StartTwin(ctx, pacedTwinSpec("tenancy"))
	if err != nil {
		t.Fatal(err)
	}
	defer alice.StopTwin(ctx, v.ID)
	if v.Tenant != "alice" {
		t.Fatalf("twin tenant = %q", v.Tenant)
	}

	// Byte-identical 404: bob probing alice's id vs a free id. A fixed
	// X-Request-ID keeps the echoed request_id out of the comparison.
	readBody := func(id string) (int, string) {
		req, _ := http.NewRequest(http.MethodGet, base+"/v1/twin/"+strings.ReplaceAll(id, "{}", ""), nil)
		req.Header.Set("X-Request-ID", "twin-probe")
		req.Header.Set("Authorization", "Bearer tok-bob")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	fs, foreign := readBody(v.ID)
	us, unknown := readBody("t999999")
	if fs != 404 || us != 404 {
		t.Fatalf("statuses = %d, %d, want 404, 404", fs, us)
	}
	foreign = strings.ReplaceAll(foreign, v.ID, "ID")
	unknown = strings.ReplaceAll(unknown, "t999999", "ID")
	if foreign != unknown {
		t.Fatalf("foreign and unknown twin bodies differ:\nforeign: %s\nunknown: %s", foreign, unknown)
	}

	// Foreign mutate and stop answer the same 404 (bob cannot read the
	// twin, so the ownership layer never confirms it exists).
	_, err = bob.MutateTwin(ctx, v.ID, twin.Mutation{Op: twin.OpSetBudget, BudgetFraction: 0.5})
	if apiErr, ok := err.(*service.Error); !ok || apiErr.Status != 404 {
		t.Fatalf("foreign mutate error = %v, want 404", err)
	}
	_, err = bob.StopTwin(ctx, v.ID)
	if apiErr, ok := err.(*service.Error); !ok || apiErr.Status != 404 {
		t.Fatalf("foreign stop error = %v, want 404", err)
	}
	_, err = bob.TwinSeries(ctx, v.ID, "budget", service.SeriesQuery{})
	if apiErr, ok := err.(*service.Error); !ok || apiErr.Status != 404 {
		t.Fatalf("foreign series error = %v, want 404", err)
	}

	// Listings: bob sees nothing, the admin sees alice's twin.
	bobs, err := bob.ListTwins(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(bobs) != 0 {
		t.Fatalf("bob's listing = %+v", bobs)
	}
	all, err := ops.ListTwins(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].Tenant != "alice" {
		t.Fatalf("admin listing = %+v", all)
	}

	// The owner and the admin can read and mutate.
	if _, err := alice.MutateTwin(ctx, v.ID, twin.Mutation{Op: twin.OpSetBudget, BudgetFraction: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := ops.Twin(ctx, v.ID); err != nil {
		t.Fatal(err)
	}
}

// TestTwinDrainOnShutdown pins the drain discipline: live twins are
// cancelled, their goroutines joined, and new twins are refused while
// draining.
func TestTwinDrainOnShutdown(t *testing.T) {
	s := service.New(service.Config{Workers: 1})
	v, err := s.StartTwin(pacedTwinSpec("drain"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	got, err := s.Twin(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != service.StateCancelled {
		t.Fatalf("drained twin state = %s", got.State)
	}
	if _, err := s.StartTwin(fastTwinSpec("late")); err == nil {
		t.Fatal("draining daemon accepted a twin")
	}
}

// TestMetricsEndpoint pins the Prometheus exposition: open behind
// auth, carrying the run and twin gauges.
func TestMetricsEndpoint(t *testing.T) {
	_, base := newAuthServer(t)
	ctx := context.Background()
	alice := authClient(base, "tok-alice")
	v, err := alice.StartTwin(ctx, pacedTwinSpec("metrics"))
	if err != nil {
		t.Fatal(err)
	}
	defer alice.StopTwin(ctx, v.ID)

	resp, err := http.Get(base + "/metrics") // no token on purpose
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("unauthenticated /metrics status = %d, want open 200", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{"simd_runs ", "simd_twins_live 1", "simd_twins_total 1", "# TYPE simd_twins_live gauge"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}
