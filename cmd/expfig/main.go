// Command expfig regenerates the paper's tables and figures.
//
// Usage:
//
//	expfig -fig 2|3|4|5|6|7a|7b|8|claims|ablation|sweep|scenarios|federation|all [-racks 56] [-workers 0]
//
// Figures 2-5 are static tables derived from the hardware model; 6-8,
// the Section VII-C claims, the ablations and the full sweep replay
// whole workloads (use -racks to shrink the machine for quick looks).
// Every multi-scenario artifact runs through the parallel sweep engine
// of internal/experiment: one independent controller per scenario,
// fanned out across -workers goroutines with deterministic results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/figures"
	"repro/internal/replay"
	"repro/internal/trace"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "which artifact: 2|3|4|5|6|7a|7b|8|claims|ablation|sweep|scenarios|federation|all")
		racks   = flag.Int("racks", 56, "machine size in racks for the replayed figures")
		workers = flag.Int("workers", 0, "parallel scenario workers (0 = GOMAXPROCS)")
		width   = flag.Int("width", 96, "chart width")
		height  = flag.Int("height", 14, "chart height")
		csvOut  = flag.String("csv", "", "write the sweep summary table as CSV to this file")
		jsonOut = flag.String("json", "", "write the sweep results as JSON to this file")
	)
	flag.Parse()

	scale := 0
	if *racks != 56 {
		scale = *racks
	}
	want := func(name string) bool { return *fig == "all" || *fig == name }
	printed := false
	show := func(s string) {
		if printed {
			fmt.Println(strings.Repeat("-", 80))
		}
		fmt.Print(s)
		printed = true
	}
	// sweep runs a scenario list through the experiment engine and
	// fails fast on any cell error.
	sweep := func(name string, scens []replay.Scenario) experiment.Table {
		t := experiment.Runner{Workers: *workers}.Run(name, scens)
		if errs := t.Errs(); len(errs) > 0 {
			fail(errs[0])
		}
		return t
	}

	if want("2") {
		show(figures.Fig2())
	}
	if want("3") {
		show(figures.Fig3())
	}
	if want("4") {
		show(figures.Fig4())
	}
	if want("5") {
		show(figures.Fig5())
	}
	if want("6") {
		r := replay.Run(replay.Fig6Scenario(scale))
		if r.Err != nil {
			fail(r.Err)
		}
		show("Figure 6: 24 h workload, MIX policy, 1 h reservation at 40%\n\n" +
			figures.TimeSeries(r, *width, *height))
	}
	if want("7a") {
		r := replay.Run(replay.Fig7aScenario(scale))
		if r.Err != nil {
			fail(r.Err)
		}
		show("Figure 7a: bigjob workload, SHUT policy, 60% cap\n\n" +
			figures.TimeSeries(r, *width, *height))
	}
	if want("7b") {
		r := replay.Run(replay.Fig7bScenario(scale))
		if r.Err != nil {
			fail(r.Err)
		}
		show("Figure 7b: smalljob workload, DVFS policy, 40% cap\n\n" +
			figures.TimeSeries(r, *width, *height))
	}
	var lastSweep *experiment.Table
	var lastFed *experiment.FederationTable
	if want("8") {
		t := sweep("fig8", replay.Fig8Scenarios(scale))
		lastSweep = &t
		rs := t.Results()
		show(figures.Fig8(rs) + "\n" + figures.SummaryTable(rs))
	}
	if want("claims") {
		t := sweep("claims", replay.Claims24hScenarios(scale))
		lastSweep = &t
		show("Section VII-C 24 h claims (SHUT vs DVFS vs MIX vs IDLE at 40%)\n\n" +
			figures.SummaryTable(t.Results()))
	}
	if want("ablation") {
		scens := append(replay.AblationGroupingScenarios(scale), replay.AblationMixFloorScenarios(scale)...)
		scens = append(scens, replay.AblationDynamicDVFSScenarios(scale)...)
		t := sweep("ablation", scens)
		lastSweep = &t
		show("Ablations: grouped vs scattered shutdown; MIX floor vs full-range DVFS;\n" +
			"static vs dynamic DVFS\n\n" + figures.SummaryTable(t.Results()))
	}
	if *fig == "scenarios" {
		// The extended workload library beyond the paper: diurnal,
		// bursty and heavy-tailed patterns next to the four Curie
		// intervals, swept across caps and policies.
		t := sweep("scenarios", replay.LibraryScenarios(scale))
		lastSweep = &t
		show("Scenario library: paper intervals + diurnal/bursty/heavytail\n\n" + t.ASCII(40))
	}
	if *fig == "federation" {
		// The federated multi-cluster comparison: fleet sizes x site
		// budgets x division policies, every cell a lockstep federation
		// of library-workload members under one shared budget.
		grid := experiment.FederationGrid{
			Name:         "federation",
			MemberCounts: []int{2, 3},
			CapFractions: []float64{0.5, 0.6},
			Divisions:    []replay.Division{replay.DivideProRata, replay.DivideDemand},
			ScaleRacks:   scale,
		}
		t := experiment.FederationRunner{Workers: *workers}.Run(grid.Name, grid.Scenarios())
		if errs := t.Errs(); len(errs) > 0 {
			fail(errs[0])
		}
		lastFed = &t
		show("Federated multi-cluster sweep: fleet size x site budget x division policy\n\n" + t.ASCII(*width))
	}
	if *fig == "sweep" {
		// The full evaluation grid in one command: every workload
		// interval x every cap level x every applicable policy.
		grid := experiment.Grid{
			Name: "full-sweep",
			Workloads: []trace.Config{
				{Kind: trace.BigJob, Seed: 1003},
				{Kind: trace.MedianJob, Seed: 1001},
				{Kind: trace.SmallJob, Seed: 1002},
				{Kind: trace.Day24h, Seed: 1004},
			},
			CapFractions: []float64{0, 0.8, 0.6, 0.4},
			Policies:     []core.Policy{core.PolicyShut, core.PolicyDvfs, core.PolicyMix},
			Base:         replay.Scenario{ScaleRacks: scale},
		}
		t := sweep(grid.Name, grid.Scenarios())
		lastSweep = &t
		show(t.ASCII(40))
	}
	if !printed {
		fail(fmt.Errorf("unknown figure %q", *fig))
	}
	if *csvOut != "" || *jsonOut != "" {
		// With -fig all, several sweeps run; the export covers the last
		// one, so name it.
		name, csvFn, jsonFn := "", (func(io.Writer) error)(nil), (func(io.Writer) error)(nil)
		switch {
		case lastFed != nil:
			name, csvFn, jsonFn = lastFed.Name, lastFed.WriteCSV, lastFed.WriteJSON
		case lastSweep != nil:
			name, csvFn, jsonFn = lastSweep.Name, lastSweep.WriteCSV, lastSweep.WriteJSON
		default:
			fail(fmt.Errorf("-csv/-json export sweep results, but -fig %s ran no sweep (use 8, claims, ablation, sweep or federation)", *fig))
		}
		if *csvOut != "" {
			if err := writeFile(*csvOut, csvFn); err != nil {
				fail(err)
			}
			fmt.Printf("sweep summary CSV (%s) written to %s\n", name, *csvOut)
		}
		if *jsonOut != "" {
			if err := writeFile(*jsonOut, jsonFn); err != nil {
				fail(err)
			}
			fmt.Printf("sweep JSON (%s) written to %s\n", name, *jsonOut)
		}
	}
}

func writeFile(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
