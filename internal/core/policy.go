package core

import (
	"fmt"

	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/registry"
)

// Policy is the powercap scheduling mode (the SchedulerParameters option
// of Section V).
type Policy int

const (
	// PolicyNone disables powercap handling entirely (the 100%/None
	// baseline of Figure 8).
	PolicyNone Policy = iota
	// PolicyShut may switch nodes off (grouped, planned offline) and
	// keeps jobs at nominal frequency.
	PolicyShut
	// PolicyDvfs never switches nodes off; it lowers job CPU
	// frequencies down to the ladder minimum (1.2 GHz on Curie).
	PolicyDvfs
	// PolicyMix combines both, with the DVFS floor lifted to 2.0 GHz
	// because the energy/performance trade-off is non-monotonic
	// (Section VI-B).
	PolicyMix
	// PolicyIdle can neither switch off nor slow down: nodes are left
	// idle and jobs wait. The paper measures it about 40% worse in
	// work than the real policies.
	PolicyIdle
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "NONE"
	case PolicyShut:
		return "SHUT"
	case PolicyDvfs:
		return "DVFS"
	case PolicyMix:
		return "MIX"
	case PolicyIdle:
		return "IDLE"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies is the powercap-policy registry. The five paper policies
// self-register below; ParsePolicy, flag help and the sim facade all
// read this, so an added policy shows up everywhere at once.
var Policies = registry.New[Policy]("policy")

func init() {
	Policies.Register("NONE", PolicyNone, "no powercap handling (the 100% baseline)", "off")
	Policies.Register("SHUT", PolicyShut, "switch nodes off, jobs stay at nominal frequency", "shutdown")
	Policies.Register("DVFS", PolicyDvfs, "slow jobs down to the ladder minimum, no switch-off")
	Policies.Register("MIX", PolicyMix, "switch-off plus DVFS with the 2.0 GHz floor", "mixed")
	Policies.Register("IDLE", PolicyIdle, "neither mechanism: leave nodes idle, jobs wait")
}

// ParsePolicy parses the policy names used on command lines — a
// registry lookup, so unknown-name errors enumerate what is registered.
func ParsePolicy(s string) (Policy, error) {
	p, err := Policies.Lookup(s)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	return p, nil
}

// CanShutdown reports whether the policy may power nodes off.
func (p Policy) CanShutdown() bool { return p == PolicyShut || p == PolicyMix }

// CanScale reports whether the policy may lower job frequencies.
func (p Policy) CanScale() bool { return p == PolicyDvfs || p == PolicyMix }

// DefaultMixFloor is the lowest frequency the MIX policy uses
// (Section VI-B: "the minimum DVFS frequency is 2.0 GHz instead of
// 1.2 GHz").
const DefaultMixFloor = dvfs.F2000

// PolicyModel binds a policy to the frequency ladder it may choose from
// and the walltime degradation model used to stretch runtimes and
// walltimes of down-clocked jobs.
type PolicyModel struct {
	Policy Policy
	Ladder dvfs.Ladder       // frequencies the online algorithm probes, ascending
	Deg    *dvfs.Degradation // degradation across the policy's ladder
}

// NewPolicyModel derives the ladder and degradation from the node power
// profile: the full profile ladder with degMinFull (1.63 on Curie) for
// DVFS, the ladder restricted to >= mixFloor with degMinMix (1.29) for
// MIX, and the nominal frequency only for the other policies. mixFloor 0
// means DefaultMixFloor.
func NewPolicyModel(p Policy, prof *power.Profile, degMinFull, degMinMix float64, mixFloor dvfs.Freq) (PolicyModel, error) {
	if prof == nil {
		return PolicyModel{}, fmt.Errorf("core: nil power profile")
	}
	if mixFloor == 0 {
		mixFloor = DefaultMixFloor
	}
	full := prof.Ladder()
	var ladder dvfs.Ladder
	var degMin float64
	switch p {
	case PolicyDvfs:
		ladder, degMin = full, degMinFull
	case PolicyMix:
		for _, f := range full {
			if f >= mixFloor {
				ladder = append(ladder, f)
			}
		}
		degMin = degMinMix
	case PolicyNone, PolicyShut, PolicyIdle:
		ladder, degMin = dvfs.Ladder{full.Max()}, 1
	default:
		return PolicyModel{}, fmt.Errorf("core: unknown policy %v", p)
	}
	if len(ladder) == 0 {
		return PolicyModel{}, fmt.Errorf("core: MIX floor %v excludes every profile frequency", mixFloor)
	}
	deg, err := dvfs.NewDegradation(ladder, degMin)
	if err != nil {
		return PolicyModel{}, err
	}
	return PolicyModel{Policy: p, Ladder: ladder, Deg: deg}, nil
}

// CuriePolicyModel builds the model with the paper's Curie constants.
func CuriePolicyModel(p Policy) PolicyModel {
	pm, err := NewPolicyModel(p, power.CurieProfile(), dvfs.DegMinCommon, dvfs.DegMinMix, DefaultMixFloor)
	if err != nil {
		panic(err) // constants are known-valid
	}
	return pm
}
