// Package service is the simulation-as-a-service core behind cmd/simd:
// a long-running daemon that accepts declarative sim.RunSpec
// submissions over HTTP, executes them on one shared bounded worker
// scheduler, content-addresses results by canonical spec hash so
// identical specs under load collapse into a single execution, and
// streams per-run telemetry into the internal/tsdb time-series store.
//
// The execution pipeline is the sim facade end to end: a submission is
// validated and normalized exactly like a -spec file, runs through
// sim.RunObserved with a per-run cancellable context, and its Report is
// served back through the same sink pipeline the CLIs print with — the
// service adds queueing, dedup, telemetry and lifecycle, never a second
// result format.
//
// Layering (see ARCHITECTURE.md "Service layer"):
//
//	cmd/simd                     HTTP + signals
//	        v
//	internal/service             queue, spec-hash cache, events, drain
//	        |            sim.RunObserved(ctx, spec, progress, observe)
//	        v
//	internal/sim -> experiment/replay/federation -> rjms
//	        |
//	        +-- rjms.AddObserver samples -> internal/tsdb rings
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/rjms"
	"repro/internal/sim"
	"repro/internal/tsdb"
)

// Config bounds a server. The zero value picks the defaults.
type Config struct {
	// Workers is the number of runs executing concurrently (the shared
	// scheduler's pool size; default 2). Each run's internal sweep pool
	// is bounded separately by SweepWorkers.
	Workers int
	// QueueDepth bounds the submissions waiting for a worker (default
	// 256); a full queue rejects submissions instead of buffering
	// without bound.
	QueueDepth int
	// SweepWorkers clamps every run's sweep pool (spec.Workers); 0
	// leaves specs as submitted. With W service workers and S sweep
	// workers the daemon runs at most W*S controllers at once.
	SweepWorkers int
	// TSDB bounds the telemetry store (per-series ring sizes).
	TSDB tsdb.Options
	// MaxRuns caps the retained run records; when exceeded, the oldest
	// terminal runs (and their telemetry) are evicted (default 1024).
	MaxRuns int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 1024
	}
	return c
}

// State is a run's lifecycle position.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one entry of a run's progress log, streamed over SSE and
// replayed to late subscribers in order. Seq increases by one per
// event.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // queued|started|cell|done|failed|cancelled
	// Cell/Done/Total/ElapsedMS describe finished sweep cells (type
	// "cell").
	Cell      string  `json:"cell,omitempty"`
	Done      int     `json:"done,omitempty"`
	Total     int     `json:"total,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// run is the server-side record of one submitted spec.
type run struct {
	id   string
	hash string
	spec sim.RunSpec // normalized, sweep pool clamped
	seq  int         // submission order

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond // signals event appends and state changes
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	hits      int // deduped identical submissions after the first
	done      int // finished sweep cells
	total     int
	report    *sim.Report
	// reportJSON caches the json-sink encoding of report, built on the
	// first view that asks for it — a poll loop on a finished sweep
	// must not re-serialize hundreds of cells per request.
	reportJSON []byte
	errMsg     string
	events     []Event
}

func (r *run) appendEventLocked(typ string, e Event) {
	e.Seq = len(r.events)
	e.Type = typ
	r.events = append(r.events, e)
	r.cond.Broadcast()
}

// Stats are the server-wide counters the cache-hit story is measured
// by.
type Stats struct {
	Runs       int  `json:"runs"`
	Queued     int  `json:"queued"`
	Running    int  `json:"running"`
	Executions int  `json:"executions"`
	CacheHits  int  `json:"cache_hits"`
	Workers    int  `json:"workers"`
	QueueDepth int  `json:"queue_depth"`
	Draining   bool `json:"draining"`
}

// Server is the daemon core: the run registry, the spec-hash result
// cache, the FIFO worker scheduler and the telemetry store. Construct
// with New; serve its HTTP API via Handler; stop with Shutdown.
type Server struct {
	cfg  Config
	tsdb *tsdb.Store

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu         sync.Mutex
	runs       map[string]*run
	order      []*run          // submission order (eviction + listing)
	byHash     map[string]*run // the result cache index
	queue      chan *run
	draining   bool
	nextSeq    int
	executions int
	cacheHits  int

	wg sync.WaitGroup
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		tsdb:       tsdb.New(cfg.TSDB),
		baseCtx:    ctx,
		baseCancel: cancel,
		runs:       map[string]*run{},
		byHash:     map[string]*run{},
		queue:      make(chan *run, cfg.QueueDepth),
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for r := range s.queue {
				s.execute(r)
			}
		}()
	}
	return s
}

// TSDB exposes the telemetry store (the metrics endpoint reads it).
func (s *Server) TSDB() *tsdb.Store { return s.tsdb }

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Runs:       len(s.runs),
		Executions: s.executions,
		CacheHits:  s.cacheHits,
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,
		Draining:   s.draining,
	}
	for _, r := range s.runs {
		switch r.snapshot().State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		}
	}
	return st
}

// Submit validates, normalizes and content-addresses a spec. An
// identical spec already queued, running or done dedupes into that run
// — the submitter becomes one more waiter on the shared execution — and
// reports cacheHit true. Failed and cancelled runs never serve as cache
// entries: resubmitting their spec starts a fresh execution.
func (s *Server) Submit(spec sim.RunSpec) (RunView, bool, error) {
	if err := spec.Validate(); err != nil {
		return RunView{}, false, &Error{Status: 400, Msg: err.Error()}
	}
	norm := spec.Normalize()
	if s.cfg.SweepWorkers > 0 && (norm.Workers == 0 || norm.Workers > s.cfg.SweepWorkers) {
		norm.Workers = s.cfg.SweepWorkers
	}
	hash, err := sim.SpecHash(norm)
	if err != nil {
		return RunView{}, false, &Error{Status: 400, Msg: err.Error()}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return RunView{}, false, &Error{Status: 503, Msg: "service: draining, not accepting submissions"}
	}
	if prev := s.byHash[hash]; prev != nil {
		prev.mu.Lock()
		st := prev.state
		if st != StateFailed && st != StateCancelled {
			prev.hits++
			s.cacheHits++
			s.touchLocked(prev)
			v := prev.viewLocked(false, false)
			prev.mu.Unlock()
			return v, true, nil
		}
		prev.mu.Unlock()
	}

	ctx, cancel := context.WithCancel(s.baseCtx)
	r := &run{
		id:        fmt.Sprintf("r%06d", s.nextSeq+1),
		hash:      hash,
		spec:      norm,
		seq:       s.nextSeq,
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		submitted: time.Now(),
	}
	s.nextSeq++
	r.cond = sync.NewCond(&r.mu)
	// The queued event lands before the run is visible to any worker,
	// so the event log always starts queued -> started.
	r.mu.Lock()
	r.appendEventLocked("queued", Event{})
	v := r.viewLocked(false, false)
	r.mu.Unlock()
	select {
	case s.queue <- r:
	default:
		cancel()
		return RunView{}, false, &Error{Status: 503, Msg: fmt.Sprintf("service: queue full (%d pending)", s.cfg.QueueDepth)}
	}
	s.runs[r.id] = r
	s.order = append(s.order, r)
	s.byHash[hash] = r
	s.evictLocked()
	return v, false, nil
}

// touchLocked moves a run to the young end of the eviction order — a
// cache hit is a use, so hot dedupe targets outlive cold ones and a run
// just returned to a submitter cannot be the next eviction victim.
// Called with s.mu held.
func (s *Server) touchLocked(r *run) {
	for i, cur := range s.order {
		if cur == r {
			s.order = append(append(s.order[:i], s.order[i+1:]...), r)
			return
		}
	}
}

// evictLocked drops the oldest terminal runs beyond the retention cap,
// along with their telemetry and cache entries. Live runs are never
// evicted; the cap therefore bounds memory only once runs settle, which
// is the steady state that matters.
func (s *Server) evictLocked() {
	excess := len(s.runs) - s.cfg.MaxRuns
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, r := range s.order {
		if excess > 0 && r.snapshot().State.Terminal() {
			excess--
			delete(s.runs, r.id)
			if s.byHash[r.hash] == r {
				delete(s.byHash, r.hash)
			}
			s.tsdb.Drop(r.id)
			continue
		}
		kept = append(kept, r)
	}
	s.order = kept
}

// Get returns one run's view (withReport controls the heavy payload).
func (s *Server) Get(id string, withReport bool) (RunView, error) {
	s.mu.Lock()
	r := s.runs[id]
	s.mu.Unlock()
	if r == nil {
		return RunView{}, &Error{Status: 404, Msg: fmt.Sprintf("service: unknown run %q", id)}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.viewLocked(withReport, true), nil
}

// Report hands the run's sim.Report to fn while the run is terminal —
// the sink-pipeline bridge of the report endpoint.
func (s *Server) Report(id string, fn func(rep sim.Report) error) error {
	s.mu.Lock()
	r := s.runs[id]
	s.mu.Unlock()
	if r == nil {
		return &Error{Status: 404, Msg: fmt.Sprintf("service: unknown run %q", id)}
	}
	r.mu.Lock()
	state, rep := r.state, r.report
	r.mu.Unlock()
	if !state.Terminal() {
		return &Error{Status: 409, Msg: fmt.Sprintf("service: run %s is %s; report not ready", id, state)}
	}
	if rep == nil {
		return &Error{Status: 409, Msg: fmt.Sprintf("service: run %s (%s) produced no report: %s", id, state, r.errMsg)}
	}
	return fn(*rep)
}

// List returns the run views in submission order, filtered by state
// and/or spec hash when non-empty (the /v1/runs listing; no report or
// spec payloads — fetch a single run for those).
func (s *Server) List(state, hash string) []RunView {
	s.mu.Lock()
	order := append([]*run(nil), s.order...)
	s.mu.Unlock()
	// s.order is eviction (recency-of-use) order; the listing promises
	// submission order, which the immutable seq preserves.
	sort.Slice(order, func(i, j int) bool { return order[i].seq < order[j].seq })
	out := make([]RunView, 0, len(order))
	for _, r := range order {
		r.mu.Lock()
		v := r.viewLocked(false, false)
		r.mu.Unlock()
		if state != "" && string(v.State) != state {
			continue
		}
		if hash != "" && !strings.HasPrefix(v.SpecHash, hash) {
			continue
		}
		out = append(out, v)
	}
	return out
}

// Cancel cancels a run: a queued run transitions immediately, a running
// one has its context cancelled and transitions when the engine unwinds
// (bounded-step checks keep that prompt). Cancelling a terminal run is
// a no-op; the returned view reports the state reached.
func (s *Server) Cancel(id string) (RunView, error) {
	s.mu.Lock()
	r := s.runs[id]
	s.mu.Unlock()
	if r == nil {
		return RunView{}, &Error{Status: 404, Msg: fmt.Sprintf("service: unknown run %q", id)}
	}
	r.cancel()
	r.mu.Lock()
	if r.state == StateQueued {
		r.state = StateCancelled
		r.finished = time.Now()
		r.errMsg = context.Canceled.Error()
		r.appendEventLocked("cancelled", Event{Error: r.errMsg})
	}
	v := r.viewLocked(false, false)
	r.mu.Unlock()
	return v, nil
}

// Follow replays a run's event log from the start and then follows live
// appends, invoking fn per event in order, until the run is terminal
// and fully delivered, fn errors, or ctx ends — the SSE loop.
func (s *Server) Follow(ctx context.Context, id string, fn func(Event) error) error {
	s.mu.Lock()
	r := s.runs[id]
	s.mu.Unlock()
	if r == nil {
		return &Error{Status: 404, Msg: fmt.Sprintf("service: unknown run %q", id)}
	}
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()

	idx := 0
	r.mu.Lock()
	for {
		for idx < len(r.events) {
			e := r.events[idx]
			idx++
			r.mu.Unlock()
			if err := fn(e); err != nil {
				return err
			}
			r.mu.Lock()
		}
		if r.state.Terminal() {
			r.mu.Unlock()
			return nil
		}
		if err := ctx.Err(); err != nil {
			r.mu.Unlock()
			return err
		}
		r.cond.Wait()
	}
}

// execute runs one queued submission on the calling worker.
func (s *Server) execute(r *run) {
	// The run's cancel context is a child of baseCtx and stays
	// registered there until cancelled — release it once execution is
	// over, or a long-lived daemon leaks one context per finished run.
	defer r.cancel()
	r.mu.Lock()
	if r.state != StateQueued {
		r.mu.Unlock()
		return // cancelled while queued
	}
	r.state = StateRunning
	r.started = time.Now()
	r.appendEventLocked("started", Event{})
	r.mu.Unlock()

	s.mu.Lock()
	s.executions++
	s.mu.Unlock()

	rep, err := sim.RunObserved(r.ctx, r.spec, s.progressFn(r), s.observeFn(r))

	r.mu.Lock()
	r.finished = time.Now()
	if rep.Single != nil || rep.Table != nil || rep.FederationTable != nil {
		r.report = &rep
	}
	ctxErr := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	// A cancellation that raced in after every cell completed leaves a
	// ctx error but an error-free report — the work is all there, so
	// classify by the result, not the race: only an *incomplete* run is
	// cancelled (the sweep pools stamp ctx.Err() into unrun cells, so
	// completeness is exactly "payload present, no cell errors").
	complete := r.report != nil && len(rep.Errs()) == 0
	switch {
	case ctxErr && !complete:
		r.state = StateCancelled
		r.errMsg = err.Error()
		r.appendEventLocked("cancelled", Event{Error: r.errMsg})
	case err != nil && !ctxErr:
		r.state = StateFailed
		r.errMsg = err.Error()
		r.appendEventLocked("failed", Event{Error: r.errMsg})
	default:
		r.state = StateDone
		if errs := rep.Errs(); len(errs) > 0 {
			// Cell-level failures keep the run inspectable but mark it
			// failed: a cached result must never silently hide errors.
			r.state = StateFailed
			r.errMsg = errs[0].Error()
			r.appendEventLocked("failed", Event{Error: r.errMsg})
		} else {
			r.appendEventLocked("done", Event{Done: r.done, Total: r.total})
		}
	}
	r.mu.Unlock()
}

// progressFn adapts finished-cell callbacks into run events.
func (s *Server) progressFn(r *run) sim.Progress {
	return func(done, total int, cell string, elapsed time.Duration, err error) {
		e := Event{Cell: cell, Done: done, Total: total, ElapsedMS: float64(elapsed.Microseconds()) / 1000}
		if err != nil {
			e.Error = err.Error()
		}
		r.mu.Lock()
		r.done, r.total = done, total
		r.appendEventLocked("cell", e)
		r.mu.Unlock()
	}
}

// observeFn attaches the telemetry collector: every controller the run
// builds streams power draw, active cap, pending cores and running jobs
// into the run's tsdb series at each metrics sample. Single runs use
// the bare series names; sweep cells and federation members prefix
// theirs with the cell label ("smalljob/60%/SHUT/power"). Nothing stops
// a cell-list spec from naming two cells identically, and two
// controllers interleaving appends into one series would corrupt it —
// colliding labels get a "#2"-style disambiguator instead (assignment
// order follows pool scheduling, so the suffixes are stable only for
// deterministic label sets; deduped telemetry beats dropped telemetry).
func (s *Server) observeFn(r *run) sim.Observer {
	rs := s.tsdb.Run(r.id)
	single := r.spec.Mode == sim.ModeSingle
	var (
		mu   sync.Mutex
		seen = map[string]int{}
	)
	return func(cell string, ctl *rjms.Controller) {
		prefix := ""
		if !single {
			mu.Lock()
			seen[cell]++
			if n := seen[cell]; n > 1 {
				cell = fmt.Sprintf("%s#%d", cell, n)
			}
			mu.Unlock()
			prefix = cell + "/"
		}
		power, cap := prefix+"power", prefix+"cap"
		pending, running := prefix+"pending_cores", prefix+"running_jobs"
		ctl.AddObserver(func(now int64) {
			// Append errors (series caps, never out-of-order — the
			// virtual clock is monotone) drop the sample, not the run.
			_ = rs.Append(power, now, float64(ctl.Cluster().Power()))
			w := 0.0
			if c := ctl.ActiveCap(); c.IsSet() {
				w = float64(c.Watts())
			}
			_ = rs.Append(cap, now, w)
			_ = rs.Append(pending, now, float64(ctl.PendingCores()))
			_ = rs.Append(running, now, float64(ctl.RunningCount()))
		})
	}
}

// Shutdown drains the server: submissions are refused, queued runs are
// cancelled (they never started; re-submitting later re-executes), and
// the workers finish their in-flight runs. If ctx ends first, the
// in-flight runs are hard-cancelled through their contexts and Shutdown
// still waits for the pool to unwind (no goroutine outlives it) before
// returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	queued := make([]*run, 0)
	for _, r := range s.runs {
		if r.snapshot().State == StateQueued {
			queued = append(queued, r)
		}
	}
	close(s.queue)
	s.mu.Unlock()

	sort.Slice(queued, func(i, j int) bool { return queued[i].seq < queued[j].seq })
	for _, r := range queued {
		r.cancel()
		r.mu.Lock()
		if r.state == StateQueued {
			r.state = StateCancelled
			r.finished = time.Now()
			r.errMsg = "service: shut down before the run started"
			r.appendEventLocked("cancelled", Event{Error: r.errMsg})
		}
		r.mu.Unlock()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// snapshot reads the run's mutable fields under its lock.
func (r *run) snapshot() RunView {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.viewLocked(false, false)
}

// Error is an API error with its HTTP status.
type Error struct {
	Status int
	Msg    string
}

func (e *Error) Error() string { return e.Msg }
