package sim

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// sweepReport runs a tiny sweep once for the sink tests.
func sweepReport(t *testing.T) Report {
	t.Helper()
	rep, err := Run(context.Background(), RunSpec{
		Workload:     WorkloadSpec{Kind: "medianjob", Seed: 1001},
		Racks:        2,
		Policies:     []string{"SHUT", "DVFS"},
		CapFractions: []float64{0.6},
		Workers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if errs := rep.Errs(); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	return rep
}

func TestSinksEncodeSweep(t *testing.T) {
	rep := sweepReport(t)

	var jsonBuf bytes.Buffer
	if err := Export(&jsonBuf, "json", rep, SinkOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonBuf.String(), `"rows"`) {
		t.Error("json sink did not write the table envelope")
	}
	// The sink must write exactly the historical table export.
	var direct bytes.Buffer
	if err := rep.Table.WriteJSON(&direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonBuf.Bytes(), direct.Bytes()) {
		t.Error("json sink drifted from Table.WriteJSON")
	}

	var csvBuf bytes.Buffer
	if err := Export(&csvBuf, "csv", rep, SinkOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvBuf.String(), "index,name,workload,policy") {
		t.Errorf("csv sink header wrong: %q", strings.SplitN(csvBuf.String(), "\n", 2)[0])
	}

	var asciiBuf bytes.Buffer
	if err := Export(&asciiBuf, "ascii", rep, SinkOptions{Width: 40}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asciiBuf.String(), "medianjob/60%/SHUT") {
		t.Error("ascii sink did not render the comparison table")
	}
}

func TestSinksEncodeSingle(t *testing.T) {
	rep, err := Run(context.Background(), RunSpec{
		Workload: WorkloadSpec{Kind: "smalljob", Seed: 1002},
		Racks:    2, Policies: []string{"SHUT"}, CapFractions: []float64{0.6},
	})
	if err != nil {
		t.Fatal(err)
	}

	var csvBuf bytes.Buffer
	if err := Export(&csvBuf, "csv", rep, SinkOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvBuf.String(), "t_sec,power_w,cap_w") {
		t.Errorf("single-run csv is not the time series: %q", strings.SplitN(csvBuf.String(), "\n", 2)[0])
	}
	var asciiBuf bytes.Buffer
	if err := Export(&asciiBuf, "ascii", rep, SinkOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asciiBuf.String(), "cores by CPU frequency") {
		t.Error("single-run ascii sink did not render the time-series chart")
	}
}

func TestExportUnknownFormatEnumeratesSinks(t *testing.T) {
	rep := Report{}
	err := Export(&bytes.Buffer{}, "parquet", rep, SinkOptions{})
	if err == nil || !strings.Contains(err.Error(), "json|csv|ascii") {
		t.Errorf("unknown-sink error %v does not enumerate formats", err)
	}
}

func TestEmptyReportErrors(t *testing.T) {
	for _, format := range Sinks.Names() {
		if err := Export(&bytes.Buffer{}, format, Report{}, SinkOptions{}); err == nil {
			t.Errorf("%s sink encoded an empty report silently", format)
		}
	}
	if _, err := (Report{}).Fingerprint(); err == nil {
		t.Error("empty report fingerprinted silently")
	}
}
