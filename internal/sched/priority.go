// Package sched provides the generic scheduling building blocks of the
// RJMS the powercapping algorithm plugs into (Section IV-A): job
// prioritization (FCFS and a SLURM-style multifactor blend of age, size
// and fairshare), core-level node allocation that prefers filling
// partially used nodes, and the shadow-time computation of EASY
// backfilling.
//
// The package holds no state of its own — everything operates on the
// caller's cluster and job slices — so it is safe for the parallel
// sweeps of internal/experiment, where each worker drives its own
// controller. The scratch-reusing variants (Orderer, AllocateInto,
// ShadowTimeSorted) exist for the controller's hot scheduling pass:
// they let one event loop reuse its buffers instead of allocating per
// probe.
package sched

import (
	"math"
	"sort"

	"repro/internal/job"
)

// PriorityPolicy orders the pending queue.
type PriorityPolicy int

const (
	// FCFS orders strictly by submission time (ties by job ID).
	FCFS PriorityPolicy = iota
	// Multifactor blends job age, job size and user fairshare the way
	// SLURM's priority/multifactor plugin does.
	Multifactor
)

// MultifactorWeights tunes the Multifactor policy. The priority of a job
// is AgeWeight*normalizedAge + SizeWeight*normalizedSize +
// FairshareWeight*(1-normalizedUsage(user)).
type MultifactorWeights struct {
	AgeWeight       float64
	SizeWeight      float64
	FairshareWeight float64
	// AgeSaturation is the queue age (seconds) at which the age factor
	// reaches 1.
	AgeSaturation int64
	// MaxCores normalizes the size factor.
	MaxCores int
}

// DefaultMultifactor mirrors a common production configuration: fairshare
// dominates, age breaks starvation, size mildly favors big jobs (as Curie
// did).
func DefaultMultifactor(maxCores int) MultifactorWeights {
	return MultifactorWeights{
		AgeWeight:       1000,
		SizeWeight:      500,
		FairshareWeight: 2000,
		AgeSaturation:   7 * 24 * 3600,
		MaxCores:        maxCores,
	}
}

// Fairshare tracks decayed per-user usage in core-seconds. The zero value
// is ready to use with no decay; use NewFairshare for a half-life.
type Fairshare struct {
	halfLife float64 // seconds; 0 = no decay
	usage    map[string]float64
	lastAt   map[string]int64
	total    float64
}

// NewFairshare returns a tracker whose usage halves every halfLife
// seconds (0 disables decay).
func NewFairshare(halfLife int64) *Fairshare {
	return &Fairshare{
		halfLife: float64(halfLife),
		usage:    map[string]float64{},
		lastAt:   map[string]int64{},
	}
}

func (f *Fairshare) ensure() {
	if f.usage == nil {
		f.usage = map[string]float64{}
		f.lastAt = map[string]int64{}
	}
}

func (f *Fairshare) decayed(user string, now int64) float64 {
	u := f.usage[user]
	if f.halfLife > 0 {
		dt := float64(now - f.lastAt[user])
		if dt > 0 {
			u *= math.Exp2(-dt / f.halfLife)
		}
	}
	return u
}

// Charge adds coreSeconds of usage for user at time now.
func (f *Fairshare) Charge(user string, coreSeconds float64, now int64) {
	f.ensure()
	u := f.decayed(user, now) + coreSeconds
	f.usage[user] = u
	f.lastAt[user] = now
}

// Usage returns the decayed usage of user at time now.
func (f *Fairshare) Usage(user string, now int64) float64 {
	f.ensure()
	return f.decayed(user, now)
}

// MaxUsage returns the highest decayed usage across users (>= 1 to avoid
// division by zero).
func (f *Fairshare) MaxUsage(now int64) float64 {
	f.ensure()
	max := 1.0
	for user := range f.usage {
		if u := f.decayed(user, now); u > max {
			max = u
		}
	}
	return max
}

// Order sorts pending jobs by descending priority under the given policy.
// The input slice is not modified; a newly ordered slice is returned.
// Sorting is deterministic: ties break by submit time then job ID.
func Order(pending []*job.Job, policy PriorityPolicy, w MultifactorWeights, fs *Fairshare, now int64) []*job.Job {
	var o Orderer
	return o.Order(pending, policy, w, fs, now)
}

// Orderer is Order with reusable scratch buffers: a scheduling loop
// that orders its queue at every event holds one Orderer and allocates
// nothing per pass (neither the ordered slice nor the priority keys).
// The zero value is ready to use.
type Orderer struct {
	jobs []*job.Job
	keys []float64
}

// Order returns pending sorted by descending priority. The returned
// slice is the Orderer's internal buffer — valid until the next call.
// pending itself is never modified.
func (o *Orderer) Order(pending []*job.Job, policy PriorityPolicy, w MultifactorWeights, fs *Fairshare, now int64) []*job.Job {
	out := append(o.jobs[:0], pending...)
	o.jobs = out[:0]
	if policy == FCFS {
		fcfsLess := func(i, j int) bool {
			if out[i].Submit != out[j].Submit {
				return out[i].Submit < out[j].Submit
			}
			return out[i].ID < out[j].ID
		}
		// The pending queue is usually already in submission order
		// (jobs arrive through time-ordered submit events); skip the
		// sort entirely then.
		if !sort.SliceIsSorted(out, fcfsLess) {
			sort.SliceStable(out, fcfsLess)
		}
		return out
	}
	maxUse := 1.0
	if fs != nil {
		maxUse = fs.MaxUsage(now)
	}
	// Compute each job's priority once up front: the comparator runs
	// O(n log n) times and the fairshare lookup behind prio is the
	// expensive part of a pass over a deep queue.
	prio := func(j *job.Job) float64 {
		p := 0.0
		if w.AgeSaturation > 0 {
			age := float64(now-j.Submit) / float64(w.AgeSaturation)
			if age > 1 {
				age = 1
			}
			if age < 0 {
				age = 0
			}
			p += w.AgeWeight * age
		}
		if w.MaxCores > 0 {
			p += w.SizeWeight * float64(j.Cores) / float64(w.MaxCores)
		}
		if fs != nil {
			p += w.FairshareWeight * (1 - fs.Usage(j.User, now)/maxUse)
		}
		return p
	}
	if cap(o.keys) < len(out) {
		o.keys = make([]float64, len(out))
	}
	keys := o.keys[:len(out)]
	for i, j := range out {
		keys[i] = prio(j)
	}
	sort.Stable(keyedJobs{jobs: out, keys: keys})
	return out
}

// keyedJobs sorts a job slice by precomputed descending priority keys,
// swapping jobs and keys in lockstep; ties break by submit time then ID.
type keyedJobs struct {
	jobs []*job.Job
	keys []float64
}

func (k keyedJobs) Len() int { return len(k.jobs) }
func (k keyedJobs) Swap(i, j int) {
	k.jobs[i], k.jobs[j] = k.jobs[j], k.jobs[i]
	k.keys[i], k.keys[j] = k.keys[j], k.keys[i]
}
func (k keyedJobs) Less(i, j int) bool {
	if k.keys[i] != k.keys[j] {
		return k.keys[i] > k.keys[j]
	}
	if k.jobs[i].Submit != k.jobs[j].Submit {
		return k.jobs[i].Submit < k.jobs[j].Submit
	}
	return k.jobs[i].ID < k.jobs[j].ID
}
