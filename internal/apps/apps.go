// Package apps encodes the application power/performance profiles the
// paper measured on Curie hardware (Section VI-B): the power versus
// normalized-execution-time trade-off curves of Figure 3 for Linpack,
// STREAM, IMB and GROMACS across the eight CPU frequencies, and the
// degradation/rho table of Figure 5 that decides the best power-reduction
// mechanism per application class.
package apps

import (
	"fmt"
	"sort"

	"repro/internal/dvfs"
	"repro/internal/power"
)

// Profile describes one application's response to frequency scaling.
type Profile struct {
	// Name as printed in the paper's tables.
	Name string
	// DegMin is the completion-time degradation at 1.2 GHz relative to
	// 2.7 GHz (Figure 5).
	DegMin float64
	// PowerAlpha positions the application's node power draw between
	// the idle floor and the all-out table maximum at each frequency:
	// draw(f) = idle + alpha*(table(f)-idle). Linpack, which stresses
	// every resource, has alpha 1; memory- and network-bound codes sit
	// lower (Figure 3 shows their curves below Linpack's).
	PowerAlpha float64
	// Source marks rows quoted from related work rather than measured
	// (SPEC and NAS come from Freeh et al., the common value from
	// Etinski et al.).
	Source string
}

// Measured returns the four applications run on Curie for Figure 3.
func Measured() []Profile {
	return []Profile{
		{Name: "linpack", DegMin: 2.14, PowerAlpha: 1.00},
		{Name: "IMB", DegMin: 2.13, PowerAlpha: 0.62},
		{Name: "STREAM", DegMin: 1.26, PowerAlpha: 0.80},
		{Name: "GROMACS", DegMin: 1.16, PowerAlpha: 0.72},
	}
}

// Figure5Rows returns every row of the Figure 5 table, in the paper's
// order: the break-even entry, the measured applications and the quoted
// literature values.
func Figure5Rows() []Profile {
	return []Profile{
		{Name: "NA", DegMin: 2.27},
		{Name: "linpack", DegMin: 2.14, PowerAlpha: 1.00},
		{Name: "IMB", DegMin: 2.13, PowerAlpha: 0.62},
		{Name: "SPEC Float", DegMin: 1.89, Source: "Freeh et al. [9]"},
		{Name: "SPEC Integer", DegMin: 1.74, Source: "Freeh et al. [9]"},
		{Name: "Common value", DegMin: 1.63, Source: "Etinski et al. [20]"},
		{Name: "NAS suite", DegMin: 1.5, Source: "Freeh et al. [9]"},
		{Name: "STREAM", DegMin: 1.26, PowerAlpha: 0.80},
		{Name: "GROMACS", DegMin: 1.16, PowerAlpha: 0.72},
	}
}

// Rho evaluates the published Figure 5 criterion for the application on
// the given node profile at its minimum frequency.
func (p Profile) Rho(prof *power.Profile) float64 {
	return prof.Rho(p.DegMin, prof.MinFreq())
}

// BestMechanism applies the paper's rule (rho <= 0 selects switch-off).
func (p Profile) BestMechanism(prof *power.Profile) dvfs.Mechanism {
	if rho := p.Rho(prof); rho > 0 {
		return dvfs.MechanismDVFS
	}
	return dvfs.MechanismShutdown
}

// MaxPowerAt returns the application's maximum per-node draw at
// frequency f on the given node profile (the y axis of Figure 3).
func (p Profile) MaxPowerAt(prof *power.Profile, f dvfs.Freq) power.Watts {
	idle := prof.Idle()
	return idle + power.Watts(p.PowerAlpha*float64(prof.Busy(f)-idle))
}

// NormTimeAt returns the normalized execution time at frequency f (the x
// axis of Figure 3): 1 at nominal, DegMin at the ladder minimum. CPU-bound
// time scales roughly with 1/f, so the interpolation is linear in 1/f
// rather than in f, which bows the curves the way Figure 3 shows.
func (p Profile) NormTimeAt(prof *power.Profile, f dvfs.Freq) float64 {
	fmax, fmin := prof.Nominal(), prof.MinFreq()
	cf := f
	if cf == 0 || cf > fmax {
		cf = fmax
	}
	if cf < fmin {
		cf = fmin
	}
	invSpan := 1.0/float64(fmin) - 1.0/float64(fmax)
	t := (1.0/float64(cf) - 1.0/float64(fmax)) / invSpan
	return 1 + (p.DegMin-1)*t
}

// Point is one marker of Figure 3.
type Point struct {
	App      string
	Freq     dvfs.Freq
	Watts    power.Watts
	NormTime float64
}

// Figure3Points generates every (application, frequency) marker of
// Figure 3 on the given node profile, ordered by application then
// ascending frequency.
func Figure3Points(prof *power.Profile) []Point {
	var out []Point
	for _, app := range Measured() {
		freqs := prof.Frequencies()
		sort.Slice(freqs, func(i, j int) bool { return freqs[i] < freqs[j] })
		for _, f := range freqs {
			out = append(out, Point{
				App:      app.Name,
				Freq:     f,
				Watts:    app.MaxPowerAt(prof, f),
				NormTime: app.NormTimeAt(prof, f),
			})
		}
	}
	return out
}

// ByName finds a profile among the Figure 5 rows.
func ByName(name string) (Profile, error) {
	for _, p := range Figure5Rows() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("apps: unknown application %q", name)
}
