// Dynamic DVFS: the paper's Section VIII future-work item, reproduced as
// an optional controller feature. The cluster is configured from a
// SLURM-flavoured configuration file; a powercap springs while jobs run,
// the controller re-clocks them down within the same scheduling tick, and
// raises them back when the window closes — "faster power decrease when a
// powercap period is approaching and lower jobs' turnaround time after".
//
// This example deliberately drives the controller below the sim facade
// to show the interactive stepping API; the scenario-level form of the
// same feature is one line in a sim.RunSpec
// ("options": {"dynamic_dvfs": true}).
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/rjms"
	"repro/internal/slurmconf"
)

const conf = `
ClusterName=demo
Topology=1x5x18x16
DownWatts=14
IdleWatts=117
CpuFreqWatts=1200:193,1400:213,1600:234,1800:248,2000:269,2200:289,2400:317,2700:358
ChassisWatts=248
RackWatts=900
SchedulerParameters=powercap_policy=DVFS
DynamicDVFS=true
`

func main() {
	f, err := slurmconf.Parse(strings.NewReader(conf))
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := rjms.New(f.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster %q: %d nodes, max %v\n", f.ClusterName, ctl.Cluster().Nodes(), ctl.Cluster().MaxPower())

	// Fill the machine with long jobs at nominal frequency.
	var jobs []*job.Job
	for i := 0; i < 9; i++ {
		jobs = append(jobs, &job.Job{
			ID: job.ID(i + 1), User: "u", Cores: 160,
			Submit: 0, Runtime: 7200, Walltime: 14400,
		})
	}
	if err := ctl.LoadWorkload(jobs); err != nil {
		log.Fatal(err)
	}
	if _, err := ctl.Run(600); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=600s: draw %v with %d jobs at nominal\n", ctl.Cluster().Power(), ctl.RunningCount())

	// Spring a 70% cap for one hour, starting in 5 minutes.
	budget := power.CapFraction(0.7, ctl.Cluster().MaxPower())
	if _, err := ctl.ReservePowerCap(900, 4500, budget); err != nil {
		log.Fatal(err)
	}
	if _, err := ctl.Run(1000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=1000s (cap %v active): draw %v — running jobs were re-clocked down\n",
		budget, ctl.Cluster().Power())

	if _, err := ctl.Run(4600); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=4600s (cap lifted): draw %v — jobs boosted back toward nominal\n", ctl.Cluster().Power())

	sum, err := ctl.Run(3 * 3600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal: %v\n", sum)
	fmt.Printf("dynamic re-clocks performed: %d\n", sum.Rescales)
	fmt.Println("\nwithout DynamicDVFS the same cap would simply block new launches and")
	fmt.Println("wait for running jobs to end (the paper's default behaviour).")
}
