// Policy comparison: a reduced-scale Figure 8 — the three 5-hour
// workload intervals under every policy/cap combination, described as a
// declarative sim.RunSpec (the predefined Figure 8 grid as an explicit
// cell list), executed through the facade's worker pool, and summarized
// as the paper's normalized energy / jobs / work bars plus the sweep's
// parallel speedup accounting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/figures"
	"repro/internal/replay"
	"repro/internal/sim"
)

func main() {
	racks := flag.Int("racks", 8, "machine size in racks (56 = full Curie)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.Parse()

	cells, err := sim.CellsFromScenarios(replay.Fig8Scenarios(*racks))
	if err != nil {
		log.Fatal(err)
	}
	spec := sim.RunSpec{
		Name:    "policy-compare",
		Racks:   *racks,
		Cells:   cells,
		Workers: *workers,
	}
	scens, err := spec.Scenarios()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running %d scenarios on a %d-node machine...\n",
		len(scens), scens[0].Machine().Nodes())

	rep, err := sim.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	t := rep.Table
	fmt.Printf("done in %v with %d workers (serial cost %v, speedup %.2fx)\n\n",
		t.Elapsed.Round(1e6), t.Workers, t.SerialCost().Round(1e6), t.Speedup())

	if errs := rep.Errs(); len(errs) > 0 {
		fmt.Printf("sweep failed: %v\n", errs[0])
		return
	}
	results := t.Results()
	fmt.Print(figures.Fig8(results))
	fmt.Println()
	fmt.Print(figures.SummaryTable(results))
	fmt.Println("\nexpected shape (paper, Section VII-C): work and energy fall with the")
	fmt.Println("cap; DVFS accumulates more core-time than SHUT (slowed jobs run longer);")
	fmt.Println("MIX tends to the lowest energy at comparable work.")
}
