package power

import "repro/internal/dvfs"

// ProjectionMemo caches budget→frequency projection results within a
// scheduling pass. The power-aware launch check projects "what is the
// highest frequency the survivors can run at under this future budget"
// for every probe, and a pass probes up to its backfill depth of jobs
// against the same handful of reservation budgets — the projection is a
// pure function of (budget, survivor statistics), so the controller
// keys the memo by budget watts and invalidates it whenever the
// survivor set (reservation flags) changes. The zero value is ready to
// use.
type ProjectionMemo struct {
	m map[Watts]dvfs.Freq
}

// Get returns the cached frequency for a budget, if present.
func (pm *ProjectionMemo) Get(w Watts) (dvfs.Freq, bool) {
	f, ok := pm.m[w]
	return f, ok
}

// Put stores the frequency projected for a budget.
func (pm *ProjectionMemo) Put(w Watts, f dvfs.Freq) {
	if pm.m == nil {
		pm.m = make(map[Watts]dvfs.Freq, 4)
	}
	pm.m[w] = f
}

// Invalidate drops every cached projection (the keyed entries stay
// allocated for reuse).
func (pm *ProjectionMemo) Invalidate() {
	clear(pm.m)
}
