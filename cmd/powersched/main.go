// Command powersched replays workload scenarios end to end: it
// generates (or loads) a Curie-like workload, runs the powercap-aware
// RJMS under the chosen policy and cap, and prints the Figure 6/7 style
// utilization and power charts plus the run summary.
//
// The command is a thin adapter over the internal/sim facade: flags
// translate into a declarative sim.RunSpec, sim.Run executes it, and
// the -json/-csv exports flow through the shared sink pipeline. The
// same spec can be loaded from (or dumped to) a JSON file:
//
//	powersched -dumpspec run.json -kind 24h -policy MIX -cap 0.4
//	powersched -spec run.json
//
// runs the identical configuration — flag-driven and spec-driven
// invocations of the same RunSpec produce bit-identical results.
//
// -policy and -cap accept comma-separated lists; more than one
// combination switches to sweep mode, where every (policy x cap) cell
// runs in parallel through the internal/experiment engine and the
// result is the aggregated comparison table instead of a single run's
// charts.
//
// With -swf the workload streams from a Standard Workload Format trace
// instead: the file is scanned lazily through the trace pipeline
// (optionally windowed with -window START:END, arrival-rescaled with
// -timescale, and width-rescaled from its native -swfcores machine), so
// archive traces of any size replay in bounded memory. Streaming
// requires the trace to be submit-sorted (the Parallel Workloads
// Archive convention; equal-timestamp records replay in file order) —
// an out-of-order record aborts the replay with a clear error rather
// than reordering causality.
//
// Usage:
//
//	powersched -kind 24h -policy MIX -cap 0.4 [-racks 56] [-seed 1004] \
//	           [-kill] [-scattered] [-lead 0] [-width 100]
//	powersched -kind 24h -policy SHUT,DVFS,MIX -cap 0.4,0.6,0.8 -workers 4
//	powersched -swf curie.swf -window 86400:104400 -swfcores 80640 \
//	           -duration 18000 -policy SHUT -cap 0.6
//	powersched -federate -members 2,3 -division prorata,demand -cap 0.5
//	powersched -spec run.json
//	powersched -remote http://localhost:8080 -policy MIX -cap 0.4
//	powersched -twin examples/specs/twin_demo.json
//
// With -twin the file is a twin.Spec instead: the member clusters run
// as a live digital twin — a signal-driven site budget redistributed at
// every epoch boundary — and each boundary prints one status line.
// This is the in-process demo of the subsystem simd serves over
// /v1/twin.
//
// With -remote the built RunSpec is submitted to a running simd daemon
// instead of executing in-process: the client polls for the report and
// the output (terminal rendering, -json/-csv exports) streams back
// through the daemon's sink pipeline — identical specs submitted by
// many clients execute once, served from the daemon's spec-hash cache.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/figures"
	"repro/internal/replay"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/slurmconf"
	"repro/internal/twin"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is the testable entry point: parse flags into a sim.RunSpec (or
// load one), execute through the facade, present the report.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("powersched", flag.ExitOnError)
	var (
		kind      = fs.String("kind", "medianjob", "workload kind: "+sim.Workloads.Join("|"))
		policy    = fs.String("policy", "SHUT", "powercap policies, comma separated: "+sim.Policies.Join("|"))
		capList   = fs.String("cap", "0.6", "powercap fractions of max power, comma separated (>=1 disables)")
		racks     = fs.Int("racks", 56, "machine size in racks (56 = full Curie)")
		seed      = fs.Int64("seed", 1001, "workload seed")
		kill      = fs.Bool("kill", false, "kill jobs when the cap activates above the draw")
		scattered = fs.Bool("scattered", false, "disable bonus-aware grouped shutdown")
		lead      = fs.Int64("lead", 0, "seconds before the window reserved nodes stop taking jobs")
		horizon   = fs.Int64("horizon", 0, "cap planning horizon seconds (0 = default 3600)")
		width     = fs.Int("width", 96, "chart width")
		height    = fs.Int("height", 16, "chart height")
		dynamic   = fs.Bool("dynamic", false, "re-clock running jobs at cap boundaries (Section VIII extension)")
		workers   = fs.Int("workers", 0, "sweep mode: parallel workers (0 = GOMAXPROCS)")
		jsonOut   = fs.String("json", "", "write the run summary (or the sweep results) as JSON to this file")
		csvOut    = fs.String("csv", "", "write the time series (or the sweep summary table) as CSV to this file")
		confPath  = fs.String("conf", "", "print the controller configuration of this run as a slurmconf file and exit")
		swfPath   = fs.String("swf", "", "stream this SWF trace instead of the synthetic workload (bounded memory at any trace size; must be submit-sorted, the archive convention)")
		swfWindow = fs.String("window", "", "with -swf: replay the submit window START:END (seconds), re-based to t=0")
		timeScale = fs.Float64("timescale", 0, "with -swf: multiply submit times (0.5 = double the arrival rate)")
		swfCores  = fs.Int("swfcores", 0, "with -swf: the trace's native machine size; job widths are rescaled onto the replayed machine")
		duration  = fs.Int64("duration", 0, "replayed interval seconds (default: the workload kind's length)")
		federate  = fs.Bool("federate", false, "federated mode: run member clusters from the scenario library under a shared site budget")
		members   = fs.String("members", "3", "with -federate: member-cluster counts, comma separated")
		division  = fs.String("division", "demand", "with -federate: budget division policies, comma separated: "+sim.Divisions.Join("|"))
		epoch     = fs.Int64("epoch", 0, "with -federate: redistribution period seconds (0 = 900)")
		specPath  = fs.String("spec", "", "load the run description from this sim.RunSpec JSON file instead of the scenario flags")
		dumpSpec  = fs.String("dumpspec", "", "write the run description as a sim.RunSpec JSON file and exit (start of a scenario library)")
		remote    = fs.String("remote", "", "submit the run to a simd daemon at this base URL (http://host:port) instead of executing locally")
		twinPath  = fs.String("twin", "", "run this twin.Spec JSON file as an in-process live digital twin and print one status line per epoch")
	)
	fs.Parse(args)

	if *twinPath != "" {
		return runTwin(*twinPath, out)
	}

	var spec sim.RunSpec
	if *specPath != "" {
		loaded, err := sim.LoadSpec(*specPath)
		if err != nil {
			return err
		}
		spec = loaded
		if *workers != 0 {
			spec.Workers = *workers
		}
	} else {
		built, err := specFromFlags(*kind, *policy, *capList, *racks, *seed, *kill,
			*scattered, *lead, *horizon, *dynamic, *workers, *swfPath, *swfWindow,
			*timeScale, *swfCores, *duration, *federate, *members, *division, *epoch)
		if err != nil {
			return err
		}
		spec = built
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	spec = spec.Normalize()

	if *dumpSpec != "" {
		if err := sim.WriteSpecFile(*dumpSpec, spec); err != nil {
			return err
		}
		fmt.Fprintf(out, "run spec written to %s\n", *dumpSpec)
		return nil
	}

	if *confPath != "" {
		return writeConf(*confPath, spec, out)
	}

	if *remote != "" {
		return runRemote(*remote, spec, *width, *height, *csvOut, *jsonOut, out)
	}

	switch spec.Mode {
	case sim.ModeFederation:
		return runFederate(spec, *width, *csvOut, *jsonOut, out)
	case sim.ModeSweep:
		return runSweep(spec, *csvOut, *jsonOut, out)
	default:
		return runSingle(spec, *width, *height, *csvOut, *jsonOut, out)
	}
}

// specFromFlags translates the scenario flag surface into the
// equivalent declarative RunSpec — the whole flag grammar in one place.
func specFromFlags(kind, policy, capList string, racks int, seed int64,
	kill, scattered bool, lead, horizon int64, dynamic bool, workers int,
	swfPath, swfWindow string, timeScale float64, swfCores int, duration int64,
	federate bool, members, division string, epoch int64) (sim.RunSpec, error) {

	caps, err := parseCaps(capList)
	if err != nil {
		return sim.RunSpec{}, err
	}
	scaleRacks := 0
	if racks != 56 {
		scaleRacks = racks
	}
	spec := sim.RunSpec{
		Racks:        scaleRacks,
		CapFractions: caps,
		Workers:      workers,
	}

	if federate {
		counts, err := parseInts(members)
		if err != nil {
			return sim.RunSpec{}, err
		}
		spec.Federation = &sim.FederationSpec{
			MemberCounts: counts,
			Divisions:    splitList(division),
			EpochSec:     epoch,
		}
		return spec, nil
	}

	spec.Workload = sim.WorkloadSpec{Kind: kind, Seed: seed, DurationSec: duration}
	spec.Policies = splitList(policy)
	spec.Options = sim.OptionSpec{
		KillOnOverrun:      kill,
		Scattered:          scattered,
		ReservationLeadSec: lead,
		PlanningHorizonSec: horizon,
		DynamicDVFS:        dynamic,
	}
	if swfPath != "" {
		swf := &sim.SWFSpec{Path: swfPath, TimeScale: timeScale, Cores: swfCores}
		if swfWindow != "" {
			start, end, err := parseWindow(swfWindow)
			if err != nil {
				return sim.RunSpec{}, err
			}
			swf.WindowStartSec, swf.WindowEndSec = start, end
		}
		spec.Workload.SWF = swf
	}
	return spec, nil
}

// writeConf prints the controller configuration of the run as a
// slurmconf file.
func writeConf(path string, spec sim.RunSpec, out io.Writer) error {
	if spec.Mode == sim.ModeFederation {
		return fmt.Errorf("-conf describes a single controller; federated specs have one per member")
	}
	if len(spec.Policies) == 0 {
		return fmt.Errorf("-conf needs a policy axis; cell-list specs carry per-cell policies")
	}
	p, err := sim.Policies.Lookup(spec.Policies[0])
	if err != nil {
		return err
	}
	f := slurmconf.CurieFile(p)
	f.Config.Topology = replay.Scenario{ScaleRacks: spec.Racks}.Machine()
	f.Config.KillOnOverrun = spec.Options.KillOnOverrun
	f.Config.ScatteredShutdown = spec.Options.Scattered
	f.Config.ReservationLead = spec.Options.ReservationLeadSec
	f.Config.CapPlanningHorizon = spec.Options.PlanningHorizonSec
	f.Config.DynamicDVFS = spec.Options.DynamicDVFS
	if err := writeFile(path, func(w io.Writer) error {
		return slurmconf.Write(w, f)
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "configuration written to %s\n", path)
	return nil
}

// export writes the report through the named sink when path is set.
func export(path, format, what string, rep sim.Report, out io.Writer) error {
	if path == "" {
		return nil
	}
	if err := sim.WriteReportFile(path, format, rep, sim.SinkOptions{}); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s written to %s\n", what, path)
	return nil
}

// runSweep fans the (policy x cap) grid out across the worker pool and
// prints the aggregated comparison. -csv/-json switch meaning here:
// they export the sweep table, not a single run's series.
func runSweep(spec sim.RunSpec, csvOut, jsonOut string, out io.Writer) error {
	machine := replay.Scenario{ScaleRacks: spec.Racks}.Machine()
	if spec.Workload.SWF != nil {
		fmt.Fprintf(out, "streaming %s (window %q, timescale %v)\n",
			spec.Workload.SWF.Path, windowLabel(*spec.Workload.SWF), spec.Workload.SWF.TimeScale)
	}
	scens, err := spec.Scenarios()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "sweeping %d scenarios on %d racks (%d nodes)...\n",
		len(scens), machine.Racks, machine.Nodes())
	rep, err := sim.RunWith(context.Background(), spec, func(done, total int, cell string, elapsed time.Duration, cellErr error) {
		status := "ok"
		if cellErr != nil {
			status = "FAILED: " + cellErr.Error()
		}
		fmt.Fprintf(out, "  [%d/%d] %-28s %v (%s)\n", done, total, cell, elapsed.Round(1e6), status)
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, rep.Table.ASCII(40))
	if err := export(csvOut, "csv", "sweep summary CSV", rep, out); err != nil {
		return err
	}
	if err := export(jsonOut, "json", "sweep JSON", rep, out); err != nil {
		return err
	}
	if errs := rep.Errs(); len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// runSingle is the classic one-scenario replay with the full chart
// output.
func runSingle(spec sim.RunSpec, width, height int, csvOut, jsonOut string, out io.Writer) error {
	machine := replay.Scenario{ScaleRacks: spec.Racks}.Machine()
	if spec.Workload.SWF != nil {
		fmt.Fprintf(out, "streaming %s (window %q, timescale %v)\n",
			spec.Workload.SWF.Path, windowLabel(*spec.Workload.SWF), spec.Workload.SWF.TimeScale)
	}
	scens, err := spec.Scenarios()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replaying %s on %d racks (%d nodes)...\n", scens[0].Name, machine.Racks, machine.Nodes())
	rep, err := sim.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	r := *rep.Single
	if r.Err != nil {
		return r.Err
	}
	if r.Scenario.Capped() {
		start, end := r.Scenario.Window()
		fmt.Fprintf(out, "powercap window: [%d, %d) at %.0f%% of %v\n",
			start, end, r.Scenario.CapFraction*100, r.MaxPower)
		fmt.Fprintf(out, "offline plan: %v, %d nodes reserved for switch-off (saving %v, needed %v)\n",
			r.Plan.Mechanism, len(r.Plan.OffNodes), r.Plan.PlannedSaving, r.Plan.NeededSaving)
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, figures.TimeSeries(r, width, height))
	fmt.Fprintln(out)
	fmt.Fprintln(out, "summary:", r.Summary)
	fmt.Fprintf(out, "normalized: energy=%.3f work=%.3f launched=%.3f mean-wait=%.0fs\n",
		r.Summary.NormEnergy, r.Summary.NormWork, r.Summary.NormLaunched, r.Summary.MeanWaitSec)
	fmt.Fprintf(out, "launch frequencies: %v\n", r.Summary.LaunchedByFreq)
	if r.Summary.Rescales > 0 {
		fmt.Fprintf(out, "dynamic re-clocks: %d\n", r.Summary.Rescales)
	}
	if err := export(jsonOut, "json", "summary JSON", rep, out); err != nil {
		return err
	}
	return export(csvOut, "csv", "time series CSV", rep, out)
}

// runFederate runs federated specs: a single (members x cap x
// division) combination replays one federation with the full
// per-member breakdown; any multi-valued axis switches to sweep mode
// over the federated grid.
func runFederate(spec sim.RunSpec, width int, csvOut, jsonOut string, out io.Writer) error {
	single := len(spec.Federation.MemberCounts)*len(spec.CapFractions)*len(spec.Federation.Divisions) == 1

	if single {
		rep, err := sim.Run(context.Background(), spec)
		if err != nil {
			return err
		}
		r := *rep.Federation
		fs := r.Scenario
		fmt.Fprintf(out, "federating %d member clusters (%d racks each) under a %d%% site budget, %s division, %ds epochs...\n",
			len(fs.Members), fs.Members[0].Machine().Racks, int(fs.GlobalCapFraction*100+0.5), fs.Division, fs.Epoch())
		if r.Err != nil {
			return r.Err
		}
		fmt.Fprintf(out, "site budget %v, peak site draw %v, energy %v\n", r.GlobalBudgetW, r.PeakGlobalW, r.EnergyJ)
		fmt.Fprintf(out, "aggregate: launched %d/%d completed %d killed %d mean BSLD %.2f mean wait %.0fs\n\n",
			r.JobsLaunched, r.JobsSubmitted, r.JobsCompleted, r.JobsKilled, r.MeanBSLD, r.MeanWaitSec)
		fmt.Fprintf(out, "%-24s %10s %10s %8s %9s %12s\n", "member", "maxpower", "finalcap", "bsld", "wait(s)", "launched")
		for _, m := range r.Members {
			s := m.Summary
			fmt.Fprintf(out, "%-24s %10.3g %10.3g %8.2f %9.0f %6d/%-5d\n",
				m.Name, float64(m.MaxPower), float64(m.FinalCapW), s.MeanBSLD, s.MeanWaitSec, s.JobsLaunched, s.JobsSubmitted)
		}
		if len(r.Epochs) > 0 {
			fmt.Fprintf(out, "\nshare timeline (%d epochs):\n", len(r.Epochs))
			step := (len(r.Epochs) + 9) / 10 // at most ~10 lines
			for i := 0; i < len(r.Epochs); i += step {
				ep := r.Epochs[i]
				fmt.Fprintf(out, "  t=%6d  caps:", ep.T)
				for _, c := range ep.CapW {
					fmt.Fprintf(out, " %8.3g", float64(c))
				}
				fmt.Fprintf(out, "  pending:")
				for _, p := range ep.PendingCores {
					fmt.Fprintf(out, " %6d", p)
				}
				fmt.Fprintln(out)
			}
		}
		// -csv/-json export the run as a one-cell federation table, the
		// same formats sweep mode writes.
		if err := export(csvOut, "csv", "federation CSV", rep, out); err != nil {
			return err
		}
		return export(jsonOut, "json", "federation JSON", rep, out)
	}

	fscens, err := spec.FederationScenarios()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "sweeping %d federations...\n", len(fscens))
	rep, err := sim.RunWith(context.Background(), spec, func(done, total int, cell string, elapsed time.Duration, cellErr error) {
		status := "ok"
		if cellErr != nil {
			status = "FAILED: " + cellErr.Error()
		}
		fmt.Fprintf(out, "  [%d/%d] %-22s %v (%s)\n", done, total, cell, elapsed.Round(1e6), status)
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, rep.FederationTable.ASCII(width))
	if err := export(csvOut, "csv", "federation sweep CSV", rep, out); err != nil {
		return err
	}
	if err := export(jsonOut, "json", "federation sweep JSON", rep, out); err != nil {
		return err
	}
	if errs := rep.Errs(); len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// runRemote is the thin-client mode: the built RunSpec goes to a simd
// daemon, the client polls for completion, and every byte of output —
// the terminal rendering and the -json/-csv exports — streams back
// through the daemon's sink pipeline, the same encoders a local run
// uses. No result decoding happens on this side: the API is
// CLI-complete.
func runRemote(base string, spec sim.RunSpec, width, height int, csvOut, jsonOut string, out io.Writer) error {
	return service.NewClient(base).RunAndRender(context.Background(), spec,
		sim.SinkOptions{Width: width, Height: height}, out,
		service.Export{Path: jsonOut, Format: "json", Label: "summary JSON"},
		service.Export{Path: csvOut, Format: "csv", Label: "time series CSV"},
	)
}

// runTwin is the in-process digital-twin demo: load a twin.Spec, run
// the session to its horizon (paced only if the spec says so), print
// one line per epoch boundary and a per-member summary at the end. The
// same spec started through simd's POST /v1/twin streams the identical
// telemetry into the series API.
func runTwin(path string, out io.Writer) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var spec twin.Spec
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	session, err := twin.New(spec, twin.Config{OnEpoch: func(st twin.Status) {
		fmt.Fprintf(out, "  t=%6d  signal=%.3f  budget=%10.4g W  draw=%10.4g W  caps:",
			st.VirtualTime, st.SignalValue, st.BudgetW, st.PowerW)
		for _, m := range st.Members {
			fmt.Fprintf(out, " %s=%.4g", m.Name, m.CapW)
		}
		fmt.Fprintln(out)
	}})
	if err != nil {
		return err
	}
	st := session.Status()
	fmt.Fprintf(out, "twin %s: %d members, %ds epochs to horizon %ds (real-time ratio %g)\n",
		spec.Name, len(st.Members), st.EpochSec, st.HorizonSec, st.RealTimeRatio)
	if err := session.Run(context.Background()); err != nil {
		return err
	}
	final := session.Status()
	fmt.Fprintf(out, "\n%-24s %12s %12s %8s %8s\n", "member", "final cap W", "max power W", "pending", "running")
	for _, m := range final.Members {
		fmt.Fprintf(out, "%-24s %12.4g %12.4g %8d %8d\n", m.Name, m.CapW, m.MaxPowerW, m.PendingCores, m.RunningJobs)
	}
	return nil
}

// windowLabel reconstructs the -window flag spelling of a spec window.
func windowLabel(s sim.SWFSpec) string {
	if s.WindowStartSec == 0 && s.WindowEndSec == 0 {
		return ""
	}
	return fmt.Sprintf("%d:%d", s.WindowStartSec, s.WindowEndSec)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(part))
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad member count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no member counts given")
	}
	return out, nil
}

func parseWindow(s string) (start, end int64, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -window %q, want START:END seconds", s)
	}
	start, err = strconv.ParseInt(parts[0], 10, 64)
	if err == nil {
		end, err = strconv.ParseInt(parts[1], 10, 64)
	}
	if err != nil || start < 0 || end <= start {
		return 0, 0, fmt.Errorf("bad -window %q, want 0 <= START < END", s)
	}
	return start, end, nil
}

func parseCaps(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad cap fraction %q: %v", part, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no cap fractions given")
	}
	return out, nil
}

func writeFile(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
