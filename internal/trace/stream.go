package trace

import (
	"fmt"

	"repro/internal/job"
)

// Stream is the pull-iterator contract of the streaming trace pipeline:
// Next returns the next job, or (nil, nil) at end of stream. Once a
// Stream has returned an error or ended it must keep doing so. Streams
// read and transform arbitrarily large traces in bounded memory — no
// stage holds more than the record in flight — so a million-job archive
// trace costs the same to window or rescale as a thousand-job one.
//
// The pipeline convention (shared with the SWF archive format itself) is
// that jobs arrive in nondecreasing Submit order; Window exploits it to
// stop reading early, and rjms.Controller.LoadWorkloadStream requires it
// to schedule submissions lazily.
//
// A Stream hands over ownership of every job it yields: transforms
// rewrite fields in place and consumers mutate scheduling state, so a
// yielded job must not be aliased by anything upstream (Scanner builds
// fresh jobs; SliceStream clones).
type Stream interface {
	Next() (*job.Job, error)
}

// streamFunc adapts a closure to the Stream interface.
type streamFunc func() (*job.Job, error)

func (f streamFunc) Next() (*job.Job, error) { return f() }

// SliceStream returns a Stream yielding clones of the given jobs in
// slice order — the bridge from materialized workloads into the
// transform layer. Cloning matters: transforms rewrite jobs in place
// (Window rebases Submit, ScaleCores rewrites Cores) and the controller
// mutates scheduling state on streamed jobs, so handing out the
// caller's pointers would corrupt the source slice.
func SliceStream(jobs []*job.Job) Stream {
	i := 0
	return streamFunc(func() (*job.Job, error) {
		if i >= len(jobs) {
			return nil, nil
		}
		j := jobs[i].Clone()
		i++
		return j, nil
	})
}

// Collect drains a stream into a slice — the bridge back out of the
// transform layer for consumers that need random access.
func Collect(src Stream) ([]*job.Job, error) {
	var out []*job.Job
	for {
		j, err := src.Next()
		if err != nil {
			return nil, err
		}
		if j == nil {
			return out, nil
		}
		out = append(out, j)
	}
}

// Window keeps the jobs submitted in [start, end) and re-bases their
// submit times to the window start, turning any slice of an archive
// trace into a replayable interval. The input must be submit-sorted (the
// SWF archive convention, and what Scanner yields for such traces):
// Window stops pulling from src at the first job at or beyond end, so
// windowing the first hour of a million-job trace reads only the first
// hour's lines.
func Window(src Stream, start, end int64) Stream {
	done := false
	var err error
	if end <= start {
		err = fmt.Errorf("trace: window [%d, %d) is empty", start, end)
	}
	return streamFunc(func() (*job.Job, error) {
		if err != nil {
			return nil, err
		}
		for !done {
			j, e := src.Next()
			if e != nil || j == nil {
				done = true
				err = e // keep a source error sticky across calls
				return nil, e
			}
			if j.Submit >= end {
				done = true
				return nil, nil
			}
			if j.Submit < start {
				continue
			}
			j.Submit -= start
			return j, nil
		}
		return nil, nil
	})
}

// ScaleTime multiplies submit times by factor, rescaling the arrival
// rate: factor 0.5 compresses the trace to twice the submission
// pressure, factor 2 relaxes it to half. Runtimes and walltimes are
// untouched — only the arrival process changes.
func ScaleTime(src Stream, factor float64) Stream {
	var err error
	if factor <= 0 {
		err = fmt.Errorf("trace: non-positive time scale %v", factor)
	}
	return streamFunc(func() (*job.Job, error) {
		if err != nil {
			return nil, err
		}
		j, e := src.Next()
		if e != nil || j == nil {
			return nil, e
		}
		j.Submit = int64(float64(j.Submit)*factor + 0.5)
		return j, nil
	})
}

// ScaleCores rescales job widths from a machine of `from` cores onto a
// machine of `to` cores, preserving each job's fraction of the machine
// (at least one core, never wider than the target machine) — the same
// shape-preserving reduction the synthetic generator applies for
// reduced-scale replays.
func ScaleCores(src Stream, from, to int) Stream {
	var err error
	if from <= 0 || to <= 0 {
		err = fmt.Errorf("trace: core rescale %d -> %d, want positive sizes", from, to)
	}
	return streamFunc(func() (*job.Job, error) {
		if err != nil {
			return nil, err
		}
		j, e := src.Next()
		if e != nil || j == nil {
			return nil, e
		}
		c := j.Cores * to / from
		if c < 1 {
			c = 1
		}
		if c > to {
			c = to
		}
		j.Cores = c
		return j, nil
	})
}

// Filter keeps the jobs for which keep returns true.
func Filter(src Stream, keep func(*job.Job) bool) Stream {
	return streamFunc(func() (*job.Job, error) {
		for {
			j, err := src.Next()
			if err != nil || j == nil {
				return nil, err
			}
			if keep(j) {
				return j, nil
			}
		}
	})
}

// Limit passes through at most n jobs.
func Limit(src Stream, n int) Stream {
	seen := 0
	return streamFunc(func() (*job.Job, error) {
		if seen >= n {
			return nil, nil
		}
		j, err := src.Next()
		if err != nil || j == nil {
			return nil, err
		}
		seen++
		return j, nil
	})
}
