package service_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/storetest"
)

// TestMemStoreConformance runs the cross-backend suite on the hot tier.
func TestMemStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T, opt storetest.Options) service.RunStore {
		return service.NewMemStore(opt.MaxRecords, opt.OnEvict)
	})
}

// TestFSStoreConformance runs the same suite on the filesystem archive:
// identical semantics, durable medium.
func TestFSStoreConformance(t *testing.T) {
	storetest.Run(t, fsFactory)
}

func fsFactory(t *testing.T, opt storetest.Options) service.RunStore {
	st, err := service.OpenFSStore(t.TempDir(), service.FSOptions{
		MaxRecords: opt.MaxRecords,
		MaxAge:     opt.MaxAge,
		OnEvict:    opt.OnEvict,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestFSStoreAgeExpiry runs the optional age-bound suite on the
// archive (the only shipped backend with an age sweep).
func TestFSStoreAgeExpiry(t *testing.T) {
	storetest.RunAgeExpiry(t, fsFactory)
}

// TestFSStoreAgeSweepAtOpen pins the boot-time half of the age bound:
// a reopened archive expires stale records before serving anything,
// removes their files, and reports them to OnEvict.
func TestFSStoreAgeSweepAtOpen(t *testing.T) {
	dir := t.TempDir()
	first, err := service.OpenFSStore(dir, service.FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stale := storetest.SampleRecord(t, "open-stale", 0) // January 2026 timestamps
	fresh := storetest.SampleRecord(t, "open-fresh", 1)
	fresh.Submitted = time.Now()
	fresh.Started = fresh.Submitted
	fresh.Finished = fresh.Submitted
	for _, rec := range []service.Record{stale, fresh} {
		if err := first.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	first.Close()

	var evicted []string
	second, err := service.OpenFSStore(dir, service.FSOptions{
		MaxAge:  30 * 24 * time.Hour,
		OnEvict: func(rec service.Record) { evicted = append(evicted, rec.ID) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != stale.ID {
		t.Fatalf("open sweep evicted %v, want [%s]", evicted, stale.ID)
	}
	if _, ok, _ := second.Get(stale.ID); ok {
		t.Error("stale record served after the open sweep")
	}
	if _, ok, _ := second.Get(fresh.ID); !ok {
		t.Error("fresh record lost to the open sweep")
	}
	if _, err := os.Stat(filepath.Join(dir, stale.SpecHash+".json")); !os.IsNotExist(err) {
		t.Errorf("expired record's file still on disk (stat err %v)", err)
	}
	if n, _ := second.Len(); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
}

// TestFSStoreReopen pins the durable half the suite cannot see: records
// put by one store are indexed and served by a fresh store over the
// same directory — the daemon-restart contract.
func TestFSStoreReopen(t *testing.T) {
	dir := t.TempDir()
	first, err := service.OpenFSStore(dir, service.FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := storetest.SampleRecord(t, "reopen", 41)
	if err := first.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second, err := service.OpenFSStore(dir, service.FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if skipped := second.Skipped(); len(skipped) != 0 {
		t.Fatalf("reopen skipped files: %v", skipped)
	}
	got, ok, err := second.Get(rec.ID)
	if err != nil || !ok {
		t.Fatalf("Get after reopen = ok:%v err:%v", ok, err)
	}
	if got.SpecHash != rec.SpecHash || got.State != rec.State || got.CacheHits != rec.CacheHits {
		t.Errorf("reopened record drifted: %+v", got)
	}
	if string(got.Renders["json"]) != string(rec.Renders["json"]) {
		t.Errorf("reopened render = %q, want %q", got.Renders["json"], rec.Renders["json"])
	}
	if max, _ := second.MaxSeq(); max != rec.Seq {
		t.Errorf("reopened MaxSeq = %d, want %d", max, rec.Seq)
	}
}

// TestFSStoreCorruptFileSkipped pins the archive's damage tolerance:
// truncated or tampered envelopes are skipped with a reason at open,
// never fatal, and the rest of the archive still serves.
func TestFSStoreCorruptFileSkipped(t *testing.T) {
	dir := t.TempDir()
	st, err := service.OpenFSStore(dir, service.FSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	good := storetest.SampleRecord(t, "survivor", 0)
	if err := st.Put(good); err != nil {
		t.Fatal(err)
	}
	bad := storetest.SampleRecord(t, "corrupted", 1)
	if err := st.Put(bad); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Truncate the second envelope mid-file and drop a non-envelope
	// stray in the directory.
	path := filepath.Join(dir, bad.SpecHash+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.json"), []byte("not an envelope"), 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := service.OpenFSStore(dir, service.FSOptions{})
	if err != nil {
		t.Fatalf("open with corrupt files failed: %v", err)
	}
	skipped := reopened.Skipped()
	if len(skipped) != 2 {
		t.Fatalf("skipped = %v, want the truncated envelope and the stray file", skipped)
	}
	for _, s := range skipped {
		if !strings.Contains(s, ":") {
			t.Errorf("skip entry %q carries no reason", s)
		}
	}
	if _, ok, _ := reopened.Get(good.ID); !ok {
		t.Error("intact record lost to a sibling's corruption")
	}
	if _, ok, _ := reopened.Get(bad.ID); ok {
		t.Error("truncated record served anyway")
	}
	if n, _ := reopened.Len(); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
}
