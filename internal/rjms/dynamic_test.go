package rjms

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/job"
	"repro/internal/power"
)

// startLongJob builds a controller with one whole-machine job running
// from t=0, advanced to t=50.
func startLongJob(t *testing.T, cfg Config, runtime int64) *Controller {
	t.Helper()
	c := mustNew(t, cfg)
	jobs := []*job.Job{{ID: 1, User: "a", Cores: 48, Submit: 0, Runtime: runtime, Walltime: runtime * 2}}
	if err := c.LoadWorkload(jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(50); err != nil {
		t.Fatal(err)
	}
	if c.RunningCount() != 1 {
		t.Fatal("setup: job not running")
	}
	return c
}

func runningFreq(t *testing.T, c *Controller) dvfs.Freq {
	t.Helper()
	for _, j := range c.running {
		return j.Freq
	}
	t.Fatal("no running job")
	return 0
}

func TestDynamicThrottleMeetsCap(t *testing.T) {
	cfg := tinyConfig(core.PolicyDvfs)
	cfg.DynamicDVFS = true
	c := startLongJob(t, cfg, 5000)
	clus := c.Cluster()
	// Budget that admits the whole machine at 1.8 GHz but not above:
	// 12 nodes busy, idle floor 4196 W.
	budget := power.CapWatts(clus.IdlePower() + 12*(248-117))
	if _, err := c.ReservePowerCap(100, 2000, budget); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(150); err != nil {
		t.Fatal(err)
	}
	if got := clus.Power(); !budget.Allows(got) {
		t.Errorf("draw %v above cap %v after dynamic throttle", got, budget)
	}
	if f := runningFreq(t, c); f != dvfs.F1800 {
		t.Errorf("running job at %v, want 1.8 GHz", f)
	}
	sum, err := c.Run(151)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rescales == 0 {
		t.Error("no rescales recorded")
	}
	if sum.JobsKilled != 0 {
		t.Error("dynamic throttle killed a job")
	}
}

func TestDynamicBoostAfterWindow(t *testing.T) {
	cfg := tinyConfig(core.PolicyDvfs)
	cfg.DynamicDVFS = true
	runtime := int64(5000)
	c := startLongJob(t, cfg, runtime)
	clus := c.Cluster()
	budget := power.CapWatts(clus.IdlePower() + 12*(248-117))
	if _, err := c.ReservePowerCap(100, 2000, budget); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(2100); err != nil {
		t.Fatal(err)
	}
	if f := runningFreq(t, c); f != dvfs.F2700 {
		t.Errorf("job not boosted back to nominal after the window: %v", f)
	}

	// Exact completion-time accounting: nominal work 5000 s; [0,100) at
	// 2.7 GHz does 100; [100,2000) at 1.8 GHz (factor 1.378) does
	// 1900/1.378; the rest finishes at nominal.
	factor := 1 + (dvfs.DegMinCommon-1)*float64(dvfs.F2700-dvfs.F1800)/float64(dvfs.F2700-dvfs.F1200)
	doneByWindowEnd := 100 + 1900/factor
	wantEnd := 2000 + (float64(runtime) - doneByWindowEnd)
	sum, err := c.Run(int64(wantEnd) + 10)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsCompleted != 1 {
		t.Fatalf("job not completed by t=%0.f: %+v", wantEnd+10, sum)
	}
	var end int64
	// The job is gone from running; find completion via counters only —
	// re-run bookkeeping: completion implies the end event fired at
	// wantEnd (+/- rounding).
	end = c.Now()
	if math.Abs(float64(end)-(wantEnd+10)) > 1 {
		t.Logf("clock: %d", end) // Now() equals the horizon; nothing to assert
	}
}

func TestDynamicCompletionAccountingExact(t *testing.T) {
	cfg := tinyConfig(core.PolicyDvfs)
	cfg.DynamicDVFS = true
	runtime := int64(1000)
	c := startLongJob(t, cfg, runtime)
	budget := power.CapWatts(c.Cluster().IdlePower() + 12*(193-117)) // forces 1.2 GHz
	if _, err := c.ReservePowerCap(100, 100000, budget); err != nil {
		t.Fatal(err)
	}
	// Job: 100 s at nominal (100 work), then 1.2 GHz until done:
	// remaining 900 work x 1.63 = 1467 s; ends at 100 + 1467 = 1567.
	sum, err := c.Run(1568)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsCompleted != 1 {
		t.Fatalf("not completed by 1568: running=%d", c.RunningCount())
	}
	// And not earlier than the exact time.
	c2 := startLongJob(t, Config{
		Topology: cfg.Topology, Policy: core.PolicyDvfs, DynamicDVFS: true,
	}, runtime)
	if _, err := c2.ReservePowerCap(100, 100000, budget); err != nil {
		t.Fatal(err)
	}
	sum2, err := c2.Run(1565)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.JobsCompleted != 0 {
		t.Error("job completed before its stretched runtime elapsed")
	}
}

func TestDynamicDisabledForShut(t *testing.T) {
	cfg := tinyConfig(core.PolicyShut)
	cfg.DynamicDVFS = true
	c := startLongJob(t, cfg, 3000)
	budget := power.CapWatts(c.Cluster().IdlePower() + 100)
	if _, err := c.ReservePowerCap(100, 500, budget); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(600)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rescales != 0 {
		t.Errorf("SHUT policy rescaled jobs: %d", sum.Rescales)
	}
	if f := runningFreq(t, c); f != dvfs.F2700 {
		t.Errorf("SHUT job moved off nominal: %v", f)
	}
}

func TestDynamicThrottleSpreadsFairly(t *testing.T) {
	cfg := tinyConfig(core.PolicyDvfs)
	cfg.DynamicDVFS = true
	c := mustNew(t, cfg)
	// Two 6-node jobs fill the machine.
	jobs := []*job.Job{
		{ID: 1, User: "a", Cores: 24, Submit: 0, Runtime: 5000, Walltime: 9000},
		{ID: 2, User: "b", Cores: 24, Submit: 0, Runtime: 5000, Walltime: 9000},
	}
	if err := c.LoadWorkload(jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(50); err != nil {
		t.Fatal(err)
	}
	// Budget one rung down for everyone: 2.4 GHz.
	budget := power.CapWatts(c.Cluster().IdlePower() + 12*(317-117))
	if _, err := c.ReservePowerCap(100, 2000, budget); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(150); err != nil {
		t.Fatal(err)
	}
	for _, j := range c.running {
		if j.Freq != dvfs.F2400 {
			t.Errorf("job %d at %v, want both at 2.4 GHz (fair spread)", j.ID, j.Freq)
		}
	}
}

func TestDynamicNoCapNoAction(t *testing.T) {
	cfg := tinyConfig(core.PolicyMix)
	cfg.DynamicDVFS = true
	c := startLongJob(t, cfg, 500)
	sum, err := c.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rescales != 0 {
		t.Errorf("rescales without any cap: %d", sum.Rescales)
	}
	if sum.JobsCompleted != 1 {
		t.Errorf("job did not complete normally")
	}
}

func TestDynamicMixRespectsFloor(t *testing.T) {
	cfg := tinyConfig(core.PolicyMix)
	cfg.DynamicDVFS = true
	c := startLongJob(t, cfg, 5000)
	// Impossible budget: even the MIX floor cannot satisfy it; the
	// throttle must stop at 2.0 GHz, never below.
	budget := power.CapWatts(1)
	if _, err := c.ReservePowerCap(100, 2000, budget); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(150); err != nil {
		t.Fatal(err)
	}
	if f := runningFreq(t, c); f != dvfs.F2000 {
		t.Errorf("MIX dynamic throttle went to %v, want the 2.0 GHz floor", f)
	}
}
