package cluster

import (
	"fmt"

	"repro/internal/dvfs"
	"repro/internal/power"
)

// Cluster tracks the power-relevant state of every node and derives the
// instantaneous cluster draw incrementally. All mutating operations are
// O(1); reading the total power is O(1). The struct is not safe for
// concurrent mutation; the RJMS controller serializes access (the
// experiment harness runs many independent Clusters in parallel instead).
type Cluster struct {
	topo     Topology
	profile  *power.Profile
	overhead Overhead

	nodes []node

	// Incrementally maintained aggregates.
	nodeWatts       float64 // sum of per-node draws, before group bonuses
	offPerChassis   []int   // nodes in StateOff per chassis
	fullOffChassis  []bool  // chassis entirely off (bonus active)
	offChassisCount []int   // fully-off chassis per rack
	fullOffRack     []bool  // rack entirely off (bonus active)
	nFullOffChassis int
	nFullOffRacks   int

	counts       [3]int            // nodes per NodeState
	busyCores    int               // cores currently allocated
	coresByFreq  map[dvfs.Freq]int // allocated cores keyed by node frequency
	reservedOff  int               // nodes flagged by switch-off reservations
	reservedDraw float64           // sum over reserved nodes of draw-down
	maxPowerOnce power.Watts

	// Allocation candidate indexes, maintained by transition: busy nodes
	// with at least one free core, and idle nodes. Allocation probes walk
	// these instead of scanning every node.
	partialBusy bitset
	idleSet     bitset
}

// New builds a cluster with every node powered on and idle.
func New(topo Topology, profile *power.Profile, overhead Overhead) (*Cluster, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if profile == nil {
		return nil, fmt.Errorf("cluster: nil power profile")
	}
	if overhead.ChassisWatts < 0 || overhead.RackWatts < 0 {
		return nil, fmt.Errorf("cluster: negative overhead %+v", overhead)
	}
	c := &Cluster{
		topo:            topo,
		profile:         profile,
		overhead:        overhead,
		nodes:           make([]node, topo.Nodes()),
		offPerChassis:   make([]int, topo.Chassis()),
		fullOffChassis:  make([]bool, topo.Chassis()),
		offChassisCount: make([]int, topo.Racks),
		fullOffRack:     make([]bool, topo.Racks),
		coresByFreq:     make(map[dvfs.Freq]int),
		partialBusy:     newBitset(topo.Nodes()),
		idleSet:         newBitset(topo.Nodes()),
	}
	for i := range c.nodes {
		c.nodes[i].state = StateIdle
		c.idleSet.set(i)
	}
	c.counts[StateIdle] = topo.Nodes()
	c.nodeWatts = float64(profile.Idle()) * float64(topo.Nodes())
	c.maxPowerOnce = power.Watts(float64(profile.Max())*float64(topo.Nodes())) +
		power.Watts(overhead.ChassisWatts*float64(topo.Chassis())) +
		power.Watts(overhead.RackWatts*float64(topo.Racks))
	return c, nil
}

// NewCurie builds the full 5040-node Curie machine with the measured
// Figure 2/Figure 4 constants.
func NewCurie() *Cluster {
	c, err := New(CurieTopology(), power.CurieProfile(), CurieOverhead())
	if err != nil {
		panic(err) // constants are known-valid
	}
	return c
}

// Topology returns the hierarchy dimensions.
func (c *Cluster) Topology() Topology { return c.topo }

// Profile returns the per-node power profile.
func (c *Cluster) Profile() *power.Profile { return c.profile }

// Overhead returns the shared-equipment draws.
func (c *Cluster) Overhead() Overhead { return c.overhead }

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Cores returns the total core count.
func (c *Cluster) Cores() int { return c.topo.Cores() }

func (c *Cluster) checkID(id NodeID) error {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return fmt.Errorf("cluster: node %d out of range [0,%d)", id, len(c.nodes))
	}
	return nil
}

// draw returns the current contribution of one node, before group bonuses.
func (c *Cluster) draw(n *node) float64 {
	switch n.state {
	case StateOff:
		return float64(c.profile.Down())
	case StateIdle:
		return float64(c.profile.Idle())
	default:
		return float64(c.profile.Busy(n.freq))
	}
}

// transition moves node id to a new (state, freq) pair and maintains all
// aggregates, including the chassis/rack full-off bonuses.
func (c *Cluster) transition(id NodeID, st NodeState, f dvfs.Freq, usedCores int) {
	n := &c.nodes[id]
	before := c.draw(n)
	wasOff := n.state == StateOff
	wasIdle := n.state == StateIdle
	wasPartialBusy := n.state == StateBusy && n.usedCores < c.topo.CoresPerNode

	// Core accounting keyed by node frequency.
	if n.state == StateBusy {
		c.coresByFreq[n.freq] -= n.usedCores
		if c.coresByFreq[n.freq] == 0 {
			delete(c.coresByFreq, n.freq)
		}
		c.busyCores -= n.usedCores
	}
	c.counts[n.state]--

	n.state, n.freq, n.usedCores = st, f, usedCores

	c.counts[st]++
	if st == StateBusy {
		c.coresByFreq[f] += usedCores
		c.busyCores += usedCores
	}
	if isIdle := st == StateIdle; isIdle != wasIdle {
		if isIdle {
			c.idleSet.set(int(id))
		} else {
			c.idleSet.clear(int(id))
		}
	}
	if isPartialBusy := st == StateBusy && usedCores < c.topo.CoresPerNode; isPartialBusy != wasPartialBusy {
		if isPartialBusy {
			c.partialBusy.set(int(id))
		} else {
			c.partialBusy.clear(int(id))
		}
	}
	c.nodeWatts += c.draw(n) - before
	if n.reserved {
		c.reservedDraw += c.draw(n) - before
	}

	if isOff := st == StateOff; isOff != wasOff {
		ch := c.topo.ChassisOf(id)
		if isOff {
			c.offPerChassis[ch]++
		} else {
			c.offPerChassis[ch]--
		}
		full := c.offPerChassis[ch] == c.topo.NodesPerChassis
		if full != c.fullOffChassis[ch] {
			c.fullOffChassis[ch] = full
			r := c.topo.RackOf(id)
			if full {
				c.nFullOffChassis++
				c.offChassisCount[r]++
			} else {
				c.nFullOffChassis--
				c.offChassisCount[r]--
			}
			rackFull := c.offChassisCount[r] == c.topo.ChassisPerRack
			if rackFull != c.fullOffRack[r] {
				c.fullOffRack[r] = rackFull
				if rackFull {
					c.nFullOffRacks++
				} else {
					c.nFullOffRacks--
				}
			}
		}
	}
}

// PowerOff switches an idle node off. Busy nodes cannot be switched off;
// already-off nodes are a no-op.
func (c *Cluster) PowerOff(id NodeID) error {
	if err := c.checkID(id); err != nil {
		return err
	}
	switch c.nodes[id].state {
	case StateOff:
		return nil
	case StateBusy:
		return fmt.Errorf("cluster: cannot power off busy node %d", id)
	}
	c.transition(id, StateOff, 0, 0)
	return nil
}

// PowerOn brings an off node back to idle. Powered nodes are a no-op.
func (c *Cluster) PowerOn(id NodeID) error {
	if err := c.checkID(id); err != nil {
		return err
	}
	if c.nodes[id].state != StateOff {
		return nil
	}
	c.transition(id, StateIdle, 0, 0)
	return nil
}

// Occupy allocates cores of a node to a job running at frequency f. The
// node must be powered on and have enough free cores. While several jobs
// share a node the node is charged at the highest frequency among them
// (conservative, mirroring the paper's node-level power accounting).
func (c *Cluster) Occupy(id NodeID, cores int, f dvfs.Freq) error {
	if err := c.checkID(id); err != nil {
		return err
	}
	if cores <= 0 {
		return fmt.Errorf("cluster: occupy with non-positive cores %d", cores)
	}
	n := &c.nodes[id]
	if n.state == StateOff {
		return fmt.Errorf("cluster: node %d is off", id)
	}
	if n.usedCores+cores > c.topo.CoresPerNode {
		return fmt.Errorf("cluster: node %d has %d cores free, need %d",
			id, c.topo.CoresPerNode-n.usedCores, cores)
	}
	if f == 0 {
		f = c.profile.Nominal()
	}
	nf := n.freq
	if n.state != StateBusy || f > nf {
		if n.state != StateBusy {
			nf = f
		} else if f > nf {
			nf = f
		}
	}
	c.transition(id, StateBusy, nf, n.usedCores+cores)
	return nil
}

// Vacate releases cores of a busy node. remainingFreq must be the highest
// frequency among the jobs still on the node (the controller knows them);
// it is ignored when the node becomes empty.
func (c *Cluster) Vacate(id NodeID, cores int, remainingFreq dvfs.Freq) error {
	if err := c.checkID(id); err != nil {
		return err
	}
	n := &c.nodes[id]
	if n.state != StateBusy {
		return fmt.Errorf("cluster: vacate on non-busy node %d (%v)", id, n.state)
	}
	if cores <= 0 || cores > n.usedCores {
		return fmt.Errorf("cluster: vacate %d cores from node %d holding %d", cores, id, n.usedCores)
	}
	left := n.usedCores - cores
	if left == 0 {
		c.transition(id, StateIdle, 0, 0)
		return nil
	}
	if remainingFreq == 0 {
		remainingFreq = c.profile.Nominal()
	}
	c.transition(id, StateBusy, remainingFreq, left)
	return nil
}

// SetFreq changes the charged frequency of a busy node without touching
// its allocation — the dynamic-DVFS extension re-clocks running jobs and
// re-derives each node's frequency from the jobs it hosts.
func (c *Cluster) SetFreq(id NodeID, f dvfs.Freq) error {
	if err := c.checkID(id); err != nil {
		return err
	}
	n := &c.nodes[id]
	if n.state != StateBusy {
		return fmt.Errorf("cluster: SetFreq on non-busy node %d (%v)", id, n.state)
	}
	if f == 0 {
		f = c.profile.Nominal()
	}
	if f == n.freq {
		return nil
	}
	c.transition(id, StateBusy, f, n.usedCores)
	return nil
}

// SetReserved flags or unflags a node as earmarked by a switch-off
// reservation; this affects only scheduling eligibility, not power.
func (c *Cluster) SetReserved(id NodeID, v bool) error {
	if err := c.checkID(id); err != nil {
		return err
	}
	n := &c.nodes[id]
	if n.reserved != v {
		n.reserved = v
		margin := c.draw(n) - float64(c.profile.Down())
		if v {
			c.reservedOff++
			c.reservedDraw += margin
		} else {
			c.reservedOff--
			c.reservedDraw -= margin
		}
	}
	return nil
}

// ReservedOnWatts returns the power the pending switch-off reservations
// will still shed: the sum over reserved nodes of their current draw
// minus the switched-off draw (zero for reserved nodes already off).
// The online algorithm subtracts this from the current power when
// checking a job against a future powercap window — the planned shutdown
// has not happened yet, but it will have by the time the window opens.
// Group bonuses are not projected (conservative).
func (c *Cluster) ReservedOnWatts() power.Watts { return power.Watts(c.reservedDraw) }

// ReservedCount returns how many nodes carry the reservation flag.
func (c *Cluster) ReservedCount() int { return c.reservedOff }

// Info returns a read-only snapshot of one node.
func (c *Cluster) Info(id NodeID) (NodeInfo, error) {
	if err := c.checkID(id); err != nil {
		return NodeInfo{}, err
	}
	n := &c.nodes[id]
	return NodeInfo{ID: id, State: n.state, Freq: n.freq, UsedCores: n.usedCores, Reserved: n.reserved}, nil
}

// State returns the state of node id; out-of-range IDs report StateOff.
func (c *Cluster) State(id NodeID) NodeState {
	if c.checkID(id) != nil {
		return StateOff
	}
	return c.nodes[id].state
}

// FreeCores returns the unallocated cores of node id (0 when off).
func (c *Cluster) FreeCores(id NodeID) int {
	if c.checkID(id) != nil {
		return 0
	}
	n := &c.nodes[id]
	if n.state == StateOff {
		return 0
	}
	return c.topo.CoresPerNode - n.usedCores
}

// Reserved reports the switch-off reservation flag of node id.
func (c *Cluster) Reserved(id NodeID) bool {
	if c.checkID(id) != nil {
		return false
	}
	return c.nodes[id].reserved
}

// Count returns the number of nodes in state st.
func (c *Cluster) Count(st NodeState) int {
	if st < 0 || int(st) >= len(c.counts) {
		return 0
	}
	return c.counts[st]
}

// BusyCores returns the total allocated core count.
func (c *Cluster) BusyCores() int { return c.busyCores }

// CoresByFreq returns a copy of the allocated-cores histogram keyed by the
// node frequency they are charged at (the Figure 6/7 core series).
func (c *Cluster) CoresByFreq() map[dvfs.Freq]int {
	out := make(map[dvfs.Freq]int, len(c.coresByFreq))
	for f, n := range c.coresByFreq {
		out[f] = n
	}
	return out
}

// Power returns the instantaneous cluster draw: per-node draws plus the
// shared chassis/rack equipment, minus the bonuses of fully-off groups.
// When a whole chassis is off its equipment and its nodes' BMCs stop
// drawing (Figure 2: 248 W + 18x14 W = 500 W bonus); a fully-off rack
// additionally sheds its 900 W of fans and cold-door equipment.
func (c *Cluster) Power() power.Watts {
	w := c.nodeWatts
	w += c.overhead.ChassisWatts * float64(c.topo.Chassis())
	w += c.overhead.RackWatts * float64(c.topo.Racks)
	w -= float64(c.nFullOffChassis) * (c.overhead.ChassisWatts +
		float64(c.profile.Down())*float64(c.topo.NodesPerChassis))
	w -= float64(c.nFullOffRacks) * c.overhead.RackWatts
	return power.Watts(w)
}

// MaxPower returns the draw with every node busy at nominal frequency —
// the reference against which powercap percentages are expressed.
func (c *Cluster) MaxPower() power.Watts { return c.maxPowerOnce }

// IdlePower returns the draw with every node powered on and idle.
func (c *Cluster) IdlePower() power.Watts {
	return power.Watts(float64(c.profile.Idle())*float64(c.topo.Nodes()) +
		c.overhead.ChassisWatts*float64(c.topo.Chassis()) +
		c.overhead.RackWatts*float64(c.topo.Racks))
}

// OccupyDelta returns the extra draw caused by occupying the given nodes
// with a job at frequency f, without mutating anything. Nodes already busy
// at a frequency >= f add nothing (the paper: jobs filling partially used
// nodes "always pass the powercapping criteria"); idle nodes add
// busy(f)-idle; busy nodes below f add the frequency uplift. Off nodes are
// rejected by Occupy later, but contribute busy(f)-down here so callers
// probing them see the true cost of powering on.
func (c *Cluster) OccupyDelta(ids []NodeID, f dvfs.Freq) power.Watts {
	if f == 0 {
		f = c.profile.Nominal()
	}
	target := float64(c.profile.Busy(f))
	var d float64
	for _, id := range ids {
		if c.checkID(id) != nil {
			continue
		}
		n := &c.nodes[id]
		switch n.state {
		case StateIdle:
			d += target - float64(c.profile.Idle())
		case StateOff:
			d += target - float64(c.profile.Down())
		default:
			if n.freq < f {
				d += target - float64(c.profile.Busy(n.freq))
			}
		}
	}
	return power.Watts(d)
}

// FullyOffChassis returns how many chassis currently enjoy the full
// switch-off bonus.
func (c *Cluster) FullyOffChassis() int { return c.nFullOffChassis }

// FullyOffRacks returns how many racks currently enjoy the full switch-off
// bonus.
func (c *Cluster) FullyOffRacks() int { return c.nFullOffRacks }

// BonusWatts returns the power currently saved by group bonuses beyond the
// per-node off savings: eliminated BMC draw and shared equipment of
// fully-off chassis plus eliminated rack equipment of fully-off racks.
func (c *Cluster) BonusWatts() power.Watts {
	w := float64(c.nFullOffChassis) * (c.overhead.ChassisWatts +
		float64(c.profile.Down())*float64(c.topo.NodesPerChassis))
	w += float64(c.nFullOffRacks) * c.overhead.RackWatts
	return power.Watts(w)
}

// ForEachBusyFree calls fn in ascending ID order for every busy node
// with at least one free core, passing the free-core count. fn
// returning false stops the walk; fn must not mutate the cluster.
// This walks the maintained candidate index, so a full machine costs
// nothing to scan — the allocation hot path of the scheduling pass.
func (c *Cluster) ForEachBusyFree(fn func(id NodeID, free int) bool) {
	per := c.topo.CoresPerNode
	c.partialBusy.forEach(func(i int) bool {
		return fn(NodeID(i), per-c.nodes[i].usedCores)
	})
}

// ForEachIdle calls fn in ascending ID order for every idle node (all
// cores free). fn returning false stops the walk; fn must not mutate
// the cluster.
func (c *Cluster) ForEachIdle(fn func(id NodeID) bool) {
	c.idleSet.forEach(func(i int) bool {
		return fn(NodeID(i))
	})
}

// ForEach calls fn for every node in ID order; fn returning false stops the
// walk.
func (c *Cluster) ForEach(fn func(NodeInfo) bool) {
	for i := range c.nodes {
		n := &c.nodes[i]
		if !fn(NodeInfo{ID: NodeID(i), State: n.state, Freq: n.freq, UsedCores: n.usedCores, Reserved: n.reserved}) {
			return
		}
	}
}
