package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestFlagVsSpecBitIdentical is the acceptance criterion end to end:
// dump the spec a flag invocation describes, run both the flag path
// and the -spec path through the real CLI entry point, and require the
// JSON exports to match byte for byte (single-run exports carry no
// timing fields).
func TestFlagVsSpecBitIdentical(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "run.json")
	jsonA := filepath.Join(dir, "a.json")
	jsonB := filepath.Join(dir, "b.json")
	flags := []string{"-kind", "smalljob", "-seed", "1002", "-racks", "2", "-policy", "SHUT", "-cap", "0.6"}

	if err := run(append(flags, "-dumpspec", specPath), io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(append(flags, "-json", jsonA), io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", specPath, "-json", jsonB}, io.Discard); err != nil {
		t.Fatal(err)
	}

	a, err := os.ReadFile(jsonA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(jsonB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("flag-driven and spec-driven exports differ:\nflags: %s\nspec:  %s", a, b)
	}
}

// TestFlagVsSpecSweepFingerprint covers the sweep mode: the spec built
// from flags and the same spec round-tripped through its JSON encoding
// must produce identical result fingerprints (timing excluded — it is
// the only thing allowed to vary).
func TestFlagVsSpecSweepFingerprint(t *testing.T) {
	fromFlags, err := specFromFlags("smalljob", "SHUT,DVFS", "0,0.6", 2, 1002,
		false, false, 0, 0, false, 2, "", "", 0, 0, 0, false, "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fromFlags.Normalize().EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := sim.DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	repA, err := sim.Run(context.Background(), fromFlags)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := sim.Run(context.Background(), fromJSON)
	if err != nil {
		t.Fatal(err)
	}
	fpA, err := repA.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := repB.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpA != fpB {
		t.Errorf("flag-built vs JSON-loaded sweep fingerprints differ: %s vs %s", fpA, fpB)
	}
}

// TestSpecFromFlagsFederation pins the federate flag translation.
func TestSpecFromFlagsFederation(t *testing.T) {
	spec, err := specFromFlags("medianjob", "SHUT", "0.5,0.6", 2, 1001,
		false, false, 0, 0, false, 0, "", "", 0, 0, 0, true, "2,3", "prorata,demand", 600)
	if err != nil {
		t.Fatal(err)
	}
	if spec.EffectiveMode() != sim.ModeFederation {
		t.Fatalf("mode = %q, want federation", spec.EffectiveMode())
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	scens, err := spec.FederationScenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 2*2*2 {
		t.Errorf("expanded %d federations, want 8", len(scens))
	}
	if scens[0].EpochSec != 600 {
		t.Errorf("epoch = %d, want 600", scens[0].EpochSec)
	}
}

// TestUnknownNamesEnumerate: the CLI surfaces registry-derived errors.
func TestUnknownNamesEnumerate(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-kind", "mystery"}, &out)
	if err == nil {
		t.Fatal("unknown kind ran")
	}
	if !strings.Contains(err.Error(), "medianjob|smalljob|bigjob|24h|diurnal|bursty|heavytail") {
		t.Errorf("error %q does not enumerate registered kinds", err)
	}
}
