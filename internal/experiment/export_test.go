package experiment

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/replay"
	"repro/internal/trace"
)

// goldenTable is a hand-assembled sweep (one clean cell, one failed
// cell) with fixed timings, so the export formats can be golden-tested
// byte for byte.
func goldenTable() Table {
	sum := metrics.Summary{
		Start: 0, End: 3600,
		EnergyJ: 3.6e6, WorkCoreSec: 1.8e6,
		PeakPower: 1200, MeanPower: 1000,
		JobsSubmitted: 40, JobsLaunched: 30, JobsCompleted: 28, JobsKilled: 2,
		Rescales: 3, MeanWaitSec: 45.5, MeanBSLD: 1.25, MaxBSLD: 4,
		NormEnergy: 0.5, NormWork: 0.25, NormLaunched: 0.75,
	}
	return Table{
		Name:    "golden",
		Workers: 2,
		Elapsed: 4 * time.Millisecond,
		Rows: []Result{
			{
				Index:   0,
				Elapsed: 1500 * time.Microsecond,
				Result: replay.Result{
					Scenario: replay.Scenario{
						Name:     "smalljob/40%/MIX",
						Workload: trace.Config{Kind: trace.SmallJob, Seed: 7},
						Policy:   core.PolicyMix, CapFraction: 0.4, ScaleRacks: 2,
					},
					Cores:   2880,
					Summary: sum,
					Plan:    core.OfflinePlan{OffNodes: []cluster.NodeID{4, 5, 6}},
				},
			},
			{
				Index:   1,
				Elapsed: 500 * time.Microsecond,
				Result: replay.Result{
					Scenario: replay.Scenario{
						Name:     "bigjob/60%/SHUT",
						Workload: trace.Config{Kind: trace.BigJob, Seed: 7},
						Policy:   core.PolicyShut, CapFraction: 0.6, ScaleRacks: 2,
					},
					Err: errors.New("boom"),
				},
			},
		},
	}
}

const goldenCSV = `index,name,workload,policy,cap_fraction,racks,cores,energy_j,work_core_sec,peak_power_w,mean_power_w,jobs_submitted,jobs_launched,jobs_completed,jobs_killed,rescales,mean_wait_sec,mean_bsld,norm_energy,norm_work,norm_launched,plan_off_nodes,elapsed_ms,error
0,smalljob/40%/MIX,smalljob,MIX,0.4,2,2880,3600000,1800000,1200,1000,40,30,28,2,3,45.5,1.25,0.5,0.25,0.75,3,1.5,
1,bigjob/60%/SHUT,bigjob,SHUT,0.6,2,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0.5,boom
`

const goldenJSON = `{
  "name": "golden",
  "cells": 2,
  "workers": 2,
  "elapsed_ms": 4,
  "serial_cost_ms": 2,
  "speedup": 0.5,
  "rows": [
    {
      "index": 0,
      "name": "smalljob/40%/MIX",
      "workload": "smalljob",
      "policy": "MIX",
      "cap_fraction": 0.4,
      "racks": 2,
      "cores": 2880,
      "energy_j": 3600000,
      "work_core_sec": 1800000,
      "peak_power_w": 1200,
      "mean_power_w": 1000,
      "jobs_submitted": 40,
      "jobs_launched": 30,
      "jobs_completed": 28,
      "jobs_killed": 2,
      "rescales": 3,
      "mean_wait_sec": 45.5,
      "mean_bsld": 1.25,
      "norm_energy": 0.5,
      "norm_work": 0.25,
      "norm_launched": 0.75,
      "plan_off_nodes": 3,
      "elapsed_ms": 1.5
    },
    {
      "index": 1,
      "name": "bigjob/60%/SHUT",
      "workload": "bigjob",
      "policy": "SHUT",
      "cap_fraction": 0.6,
      "racks": 2,
      "cores": 0,
      "energy_j": 0,
      "work_core_sec": 0,
      "peak_power_w": 0,
      "mean_power_w": 0,
      "jobs_submitted": 0,
      "jobs_launched": 0,
      "jobs_completed": 0,
      "jobs_killed": 0,
      "rescales": 0,
      "mean_wait_sec": 0,
      "mean_bsld": 0,
      "norm_energy": 0,
      "norm_work": 0,
      "norm_launched": 0,
      "plan_off_nodes": 0,
      "elapsed_ms": 0.5,
      "error": "boom"
    }
  ]
}
`

func TestWriteCSVGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenTable().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenCSV {
		t.Fatalf("CSV mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), goldenCSV)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenTable().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenJSON {
		t.Fatalf("JSON mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), goldenJSON)
	}
}

// TestFingerprintIgnoresTiming: the fingerprint covers the metrics, not
// the wall-clock fields, so re-timed runs of the same sweep match.
func TestFingerprintIgnoresTiming(t *testing.T) {
	a := goldenTable()
	b := goldenTable()
	b.Elapsed = 99 * time.Second
	b.Workers = 7
	for i := range b.Rows {
		b.Rows[i].Elapsed = time.Duration(i+1) * time.Second
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint changed with timing-only differences")
	}
	// ...but it does cover the metrics.
	b.Rows[0].Summary.EnergyJ++
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint blind to metric change")
	}
	// And it is order-insensitive on hand-built tables (sorts by Index).
	c := goldenTable()
	c.Rows[0], c.Rows[1] = c.Rows[1], c.Rows[0]
	if a.Fingerprint() != c.Fingerprint() {
		t.Fatal("fingerprint depends on row storage order")
	}
}
