// Command tracegen synthesizes workload intervals in the Standard
// Workload Format, and windows, rescales and summarizes existing SWF
// traces through the streaming trace pipeline — every trace operation
// runs in bounded memory, so Parallel Workloads Archive traces of any
// size are fair game.
//
// Usage:
//
//	tracegen [gen] -kind medianjob -seed 1001 [-cores 80640] [-load 2.0] \
//	         [-o trace.swf]
//	tracegen window -in trace.swf -start 3600 -end 21600 [-o out.swf]
//	tracegen rescale -in trace.swf [-time 0.5] [-cores 80640:5760] \
//	         [-max 100000] [-o out.swf]
//	tracegen summarize trace.swf
//
// Kinds cover the paper's four Curie intervals (medianjob, smalljob,
// bigjob, 24h) plus the extended scenario library (diurnal, bursty,
// heavytail).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/trace"
)

func main() {
	args := os.Args[1:]
	cmd := "gen"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd = args[0]
		args = args[1:]
	}
	switch cmd {
	case "gen":
		runGen(args)
	case "window":
		runWindow(args)
	case "rescale":
		runRescale(args)
	case "summarize":
		runSummarize(args)
	default:
		fail(fmt.Errorf("tracegen: unknown subcommand %q (want gen, window, rescale or summarize)", cmd))
	}
}

func runGen(args []string) {
	fs := flag.NewFlagSet("tracegen gen", flag.ExitOnError)
	var (
		kind    = fs.String("kind", "medianjob", "interval kind: medianjob|smalljob|bigjob|24h|diurnal|bursty|heavytail")
		seed    = fs.Int64("seed", 1001, "generator seed")
		cores   = fs.Int("cores", 80640, "machine core count")
		load    = fs.Float64("load", 2.0, "submitted work / machine capacity")
		out     = fs.String("o", "", "output file (default stdout)")
		summary = fs.String("summarize", "", "summarize an existing SWF file instead of generating")
	)
	fs.Parse(args)

	if *summary != "" { // legacy spelling of the summarize subcommand
		summarizeFile(*summary)
		return
	}

	k, err := trace.ParseKind(*kind)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := trace.Config{Kind: k, Seed: *seed, Cores: *cores, LoadFactor: *load}
	jobs, err := trace.Generate(cfg)
	if err != nil {
		fail(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	comment := fmt.Sprintf("synthetic Curie-like %s interval, seed %d, %d cores, load %.2f",
		k, *seed, *cores, *load)
	if err := trace.WriteSWF(w, jobs, comment); err != nil {
		fail(err)
	}
	printStats(os.Stderr, trace.Summarize(jobs, int64(*cores)*3600))
}

// runWindow streams -in through a submit-time window onto -o: reading,
// filtering and writing overlap, so windowing a million-job archive
// trace holds one record in memory.
func runWindow(args []string) {
	fs := flag.NewFlagSet("tracegen window", flag.ExitOnError)
	var (
		in    = fs.String("in", "", "input SWF trace (required)")
		start = fs.Int64("start", 0, "window start, submit seconds")
		end   = fs.Int64("end", 0, "window end, submit seconds (exclusive; 0 = end of trace)")
		out   = fs.String("o", "", "output file (default stdout)")
	)
	fs.Parse(args)
	if *in == "" || *start < 0 || (*end != 0 && *end <= *start) || (*start == 0 && *end == 0) {
		fail(fmt.Errorf("tracegen window: need -in and a non-empty [-start, -end) window (-end 0 = to end of trace)"))
	}
	src := trace.SWFSource{Path: *in, WindowStart: *start, WindowEnd: *end}
	endLabel := "end"
	if *end != 0 {
		endLabel = strconv.FormatInt(*end, 10)
	}
	comment := fmt.Sprintf("window [%d, %s) of %s, re-based to t=0", *start, endLabel, *in)
	pipe(src, *out, comment)
}

// runRescale streams -in through arrival-rate and/or cluster-size
// rescaling onto -o.
func runRescale(args []string) {
	fs := flag.NewFlagSet("tracegen rescale", flag.ExitOnError)
	var (
		in      = fs.String("in", "", "input SWF trace (required)")
		timeSc  = fs.Float64("time", 0, "multiply submit times by this factor (0.5 = double the arrival rate)")
		coresSc = fs.String("cores", "", "rescale job widths FROM:TO cores, e.g. 80640:5760")
		maxJobs = fs.Int("max", 0, "keep at most this many jobs (0 = all)")
		out     = fs.String("o", "", "output file (default stdout)")
	)
	fs.Parse(args)
	if *in == "" {
		fail(fmt.Errorf("tracegen rescale: need -in"))
	}
	if *maxJobs < 0 {
		fail(fmt.Errorf("tracegen rescale: negative -max %d", *maxJobs))
	}
	src := trace.SWFSource{Path: *in, TimeScale: *timeSc, MaxJobs: *maxJobs}
	if *coresSc != "" {
		from, to, err := parseCores(*coresSc)
		if err != nil {
			fail(err)
		}
		src.CoresFrom, src.CoresTo = from, to
	}
	// Mirror the transform chain's no-op conditions, so the command never
	// writes an unmodified copy labeled as rescaled.
	if (*timeSc == 0 || *timeSc == 1) && src.CoresFrom == src.CoresTo && *maxJobs == 0 {
		fail(fmt.Errorf("tracegen rescale: nothing to do (pass -time != 1, -cores FROM:TO with FROM != TO, and/or -max)"))
	}
	comment := fmt.Sprintf("rescaled from %s (time x%v, cores %s, max %d)", *in, *timeSc, *coresSc, *maxJobs)
	pipe(src, *out, comment)
}

func runSummarize(args []string) {
	if len(args) != 1 || strings.HasPrefix(args[0], "-") {
		fail(fmt.Errorf("usage: tracegen summarize trace.swf"))
	}
	summarizeFile(args[0])
}

// pipe streams src into an SWF writer at path (stdout when empty).
func pipe(src trace.SWFSource, path, comment string) {
	fs, err := src.Open()
	if err != nil {
		fail(err)
	}
	defer fs.Close()
	var w io.Writer = os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	n, err := trace.Copy(trace.NewWriter(w, comment), fs)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "%d jobs written\n", n)
}

// summarizeFile characterizes a trace through the streaming summarizer,
// so traces of any size summarize in bounded memory.
func summarizeFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	s, err := trace.SummarizeStream(trace.NewScanner(f), 80640*3600)
	if err != nil {
		fail(err)
	}
	printStats(os.Stdout, s)
}

func printStats(w *os.File, s trace.Stats) {
	fmt.Fprintf(w, "jobs: %d (distinct users %d, backlog at t=0: %d)\n",
		s.Jobs, s.DistinctUsers, s.BacklogAtuZero)
	fmt.Fprintf(w, "total work: %d core-seconds, widest job %d cores\n", s.TotalCoreSec, s.MaxCores)
	fmt.Fprintf(w, "small&short fraction: %.1f%%   huge fraction: %.2f%%\n",
		100*s.SmallShort, 100*s.Huge)
	fmt.Fprintf(w, "walltime overestimation: median %.0fx, mean %.0fx\n",
		s.MedianOverEst, s.MeanOverEst)
	fmt.Fprintf(w, "submission horizon: %d s\n", s.HorizonSec)
}

func parseCores(s string) (from, to int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("tracegen: -cores wants FROM:TO, got %q", s)
	}
	from, err = strconv.Atoi(parts[0])
	if err == nil {
		to, err = strconv.Atoi(parts[1])
	}
	if err != nil || from <= 0 || to <= 0 {
		return 0, 0, fmt.Errorf("tracegen: bad -cores %q", s)
	}
	return from, to, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
