package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// EnvelopeVersion is the current archive-envelope format version.
// Decoders reject versions they do not know — an archive written by a
// future format is an error, never a silently misread file.
const EnvelopeVersion = 1

// maxEnvelopeBytes bounds a decoded envelope. Archive files are written
// by the service itself and top out well under this; the bound keeps a
// corrupt or hostile file from ballooning memory during decode.
const maxEnvelopeBytes = 64 << 20

// Envelope is the versioned on-disk form of one archived run: the
// normalized spec with its content address, plus the layers above's
// payloads carried opaquely — the service stores its run metadata in
// Meta and a tsdb telemetry snapshot in Telemetry without this package
// knowing either schema. Renders holds the sink-pipeline encodings of
// the run's report keyed by sink name ("json", "csv", "ascii"): reports
// embed live engine state and do not round-trip through JSON, so the
// archive persists what every consumer actually reads — the rendered
// forms — and a restored run serves them byte-identically.
type Envelope struct {
	Version  int     `json:"version"`
	SpecHash string  `json:"spec_hash"`
	Spec     RunSpec `json:"spec"`
	// Renders maps sink names to the report rendered through that sink.
	Renders map[string][]byte `json:"renders,omitempty"`
	// Meta is the archiving layer's run metadata, opaque here.
	Meta json.RawMessage `json:"meta,omitempty"`
	// Telemetry is the run's downsampled telemetry snapshot, opaque
	// here.
	Telemetry json.RawMessage `json:"telemetry,omitempty"`
}

// NewEnvelope stamps the current version and the spec's content address
// onto an envelope for the given spec.
func NewEnvelope(spec RunSpec) (Envelope, error) {
	hash, err := SpecHash(spec)
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{Version: EnvelopeVersion, SpecHash: hash, Spec: spec}, nil
}

// Encode writes the envelope as indented JSON after checking it is
// well-formed (known version, spec hash matching the spec) — a bad
// envelope must fail at write time, not poison the archive for every
// later reader.
func (e Envelope) Encode(w io.Writer) error {
	if err := e.check(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// DecodeEnvelope reads one envelope from r, verifying version and
// content address. Corrupt, truncated or tampered input returns an
// error; the decoder never panics (the archive fuzz target pins this).
// The spec-hash check recomputes the address from the decoded spec, so
// an envelope whose spec was edited in place no longer matches its
// claimed hash and is rejected — the archive's integrity seal.
func DecodeEnvelope(r io.Reader) (Envelope, error) {
	var e Envelope
	dec := json.NewDecoder(io.LimitReader(r, maxEnvelopeBytes))
	if err := dec.Decode(&e); err != nil {
		return Envelope{}, fmt.Errorf("sim: decoding archive envelope: %w", err)
	}
	if err := e.check(); err != nil {
		return Envelope{}, err
	}
	return e, nil
}

// check validates the envelope's seal: version and content address.
func (e Envelope) check() error {
	if e.Version != EnvelopeVersion {
		return fmt.Errorf("sim: archive envelope version %d, this build reads %d", e.Version, EnvelopeVersion)
	}
	hash, err := SpecHash(e.Spec)
	if err != nil {
		return fmt.Errorf("sim: archive envelope spec does not hash: %w", err)
	}
	if e.SpecHash != hash {
		return fmt.Errorf("sim: archive envelope spec_hash %.12s does not match its spec (%.12s): corrupt or edited archive", e.SpecHash, hash)
	}
	return nil
}
