package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden-file tests for the analytic-model CLI: the Section III solver
// is pure arithmetic, so its renderings are bit-stable and any drift —
// a changed criterion, a float formatting change — fails tier-1.
//
// Regenerate after an intentional change with:
//
//	go test ./cmd/powercalc -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its golden file (run with -update if intentional)\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestGoldenDefaultPoint(t *testing.T) {
	var out bytes.Buffer
	if code, err := run(nil, &out); err != nil {
		t.Fatalf("run: %v (code %d)", err, code)
	}
	checkGolden(t, "default_point", out.Bytes())
}

func TestGoldenLowCap(t *testing.T) {
	var out bytes.Buffer
	if code, err := run([]string{"-lambda", "0.3"}, &out); err != nil {
		t.Fatalf("run: %v (code %d)", err, code)
	}
	checkGolden(t, "lambda_030", out.Bytes())
}

func TestGoldenSweep(t *testing.T) {
	var out bytes.Buffer
	if code, err := run([]string{"-sweep"}, &out); err != nil {
		t.Fatalf("run: %v (code %d)", err, code)
	}
	checkGolden(t, "sweep", out.Bytes())
}

func TestBadParamsExitCode(t *testing.T) {
	code, err := run([]string{"-n", "-1"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("negative node count accepted")
	}
	if code != 2 {
		t.Errorf("bad-parameter exit code = %d, want 2", code)
	}
}

func TestInfeasibleCapExitCode(t *testing.T) {
	// A cap below N*Poff cannot be met even with everything off.
	code, err := run([]string{"-cap", "1"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("infeasible cap accepted")
	}
	if code != 1 {
		t.Errorf("infeasible-cap exit code = %d, want 1", code)
	}
}
