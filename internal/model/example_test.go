package model_test

import (
	"fmt"

	"repro/internal/model"
)

// The Section III analysis on the Curie constants: a 40% powercap sits
// below lambda_min = Pmin/Pmax, so DVFS alone cannot reach it and the
// model combines both mechanisms.
func Example() {
	p := model.CurieParams(5040)
	plan, err := model.SolveFraction(p, 0.4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("case: %v\n", plan.Case)
	fmt.Printf("switch off %d nodes, run %d at minimum frequency\n", plan.IntNOff, plan.IntNDvfs)
	fmt.Printf("surviving work: %.0f node-units of %d\n", plan.Work, p.N)
	// Output:
	// case: both-mechanisms
	// switch off 1403 nodes, run 3637 at minimum frequency
	// surviving work: 2232 node-units of 5040
}
