package replay

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/signal"
	"repro/internal/trace"
)

// SweepScenarios expands a sweep grid: the cross product of workloads x
// cap fractions x policies, one Scenario per cell. base supplies the
// machine scale and every ablation/option field; Name, Workload, Policy
// and CapFraction are filled in per cell. Cap fractions outside (0, 1)
// denote the uncapped baseline and collapse to a single PolicyNone cell
// per workload (policy choice is irrelevant without a cap). When the
// same workload kind appears more than once (seed or duration
// replicates), cell names carry the seed ("smalljob#2/...") so rows
// stay tellable apart. The cell order is deterministic — workloads
// outermost, then caps, then policies — so a sweep's result table is
// comparable across runs and worker counts. internal/experiment builds
// its grids through this function.
func SweepScenarios(base Scenario, workloads []trace.Config, fracs []float64, policies []core.Policy) []Scenario {
	kindCount := map[trace.Kind]int{}
	for _, wl := range workloads {
		kindCount[wl.Kind]++
	}
	var out []Scenario
	for _, wl := range workloads {
		label := wl.Kind.String()
		if kindCount[wl.Kind] > 1 {
			label = fmt.Sprintf("%s#%d", wl.Kind, wl.Seed)
		}
		baselineDone := false
		for _, frac := range fracs {
			if frac <= 0 || frac >= 1 {
				if baselineDone {
					continue
				}
				baselineDone = true
				s := base
				s.Workload = wl
				s.Policy = core.PolicyNone
				s.CapFraction = 0
				s.Name = fmt.Sprintf("%s/100%%/None", label)
				out = append(out, s)
				continue
			}
			for _, p := range policies {
				s := base
				s.Workload = wl
				s.Policy = p
				s.CapFraction = frac
				s.Name = fmt.Sprintf("%s/%d%%/%s", label, int(frac*100+0.5), p)
				out = append(out, s)
			}
		}
	}
	return out
}

// LibraryScenarios sweeps the extended workload library — the paper's
// four intervals plus the diurnal, bursty and heavy-tailed patterns —
// across the uncapped baseline and the {60%, 40%} x {SHUT, DVFS, MIX}
// grid, the scenario-diversity counterpart of the Figure 8 sweep.
func LibraryScenarios(scaleRacks int) []Scenario {
	return SweepScenarios(
		Scenario{ScaleRacks: scaleRacks},
		trace.LibraryWorkloads(),
		[]float64{0, 0.6, 0.4},
		[]core.Policy{core.PolicyShut, core.PolicyDvfs, core.PolicyMix},
	)
}

// FromSWF builds a scenario replaying an SWF trace file through the
// streaming pipeline: src configures the file plus its window/rescale
// transform chain, durationSec bounds the replayed interval (0 means the
// kind default of 5 h). The trace streams into the controller lazily, so
// trace length does not bound memory.
func FromSWF(name string, src trace.SWFSource, policy core.Policy, capFraction float64, durationSec int64) Scenario {
	return Scenario{
		Name:        name,
		Workload:    trace.Config{DurationSec: durationSec},
		Policy:      policy,
		CapFraction: capFraction,
		SWF:         &src,
	}
}

// Division selects how the federation broker splits the global site
// budget across member clusters at redistribution boundaries.
type Division int

const (
	// DivideProRata splits the global budget statically, in proportion
	// to each member's maximum draw — the budget a member would get if
	// it were the whole site scaled down.
	DivideProRata Division = iota
	// DivideDemand starts from the pro-rata split and, at every epoch
	// boundary, moves the launch headroom of idle members (no queued
	// jobs) to backlogged ones, never cutting a member below its
	// current draw. While the fleet's summed draw fits the budget the
	// member caps sum to at most the global budget (exactly, unless
	// every machine saturates); when even the irreducible draws exceed
	// it, shares pin at the draws.
	DivideDemand
)

// String implements fmt.Stringer ("prorata" / "demand").
func (d Division) String() string {
	switch d {
	case DivideProRata:
		return "prorata"
	case DivideDemand:
		return "demand"
	default:
		return fmt.Sprintf("Division(%d)", int(d))
	}
}

// Divisions is the budget-division registry. The two broker policies
// self-register below; ParseDivision, flag help and the sim facade all
// read this, so a new division shows up everywhere at once.
var Divisions = registry.New[Division]("division policy")

func init() {
	Divisions.Register("prorata", DivideProRata, "static split in proportion to member max draw", "static")
	Divisions.Register("demand", DivideDemand, "move idle members' headroom to backlogged ones each epoch", "dynamic")
}

// ParseDivision parses a division-policy name — a registry lookup, so
// unknown-name errors enumerate what is registered.
func ParseDivision(s string) (Division, error) {
	d, err := Divisions.Lookup(s)
	if err != nil {
		return 0, fmt.Errorf("replay: %w", err)
	}
	return d, nil
}

// FederationScenario is one cell of a federated multi-cluster
// experiment: N member clusters, each with its own workload, policy and
// machine scale, run in lockstep under a shared site power budget that
// a broker redistributes at epoch boundaries. internal/federation
// executes it; this package only defines the vocabulary, mirroring the
// Scenario/sweep split of the single-cluster path.
type FederationScenario struct {
	Name string
	// Members are the per-cluster scenarios. Their CapFraction and
	// window fields must be zero: the broker owns every member's
	// powercap (one open-ended reservation per member, re-budgeted at
	// each epoch). Workloads may be synthetic kinds or SWF streams.
	Members []Scenario
	// GlobalCapFraction is the site budget as a fraction of the summed
	// member maximum draws; must be in (0, 1).
	GlobalCapFraction float64
	// Division picks the redistribution policy.
	Division Division
	// EpochSec is the redistribution period; 0 means 900 s.
	EpochSec int64
	// DurationSec bounds the replayed interval; 0 means the longest
	// member workload duration.
	DurationSec int64
	// BudgetSignal, when non-nil, scales the global budget over time: at
	// every epoch boundary the broker multiplies the cap-fraction base
	// by the signal's value at that instant (clamped into [0, summed
	// member maxima]). Nil means the constant budget.
	BudgetSignal *signal.Spec
}

// DefaultFederationEpoch is the redistribution period used when
// EpochSec is zero: 15 minutes, the cadence of site-level power
// coordination (short against the one-hour reservation windows of the
// paper, long against the scheduler's per-event reactions).
const DefaultFederationEpoch = int64(900)

// Epoch returns the redistribution period.
func (f FederationScenario) Epoch() int64 {
	if f.EpochSec > 0 {
		return f.EpochSec
	}
	return DefaultFederationEpoch
}

// Duration returns the replayed interval length: DurationSec, or the
// longest member duration.
func (f FederationScenario) Duration() int64 {
	if f.DurationSec > 0 {
		return f.DurationSec
	}
	var max int64
	for _, m := range f.Members {
		if d := m.Duration(); d > max {
			max = d
		}
	}
	return max
}

// Validate reports structural problems a broker run would trip over.
func (f FederationScenario) Validate() error {
	if len(f.Members) == 0 {
		return fmt.Errorf("replay: federation %q has no members", f.Name)
	}
	if f.GlobalCapFraction <= 0 || f.GlobalCapFraction >= 1 {
		return fmt.Errorf("replay: federation %q global cap fraction %v outside (0, 1)",
			f.Name, f.GlobalCapFraction)
	}
	for i, m := range f.Members {
		if m.CapFraction != 0 || m.CapStart != 0 || m.CapDuration != 0 || m.OpenEnded {
			return fmt.Errorf("replay: federation %q member %d sets its own powercap; the broker owns member caps", f.Name, i)
		}
	}
	if f.EpochSec < 0 {
		return fmt.Errorf("replay: federation %q negative epoch %d", f.Name, f.EpochSec)
	}
	if f.BudgetSignal != nil {
		if err := f.BudgetSignal.Validate(); err != nil {
			return fmt.Errorf("replay: federation %q budget signal: %w", f.Name, err)
		}
	}
	return nil
}

// FederationMembers builds n member scenarios drawn from the workload
// scenario library: member 0 replays the bursty interval at eighty
// percent of its machine's capacity (heavily backlogged during each
// burst, drainable over the run), and the others cycle through lightly
// loaded median, small, heavy-tailed and big intervals — the
// asymmetric fleet (one busy cluster among quiet ones) that separates
// the division policies. Members run the DVFS policy so every node
// stays powered and a raised budget translates directly into launch
// headroom; seeds are fixed per slot so federations of the same size
// replay identically.
func FederationMembers(n, scaleRacks int) []Scenario {
	light := []trace.Kind{trace.MedianJob, trace.SmallJob, trace.HeavyTail, trace.BigJob}
	out := make([]Scenario, 0, n)
	for i := 0; i < n; i++ {
		wl := trace.Config{Kind: trace.Bursty, Seed: 2001, LoadFactor: 0.8}
		if i > 0 {
			wl = trace.Config{
				Kind: light[(i-1)%len(light)],
				Seed: 2001 + int64(i),
				// A quarter of the machine's capacity over the
				// interval: mostly idle, the donor side of the
				// demand-driven division.
				LoadFactor: 0.25,
			}
		}
		out = append(out, Scenario{
			Name:       fmt.Sprintf("member%d/%s", i, wl.Kind),
			Workload:   wl,
			Policy:     core.PolicyDvfs,
			ScaleRacks: scaleRacks,
		})
	}
	return out
}

// FederationLibraryScenario assembles the standard federated cell: n
// FederationMembers under a shared budget with the given division. The
// horizon is twice the member interval: submissions stop halfway and
// the backlog drains, so the bounded-slowdown comparison between
// division policies covers (nearly) every submitted job instead of
// censoring the stragglers a starved member never launched.
func FederationLibraryScenario(n, scaleRacks int, capFrac float64, div Division) FederationScenario {
	members := FederationMembers(n, scaleRacks)
	var horizon int64
	for _, m := range members {
		if d := m.Duration(); d*2 > horizon {
			horizon = d * 2
		}
	}
	return FederationScenario{
		Name:              fmt.Sprintf("fed%d/%d%%/%s", n, int(capFrac*100+0.5), div),
		Members:           members,
		GlobalCapFraction: capFrac,
		Division:          div,
		DurationSec:       horizon,
	}
}

// policies evaluated at each cap level in Figure 8. At 80% the paper only
// shows DVFS and SHUT; MIX joins at 60% and 40% (below its 75% combined
// threshold).
func policiesForCap(frac float64) []core.Policy {
	if frac >= 0.75 {
		return []core.Policy{core.PolicyDvfs, core.PolicyShut}
	}
	return []core.Policy{core.PolicyMix, core.PolicyDvfs, core.PolicyShut}
}

// Fig8Scenarios builds the full Figure 8 grid: for each 5-hour workload
// (bigjob, medianjob, smalljob) the uncapped baseline plus
// {80%, 60%, 40%} x policies. scaleRacks shrinks the machine for faster
// runs (0 = full Curie); seeds stay fixed so runs are reproducible.
func Fig8Scenarios(scaleRacks int) []Scenario {
	kinds := []trace.Config{
		{Kind: trace.BigJob, Seed: 1003},
		{Kind: trace.MedianJob, Seed: 1001},
		{Kind: trace.SmallJob, Seed: 1002},
	}
	var out []Scenario
	for _, wl := range kinds {
		out = append(out, Scenario{
			Name:       fmt.Sprintf("%s/100%%/None", wl.Kind),
			Workload:   wl,
			Policy:     core.PolicyNone,
			ScaleRacks: scaleRacks,
		})
		for _, frac := range []float64{0.8, 0.6, 0.4} {
			for _, p := range policiesForCap(frac) {
				out = append(out, Scenario{
					Name:        fmt.Sprintf("%s/%d%%/%s", wl.Kind, int(frac*100), p),
					Workload:    wl,
					Policy:      p,
					CapFraction: frac,
					ScaleRacks:  scaleRacks,
				})
			}
		}
	}
	return out
}

// Fig6Scenario is the 24-hour MIX run with a one-hour 40% reservation.
func Fig6Scenario(scaleRacks int) Scenario {
	return Scenario{
		Name:        "24h/40%/MIX",
		Workload:    trace.Config{Kind: trace.Day24h, Seed: 1004},
		Policy:      core.PolicyMix,
		CapFraction: 0.4,
		ScaleRacks:  scaleRacks,
	}
}

// Fig7aScenario is the 5-hour bigjob run under SHUT with a 60% cap.
func Fig7aScenario(scaleRacks int) Scenario {
	return Scenario{
		Name:        "bigjob/60%/SHUT",
		Workload:    trace.Config{Kind: trace.BigJob, Seed: 1003},
		Policy:      core.PolicyShut,
		CapFraction: 0.6,
		ScaleRacks:  scaleRacks,
	}
}

// Fig7bScenario is the 5-hour smalljob run under DVFS with a 40% cap.
func Fig7bScenario(scaleRacks int) Scenario {
	return Scenario{
		Name:        "smalljob/40%/DVFS",
		Workload:    trace.Config{Kind: trace.SmallJob, Seed: 1002},
		Policy:      core.PolicyDvfs,
		CapFraction: 0.4,
		ScaleRacks:  scaleRacks,
	}
}

// Claims24hScenarios reproduces the Section VII-C 24-hour comparison:
// SHUT vs DVFS vs MIX vs IDLE at a 40% cap, plus the uncapped baseline.
func Claims24hScenarios(scaleRacks int) []Scenario {
	wl := trace.Config{Kind: trace.Day24h, Seed: 1004}
	out := []Scenario{{
		Name:       "24h/100%/None",
		Workload:   wl,
		Policy:     core.PolicyNone,
		ScaleRacks: scaleRacks,
	}}
	for _, p := range []core.Policy{core.PolicyShut, core.PolicyDvfs, core.PolicyMix, core.PolicyIdle} {
		out = append(out, Scenario{
			Name:        fmt.Sprintf("24h/40%%/%s", p),
			Workload:    wl,
			Policy:      p,
			CapFraction: 0.4,
			ScaleRacks:  scaleRacks,
		})
	}
	return out
}

// AblationGroupingScenarios compares grouped (bonus-aware) against
// scattered shutdown planning under SHUT.
func AblationGroupingScenarios(scaleRacks int) []Scenario {
	wl := trace.Config{Kind: trace.MedianJob, Seed: 1001}
	return []Scenario{
		{
			Name: "medianjob/40%/SHUT/grouped", Workload: wl,
			Policy: core.PolicyShut, CapFraction: 0.4, ScaleRacks: scaleRacks,
		},
		{
			Name: "medianjob/40%/SHUT/scattered", Workload: wl,
			Policy: core.PolicyShut, CapFraction: 0.4, ScaleRacks: scaleRacks,
			Scattered: true,
		},
	}
}

// AblationDynamicDVFSScenarios compares the static launch-time-only DVFS
// of the paper against its Section VIII future-work extension that
// re-clocks running jobs at cap boundaries.
func AblationDynamicDVFSScenarios(scaleRacks int) []Scenario {
	wl := trace.Config{Kind: trace.MedianJob, Seed: 1001}
	return []Scenario{
		{
			Name: "medianjob/40%/DVFS/static", Workload: wl,
			Policy: core.PolicyDvfs, CapFraction: 0.4, ScaleRacks: scaleRacks,
		},
		{
			Name: "medianjob/40%/DVFS/dynamic", Workload: wl,
			Policy: core.PolicyDvfs, CapFraction: 0.4, ScaleRacks: scaleRacks,
			DynamicDVFS: true,
		},
	}
}

// AblationMixFloorScenarios compares the 2.0 GHz MIX floor against a
// full-range (1.2 GHz) mixed policy, which is DVFS-with-shutdown; the
// paper motivates the floor by the non-monotonic energy/performance
// trade-off.
func AblationMixFloorScenarios(scaleRacks int) []Scenario {
	wl := trace.Config{Kind: trace.MedianJob, Seed: 1001}
	return []Scenario{
		{
			Name: "medianjob/40%/MIX-floor2.0", Workload: wl,
			Policy: core.PolicyMix, CapFraction: 0.4, ScaleRacks: scaleRacks,
		},
		{
			Name: "medianjob/40%/DVFS-full", Workload: wl,
			Policy: core.PolicyDvfs, CapFraction: 0.4, ScaleRacks: scaleRacks,
		},
	}
}
