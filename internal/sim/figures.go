package sim

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/figures"
	"repro/internal/registry"
	"repro/internal/replay"
	"repro/internal/trace"
)

// FigureOptions parameterize figure builds.
type FigureOptions struct {
	// Racks shrinks the replayed machine (0 = full 56-rack Curie).
	Racks int
	// Workers bounds the sweep pool (0 = GOMAXPROCS).
	Workers int
	// Width/Height size the ASCII charts.
	Width, Height int
}

// Figure is one registered paper artifact: either a static table
// derived from the hardware model (Static), or a replayed figure
// described by a RunSpec and rendered from its Report. Figures
// self-register into the Figures registry; cmd/expfig is a thin
// iteration over it.
type Figure struct {
	// Name is the registry name ("2", "7a", "claims", ...).
	Name string
	// Desc is the one-line description shown in help.
	Desc string
	// InAll includes the figure in the "all" set (the cheap paper
	// artifacts; the big sweeps stay opt-in by name).
	InAll bool
	// Static renders without running anything (figures 2-5).
	Static func() string
	// Spec builds the RunSpec replayed for the figure.
	Spec func(opt FigureOptions) (RunSpec, error)
	// Render turns the finished report into the figure text.
	Render func(rep Report, opt FigureOptions) string
}

// Figures is the artifact registry keyed by figure name, in the paper's
// presentation order.
var Figures = registry.New[Figure]("figure")

// FigureNamesInAll returns the names the "all" set renders, in order.
func FigureNamesInAll() []string {
	var out []string
	for _, name := range Figures.Names() {
		f, err := Figures.Lookup(name)
		if err == nil && f.InAll {
			out = append(out, name)
		}
	}
	return out
}

// RunFigure builds one registered figure: static figures render
// immediately; replayed ones run their spec through Run (with ctx
// cancellation and the worker/scale options applied) and fail fast on
// any cell error, matching the historical expfig behavior. The Report
// is returned alongside the rendering so callers can export the
// underlying table through the sink pipeline.
func RunFigure(ctx context.Context, name string, opt FigureOptions) (string, *Report, error) {
	fig, err := Figures.Lookup(name)
	if err != nil {
		return "", nil, fmt.Errorf("sim: %w", err)
	}
	if fig.Static != nil {
		return fig.Static(), nil, nil
	}
	spec, err := fig.Spec(opt)
	if err != nil {
		return "", nil, err
	}
	spec.Workers = opt.Workers
	rep, err := RunWith(ctx, spec, nil)
	if err != nil {
		return "", &rep, err
	}
	if errs := rep.Errs(); len(errs) > 0 {
		return "", &rep, errs[0]
	}
	return fig.Render(rep, opt), &rep, nil
}

// SpecFromScenario converts one replay scenario into the equivalent
// single-mode RunSpec — the bridge from the predefined scenario
// builders to the declarative form.
func SpecFromScenario(sc replay.Scenario) (RunSpec, error) {
	cells, err := CellsFromScenarios([]replay.Scenario{sc})
	if err != nil {
		return RunSpec{}, err
	}
	c := cells[0]
	spec := RunSpec{
		Name:         c.Name,
		Workload:     *c.Workload,
		Racks:        sc.ScaleRacks,
		Policies:     []string{c.Policy},
		CapFractions: []float64{c.CapFraction},
	}
	if c.Cap != nil {
		spec.Cap = *c.Cap
	}
	if c.Options != nil {
		spec.Options = *c.Options
	}
	return spec, nil
}

// specFromList wraps a scenario-builder output as a named cell-list
// sweep spec.
func specFromList(name string, racks int, scens []replay.Scenario) (RunSpec, error) {
	cells, err := CellsFromScenarios(scens)
	if err != nil {
		return RunSpec{}, err
	}
	return RunSpec{Name: name, Racks: racks, Cells: cells}, nil
}

// singleFigure registers a one-scenario replayed figure with a header
// line over the standard time-series chart.
func singleFigure(name, desc, header string, scen func(scaleRacks int) replay.Scenario) {
	Figures.Register(name, Figure{
		Name:  name,
		Desc:  desc,
		InAll: true,
		Spec: func(opt FigureOptions) (RunSpec, error) {
			return SpecFromScenario(scen(opt.Racks))
		},
		Render: func(rep Report, opt FigureOptions) string {
			return header + "\n\n" + figures.TimeSeries(*rep.Single, opt.Width, opt.Height)
		},
	}, desc)
}

// summaryFigure registers a cell-list sweep rendered as a header plus
// the normalized summary table.
func summaryFigure(name, desc, header string, inAll bool, scens func(scaleRacks int) []replay.Scenario) {
	Figures.Register(name, Figure{
		Name:  name,
		Desc:  desc,
		InAll: inAll,
		Spec: func(opt FigureOptions) (RunSpec, error) {
			return specFromList(name, opt.Racks, scens(opt.Racks))
		},
		Render: func(rep Report, opt FigureOptions) string {
			return header + figures.SummaryTable(rep.Table.Results())
		},
	}, desc)
}

func init() {
	staticFigs := []struct {
		name, desc string
		fn         func() string
	}{
		{"2", "walltime degradation vs frequency (hardware model)", figures.Fig2},
		{"3", "per-node power by state and frequency", figures.Fig3},
		{"4", "the measured Curie power table", figures.Fig4},
		{"5", "the rho mechanism-selection criterion", figures.Fig5},
	}
	for _, f := range staticFigs {
		fn := f.fn
		Figures.Register(f.name, Figure{Name: f.name, Desc: f.desc, InAll: true, Static: fn}, f.desc)
	}

	singleFigure("6", "24 h workload under MIX with a 1 h 40% reservation",
		"Figure 6: 24 h workload, MIX policy, 1 h reservation at 40%", replay.Fig6Scenario)
	singleFigure("7a", "bigjob workload under SHUT at a 60% cap",
		"Figure 7a: bigjob workload, SHUT policy, 60% cap", replay.Fig7aScenario)
	singleFigure("7b", "smalljob workload under DVFS at a 40% cap",
		"Figure 7b: smalljob workload, DVFS policy, 40% cap", replay.Fig7bScenario)

	Figures.Register("8", Figure{
		Name:  "8",
		Desc:  "the Figure 8 grid: workloads x caps x policies, normalized bars",
		InAll: true,
		Spec: func(opt FigureOptions) (RunSpec, error) {
			return specFromList("fig8", opt.Racks, replay.Fig8Scenarios(opt.Racks))
		},
		Render: func(rep Report, opt FigureOptions) string {
			rs := rep.Table.Results()
			return figures.Fig8(rs) + "\n" + figures.SummaryTable(rs)
		},
	}, "Figure 8 grid")

	summaryFigure("claims", "the Section VII-C 24 h policy comparison",
		"Section VII-C 24 h claims (SHUT vs DVFS vs MIX vs IDLE at 40%)\n\n",
		true, replay.Claims24hScenarios)
	summaryFigure("ablation", "grouping, MIX-floor and dynamic-DVFS ablations",
		"Ablations: grouped vs scattered shutdown; MIX floor vs full-range DVFS;\nstatic vs dynamic DVFS\n\n",
		true, func(scale int) []replay.Scenario {
			scens := append(replay.AblationGroupingScenarios(scale), replay.AblationMixFloorScenarios(scale)...)
			return append(scens, replay.AblationDynamicDVFSScenarios(scale)...)
		})

	Figures.Register("sweep", Figure{
		Name: "sweep",
		Desc: "the full evaluation grid: every interval x cap x policy",
		Spec: func(opt FigureOptions) (RunSpec, error) {
			grid := experiment.Grid{
				Name: "full-sweep",
				Workloads: []trace.Config{
					{Kind: trace.BigJob, Seed: 1003},
					{Kind: trace.MedianJob, Seed: 1001},
					{Kind: trace.SmallJob, Seed: 1002},
					{Kind: trace.Day24h, Seed: 1004},
				},
				CapFractions: []float64{0, 0.8, 0.6, 0.4},
				Policies:     []core.Policy{core.PolicyShut, core.PolicyDvfs, core.PolicyMix},
				Base:         replay.Scenario{ScaleRacks: opt.Racks},
			}
			return specFromList("full-sweep", opt.Racks, grid.Scenarios())
		},
		Render: func(rep Report, opt FigureOptions) string {
			return rep.Table.ASCII(40)
		},
	}, "full evaluation grid")

	Figures.Register("scenarios", Figure{
		Name: "scenarios",
		Desc: "the extended workload library swept across caps and policies",
		Spec: func(opt FigureOptions) (RunSpec, error) {
			return specFromList("scenarios", opt.Racks, replay.LibraryScenarios(opt.Racks))
		},
		Render: func(rep Report, opt FigureOptions) string {
			return "Scenario library: paper intervals + diurnal/bursty/heavytail\n\n" + rep.Table.ASCII(40)
		},
	}, "extended workload library sweep")

	Figures.Register("federation", Figure{
		Name: "federation",
		Desc: "the federated multi-cluster sweep: fleet x budget x division",
		Spec: func(opt FigureOptions) (RunSpec, error) {
			return RunSpec{
				Name:         "federation",
				Racks:        opt.Racks,
				CapFractions: []float64{0.5, 0.6},
				Federation: &FederationSpec{
					MemberCounts: []int{2, 3},
					Divisions:    []string{replay.DivideProRata.String(), replay.DivideDemand.String()},
				},
			}, nil
		},
		Render: func(rep Report, opt FigureOptions) string {
			return "Federated multi-cluster sweep: fleet size x site budget x division policy\n\n" +
				rep.FederationTable.ASCII(opt.Width)
		},
	}, "federated multi-cluster sweep")
}
