// Powercap day: the Figure 6 experiment at reduced scale — a 24-hour
// Curie-like workload under the MIX policy with a one-hour reservation of
// 40% of the machine's power, rendered as the paper's stacked core and
// power time series. The run is described by converting the predefined
// Figure 6 scenario into a declarative sim.RunSpec and executing it
// through the facade.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/figures"
	"repro/internal/replay"
	"repro/internal/sim"
)

func main() {
	racks := flag.Int("racks", 8, "machine size in racks (56 = full Curie)")
	flag.Parse()

	spec, err := sim.SpecFromScenario(replay.Fig6Scenario(*racks))
	if err != nil {
		log.Fatal(err)
	}
	scens, err := spec.Scenarios()
	if err != nil {
		log.Fatal(err)
	}
	s := scens[0]
	fmt.Printf("replaying %s on %d nodes — this takes a few seconds...\n\n",
		s.Name, s.Machine().Nodes())

	rep, err := sim.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	r := *rep.Single
	if r.Err != nil {
		log.Fatal(r.Err)
	}

	start, end := s.Window()
	fmt.Printf("reservation: [%dh%02d, %dh%02d) at 40%% of %v\n",
		start/3600, start%3600/60, end/3600, end%3600/60, r.MaxPower)
	fmt.Printf("offline plan: %v — %d nodes grouped for switch-off "+
		"(planned saving %v, needed %v)\n\n",
		r.Plan.Mechanism, len(r.Plan.OffNodes), r.Plan.PlannedSaving, r.Plan.NeededSaving)

	fmt.Print(figures.TimeSeries(r, 96, 14))

	fmt.Println("\nsummary:", r.Summary)
	fmt.Printf("normalized work %.3f, normalized energy %.3f\n",
		r.Summary.NormWork, r.Summary.NormEnergy)
	fmt.Printf("launch frequencies: %v\n", r.Summary.LaunchedByFreq)
	fmt.Println("\nnote how 2.0 GHz launches appear ahead of the window (the system")
	fmt.Println("\"prepares itself\"), the reserved group drains to off as the window")
	fmt.Println("opens, and 2.7 GHz utilization snaps back afterwards.")
}
