// Command bench2json converts `go test -bench` text output (read from
// stdin) into a stable JSON document (written to stdout), so CI can
// archive benchmark results as machine-readable artifacts and track
// their trajectory across commits.
//
// Usage:
//
//	go test -run xxx -bench 'Sweep$' -benchtime 1x -benchmem . | bench2json > BENCH_sweep.json
//
// Standard units (ns/op, B/op, allocs/op) and custom b.ReportMetric
// units (configs, speedup, normWork, ...) all land in the per-benchmark
// metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the JSON envelope.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` text output into a Report.
func Parse(r io.Reader) (Report, error) {
	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, err := parseBenchLine(line)
		if err != nil {
			return rep, err
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkSweep/serial-8  1  9.3e8 ns/op  1.2e6 B/op  813 allocs/op  14 configs  1.0 speedup
func parseBenchLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("bench2json: short benchmark line %q", line)
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bench2json: bad run count in %q: %v", line, err)
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bench2json: bad metric value in %q: %v", line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

// Compare checks rep against a baseline report: any benchmark present
// in both whose ns/op grew by more than tolerance (0.20 = +20%) is a
// regression. Benchmarks missing on either side are skipped (renames
// and new benchmarks are not regressions); single-pass CI timings are
// noisy, so the tolerance is deliberately generous and only ns/op is
// gated.
func Compare(baseline, rep Report, tolerance float64) []string {
	base := map[string]float64{}
	for _, b := range baseline.Benchmarks {
		if ns, ok := b.Metrics["ns/op"]; ok && ns > 0 {
			base[stripProcs(b.Name)] = ns
		}
	}
	var regressions []string
	for _, b := range rep.Benchmarks {
		old, ok := base[stripProcs(b.Name)]
		if !ok {
			continue
		}
		ns, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		if ns > old*(1+tolerance) {
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/op %.3g -> %.3g (%+.1f%%, gate +%.0f%%)",
					b.Name, old, ns, (ns/old-1)*100, tolerance*100))
		}
	}
	return regressions
}

// stripProcs drops the "-<GOMAXPROCS>" suffix go test appends to
// benchmark names, so baselines compare across machines with different
// core counts (and baselines recorded at GOMAXPROCS=1, which carry no
// suffix at all).
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

func main() {
	baselinePath := flag.String("baseline", "", "compare against this baseline JSON report; exit 1 on a ns/op regression beyond -tolerance")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional ns/op growth vs the baseline")
	flag.Parse()

	rep, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *baselinePath != "" {
		f, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var baseline Report
		err = json.NewDecoder(f).Decode(&baseline)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench2json: bad baseline %s: %v\n", *baselinePath, err)
			os.Exit(1)
		}
		if regs := Compare(baseline, rep, *tolerance); len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "bench2json: %d benchmark regression(s) vs %s:\n", len(regs), *baselinePath)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench2json: no ns/op regression beyond +%.0f%% vs %s\n", *tolerance*100, *baselinePath)
	}
}
