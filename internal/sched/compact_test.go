package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/dvfs"
	"repro/internal/job"
	"repro/internal/power"
)

// wideCluster: 1 rack x 4 chassis x 4 nodes, 4 cores each (64 cores).
func wideCluster() *cluster.Cluster {
	topo := cluster.Topology{Racks: 1, ChassisPerRack: 4, NodesPerChassis: 4, CoresPerNode: 4}
	c, err := cluster.New(topo, power.CurieProfile(), cluster.CurieOverhead())
	if err != nil {
		panic(err)
	}
	return c
}

func TestAllocateCompactPrefersFullestChassis(t *testing.T) {
	c := wideCluster()
	// Fragment chassis 0-2: one node busy in each, so they have 12 free
	// cores; chassis 3 untouched has 16.
	for ch := 0; ch < 3; ch++ {
		first, _ := c.Topology().ChassisNodes(ch)
		if err := c.Occupy(first, 4, dvfs.F2700); err != nil {
			t.Fatal(err)
		}
	}
	allocs := AllocateCompact(c, 16, nil)
	if allocs == nil {
		t.Fatal("allocation failed")
	}
	if span := ChassisSpan(c.Topology(), allocs); span != 1 {
		t.Errorf("16-core job spans %d chassis, want 1 (chassis 3 has 16 free)", span)
	}
	for _, a := range allocs {
		if c.Topology().ChassisOf(a.Node) != 3 {
			t.Errorf("allocated node %d outside the fullest chassis", a.Node)
		}
	}
}

func TestAllocateCompactBeatsFirstFit(t *testing.T) {
	c := wideCluster()
	// Leave 2 free cores on one node of each of the first three chassis
	// and a fully idle chassis 3: a 12-core job first-fits across four
	// chassis but compacts into one.
	for ch := 0; ch < 3; ch++ {
		first, n := c.Topology().ChassisNodes(ch)
		for i := 0; i < n; i++ {
			id := first + cluster.NodeID(i)
			take := 4
			if i == 0 {
				take = 2
			}
			if err := c.Occupy(id, take, dvfs.F2700); err != nil {
				t.Fatal(err)
			}
		}
	}
	firstFit := Allocate(c, 12, nil)
	compact := AllocateCompact(c, 12, nil)
	if firstFit == nil || compact == nil {
		t.Fatal("allocation failed")
	}
	ffSpan := ChassisSpan(c.Topology(), firstFit)
	cpSpan := ChassisSpan(c.Topology(), compact)
	if cpSpan >= ffSpan {
		t.Errorf("compact spans %d chassis, first-fit %d — no locality gain", cpSpan, ffSpan)
	}
	if cpSpan != 1 {
		t.Errorf("compact span = %d, want 1", cpSpan)
	}
}

func TestAllocateCompactRespectsEligibilityAndOff(t *testing.T) {
	c := wideCluster()
	if err := c.PowerOff(12); err != nil { // a node of chassis 3
		t.Fatal(err)
	}
	allocs := AllocateCompact(c, 8, func(id cluster.NodeID) bool { return id != 0 })
	if allocs == nil {
		t.Fatal("allocation failed")
	}
	for _, a := range allocs {
		if a.Node == 0 || a.Node == 12 {
			t.Errorf("forbidden node %d allocated", a.Node)
		}
	}
}

func TestAllocateCompactInsufficient(t *testing.T) {
	c := wideCluster()
	if AllocateCompact(c, 65, nil) != nil {
		t.Error("oversized request satisfied")
	}
	if AllocateCompact(c, 0, nil) != nil {
		t.Error("zero request returned an allocation")
	}
}

// Property: compact allocations are exact, never overcommit a node, and
// never span more chassis than the first-fit allocator.
func TestAllocateCompactProperty(t *testing.T) {
	f := func(busy [16]uint8, req uint8) bool {
		c := wideCluster()
		for i, b := range busy {
			n := int(b) % 5
			if n > 0 {
				if err := c.Occupy(cluster.NodeID(i), n, dvfs.F2700); err != nil {
					return false
				}
			}
		}
		need := int(req)%40 + 1
		compact := AllocateCompact(c, need, nil)
		firstFit := Allocate(c, need, nil)
		if (compact == nil) != (firstFit == nil) {
			return false // both see identical feasibility
		}
		if compact == nil {
			return true
		}
		sum := 0
		seen := map[cluster.NodeID]bool{}
		for _, a := range compact {
			if a.Cores <= 0 || a.Cores > c.FreeCores(a.Node) || seen[a.Node] {
				return false
			}
			seen[a.Node] = true
			sum += a.Cores
		}
		if sum != need {
			return false
		}
		return ChassisSpan(c.Topology(), compact) <= ChassisSpan(c.Topology(), firstFit)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChassisSpan(t *testing.T) {
	topo := cluster.Topology{Racks: 1, ChassisPerRack: 4, NodesPerChassis: 4, CoresPerNode: 4}
	allocs := []job.Alloc{{Node: 0, Cores: 1}, {Node: 3, Cores: 1}, {Node: 4, Cores: 1}}
	if got := ChassisSpan(topo, allocs); got != 2 {
		t.Errorf("span = %d, want 2", got)
	}
	if got := ChassisSpan(topo, nil); got != 0 {
		t.Errorf("empty span = %d", got)
	}
}
