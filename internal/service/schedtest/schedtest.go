// Package schedtest is the conformance suite every service.Scheduler
// backend must pass — the scheduler counterpart of storetest. It pins
// the dispatch contract the server and the fleet gateway both build on:
// every accepted id executes exactly once (when the executor succeeds),
// in FIFO order, on at most the configured number of slots; a full
// backlog refuses with ErrQueueFull; Shutdown drains what was accepted
// and refuses what comes after.
//
// Wire a backend in with a two-line test:
//
//	func TestPoolSchedulerConformance(t *testing.T) {
//		schedtest.Run(t, service.NewPoolScheduler)
//	}
package schedtest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// Factory builds the scheduler under test with the given slot count,
// backlog bound and executor.
type Factory func(workers, depth int, exec func(id string) error) service.Scheduler

// Run exercises the full conformance suite against the factory.
func Run(t *testing.T, factory Factory) {
	t.Helper()
	t.Run("ExactlyOnceFIFO", func(t *testing.T) { exactlyOnceFIFO(t, factory) })
	t.Run("ConcurrencyBound", func(t *testing.T) { concurrencyBound(t, factory) })
	t.Run("QueueFull", func(t *testing.T) { queueFull(t, factory) })
	t.Run("ShutdownDrains", func(t *testing.T) { shutdownDrains(t, factory) })
	t.Run("EnqueueAfterShutdown", func(t *testing.T) { enqueueAfterShutdown(t, factory) })
}

// exactlyOnceFIFO: one slot, N ids — each executes once, in enqueue
// order.
func exactlyOnceFIFO(t *testing.T, factory Factory) {
	var (
		mu  sync.Mutex
		got []string
	)
	s := factory(1, 64, func(id string) error {
		mu.Lock()
		got = append(got, id)
		mu.Unlock()
		return nil
	})
	var want []string
	for i := 0; i < 16; i++ {
		id := fmt.Sprintf("t%02d", i)
		want = append(want, id)
		if err := s.Enqueue(id); err != nil {
			t.Fatalf("enqueue %s: %v", id, err)
		}
	}
	if err := s.Shutdown(testCtx(t)); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("executed %v, want FIFO %v", got, want)
	}
}

// concurrencyBound: never more than `workers` executors in flight.
func concurrencyBound(t *testing.T, factory Factory) {
	const workers, tasks = 3, 12
	var (
		mu       sync.Mutex
		inflight int
		peak     int
		ran      int
	)
	s := factory(workers, tasks, func(id string) error {
		mu.Lock()
		inflight++
		if inflight > peak {
			peak = inflight
		}
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		mu.Lock()
		inflight--
		ran++
		mu.Unlock()
		return nil
	})
	for i := 0; i < tasks; i++ {
		if err := s.Enqueue(fmt.Sprintf("c%02d", i)); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	if err := s.Shutdown(testCtx(t)); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran != tasks {
		t.Errorf("executed %d tasks, want %d", ran, tasks)
	}
	if peak > workers {
		t.Errorf("peak concurrency %d exceeded %d slots", peak, workers)
	}
}

// queueFull: with every slot blocked and the backlog at depth, the next
// enqueue refuses with ErrQueueFull — and everything accepted still
// executes once the slots free up.
func queueFull(t *testing.T, factory Factory) {
	gate := make(chan struct{})
	started := make(chan string, 8)
	var (
		mu  sync.Mutex
		ran []string
	)
	s := factory(1, 2, func(id string) error {
		started <- id
		<-gate
		mu.Lock()
		ran = append(ran, id)
		mu.Unlock()
		return nil
	})
	// "a" occupies the slot (wait for it to leave the backlog), then
	// "b","c" fill the depth-2 backlog.
	if err := s.Enqueue("a"); err != nil {
		t.Fatalf("enqueue a: %v", err)
	}
	select {
	case <-started: // "a" is in flight; the backlog is empty
	case <-time.After(5 * time.Second):
		t.Fatal("executor never started")
	}
	for _, id := range []string{"b", "c"} {
		if err := s.Enqueue(id); err != nil {
			t.Fatalf("enqueue %s: %v", id, err)
		}
	}
	if err := s.Enqueue("d"); !errors.Is(err, service.ErrQueueFull) {
		t.Errorf("enqueue past depth = %v, want ErrQueueFull", err)
	}
	if q := s.Queued(); q != 2 {
		t.Errorf("Queued() = %d, want 2", q)
	}
	close(gate)
	for i := 0; i < 2; i++ {
		<-started
	}
	if err := s.Shutdown(testCtx(t)); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(ran) != fmt.Sprint([]string{"a", "b", "c"}) {
		t.Errorf("executed %v, want [a b c]", ran)
	}
}

// shutdownDrains: ids accepted before Shutdown all execute; Shutdown
// returns only after they have.
func shutdownDrains(t *testing.T, factory Factory) {
	var (
		mu  sync.Mutex
		ran int
	)
	s := factory(2, 64, func(id string) error {
		time.Sleep(2 * time.Millisecond)
		mu.Lock()
		ran++
		mu.Unlock()
		return nil
	})
	const n = 10
	for i := 0; i < n; i++ {
		if err := s.Enqueue(fmt.Sprintf("d%02d", i)); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	if err := s.Shutdown(testCtx(t)); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran != n {
		t.Errorf("shutdown returned with %d/%d executed", ran, n)
	}
}

// enqueueAfterShutdown: intake is closed for good.
func enqueueAfterShutdown(t *testing.T, factory Factory) {
	s := factory(1, 4, func(id string) error { return nil })
	if err := s.Shutdown(testCtx(t)); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := s.Enqueue("late"); !errors.Is(err, service.ErrSchedulerClosed) {
		t.Errorf("enqueue after shutdown = %v, want ErrSchedulerClosed", err)
	}
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}
