package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/federation"
	"repro/internal/replay"
	"repro/internal/rjms"
)

// FederationGrid is the declarative form of a federated sweep: the
// cross product of fleet sizes x global cap fractions x division
// policies, each cell a full multi-cluster federation run built from
// the workload scenario library (replay.FederationLibraryScenario).
type FederationGrid struct {
	// Name labels the sweep in exports; empty means "federation".
	Name string
	// MemberCounts is the fleet-size axis.
	MemberCounts []int
	// CapFractions is the global site-budget axis, as fractions of the
	// summed member maximum draws; values must be in (0, 1) — a
	// federation without a budget is just independent clusters.
	CapFractions []float64
	// Divisions is the redistribution-policy axis.
	Divisions []replay.Division
	// ScaleRacks sizes every member machine (0 = full Curie — large;
	// sweeps usually shrink it).
	ScaleRacks int
	// EpochSec overrides the redistribution period of every cell; 0
	// keeps the library default.
	EpochSec int64
}

func (g FederationGrid) name() string {
	if g.Name != "" {
		return g.Name
	}
	return "federation"
}

// Scenarios expands the grid in deterministic cell order: member
// counts outermost, then caps, then divisions — the federated
// counterpart of replay.SweepScenarios.
func (g FederationGrid) Scenarios() []replay.FederationScenario {
	var out []replay.FederationScenario
	for _, n := range g.MemberCounts {
		for _, frac := range g.CapFractions {
			for _, div := range g.Divisions {
				fs := replay.FederationLibraryScenario(n, g.ScaleRacks, frac, div)
				if g.EpochSec > 0 {
					fs.EpochSec = g.EpochSec
				}
				out = append(out, fs)
			}
		}
	}
	return out
}

// Size returns the number of cells the grid expands to.
func (g FederationGrid) Size() int {
	return len(g.MemberCounts) * len(g.CapFractions) * len(g.Divisions)
}

// FederationResult is one federated sweep cell's outcome plus its
// position and wall-clock cost.
type FederationResult struct {
	federation.Result
	Index   int
	Elapsed time.Duration
}

// FederationTable is an aggregated federated sweep: one row per cell
// in grid order.
type FederationTable struct {
	Name    string
	Rows    []FederationResult
	Workers int
	Elapsed time.Duration
}

// Errs collects the per-cell errors (nil entries omitted).
func (t FederationTable) Errs() []error {
	var errs []error
	for _, r := range t.Rows {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", r.Scenario.Name, r.Err))
		}
	}
	return errs
}

// FederationRunner executes federated sweeps on the bounded worker
// pool shared with the single-cluster sweeps. One worker drives one
// whole federation (its N member engines stay single-goroutine); the
// pool parallelism is across cells.
type FederationRunner struct {
	// Workers bounds the pool; <= 0 means GOMAXPROCS.
	Workers int
	// OnResult, when set, observes each finished cell (serialized
	// across workers).
	OnResult func(done, total int, r FederationResult)
	// Observe, when set, sees every member controller of every cell as
	// it is assembled (the federation.Observer contract), tagged with
	// the cell's grid index. Called concurrently across cells; each
	// member controller itself stays single-goroutine.
	Observe func(cell int, memberIndex int, member string, ctl *rjms.Controller)
}

// Run executes the federation scenario list and aggregates the table.
// Rows land at their grid index regardless of scheduling, so the table
// — and its Fingerprint — is identical at any worker count.
func (r FederationRunner) Run(name string, scenarios []replay.FederationScenario) FederationTable {
	t, _ := r.RunContext(context.Background(), name, scenarios)
	return t
}

// RunContext is Run with cancellation, mirroring Runner.RunContext:
// cancelled cells carry their scenario and ctx.Err(), finished cells
// are identical to an uncancelled run's, and the pool is fully drained
// before it returns.
func (r FederationRunner) RunContext(ctx context.Context, name string, scenarios []replay.FederationScenario) (FederationTable, error) {
	workers := poolSize(r.Workers, len(scenarios))
	t := FederationTable{Name: name, Rows: make([]FederationResult, len(scenarios)), Workers: workers}
	start := time.Now()

	var (
		mu   sync.Mutex
		done int
	)
	ran := make([]bool, len(scenarios))
	err := runIndexed(ctx, len(scenarios), workers, func(i int) {
		t0 := time.Now()
		var observe federation.Observer
		if r.Observe != nil {
			observe = func(mi int, name string, ctl *rjms.Controller) { r.Observe(i, mi, name, ctl) }
		}
		res := federation.RunContext(ctx, scenarios[i], observe)
		row := FederationResult{Result: res, Index: i, Elapsed: time.Since(t0)}
		t.Rows[i] = row
		ran[i] = true
		if r.OnResult != nil {
			mu.Lock()
			done++
			r.OnResult(done, len(scenarios), row)
			mu.Unlock()
		}
	})
	for i := range t.Rows {
		if !ran[i] {
			t.Rows[i] = FederationResult{
				Result: federation.Result{Scenario: scenarios[i], Err: err},
				Index:  i,
			}
		}
	}
	t.Elapsed = time.Since(start)
	return t, err
}

// RunFederation expands the grid and executes it with the given worker
// count.
func RunFederation(g FederationGrid, workers int) FederationTable {
	return FederationRunner{Workers: workers}.Run(g.name(), g.Scenarios())
}

// --- export ---------------------------------------------------------

// fedMemberRow is the nested per-member export of one federation cell.
type fedMemberRow struct {
	Name        string  `json:"name"`
	MaxPowerW   float64 `json:"max_power_w"`
	FinalCapW   float64 `json:"final_cap_w"`
	EnergyJ     float64 `json:"energy_j"`
	Launched    int     `json:"jobs_launched"`
	Completed   int     `json:"jobs_completed"`
	MeanBSLD    float64 `json:"mean_bsld"`
	MeanWaitSec float64 `json:"mean_wait_sec"`
}

// fedRow is the stable export form of one federated sweep cell.
type fedRow struct {
	Index         int            `json:"index"`
	Name          string         `json:"name"`
	Members       int            `json:"members"`
	CapFraction   float64        `json:"cap_fraction"`
	Division      string         `json:"division"`
	EpochSec      int64          `json:"epoch_sec"`
	GlobalBudgetW float64        `json:"global_budget_w"`
	PeakGlobalW   float64        `json:"peak_global_w"`
	EnergyJ       float64        `json:"energy_j"`
	WorkCoreSec   float64        `json:"work_core_sec"`
	Submitted     int            `json:"jobs_submitted"`
	Launched      int            `json:"jobs_launched"`
	Completed     int            `json:"jobs_completed"`
	Killed        int            `json:"jobs_killed"`
	MeanBSLD      float64        `json:"mean_bsld"`
	MaxBSLD       float64        `json:"max_bsld"`
	MeanWaitSec   float64        `json:"mean_wait_sec"`
	MemberRows    []fedMemberRow `json:"member_rows"`
	ElapsedMS     float64        `json:"elapsed_ms"`
	Error         string         `json:"error,omitempty"`
}

func exportFedRow(r FederationResult) fedRow {
	e := fedRow{
		Index:       r.Index,
		Name:        r.Scenario.Name,
		Members:     len(r.Scenario.Members),
		CapFraction: r.Scenario.GlobalCapFraction,
		Division:    r.Scenario.Division.String(),
		EpochSec:    r.Scenario.Epoch(),
		ElapsedMS:   float64(r.Elapsed.Microseconds()) / 1000,
	}
	if r.Err != nil {
		e.Error = r.Err.Error()
		return e
	}
	e.GlobalBudgetW = float64(r.GlobalBudgetW)
	e.PeakGlobalW = float64(r.PeakGlobalW)
	e.EnergyJ = float64(r.EnergyJ)
	e.WorkCoreSec = r.WorkCoreSec
	e.Submitted = r.JobsSubmitted
	e.Launched = r.JobsLaunched
	e.Completed = r.JobsCompleted
	e.Killed = r.JobsKilled
	e.MeanBSLD = r.MeanBSLD
	e.MaxBSLD = r.MaxBSLD
	e.MeanWaitSec = r.MeanWaitSec
	for _, m := range r.Members {
		e.MemberRows = append(e.MemberRows, fedMemberRow{
			Name:        m.Name,
			MaxPowerW:   float64(m.MaxPower),
			FinalCapW:   float64(m.FinalCapW),
			EnergyJ:     float64(m.Summary.EnergyJ),
			Launched:    m.Summary.JobsLaunched,
			Completed:   m.Summary.JobsCompleted,
			MeanBSLD:    m.Summary.MeanBSLD,
			MeanWaitSec: m.Summary.MeanWaitSec,
		})
	}
	return e
}

// WriteJSON serializes the federated sweep as indented JSON (cells in
// grid order, nested member rows included).
func (t FederationTable) WriteJSON(w io.Writer) error {
	out := struct {
		Name      string   `json:"name"`
		Cells     int      `json:"cells"`
		Workers   int      `json:"workers"`
		ElapsedMS float64  `json:"elapsed_ms"`
		Rows      []fedRow `json:"rows"`
	}{
		Name:      t.Name,
		Cells:     len(t.Rows),
		Workers:   t.Workers,
		ElapsedMS: float64(t.Elapsed.Microseconds()) / 1000,
		Rows:      make([]fedRow, len(t.Rows)),
	}
	for i, r := range t.Rows {
		out.Rows[i] = exportFedRow(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// fedCSVHeader is the fixed column order of WriteCSV (cell-level only;
// member breakdowns live in the JSON export).
var fedCSVHeader = []string{
	"index", "name", "members", "cap_fraction", "division", "epoch_sec",
	"global_budget_w", "peak_global_w", "energy_j", "work_core_sec",
	"jobs_submitted", "jobs_launched", "jobs_completed", "jobs_killed",
	"mean_bsld", "max_bsld", "mean_wait_sec", "elapsed_ms", "error",
}

// WriteCSV writes the cell-level summary table in grid order.
func (t FederationTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(fedCSVHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	for _, r := range t.Rows {
		e := exportFedRow(r)
		rec := []string{
			strconv.Itoa(e.Index), e.Name, strconv.Itoa(e.Members),
			f(e.CapFraction), e.Division, strconv.FormatInt(e.EpochSec, 10),
			f(e.GlobalBudgetW), f(e.PeakGlobalW), f(e.EnergyJ), f(e.WorkCoreSec),
			strconv.Itoa(e.Submitted), strconv.Itoa(e.Launched),
			strconv.Itoa(e.Completed), strconv.Itoa(e.Killed),
			f(e.MeanBSLD), f(e.MaxBSLD), f(e.MeanWaitSec),
			f(e.ElapsedMS), e.Error,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fingerprint hashes the federated sweep's aggregated metrics with the
// timing fields zeroed — identical for the same grid at any worker
// count (the determinism gate of the federation sweeps).
func (t FederationTable) Fingerprint() string {
	rows := make([]fedRow, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = exportFedRow(r)
		rows[i].ElapsedMS = 0
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Index < rows[j].Index })
	b, err := json.Marshal(rows)
	if err != nil {
		// fedRow marshaling cannot fail on these field types
		panic(fmt.Sprintf("experiment: federation fingerprint marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ASCII renders the federated comparison: one line per cell with the
// headline metrics, followed by a stretch-comparison bar block (mean
// BSLD per cell, width columns wide) — the division-policy contrast at
// a glance.
func (t FederationTable) ASCII(width int) string {
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d federations, %d workers, %v wall clock\n\n",
		t.Name, len(t.Rows), t.Workers, t.Elapsed.Round(1e6))
	fmt.Fprintf(&b, "%-22s %8s %10s %10s %10s %8s %9s %10s\n",
		"federation", "members", "budget", "peak", "energy", "bsld", "wait(s)", "launched")
	maxBSLD := 0.0
	for _, r := range t.Rows {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-22s ERROR: %v\n", r.Scenario.Name, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-22s %8d %10.3g %10.3g %10.3g %8.2f %9.0f %5d/%-4d\n",
			r.Scenario.Name, len(r.Scenario.Members),
			float64(r.GlobalBudgetW), float64(r.PeakGlobalW), float64(r.EnergyJ),
			r.MeanBSLD, r.MeanWaitSec, r.JobsLaunched, r.JobsSubmitted)
		if r.MeanBSLD > maxBSLD {
			maxBSLD = r.MeanBSLD
		}
	}
	if maxBSLD > 0 {
		fmt.Fprintf(&b, "\nmean bounded slowdown (lower is better)\n")
		for _, r := range t.Rows {
			if r.Err != nil {
				continue
			}
			n := int(r.MeanBSLD / maxBSLD * float64(width))
			fmt.Fprintf(&b, "%-22s %s %.2f\n", r.Scenario.Name, strings.Repeat("#", n), r.MeanBSLD)
		}
	}
	return b.String()
}
