// Package invariant is a test-only runtime checker of the simulator's
// safety contracts. A Checker attaches to a controller's sample hook
// and, at every metrics sample of a run, asserts:
//
//  1. Cap safety — the cluster draw never climbs above the active
//     powercap. The paper's controller gates launches, it does not
//     evict: a window can open (or tighten) over running work, so a
//     draw above the cap is legal only while it monotonically drains.
//     The enforced rule between consecutive samples under a
//     same-or-looser cap is therefore Power <= max(Cap, prevPower):
//     once under the budget the draw must stay under it, and while
//     over it must never rise. A tightening cap resets the baseline.
//  2. Node sanity — no node holds more cores than it has, no
//     powered-off node holds any, and the per-node core bookkeeping
//     matches the sum of the running jobs' allocations exactly.
//  3. Lifecycle legality — the jobs visible in the pending queue and
//     the running set carry the matching state, their timestamps are
//     ordered (submit <= start <= now), running allocations cover the
//     requested cores, and no job ever moves backwards (running to
//     pending, or terminal back to active).
//
// The checks run against the exact power bookkeeping; attach only to
// controllers without measurement noise (MeasuredPowerNoise = 0),
// where the guarded estimate may legitimately admit a launch the exact
// table would not.
//
// Checkers record violations instead of failing fast, so one run
// reports every broken contract; tests assert Err() == nil.
package invariant

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/rjms"
)

// capEpsilon absorbs float rounding in the watts bookkeeping.
const capEpsilon = 1e-6

// maxViolations bounds how many violations one checker records; a
// broken invariant usually trips at every subsequent sample.
const maxViolations = 16

// Checker validates one controller's run at every metrics sample.
type Checker struct {
	name string
	ctl  *rjms.Controller

	havePrev  bool
	prevPower power.Watts
	prevCap   power.Watts

	// seen maps every job ID ever observed to its last observed state;
	// jobs that vanish from the active sets are tombstoned terminal.
	seen map[job.ID]job.State
	// lastActive holds the IDs active at the previous sample — the only
	// candidates for tombstoning, so the per-sample sweep is O(active),
	// not O(every job ever seen).
	lastActive []job.ID

	errs    []error
	dropped int
}

// Attach registers a checker on the controller's sample hook and
// returns it. The name labels violations (e.g. the scenario or
// federation-member name). Attach before the run starts; the
// controller supports one observer, so the checker owns the hook.
func Attach(ctl *rjms.Controller, name string) *Checker {
	k := &Checker{name: name, ctl: ctl, seen: map[job.ID]job.State{}}
	ctl.SetObserver(k.check)
	return k
}

// Err returns the first recorded violation, or nil after a clean run.
func (k *Checker) Err() error {
	if len(k.errs) == 0 {
		return nil
	}
	return k.errs[0]
}

// Violations returns every recorded violation in order (capped; a
// positive Dropped reports how many more followed).
func (k *Checker) Violations() []error { return k.errs }

// Dropped returns how many violations were discarded past the cap.
func (k *Checker) Dropped() int { return k.dropped }

func (k *Checker) violatef(now int64, format string, args ...any) {
	if len(k.errs) >= maxViolations {
		k.dropped++
		return
	}
	prefix := fmt.Sprintf("invariant: %s: t=%d: ", k.name, now)
	k.errs = append(k.errs, fmt.Errorf(prefix+format, args...))
}

// check is the sample hook: it runs after every recorded sample.
func (k *Checker) check(now int64) {
	samples := k.ctl.Samples()
	if len(samples) == 0 {
		return
	}
	s := samples[len(samples)-1]
	k.checkCap(now, s)
	jobs := k.ctl.SnapshotJobs()
	k.checkJobs(now, jobs)
	k.checkNodes(now, jobs)
}

// checkCap enforces the monotone cap-approach rule between consecutive
// samples (see the package comment for why plain Power <= Cap is not
// the controller's contract).
func (k *Checker) checkCap(now int64, s metrics.Sample) {
	defer func() {
		k.havePrev = true
		k.prevPower = s.Power
		k.prevCap = s.Cap
	}()
	if s.Cap <= 0 {
		return // uncapped instant: nothing to enforce
	}
	if !k.havePrev || k.prevCap <= 0 || s.Cap < k.prevCap {
		// First capped sample, window just opened, or the budget
		// tightened: the draw may legitimately sit above the new cap
		// (inherited running work); the rule starts at the next sample.
		return
	}
	if limit := maxWatts(s.Cap, k.prevPower); float64(s.Power) > float64(limit)+capEpsilon {
		if k.prevPower <= s.Cap {
			k.violatef(now, "draw %v crossed above the active cap %v (was %v)",
				s.Power, s.Cap, k.prevPower)
		} else {
			k.violatef(now, "draw %v rose while above the active cap %v (was %v)",
				s.Power, s.Cap, k.prevPower)
		}
	}
}

func maxWatts(a, b power.Watts) power.Watts {
	if a > b {
		return a
	}
	return b
}

// checkJobs validates the visible job states and their transitions
// since the previous sample.
func (k *Checker) checkJobs(now int64, jobs []*job.Job) {
	current := make(map[job.ID]job.State, len(jobs))
	for _, j := range jobs {
		if _, dup := current[j.ID]; dup {
			k.violatef(now, "job %d appears twice in the active sets", j.ID)
			continue
		}
		current[j.ID] = j.State

		switch j.State {
		case job.StatePending:
			// Nothing beyond the transition check: a regression from
			// running back to pending is caught below.
		case job.StateRunning:
			if j.StartTime < j.Submit {
				k.violatef(now, "job %d started at %d before its submission %d", j.ID, j.StartTime, j.Submit)
			}
			if j.StartTime > now {
				k.violatef(now, "job %d start time %d in the future", j.ID, j.StartTime)
			}
			if got := j.AllocatedCores(); got != j.Cores {
				k.violatef(now, "job %d runs on %d cores, requested %d", j.ID, got, j.Cores)
			}
		default:
			k.violatef(now, "job %d in the active sets with terminal state %v", j.ID, j.State)
		}

		if from, ok := k.seen[j.ID]; ok && !LegalObserved(from, j.State) {
			k.violatef(now, "job %d moved %v -> %v", j.ID, from, j.State)
		}
		k.seen[j.ID] = j.State
	}
	// Jobs that vanished from the active sets are terminal; tombstone
	// them so a reappearance is caught. Only last sample's active jobs
	// can vanish, so the sweep stays proportional to the active set.
	for _, id := range k.lastActive {
		if _, ok := current[id]; !ok {
			if st := k.seen[id]; st == job.StatePending || st == job.StateRunning {
				k.seen[id] = job.StateCompleted
			}
		}
	}
	k.lastActive = k.lastActive[:0]
	for _, j := range jobs {
		k.lastActive = append(k.lastActive, j.ID)
	}
}

// LegalObserved reports whether observing a job in state from at one
// sample and in state to at a later one is consistent with the
// lifecycle pending -> running -> completed|killed. Sampling may skip
// states entirely (a job can submit, run and finish between samples),
// so the relation is the reachability closure of the lifecycle graph.
func LegalObserved(from, to job.State) bool {
	switch from {
	case job.StatePending:
		return true // every state is reachable from pending
	case job.StateRunning:
		return to != job.StatePending
	default: // terminal states reach nothing
		return to == from
	}
}

// checkNodes validates per-node core accounting against the running
// jobs' allocations.
func (k *Checker) checkNodes(now int64, jobs []*job.Job) {
	clus := k.ctl.Cluster()
	perNode := make(map[cluster.NodeID]int)
	for _, j := range jobs {
		if j.State != job.StateRunning {
			continue
		}
		for _, a := range j.Allocs {
			perNode[a.Node] += a.Cores
			if clus.State(a.Node) == cluster.StateOff {
				k.violatef(now, "job %d holds %d cores on powered-off node %d", j.ID, a.Cores, a.Node)
			}
		}
	}
	coresPerNode := clus.Topology().CoresPerNode
	clus.ForEach(func(n cluster.NodeInfo) bool {
		if n.UsedCores < 0 || n.UsedCores > coresPerNode {
			k.violatef(now, "node %d oversubscribed: %d cores of %d", n.ID, n.UsedCores, coresPerNode)
		}
		if n.State == cluster.StateOff && n.UsedCores != 0 {
			k.violatef(now, "node %d powered off while holding %d cores", n.ID, n.UsedCores)
		}
		if want := perNode[n.ID]; want != n.UsedCores {
			k.violatef(now, "node %d bookkeeping %d cores, running jobs hold %d", n.ID, n.UsedCores, want)
		}
		// Failure injection (the twin's kill path): a failed node must
		// be off and hold nothing — its jobs were killed and requeued.
		if k.ctl.NodeFailed(n.ID) {
			if n.State != cluster.StateOff {
				k.violatef(now, "failed node %d is %v, want off", n.ID, n.State)
			}
			if n.UsedCores != 0 {
				k.violatef(now, "failed node %d holds %d cores", n.ID, n.UsedCores)
			}
		}
		return len(k.errs) < maxViolations
	})
}
