package dvfs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCurieLadder(t *testing.T) {
	l := CurieLadder()
	if err := l.Validate(); err != nil {
		t.Fatalf("CurieLadder invalid: %v", err)
	}
	if got, want := len(l), 8; got != want {
		t.Fatalf("ladder size = %d, want %d", got, want)
	}
	if l.Min() != F1200 || l.Max() != F2700 {
		t.Errorf("ladder range = [%v, %v], want [1.2 GHz, 2.7 GHz]", l.Min(), l.Max())
	}
}

func TestMixLadder(t *testing.T) {
	l := MixLadder()
	if err := l.Validate(); err != nil {
		t.Fatalf("MixLadder invalid: %v", err)
	}
	if l.Min() != F2000 {
		t.Errorf("MIX floor = %v, want 2.0 GHz (Section VI-B)", l.Min())
	}
	if l.Max() != F2700 {
		t.Errorf("MIX ceiling = %v, want 2.7 GHz", l.Max())
	}
}

func TestLadderValidate(t *testing.T) {
	cases := []struct {
		name string
		l    Ladder
		ok   bool
	}{
		{"empty", Ladder{}, false},
		{"single", Ladder{F2000}, true},
		{"descending", Ladder{F2000, F1200}, false},
		{"duplicate", Ladder{F1200, F1200}, false},
		{"negative", Ladder{-5, F1200}, false},
		{"curie", CurieLadder(), true},
	}
	for _, tc := range cases {
		if err := tc.l.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestLadderBelowAbove(t *testing.T) {
	l := CurieLadder()
	if f, ok := l.Below(F2700); !ok || f != F2400 {
		t.Errorf("Below(2.7) = %v,%v want 2.4,true", f, ok)
	}
	if _, ok := l.Below(F1200); ok {
		t.Errorf("Below(1.2) should fail at ladder bottom")
	}
	if f, ok := l.Above(F1200); !ok || f != F1400 {
		t.Errorf("Above(1.2) = %v,%v want 1.4,true", f, ok)
	}
	if _, ok := l.Above(F2700); ok {
		t.Errorf("Above(2.7) should fail at ladder top")
	}
	// Below on a non-member frequency snaps to the next lower member.
	if f, ok := l.Below(2500); !ok || f != F2400 {
		t.Errorf("Below(2500) = %v,%v want 2.4,true", f, ok)
	}
}

func TestLadderClamp(t *testing.T) {
	l := CurieLadder()
	for _, tc := range []struct{ in, want Freq }{
		{500, F1200}, {F1200, F1200}, {1300, F1200}, {F2000, F2000},
		{2699, F2400}, {F2700, F2700}, {9999, F2700},
	} {
		if got := l.Clamp(tc.in); got != tc.want {
			t.Errorf("Clamp(%d) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestLadderDescending(t *testing.T) {
	d := CurieLadder().Descending()
	if d[0] != F2700 || d[len(d)-1] != F1200 {
		t.Fatalf("Descending = %v", d)
	}
	for i := 1; i < len(d); i++ {
		if d[i] >= d[i-1] {
			t.Fatalf("Descending not strictly decreasing at %d: %v", i, d)
		}
	}
}

func TestParseFreq(t *testing.T) {
	cases := []struct {
		in   string
		want Freq
		ok   bool
	}{
		{"2.7", F2700, true},
		{"2.7GHz", F2700, true},
		{"2700", F2700, true},
		{"2700MHz", F2700, true},
		{" 1.2 ghz ", F1200, true},
		{"garbage", 0, false},
		{"-3", 0, false},
		{"0", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseFreq(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseFreq(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseFreq(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestFreqString(t *testing.T) {
	if s := F2700.String(); s != "2.7 GHz" {
		t.Errorf("F2700.String() = %q", s)
	}
	if s := Freq(0).String(); s != "nominal" {
		t.Errorf("Freq(0).String() = %q", s)
	}
}

func TestDegradationEndpoints(t *testing.T) {
	d := CurieDegradation()
	if got := d.Factor(F2700); got != 1 {
		t.Errorf("Factor(nominal) = %v, want 1", got)
	}
	if got := d.Factor(F1200); got != DegMinCommon {
		t.Errorf("Factor(min) = %v, want %v", got, DegMinCommon)
	}
	if got := d.Factor(0); got != 1 {
		t.Errorf("Factor(0 means nominal) = %v, want 1", got)
	}
}

func TestDegradationInterpolation(t *testing.T) {
	d := CurieDegradation()
	// Midpoint of the 1.2-2.7 range is 1.95 GHz: factor = 1 + 0.63/2.
	mid := Freq(1950)
	want := 1 + (DegMinCommon-1)/2
	if got := d.Factor(mid); math.Abs(got-want) > 1e-9 {
		t.Errorf("Factor(1.95 GHz) = %v, want %v", got, want)
	}
	// Monotonically non-increasing with frequency.
	prev := math.Inf(1)
	for _, f := range CurieLadder() {
		fac := d.Factor(f)
		if fac > prev {
			t.Errorf("Factor not monotone: Factor(%v)=%v > previous %v", f, fac, prev)
		}
		prev = fac
	}
}

func TestMixDegradation(t *testing.T) {
	d := MixDegradation()
	if got := d.Factor(F2000); math.Abs(got-DegMinMix) > 1e-9 {
		t.Errorf("MIX Factor(2.0 GHz) = %v, want %v", got, DegMinMix)
	}
	if got := d.Factor(F2700); got != 1 {
		t.Errorf("MIX Factor(2.7 GHz) = %v, want 1", got)
	}
}

func TestNewDegradationRejects(t *testing.T) {
	if _, err := NewDegradation(Ladder{}, 1.5); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := NewDegradation(CurieLadder(), 0.9); err == nil {
		t.Error("degMin < 1 accepted")
	}
}

func TestScaleDuration(t *testing.T) {
	d := CurieDegradation()
	if got := d.ScaleDuration(100, F2700); got != 100 {
		t.Errorf("ScaleDuration nominal = %d, want 100", got)
	}
	if got := d.ScaleDuration(100, F1200); got != 163 {
		t.Errorf("ScaleDuration min = %d, want 163", got)
	}
	if got := d.ScaleDuration(0, F1200); got != 0 {
		t.Errorf("ScaleDuration(0) = %d, want 0", got)
	}
	if got := d.ScaleDuration(-7, F1200); got != -7 {
		t.Errorf("ScaleDuration(-7) = %d, want passthrough -7", got)
	}
}

func TestScaleDurationNeverShrinks(t *testing.T) {
	d := CurieDegradation()
	f := func(nominal int64, rung uint8) bool {
		if nominal < 0 {
			nominal = -nominal
		}
		nominal %= 1 << 40 // keep the float math exact enough
		l := CurieLadder()
		fr := l[int(rung)%len(l)]
		return d.ScaleDuration(nominal, fr) >= nominal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedInverse(t *testing.T) {
	d := CurieDegradation()
	for _, f := range CurieLadder() {
		if got := d.Speed(f) * d.Factor(f); math.Abs(got-1) > 1e-12 {
			t.Errorf("Speed*Factor at %v = %v, want 1", f, got)
		}
	}
}

// TestRhoFigure5 checks rho against every row of Figure 5 of the paper
// (Curie constants: Pmax=358, Pdvfs=193, Poff=14).
func TestRhoFigure5(t *testing.T) {
	rows := []struct {
		name    string
		degmin  float64
		wantRho float64
	}{
		{"NA", 2.27, 0.0},
		{"linpack", 2.14, -0.027},
		{"IMB", 2.13, -0.029},
		{"SPEC Float", 1.89, -0.088},
		{"SPEC Integer", 1.74, -0.134},
		{"Common value", 1.63, -0.174},
		{"NAS suite", 1.5, -0.225},
		{"STREAM", 1.26, -0.350},
		{"GROMACS", 1.16, -0.422},
	}
	for _, r := range rows {
		got := Rho(r.degmin, 358, 193, 14)
		if math.Abs(got-r.wantRho) > 0.006 {
			t.Errorf("%s: rho = %.4f, want %.3f (Figure 5)", r.name, got, r.wantRho)
		}
	}
}

func TestRhoBreakEvenDegmin(t *testing.T) {
	// rho == 0 at degmin = 1/(1-Pmin/(Pmax-Poff)); for the Curie
	// constants that is about 2.27-2.28 (the "NA" row of Figure 5).
	breakEven := 1 / (1 - 193.0/(358.0-14))
	if math.Abs(breakEven-2.27) > 0.02 {
		t.Fatalf("Curie break-even degmin = %v, want about 2.27", breakEven)
	}
	if rho := Rho(breakEven, 358, 193, 14); math.Abs(rho) > 1e-9 {
		t.Errorf("rho at break-even = %v, want 0", rho)
	}
}

func TestChooseMechanism(t *testing.T) {
	if ChooseMechanism(0.1) != MechanismDVFS {
		t.Error("positive rho should choose DVFS")
	}
	if ChooseMechanism(-0.1) != MechanismShutdown {
		t.Error("negative rho should choose shutdown")
	}
	if ChooseMechanism(0) != MechanismEither {
		t.Error("zero rho should report either")
	}
}

func TestMechanismString(t *testing.T) {
	for m, want := range map[Mechanism]string{
		MechanismShutdown: "Switch-off",
		MechanismDVFS:     "DVFS",
		MechanismEither:   "Either",
		Mechanism(42):     "Mechanism(42)",
	} {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

// With real shutdown available, every Figure 5 benchmark row yields a
// negative rho on the Curie constants, i.e. switch-off wins — the paper's
// Section VI-B conclusion "shutdown is the best mechanism to use".
func TestRhoAllBenchmarksChooseShutdown(t *testing.T) {
	for _, degmin := range []float64{1.16, 1.26, 1.5, 1.63, 1.74, 1.89, 2.13, 2.14} {
		if rho := Rho(degmin, 358, 193, 14); rho >= 0 {
			t.Errorf("rho(degmin=%v) = %v, want < 0 (switch-off)", degmin, rho)
		}
	}
}

func TestGHz(t *testing.T) {
	if got := F2700.GHz(); got != 2.7 {
		t.Errorf("GHz = %v", got)
	}
}

func TestLadderContains(t *testing.T) {
	l := CurieLadder()
	if !l.Contains(F1800) {
		t.Error("Contains(F1800) = false")
	}
	if l.Contains(1900) {
		t.Error("Contains(1900) = true")
	}
}

func TestLadderCloneIndependent(t *testing.T) {
	l := CurieLadder()
	cl := l.Clone()
	cl[0] = 1
	if l[0] == 1 {
		t.Error("Clone aliases the original")
	}
}
