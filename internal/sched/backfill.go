package sched

import "sort"

// RunningJob is the view of a dispatched job the backfill logic needs:
// its core count and the time the scheduler must assume it ends (start +
// scaled walltime — the user estimate, not the actual runtime; the
// paper's Section VII-B stresses how badly those estimates are off and
// how that cripples backfilling).
type RunningJob struct {
	Cores       int
	ExpectedEnd int64
}

// ShadowTime computes the EASY-backfill reservation point for the head
// blocked job: the earliest instant at which at least `need` cores are
// free, assuming running jobs release their cores at their expected ends.
// freeNow is the currently free core count. Returns ok=false when even
// with everything released the job does not fit (it then waits for state
// changes such as nodes powering back on).
//
// The input is copied and sorted; callers that already keep their
// running view ordered by ExpectedEnd should use ShadowTimeSorted and
// skip the per-call copy.
func ShadowTime(running []RunningJob, freeNow, need int, now int64) (int64, bool) {
	if need <= freeNow {
		return now, true
	}
	rs := make([]RunningJob, len(running))
	copy(rs, running)
	sort.Slice(rs, func(i, j int) bool { return rs[i].ExpectedEnd < rs[j].ExpectedEnd })
	return shadowFromSorted(rs, freeNow, need, now)
}

// ShadowTimeSorted is ShadowTime for a running view already sorted by
// ascending ExpectedEnd. It allocates nothing — the scheduling pass
// calls it once per blocked head with a reused, pre-sorted view. The
// result only depends on the (end, cores) multiset, so any tie order
// among equal ends yields the same reservation point.
func ShadowTimeSorted(running []RunningJob, freeNow, need int, now int64) (int64, bool) {
	if need <= freeNow {
		return now, true
	}
	return shadowFromSorted(running, freeNow, need, now)
}

func shadowFromSorted(rs []RunningJob, freeNow, need int, now int64) (int64, bool) {
	free := freeNow
	for _, r := range rs {
		free += r.Cores
		if free >= need {
			end := r.ExpectedEnd
			if end < now {
				end = now
			}
			return end, true
		}
	}
	return 0, false
}

// FreeCoresAt projects how many cores are free at a future instant t,
// given the current free count and the running set.
func FreeCoresAt(running []RunningJob, freeNow int, t int64) int {
	free := freeNow
	for _, r := range running {
		if r.ExpectedEnd <= t {
			free += r.Cores
		}
	}
	return free
}
