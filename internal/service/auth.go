package service

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"
	"time"
)

// TenantConfig is one tenant of a multi-tenant daemon: an identity, its
// bearer token, and the quotas bounding what it may ask of the shared
// pool (cc-backend's JWT-per-user API tokens are the model; this is the
// static-file equivalent). Zero quota fields mean unlimited — quotas
// are opt-in per tenant, not defaults.
type TenantConfig struct {
	// Name is the tenant identity runs are accounted to.
	Name string `json:"name"`
	// Token is the bearer token presented in the Authorization header.
	Token string `json:"token"`
	// MaxQueued caps the tenant's live (queued + running) runs; further
	// fresh submissions get 429 until one finishes. Cache hits never
	// count — dedupe into an existing run costs the pool nothing.
	MaxQueued int `json:"max_queued,omitempty"`
	// RatePerMin caps submissions per minute (token bucket); beyond it
	// submissions get 429 with a Retry-After.
	RatePerMin float64 `json:"rate_per_min,omitempty"`
	// Burst is the bucket size (default: RatePerMin rounded up, at
	// least 1) — how many submissions may arrive back to back before
	// the rate applies.
	Burst int `json:"burst,omitempty"`
	// Admin marks operators: they may cancel any tenant's runs.
	Admin bool `json:"admin,omitempty"`
}

// tokensFile is the JSON schema of a -tokens-file.
type tokensFile struct {
	Tenants []TenantConfig `json:"tenants"`
}

// LoadTokens reads a tenant/token file:
//
//	{"tenants": [
//	  {"name": "alice", "token": "s3cret", "max_queued": 4, "rate_per_min": 120},
//	  {"name": "ops",   "token": "0p5",    "admin": true}
//	]}
func LoadTokens(path string) ([]TenantConfig, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var tf tokensFile
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tf.Tenants, nil
}

// tenantState is one tenant's live accounting: its config plus the
// submission token bucket.
type tenantState struct {
	cfg    TenantConfig
	tokens float64
	last   time.Time
}

// Auth authenticates bearer tokens and enforces per-tenant submission
// rate limits. A nil *Auth means the daemon runs open (no
// authentication, no quotas) — the single-user default.
type Auth struct {
	// now is the clock; tests inject a fake.
	now func() time.Time

	mu      sync.Mutex
	byToken map[string]*tenantState
	byName  map[string]*tenantState
}

// NewAuth builds the authenticator, rejecting duplicate tokens or
// names and empty fields — a tokens file that silently merged two
// tenants would mis-account every run.
func NewAuth(tenants []TenantConfig) (*Auth, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("service: tokens file names no tenants")
	}
	a := &Auth{
		now:     time.Now,
		byToken: map[string]*tenantState{},
		byName:  map[string]*tenantState{},
	}
	for i, tc := range tenants {
		if tc.Name == "" || tc.Token == "" {
			return nil, fmt.Errorf("service: tenant %d needs both name and token", i)
		}
		if tc.MaxQueued < 0 || tc.RatePerMin < 0 || tc.Burst < 0 {
			return nil, fmt.Errorf("service: tenant %q has a negative quota", tc.Name)
		}
		if _, dup := a.byName[tc.Name]; dup {
			return nil, fmt.Errorf("service: duplicate tenant name %q", tc.Name)
		}
		if _, dup := a.byToken[tc.Token]; dup {
			return nil, fmt.Errorf("service: two tenants share one token")
		}
		st := &tenantState{cfg: tc, tokens: float64(burstOf(tc))}
		a.byName[tc.Name] = st
		a.byToken[tc.Token] = st
	}
	return a, nil
}

func burstOf(tc TenantConfig) int {
	if tc.Burst > 0 {
		return tc.Burst
	}
	if b := int(math.Ceil(tc.RatePerMin)); b > 0 {
		return b
	}
	return 1
}

// Authenticate resolves an Authorization header ("Bearer <token>") to
// its tenant. Missing, malformed and unknown tokens are all the same
// 401 — the error never confirms whether a token exists.
func (a *Auth) Authenticate(authorization string) (TenantConfig, error) {
	unauthorized := &Error{Status: 401, Msg: "service: missing or invalid bearer token"}
	scheme, token, ok := strings.Cut(authorization, " ")
	if !ok || !strings.EqualFold(strings.TrimSpace(scheme), "Bearer") {
		return TenantConfig{}, unauthorized
	}
	token = strings.TrimSpace(token)
	a.mu.Lock()
	defer a.mu.Unlock()
	// The map lookup short-circuits on length/content, so equalize the
	// comparison cost for present tokens at least; the token space is
	// high-entropy secrets, not passwords, and the file is operator
	// controlled.
	st, ok := a.byToken[token]
	if !ok || subtle.ConstantTimeCompare([]byte(st.cfg.Token), []byte(token)) != 1 {
		return TenantConfig{}, unauthorized
	}
	return st.cfg, nil
}

// AllowSubmit charges one submission against the tenant's rate bucket.
// When the bucket is empty it returns false and how long until the next
// token accrues — the Retry-After the 429 carries. Tenants without a
// configured rate always pass.
func (a *Auth) AllowSubmit(name string) (time.Duration, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.byName[name]
	if !ok || st.cfg.RatePerMin <= 0 {
		return 0, true
	}
	now := a.now()
	perSec := st.cfg.RatePerMin / 60
	if !st.last.IsZero() {
		st.tokens += now.Sub(st.last).Seconds() * perSec
	}
	st.last = now
	if burst := float64(burstOf(st.cfg)); st.tokens > burst {
		st.tokens = burst
	}
	if st.tokens >= 1 {
		st.tokens--
		return 0, true
	}
	wait := time.Duration((1 - st.tokens) / perSec * float64(time.Second))
	return wait, false
}

// Tenant returns the named tenant's config (tests and quota checks).
func (a *Auth) Tenant(name string) (TenantConfig, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.byName[name]
	if !ok {
		return TenantConfig{}, false
	}
	return st.cfg, true
}
