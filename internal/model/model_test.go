package model

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dvfs"
)

func curie1000() Params { return CurieParams(1000) }

func TestValidate(t *testing.T) {
	if err := curie1000().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{N: 0, PMax: 358, PMin: 193, POff: 14, DegMin: 1.63},
		{N: 10, PMax: 358, PMin: 193, POff: -1, DegMin: 1.63},
		{N: 10, PMax: 358, PMin: 10, POff: 14, DegMin: 1.63},
		{N: 10, PMax: 100, PMin: 193, POff: 14, DegMin: 1.63},
		{N: 10, PMax: 358, PMin: 193, POff: 14, DegMin: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad[%d] accepted: %+v", i, p)
		}
	}
}

func TestUncapped(t *testing.T) {
	p := curie1000()
	pl, err := Solve(p, p.MaxPower()+1)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Case != CaseUncapped {
		t.Fatalf("case = %v, want uncapped", pl.Case)
	}
	if pl.Work != 1000 || pl.IntNOff != 0 || pl.IntNDvfs != 0 {
		t.Errorf("plan = %+v", pl)
	}
}

func TestInfeasible(t *testing.T) {
	p := curie1000()
	_, err := Solve(p, float64(p.N)*p.POff-1)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveRejectsInvalidParams(t *testing.T) {
	if _, err := Solve(Params{}, 100); err == nil {
		t.Error("invalid params accepted")
	}
}

// With the Curie constants rho < 0, so the paper's rule picks shutdown for
// any moderate cap; the shutdown-only closed form must hold.
func TestShutdownOnlyClosedForm(t *testing.T) {
	p := curie1000()
	lambda := 0.6
	pl, err := SolveFraction(p, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if pl.PaperChoice != dvfs.MechanismShutdown {
		t.Errorf("paper choice = %v, want shutdown (rho=%v)", pl.PaperChoice, pl.Rho)
	}
	capW := lambda * p.MaxPower()
	wantNOff := (float64(p.N)*p.PMax - capW) / (p.PMax - p.POff)
	// The plan reports the work-maximizing counts; the pure-shutdown
	// candidate must match the closed form regardless of the winner.
	gotNOff := (float64(p.N)*p.PMax - capW) / (p.PMax - p.POff)
	if math.Abs(gotNOff-wantNOff) > 1e-9 {
		t.Errorf("NOff closed form broken")
	}
	if math.Abs(pl.WorkOff-(float64(p.N)-wantNOff)) > 1e-9 {
		t.Errorf("WorkOff = %v, want %v", pl.WorkOff, float64(p.N)-wantNOff)
	}
	// Integral counts satisfy the cap.
	if got := PowerOfCounts(p, pl.IntNOff, pl.IntNDvfs); got > capW+1e-6 {
		t.Errorf("integral plan draws %v > cap %v", got, capW)
	}
}

func TestDvfsOnlyClosedForm(t *testing.T) {
	// Choose parameters where DVFS wins the direct work comparison:
	// tiny degradation.
	p := Params{N: 100, PMax: 358, PMin: 193, POff: 14, DegMin: 1.05}
	pl, err := SolveFraction(p, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if pl.DerivedChoice != dvfs.MechanismDVFS {
		t.Fatalf("derived choice = %v (WorkOff=%v WorkDvfs=%v)", pl.DerivedChoice, pl.WorkOff, pl.WorkDvfs)
	}
	if pl.Case != CaseDVFSOnly {
		t.Fatalf("case = %v", pl.Case)
	}
	capW := 0.8 * p.MaxPower()
	wantNDvfs := (float64(p.N)*p.PMax - capW) / (p.PMax - p.PMin)
	if math.Abs(pl.NDvfs-wantNDvfs) > 1e-9 {
		t.Errorf("NDvfs = %v, want %v", pl.NDvfs, wantNDvfs)
	}
	wantW := float64(p.N) - wantNDvfs*(1-1/p.DegMin)
	if math.Abs(pl.Work-wantW) > 1e-9 {
		t.Errorf("Work = %v, want %v", pl.Work, wantW)
	}
}

// Below lambda = Pmin/Pmax the cap is unreachable by DVFS alone (Section
// III-A) and both mechanisms combine: Ndvfs = (P-N*Poff)/(Pmin-Poff).
func TestCaseBothClosedForm(t *testing.T) {
	p := curie1000()
	lambda := 0.4 // < LambdaMin = 193/358 = 0.539
	if lambda >= p.LambdaMin() {
		t.Fatalf("test premise broken: lambda %v >= LambdaMin %v", lambda, p.LambdaMin())
	}
	pl, err := SolveFraction(p, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Case != CaseBoth {
		t.Fatalf("case = %v, want both", pl.Case)
	}
	capW := lambda * p.MaxPower()
	wantNDvfs := (capW - float64(p.N)*p.POff) / (p.PMin - p.POff)
	if math.Abs(pl.NDvfs-wantNDvfs) > 1e-9 {
		t.Errorf("NDvfs = %v, want %v", pl.NDvfs, wantNDvfs)
	}
	if math.Abs(pl.NOff-(float64(p.N)-wantNDvfs)) > 1e-9 {
		t.Errorf("NOff = %v, want %v", pl.NOff, float64(p.N)-wantNDvfs)
	}
	if math.Abs(pl.Work-wantNDvfs/p.DegMin) > 1e-9 {
		t.Errorf("Work = %v, want %v", pl.Work, wantNDvfs/p.DegMin)
	}
	if !math.IsNaN(pl.WorkDvfs) {
		t.Errorf("WorkDvfs = %v, want NaN (infeasible)", pl.WorkDvfs)
	}
	if got := PowerOfCounts(p, pl.IntNOff, pl.IntNDvfs); got > capW+1e-6 {
		t.Errorf("integral plan draws %v > cap %v", got, capW)
	}
	// In CaseBoth every node is off or at fmin.
	if pl.IntNOff+pl.IntNDvfs != p.N {
		t.Errorf("IntNOff+IntNDvfs = %d, want N=%d", pl.IntNOff+pl.IntNDvfs, p.N)
	}
}

func TestLambdaMin(t *testing.T) {
	p := curie1000()
	want := 193.0 / 358.0
	if math.Abs(p.LambdaMin()-want) > 1e-12 {
		t.Errorf("LambdaMin = %v, want %v", p.LambdaMin(), want)
	}
	// Just above the threshold DVFS-only is feasible, just below it is not.
	above, err := SolveFraction(p, want+0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(above.WorkDvfs) {
		t.Error("DVFS infeasible just above LambdaMin")
	}
	below, err := SolveFraction(p, want-0.01)
	if err != nil {
		t.Fatal(err)
	}
	if below.Case != CaseBoth {
		t.Errorf("case just below LambdaMin = %v, want both", below.Case)
	}
}

func TestCaseEither(t *testing.T) {
	// Pick DegMin exactly at the derived break-even
	// (PMax-PMin)/(PMax-POff) = 1 - 1/deg => deg = (PMax-POff)/(PMin-POff).
	p := Params{N: 100, PMax: 358, PMin: 193, POff: 14}
	p.DegMin = (p.PMax - p.POff) / (p.PMin - p.POff)
	pl, err := SolveFraction(p, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Case != CaseEither {
		t.Fatalf("case = %v (WorkOff=%v WorkDvfs=%v)", pl.Case, pl.WorkOff, pl.WorkDvfs)
	}
	if pl.DerivedChoice != dvfs.MechanismEither {
		t.Errorf("derived choice = %v", pl.DerivedChoice)
	}
}

// TestPaperVersusDerivedChoice documents the Figure 5 discrepancy: on the
// Curie constants with degMin = 1.63 the published rho picks shutdown while
// the direct work comparison favors DVFS.
func TestPaperVersusDerivedChoice(t *testing.T) {
	p := curie1000()
	pl, err := SolveFraction(p, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if pl.PaperChoice != dvfs.MechanismShutdown {
		t.Errorf("paper choice = %v, want shutdown", pl.PaperChoice)
	}
	if pl.DerivedChoice != dvfs.MechanismDVFS {
		t.Errorf("derived choice = %v, want DVFS (WorkOff=%v WorkDvfs=%v)",
			pl.DerivedChoice, pl.WorkOff, pl.WorkDvfs)
	}
}

func TestCaseString(t *testing.T) {
	for c, want := range map[Case]string{
		CaseUncapped: "uncapped", CaseShutdownOnly: "shutdown-only",
		CaseDVFSOnly: "dvfs-only", CaseEither: "either",
		CaseBoth: "both-mechanisms", Case(42): "Case(42)",
	} {
		if got := c.String(); got != want {
			t.Errorf("Case(%d) = %q, want %q", int(c), got, want)
		}
	}
}

func TestWorkOfCounts(t *testing.T) {
	p := curie1000()
	if got := WorkOfCounts(p, 0, 0); got != 1000 {
		t.Errorf("WorkOfCounts(0,0) = %v", got)
	}
	if got := WorkOfCounts(p, 1000, 0); got != 0 {
		t.Errorf("WorkOfCounts(all off) = %v", got)
	}
	want := 1000 / p.DegMin
	if got := WorkOfCounts(p, 0, 1000); math.Abs(got-want) > 1e-9 {
		t.Errorf("WorkOfCounts(all dvfs) = %v, want %v", got, want)
	}
}

func TestPowerOfCounts(t *testing.T) {
	p := curie1000()
	if got := PowerOfCounts(p, 0, 0); got != p.MaxPower() {
		t.Errorf("PowerOfCounts(0,0) = %v, want max", got)
	}
	if got := PowerOfCounts(p, 1000, 0); got != 14000 {
		t.Errorf("PowerOfCounts(all off) = %v, want 14000", got)
	}
}

// Property: the integral plan always satisfies the cap, and its work never
// exceeds the continuous optimum.
func TestIntegralPlanRespectsCap(t *testing.T) {
	p := curie1000()
	f := func(frac uint16) bool {
		lambda := p.POff/p.PMax + (1-p.POff/p.PMax)*float64(frac)/65535
		capW := lambda * p.MaxPower()
		pl, err := Solve(p, capW)
		if err != nil {
			return false
		}
		if PowerOfCounts(p, pl.IntNOff, pl.IntNDvfs) > capW+1e-6 {
			return false
		}
		return WorkOfCounts(p, pl.IntNOff, pl.IntNDvfs) <= pl.Work+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: work is monotone non-decreasing in the cap.
func TestWorkMonotoneInCap(t *testing.T) {
	p := curie1000()
	f := func(a, b uint16) bool {
		la := p.POff/p.PMax + (1-p.POff/p.PMax)*float64(a)/65535
		lb := p.POff/p.PMax + (1-p.POff/p.PMax)*float64(b)/65535
		if la > lb {
			la, lb = lb, la
		}
		pa, err := SolveFraction(p, la)
		if err != nil {
			return false
		}
		pb, err := SolveFraction(p, lb)
		if err != nil {
			return false
		}
		return pa.Work <= pb.Work+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the chosen work equals max(WorkOff, WorkDvfs) whenever both are
// feasible.
func TestChosenWorkIsMax(t *testing.T) {
	p := curie1000()
	f := func(frac uint16) bool {
		lambda := p.LambdaMin() + (1-p.LambdaMin())*float64(frac)/65535
		pl, err := SolveFraction(p, lambda)
		if err != nil {
			return false
		}
		if pl.Case == CaseUncapped {
			return pl.Work == float64(p.N)
		}
		want := math.Max(pl.WorkOff, pl.WorkDvfs)
		return math.Abs(pl.Work-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// The worked example of Section VI-A: a 6600 W reduction requires 20
// individual node switch-offs (6880 W saved) at 344 W per node.
func TestSectionVIAWorkedExample(t *testing.T) {
	perNode := 358.0 - 14.0
	if perNode != 344 {
		t.Fatalf("per-node saving = %v", perNode)
	}
	nodes := int(math.Ceil(6600 / perNode))
	if nodes != 20 {
		t.Errorf("nodes for 6600 W = %d, want 20", nodes)
	}
	if saved := float64(nodes) * perNode; saved != 6880 {
		t.Errorf("saved = %v, want 6880", saved)
	}
}
