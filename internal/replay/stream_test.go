package replay

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/trace"
)

// writeBigSWF streams n synthetic submit-sorted jobs to an SWF file
// without ever materializing them: 1-4 core jobs, 20-60 s runtimes,
// arrivals spread over spanSec.
func writeBigSWF(t *testing.T, path string, n int, spanSec int64) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := trace.NewWriter(f, "synthetic big trace")
	for i := 0; i < n; i++ {
		j := &job.Job{
			ID:     job.ID(i + 1),
			User:   "user" + string(rune('0'+i%10)),
			Cores:  1 + i%4,
			Submit: int64(i) * spanSec / int64(n),
			// A deterministic runtime mix; walltime over-requested as on
			// Curie.
			Runtime:  20 + int64(i*7%41),
			Walltime: 3600,
		}
		if err := w.Write(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamedSWFReplayBoundedMemory replays a 120k-job SWF trace
// through the streaming scenario path on a one-rack machine and checks
// that the replay (a) ingests every job and (b) never materializes the
// trace: the retained-heap growth must stay far below the ~18 MB a
// full-trace job slice would pin.
func TestStreamedSWFReplayBoundedMemory(t *testing.T) {
	const n = 120000
	const duration = 14400
	path := filepath.Join(t.TempDir(), "big.swf")
	writeBigSWF(t, path, n, duration-400)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	s := Scenario{
		Name:       "big/100%/None",
		Workload:   trace.Config{DurationSec: duration},
		Policy:     core.PolicyNone,
		ScaleRacks: 1,
		SWF:        &trace.SWFSource{Path: path},
	}
	r := Run(s)
	if r.Err != nil {
		t.Fatal(r.Err)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)

	if r.Summary.JobsSubmitted != n {
		t.Fatalf("submitted %d jobs, want %d", r.Summary.JobsSubmitted, n)
	}
	if r.Summary.JobsCompleted < n*9/10 {
		t.Fatalf("only %d/%d jobs completed; workload should drain", r.Summary.JobsCompleted, n)
	}
	// Retained heap after the run: the time series and scratch buffers,
	// never the trace. 10 MB is a loose ceiling well below one job slice.
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > 10<<20 {
		t.Fatalf("retained heap grew by %d bytes; streaming path must not materialize the trace", growth)
	}
}

// TestStreamedSWFMatchesMaterialized runs the same windowed, rescaled
// SWF interval through the streaming path and through a materialized
// Jobs list and requires identical results.
func TestStreamedSWFMatchesMaterialized(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.swf")
	writeBigSWF(t, path, 5000, 6800)
	src := trace.SWFSource{
		Path:        path,
		WindowStart: 600, WindowEnd: 6600,
		CoresFrom: 4, CoresTo: 2,
	}
	base := Scenario{
		Name:        "swf/60%/SHUT",
		Workload:    trace.Config{DurationSec: 7200},
		Policy:      core.PolicyShut,
		CapFraction: 0.6,
		ScaleRacks:  1,
	}
	streamed := base
	streamed.SWF = &src
	jobs, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	materialized := base
	materialized.Jobs = jobs

	a, b := Run(streamed), Run(materialized)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("runs failed: %v / %v", a.Err, b.Err)
	}
	if !reflect.DeepEqual(a.Summary, b.Summary) {
		t.Fatalf("summaries differ:\n stream       %+v\n materialized %+v", a.Summary, b.Summary)
	}
	if !reflect.DeepEqual(a.Samples, b.Samples) {
		t.Fatal("time series differ between streamed and materialized replay")
	}
}

// TestFromSWFScenario exercises the FromSWF constructor end to end.
func TestFromSWFScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.swf")
	writeBigSWF(t, path, 800, 1700)
	s := FromSWF("swf/40%/DVFS", trace.SWFSource{Path: path}, core.PolicyDvfs, 0.4, 1800)
	s.ScaleRacks = 1
	if got := s.Duration(); got != 1800 {
		t.Fatalf("Duration = %d, want 1800", got)
	}
	r := Run(s)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Summary.JobsSubmitted != 800 {
		t.Fatalf("submitted %d, want 800", r.Summary.JobsSubmitted)
	}
}
