package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// GatewayConfig tunes a fleet gateway. The zero value is serviceable:
// open (no auth), 256 queued submissions, 4 dispatch slots, 15s worker
// leases.
type GatewayConfig struct {
	// Auth enables bearer-token tenancy, exactly as on a single daemon.
	// The gateway enforces ownership itself; workers behind it run open
	// and must not be reachable by tenants directly.
	Auth *Auth
	// QueueDepth bounds undispatched submissions (default 256).
	QueueDepth int
	// Dispatchers is the number of concurrent dispatch slots — how many
	// submissions may be in flight toward workers at once (default 4).
	Dispatchers int
	// LeaseTTL is how long a worker stays routable without a heartbeat;
	// past it the worker is declared dead and its in-flight runs are
	// requeued (default 15s).
	LeaseTTL time.Duration
	// RetryDelay paces dispatch retries when no worker can take a run
	// (default 250ms).
	RetryDelay time.Duration
	// PollInterval paces the per-run completion watchers (default
	// 150ms, the Client default).
	PollInterval time.Duration
	// HTTPClient is used for all worker traffic (default
	// http.DefaultClient).
	HTTPClient *http.Client
	// Logger receives the gateway's structured log lines; nil disables
	// logging (every log call on a nil logger is a cheap no-op).
	Logger *obs.Logger
	// SSEKeepalive paces comment frames on locally-answered event
	// streams (default 15s; negative disables). Proxied streams carry
	// the worker's keepalives through verbatim.
	SSEKeepalive time.Duration
}

func (c GatewayConfig) withDefaults() GatewayConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = 4
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 250 * time.Millisecond
	}
	if c.SSEKeepalive == 0 {
		c.SSEKeepalive = 15 * time.Second
	}
	return c
}

// errNoWorkers is the retryable dispatch verdict while the fleet is
// empty: the retry scheduler keeps the run queued until a worker joins.
var errNoWorkers = errors.New("gateway: no live workers")

// member is one registered worker: its address, its lease and the
// client all proxied traffic rides on.
type member struct {
	name     string
	base     string
	client   *Client
	lastSeen time.Time
	alive    bool
}

// gwRun is the gateway-side record of one submission: who owns it,
// where it executes, and the last state the watcher observed. The
// gateway never runs physics — a gwRun is a routing entry, and every
// heavy read (report, telemetry, events) proxies to the assigned
// worker.
type gwRun struct {
	id     string
	seq    int
	hash   string
	spec   sim.RunSpec
	tenant string

	policies []string
	kinds    []string

	state     State
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	hits      int
	done      int
	total     int

	// worker/workerRunID bind the run to its executing member; both
	// empty while queued (or requeued after a worker death).
	worker      string
	workerRunID string
	// requeues counts worker deaths this run survived.
	requeues int
	// reqID is the submitting request's trace id; dispatch and the
	// watcher forward it to the worker so one id stitches the gateway's
	// and the worker's logs together.
	reqID string
}

func (r *gwRun) view() RunView {
	v := RunView{
		ID:          r.id,
		SpecHash:    r.hash,
		Name:        r.spec.Name,
		Mode:        r.spec.Mode,
		State:       r.state,
		Error:       r.errMsg,
		Tenant:      r.tenant,
		CacheHits:   r.hits,
		CellsDone:   r.done,
		CellsTotal:  r.total,
		SubmittedAt: r.submitted,
	}
	if !r.started.IsZero() {
		t := r.started
		v.StartedAt = &t
		end := time.Now()
		if !r.finished.IsZero() {
			end = r.finished
		}
		v.ElapsedMS = float64(end.Sub(r.started).Microseconds()) / 1000
	}
	if !r.finished.IsZero() {
		t := r.finished
		v.FinishedAt = &t
	}
	return v
}

// record builds the run's list-view Record (for the shared paging
// helpers).
func (r *gwRun) record() Record {
	return Record{
		ID:         r.id,
		Seq:        r.seq,
		Tenant:     r.tenant,
		SpecHash:   r.hash,
		Name:       r.spec.Name,
		Mode:       r.spec.Mode,
		Policies:   r.policies,
		Kinds:      r.kinds,
		State:      r.state,
		Error:      r.errMsg,
		Submitted:  r.submitted,
		Started:    r.started,
		Finished:   r.finished,
		CacheHits:  r.hits,
		CellsDone:  r.done,
		CellsTotal: r.total,
	}
}

// Gateway is the fleet front door: it accepts the same /v1 API a single
// daemon serves, routes each fresh submission to a registered worker by
// rendezvous hashing on the spec hash (identical specs always land on
// the same live worker, so every worker's local result cache keeps its
// hit rate), watches runs to completion, and requeues the in-flight
// runs of any worker whose lease expires. The simulation engine is
// deterministic, so a requeued run re-executed on another worker
// produces a byte-identical report — worker death costs latency, never
// correctness.
type Gateway struct {
	cfg   GatewayConfig
	sched Scheduler
	met   *gatewayMetrics
	log   *obs.Logger

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu        sync.Mutex
	members   map[string]*member
	runs      map[string]*gwRun
	order     []*gwRun
	byHash    map[string]*gwRun // latest run per hash (the dedupe index)
	nextSeq   int
	cacheHits int
	requeues  int
	draining  bool
}

// NewGateway builds a gateway and starts its dispatcher and lease
// sweeper.
func NewGateway(cfg GatewayConfig) *Gateway {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	g := &Gateway{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		members:    map[string]*member{},
		runs:       map[string]*gwRun{},
		byHash:     map[string]*gwRun{},
	}
	g.sched = NewRetryScheduler(cfg.Dispatchers, cfg.QueueDepth, cfg.RetryDelay, g.dispatch)
	g.log = cfg.Logger.Component("gateway")
	g.met = newGatewayMetrics(g)
	// The retry counter rides a concrete-type hook so the Scheduler
	// interface stays lifecycle-only; a backend without the hook simply
	// goes uncounted.
	if hooked, ok := g.sched.(interface{ SetRetryHook(func()) }); ok {
		hooked.SetRetryHook(g.met.dispatchRetries.Inc)
	}
	go g.sweep()
	return g
}

// Shutdown stops intake, drains the dispatch slots and stops the
// watchers. Runs already handed to workers keep executing there — a
// gateway restart re-learns the fleet from re-registrations.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	g.mu.Unlock()
	err := g.sched.Shutdown(ctx)
	g.baseCancel()
	if err != nil {
		_ = g.sched.Shutdown(context.Background())
	}
	return err
}

// RendezvousPick returns the member owning a spec hash: the candidate
// with the highest fnv64a(member + NUL + hash) score (ties broken by
// name). Every caller with the same live set picks the same member, and
// a member's death only moves the hashes it owned — the property that
// keeps worker-local result caches hot across fleet changes.
func RendezvousPick(members []string, specHash string) string {
	best := ""
	var bestScore uint64
	for _, m := range members {
		h := fnv.New64a()
		io.WriteString(h, m)
		h.Write([]byte{0})
		io.WriteString(h, specHash)
		if s := h.Sum64(); best == "" || s > bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best
}

// Register adds (or re-addresses) a worker and opens its lease,
// returning the lease TTL the worker must heartbeat within.
func (g *Gateway) Register(name, base string) (time.Duration, error) {
	if name == "" || base == "" {
		return 0, &Error{Status: 400, Msg: "gateway: join needs both name and url"}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.members[name]
	if m == nil {
		m = &member{name: name}
		g.members[name] = m
	}
	if m.base != base || m.client == nil {
		m.base = base
		c := NewClient(base)
		c.HTTPClient = g.cfg.HTTPClient
		c.PollInterval = g.cfg.PollInterval
		m.client = c
	}
	m.alive = true
	m.lastSeen = time.Now()
	return g.cfg.LeaseTTL, nil
}

// Heartbeat renews a worker's lease. Unknown names get a 404 — the
// worker's cue to re-register (a restarted gateway has an empty member
// table).
func (g *Gateway) Heartbeat(name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.members[name]
	if m == nil {
		return &Error{Status: 404, Msg: fmt.Sprintf("gateway: unknown member %q; re-register", name)}
	}
	m.alive = true
	m.lastSeen = time.Now()
	return nil
}

// sweep expires worker leases: a member silent past the TTL is dead and
// its in-flight runs are requeued.
func (g *Gateway) sweep() {
	tick := g.cfg.LeaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-g.baseCtx.Done():
			return
		case <-t.C:
		}
		now := time.Now()
		g.mu.Lock()
		var dead []string
		for name, m := range g.members {
			if m.alive && now.Sub(m.lastSeen) > g.cfg.LeaseTTL {
				dead = append(dead, name)
			}
		}
		g.mu.Unlock()
		for _, name := range dead {
			g.markDead(name)
		}
	}
}

// markDead declares a worker unroutable and requeues every non-terminal
// run assigned to it. Idempotent — the sweeper, a failed dispatch and a
// failed watcher may all report the same death; each call rescues
// whatever is still bound to the corpse.
func (g *Gateway) markDead(name string) {
	g.mu.Lock()
	m := g.members[name]
	if m == nil {
		g.mu.Unlock()
		return
	}
	wasAlive := m.alive
	m.alive = false
	var requeue []*gwRun
	for _, r := range g.runs {
		if r.worker == name && !r.state.Terminal() {
			r.worker, r.workerRunID = "", ""
			r.state = StateQueued
			r.started = time.Time{}
			r.done = 0
			r.requeues++
			g.requeues++
			requeue = append(requeue, r)
		}
	}
	g.mu.Unlock()
	g.met.requeues.Add(uint64(len(requeue)))
	if wasAlive || len(requeue) > 0 {
		g.log.Warn("worker declared dead", "member", name, "requeued", len(requeue))
	}
	for _, r := range requeue {
		if err := g.sched.Enqueue(r.id); err != nil {
			g.mu.Lock()
			if !r.state.Terminal() {
				r.state = StateFailed
				r.errMsg = fmt.Sprintf("gateway: requeue after worker %s died: %v", name, err)
				r.finished = time.Now()
			}
			g.mu.Unlock()
		}
	}
}

// dispatch is the retry scheduler's executor: route one gateway run to
// the rendezvous owner of its spec hash. A returned error means "retry
// later" (empty fleet, worker busy or mid-death); nil is a permanent
// verdict (assigned, already terminal, or failed for a reason retrying
// cannot fix).
func (g *Gateway) dispatch(id string) error {
	g.mu.Lock()
	r := g.runs[id]
	if r == nil || r.state.Terminal() || r.worker != "" {
		g.mu.Unlock()
		return nil
	}
	var alive []string
	for name, m := range g.members {
		if m.alive {
			alive = append(alive, name)
		}
	}
	if len(alive) == 0 {
		g.mu.Unlock()
		return errNoWorkers
	}
	pick := RendezvousPick(alive, r.hash)
	m := g.members[pick]
	client := m.client
	spec := r.spec
	reqID := r.reqID
	g.mu.Unlock()

	g.met.dispatches.Inc()
	// The submitting request's trace id rides the dispatch: the worker's
	// middleware adopts it, so the worker-side run logs carry the same
	// request_id the gateway logged at submission.
	ctx, cancel := context.WithTimeout(g.baseCtx, 15*time.Second)
	v, _, err := client.Submit(obs.WithRequestID(ctx, reqID), spec)
	cancel()
	if err != nil {
		g.met.dispatchErrors.Inc()
		var apiErr *Error
		if errors.As(err, &apiErr) {
			if apiErr.Status == 503 || apiErr.Status == 429 {
				// The worker is full or draining — retryable.
				g.log.Debug("dispatch deferred", "run", id, "member", pick, "status", apiErr.Status, "request_id", reqID)
				return err
			}
			// The spec itself was refused: retrying re-submits the same
			// bytes to the same verdict.
			g.mu.Lock()
			if !r.state.Terminal() {
				r.state = StateFailed
				r.errMsg = apiErr.Msg
				r.finished = time.Now()
			}
			g.mu.Unlock()
			g.log.Info("dispatch refused", "run", id, "member", pick, "error", apiErr.Msg, "request_id", reqID)
			return nil
		}
		// Transport failure: the worker is unreachable. Declare it dead
		// (requeueing everything it held, including this run) and retry.
		g.markDead(pick)
		return err
	}

	g.mu.Lock()
	if r.state.Terminal() {
		// Cancelled while the submit was in flight — undo on the worker.
		g.mu.Unlock()
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_, _ = client.Cancel(ctx, v.ID)
		}()
		return nil
	}
	r.worker = pick
	r.workerRunID = v.ID
	if v.State != "" {
		r.state = v.State
	}
	g.mu.Unlock()
	g.log.Info("run dispatched", "run", id, "member", pick, "worker_run", v.ID, "request_id", reqID)
	go g.watch(id, pick, v.ID)
	return nil
}

// watch polls one assigned run to completion, mirroring progress into
// the gateway record. A polling failure means the worker vanished:
// declare it dead, which requeues this run (and its siblings) for a
// fresh dispatch.
func (g *Gateway) watch(id, memberName, workerRunID string) {
	g.mu.Lock()
	m := g.members[memberName]
	var reqID string
	if r := g.runs[id]; r != nil {
		reqID = r.reqID
	}
	g.mu.Unlock()
	if m == nil {
		return
	}
	v, err := m.client.Wait(obs.WithRequestID(g.baseCtx, reqID), workerRunID, func(rv RunView) {
		g.observe(id, memberName, rv)
	})
	if err != nil {
		if g.baseCtx.Err() != nil {
			return
		}
		g.markDead(memberName)
		return
	}
	g.observe(id, memberName, v)
}

// observe folds a worker-reported view into the gateway record, if the
// run is still bound to that worker.
func (g *Gateway) observe(id, memberName string, rv RunView) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r := g.runs[id]
	if r == nil || r.worker != memberName || r.state.Terminal() {
		return
	}
	r.state = rv.State
	r.errMsg = rv.Error
	r.done, r.total = rv.CellsDone, rv.CellsTotal
	if rv.StartedAt != nil && r.started.IsZero() {
		r.started = *rv.StartedAt
	}
	if rv.Terminal() {
		if rv.FinishedAt != nil {
			r.finished = *rv.FinishedAt
		} else {
			r.finished = time.Now()
		}
	}
}

// SubmitAs is the gateway's submission path: validate and
// content-address exactly as a daemon would, dedupe against every run
// the gateway has routed, then queue for dispatch. The gateway bills
// quotas itself — workers run open behind it.
func (g *Gateway) SubmitAs(tenant TenantConfig, spec sim.RunSpec) (RunView, bool, error) {
	return g.submitAs(tenant, spec, "")
}

// SubmitTraced is SubmitAs carrying the request's trace id, which the
// gateway pins to the run and forwards on every worker call it makes
// for it.
func (g *Gateway) SubmitTraced(ctx context.Context, tenant TenantConfig, spec sim.RunSpec) (RunView, bool, error) {
	return g.submitAs(tenant, spec, obs.RequestIDFrom(ctx))
}

func (g *Gateway) submitAs(tenant TenantConfig, spec sim.RunSpec, reqID string) (RunView, bool, error) {
	if g.cfg.Auth != nil && tenant.Name != "" {
		if wait, ok := g.cfg.Auth.AllowSubmit(tenant.Name); !ok {
			return RunView{}, false, &Error{
				Status:     429,
				Msg:        fmt.Sprintf("service: tenant %s over submission rate", tenant.Name),
				RetryAfter: wait,
			}
		}
	}
	if err := spec.Validate(); err != nil {
		return RunView{}, false, &Error{Status: 400, Msg: err.Error()}
	}
	norm := spec.Normalize()
	hash, err := sim.SpecHash(norm)
	if err != nil {
		return RunView{}, false, &Error{Status: 400, Msg: err.Error()}
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return RunView{}, false, &Error{Status: 503, Msg: "service: draining, not accepting submissions"}
	}
	if prev := g.byHash[hash]; prev != nil && prev.state != StateFailed && prev.state != StateCancelled {
		prev.hits++
		g.cacheHits++
		g.log.Debug("cache hit", "run", prev.id, "hash", hash[:12], "request_id", reqID)
		return prev.view(), true, nil
	}
	if g.cfg.Auth != nil && tenant.Name != "" && tenant.MaxQueued > 0 {
		live := 0
		for _, r := range g.runs {
			if r.tenant == tenant.Name && !r.state.Terminal() {
				live++
			}
		}
		if live >= tenant.MaxQueued {
			return RunView{}, false, &Error{
				Status:     429,
				Msg:        fmt.Sprintf("service: tenant %s has %d live runs (quota %d)", tenant.Name, live, tenant.MaxQueued),
				RetryAfter: time.Second,
			}
		}
	}
	policies, kinds := derivePolicyKinds(norm)
	r := &gwRun{
		id:        fmt.Sprintf("g%06d", g.nextSeq+1),
		seq:       g.nextSeq,
		hash:      hash,
		spec:      norm,
		tenant:    tenant.Name,
		policies:  policies,
		kinds:     kinds,
		state:     StateQueued,
		submitted: time.Now(),
		reqID:     reqID,
	}
	g.nextSeq++
	g.runs[r.id] = r
	g.order = append(g.order, r)
	g.byHash[hash] = r
	if err := g.sched.Enqueue(r.id); err != nil {
		delete(g.runs, r.id)
		delete(g.byHash, hash)
		g.order = g.order[:len(g.order)-1]
		if errors.Is(err, ErrQueueFull) {
			return RunView{}, false, &Error{Status: 503, Msg: fmt.Sprintf("service: queue full (%d pending)", g.cfg.QueueDepth)}
		}
		return RunView{}, false, &Error{Status: 503, Msg: err.Error()}
	}
	g.log.Info("run queued", "run", r.id, "hash", hash[:12], "tenant", tenant.Name, "request_id", reqID)
	return r.view(), false, nil
}

// memberCounts tallies the member table for the gauge closures.
func (g *Gateway) memberCounts() (alive, dead int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.members {
		if m.alive {
			alive++
		} else {
			dead++
		}
	}
	return alive, dead
}

// lookup resolves a gateway run id under the caller's tenancy; foreign
// tenants get the identical unknown-run 404 a daemon answers.
func (g *Gateway) lookup(tenant TenantConfig, id string) (*gwRun, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r := g.runs[id]
	if r == nil {
		return nil, errUnknownRun(id)
	}
	if err := readAllowed(g.cfg.Auth, tenant, r.tenant, id); err != nil {
		return nil, err
	}
	return r, nil
}

// assignment snapshots a run's current worker binding.
func (g *Gateway) assignment(r *gwRun) (m *member, workerRunID string, v RunView) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if r.worker != "" {
		m = g.members[r.worker]
		workerRunID = r.workerRunID
	}
	return m, workerRunID, r.view()
}

// GetAs resolves one run's view for a tenant. Assigned runs answer with
// the worker's live view (patched back into the gateway's namespace);
// queued and locally-terminal runs answer from the gateway record. A
// worker that fails the proxy read is declared dead and the requeued
// local view answers instead — a fleet member dying mid-poll looks like
// a run going back to queued, never an error.
func (g *Gateway) GetAs(tenant TenantConfig, id string, withReport bool) (RunView, error) {
	r, err := g.lookup(tenant, id)
	if err != nil {
		return RunView{}, err
	}
	m, workerRunID, local := g.assignment(r)
	if m == nil || workerRunID == "" {
		return local, nil
	}
	ctx, cancel := context.WithTimeout(g.baseCtx, 10*time.Second)
	defer cancel()
	var wv RunView
	path := "/v1/runs/" + workerRunID
	if !withReport {
		path += "?report=0"
	}
	if err := m.client.do(ctx, "GET", path, nil, &wv); err != nil {
		if g.baseCtx.Err() == nil && !isAPIError(err) {
			g.markDead(m.name)
		}
		_, _, local = g.assignment(r)
		return local, nil
	}
	g.observe(id, m.name, wv)
	return g.patchView(r, wv), nil
}

// patchView rebases a worker view into the gateway namespace: the
// gateway's id, tenant, cache-hit count and submission time replace the
// worker's (workers are open and see each spec exactly once per
// dispatch).
func (g *Gateway) patchView(r *gwRun, wv RunView) RunView {
	g.mu.Lock()
	defer g.mu.Unlock()
	wv.ID = r.id
	wv.Tenant = r.tenant
	wv.CacheHits = r.hits
	wv.SubmittedAt = r.submitted
	return wv
}

// CancelAs cancels a run fleet-wide: unassigned runs transition locally
// (dispatch skips terminal runs), assigned runs proxy the cancel to the
// executing worker. Cross-tenant cancels stay 403 — cancel is a
// mutation, and the CancelAs contract on a single daemon already
// confirms run existence to its owner only.
func (g *Gateway) CancelAs(tenant TenantConfig, id string) (RunView, error) {
	g.mu.Lock()
	r := g.runs[id]
	if r == nil {
		g.mu.Unlock()
		return RunView{}, errUnknownRun(id)
	}
	if err := cancelAllowed(g.cfg.Auth, tenant, r.tenant); err != nil {
		g.mu.Unlock()
		return RunView{}, err
	}
	if r.state.Terminal() {
		v := r.view()
		g.mu.Unlock()
		return v, nil
	}
	if r.worker == "" {
		r.state = StateCancelled
		r.errMsg = context.Canceled.Error()
		r.finished = time.Now()
		v := r.view()
		g.mu.Unlock()
		return v, nil
	}
	m := g.members[r.worker]
	workerRunID := r.workerRunID
	g.mu.Unlock()

	ctx, cancel := context.WithTimeout(g.baseCtx, 10*time.Second)
	defer cancel()
	wv, err := m.client.Cancel(ctx, workerRunID)
	if err != nil {
		if g.baseCtx.Err() == nil && !isAPIError(err) {
			// The worker died under the cancel: its runs requeue, and
			// this one is now unassigned — cancel it locally.
			g.markDead(m.name)
		}
		g.mu.Lock()
		if !r.state.Terminal() && r.worker == "" {
			r.state = StateCancelled
			r.errMsg = context.Canceled.Error()
			r.finished = time.Now()
		}
		v := r.view()
		g.mu.Unlock()
		return v, nil
	}
	g.observe(id, m.name, wv)
	return g.patchView(r, wv), nil
}

// List pages the gateway's routed runs with the shared filter
// machinery.
func (g *Gateway) List(f ListFilter) ([]RunView, string, error) {
	g.mu.Lock()
	records := make([]Record, 0, len(g.order))
	for _, r := range g.order {
		records = append(records, r.record())
	}
	g.mu.Unlock()
	sort.Slice(records, func(i, j int) bool { return records[i].Seq < records[j].Seq })
	page, next, err := pageRecords(records, f)
	if err != nil {
		return nil, "", err
	}
	views := make([]RunView, 0, len(page))
	for _, rec := range page {
		views = append(views, viewFromRecord(rec, false, false))
	}
	return views, next, nil
}

// MemberView is one worker's row in the fleet listing.
type MemberView struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// Alive reports whether the lease is current.
	Alive bool `json:"alive"`
	// LastSeenMS is how long ago the last register/heartbeat landed.
	LastSeenMS float64 `json:"last_seen_ms"`
	// Runs counts the gateway runs currently assigned to this worker.
	Runs int `json:"runs"`
}

// FleetView is the GET /v1/fleet answer.
type FleetView struct {
	Members  []MemberView `json:"members"`
	LeaseTTL string       `json:"lease_ttl"`
}

// Fleet snapshots the member table.
func (g *Gateway) Fleet() FleetView {
	g.mu.Lock()
	defer g.mu.Unlock()
	assigned := map[string]int{}
	for _, r := range g.runs {
		if r.worker != "" && !r.state.Terminal() {
			assigned[r.worker]++
		}
	}
	fv := FleetView{LeaseTTL: g.cfg.LeaseTTL.String(), Members: []MemberView{}}
	for _, m := range g.members {
		fv.Members = append(fv.Members, MemberView{
			Name:       m.name,
			URL:        m.base,
			Alive:      m.alive,
			LastSeenMS: float64(time.Since(m.lastSeen).Microseconds()) / 1000,
			Runs:       assigned[m.name],
		})
	}
	sort.Slice(fv.Members, func(i, j int) bool { return fv.Members[i].Name < fv.Members[j].Name })
	return fv
}

// GatewayStats are the gateway's own counters.
type GatewayStats struct {
	Runs      int  `json:"runs"`
	Queued    int  `json:"queued"`
	Running   int  `json:"running"`
	Done      int  `json:"done"`
	Failed    int  `json:"failed"`
	Cancelled int  `json:"cancelled"`
	CacheHits int  `json:"cache_hits"`
	Requeues  int  `json:"requeues"`
	Members   int  `json:"members"`
	Alive     int  `json:"alive_members"`
	Draining  bool `json:"draining"`
	// TwinsLive folds the fleet's live twin sessions (summed from the
	// reachable members' stats — twins run on workers, not the gateway).
	TwinsLive int `json:"twins_live,omitempty"`
}

// MemberStats is one worker's row in the fleet-wide stats: the
// gateway's view of the member plus the stats the member itself
// reported (nil when unreachable).
type MemberStats struct {
	MemberView
	Stats *Stats `json:"stats,omitempty"`
	Error string `json:"error,omitempty"`
}

// FleetStats is the GET /v1/stats answer on a gateway: its own counters
// plus every member's live /v1/stats.
type FleetStats struct {
	Gateway GatewayStats  `json:"gateway"`
	Members []MemberStats `json:"members"`
}

// Stats aggregates fleet-wide counters, querying every registered
// member concurrently (dead members report their last-known row with no
// stats).
func (g *Gateway) Stats(ctx context.Context) FleetStats {
	fv := g.Fleet()
	g.mu.Lock()
	gs := GatewayStats{
		Runs:      len(g.runs),
		CacheHits: g.cacheHits,
		Requeues:  g.requeues,
		Members:   len(g.members),
		Draining:  g.draining,
	}
	clients := map[string]*Client{}
	for name, m := range g.members {
		if m.alive {
			gs.Alive++
			clients[name] = m.client
		}
	}
	for _, r := range g.runs {
		switch r.state {
		case StateQueued:
			gs.Queued++
		case StateRunning:
			gs.Running++
		case StateDone:
			gs.Done++
		case StateFailed:
			gs.Failed++
		case StateCancelled:
			gs.Cancelled++
		}
	}
	g.mu.Unlock()

	out := FleetStats{Gateway: gs, Members: make([]MemberStats, len(fv.Members))}
	var wg sync.WaitGroup
	for i, mv := range fv.Members {
		out.Members[i] = MemberStats{MemberView: mv}
		c := clients[mv.Name]
		if c == nil {
			continue
		}
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			defer cancel()
			st, err := c.Stats(ctx)
			if err != nil {
				out.Members[i].Error = err.Error()
				return
			}
			out.Members[i].Stats = &st
		}(i, c)
	}
	wg.Wait()
	for _, ms := range out.Members {
		if ms.Stats != nil {
			out.Gateway.TwinsLive += ms.Stats.TwinsLive
		}
	}
	return out
}

// isAPIError reports whether err is a structured API answer (the worker
// spoke — it is alive) as opposed to a transport failure.
func isAPIError(err error) bool {
	var apiErr *Error
	return errors.As(err, &apiErr)
}
