package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
)

// SpecHash returns the canonical content address of a spec: the SHA-256
// of the compact JSON encoding of Normalize(spec) with the
// execution-resource fields zeroed. Two specs hash identically exactly
// when they describe the same results — name-case differences ("shut"
// vs "SHUT"), omitted defaults, an explicit Mode, a TimeScale of 1 and
// the sweep worker count all collapse — which is what the service's
// result cache keys on: a cache hit is safe because the sweep tables
// are worker-count independent (fingerprint-pinned) and Normalize is
// idempotent and JSON-round-trip stable (hash_test pins both).
//
// The spec is hashed as described, not as validated: callers that need
// runnable specs validate first, like LoadSpec does. SWF workloads are
// addressed by their *path* (plus window/rescale transforms), not the
// file's bytes — the spec describes the world, it does not snapshot it
// — so a result cache keyed on SpecHash serves stale reports if a trace
// file is edited in place under a running service. Publish new trace
// versions under new paths (the archive convention) when cache
// correctness matters.
func SpecHash(spec RunSpec) (string, error) {
	n := spec.Normalize()
	n.Workers = 0
	b, err := json.Marshal(n)
	if err != nil {
		return "", fmt.Errorf("sim: hashing spec: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// fingerprintWriter hashes everything written through it — the
// streaming form Report.Fingerprint uses so single-run exports never
// need buffering.
type fingerprintWriter struct {
	h hash.Hash
}

func (f *fingerprintWriter) Write(p []byte) (int, error) {
	if f.h == nil {
		f.h = sha256.New()
	}
	return f.h.Write(p)
}

func (f *fingerprintWriter) Sum() string {
	if f.h == nil {
		f.h = sha256.New()
	}
	return hex.EncodeToString(f.h.Sum(nil))
}
