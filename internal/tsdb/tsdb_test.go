package tsdb

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// small options keep the pyramids inspectable: 4 points per ring,
// 3 levels, fanout 2.
func smallOpts() Options {
	return Options{PointsPerLevel: 4, Levels: 3, Fanout: 2, MaxSeriesPerRun: 3}
}

func appendRamp(t *testing.T, r *Run, name string, n int, step int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := r.Append(name, int64(i)*step, float64(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// TestDownsampleGolden pins the exact pyramid of a ramp 0..7 at step 10:
// level 1 points aggregate raw pairs, level 2 aggregates quadruples,
// with mean/min/max computed over each batch.
func TestDownsampleGolden(t *testing.T) {
	st := New(smallOpts())
	r := st.Run("run1")
	appendRamp(t, r, "power", 8, 10)

	// Level 0 ring holds the last 4 raw points (4..7).
	got, per, err := r.Query("power", 40, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Point{
		{T: 40, Mean: 4, Min: 4, Max: 4, Count: 1},
		{T: 50, Mean: 5, Min: 5, Max: 5, Count: 1},
		{T: 60, Mean: 6, Min: 6, Max: 6, Count: 1},
		{T: 70, Mean: 7, Min: 7, Max: 7, Count: 1},
	}
	if per != 1 || !reflect.DeepEqual(got, want) {
		t.Errorf("level0 query = (%v, per=%d)\nwant %v", got, per, want)
	}

	// Level 1: pairs (0,1) (2,3) (4,5) (6,7).
	got, per, err = r.Query("power", 0, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	want = []Point{
		{T: 0, Mean: 0.5, Min: 0, Max: 1, Count: 2},
		{T: 20, Mean: 2.5, Min: 2, Max: 3, Count: 2},
		{T: 40, Mean: 4.5, Min: 4, Max: 5, Count: 2},
		{T: 60, Mean: 6.5, Min: 6, Max: 7, Count: 2},
	}
	if per != 2 || !reflect.DeepEqual(got, want) {
		t.Errorf("level1 query = (%v, per=%d)\nwant %v", got, per, want)
	}

	// Level 2: quadruples (0..3) (4..7).
	got, per, err = r.Query("power", 0, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	want = []Point{
		{T: 0, Mean: 1.5, Min: 0, Max: 3, Count: 4},
		{T: 40, Mean: 5.5, Min: 4, Max: 7, Count: 4},
	}
	if per != 4 || !reflect.DeepEqual(got, want) {
		t.Errorf("level2 query = (%v, per=%d)\nwant %v", got, per, want)
	}
}

// TestQueryFallsBackToCoarserLevel checks the eviction trade: asking
// for full resolution over a window the level-0 ring has already
// dropped steps up to the coarser level that still covers it.
func TestQueryFallsBackToCoarserLevel(t *testing.T) {
	st := New(smallOpts())
	r := st.Run("run1")
	appendRamp(t, r, "power", 16, 10)

	// Level 0 retains t in [120, 150]; t=0 survives only at level 2.
	got, per, err := r.Query("power", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].T != 0 {
		t.Fatalf("fallback query = %v, want coverage from t=0", got)
	}
	if per != 4 {
		t.Errorf("fallback picked raw_per_point=%d, want 4 (level 2)", per)
	}
}

// TestQueryFallsBackToFinerLevel pins the short-series regression: a
// coarse-resolution query on a series that has not cascaded anything
// into the picked level yet must answer from the finest populated level
// instead of returning an empty result.
func TestQueryFallsBackToFinerLevel(t *testing.T) {
	st := New(Options{}) // defaults: fanout 4, 4 levels
	r := st.Run("run1")
	appendRamp(t, r, "power", 60, 60) // level 3 needs 64 raw points — still empty

	got, per, err := r.Query("power", 0, 0, 7200)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatalf("coarse query on a short series returned no points (per=%d)", per)
	}
	if per > 16 {
		t.Errorf("answered from raw_per_point=%d, which holds no data for 60 samples", per)
	}
}

// TestBoundedMemory pins the bound: however many points stream in, each
// series retains at most Levels x PointsPerLevel points.
func TestBoundedMemory(t *testing.T) {
	o := smallOpts()
	st := New(o)
	r := st.Run("run1")
	appendRamp(t, r, "power", 100000, 1)
	total := 0
	for _, lv := range r.Levels("power") {
		if lv.Points > o.PointsPerLevel {
			t.Errorf("level %d holds %d points, cap %d", lv.Level, lv.Points, o.PointsPerLevel)
		}
		total += lv.Points
	}
	if max := o.Levels * o.PointsPerLevel; total > max {
		t.Errorf("series holds %d points, bound %d", total, max)
	}
}

func TestAppendErrors(t *testing.T) {
	st := New(smallOpts())
	r := st.Run("run1")
	if err := r.Append("a", 10, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Append("a", 5, 1); err == nil {
		t.Error("out-of-order append accepted")
	}
	// equal timestamps are legal (several samples in one event tick)
	if err := r.Append("a", 10, 2); err != nil {
		t.Errorf("equal-timestamp append rejected: %v", err)
	}
	for _, name := range []string{"b", "c"} {
		if err := r.Append(name, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Append("d", 0, 0); err == nil {
		t.Error("series cap not enforced")
	}
	if _, _, err := r.Query("nope", 0, 0, 0); err == nil {
		t.Error("unknown series query succeeded")
	}
}

func TestStoreRunLifecycle(t *testing.T) {
	st := New(Options{})
	st.Run("a").Append("s", 0, 1)
	st.Run("b").Append("s", 0, 1)
	if got := st.Runs(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Runs = %v", got)
	}
	if st.Lookup("a") == nil {
		t.Error("Lookup(a) = nil")
	}
	st.Drop("a")
	if st.Lookup("a") != nil {
		t.Error("Drop left the run behind")
	}
	if st.Lookup("never") != nil {
		t.Error("Lookup of unknown run non-nil")
	}
}

// TestConcurrentAppend exercises the locking under -race: many
// goroutines streaming into distinct series and runs of one store.
func TestConcurrentAppend(t *testing.T) {
	st := New(Options{PointsPerLevel: 32})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := st.Run(fmt.Sprintf("run%d", g%2))
			name := fmt.Sprintf("s%d", g)
			for i := 0; i < 1000; i++ {
				if err := r.Append(name, int64(i), float64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, id := range []string{"run0", "run1"} {
		if n := len(st.Run(id).Series()); n != 4 {
			t.Errorf("%s holds %d series, want 4", id, n)
		}
	}
}
