// Package reservation implements the two reservation kinds the paper adds
// to SLURM (Section V): powercap reservations — a Watts budget over a time
// window — and switch-off reservations — a node group planned by the
// offline algorithm to be powered down during a powercap window. A Book
// aggregates them and answers the queries the online scheduler needs: the
// effective cap at an instant, the tightest cap over a job's expected span,
// and the next boundary at which the controller must wake up.
package reservation

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/power"
)

// Horizon is the End value of an open-ended window ("powercap set for now
// with no time restriction").
const Horizon = int64(math.MaxInt64)

// PowerCap is a power budget over [Start, End).
type PowerCap struct {
	ID    int
	Start int64
	End   int64 // exclusive; Horizon for open-ended
	Cap   power.Cap
}

// Active reports whether the window covers instant t.
func (p PowerCap) Active(t int64) bool { return t >= p.Start && t < p.End }

// Overlaps reports whether the window intersects [from, to).
func (p PowerCap) Overlaps(from, to int64) bool { return p.Start < to && from < p.End }

// SwitchOff is a planned group power-down over [Start, End).
type SwitchOff struct {
	ID    int
	Start int64
	End   int64
	Nodes []cluster.NodeID
}

// Active reports whether the window covers instant t.
func (s SwitchOff) Active(t int64) bool { return t >= s.Start && t < s.End }

// Book holds all reservations of a controller.
type Book struct {
	nextID int
	caps   []PowerCap
	offs   []SwitchOff
	// offSets[i] is the node-membership lookup of offs[i]: a dense
	// []bool indexed by NodeID, so the per-probe NodeBlocked check is
	// O(windows) instead of O(windows x group size).
	offSets [][]bool
}

// NewBook returns an empty reservation book.
func NewBook() *Book { return &Book{nextID: 1} }

// AddPowerCap registers a powercap window and returns its ID. End must be
// strictly after Start (use Horizon for open-ended) and the cap must be
// set.
func (b *Book) AddPowerCap(start, end int64, cap power.Cap) (int, error) {
	if end <= start {
		return 0, fmt.Errorf("reservation: empty powercap window [%d,%d)", start, end)
	}
	if !cap.IsSet() {
		return 0, fmt.Errorf("reservation: powercap reservation without a cap value")
	}
	id := b.nextID
	b.nextID++
	b.caps = append(b.caps, PowerCap{ID: id, Start: start, End: end, Cap: cap})
	sort.SliceStable(b.caps, func(i, j int) bool { return b.caps[i].Start < b.caps[j].Start })
	return id, nil
}

// AddSwitchOff registers a planned group power-down and returns its ID.
func (b *Book) AddSwitchOff(start, end int64, nodes []cluster.NodeID) (int, error) {
	if end <= start {
		return 0, fmt.Errorf("reservation: empty switch-off window [%d,%d)", start, end)
	}
	if len(nodes) == 0 {
		return 0, fmt.Errorf("reservation: switch-off reservation without nodes")
	}
	id := b.nextID
	b.nextID++
	cp := make([]cluster.NodeID, len(nodes))
	copy(cp, nodes)
	b.offs = append(b.offs, SwitchOff{ID: id, Start: start, End: end, Nodes: cp})
	maxID := cluster.NodeID(0)
	for _, n := range cp {
		if n > maxID {
			maxID = n
		}
	}
	set := make([]bool, int(maxID)+1)
	for _, n := range cp {
		if n >= 0 {
			set[n] = true
		}
	}
	b.offSets = append(b.offSets, set)
	return id, nil
}

// UpdateCap re-budgets an existing powercap reservation in place: the
// window keeps its span and ID, only the Watts value changes. This is
// how a federation broker moves budget between member clusters at
// redistribution boundaries without tearing reservations down. The new
// cap must be set; unknown IDs (including switch-off IDs) are an error.
func (b *Book) UpdateCap(id int, cap power.Cap) error {
	if !cap.IsSet() {
		return fmt.Errorf("reservation: update of powercap %d without a cap value", id)
	}
	for i := range b.caps {
		if b.caps[i].ID == id {
			b.caps[i].Cap = cap
			return nil
		}
	}
	return fmt.Errorf("reservation: no powercap reservation %d", id)
}

// Remove deletes a reservation of either kind by ID; unknown IDs are
// no-ops.
func (b *Book) Remove(id int) {
	for i, c := range b.caps {
		if c.ID == id {
			b.caps = append(b.caps[:i], b.caps[i+1:]...)
			return
		}
	}
	for i, o := range b.offs {
		if o.ID == id {
			b.offs = append(b.offs[:i], b.offs[i+1:]...)
			b.offSets = append(b.offSets[:i], b.offSets[i+1:]...)
			return
		}
	}
}

// CapAt returns the tightest cap active at instant t (NoCap when none).
func (b *Book) CapAt(t int64) power.Cap {
	out := power.NoCap
	for _, c := range b.caps {
		if c.Start > t {
			break // caps are sorted by start
		}
		if c.Active(t) && (!out.IsSet() || c.Cap.Watts() < out.Watts()) {
			out = c.Cap
		}
	}
	return out
}

// MinCapOver returns the tightest cap over the span [from, to) — the budget
// the online algorithm must respect for a job expected to run over that
// span (Section IV-B: the job "may overlap with any future reservation of
// power"). Returns NoCap when no window overlaps.
func (b *Book) MinCapOver(from, to int64) power.Cap {
	out := power.NoCap
	for _, c := range b.caps {
		if c.Start >= to {
			break
		}
		if c.Overlaps(from, to) && (!out.IsSet() || c.Cap.Watts() < out.Watts()) {
			out = c.Cap
		}
	}
	return out
}

// MinFutureCapOver returns the tightest cap among windows that open
// strictly after `from` (but within `horizon` seconds of it) and overlap
// [from, to). Windows already active at `from` are excluded — the online
// algorithm checks those against the actual cluster draw, while future
// windows are checked against the draw projected after the planned
// switch-offs. The horizon bounds how far ahead the scheduler prepares:
// with walltimes overestimated by four orders of magnitude, "overlaps a
// future reservation" is true of nearly every job nearly all day, and
// throttling against a cap many hours away would idle the machine (the
// paper's figures show preparation starting close to the window).
// horizon <= 0 means unbounded. Returns NoCap when none apply.
func (b *Book) MinFutureCapOver(from, to, horizon int64) power.Cap {
	out := power.NoCap
	for _, c := range b.caps {
		if c.Start >= to {
			break
		}
		if c.Start <= from || !c.Overlaps(from, to) {
			continue
		}
		if horizon > 0 && c.Start > from+horizon {
			continue
		}
		if !out.IsSet() || c.Cap.Watts() < out.Watts() {
			out = c.Cap
		}
	}
	return out
}

// PowerCaps returns the powercap windows sorted by start.
func (b *Book) PowerCaps() []PowerCap {
	out := make([]PowerCap, len(b.caps))
	copy(out, b.caps)
	return out
}

// SwitchOffs returns the switch-off reservations in insertion order.
func (b *Book) SwitchOffs() []SwitchOff {
	out := make([]SwitchOff, len(b.offs))
	for i, o := range b.offs {
		nodes := make([]cluster.NodeID, len(o.Nodes))
		copy(nodes, o.Nodes)
		o.Nodes = nodes
		out[i] = o
	}
	return out
}

// NodeBlocked reports whether scheduling a job on the node over
// [from, to) would collide with a switch-off reservation. With user
// walltimes overestimated by four orders of magnitude (Section VII-B),
// blocking on walltime overlap alone would idle the reserved group hours
// ahead of the window; instead a reservation starts refusing work only
// `lead` seconds before its window opens, and nodes still busy at the
// window start drain to off as their jobs end. lead = 0 reproduces the
// pure drain behaviour visible in the paper's Figures 6/7 (utilization
// stays high until the window, then the group powers down sharply).
func (b *Book) NodeBlocked(id cluster.NodeID, from, to int64, lead int64) bool {
	for i := range b.offs {
		o := &b.offs[i]
		if o.Start >= to || o.End <= from {
			continue // job span does not touch the window
		}
		if from < o.Start-lead {
			continue // reservation not yet blocking allocations
		}
		set := b.offSets[i]
		if int(id) >= 0 && int(id) < len(set) && set[id] {
			return true
		}
	}
	return false
}

// offPhase classifies instant t against a switch-off window's blocking
// behaviour: 0 before the lead-in (never blocks), 1 inside the lead-in
// [Start-lead, Start) (blocking depends on the probe's span), 2 while
// the window is active (members always block overlapping spans), 3
// after the window (never blocks again).
func offPhase(o *SwitchOff, t, lead int64) int {
	switch {
	case t < o.Start-lead:
		return 0
	case t < o.Start:
		return 1
	case t < o.End:
		return 2
	default:
		return 3
	}
}

// OffsPhaseStable reports whether every switch-off reservation gives
// the same NodeBlocked verdicts at probe times t0 and t1 (t0 <= t1)
// for any fixed job span length: each window must sit in the same
// phase at both instants, and the lead-in phase — where the verdict
// depends on how far the probe instant is from the window start — only
// qualifies when the instants coincide. The controller's scheduling-
// pass memo uses this to prove a re-run would see identical node
// eligibility.
func (b *Book) OffsPhaseStable(t0, t1, lead int64) bool {
	for i := range b.offs {
		o := &b.offs[i]
		p0 := offPhase(o, t0, lead)
		if p0 != offPhase(o, t1, lead) {
			return false
		}
		if p0 == 1 && t0 != t1 {
			return false
		}
	}
	return true
}

// Boundaries returns every distinct Start/End instant of all reservations
// strictly after t, ascending — the wake-up points of the controller.
func (b *Book) Boundaries(t int64) []int64 {
	set := map[int64]bool{}
	add := func(v int64) {
		if v > t && v != Horizon {
			set[v] = true
		}
	}
	for _, c := range b.caps {
		add(c.Start)
		add(c.End)
	}
	for _, o := range b.offs {
		add(o.Start)
		add(o.End)
	}
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
