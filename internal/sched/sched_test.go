package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/dvfs"
	"repro/internal/job"
	"repro/internal/power"
)

func testCluster() *cluster.Cluster {
	topo := cluster.Topology{Racks: 1, ChassisPerRack: 2, NodesPerChassis: 3, CoresPerNode: 4}
	c, err := cluster.New(topo, power.CurieProfile(), cluster.CurieOverhead())
	if err != nil {
		panic(err)
	}
	return c
}

func TestOrderFCFS(t *testing.T) {
	jobs := []*job.Job{
		{ID: 3, Submit: 20},
		{ID: 1, Submit: 10},
		{ID: 2, Submit: 10},
	}
	got := Order(jobs, FCFS, MultifactorWeights{}, nil, 100)
	want := []job.ID{1, 2, 3}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("order = %v %v %v, want %v", got[0].ID, got[1].ID, got[2].ID, want)
		}
	}
	// Input order untouched.
	if jobs[0].ID != 3 {
		t.Error("Order mutated its input")
	}
}

func TestOrderMultifactorAge(t *testing.T) {
	w := MultifactorWeights{AgeWeight: 1000, AgeSaturation: 100}
	jobs := []*job.Job{
		{ID: 1, Submit: 90}, // young
		{ID: 2, Submit: 0},  // old
	}
	got := Order(jobs, Multifactor, w, nil, 100)
	if got[0].ID != 2 {
		t.Errorf("older job should lead: got %v first", got[0].ID)
	}
}

func TestOrderMultifactorSize(t *testing.T) {
	w := MultifactorWeights{SizeWeight: 1000, MaxCores: 1000}
	jobs := []*job.Job{
		{ID: 1, Submit: 0, Cores: 10},
		{ID: 2, Submit: 0, Cores: 900},
	}
	got := Order(jobs, Multifactor, w, nil, 0)
	if got[0].ID != 2 {
		t.Errorf("bigger job should lead with size weight: got %v first", got[0].ID)
	}
}

func TestOrderMultifactorFairshare(t *testing.T) {
	fs := NewFairshare(0)
	fs.Charge("heavy", 1e6, 0)
	w := MultifactorWeights{FairshareWeight: 1000}
	jobs := []*job.Job{
		{ID: 1, Submit: 0, User: "heavy"},
		{ID: 2, Submit: 0, User: "light"},
	}
	got := Order(jobs, Multifactor, w, fs, 10)
	if got[0].ID != 2 {
		t.Errorf("light user should lead: got %v first", got[0].ID)
	}
}

func TestOrderMultifactorTieBreak(t *testing.T) {
	w := DefaultMultifactor(1000)
	jobs := []*job.Job{
		{ID: 2, Submit: 5, Cores: 10, User: "u"},
		{ID: 1, Submit: 5, Cores: 10, User: "u"},
	}
	got := Order(jobs, Multifactor, w, nil, 10)
	if got[0].ID != 1 {
		t.Errorf("equal-priority tie should break by ID: got %v first", got[0].ID)
	}
}

func TestFairshareDecay(t *testing.T) {
	fs := NewFairshare(100)
	fs.Charge("u", 1000, 0)
	got := fs.Usage("u", 100)
	if math.Abs(got-500) > 1e-9 {
		t.Errorf("usage after one half-life = %v, want 500", got)
	}
	if got := fs.Usage("u", 300); math.Abs(got-125) > 1e-9 {
		t.Errorf("usage after three half-lives = %v, want 125", got)
	}
	// Charging re-anchors the decay clock.
	fs.Charge("u", 0, 200)
	if got := fs.Usage("u", 300); math.Abs(got-125) > 1e-9 {
		t.Errorf("re-anchored usage = %v, want 125", got)
	}
}

func TestFairshareNoDecay(t *testing.T) {
	var fs Fairshare // zero value usable
	fs.Charge("u", 100, 0)
	if got := fs.Usage("u", 1e9); got != 100 {
		t.Errorf("undecayed usage = %v, want 100", got)
	}
	if got := fs.MaxUsage(0); got != 100 {
		t.Errorf("MaxUsage = %v, want 100", got)
	}
	empty := NewFairshare(0)
	if got := empty.MaxUsage(0); got != 1 {
		t.Errorf("empty MaxUsage = %v, want 1", got)
	}
}

func TestAllocateIdleNodes(t *testing.T) {
	c := testCluster()
	allocs := Allocate(c, 6, nil)
	if allocs == nil {
		t.Fatal("allocation failed on an empty cluster")
	}
	total := 0
	for _, a := range allocs {
		total += a.Cores
	}
	if total != 6 {
		t.Errorf("allocated %d cores, want 6", total)
	}
	// Deterministic: lowest IDs first.
	if allocs[0].Node != 0 || allocs[0].Cores != 4 || allocs[1].Node != 1 || allocs[1].Cores != 2 {
		t.Errorf("allocation = %+v", allocs)
	}
}

func TestAllocatePrefersPartiallyUsed(t *testing.T) {
	c := testCluster()
	// Node 3 has 2 cores busy, 2 free.
	if err := c.Occupy(3, 2, dvfs.F2700); err != nil {
		t.Fatal(err)
	}
	allocs := Allocate(c, 2, nil)
	if len(allocs) != 1 || allocs[0].Node != 3 {
		t.Errorf("allocation should fill the busy node first: %+v", allocs)
	}
}

func TestAllocateSkipsIneligibleAndOff(t *testing.T) {
	c := testCluster()
	if err := c.PowerOff(0); err != nil {
		t.Fatal(err)
	}
	allocs := Allocate(c, 4, func(id cluster.NodeID) bool { return id != 1 })
	if allocs == nil {
		t.Fatal("allocation failed")
	}
	for _, a := range allocs {
		if a.Node == 0 || a.Node == 1 {
			t.Errorf("allocated forbidden node %d", a.Node)
		}
	}
}

func TestAllocateInsufficient(t *testing.T) {
	c := testCluster() // 24 cores total
	if got := Allocate(c, 25, nil); got != nil {
		t.Errorf("oversized request satisfied: %+v", got)
	}
	if got := Allocate(c, 0, nil); got != nil {
		t.Errorf("zero request returned %+v", got)
	}
}

func TestAllocateExactFit(t *testing.T) {
	c := testCluster()
	got := Allocate(c, 24, nil)
	if got == nil {
		t.Fatal("whole-machine allocation failed")
	}
	if len(got) != 6 {
		t.Errorf("allocation spans %d nodes, want 6", len(got))
	}
}

func TestFreeCores(t *testing.T) {
	c := testCluster()
	if got := FreeCores(c, nil); got != 24 {
		t.Errorf("FreeCores = %d, want 24", got)
	}
	if err := c.Occupy(0, 3, dvfs.F2700); err != nil {
		t.Fatal(err)
	}
	if err := c.PowerOff(5); err != nil {
		t.Fatal(err)
	}
	if got := FreeCores(c, nil); got != 24-3-4 {
		t.Errorf("FreeCores = %d, want 17", got)
	}
	if got := FreeCores(c, func(id cluster.NodeID) bool { return id != 1 }); got != 13 {
		t.Errorf("filtered FreeCores = %d, want 13", got)
	}
}

func TestShadowTime(t *testing.T) {
	running := []RunningJob{
		{Cores: 10, ExpectedEnd: 300},
		{Cores: 5, ExpectedEnd: 100},
		{Cores: 5, ExpectedEnd: 200},
	}
	// Need 12, have 4 free: after t=100 we have 9, after t=200 we have 14.
	at, ok := ShadowTime(running, 4, 12, 50)
	if !ok || at != 200 {
		t.Errorf("ShadowTime = %d,%v want 200,true", at, ok)
	}
	// Fits immediately.
	at, ok = ShadowTime(running, 20, 12, 50)
	if !ok || at != 50 {
		t.Errorf("immediate ShadowTime = %d,%v", at, ok)
	}
	// Never fits.
	if _, ok := ShadowTime(running, 4, 100, 50); ok {
		t.Error("impossible demand reported satisfiable")
	}
	// Expected end in the past clamps to now.
	at, ok = ShadowTime([]RunningJob{{Cores: 10, ExpectedEnd: 10}}, 0, 5, 50)
	if !ok || at != 50 {
		t.Errorf("past-end ShadowTime = %d,%v want 50,true", at, ok)
	}
	// Does not mutate its input order.
	if running[0].ExpectedEnd != 300 {
		t.Error("ShadowTime mutated the running slice")
	}
}

func TestFreeCoresAt(t *testing.T) {
	running := []RunningJob{
		{Cores: 10, ExpectedEnd: 300},
		{Cores: 5, ExpectedEnd: 100},
	}
	if got := FreeCoresAt(running, 2, 99); got != 2 {
		t.Errorf("FreeCoresAt(99) = %d", got)
	}
	if got := FreeCoresAt(running, 2, 100); got != 7 {
		t.Errorf("FreeCoresAt(100) = %d", got)
	}
	if got := FreeCoresAt(running, 2, 1000); got != 17 {
		t.Errorf("FreeCoresAt(1000) = %d", got)
	}
}

// Property: ShadowTime is the earliest feasible instant — one second
// earlier the cores are insufficient (when the shadow lies after now).
func TestShadowTimeEarliest(t *testing.T) {
	f := func(cores []uint8, ends []uint16, freeNow, need uint8) bool {
		n := len(cores)
		if len(ends) < n {
			n = len(ends)
		}
		running := make([]RunningJob, 0, n)
		for i := 0; i < n; i++ {
			running = append(running, RunningJob{
				Cores:       int(cores[i]%32) + 1,
				ExpectedEnd: int64(ends[i]),
			})
		}
		now := int64(10)
		at, ok := ShadowTime(running, int(freeNow%16), int(need%64)+1, now)
		if !ok {
			// Verify it truly never fits.
			return FreeCoresAt(running, int(freeNow%16), math.MaxInt64/2) < int(need%64)+1
		}
		if at < now {
			return false
		}
		if FreeCoresAt(running, int(freeNow%16), at) < int(need%64)+1 {
			return false
		}
		if at > now {
			return FreeCoresAt(running, int(freeNow%16), at-1) < int(need%64)+1
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: allocations never exceed node capacity and sum exactly to the
// request.
func TestAllocateProperty(t *testing.T) {
	f := func(busy [6]uint8, req uint8) bool {
		c := testCluster()
		for i, b := range busy {
			n := int(b) % 5
			if n > 0 {
				if err := c.Occupy(cluster.NodeID(i), n, dvfs.F2700); err != nil {
					return false
				}
			}
		}
		need := int(req)%30 + 1
		allocs := Allocate(c, need, nil)
		free := FreeCores(c, nil)
		if allocs == nil {
			return need > free
		}
		sum := 0
		seen := map[cluster.NodeID]bool{}
		for _, a := range allocs {
			if a.Cores <= 0 || a.Cores > c.FreeCores(a.Node) || seen[a.Node] {
				return false
			}
			seen[a.Node] = true
			sum += a.Cores
		}
		return sum == need
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
