// Package tsdb is the simulation service's in-memory telemetry store: a
// per-run, multi-series time-series database with ring-buffer levels
// and RRD-style downsampling, built for bounded memory under unbounded
// append streams.
//
// Every run owns a set of named series ("power", "cap",
// "pending_cores", ...). A series is a pyramid of levels: level 0 holds
// the raw appended points in a fixed-capacity ring; every Fanout
// appends cascade one aggregated point (mean/min/max over the batch)
// into the next level's ring, recursively. Memory per series is
// therefore exactly Levels x PointsPerLevel points however long the run
// streams, while the pyramid retains recent history at full resolution
// and the whole run at progressively coarser ones — the classic
// round-robin-database shape (cc-backend's metric store follows the
// same discipline, persistently; this one is deliberately in-memory,
// matching the service's cache lifetime).
//
// Appends must be time-monotone per series (the simulator's virtual
// clock guarantees it); concurrent appends to different runs or series
// of one store are safe.
package tsdb

import (
	"fmt"
	"sort"
	"sync"
)

// Options bound a store. The zero value picks the defaults.
type Options struct {
	// PointsPerLevel is each ring's capacity (default 512).
	PointsPerLevel int
	// Levels is the pyramid depth (default 4).
	Levels int
	// Fanout is how many level-i points aggregate into one level-i+1
	// point (default 4).
	Fanout int
	// MaxSeriesPerRun caps the distinct series one run may create
	// (default 128 — room for a ~30-cell sweep's four series per
	// cell); appends beyond it are dropped with an error rather than
	// growing without bound, and Dropped reports the refused names.
	MaxSeriesPerRun int
}

func (o Options) withDefaults() Options {
	if o.PointsPerLevel <= 0 {
		o.PointsPerLevel = 512
	}
	if o.Levels <= 0 {
		o.Levels = 4
	}
	if o.Fanout <= 1 {
		o.Fanout = 4
	}
	if o.MaxSeriesPerRun <= 0 {
		o.MaxSeriesPerRun = 128
	}
	return o
}

// Point is one stored sample: raw at level 0 (Count 1, Mean==Min==Max),
// an aggregate of Count raw points at higher levels. T is the time of
// the aggregate's first raw point.
type Point struct {
	T     int64   `json:"t"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Count int     `json:"count"`
}

// ring is a fixed-capacity circular buffer of points.
type ring struct {
	buf   []Point
	start int // index of the oldest point
	n     int // live point count
}

func (r *ring) push(p Point) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = p
		r.n++
		return
	}
	r.buf[r.start] = p
	r.start = (r.start + 1) % len(r.buf)
}

func (r *ring) at(i int) Point { return r.buf[(r.start+i)%len(r.buf)] }

// series is one named metric's level pyramid.
type series struct {
	levels []ring
	// pending accumulates the raw points of the current cascade batch
	// per level; when a level's batch reaches fanout, its aggregate is
	// pushed one level up.
	pending []Point
	lastT   int64
	any     bool
}

func newSeries(o Options) *series {
	s := &series{levels: make([]ring, o.Levels), pending: make([]Point, o.Levels)}
	for i := range s.levels {
		s.levels[i] = ring{buf: make([]Point, o.PointsPerLevel)}
	}
	return s
}

// Run is the series set of one simulation run. All methods are safe for
// concurrent use.
type Run struct {
	opt Options

	mu      sync.RWMutex
	series  map[string]*series
	dropped map[string]bool // series refused by the per-run cap
}

// Store holds the runs. The zero value is not usable; construct with
// New.
type Store struct {
	opt Options

	mu   sync.RWMutex
	runs map[string]*Run
}

// New builds an empty store.
func New(opt Options) *Store {
	return &Store{opt: opt.withDefaults(), runs: map[string]*Run{}}
}

// Run returns the named run's series set, creating it on first use.
func (st *Store) Run(id string) *Run {
	st.mu.Lock()
	defer st.mu.Unlock()
	r := st.runs[id]
	if r == nil {
		r = &Run{opt: st.opt, series: map[string]*series{}}
		st.runs[id] = r
	}
	return r
}

// Lookup returns the named run's series set, or nil when the run never
// recorded telemetry.
func (st *Store) Lookup(id string) *Run {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.runs[id]
}

// Drop releases a run's telemetry (a cache eviction or cancelled run).
func (st *Store) Drop(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.runs, id)
}

// Runs returns the stored run ids, sorted.
func (st *Store) Runs() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, 0, len(st.runs))
	for id := range st.runs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Append records one raw sample. Appends must be nondecreasing in t per
// series; an out-of-order append is rejected (the virtual clock never
// goes backwards — a violation is a wiring bug worth surfacing).
func (r *Run) Append(name string, t int64, v float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.series[name]
	if s == nil {
		if len(r.series) >= r.opt.MaxSeriesPerRun {
			if r.dropped == nil {
				r.dropped = map[string]bool{}
			}
			r.dropped[name] = true
			return fmt.Errorf("tsdb: run already holds %d series; %q dropped", len(r.series), name)
		}
		s = newSeries(r.opt)
		r.series[name] = s
	}
	if s.any && t < s.lastT {
		return fmt.Errorf("tsdb: out-of-order append to %q: t=%d after t=%d", name, t, s.lastT)
	}
	s.lastT, s.any = t, true
	s.cascade(0, Point{T: t, Mean: v, Min: v, Max: v, Count: 1}, r.opt.Fanout)
	return nil
}

// cascade pushes p into level l and folds it into the level's pending
// aggregate; every fanout-th point the aggregate moves one level up.
func (s *series) cascade(l int, p Point, fanout int) {
	s.levels[l].push(p)
	if l == len(s.levels)-1 {
		return
	}
	agg := &s.pending[l]
	if agg.Count == 0 {
		*agg = p
	} else {
		total := agg.Count + p.Count
		agg.Mean = (agg.Mean*float64(agg.Count) + p.Mean*float64(p.Count)) / float64(total)
		if p.Min < agg.Min {
			agg.Min = p.Min
		}
		if p.Max > agg.Max {
			agg.Max = p.Max
		}
		agg.Count = total
	}
	// Count tallies raw points, and one level-l point holds fanout^l of
	// them, so a level-l batch is full at fanout^(l+1) raw points —
	// i.e. after fanout pushes of its own.
	full := 1
	for i := 0; i <= l; i++ {
		full *= fanout
	}
	if agg.Count >= full {
		up := *agg
		*agg = Point{}
		s.cascade(l+1, up, fanout)
	}
}

// Series returns the run's series names, sorted.
func (r *Run) Series() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.series))
	for name := range r.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Dropped returns the names refused by the per-run series cap, sorted —
// the signal that a sweep was too wide for the configured store and its
// telemetry is partial (the metrics API surfaces it).
func (r *Run) Dropped() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.dropped))
	for name := range r.dropped {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Level describes one retained level of a series: its index, the raw
// points folded into each stored point, and the retained point count.
type Level struct {
	Level    int   `json:"level"`
	PerPoint int   `json:"raw_per_point"`
	Points   int   `json:"points"`
	OldestT  int64 `json:"oldest_t"`
	NewestT  int64 `json:"newest_t"`
}

// Levels reports the retention pyramid of one series (diagnostics and
// tests).
func (r *Run) Levels(name string) []Level {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := r.series[name]
	if s == nil {
		return nil
	}
	out := make([]Level, len(s.levels))
	per := 1
	for i := range s.levels {
		lv := Level{Level: i, PerPoint: per, Points: s.levels[i].n}
		if s.levels[i].n > 0 {
			lv.OldestT = s.levels[i].at(0).T
			lv.NewestT = s.levels[i].at(s.levels[i].n - 1).T
		}
		out[i] = lv
		per *= r.opt.Fanout
	}
	return out
}

// Query returns the points of one series overlapping [from, to] (to <= 0
// means "to the end"), downsampled to roughly the requested resolution:
// res is the desired seconds-per-point; the query picks the coarsest
// level whose point spacing does not exceed it (res <= 0 means the
// finest), then steps up to coarser levels when the fine rings have
// already evicted the window's start — the level trade the pyramid
// exists for. The chosen level's raw-per-point factor is returned so
// callers can label the resolution they got.
func (r *Run) Query(name string, from, to int64, res int64) ([]Point, int, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := r.series[name]
	if s == nil {
		names := make([]string, 0, len(r.series))
		for n := range r.series {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, 0, fmt.Errorf("tsdb: unknown series %q (stored: %v)", name, names)
	}
	if to <= 0 {
		to = s.lastT
	}

	// Point spacing per level is the raw sample interval times
	// fanout^level; estimate the raw interval from level 0's content.
	rawStep := int64(1)
	if l0 := &s.levels[0]; l0.n > 1 {
		if d := (l0.at(l0.n-1).T - l0.at(0).T) / int64(l0.n-1); d > 0 {
			rawStep = d
		}
	}

	pick := 0
	if res > 0 {
		spacing := rawStep
		for l := 0; l < len(s.levels); l++ {
			if spacing > res {
				break
			}
			pick = l
			spacing *= int64(r.opt.Fanout)
		}
	}
	// A short series may not have cascaded anything into the picked
	// level yet — step finer until there are points to answer with.
	for pick > 0 && s.levels[pick].n == 0 {
		pick--
	}
	// Step coarser while the picked level has already evicted `from`
	// and a coarser, still-populated level reaches further back.
	for pick < len(s.levels)-1 {
		cur := &s.levels[pick]
		if cur.n > 0 && cur.at(0).T <= from {
			break
		}
		next := &s.levels[pick+1]
		if next.n == 0 {
			break
		}
		if cur.n > 0 && next.at(0).T >= cur.at(0).T {
			break
		}
		pick++
	}

	lv := &s.levels[pick]
	out := make([]Point, 0, lv.n)
	for i := 0; i < lv.n; i++ {
		p := lv.at(i)
		if p.T < from || p.T > to {
			continue
		}
		out = append(out, p)
	}
	per := 1
	for i := 0; i < pick; i++ {
		per *= r.opt.Fanout
	}
	return out, per, nil
}
