package rjms

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/trace"
)

// sliceSource yields pre-built jobs, handing over ownership like a real
// trace stream does.
type sliceSource struct {
	jobs []*job.Job
	i    int
}

func (s *sliceSource) Next() (*job.Job, error) {
	if s.i >= len(s.jobs) {
		return nil, nil
	}
	j := s.jobs[s.i]
	s.i++
	return j, nil
}

// TestLoadWorkloadStreamMatchesPreload replays the same workload through
// the preloaded and the streaming ingestion paths under an active
// powercap and requires identical summaries and time series — the
// streaming path must not change a single scheduling decision.
func TestLoadWorkloadStreamMatchesPreload(t *testing.T) {
	wl, err := trace.Generate(trace.Config{Kind: trace.MedianJob, Seed: 77, Cores: 48, DurationSec: 3600})
	if err != nil {
		t.Fatal(err)
	}
	run := func(load func(*Controller) error) (interface{}, []interface{}) {
		t.Helper()
		c := mustNew(t, tinyConfig(core.PolicyShut))
		if err := load(c); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ReservePowerCap(1200, 2400, power.CapFraction(0.6, c.Cluster().MaxPower())); err != nil {
			t.Fatal(err)
		}
		sum, err := c.Run(3600)
		if err != nil {
			t.Fatal(err)
		}
		var samples []interface{}
		for _, s := range c.Samples() {
			samples = append(samples, s)
		}
		return sum, samples
	}
	sumA, samplesA := run(func(c *Controller) error { return c.LoadWorkload(wl) })
	streamed := make([]*job.Job, len(wl))
	for i, j := range wl {
		streamed[i] = j.Clone()
	}
	sumB, samplesB := run(func(c *Controller) error {
		return c.LoadWorkloadStream(&sliceSource{jobs: streamed})
	})
	if !reflect.DeepEqual(sumA, sumB) {
		t.Fatalf("summaries differ:\n preload %+v\n stream  %+v", sumA, sumB)
	}
	if !reflect.DeepEqual(samplesA, samplesB) {
		t.Fatal("time series differ between preload and stream ingestion")
	}
}

func TestLoadWorkloadStreamRejectsUpfront(t *testing.T) {
	c := mustNew(t, tinyConfig(core.PolicyNone))
	// First job invalid: error before the replay starts.
	err := c.LoadWorkloadStream(&sliceSource{jobs: []*job.Job{
		{ID: 1, Cores: 0, Submit: 0, Runtime: 10, Walltime: 10},
	}})
	if err == nil {
		t.Fatal("invalid first job accepted")
	}
	c = mustNew(t, tinyConfig(core.PolicyNone))
	err = c.LoadWorkloadStream(&sliceSource{jobs: []*job.Job{
		{ID: 1, Cores: 49, Submit: 0, Runtime: 10, Walltime: 10},
	}})
	if err == nil {
		t.Fatal("too-wide first job accepted")
	}
}

func TestLoadWorkloadStreamMidStreamErrors(t *testing.T) {
	// Out-of-order submission discovered mid-replay surfaces from Run.
	c := mustNew(t, tinyConfig(core.PolicyNone))
	err := c.LoadWorkloadStream(&sliceSource{jobs: []*job.Job{
		{ID: 1, Cores: 4, Submit: 100, Runtime: 10, Walltime: 10},
		{ID: 2, Cores: 4, Submit: 50, Runtime: 10, Walltime: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(1000); err == nil {
		t.Fatal("out-of-order stream not reported")
	}
	// A job wider than the machine mid-stream likewise.
	c = mustNew(t, tinyConfig(core.PolicyNone))
	err = c.LoadWorkloadStream(&sliceSource{jobs: []*job.Job{
		{ID: 1, Cores: 4, Submit: 0, Runtime: 10, Walltime: 10},
		{ID: 2, Cores: 49, Submit: 10, Runtime: 10, Walltime: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(1000); err == nil {
		t.Fatal("too-wide streamed job not reported")
	}
}

// errSource fails after a few records, as a truncated or corrupt trace
// file would.
type errSource struct{ n int }

func (s *errSource) Next() (*job.Job, error) {
	if s.n == 0 {
		return nil, fmt.Errorf("corrupt record")
	}
	s.n--
	return &job.Job{ID: job.ID(10 - s.n), Cores: 1, Submit: int64(10 - s.n), Runtime: 5, Walltime: 5}, nil
}

func TestLoadWorkloadStreamSourceError(t *testing.T) {
	c := mustNew(t, tinyConfig(core.PolicyNone))
	if err := c.LoadWorkloadStream(&errSource{n: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(1000); err == nil {
		t.Fatal("source error not reported")
	}
}
