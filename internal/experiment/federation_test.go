package experiment

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"repro/internal/replay"
)

// testFedGrid is a small (member-count x cap x division) grid: every
// axis of the federated sweep exercised at minimal cost.
func testFedGrid() FederationGrid {
	return FederationGrid{
		Name:         "fedtest",
		MemberCounts: []int{2, 3},
		CapFractions: []float64{0.5},
		Divisions:    []replay.Division{replay.DivideProRata, replay.DivideDemand},
		ScaleRacks:   2,
	}
}

func TestFederationGridExpansion(t *testing.T) {
	g := testFedGrid()
	scens := g.Scenarios()
	if len(scens) != g.Size() {
		t.Fatalf("expanded %d cells, Size says %d", len(scens), g.Size())
	}
	wantNames := []string{
		"fed2/50%/prorata", "fed2/50%/demand",
		"fed3/50%/prorata", "fed3/50%/demand",
	}
	for i, s := range scens {
		if s.Name != wantNames[i] {
			t.Errorf("cell %d = %q, want %q", i, s.Name, wantNames[i])
		}
		if err := s.Validate(); err != nil {
			t.Errorf("cell %d invalid: %v", i, err)
		}
	}
}

// TestFederationFingerprintWorkerIndependence is the federation
// determinism gate: the same grid must fingerprint bit-identically at
// 1, 4 and max workers.
func TestFederationFingerprintWorkerIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker federated sweep in -short mode")
	}
	g := testFedGrid()
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var want string
	for _, workers := range counts {
		tab := RunFederation(g, workers)
		if errs := tab.Errs(); len(errs) > 0 {
			t.Fatalf("workers=%d: %v", workers, errs[0])
		}
		fp := tab.Fingerprint()
		if want == "" {
			want = fp
			continue
		}
		if fp != want {
			t.Errorf("workers=%d fingerprint %s, want %s (workers=%d)", workers, fp, want, counts[0])
		}
	}
}

func TestFederationExports(t *testing.T) {
	tab := RunFederation(FederationGrid{
		MemberCounts: []int{2},
		CapFractions: []float64{0.5},
		Divisions:    []replay.Division{replay.DivideDemand},
		ScaleRacks:   2,
	}, 0)
	if errs := tab.Errs(); len(errs) > 0 {
		t.Fatal(errs[0])
	}

	var csvBuf bytes.Buffer
	if err := tab.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d, want header + 1 row", len(lines))
	}
	if !strings.HasPrefix(lines[0], "index,name,members,cap_fraction,division") {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "fed2/50%/demand") {
		t.Errorf("CSV row = %q, want cell name in it", lines[1])
	}

	var jsonBuf bytes.Buffer
	if err := tab.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Cells int `json:"cells"`
		Rows  []struct {
			Division   string `json:"division"`
			MemberRows []struct {
				Name string `json:"name"`
			} `json:"member_rows"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Cells != 1 || len(decoded.Rows) != 1 {
		t.Fatalf("JSON cells = %d rows = %d, want 1/1", decoded.Cells, len(decoded.Rows))
	}
	if decoded.Rows[0].Division != "demand" || len(decoded.Rows[0].MemberRows) != 2 {
		t.Errorf("JSON row = %+v, want demand division with 2 member rows", decoded.Rows[0])
	}

	ascii := tab.ASCII(80)
	if !strings.Contains(ascii, "fed2/50%/demand") || !strings.Contains(ascii, "bsld") {
		t.Errorf("ASCII missing cell or header:\n%s", ascii)
	}
}
