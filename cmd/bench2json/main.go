// Command bench2json converts `go test -bench` text output (read from
// stdin) into a stable JSON document (written to stdout), so CI can
// archive benchmark results as machine-readable artifacts and track
// their trajectory across commits.
//
// Usage:
//
//	go test -run xxx -bench 'Sweep$' -benchtime 1x -benchmem . | bench2json > BENCH_sweep.json
//
// Standard units (ns/op, B/op, allocs/op) and custom b.ReportMetric
// units (configs, speedup, normWork, ...) all land in the per-benchmark
// metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the JSON envelope.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` text output into a Report.
func Parse(r io.Reader) (Report, error) {
	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, err := parseBenchLine(line)
		if err != nil {
			return rep, err
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, sc.Err()
}

// parseBenchLine parses one result line:
//
//	BenchmarkSweep/serial-8  1  9.3e8 ns/op  1.2e6 B/op  813 allocs/op  14 configs  1.0 speedup
func parseBenchLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("bench2json: short benchmark line %q", line)
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bench2json: bad run count in %q: %v", line, err)
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bench2json: bad metric value in %q: %v", line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

func main() {
	rep, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench2json: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
