package cluster

import "repro/internal/power"

// Selection strategies for the offline phase of the powercap algorithm.
// The paper (Sections III-B, V, VI-A) regroups the nodes to switch off on
// chassis and rack boundaries so the shared-equipment "power bonus" is
// harvested; the scattered variant exists for the ablation benchmark that
// quantifies the value of that grouping.

// SelectGrouped picks `want` nodes to switch off, maximizing the power
// bonus: whole racks first, then whole chassis, then single nodes, scanning
// from the high end of the machine to keep the allocatable region
// contiguous. Only nodes for which eligible returns true are taken (pass
// nil to accept every node). The result is sorted descending by ID and may
// be shorter than `want` when eligibility is scarce.
func SelectGrouped(c *Cluster, want int, eligible func(NodeID) bool) []NodeID {
	if want <= 0 {
		return nil
	}
	ok := eligible
	if ok == nil {
		ok = func(NodeID) bool { return true }
	}
	topo := c.Topology()
	taken := make(map[NodeID]bool, want)
	out := make([]NodeID, 0, want)

	take := func(first NodeID, n int) {
		for i := 0; i < n; i++ {
			id := first + NodeID(i)
			if !taken[id] {
				taken[id] = true
				out = append(out, id)
			}
		}
	}
	groupEligible := func(first NodeID, n int) bool {
		for i := 0; i < n; i++ {
			id := first + NodeID(i)
			if taken[id] || !ok(id) {
				return false
			}
		}
		return true
	}

	// Whole racks.
	perRack := topo.NodesPerRack()
	for r := topo.Racks - 1; r >= 0 && want-len(out) >= perRack; r-- {
		first, n := topo.RackNodes(r)
		if groupEligible(first, n) {
			take(first, n)
		}
	}
	// Whole chassis.
	for ch := topo.Chassis() - 1; ch >= 0 && want-len(out) >= topo.NodesPerChassis; ch-- {
		first, n := topo.ChassisNodes(ch)
		if groupEligible(first, n) {
			take(first, n)
		}
	}
	// Single nodes, highest IDs first.
	for id := NodeID(topo.Nodes() - 1); id >= 0 && len(out) < want; id-- {
		if !taken[id] && ok(id) {
			taken[id] = true
			out = append(out, id)
		}
	}
	return out
}

// SelectScattered picks `want` eligible nodes deliberately spread across
// chassis (round-robin, one node per chassis per sweep) so that no group
// bonus can be harvested. Used by the grouped-vs-scattered ablation.
func SelectScattered(c *Cluster, want int, eligible func(NodeID) bool) []NodeID {
	if want <= 0 {
		return nil
	}
	ok := eligible
	if ok == nil {
		ok = func(NodeID) bool { return true }
	}
	topo := c.Topology()
	out := make([]NodeID, 0, want)
	taken := make(map[NodeID]bool, want)
	for sweep := 0; sweep < topo.NodesPerChassis && len(out) < want; sweep++ {
		for ch := 0; ch < topo.Chassis() && len(out) < want; ch++ {
			first, n := topo.ChassisNodes(ch)
			if sweep >= n {
				continue
			}
			id := first + NodeID(sweep)
			if !taken[id] && ok(id) {
				taken[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// PlannedSaving returns the power that switching off exactly the given node
// set would save relative to those nodes running busy at nominal frequency,
// including every chassis and rack bonus the set completes. This is the
// quantity the offline planner maximizes (the paper's worked example:
// 20 scattered nodes save 20x344 W = 6880 W, one full 18-node chassis saves
// 6692 W).
func PlannedSaving(c *Cluster, ids []NodeID) power.Watts {
	topo := c.Topology()
	prof := c.Profile()
	ov := c.Overhead()
	perNode := float64(prof.Max() - prof.Down())

	inSet := make(map[NodeID]bool, len(ids))
	chassisHit := make(map[int]int)
	for _, id := range ids {
		if c.checkID(id) != nil || inSet[id] {
			continue
		}
		inSet[id] = true
		chassisHit[topo.ChassisOf(id)]++
	}
	saving := perNode * float64(len(inSet))

	rackFull := make(map[int]int)
	for ch, n := range chassisHit {
		if n == topo.NodesPerChassis {
			saving += ov.ChassisWatts + float64(prof.Down())*float64(topo.NodesPerChassis)
			rackFull[ch/topo.ChassisPerRack]++
		}
	}
	for _, n := range rackFull {
		if n == topo.ChassisPerRack {
			saving += ov.RackWatts
		}
	}
	return power.Watts(saving)
}
