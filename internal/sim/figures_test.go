package sim

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/figures"
	"repro/internal/replay"
)

// TestFigureRegistryOrder pins the catalogue and the "all" subset (the
// presentation order of expfig -fig all).
func TestFigureRegistryOrder(t *testing.T) {
	want := []string{"2", "3", "4", "5", "6", "7a", "7b", "8", "claims", "ablation", "sweep", "scenarios", "federation"}
	if got := Figures.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Figures.Names() = %v, want %v", got, want)
	}
	wantAll := []string{"2", "3", "4", "5", "6", "7a", "7b", "8", "claims", "ablation"}
	if got := FigureNamesInAll(); !reflect.DeepEqual(got, wantAll) {
		t.Errorf("FigureNamesInAll() = %v, want %v", got, wantAll)
	}
}

func TestStaticFigureRendersWithoutRunning(t *testing.T) {
	text, rep, err := RunFigure(context.Background(), "2", FigureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Error("static figure produced a report")
	}
	if text != figures.Fig2() {
		t.Error("figure 2 drifted from figures.Fig2")
	}
}

// TestReplayedFigureMatchesDirectPath: the registry path (scenario ->
// spec -> facade -> render) reproduces the direct replay rendering
// byte for byte.
func TestReplayedFigureMatchesDirectPath(t *testing.T) {
	opt := FigureOptions{Racks: 2, Workers: 2, Width: 96, Height: 14}
	text, rep, err := RunFigure(context.Background(), "7b", opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Single == nil {
		t.Fatal("figure 7b produced no single-run report")
	}

	direct := replay.Run(replay.Fig7bScenario(2))
	if direct.Err != nil {
		t.Fatal(direct.Err)
	}
	want := "Figure 7b: smalljob workload, DVFS policy, 40% cap\n\n" +
		figures.TimeSeries(direct, 96, 14)
	if text != want {
		t.Error("figure 7b rendering drifted from the direct replay path")
	}
}

// TestFigureSpecsValidateAndDump: every replayed figure's spec
// validates, normalizes and round-trips — the property that keeps
// `expfig -dumpspec` output loadable.
func TestFigureSpecsValidateAndDump(t *testing.T) {
	opt := FigureOptions{Racks: 2}
	for _, name := range Figures.Names() {
		fig, err := Figures.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if fig.Static != nil {
			continue
		}
		spec, err := fig.Spec(opt)
		if err != nil {
			t.Errorf("figure %s: spec build: %v", name, err)
			continue
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("figure %s: spec invalid: %v", name, err)
			continue
		}
		n := spec.Normalize()
		var buf strings.Builder
		if err := n.EncodeJSON(&buf); err != nil {
			t.Errorf("figure %s: encode: %v", name, err)
			continue
		}
		if err := RoundTrips([]byte(buf.String())); err != nil {
			t.Errorf("figure %s: %v", name, err)
		}
	}
}

// TestFigureSpecCellsMatchBuilders: the cell-list specs expand to
// exactly the scenario lists the predefined builders produce — the
// declarative form loses nothing.
func TestFigureSpecCellsMatchBuilders(t *testing.T) {
	cases := map[string]func(int) []replay.Scenario{
		"8":      replay.Fig8Scenarios,
		"claims": replay.Claims24hScenarios,
		"scenarios": func(scale int) []replay.Scenario {
			return replay.LibraryScenarios(scale)
		},
	}
	for name, build := range cases {
		fig, err := Figures.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := fig.Spec(FigureOptions{Racks: 2})
		if err != nil {
			t.Fatal(err)
		}
		got, err := spec.Scenarios()
		if err != nil {
			t.Fatalf("figure %s: %v", name, err)
		}
		want := build(2)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("figure %s: spec cells expand to different scenarios than the builder", name)
		}
	}
}
