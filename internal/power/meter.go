package power

import "fmt"

// Meter integrates a piecewise-constant power draw over (virtual) time,
// exactly: every time the draw changes, the caller reports the new value and
// the instant of the change, and the meter accumulates watts x elapsed
// seconds. This is the energy-accounting backbone of the replay harness.
type Meter struct {
	last    Watts
	lastAt  int64
	total   Joules
	peak    Watts
	started bool
	startAt int64
}

// NewMeter returns a meter whose integration starts at time 'at' (seconds)
// with draw w.
func NewMeter(at int64, w Watts) *Meter {
	return &Meter{last: w, lastAt: at, peak: w, started: true, startAt: at}
}

// Set records that the draw changed to w at time 'at'. Calls must have
// non-decreasing times; out-of-order calls are rejected with an error so
// simulator bugs surface instead of silently corrupting energy totals.
func (m *Meter) Set(at int64, w Watts) error {
	if !m.started {
		m.last, m.lastAt, m.peak = w, at, w
		m.started, m.startAt = true, at
		return nil
	}
	if at < m.lastAt {
		return fmt.Errorf("power: meter update at t=%d before previous t=%d", at, m.lastAt)
	}
	m.total += Energy(m.last, at-m.lastAt)
	m.last, m.lastAt = w, at
	if w > m.peak {
		m.peak = w
	}
	return nil
}

// Current returns the draw of the open segment.
func (m *Meter) Current() Watts { return m.last }

// Peak returns the highest draw ever recorded.
func (m *Meter) Peak() Watts { return m.peak }

// EnergyAt returns the energy accumulated from the start through time 'at',
// including the still-open last segment. 'at' must not precede the last
// update.
func (m *Meter) EnergyAt(at int64) Joules {
	if at < m.lastAt {
		at = m.lastAt
	}
	return m.total + Energy(m.last, at-m.lastAt)
}

// MeanAt returns the time-averaged draw between the meter start and 'at'.
func (m *Meter) MeanAt(at int64) Watts {
	if !m.started || at <= m.startAt {
		return m.last
	}
	return Watts(float64(m.EnergyAt(at)) / float64(at-m.startAt))
}
