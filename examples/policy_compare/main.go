// Policy comparison: a reduced-scale Figure 8 — the three 5-hour
// workload intervals under every policy/cap combination, run in parallel
// on a worker pool, summarized as the paper's normalized energy / jobs /
// work bars.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/figures"
	"repro/internal/replay"
)

func main() {
	racks := flag.Int("racks", 8, "machine size in racks (56 = full Curie)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.Parse()

	scens := replay.Fig8Scenarios(*racks)
	fmt.Printf("running %d scenarios on a %d-node machine...\n",
		len(scens), scens[0].Machine().Nodes())
	start := time.Now()
	results := replay.RunAll(scens, *workers)
	fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))

	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("%s failed: %v\n", r.Scenario.Name, r.Err)
			return
		}
	}
	fmt.Print(figures.Fig8(results))
	fmt.Println()
	fmt.Print(figures.SummaryTable(results))
	fmt.Println("\nexpected shape (paper, Section VII-C): work and energy fall with the")
	fmt.Println("cap; DVFS accumulates more core-time than SHUT (slowed jobs run longer);")
	fmt.Println("MIX tends to the lowest energy at comparable work.")
}
