// Package powerlog models the power measurement path the paper's final
// future-work item asks for: "adapt the powercapping algorithm in order
// to consider the real-time power consumption measures of the nodes,
// instead of considering the static values defined during the
// initialization phase". SLURM gained per-node IPMI power sampling in the
// authors' earlier work [26]; this package provides the simulated
// equivalent — a deterministic noisy sensor over the true cluster draw, a
// sliding-window smoother, and a guard-band estimator that turns noisy
// readings into a conservative draw estimate the online algorithm can
// compare against the cap.
package powerlog

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/power"
)

// Sensor produces noisy readings of a true wattage, deterministically:
// the same seed and sequence of calls yields the same readings. Noise is
// Gaussian with a relative standard deviation plus a constant offset
// (miscalibration), clamped at zero.
type Sensor struct {
	rng       *rand.Rand
	relStddev float64
	offset    power.Watts
}

// NewSensor builds a sensor. relStddev is the noise magnitude relative
// to the reading (e.g. 0.02 for IPMI-grade 2%); offset models a constant
// calibration error.
func NewSensor(seed int64, relStddev float64, offset power.Watts) (*Sensor, error) {
	if relStddev < 0 {
		return nil, fmt.Errorf("powerlog: negative noise %v", relStddev)
	}
	return &Sensor{rng: rand.New(rand.NewSource(seed)), relStddev: relStddev, offset: offset}, nil
}

// Read samples the sensor against the true draw.
func (s *Sensor) Read(truth power.Watts) power.Watts {
	noisy := float64(truth) * (1 + s.rng.NormFloat64()*s.relStddev)
	noisy += float64(s.offset)
	if noisy < 0 {
		noisy = 0
	}
	return power.Watts(noisy)
}

// Window is a fixed-size sliding window of readings with O(1) mean —
// the smoothing the controller applies before acting on measurements.
// The ring buffer is pre-sized at construction and Push never
// allocates: in measured mode the controller feeds the window on every
// cluster-state mutation, which makes this one of the replay hot paths.
type Window struct {
	buf  []power.Watts
	next int
	n    int
	sum  float64
}

// NewWindow returns a window holding up to size readings, with the ring
// storage allocated up front.
func NewWindow(size int) (*Window, error) {
	if size <= 0 {
		return nil, fmt.Errorf("powerlog: window size %d", size)
	}
	return &Window{buf: make([]power.Watts, size)}, nil
}

// Push adds a reading, evicting the oldest when full.
func (w *Window) Push(v power.Watts) {
	if w.n == len(w.buf) {
		w.sum -= float64(w.buf[w.next])
	} else {
		w.n++
	}
	w.buf[w.next] = v
	w.sum += float64(v)
	if w.next++; w.next == len(w.buf) {
		w.next = 0
	}
}

// Mean returns the window average (0 when empty).
func (w *Window) Mean() power.Watts {
	if w.n == 0 {
		return 0
	}
	return power.Watts(w.sum / float64(w.n))
}

// Len returns the number of readings held.
func (w *Window) Len() int { return w.n }

// Max returns the largest reading held (0 when empty).
func (w *Window) Max() power.Watts {
	var m power.Watts
	for i := 0; i < w.n; i++ {
		if w.buf[i] > m {
			m = w.buf[i]
		}
	}
	return m
}

// Estimator turns sensor readings into the conservative draw estimate a
// measurement-based powercap check needs: the smoothed mean inflated by
// a guard band proportional to the sensor's noise, so that staying under
// the cap with the estimate keeps the true draw under the cap with high
// probability.
type Estimator struct {
	sensor *Sensor
	window *Window
	// GuardSigmas is how many noise standard deviations of margin the
	// estimate carries (2-3 typical).
	guardSigmas float64
}

// NewEstimator assembles the measurement path.
func NewEstimator(sensor *Sensor, windowSize int, guardSigmas float64) (*Estimator, error) {
	if sensor == nil {
		return nil, fmt.Errorf("powerlog: nil sensor")
	}
	if guardSigmas < 0 {
		return nil, fmt.Errorf("powerlog: negative guard %v", guardSigmas)
	}
	w, err := NewWindow(windowSize)
	if err != nil {
		return nil, err
	}
	return &Estimator{sensor: sensor, window: w, guardSigmas: guardSigmas}, nil
}

// Sample reads the sensor against the true draw and folds the reading
// into the window; it returns the raw reading.
func (e *Estimator) Sample(truth power.Watts) power.Watts {
	r := e.sensor.Read(truth)
	e.window.Push(r)
	return r
}

// Estimate returns the guarded draw estimate: mean + guardSigmas x
// (relStddev x mean) / sqrt(window length). Empty windows estimate 0
// (nothing measured yet).
func (e *Estimator) Estimate() power.Watts {
	n := e.window.Len()
	if n == 0 {
		return 0
	}
	mean := float64(e.window.Mean())
	guard := e.guardSigmas * e.sensor.relStddev * mean / math.Sqrt(float64(n))
	return power.Watts(mean + guard)
}

// Headroom returns how many watts the estimate leaves below the cap
// (negative when the estimate violates it).
func (e *Estimator) Headroom(budget power.Cap) power.Watts {
	if !budget.IsSet() {
		return power.Watts(math.Inf(1))
	}
	return budget.Watts() - e.Estimate()
}
