package replay

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/trace"
)

// Scale-2 machine (180 nodes, 2880 cores): Curie shape, fast runs.
const testRacks = 2

func shortWorkload(kind trace.Kind, seed int64) trace.Config {
	return trace.Config{Kind: kind, Seed: seed, DurationSec: 2 * 3600}
}

func TestScenarioHelpers(t *testing.T) {
	s := Scenario{Workload: trace.Config{Kind: trace.Day24h}, CapFraction: 0.4, Policy: core.PolicyMix}
	if s.Duration() != 24*3600 {
		t.Errorf("Duration = %d", s.Duration())
	}
	start, end := s.Window()
	if start != (24*3600-3600)/2 || end != start+3600 {
		t.Errorf("Window = [%d,%d)", start, end)
	}
	if !s.Capped() {
		t.Error("Capped = false")
	}
	if s.Label() != "40%/MIX" {
		t.Errorf("Label = %q", s.Label())
	}
	if (Scenario{}).Capped() {
		t.Error("zero scenario capped")
	}
	if (Scenario{CapFraction: 1}).Capped() {
		t.Error("cap=1 scenario capped")
	}
	if got := (Scenario{}).Label(); got != "100%/None" {
		t.Errorf("uncapped label = %q", got)
	}
	open := Scenario{Workload: shortWorkload(trace.MedianJob, 1), CapFraction: 0.5, CapStart: 100, OpenEnded: true}
	if _, end := open.Window(); end <= open.Duration() {
		t.Error("open-ended window should extend past the interval")
	}
	full := Scenario{}
	if full.Machine().Racks != 56 {
		t.Errorf("default machine racks = %d", full.Machine().Racks)
	}
	if (Scenario{ScaleRacks: 3}).Machine().Racks != 3 {
		t.Error("ScaleRacks ignored")
	}
}

func TestRunBaselineUtilization(t *testing.T) {
	r := Run(Scenario{
		Name:     "baseline",
		Workload: shortWorkload(trace.MedianJob, 11),
		Policy:   core.PolicyNone, ScaleRacks: testRacks,
	})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Summary.NormWork < 0.75 {
		t.Errorf("uncapped utilization = %.3f, want high (overloaded queue)", r.Summary.NormWork)
	}
	if r.Summary.JobsLaunched == 0 || len(r.Samples) == 0 {
		t.Errorf("no activity recorded: %+v", r.Summary)
	}
	if r.Plan.OffNodes != nil {
		t.Error("uncapped run produced an offline plan")
	}
}

func TestRunCappedShutHoldsBudgetAfterDrain(t *testing.T) {
	s := Scenario{
		Name:     "shut60",
		Workload: shortWorkload(trace.MedianJob, 11),
		Policy:   core.PolicyShut, CapFraction: 0.6, ScaleRacks: testRacks,
	}
	r := Run(s)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if len(r.Plan.OffNodes) == 0 {
		t.Fatal("no switch-off plan at a 60% cap")
	}
	start, end := s.Window()
	capW := 0.6 * float64(r.MaxPower)
	// Allow the documented drain transient; after a third of the window
	// the draw must be within the budget (short-job-dominated trace).
	var worst float64
	sawOff := false
	for _, sm := range r.Samples {
		if sm.T >= start+(end-start)/3 && sm.T < end {
			if float64(sm.Power) > worst {
				worst = float64(sm.Power)
			}
			if sm.OffNodes > 0 {
				sawOff = true
			}
		}
	}
	if !sawOff {
		t.Error("no nodes were off during the window")
	}
	if worst > capW*1.10 {
		t.Errorf("late-window draw %.0f exceeds cap %.0f by more than 10%%", worst, capW)
	}
	// Work under a cap must not exceed the uncapped baseline by much
	// (SHUT runs at nominal frequency, so no slowdown inflation).
	base := Run(Scenario{Workload: shortWorkload(trace.MedianJob, 11), Policy: core.PolicyNone, ScaleRacks: testRacks})
	if base.Err != nil {
		t.Fatal(base.Err)
	}
	if r.Summary.WorkCoreSec > base.Summary.WorkCoreSec*1.02 {
		t.Errorf("capped SHUT work %.3g above baseline %.3g",
			r.Summary.WorkCoreSec, base.Summary.WorkCoreSec)
	}
	if r.Summary.EnergyJ >= base.Summary.EnergyJ {
		t.Errorf("capped energy %v not below baseline %v", r.Summary.EnergyJ, base.Summary.EnergyJ)
	}
}

func TestRunDvfsLaunchesBelowNominal(t *testing.T) {
	s := Scenario{
		Name:     "dvfs40",
		Workload: shortWorkload(trace.SmallJob, 12),
		Policy:   core.PolicyDvfs, CapFraction: 0.4, ScaleRacks: testRacks,
	}
	r := Run(s)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	below := 0
	for f, n := range r.Summary.LaunchedByFreq {
		if int(f) < 2700 {
			below += n
		}
	}
	if below == 0 {
		t.Errorf("DVFS at a 40%% cap launched nothing below nominal: %v", r.Summary.LaunchedByFreq)
	}
	if r.Plan.OffNodes != nil {
		t.Error("DVFS planned a shutdown")
	}
}

func TestRunDeterministic(t *testing.T) {
	s := Scenario{
		Workload: shortWorkload(trace.BigJob, 13),
		Policy:   core.PolicyMix, CapFraction: 0.6, ScaleRacks: testRacks,
	}
	a, b := Run(s), Run(s)
	if a.Err != nil || b.Err != nil {
		t.Fatal(a.Err, b.Err)
	}
	if a.Summary.EnergyJ != b.Summary.EnergyJ || a.Summary.WorkCoreSec != b.Summary.WorkCoreSec ||
		a.Summary.JobsLaunched != b.Summary.JobsLaunched {
		t.Errorf("replay not deterministic:\n  %v\n  %v", a.Summary, b.Summary)
	}
}

func TestRunAllParallelMatchesSerial(t *testing.T) {
	scens := []Scenario{
		{Name: "a", Workload: shortWorkload(trace.MedianJob, 1), Policy: core.PolicyNone, ScaleRacks: testRacks},
		{Name: "b", Workload: shortWorkload(trace.MedianJob, 1), Policy: core.PolicyShut, CapFraction: 0.6, ScaleRacks: testRacks},
		{Name: "c", Workload: shortWorkload(trace.MedianJob, 1), Policy: core.PolicyDvfs, CapFraction: 0.6, ScaleRacks: testRacks},
		{Name: "d", Workload: shortWorkload(trace.MedianJob, 1), Policy: core.PolicyMix, CapFraction: 0.6, ScaleRacks: testRacks},
	}
	serial := RunAll(scens, 1)
	parallel := RunAll(scens, 4)
	for i := range scens {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatal(serial[i].Err, parallel[i].Err)
		}
		if serial[i].Scenario.Name != scens[i].Name || parallel[i].Scenario.Name != scens[i].Name {
			t.Fatal("result order scrambled")
		}
		if serial[i].Summary.EnergyJ != parallel[i].Summary.EnergyJ {
			t.Errorf("scenario %s: parallel energy %v != serial %v",
				scens[i].Name, parallel[i].Summary.EnergyJ, serial[i].Summary.EnergyJ)
		}
	}
}

func TestRunExplicitJobs(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, User: "u", Cores: 64, Submit: 0, Runtime: 600, Walltime: 1200},
		{ID: 2, User: "u", Cores: 64, Submit: 10, Runtime: 600, Walltime: 1200},
	}
	r := Run(Scenario{
		Name:     "explicit",
		Workload: trace.Config{Kind: trace.MedianJob, DurationSec: 3600},
		Policy:   core.PolicyNone, ScaleRacks: testRacks,
		Jobs: jobs,
	})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Summary.JobsSubmitted != 2 || r.Summary.JobsCompleted != 2 {
		t.Errorf("explicit workload not replayed: %+v", r.Summary)
	}
	// BSLD recorded for completed jobs.
	if r.Summary.MeanBSLD < 1 {
		t.Errorf("MeanBSLD = %v, want >= 1", r.Summary.MeanBSLD)
	}
}

func TestRunPropagatesWorkloadError(t *testing.T) {
	r := Run(Scenario{Workload: trace.Config{Kind: trace.MedianJob, DurationSec: -1}})
	if r.Err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestFig8ScenarioGrid(t *testing.T) {
	scens := Fig8Scenarios(testRacks)
	// 3 workloads x (1 baseline + 2@80% + 3@60% + 3@40%) = 27.
	if len(scens) != 27 {
		t.Fatalf("grid size = %d, want 27", len(scens))
	}
	perKind := map[string]int{}
	mixAt80 := false
	for _, s := range scens {
		perKind[s.Workload.Kind.String()]++
		if s.CapFraction == 0.8 && s.Policy == core.PolicyMix {
			mixAt80 = true
		}
		if s.ScaleRacks != testRacks {
			t.Errorf("%s: scale not forwarded", s.Name)
		}
	}
	if mixAt80 {
		t.Error("MIX appears at 80% (the paper introduces it below its 75% threshold)")
	}
	for k, n := range perKind {
		if n != 9 {
			t.Errorf("workload %s has %d scenarios, want 9", k, n)
		}
	}
}

func TestNamedScenarios(t *testing.T) {
	if s := Fig6Scenario(0); s.Policy != core.PolicyMix || s.CapFraction != 0.4 ||
		s.Workload.Kind != trace.Day24h {
		t.Errorf("Fig6 scenario wrong: %+v", s)
	}
	if s := Fig7aScenario(0); s.Policy != core.PolicyShut || s.CapFraction != 0.6 ||
		s.Workload.Kind != trace.BigJob {
		t.Errorf("Fig7a scenario wrong: %+v", s)
	}
	if s := Fig7bScenario(0); s.Policy != core.PolicyDvfs || s.CapFraction != 0.4 ||
		s.Workload.Kind != trace.SmallJob {
		t.Errorf("Fig7b scenario wrong: %+v", s)
	}
	claims := Claims24hScenarios(0)
	if len(claims) != 5 {
		t.Fatalf("claims scenarios = %d, want 5", len(claims))
	}
	seen := map[core.Policy]bool{}
	for _, s := range claims {
		seen[s.Policy] = true
	}
	for _, p := range []core.Policy{core.PolicyNone, core.PolicyShut, core.PolicyDvfs, core.PolicyMix, core.PolicyIdle} {
		if !seen[p] {
			t.Errorf("claims missing policy %v", p)
		}
	}
	ab := AblationGroupingScenarios(0)
	if len(ab) != 2 || ab[0].Scattered || !ab[1].Scattered {
		t.Errorf("grouping ablation wrong: %+v", ab)
	}
	mf := AblationMixFloorScenarios(0)
	if len(mf) != 2 || mf[0].Policy != core.PolicyMix || mf[1].Policy != core.PolicyDvfs {
		t.Errorf("mix-floor ablation wrong: %+v", mf)
	}
	for _, s := range append(append(claims, ab...), mf...) {
		if !strings.Contains(s.Name, "/") {
			t.Errorf("scenario name %q not structured", s.Name)
		}
	}
}

// TestPolicyShapeMedianjob checks the headline Figure 8 shape on a fast
// reduced-scale medianjob interval: work and energy fall as the cap
// tightens, and the capped runs consume less energy than the baseline.
func TestPolicyShapeMedianjob(t *testing.T) {
	wl := shortWorkload(trace.MedianJob, 21)
	mk := func(p core.Policy, frac float64) Scenario {
		return Scenario{Workload: wl, Policy: p, CapFraction: frac, ScaleRacks: testRacks}
	}
	scens := []Scenario{
		mk(core.PolicyNone, 0),
		mk(core.PolicyShut, 0.6),
		mk(core.PolicyShut, 0.4),
		mk(core.PolicyMix, 0.4),
	}
	rs := RunAll(scens, 0)
	for _, r := range rs {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	base, shut60, shut40, mix40 := rs[0], rs[1], rs[2], rs[3]
	if shut40.Summary.EnergyJ >= shut60.Summary.EnergyJ {
		t.Errorf("energy did not fall with the cap: 40%%=%v >= 60%%=%v",
			shut40.Summary.EnergyJ, shut60.Summary.EnergyJ)
	}
	if shut60.Summary.EnergyJ >= base.Summary.EnergyJ {
		t.Errorf("capped energy above baseline: %v >= %v",
			shut60.Summary.EnergyJ, base.Summary.EnergyJ)
	}
	if mix40.Summary.EnergyJ >= base.Summary.EnergyJ {
		t.Errorf("MIX energy above baseline")
	}
	// MIX's shutdown group must be sized for the 2.0 GHz floor, i.e. no
	// bigger than SHUT's at the same cap.
	if len(mix40.Plan.OffNodes) > len(shut40.Plan.OffNodes) {
		t.Errorf("MIX plans more shutdowns (%d) than SHUT (%d) at the same cap",
			len(mix40.Plan.OffNodes), len(shut40.Plan.OffNodes))
	}
}
