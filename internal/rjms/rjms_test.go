package rjms

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/reservation"
)

// tiny returns a 2x2x3 = 12-node machine (4 cores per node, 48 cores)
// with Curie power constants.
func tinyConfig(policy core.Policy) Config {
	return Config{
		Topology: cluster.Topology{Racks: 2, ChassisPerRack: 2, NodesPerChassis: 3, CoresPerNode: 4},
		Policy:   policy,
	}
}

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{BackfillDepth: -1}); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := New(Config{SampleInterval: -1}); err == nil {
		t.Error("negative sample interval accepted")
	}
	if _, err := New(Config{DegMinFull: 0.5}); err == nil {
		t.Error("degMin < 1 accepted")
	}
	if _, err := New(Config{}); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestSingleJobLifecycle(t *testing.T) {
	c := mustNew(t, tinyConfig(core.PolicyNone))
	jobs := []*job.Job{{ID: 1, User: "u", Cores: 8, Submit: 10, Runtime: 100, Walltime: 200}}
	if err := c.LoadWorkload(jobs); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsSubmitted != 1 || sum.JobsLaunched != 1 || sum.JobsCompleted != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.JobsKilled != 0 {
		t.Errorf("killed = %d", sum.JobsKilled)
	}
	// Work = 8 cores x 100 s.
	if sum.WorkCoreSec != 800 {
		t.Errorf("work = %v, want 800", sum.WorkCoreSec)
	}
	// Energy: baseline idle (12x117 + 4x248 + 2x900 = 4196 W) for 1000 s
	// plus 2 nodes uplifted to 358 W for 100 s.
	wantJ := 4196.0*1000 + 2*(358-117)*100
	if got := float64(sum.EnergyJ); got != wantJ {
		t.Errorf("energy = %v J, want %v", got, wantJ)
	}
	if c.PendingCount() != 0 || c.RunningCount() != 0 {
		t.Errorf("queues not drained: %d pending, %d running", c.PendingCount(), c.RunningCount())
	}
}

func TestWorkloadRejectsOversizedJob(t *testing.T) {
	c := mustNew(t, tinyConfig(core.PolicyNone))
	err := c.LoadWorkload([]*job.Job{{ID: 1, Cores: 49, Submit: 0, Runtime: 10, Walltime: 10}})
	if err == nil {
		t.Error("oversized job accepted")
	}
	if err := c.LoadWorkload([]*job.Job{{ID: 2, Cores: 0, Submit: 0, Runtime: 10, Walltime: 10}}); err == nil {
		t.Error("invalid job accepted")
	}
}

func TestFCFSAndBackfill(t *testing.T) {
	c := mustNew(t, tinyConfig(core.PolicyNone))
	// Job 1 takes the whole machine for 100 s. Job 2 (whole machine)
	// must wait. Job 3 is small and short: EASY backfills it only if it
	// fits before job 1's expected end... but job 1 holds all cores, so
	// there is no room; after job 1 ends, job 2 runs, then job 3 cannot
	// start until job 2 finishes.
	jobs := []*job.Job{
		{ID: 1, User: "a", Cores: 48, Submit: 0, Runtime: 100, Walltime: 120},
		{ID: 2, User: "b", Cores: 48, Submit: 1, Runtime: 100, Walltime: 120},
		{ID: 3, User: "c", Cores: 4, Submit: 2, Runtime: 10, Walltime: 20},
	}
	if err := c.LoadWorkload(jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(1001)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsCompleted != 3 {
		t.Fatalf("completed = %d, want 3", sum.JobsCompleted)
	}
}

func TestBackfillFillsHoles(t *testing.T) {
	c := mustNew(t, tinyConfig(core.PolicyNone))
	// Job 1 takes half the machine for a long time. Job 2 wants the
	// whole machine: blocked, shadow at job 1's expected end (1000).
	// Job 3 (8 cores, ends at 0+50*? walltime 50 < 1000) backfills.
	jobs := []*job.Job{
		{ID: 1, User: "a", Cores: 24, Submit: 0, Runtime: 900, Walltime: 1000},
		{ID: 2, User: "b", Cores: 48, Submit: 1, Runtime: 100, Walltime: 100},
		{ID: 3, User: "c", Cores: 8, Submit: 2, Runtime: 40, Walltime: 50},
	}
	if err := c.LoadWorkload(jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(50); err != nil {
		t.Fatal(err)
	}
	// At t=50 job 3 must already be done (backfilled at t=2, ran 40 s).
	if got := c.RunningCount(); got != 1 {
		t.Errorf("running at t=50 = %d, want only job 1", got)
	}
	sum, err := c.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsCompleted != 3 {
		t.Errorf("completed = %d, want 3", sum.JobsCompleted)
	}
}

func TestBackfillDoesNotDelayHead(t *testing.T) {
	c := mustNew(t, tinyConfig(core.PolicyNone))
	// Job 1: 24 cores until ~1000. Job 2 (head): 48 cores, shadow 1000.
	// Job 3: 24 cores, walltime 5000 — starting it would hold cores past
	// the shadow and delay job 2; it must NOT backfill.
	jobs := []*job.Job{
		{ID: 1, User: "a", Cores: 24, Submit: 0, Runtime: 900, Walltime: 1000},
		{ID: 2, User: "b", Cores: 48, Submit: 1, Runtime: 100, Walltime: 100},
		{ID: 3, User: "c", Cores: 24, Submit: 2, Runtime: 4000, Walltime: 5000},
	}
	if err := c.LoadWorkload(jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(500); err != nil {
		t.Fatal(err)
	}
	if got := c.RunningCount(); got != 1 {
		t.Errorf("running at t=500 = %d, want 1 (job 3 must not delay job 2)", got)
	}
}

func TestPowercapShutPlansAndPowersOff(t *testing.T) {
	cfg := tinyConfig(core.PolicyShut)
	c := mustNew(t, cfg)
	maxP := c.Cluster().MaxPower()
	budget := power.CapFraction(0.6, maxP)
	plan, err := c.ReservePowerCap(100, 200, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.OffNodes) == 0 {
		t.Fatal("offline plan reserved no nodes at a 60% cap")
	}
	if _, err := c.Run(150); err != nil {
		t.Fatal(err)
	}
	if got := c.Cluster().Count(cluster.StateOff); got != len(plan.OffNodes) {
		t.Errorf("off nodes during window = %d, want %d", got, len(plan.OffNodes))
	}
	if got := c.Cluster().Power(); !budget.Allows(got) {
		t.Errorf("draw %v exceeds cap %v during window", got, budget)
	}
	if _, err := c.Run(250); err != nil {
		t.Fatal(err)
	}
	if got := c.Cluster().Count(cluster.StateOff); got != 0 {
		t.Errorf("off nodes after window = %d, want 0", got)
	}
	for id := 0; id < c.Cluster().Nodes(); id++ {
		if c.Cluster().Reserved(cluster.NodeID(id)) {
			t.Errorf("node %d still reserved after window", id)
		}
	}
}

func TestPowercapShutKeepsJobsAtNominal(t *testing.T) {
	c := mustNew(t, tinyConfig(core.PolicyShut))
	if _, err := c.ReservePowerCap(0, reservation.Horizon, power.CapFraction(0.6, c.Cluster().MaxPower())); err != nil {
		t.Fatal(err)
	}
	jobs := []*job.Job{
		{ID: 1, User: "a", Cores: 8, Submit: 10, Runtime: 50, Walltime: 100},
	}
	if err := c.LoadWorkload(jobs); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(500)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsLaunched != 1 {
		t.Fatalf("launched = %d", sum.JobsLaunched)
	}
	if n := sum.LaunchedByFreq[dvfs.F2700]; n != 1 {
		t.Errorf("SHUT launched at non-nominal frequency: %v", sum.LaunchedByFreq)
	}
}

func TestPowercapDvfsDownclocksUnderTightCap(t *testing.T) {
	cfg := tinyConfig(core.PolicyDvfs)
	c := mustNew(t, cfg)
	clus := c.Cluster()
	// Budget: all-idle draw plus headroom for 12 nodes at 1.8 GHz, not
	// more. Idle = 4196 W; 12 nodes idle->1.8 uplift = 12*(248-117).
	budget := power.CapWatts(clus.IdlePower() + 12*(248-117))
	if _, err := c.ReservePowerCap(0, reservation.Horizon, budget); err != nil {
		t.Fatal(err)
	}
	// One whole-machine job: at nominal it would need 12*241 W uplift —
	// too much; at 1.8 GHz it fits exactly.
	jobs := []*job.Job{{ID: 1, User: "a", Cores: 48, Submit: 0, Runtime: 100, Walltime: 100}}
	if err := c.LoadWorkload(jobs); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsLaunched != 1 {
		t.Fatalf("launched = %d, want 1 (via DVFS)", sum.JobsLaunched)
	}
	if n := sum.LaunchedByFreq[dvfs.F1800]; n != 1 {
		t.Errorf("launch frequencies = %v, want 1.8 GHz", sum.LaunchedByFreq)
	}
	// The runtime is stretched by the degradation at 1.8 GHz.
	if sum.JobsCompleted != 1 {
		t.Errorf("job did not complete by t=400 (stretched runtime too long?)")
	}
}

func TestPowercapMixCombinedRegime(t *testing.T) {
	// A Curie-granularity machine (2 racks x 5 chassis x 18 nodes) so
	// the chassis-level trimming of the offline plan leaves headroom
	// fine enough that the online part must down-clock as it fills.
	cfg := Config{
		Topology: cluster.Topology{Racks: 2, ChassisPerRack: 5, NodesPerChassis: 18, CoresPerNode: 16},
		Policy:   core.PolicyMix,
	}
	c := mustNew(t, cfg)
	// 60% cap is below the all-at-floor draw: the offline part combines
	// shutdown with DVFS (Section VI-B: "both mechanisms should be used
	// together when the powercap is inferior to 75%").
	budget := power.CapFraction(0.6, c.Cluster().MaxPower())
	plan, err := c.ReservePowerCap(0, reservation.Horizon, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.CombineBoth {
		t.Fatalf("60%% MIX plan did not combine mechanisms: %+v", plan)
	}
	if len(plan.OffNodes) == 0 {
		t.Fatal("combined plan reserved no nodes")
	}
	var jobs []*job.Job
	for i := 0; i < 80; i++ {
		jobs = append(jobs, &job.Job{
			ID: job.ID(i + 1), User: "a", Cores: 32,
			Submit: int64(i), Runtime: 500, Walltime: 600,
		})
	}
	if err := c.LoadWorkload(jobs); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsLaunched < 10 {
		t.Fatalf("launched = %d, want many under the combined regime", sum.JobsLaunched)
	}
	for f, n := range sum.LaunchedByFreq {
		if n > 0 && f < dvfs.F2000 {
			t.Errorf("MIX launched below its 2.0 GHz floor: %v", f)
		}
	}
	if got := c.Cluster().Count(cluster.StateOff); got != len(plan.OffNodes) {
		t.Errorf("off nodes = %d, want the planned %d", got, len(plan.OffNodes))
	}
	if got := c.Cluster().Power(); !budget.Allows(got) {
		t.Errorf("draw %v exceeds the cap %v", got, budget)
	}
	// Not every pending job may launch: the cap must bite.
	if sum.JobsLaunched == sum.JobsSubmitted {
		t.Errorf("all %d jobs launched despite the 60%% cap", sum.JobsSubmitted)
	}
}

func TestPowercapIdlePolicyLeavesNodesOn(t *testing.T) {
	c := mustNew(t, tinyConfig(core.PolicyIdle))
	plan, err := c.ReservePowerCap(0, reservation.Horizon, power.CapFraction(0.6, c.Cluster().MaxPower()))
	if err != nil {
		t.Fatal(err)
	}
	if plan.OffNodes != nil {
		t.Errorf("IDLE policy planned a shutdown")
	}
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := c.Cluster().Count(cluster.StateOff); got != 0 {
		t.Errorf("IDLE powered off %d nodes", got)
	}
}

func TestJobsPendUnderCapAndResumeAfter(t *testing.T) {
	// IDLE policy: no shutdown, no DVFS — under a cap just above the
	// all-idle draw nothing can launch until the window passes.
	c := mustNew(t, tinyConfig(core.PolicyIdle))
	clus := c.Cluster()
	budget := power.CapWatts(clus.IdlePower() + 10)
	if _, err := c.ReservePowerCap(0, 500, budget); err != nil {
		t.Fatal(err)
	}
	jobs := []*job.Job{{ID: 1, User: "a", Cores: 4, Submit: 10, Runtime: 50, Walltime: 100}}
	if err := c.LoadWorkload(jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(499); err != nil {
		t.Fatal(err)
	}
	if c.PendingCount() != 1 {
		t.Fatalf("job ran under an impossible cap (pending=%d)", c.PendingCount())
	}
	sum, err := c.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsCompleted != 1 {
		t.Errorf("job did not resume after the window: %+v", sum)
	}
}

func TestDrainToOffDuringWindow(t *testing.T) {
	c := mustNew(t, tinyConfig(core.PolicyShut))
	// Occupy the whole machine before the window with a job ending
	// inside it: reserved busy nodes must drain to off at job end.
	jobs := []*job.Job{{ID: 1, User: "a", Cores: 48, Submit: 0, Runtime: 150, Walltime: 160}}
	if err := c.LoadWorkload(jobs); err != nil {
		t.Fatal(err)
	}
	// Start the job first, then reserve: the node group is busy when the
	// window opens (a reservation created earlier would have blocked the
	// overlapping job from those nodes in the first place).
	if _, err := c.Run(50); err != nil {
		t.Fatal(err)
	}
	if got := c.RunningCount(); got != 1 {
		t.Fatalf("setup: job not running at t=50")
	}
	budget := power.CapFraction(0.6, c.Cluster().MaxPower())
	if _, err := c.ReservePowerCap(100, 400, budget); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(120); err != nil {
		t.Fatal(err)
	}
	if got := c.Cluster().Count(cluster.StateOff); got != 0 {
		t.Errorf("busy reserved nodes powered off early: %d", got)
	}
	if _, err := c.Run(200); err != nil {
		t.Fatal(err)
	}
	if got := c.Cluster().Count(cluster.StateOff); got == 0 {
		t.Error("reserved nodes did not drain to off after their job ended")
	}
}

func TestKillOnOverrun(t *testing.T) {
	cfg := tinyConfig(core.PolicyShut)
	cfg.KillOnOverrun = true
	c := mustNew(t, cfg)
	jobs := []*job.Job{{ID: 1, User: "a", Cores: 48, Submit: 0, Runtime: 1000, Walltime: 1200}}
	if err := c.LoadWorkload(jobs); err != nil {
		t.Fatal(err)
	}
	// Let the job start, then spring a cap below the running draw: the
	// job is killed ("extreme actions", Section IV-B).
	if _, err := c.Run(50); err != nil {
		t.Fatal(err)
	}
	budget := power.CapWatts(c.Cluster().IdlePower() + 100)
	if _, err := c.ReservePowerCap(100, 500, budget); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(600)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsKilled != 1 {
		t.Fatalf("killed = %d, want 1", sum.JobsKilled)
	}
	if !budget.Allows(c.Cluster().Power()) {
		// after the window this is fine; check at t inside instead
		t.Log("draw after window:", c.Cluster().Power())
	}
}

func TestNoKillWithoutFlag(t *testing.T) {
	c := mustNew(t, tinyConfig(core.PolicyShut))
	jobs := []*job.Job{{ID: 1, User: "a", Cores: 48, Submit: 0, Runtime: 1000, Walltime: 1200}}
	if err := c.LoadWorkload(jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(50); err != nil {
		t.Fatal(err)
	}
	budget := power.CapWatts(c.Cluster().IdlePower() + 100)
	if _, err := c.ReservePowerCap(100, 500, budget); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(600)
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsKilled != 0 {
		t.Errorf("killed = %d without KillOnOverrun", sum.JobsKilled)
	}
	if sum.JobsCompleted != 0 {
		t.Errorf("the 1000 s job cannot have completed by t=600")
	}
}

func TestSamplesRecorded(t *testing.T) {
	cfg := tinyConfig(core.PolicyNone)
	cfg.SampleInterval = 50
	c := mustNew(t, cfg)
	if _, err := c.Run(200); err != nil {
		t.Fatal(err)
	}
	got := len(c.Samples())
	if got != 5 { // t = 0, 50, 100, 150, 200
		t.Errorf("samples = %d, want 5", got)
	}
	for _, s := range c.Samples() {
		if s.Power <= 0 {
			t.Errorf("sample at t=%d has power %v", s.T, s.Power)
		}
		if s.IdleNodes != 12 {
			t.Errorf("sample at t=%d idle=%d, want 12", s.T, s.IdleNodes)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	type digest struct {
		E, W float64
		L    int
	}
	run := func() digest {
		c := mustNew(t, tinyConfig(core.PolicyMix))
		if _, err := c.ReservePowerCap(100, 400, power.CapFraction(0.6, c.Cluster().MaxPower())); err != nil {
			t.Fatal(err)
		}
		jobs := []*job.Job{
			{ID: 1, User: "a", Cores: 20, Submit: 0, Runtime: 300, Walltime: 400},
			{ID: 2, User: "b", Cores: 20, Submit: 5, Runtime: 200, Walltime: 300},
			{ID: 3, User: "c", Cores: 48, Submit: 10, Runtime: 100, Walltime: 150},
			{ID: 4, User: "d", Cores: 4, Submit: 15, Runtime: 50, Walltime: 60},
		}
		if err := c.LoadWorkload(jobs); err != nil {
			t.Fatal(err)
		}
		sum, err := c.Run(1000)
		if err != nil {
			t.Fatal(err)
		}
		return digest{E: float64(sum.EnergyJ), W: sum.WorkCoreSec, L: sum.JobsLaunched}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("replay not deterministic: %+v vs %+v", a, b)
	}
}
