package core

import (
	"repro/internal/cluster"
	"repro/internal/dvfs"
	"repro/internal/power"
)

// OfflinePlan is the output of Algorithm 1: which mechanism the powercap
// window will use and, when shutdown participates, the concrete node group
// to reserve for switch-off.
type OfflinePlan struct {
	// Mechanism the window relies on (shutdown, DVFS or both).
	Mechanism dvfs.Mechanism
	// Rho is the published Figure 5 criterion evaluated for the policy's
	// ladder (meaningful for MIX, where the choice is automatic).
	Rho float64
	// CombineBoth reports the low-cap regime of Algorithm 1
	// (P < N*Pmin) where shutdown and DVFS must both be used.
	CombineBoth bool
	// OffNodes is the node group to reserve for switch-off during the
	// window (nil when shutdown does not participate).
	OffNodes []cluster.NodeID
	// PlannedSaving is the power the group sheds relative to those
	// nodes running busy at AssumedBusy, bonuses included.
	PlannedSaving power.Watts
	// NeededSaving is the reduction the cap demands under the same
	// assumption.
	NeededSaving power.Watts
	// AssumedBusy is the per-node draw the plan assumed for powered
	// nodes (nominal for SHUT; the MIX floor draw in the combined
	// regime).
	AssumedBusy power.Watts
}

// PlanOffline runs Algorithm 1 for a powercap reservation. It sizes the
// switch-off group against the worst case — every powered node busy at the
// frequency the online part may still hand out — and selects concrete
// nodes with SelectGrouped (or SelectScattered when grouped is false; the
// ablation of the offline phase's bonus harvesting). eligible filters
// nodes that may be reserved (nil accepts all).
//
// Policy behaviour:
//
//   - NONE, IDLE, DVFS: no shutdown; the plan only records the mechanism.
//   - SHUT: shutdown sized so that the remaining nodes can all run at
//     nominal frequency within the cap.
//   - MIX: Algorithm 1 verbatim — below N*Pmin (floor draw) both
//     mechanisms combine (shutdown sized assuming survivors run at the
//     MIX floor); otherwise the published rho picks the mechanism, and on
//     Curie constants (rho < 0) that is shutdown.
func PlanOffline(c *cluster.Cluster, pm PolicyModel, cap power.Cap, grouped bool, eligible func(cluster.NodeID) bool) OfflinePlan {
	prof := c.Profile()
	plan := OfflinePlan{
		Rho:         prof.Rho(pm.Deg.DegMin(), pm.Ladder.Min()),
		AssumedBusy: prof.Max(),
	}
	if !cap.IsSet() {
		plan.Mechanism = dvfs.MechanismEither
		return plan
	}

	switch pm.Policy {
	case PolicyNone, PolicyIdle:
		plan.Mechanism = dvfs.MechanismEither
		return plan
	case PolicyDvfs:
		plan.Mechanism = dvfs.MechanismDVFS
		return plan
	}

	// SHUT or MIX: shutdown participates.
	plan.Mechanism = dvfs.MechanismShutdown
	busy := prof.Max()
	if pm.Policy == PolicyMix {
		floorDraw := prof.Busy(pm.Ladder.Min())
		allAtFloor := wattsAllBusy(c, floorDraw)
		if cap.Watts() < allAtFloor {
			// Algorithm 1, first branch: P < N*Pmin — combine.
			plan.CombineBoth = true
			plan.Mechanism = dvfs.MechanismEither
			busy = floorDraw
		} else if plan.Rho > 0 {
			// rho > 0: DVFS alone (never the case on Curie).
			plan.Mechanism = dvfs.MechanismDVFS
			return plan
		}
	}
	plan.AssumedBusy = busy

	need := wattsAllBusy(c, busy) - cap.Watts()
	plan.NeededSaving = need
	if need <= 0 {
		return plan
	}

	sel := selectForSaving(c, busy, need, grouped, eligible)
	plan.OffNodes = sel
	plan.PlannedSaving = plannedSavingAt(c, sel, busy)
	return plan
}

// wattsAllBusy returns the cluster draw with every node busy at the given
// per-node wattage, all shared equipment powered.
func wattsAllBusy(c *cluster.Cluster, busy power.Watts) power.Watts {
	topo := c.Topology()
	ov := c.Overhead()
	return power.Watts(float64(busy)*float64(topo.Nodes()) +
		ov.ChassisWatts*float64(topo.Chassis()) +
		ov.RackWatts*float64(topo.Racks))
}

// plannedSavingAt generalizes cluster.PlannedSaving to an arbitrary
// assumed busy draw (the MIX floor draw in the combined regime).
func plannedSavingAt(c *cluster.Cluster, ids []cluster.NodeID, busy power.Watts) power.Watts {
	topo := c.Topology()
	prof := c.Profile()
	ov := c.Overhead()

	inSet := make(map[cluster.NodeID]bool, len(ids))
	chassisHit := map[int]int{}
	for _, id := range ids {
		if inSet[id] {
			continue
		}
		inSet[id] = true
		chassisHit[topo.ChassisOf(id)]++
	}
	saving := float64(busy-prof.Down()) * float64(len(inSet))
	rackFull := map[int]int{}
	for ch, n := range chassisHit {
		if n == topo.NodesPerChassis {
			saving += ov.ChassisWatts + float64(prof.Down())*float64(topo.NodesPerChassis)
			rackFull[ch/topo.ChassisPerRack]++
		}
	}
	for _, n := range rackFull {
		if n == topo.ChassisPerRack {
			saving += ov.RackWatts
		}
	}
	return power.Watts(saving)
}

// selectForSaving grows a switch-off group until it sheds at least `need`
// watts (assuming survivors draw `busy` each), then trims trailing single
// nodes made redundant by the harvested bonuses — the Section VI-A
// observation that grouping "allows us to use 2 extra nodes".
func selectForSaving(c *cluster.Cluster, busy power.Watts, need power.Watts, grouped bool, eligible func(cluster.NodeID) bool) []cluster.NodeID {
	perNode := float64(busy - c.Profile().Down())
	if perNode <= 0 {
		return nil
	}
	// Upper bound on the node count: ignore bonuses, then trim.
	want := int(float64(need)/perNode) + 1
	if want > c.Nodes() {
		want = c.Nodes()
	}
	pick := cluster.SelectGrouped
	if !grouped {
		pick = cluster.SelectScattered
	}
	sel := pick(c, want, eligible)
	for plannedSavingAt(c, sel, busy) < need && len(sel) < c.Nodes() {
		more := pick(c, len(sel)+c.Topology().NodesPerChassis, eligible)
		if len(more) <= len(sel) {
			break // eligibility exhausted
		}
		sel = more
	}
	// Trim trailing nodes while the saving still meets the need. The
	// grouped selector appends loose single nodes last, so trimming from
	// the tail removes exactly the nodes the bonus made redundant.
	for len(sel) > 0 && plannedSavingAt(c, sel[:len(sel)-1], busy) >= need {
		sel = sel[:len(sel)-1]
	}
	return sel
}
