package figures

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/trace"
)

func TestFig2ReproducesPaperTable(t *testing.T) {
	out := Fig2()
	// The published Figure 2 values must appear verbatim.
	for _, want := range []string{"14 W", "358 W", "248 W", "500 W", "6692 W", "900 W", "3400 W", "34360 W", "6880 W"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2 missing %q:\n%s", want, out)
		}
	}
}

func TestFig3ContainsAllAppsAndFreqs(t *testing.T) {
	out := Fig3()
	for _, app := range []string{"linpack", "STREAM", "IMB", "GROMACS"} {
		if !strings.Contains(out, app) {
			t.Errorf("Fig3 missing app %s", app)
		}
	}
	for _, f := range []string{"1.2 GHz", "2.7 GHz"} {
		if !strings.Contains(out, f) {
			t.Errorf("Fig3 missing frequency %s", f)
		}
	}
}

func TestFig4ReproducesPaperTable(t *testing.T) {
	out := Fig4()
	rows := []string{
		"Switch-off       14 W",
		"Idle             117 W",
		"DVFS 1.2 GHz     193 W",
		"DVFS 1.4 GHz     213 W",
		"DVFS 1.6 GHz     234 W",
		"DVFS 1.8 GHz     248 W",
		"DVFS 2 GHz       269 W",
		"DVFS 2.2 GHz     289 W",
		"DVFS 2.4 GHz     317 W",
		"DVFS 2.7 GHz     358 W",
	}
	for _, want := range rows {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4 missing row %q:\n%s", want, out)
		}
	}
}

func TestFig5VerdictsAllShutdown(t *testing.T) {
	out := Fig5()
	if strings.Count(out, "Switch-off") != 8 {
		t.Errorf("Fig5 should mark all 8 benchmarks switch-off:\n%s", out)
	}
	for _, frag := range []string{"linpack", "2.14", "-0.028", "GROMACS", "1.16", "-0.423"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig5 missing %q", frag)
		}
	}
}

func smallRun(t *testing.T, policy core.Policy, frac float64) replay.Result {
	t.Helper()
	r := replay.Run(replay.Scenario{
		Name:     "test/" + policy.String(),
		Workload: trace.Config{Kind: trace.MedianJob, Seed: 3, DurationSec: 3600},
		Policy:   policy, CapFraction: frac, ScaleRacks: 1,
		CapStart: 1200, CapDuration: 900,
	})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	return r
}

func TestTimeSeriesRenders(t *testing.T) {
	r := smallRun(t, core.PolicyShut, 0.6)
	out := TimeSeries(r, 60, 10)
	for _, frag := range []string{"cores by CPU frequency", "cluster power draw", "powercap", "2.7 GHz"} {
		if !strings.Contains(out, frag) {
			t.Errorf("TimeSeries missing %q:\n%s", frag, out)
		}
	}
	if !strings.Contains(out, "x=switched-off") {
		t.Errorf("TimeSeries missing the switched-off band legend")
	}
	empty := TimeSeries(replay.Result{}, 60, 10)
	if !strings.Contains(empty, "no samples") {
		t.Errorf("empty result rendered %q", empty)
	}
}

func TestFig8AndSummaryTable(t *testing.T) {
	results := []replay.Result{
		smallRun(t, core.PolicyNone, 0),
		smallRun(t, core.PolicyShut, 0.6),
	}
	out := Fig8(results)
	for _, frag := range []string{"Energy (normalized)", "Jobs launched", "Work", "100%/None", "60%/SHUT", "workload medianjob"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig8 missing %q", frag)
		}
	}
	tbl := SummaryTable(results)
	if !strings.Contains(tbl, "scenario") || !strings.Contains(tbl, "test/NONE") {
		t.Errorf("SummaryTable malformed:\n%s", tbl)
	}
	withErr := append(results, replay.Result{
		Scenario: replay.Scenario{Name: "boom"},
		Err:      errFake,
	})
	if !strings.Contains(SummaryTable(withErr), "ERROR") {
		t.Error("SummaryTable hides errors")
	}
}

type fakeErr struct{}

func (fakeErr) Error() string { return "fake" }

var errFake = fakeErr{}
