// Command tracegen synthesizes Curie-like workload intervals in the
// Standard Workload Format and summarizes their statistics, or
// summarizes an existing SWF trace.
//
// Usage:
//
//	tracegen -kind medianjob -seed 1001 [-cores 80640] [-load 2.0] \
//	         [-o trace.swf]
//	tracegen -summarize trace.swf
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/job"
	"repro/internal/trace"
)

func main() {
	var (
		kind    = flag.String("kind", "medianjob", "interval kind: medianjob|smalljob|bigjob|24h")
		seed    = flag.Int64("seed", 1001, "generator seed")
		cores   = flag.Int("cores", 80640, "machine core count")
		load    = flag.Float64("load", 2.0, "submitted work / machine capacity")
		out     = flag.String("o", "", "output file (default stdout)")
		summary = flag.String("summarize", "", "summarize an existing SWF file instead of generating")
	)
	flag.Parse()

	if *summary != "" {
		summarize(*summary)
		return
	}

	k, err := trace.ParseKind(*kind)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := trace.Config{Kind: k, Seed: *seed, Cores: *cores, LoadFactor: *load}
	jobs, err := trace.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	comment := fmt.Sprintf("synthetic Curie-like %s interval, seed %d, %d cores, load %.2f",
		k, *seed, *cores, *load)
	if err := trace.WriteSWF(w, jobs, comment); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printStats(os.Stderr, jobs, int64(*cores)*3600)
}

func summarize(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	jobs, err := trace.ReadSWF(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printStats(os.Stdout, jobs, 80640*3600)
}

func printStats(w *os.File, jobs []*job.Job, hugeCoreSec int64) {
	s := trace.Summarize(jobs, hugeCoreSec)
	fmt.Fprintf(w, "jobs: %d (distinct users %d, backlog at t=0: %d)\n",
		s.Jobs, s.DistinctUsers, s.BacklogAtuZero)
	fmt.Fprintf(w, "total work: %d core-seconds, widest job %d cores\n", s.TotalCoreSec, s.MaxCores)
	fmt.Fprintf(w, "small&short fraction: %.1f%%   huge fraction: %.2f%%\n",
		100*s.SmallShort, 100*s.Huge)
	fmt.Fprintf(w, "walltime overestimation: median %.0fx, mean %.0fx\n",
		s.MedianOverEst, s.MeanOverEst)
	fmt.Fprintf(w, "submission horizon: %d s\n", s.HorizonSec)
}
