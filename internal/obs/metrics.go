// Package obs is the daemon's observability core: a dependency-free
// metrics registry (atomic counters, gauges and fixed-bucket
// histograms with Prometheus text exposition), a leveled key=value
// logger, and request-ID tracing helpers shared by the service and
// gateway HTTP layers.
//
// The package is deliberately free of third-party imports: the
// simulation engine's hot path must stay allocation-free and
// fingerprint-identical, so instrumentation is plain integer
// increments sampled out-of-band (see ARCHITECTURE.md "Observability
// layer"), and the exposition side is a few hundred lines of stdlib.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bounds in seconds —
// 1ms to 10s, the span an HTTP request or a scheduling wait lives in.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters never go down).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (negative to decrement).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one. Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets, plus a
// running sum — the Prometheus histogram model. Observe is lock-free.
type Histogram struct {
	uppers  []float64 // ascending upper bounds, +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending at %v", buckets[i]))
		}
	}
	h := &Histogram{uppers: buckets}
	h.counts = make([]atomic.Uint64, len(buckets)+1) // last = +Inf
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.uppers, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// family is one registered metric family: a name, its help/type
// metadata, and its children (one for the plain form, one per label
// combination for Vec forms).
type family struct {
	name    string
	help    string
	typ     string // counter|gauge|histogram
	labels  []string
	buckets []float64
	// fn, when set, supplies the single sample at exposition time
	// (GaugeFunc/CounterFunc).
	fn func() float64

	mu       sync.Mutex
	children map[string]*child
	order    []string
}

type child struct {
	labelStr string // rendered `k1="v1",k2="v2"`, "" for the plain form
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
}

func (f *family) child(lvs []string) *child {
	if len(lvs) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labels), len(lvs)))
	}
	key := strings.Join(lvs, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var sb strings.Builder
	for i, l := range f.labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(lvs[i]))
		sb.WriteByte('"')
	}
	c := &child{labelStr: sb.String()}
	switch f.typ {
	case "counter":
		c.counter = &Counter{}
	case "gauge":
		c.gauge = &Gauge{}
	case "histogram":
		c.hist = newHistogram(f.buckets)
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values (created on
// first use).
func (v *CounterVec) With(lvs ...string) *Counter { return v.fam.child(lvs).counter }

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(lvs ...string) *Gauge { return v.fam.child(lvs).gauge }

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(lvs ...string) *Histogram { return v.fam.child(lvs).hist }

// Registry holds named metric families and writes them in Prometheus
// text exposition format. Each server owns its own registry — there is
// no process-global state, so tests and embedded servers never
// interfere.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) register(name, help, typ string, labels []string, buckets []float64, fn func() float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if typ == "counter" && !strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obs: counter %q must end in _total", name))
	}
	if typ != "counter" && typ != "histogram" && strings.HasSuffix(name, "_total") {
		panic(fmt.Sprintf("obs: %s %q must not end in _total", typ, name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: labels, buckets: buckets, fn: fn,
		children: map[string]*child{},
	}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// Counter registers (or returns) a plain counter. Name must end in
// _total.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, "counter", nil, nil, nil).child(nil).counter
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, "counter", labels, nil, nil)}
}

// Gauge registers (or returns) a plain gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, "gauge", nil, nil, nil).child(nil).gauge
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, "gauge", labels, nil, nil)}
}

// GaugeFunc registers a gauge whose value is read from fn at
// exposition time — the idiom for snapshot counters an existing
// subsystem already maintains.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", nil, nil, fn)
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time. The value must be monotone; name must end in
// _total.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", nil, nil, fn)
}

// Histogram registers a plain histogram. A nil buckets slice picks
// DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, "histogram", nil, buckets, nil).child(nil).hist
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, "histogram", labels, buckets, nil)}
}

// WritePrometheus writes every family in registration order in the
// text exposition format (v0.0.4): # HELP and # TYPE per family,
// histogram children as cumulative _bucket{le=...} plus _sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		children := make([]*child, len(f.order))
		for i, k := range f.order {
			children[i] = f.children[k]
		}
		f.mu.Unlock()
		if f.fn == nil && len(children) == 0 {
			// A labeled family nothing has touched yet: emit nothing (a
			// HELP/TYPE pair with no samples is a lint violation).
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		if f.fn != nil {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn())); err != nil {
				return err
			}
			continue
		}
		for _, c := range children {
			if err := writeChild(w, f, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, f *family, c *child) error {
	switch f.typ {
	case "counter":
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, braced(c.labelStr), c.counter.Value())
		return err
	case "gauge":
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, braced(c.labelStr), formatFloat(c.gauge.Value()))
		return err
	case "histogram":
		h := c.hist
		cum := uint64(0)
		for i, upper := range h.uppers {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bracedLE(c.labelStr, formatFloat(upper)), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.uppers)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bracedLE(c.labelStr, "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced(c.labelStr), formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(c.labelStr), h.Count())
		return err
	}
	return nil
}

func braced(labelStr string) string {
	if labelStr == "" {
		return ""
	}
	return "{" + labelStr + "}"
}

func bracedLE(labelStr, le string) string {
	if labelStr == "" {
		return `{le="` + le + `"}`
	}
	return "{" + labelStr + `,le="` + le + `"}`
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
