// Package model implements the energy and power analysis of Section III of
// the paper: given a cluster of N identical nodes, per-node draws at
// nominal frequency (Pmax), at the minimum DVFS frequency (Pmin) and
// switched off (Poff), a walltime degradation degMin at the minimum
// frequency, and a power cap P, it determines how many nodes to switch off
// (Noff) and how many to slow down (Ndvfs) so the computable work
//
//	W = T * ((N - Noff - Ndvfs)/1 + Ndvfs/degMin)        (C1)
//
// is maximized subject to
//
//	Ndvfs + Noff <= N                                     (C2)
//	Noff*Poff + Ndvfs*Pmin + (N-Noff-Ndvfs)*Pmax <= P     (C3)
//
// with T normalized to 1. The paper distinguishes four cases; Solve
// reproduces them, reports the closed-form Noff/Ndvfs of Section III-A, and
// selects the winning mechanism both by direct work comparison and by the
// published rho criterion (Figure 5; see dvfs.Rho for the discrepancy
// between the two).
package model

import (
	"fmt"
	"math"

	"repro/internal/dvfs"
)

// Params are the cluster-and-application constants of the model.
type Params struct {
	N      int     // number of nodes
	PMax   float64 // per-node draw, busy at nominal frequency (W)
	PMin   float64 // per-node draw, busy at minimum DVFS frequency (W)
	POff   float64 // per-node draw, switched off (W)
	DegMin float64 // walltime degradation factor at the minimum frequency
}

// CurieParams returns the Figure 4/5 constants with the common degradation.
func CurieParams(n int) Params {
	return Params{N: n, PMax: 358, PMin: 193, POff: 14, DegMin: dvfs.DegMinCommon}
}

// Validate checks physical sanity: 0 <= POff < PMin < PMax, DegMin >= 1,
// N > 0.
func (p Params) Validate() error {
	switch {
	case p.N <= 0:
		return fmt.Errorf("model: N = %d, want > 0", p.N)
	case p.POff < 0:
		return fmt.Errorf("model: POff = %v, want >= 0", p.POff)
	case p.PMin <= p.POff:
		return fmt.Errorf("model: PMin %v <= POff %v", p.PMin, p.POff)
	case p.PMax <= p.PMin:
		return fmt.Errorf("model: PMax %v <= PMin %v", p.PMax, p.PMin)
	case p.DegMin < 1:
		return fmt.Errorf("model: DegMin = %v, want >= 1", p.DegMin)
	}
	return nil
}

// MaxPower returns N*PMax, the reference for normalized caps.
func (p Params) MaxPower() float64 { return float64(p.N) * p.PMax }

// LambdaMin returns PMin/PMax, the lowest normalized cap reachable with
// DVFS alone (Section III-A: "the powercap can not be less than Pmin/Pmax
// if DVFS is the only mechanism used").
func (p Params) LambdaMin() float64 { return p.PMin / p.PMax }

// Rho evaluates the published Figure 5 criterion for these parameters.
func (p Params) Rho() float64 {
	return dvfs.Rho(p.DegMin, p.PMax, p.PMin, p.POff)
}

// Case classifies which of the four Section III-A regimes a solve landed
// in.
type Case int

const (
	// CaseUncapped means the cap exceeds N*PMax: no action needed.
	CaseUncapped Case = iota
	// CaseShutdownOnly means switching nodes off alone is optimal.
	CaseShutdownOnly
	// CaseDVFSOnly means slowing nodes down alone is optimal.
	CaseDVFSOnly
	// CaseEither means both pure mechanisms extract the same work.
	CaseEither
	// CaseBoth means the cap is below N*PMin so the two mechanisms must
	// be combined (every node is either off or at minimum frequency).
	CaseBoth
)

// String implements fmt.Stringer.
func (c Case) String() string {
	switch c {
	case CaseUncapped:
		return "uncapped"
	case CaseShutdownOnly:
		return "shutdown-only"
	case CaseDVFSOnly:
		return "dvfs-only"
	case CaseEither:
		return "either"
	case CaseBoth:
		return "both-mechanisms"
	default:
		return fmt.Sprintf("Case(%d)", int(c))
	}
}

// Plan is the model's output: a continuous relaxation (the paper's plane
// geometry) plus integral node counts that respect the cap after rounding.
type Plan struct {
	Case  Case
	NOff  float64 // optimal switched-off node count (continuous)
	NDvfs float64 // optimal minimum-frequency node count (continuous)
	Work  float64 // W of C1 with T=1, in node-units of work

	IntNOff  int // ceil-rounded counts that still satisfy the cap
	IntNDvfs int

	Rho           float64        // published Figure 5 criterion
	PaperChoice   dvfs.Mechanism // mechanism per the paper's rho rule
	DerivedChoice dvfs.Mechanism // mechanism by direct work comparison
	WorkOff       float64        // W when only switching off (NaN if infeasible)
	WorkDvfs      float64        // W when only using DVFS (NaN if infeasible)
}

// ErrInfeasible is returned when the cap is below N*POff: even the fully
// switched-off cluster draws more than the budget.
var ErrInfeasible = fmt.Errorf("model: powercap below the fully switched-off cluster draw")

// Solve maximizes W for the given cap in watts.
func Solve(p Params, capW float64) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	n := float64(p.N)
	if capW < n*p.POff {
		return Plan{}, fmt.Errorf("%w: cap %.1f W < N*POff %.1f W", ErrInfeasible, capW, n*p.POff)
	}

	pl := Plan{Rho: p.Rho()}
	pl.PaperChoice = paperChoice(pl.Rho)

	if capW >= n*p.PMax {
		pl.Case = CaseUncapped
		pl.Work = n
		pl.WorkOff, pl.WorkDvfs = n, n
		pl.DerivedChoice = dvfs.MechanismEither
		return pl, nil
	}

	deficit := n*p.PMax - capW

	// Pure shutdown: Noff = (P - N*Pmax)/(Poff - Pmax), always feasible
	// here because capW >= N*POff.
	nOffOnly := deficit / (p.PMax - p.POff)
	pl.WorkOff = n - nOffOnly

	// Pure DVFS: Ndvfs = (P - N*Pmax)/(Pmin - Pmax), feasible only while
	// capW >= N*PMin.
	dvfsFeasible := capW >= n*p.PMin
	if dvfsFeasible {
		nDvfsOnly := deficit / (p.PMax - p.PMin)
		pl.WorkDvfs = n - nDvfsOnly*(1-1/p.DegMin)
	} else {
		pl.WorkDvfs = math.NaN()
	}

	if !dvfsFeasible {
		// Case 4: combine. Ndvfs = (P - N*Poff)/(Pmin - Poff),
		// Noff = N - Ndvfs; every powered node runs at fmin.
		pl.Case = CaseBoth
		pl.NDvfs = (capW - n*p.POff) / (p.PMin - p.POff)
		pl.NOff = n - pl.NDvfs
		pl.Work = pl.NDvfs / p.DegMin
		pl.DerivedChoice = dvfs.MechanismEither // both are mandatory
		pl.round(p, capW)
		return pl, nil
	}

	const eps = 1e-9
	switch {
	case pl.WorkOff > pl.WorkDvfs+eps:
		pl.Case = CaseShutdownOnly
		pl.NOff = nOffOnly
		pl.Work = pl.WorkOff
		pl.DerivedChoice = dvfs.MechanismShutdown
	case pl.WorkDvfs > pl.WorkOff+eps:
		pl.Case = CaseDVFSOnly
		pl.NDvfs = deficit / (p.PMax - p.PMin)
		pl.Work = pl.WorkDvfs
		pl.DerivedChoice = dvfs.MechanismDVFS
	default:
		pl.Case = CaseEither
		pl.NOff = nOffOnly
		pl.Work = pl.WorkOff
		pl.DerivedChoice = dvfs.MechanismEither
	}
	pl.round(p, capW)
	return pl, nil
}

// SolveFraction maximizes W for a cap expressed as a fraction lambda of
// N*PMax (the paper's normalized powercap).
func SolveFraction(p Params, lambda float64) (Plan, error) {
	return Solve(p, lambda*p.MaxPower())
}

// round derives integral node counts that still respect the cap: the
// continuous counts are rounded up (switching off or slowing down slightly
// more nodes than the relaxation requires never violates C3).
func (pl *Plan) round(p Params, capW float64) {
	pl.IntNOff = clampInt(int(math.Ceil(pl.NOff-1e-9)), 0, p.N)
	pl.IntNDvfs = clampInt(int(math.Ceil(pl.NDvfs-1e-9)), 0, p.N-pl.IntNOff)
	// Rounding NDvfs up can strand the pair just above the cap when both
	// mechanisms are active; push nodes from dvfs to off until it fits.
	for pl.power(p) > capW+1e-6 && pl.IntNOff < p.N {
		pl.IntNOff++
		if pl.IntNDvfs > p.N-pl.IntNOff {
			pl.IntNDvfs = p.N - pl.IntNOff
		}
	}
}

// power returns the draw of the integral plan with all remaining nodes
// busy at nominal frequency.
func (pl *Plan) power(p Params) float64 {
	rest := p.N - pl.IntNOff - pl.IntNDvfs
	return float64(pl.IntNOff)*p.POff + float64(pl.IntNDvfs)*p.PMin + float64(rest)*p.PMax
}

// PowerOfCounts returns the cluster draw when nOff nodes are off, nDvfs
// run busy at the minimum frequency and the rest run busy at nominal
// frequency — the left side of C3.
func PowerOfCounts(p Params, nOff, nDvfs int) float64 {
	rest := p.N - nOff - nDvfs
	return float64(nOff)*p.POff + float64(nDvfs)*p.PMin + float64(rest)*p.PMax
}

// WorkOfCounts returns W of C1 for integral counts.
func WorkOfCounts(p Params, nOff, nDvfs int) float64 {
	rest := p.N - nOff - nDvfs
	return float64(rest) + float64(nDvfs)/p.DegMin
}

func paperChoice(rho float64) dvfs.Mechanism {
	// Algorithm 1: "if rho <= 0 then switch-off"; DVFS otherwise.
	if rho <= 0 {
		return dvfs.MechanismShutdown
	}
	return dvfs.MechanismDVFS
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
