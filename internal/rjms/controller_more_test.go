package rjms

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/sched"
)

func TestMultifactorFairsharePrioritizesLightUser(t *testing.T) {
	cfg := tinyConfig(core.PolicyNone)
	cfg.Priority = sched.Multifactor
	c := mustNew(t, cfg)
	// "heavy" burns the machine first; then one job from each user is
	// queued while the machine is full. When it frees, the light user's
	// job should start first despite the later submit time.
	jobs := []*job.Job{
		{ID: 1, User: "heavy", Cores: 48, Submit: 0, Runtime: 1000, Walltime: 1200},
		{ID: 2, User: "heavy", Cores: 48, Submit: 10, Runtime: 100, Walltime: 200},
		{ID: 3, User: "light", Cores: 48, Submit: 20, Runtime: 100, Walltime: 200},
	}
	if err := c.LoadWorkload(jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(1050); err != nil {
		t.Fatal(err)
	}
	if c.RunningCount() != 1 {
		t.Fatalf("running = %d, want 1", c.RunningCount())
	}
	for _, j := range c.running {
		if j.User != "light" {
			t.Errorf("running job belongs to %q, want the light user first", j.User)
		}
	}
}

func TestNodeSharingAcrossJobs(t *testing.T) {
	c := mustNew(t, tinyConfig(core.PolicyNone))
	// Two 2-core jobs share one 4-core node.
	jobs := []*job.Job{
		{ID: 1, User: "a", Cores: 2, Submit: 0, Runtime: 500, Walltime: 600},
		{ID: 2, User: "b", Cores: 2, Submit: 1, Runtime: 100, Walltime: 200},
	}
	if err := c.LoadWorkload(jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(50); err != nil {
		t.Fatal(err)
	}
	if got := c.Cluster().Count(cluster.StateBusy); got != 1 {
		t.Fatalf("busy nodes = %d, want 1 (packing)", got)
	}
	// Job 2 ends at ~101; node must stay busy with job 1's cores.
	if _, err := c.Run(200); err != nil {
		t.Fatal(err)
	}
	info, err := c.Cluster().Info(0)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != cluster.StateBusy || info.UsedCores != 2 {
		t.Errorf("node 0 after partial vacate: %+v", info)
	}
	if _, err := c.Run(600); err != nil {
		t.Fatal(err)
	}
	if got := c.Cluster().Count(cluster.StateBusy); got != 0 {
		t.Errorf("busy nodes at end = %d", got)
	}
}

func TestBackfillDepthLimitsThroughput(t *testing.T) {
	run := func(depth int) int {
		cfg := tinyConfig(core.PolicyNone)
		cfg.BackfillDepth = depth
		c := mustNew(t, cfg)
		var jobs []*job.Job
		// A wide job leaves a 4-core hole; the next wide job blocks as
		// the EASY head; many tiny jobs could backfill into the hole.
		jobs = append(jobs, &job.Job{ID: 1, User: "w", Cores: 44, Submit: 0, Runtime: 400, Walltime: 500})
		jobs = append(jobs, &job.Job{ID: 2, User: "w", Cores: 48, Submit: 1, Runtime: 400, Walltime: 500})
		for i := 0; i < 40; i++ {
			jobs = append(jobs, &job.Job{
				ID: job.ID(i + 3), User: "s", Cores: 1,
				Submit: 2, Runtime: 50, Walltime: 60,
			})
		}
		if err := c.LoadWorkload(jobs); err != nil {
			t.Fatal(err)
		}
		sum, err := c.Run(300)
		if err != nil {
			t.Fatal(err)
		}
		return sum.JobsLaunched
	}
	deep := run(100)
	shallow := run(3)
	if shallow >= deep {
		t.Errorf("depth 3 launched %d, depth 100 launched %d — depth has no effect", shallow, deep)
	}
}

func TestRunRejectsBadHorizon(t *testing.T) {
	c := mustNew(t, tinyConfig(core.PolicyNone))
	if _, err := c.Run(0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := c.Run(-5); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestReservePowerCapValidation(t *testing.T) {
	c := mustNew(t, tinyConfig(core.PolicyShut))
	if _, err := c.ReservePowerCap(100, 100, power.CapWatts(1000)); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := c.ReservePowerCap(0, 100, power.NoCap); err == nil {
		t.Error("unset budget accepted")
	}
}

func TestSecondReservationAvoidsReservedNodes(t *testing.T) {
	c := mustNew(t, tinyConfig(core.PolicyShut))
	maxP := c.Cluster().MaxPower()
	p1, err := c.ReservePowerCap(100, 200, power.CapFraction(0.7, maxP))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.ReservePowerCap(300, 400, power.CapFraction(0.7, maxP))
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.OffNodes) == 0 || len(p2.OffNodes) == 0 {
		t.Fatal("plans empty")
	}
	seen := map[cluster.NodeID]bool{}
	for _, id := range p1.OffNodes {
		seen[id] = true
	}
	for _, id := range p2.OffNodes {
		if seen[id] {
			t.Fatalf("node %d reserved by both plans", id)
		}
	}
}

func TestLaunchedByFreqAccounting(t *testing.T) {
	c := mustNew(t, tinyConfig(core.PolicyDvfs))
	budget := power.CapWatts(c.Cluster().IdlePower() + 2*(193-117))
	if _, err := c.ReservePowerCap(0, 100000, budget); err != nil {
		t.Fatal(err)
	}
	jobs := []*job.Job{
		{ID: 1, User: "a", Cores: 8, Submit: 0, Runtime: 100, Walltime: 150},
	}
	if err := c.LoadWorkload(jobs); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if sum.LaunchedByFreq[dvfs.F1200] != 1 {
		t.Errorf("launch histogram = %v, want one 1.2 GHz launch", sum.LaunchedByFreq)
	}
	if sum.JobsCompleted != 1 {
		t.Errorf("completed = %d", sum.JobsCompleted)
	}
}

func TestCompactPlacementReducesChassisSpan(t *testing.T) {
	span := func(compact bool) int {
		cfg := Config{
			Topology:         cluster.Topology{Racks: 1, ChassisPerRack: 4, NodesPerChassis: 4, CoresPerNode: 4},
			Policy:           core.PolicyNone,
			CompactPlacement: compact,
		}
		c := mustNew(t, cfg)
		// Fragment: a 2-core job per chassis, then a 12-core job.
		var jobs []*job.Job
		for i := 0; i < 4; i++ {
			first, _ := c.Cluster().Topology().ChassisNodes(i)
			_ = first
			jobs = append(jobs, &job.Job{
				ID: job.ID(i + 1), User: "f", Cores: 2,
				Submit: 0, Runtime: 10000, Walltime: 20000,
			})
		}
		jobs = append(jobs, &job.Job{
			ID: 99, User: "w", Cores: 12,
			Submit: 10, Runtime: 10000, Walltime: 20000,
		})
		if err := c.LoadWorkload(jobs); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(100); err != nil {
			t.Fatal(err)
		}
		wide := c.running[99]
		if wide == nil || wide.State != job.StateRunning {
			t.Fatal("wide job not running")
		}
		return sched.ChassisSpan(c.Cluster().Topology(), wide.Allocs)
	}
	// Note: the fragmenting jobs land per first-fit/compact order too;
	// the wide job's span must not be worse under compact placement.
	if c, f := span(true), span(false); c > f {
		t.Errorf("compact span %d > first-fit span %d", c, f)
	}
}
