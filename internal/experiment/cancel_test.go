package experiment

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/trace"
)

// cancelGrid is a sweep big enough that a quick cancellation lands
// mid-run at any worker count.
func cancelGrid() []replay.Scenario {
	return Grid{
		Workloads: []trace.Config{
			{Kind: trace.SmallJob, Seed: 1002},
			{Kind: trace.MedianJob, Seed: 1001},
		},
		CapFractions: []float64{0, 0.6, 0.4},
		Policies:     []core.Policy{core.PolicyShut, core.PolicyDvfs, core.PolicyMix},
		Base:         replay.Scenario{ScaleRacks: 2},
	}.Scenarios()
}

// TestRunContextCancelDrainsWorkers pins the cancellation contract:
// RunContext returns promptly with ctx.Err(), every unrun row carries
// its scenario plus the context error, finished rows are intact, and no
// pool goroutine outlives the call (the -race run of this test is the
// leak check the issue asks for).
func TestRunContextCancelDrainsWorkers(t *testing.T) {
	scens := cancelGrid()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var r Runner
	r.Workers = 4
	r.OnResult = func(done, total int, res Result) {
		if done == 1 {
			cancel() // cancel as soon as the first cell lands
		}
	}
	tab, err := r.RunContext(ctx, "cancelled", scens)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if len(tab.Rows) != len(scens) {
		t.Fatalf("partial table has %d rows, want %d", len(tab.Rows), len(scens))
	}
	finished, skipped := 0, 0
	for i, row := range tab.Rows {
		if row.Scenario.Name == "" {
			t.Errorf("row %d lost its scenario", i)
		}
		if errors.Is(row.Err, context.Canceled) {
			skipped++
			continue
		}
		if row.Err != nil {
			t.Errorf("row %d: unexpected error %v", i, row.Err)
		}
		finished++
	}
	if finished == 0 {
		t.Error("cancellation lost every finished cell; want the pre-cancel results kept")
	}
	if skipped == 0 {
		t.Error("cancellation skipped no cell; cancel landed too late to test anything")
	}

	// Workers must be gone: poll briefly, then compare goroutine counts.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after drain", before, after)
	}
}

// TestRunContextPreCancelled: a context cancelled before the call runs
// nothing, returns immediately, and still yields a fully-labelled table.
func TestRunContextPreCancelled(t *testing.T) {
	scens := cancelGrid()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	tab, err := Runner{Workers: 4}.RunContext(ctx, "dead", scens)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("pre-cancelled run took %v; want a prompt return", elapsed)
	}
	for i, row := range tab.Rows {
		if !errors.Is(row.Err, context.Canceled) {
			t.Errorf("row %d error = %v, want context.Canceled", i, row.Err)
		}
	}
}

// TestFederationRunContextCancel exercises the same contract on the
// federated pool.
func TestFederationRunContextCancel(t *testing.T) {
	grid := FederationGrid{
		MemberCounts: []int{2, 3},
		CapFractions: []float64{0.5, 0.6},
		Divisions:    []replay.Division{replay.DivideProRata, replay.DivideDemand},
		ScaleRacks:   1,
	}
	scens := grid.Scenarios()
	ctx, cancel := context.WithCancel(context.Background())
	var r FederationRunner
	r.Workers = 2
	r.OnResult = func(done, total int, res FederationResult) {
		if done == 1 {
			cancel()
		}
	}
	tab, err := r.RunContext(ctx, "fed-cancelled", scens)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	for i, row := range tab.Rows {
		if row.Scenario.Name == "" {
			t.Errorf("row %d lost its scenario", i)
		}
	}
}

// TestRunAllContextCancel pins the replay-level pool's drain behavior.
func TestRunAllContextCancel(t *testing.T) {
	scens := cancelGrid()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := replay.RunAllContext(ctx, scens, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("result %d error = %v, want context.Canceled", i, r.Err)
		}
		if r.Scenario.Name == "" {
			t.Errorf("result %d lost its scenario", i)
		}
	}
}

// TestRunContextUncancelledMatchesRun: threading a live context through
// changes nothing — same fingerprint as the legacy entry point.
func TestRunContextUncancelledMatchesRun(t *testing.T) {
	scens := cancelGrid()[:4]
	a := Runner{Workers: 2}.Run("x", scens)
	b, err := Runner{Workers: 2}.RunContext(context.Background(), "x", scens)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("RunContext with a live context drifted from Run")
	}
}
