package core_test

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/power"
)

// Algorithm 1 on a two-rack Curie slice: a 60% powercap under the SHUT
// policy plans a grouped switch-off sized to the cap, harvesting the
// chassis bonuses of Figure 2.
func ExamplePlanOffline() {
	topo := cluster.Topology{Racks: 2, ChassisPerRack: 5, NodesPerChassis: 18, CoresPerNode: 16}
	c, err := cluster.New(topo, power.CurieProfile(), cluster.CurieOverhead())
	if err != nil {
		panic(err)
	}
	pm := core.CuriePolicyModel(core.PolicyShut)
	budget := power.CapFraction(0.6, c.MaxPower())

	plan := core.PlanOffline(c, pm, budget, true, nil)
	fmt.Printf("mechanism: %v\n", plan.Mechanism)
	fmt.Printf("reserve %d nodes (need %v, planned %v)\n",
		len(plan.OffNodes), plan.NeededSaving, plan.PlannedSaving)
	// Output:
	// mechanism: Switch-off
	// reserve 75 nodes (need 27.49 kW, planned 27.80 kW)
}

// Algorithm 2: the online part lowers a job's frequency until the
// cluster draw fits the budget.
func ExampleSelectFreqUnderCap() {
	c, err := cluster.New(
		cluster.Topology{Racks: 1, ChassisPerRack: 1, NodesPerChassis: 3, CoresPerNode: 16},
		power.CurieProfile(), cluster.CurieOverhead())
	if err != nil {
		panic(err)
	}
	pm := core.CuriePolicyModel(core.PolicyDvfs)
	// Headroom for one node at 2.0 GHz (idle 117 W -> busy 269 W).
	budget := power.CapWatts(c.Power() + (269 - 117))

	f, ok := core.SelectFreqUnderCap(c, pm, []cluster.NodeID{0},
		func(fr dvfs.Freq) power.Cap { return budget })
	fmt.Println(f, ok)
	// Output: 2 GHz true
}
