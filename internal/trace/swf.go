// Package trace reads and writes workloads in the Standard Workload Format
// (SWF) of the Parallel Workloads Archive — the format the Curie trace the
// paper replays is published in — and synthesizes Curie-like workload
// intervals with the statistical features Section VII-B reports: an
// overloaded submission queue, a large majority of small short jobs, a tiny
// fraction of huge jobs, and walltime requests that overestimate runtimes
// by four orders of magnitude.
//
// The package has two layers. The streaming layer — Scanner, Writer, and
// the Stream transforms (Window, ScaleTime, ScaleCores, Filter, Limit) —
// reads, reshapes and writes arbitrarily large archive traces in bounded
// memory; SWFSource bundles a file plus a transform chain into a workload
// source replay scenarios can run directly. The slice layer (ReadSWF,
// WriteSWF, Generate, Summarize) is the materialized convenience API built
// on top of it.
package trace

import (
	"io"
	"sort"

	"repro/internal/job"
)

// swf field indices (0-based) of the 18-column Standard Workload Format.
const (
	swfJobID = iota
	swfSubmit
	swfWait
	swfRunTime
	swfAllocProcs
	swfAvgCPU
	swfUsedMem
	swfReqProcs
	swfReqTime
	swfReqMem
	swfStatus
	swfUserID
	swfGroupID
	swfExecutable
	swfQueue
	swfPartition
	swfPreceding
	swfThinkTime
	swfFields
)

// ReadSWF parses an SWF stream into jobs. Header/comment lines start with
// ';'. Jobs with unknown (-1) runtimes or processor counts are skipped, as
// the paper's replay does. The requested time falls back to the runtime
// when absent. Submit times are kept as-is (seconds). The result is
// sorted by (submit, id); for traces too large to materialize use a
// Scanner instead.
func ReadSWF(r io.Reader) ([]*job.Job, error) {
	out, err := Collect(NewScanner(r))
	if err != nil {
		return nil, err
	}
	SortBySubmit(out)
	return out, nil
}

// SortBySubmit orders jobs by (submit time, job ID) — the canonical
// replay order the generator and ReadSWF guarantee.
func SortBySubmit(jobs []*job.Job) {
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].Submit != jobs[j].Submit {
			return jobs[i].Submit < jobs[j].Submit
		}
		return jobs[i].ID < jobs[j].ID
	})
}

// WriteSWF serializes jobs as SWF with a minimal header. Unknown fields
// are written as -1 per the SWF convention.
func WriteSWF(w io.Writer, jobs []*job.Job, comment string) error {
	sw := NewWriter(w, comment)
	for _, j := range jobs {
		if err := sw.Write(j); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// Stats summarizes a workload the way Section VII-B characterizes the
// Curie trace.
type Stats struct {
	Jobs            int
	TotalCoreSec    int64   // sum cores*runtime
	SmallShort      float64 // fraction with <512 cores and <2 min runtime
	Huge            float64 // fraction with cores*runtime > 80640*3600
	MedianOverEst   float64 // median walltime/runtime (runtime > 0 only)
	MeanOverEst     float64 // mean walltime/runtime
	MaxCores        int
	HorizonSec      int64 // last submit time
	BacklogAtuZero  int   // jobs submitted at t=0 (initial queue)
	DistinctUsers   int
	ZeroRuntimeJobs int
}

// Summarizer accumulates workload statistics one job at a time, so the
// streaming path can characterize a trace while scanning it. It retains
// one float64 per finite-runtime job (for the exact median
// overestimation) and the distinct-user set — not the jobs themselves.
type Summarizer struct {
	hugeCoreSec int64
	s           Stats
	users       map[string]bool
	ratios      []float64
	sumRatio    float64
	smallShort  int
	huge        int
}

// NewSummarizer returns a Summarizer with the given "huge job"
// core-seconds threshold (the paper: more than the whole cluster for one
// hour, i.e. 80640*3600 for Curie).
func NewSummarizer(hugeCoreSec int64) *Summarizer {
	return &Summarizer{hugeCoreSec: hugeCoreSec, users: map[string]bool{}}
}

// Add accumulates one job.
func (a *Summarizer) Add(j *job.Job) {
	a.s.Jobs++
	cs := int64(j.Cores) * j.Runtime
	a.s.TotalCoreSec += cs
	if j.Cores < 512 && j.Runtime < 120 {
		a.smallShort++
	}
	if cs > a.hugeCoreSec {
		a.huge++
	}
	if j.Runtime > 0 {
		r := float64(j.Walltime) / float64(j.Runtime)
		a.ratios = append(a.ratios, r)
		a.sumRatio += r
	} else {
		a.s.ZeroRuntimeJobs++
	}
	if j.Cores > a.s.MaxCores {
		a.s.MaxCores = j.Cores
	}
	if j.Submit > a.s.HorizonSec {
		a.s.HorizonSec = j.Submit
	}
	if j.Submit == 0 {
		a.s.BacklogAtuZero++
	}
	a.users[j.User] = true
}

// Stats finalizes and returns the accumulated statistics. The Summarizer
// stays usable; further Adds refine the same summary.
func (a *Summarizer) Stats() Stats {
	s := a.s
	if s.Jobs > 0 {
		s.SmallShort = float64(a.smallShort) / float64(s.Jobs)
		s.Huge = float64(a.huge) / float64(s.Jobs)
	}
	if len(a.ratios) > 0 {
		ratios := append([]float64(nil), a.ratios...)
		sort.Float64s(ratios)
		s.MedianOverEst = ratios[len(ratios)/2]
		s.MeanOverEst = a.sumRatio / float64(len(ratios))
	}
	s.DistinctUsers = len(a.users)
	return s
}

// Summarize computes workload statistics over a materialized job list.
func Summarize(jobs []*job.Job, hugeCoreSec int64) Stats {
	a := NewSummarizer(hugeCoreSec)
	for _, j := range jobs {
		a.Add(j)
	}
	return a.Stats()
}

// SummarizeStream drains a stream into a summary without materializing
// the jobs.
func SummarizeStream(src Stream, hugeCoreSec int64) (Stats, error) {
	a := NewSummarizer(hugeCoreSec)
	for {
		j, err := src.Next()
		if err != nil {
			return Stats{}, err
		}
		if j == nil {
			return a.Stats(), nil
		}
		a.Add(j)
	}
}
