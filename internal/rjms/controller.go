package rjms

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/powerlog"
	"repro/internal/reservation"
	"repro/internal/sched"
	"repro/internal/simengine"
)

// Controller is the central RJMS daemon. It is single-goroutine by
// construction (all activity happens inside the event engine); run
// independent controllers in parallel for experiment sweeps.
type Controller struct {
	cfg  Config
	pm   core.PolicyModel
	clus *cluster.Cluster
	eng  *simengine.Engine
	book *reservation.Book
	rec  *metrics.Recorder

	pending   []*job.Job
	running   map[job.ID]*job.Job
	nodeJobs  [][]nodeJobEntry    // per-node running jobs and their frequencies (SoA, swap-removal)
	runStates map[job.ID]runState // progress accounting for dynamic DVFS (value map, no per-job alloc)

	fairshare *sched.Fairshare
	weights   sched.MultifactorWeights

	// offPending holds reserved nodes that were busy when their
	// switch-off window opened; they power down as their jobs drain.
	offPending map[cluster.NodeID]bool

	// failed holds nodes taken out by an injected failure (FailNode);
	// they stay off — windowClose must not power them back on — until
	// RepairNode returns them. requeueSeq numbers the fresh IDs of
	// requeued victim clones deterministically.
	failed     map[cluster.NodeID]bool
	requeueSeq int64

	horizon    int64
	sampling   bool
	passQueued bool

	// loadErr records a streaming-workload failure (parse error,
	// invalid or out-of-order job) raised inside an event handler; Run
	// surfaces it.
	loadErr error

	// Cached projection inputs for optimalFutureFreq, plus the keyed
	// budget→frequency memo built on them. Both are invalidated
	// together whenever the reservation flags (the survivor set)
	// change.
	survivorFresh    bool
	survivorCount    int
	survivorOverhead power.Watts
	futureFreqMemo   power.ProjectionMemo

	// Scheduling-pass memo: when the previous pass committed nothing,
	// the frontier it saw is recorded and later passes are skipped
	// outright while nothing that could change the outcome has moved —
	// no job started or finished, no cap boundary or reservation phase
	// crossed, and every submission since needs at least as many cores
	// as the smallest request the memoized pass refused (the same
	// within-pass pruning rule, carried across passes). Restricted to
	// FCFS ordering (time-independent) and exact power bookkeeping.
	passMemoValid   bool
	passMemoNow     int64
	passMemoMinFail int

	// Lifetime scheduling counters: full probe cycles run vs skipped by
	// the pass memo. Plain increments on the single-threaded simulation
	// path; sampled out-of-band via SchedCounters.
	statPasses        uint64
	statPassesSkipped uint64

	// estimator is non-nil in measurement-based capping mode: active-cap
	// checks use its guarded estimate instead of the exact bookkeeping.
	estimator *powerlog.Estimator

	// observer, when set, runs after every recorded metrics sample (the
	// invariant checker's hook; see SetObserver).
	observer func(now int64)

	// Scratch buffers reused across scheduling passes. A pass probes an
	// allocation for up to BackfillDepth jobs at every event; without
	// reuse each probe allocates candidate slices that die immediately
	// (see the sweep benchmark for the aggregate cost).
	viewBuf  []sched.RunningJob // running view, sorted by expected end
	allocBuf []job.Alloc        // allocation probe candidates
	nodeBuf  []cluster.NodeID   // node list of the current probe
	orderer  sched.Orderer      // priority-ordered pending queue

	// Pre-bound probe closures with their parameter fields. plan() runs
	// up to BackfillDepth times per event; literal closures there would
	// escape to the heap on every probe (they dominated the sweep's
	// allocation profile), so the closures are built once in New and
	// read the plan* fields the current probe sets.
	planNow    int64
	planEndMax int64
	planJob    *job.Job
	planCapNow power.Cap
	planNodes  []cluster.NodeID
	eligibleFn func(cluster.NodeID) bool
	admitFn    func(dvfs.Freq) bool
	reservedFn func(cluster.NodeID) bool
	passFn     simengine.Handler
}

// New builds a controller at virtual time 0.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pm, err := core.NewPolicyModel(cfg.Policy, cfg.Profile, cfg.DegMinFull, cfg.DegMinMix, cfg.MixFloor)
	if err != nil {
		return nil, err
	}
	clus, err := cluster.New(cfg.Topology, cfg.Profile, *cfg.Overhead)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:        cfg,
		pm:         pm,
		clus:       clus,
		eng:        simengine.New(0),
		book:       reservation.NewBook(),
		running:    map[job.ID]*job.Job{},
		runStates:  map[job.ID]runState{},
		nodeJobs:   make([][]nodeJobEntry, cfg.Topology.Nodes()),
		fairshare:  sched.NewFairshare(cfg.FairshareHalfLife),
		weights:    sched.DefaultMultifactor(cfg.Topology.Cores()),
		offPending: map[cluster.NodeID]bool{},
		failed:     map[cluster.NodeID]bool{},
	}
	if cfg.MeasuredPowerNoise > 0 {
		sensor, err := powerlog.NewSensor(cfg.MeasuredPowerSeed, cfg.MeasuredPowerNoise, 0)
		if err != nil {
			return nil, err
		}
		est, err := powerlog.NewEstimator(sensor, cfg.MeasuredPowerWindow, cfg.MeasuredPowerGuard)
		if err != nil {
			return nil, err
		}
		c.estimator = est
		est.Sample(clus.Power())
	}
	c.rec = metrics.NewRecorder(0, clus.Power(), 0)
	c.eligibleFn = func(id cluster.NodeID) bool {
		return !c.book.NodeBlocked(id, c.planNow, c.planEndMax, c.cfg.ReservationLead)
	}
	c.reservedFn = clus.Reserved
	c.admitFn = func(f dvfs.Freq) bool {
		now, j := c.planNow, c.planJob
		end := now + j.ScaledWalltime(c.pm.Deg, f)
		// Active cap: checked against the observed draw (Algorithm 2;
		// exact bookkeeping, or the guarded measurement estimate).
		if c.planCapNow.IsSet() && !c.planCapNow.Allows(c.observedPower()+c.clus.OccupyDelta(c.planNodes, f)) {
			return false
		}
		// A future window the job's walltime crosses caps the launch
		// frequency at the window's "optimal CPU frequency" (Section
		// IV-B): the highest rung at which every surviving node could
		// run busy within the budget. Jobs still launch — the paper's
		// Figure 6 shows the system "preparing itself" by running at
		// 2.0 GHz ahead of the reservation, not by idling.
		if fut := c.book.MinFutureCapOver(now, end, c.cfg.CapPlanningHorizon); fut.IsSet() {
			if f > c.optimalFutureFreq(fut) {
				return false
			}
		}
		return true
	}
	c.passFn = func(t int64) {
		c.passQueued = false
		c.pass(t)
	}
	return c, nil
}

// observedPower is the draw the active-cap checks compare against the
// budget: the exact bookkeeping by default, or the guarded measurement
// estimate in measured mode.
func (c *Controller) observedPower() power.Watts {
	if c.estimator != nil {
		return c.estimator.Estimate()
	}
	return c.clus.Power()
}

// Cluster exposes the machine state (read-only use expected).
func (c *Controller) Cluster() *cluster.Cluster { return c.clus }

// PolicyModel exposes the active policy binding.
func (c *Controller) PolicyModel() core.PolicyModel { return c.pm }

// Now returns the virtual clock.
func (c *Controller) Now() int64 { return c.eng.Now() }

// PendingCount returns the queued-job count.
func (c *Controller) PendingCount() int { return len(c.pending) }

// RunningCount returns the dispatched-job count.
func (c *Controller) RunningCount() int { return len(c.running) }

// LoadWorkload schedules the submission events of a workload. Jobs wider
// than the machine are rejected.
func (c *Controller) LoadWorkload(jobs []*job.Job) error {
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if j.Cores > c.clus.Cores() {
			return fmt.Errorf("rjms: job %d wants %d cores, machine has %d", j.ID, j.Cores, c.clus.Cores())
		}
		jj := j.Clone()
		if _, err := c.eng.At(jj.Submit, func(now int64) { c.submit(jj, now) }); err != nil {
			return err
		}
	}
	return nil
}

// JobSource is the pull contract of streaming workload ingestion: Next
// returns the next job in nondecreasing submit order, or (nil, nil) at
// end of stream. trace.Stream (e.g. a Scanner over an SWF archive trace,
// wrapped in window/rescale transforms) satisfies it.
type JobSource interface {
	Next() (*job.Job, error)
}

// LoadWorkloadStream schedules submissions lazily from src: only the
// next future submission event exists at any moment, and each fired
// submission pulls the records sharing its timestamp plus the one after.
// Memory stays bounded by the jobs pending or running in the simulated
// machine, not by the trace length — the streaming counterpart of
// LoadWorkload, with identical event ordering (all equal-time
// submissions enter the queue before the scheduling pass they trigger).
// The source must yield jobs in nondecreasing submit order and hands
// over ownership of each job. Errors found mid-replay stop ingestion and
// surface from Run.
func (c *Controller) LoadWorkloadStream(src JobSource) error {
	j, err := c.pullStream(src)
	if err != nil || j == nil {
		return err
	}
	return c.scheduleStream(src, j)
}

// pullStream fetches and validates the next streamed job.
func (c *Controller) pullStream(src JobSource) (*job.Job, error) {
	j, err := src.Next()
	if err != nil || j == nil {
		return nil, err
	}
	if err := j.Validate(); err != nil {
		return nil, err
	}
	if j.Cores > c.clus.Cores() {
		return nil, fmt.Errorf("rjms: job %d wants %d cores, machine has %d", j.ID, j.Cores, c.clus.Cores())
	}
	return j, nil
}

// scheduleStream schedules j's submission; the event submits every
// following job with the same timestamp too, then schedules the next
// strictly-later one.
func (c *Controller) scheduleStream(src JobSource, j *job.Job) error {
	_, err := c.eng.At(j.Submit, func(now int64) {
		c.submit(j, now)
		for c.loadErr == nil {
			next, err := c.pullStream(src)
			if err != nil {
				c.loadErr = err
				return
			}
			if next == nil {
				return
			}
			if next.Submit < now {
				c.loadErr = fmt.Errorf("rjms: stream out of order: job %d submits at %d, clock at %d",
					next.ID, next.Submit, now)
				return
			}
			if next.Submit == now {
				c.submit(next, now)
				continue
			}
			if err := c.scheduleStream(src, next); err != nil {
				c.loadErr = err
			}
			return
		}
	})
	return err
}

// ReservePowerCap registers a powercap reservation over [start, end)
// (reservation.Horizon for open-ended) with the given budget, runs the
// offline planning of Algorithm 1, and schedules the window's switch-off
// and wake-up actions. It returns the offline plan for inspection.
func (c *Controller) ReservePowerCap(start, end int64, budget power.Cap) (core.OfflinePlan, error) {
	_, plan, err := c.ReservePowerCapID(start, end, budget)
	return plan, err
}

// ReservePowerCapID is ReservePowerCap returning also the reservation's
// ID, the handle AdjustPowerCap needs to re-budget the window later —
// the federation broker reserves one open-ended cap per member cluster
// and moves watts between them at redistribution boundaries.
func (c *Controller) ReservePowerCapID(start, end int64, budget power.Cap) (int, core.OfflinePlan, error) {
	resID, err := c.book.AddPowerCap(start, end, budget)
	if err != nil {
		return 0, core.OfflinePlan{}, err
	}
	c.invalidatePassMemo()
	eligible := func(id cluster.NodeID) bool { return !c.clus.Reserved(id) }
	plan := core.PlanOffline(c.clus, c.pm, budget, !c.cfg.ScatteredShutdown, eligible)
	if c.cfg.Policy == core.PolicyIdle {
		// IDLE keeps nodes powered; no switch-off reservation.
		plan.OffNodes = nil
	}
	if len(plan.OffNodes) > 0 {
		if _, err := c.book.AddSwitchOff(start, end, plan.OffNodes); err != nil {
			return resID, plan, err
		}
		for _, id := range plan.OffNodes {
			if err := c.clus.SetReserved(id, true); err != nil {
				return resID, plan, err
			}
		}
		c.survivorFresh = false
		c.futureFreqMemo.Invalidate()
		offNodes := append([]cluster.NodeID(nil), plan.OffNodes...)
		if _, err := c.eng.At(start, func(now int64) { c.windowOpen(offNodes, now) }); err != nil {
			return resID, plan, err
		}
		if end != reservation.Horizon {
			if _, err := c.eng.At(end, func(now int64) { c.windowClose(offNodes, now) }); err != nil {
				return resID, plan, err
			}
		}
	}
	// Wake the scheduler at the cap boundaries even without shutdowns:
	// budgets change what may launch.
	if _, err := c.eng.At(start, func(now int64) { c.capBoundary(now) }); err != nil {
		return resID, plan, err
	}
	if end != reservation.Horizon {
		if _, err := c.eng.At(end, func(now int64) { c.capEnded(now) }); err != nil {
			return resID, plan, err
		}
	}
	return resID, plan, nil
}

// Run drives the simulation until the given horizon and returns the
// run's summary. Pending events beyond the horizon stay unfired.
// Equivalent to Start + one Advance to the horizon + Finish; callers
// that interleave external control between epochs (the federation
// broker) use those pieces directly.
func (c *Controller) Run(until int64) (metrics.Summary, error) {
	if err := c.Start(until); err != nil {
		return metrics.Summary{}, err
	}
	if err := c.Advance(until); err != nil {
		return metrics.Summary{}, err
	}
	return c.Finish(), nil
}

// Start fixes the run's horizon and arms the metrics sampling chain.
// It fires no events; follow with Advance calls up to the horizon.
func (c *Controller) Start(until int64) error {
	if until <= 0 {
		return fmt.Errorf("rjms: non-positive horizon %d", until)
	}
	c.horizon = until
	if c.cfg.SampleInterval > 0 && !c.sampling {
		c.sampling = true
		// The sample count is known up front — pre-size the series so
		// long replays don't regrow the buffer dozens of times.
		c.rec.Reserve(int(until/c.cfg.SampleInterval) + 2)
		if _, err := c.eng.At(0, c.sampleTick); err != nil {
			return err
		}
	}
	return nil
}

// Advance drives the simulation to virtual time until (at most the
// Start horizon), firing every event at or before it. Repeated calls
// with nondecreasing times run the same event sequence as one Run to
// the horizon — the lockstep primitive of the federation broker, which
// inspects and re-budgets the controller between Advance calls.
func (c *Controller) Advance(until int64) error {
	if until > c.horizon {
		return fmt.Errorf("rjms: advance to %d beyond horizon %d", until, c.horizon)
	}
	if until < c.eng.Now() {
		return fmt.Errorf("rjms: advance to %d behind clock %d", until, c.eng.Now())
	}
	if err := c.eng.Run(until); err != nil {
		return err
	}
	return c.loadErr
}

// Finish closes the run at the Start horizon and returns its summary.
func (c *Controller) Finish() metrics.Summary {
	return c.rec.Finalize(0, c.horizon, c.clus.MaxPower(), c.clus.Cores())
}

// AdjustPowerCap re-budgets an existing powercap reservation in place.
// It is the federation hook: called between Advance calls (never from
// inside an event handler), it changes the cap value at the current
// virtual time and immediately runs the cap-boundary reactions — the
// dynamic-DVFS throttle, the kill-to-fit extreme action when enabled,
// and a scheduling pass — exactly as if a window with the new budget
// had just opened. The offline switch-off plan of the original
// reservation is kept: redistribution moves launch headroom, it does
// not re-plan shutdowns mid-window.
func (c *Controller) AdjustPowerCap(id int, budget power.Cap) error {
	if err := c.book.UpdateCap(id, budget); err != nil {
		return err
	}
	c.capBoundary(c.eng.Now())
	return nil
}

// requeueIDBase offsets the IDs of requeued failure victims into a
// range no workload generator occupies, so a clone can never collide
// with a yet-unsubmitted trace job.
const requeueIDBase = int64(1) << 40

// FailNode injects a node failure at the current virtual time: every
// job with an allocation on the node is killed and requeued as a fresh
// pending clone (new deterministic ID, Submit = now), and the node
// powers off and stays off — excluded from scheduling and from
// reservation window reopenings — until RepairNode. Like
// AdjustPowerCap it is a between-Advance hook (the twin's mutation
// queue), never called from inside an event handler.
func (c *Controller) FailNode(id cluster.NodeID) error {
	if int(id) < 0 || int(id) >= len(c.nodeJobs) {
		return fmt.Errorf("rjms: fail node %d: no such node", id)
	}
	if c.failed[id] {
		return fmt.Errorf("rjms: fail node %d: already failed", id)
	}
	now := c.eng.Now()
	// Snapshot the victims before finish() rewrites nodeJobs; sort by
	// job ID so requeue IDs assign reproducibly regardless of the
	// swap-removal order the list happens to be in.
	victims := make([]*job.Job, 0, len(c.nodeJobs[id]))
	for _, e := range c.nodeJobs[id] {
		if j, ok := c.running[e.id]; ok {
			victims = append(victims, j)
		}
	}
	sort.Slice(victims, func(i, k int) bool { return victims[i].ID < victims[k].ID })
	for _, j := range victims {
		c.finish(j, now, true)
	}
	for _, j := range victims {
		clone := j.Clone()
		c.requeueSeq++
		clone.ID = job.ID(requeueIDBase + c.requeueSeq)
		clone.Submit = now
		clone.StartTime = 0
		clone.EndTime = 0
		clone.Freq = 0
		clone.Allocs = nil
		c.submit(clone, now)
	}
	if err := c.clus.PowerOff(id); err != nil {
		return fmt.Errorf("rjms: fail node %d: %w", id, err)
	}
	c.failed[id] = true
	c.invalidatePassMemo()
	c.survivorFresh = false
	c.futureFreqMemo.Invalidate()
	c.noteState(now)
	c.requestPass(now)
	return nil
}

// RepairNode returns a failed node to service: it powers back on
// (unless a reservation window currently holds it off) and rejoins the
// schedulable pool at the current virtual time.
func (c *Controller) RepairNode(id cluster.NodeID) error {
	if int(id) < 0 || int(id) >= len(c.nodeJobs) {
		return fmt.Errorf("rjms: repair node %d: no such node", id)
	}
	if !c.failed[id] {
		return fmt.Errorf("rjms: repair node %d: not failed", id)
	}
	now := c.eng.Now()
	delete(c.failed, id)
	if !c.clus.Reserved(id) {
		_ = c.clus.PowerOn(id)
	}
	c.invalidatePassMemo()
	c.survivorFresh = false
	c.futureFreqMemo.Invalidate()
	c.noteState(now)
	c.requestPass(now)
	return nil
}

// NodeFailed reports whether the node is currently failure-injected —
// the invariant checker's hook for the kill path.
func (c *Controller) NodeFailed(id cluster.NodeID) bool { return c.failed[id] }

// FailedNodes returns the failure-injected nodes, sorted.
func (c *Controller) FailedNodes() []cluster.NodeID {
	out := make([]cluster.NodeID, 0, len(c.failed))
	for id := range c.failed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
	return out
}

// Samples returns the recorded time series.
func (c *Controller) Samples() []metrics.Sample { return c.rec.Samples() }

// SchedCounters is a snapshot of the controller's lifetime hot-path
// counters: engine events fired, scheduling passes run vs skipped by
// the pass memo, and projection-memo hits/misses. The counters are
// plain uint64 increments on the deterministic simulation path — this
// accessor exists so observers can sample them out-of-band (e.g. from
// a metrics observer callback) and publish deltas without touching the
// hot path.
type SchedCounters struct {
	EventsFired        uint64
	Passes             uint64
	PassesSkipped      uint64
	ProjectionMemoHits uint64
	ProjectionMemoMiss uint64
}

// SchedCounters returns the current counter snapshot. Call only from
// the simulation goroutine (e.g. inside an observer), like the other
// read accessors.
func (c *Controller) SchedCounters() SchedCounters {
	hits, misses := c.futureFreqMemo.Stats()
	return SchedCounters{
		EventsFired:        c.eng.Fired(),
		Passes:             c.statPasses,
		PassesSkipped:      c.statPassesSkipped,
		ProjectionMemoHits: hits,
		ProjectionMemoMiss: misses,
	}
}

// ActiveCap returns the tightest powercap budget active at the current
// virtual time (power.NoCap when none).
func (c *Controller) ActiveCap() power.Cap { return c.book.CapAt(c.eng.Now()) }

// PendingCores sums the core requests of the queued jobs — the demand
// signal the federation broker's demand-driven division reads.
func (c *Controller) PendingCores() int {
	n := 0
	for _, j := range c.pending {
		n += j.Cores
	}
	return n
}

// SnapshotJobs returns the jobs the controller currently tracks:
// first the pending queue in its (deterministic) queue order, then the
// running set sorted by ID. The order is reproducible across replays
// but is not globally ID-sorted — sorting the whole backlog at every
// probe would dominate sampled-checker runs. The pointers alias live
// scheduling state: callers must treat them as read-only (the
// invariant checker's contract).
func (c *Controller) SnapshotJobs() []*job.Job {
	out := make([]*job.Job, 0, len(c.pending)+len(c.running))
	out = append(out, c.pending...)
	run := make([]*job.Job, 0, len(c.running))
	for _, j := range c.running {
		run = append(run, j)
	}
	sort.Slice(run, func(i, k int) bool { return run[i].ID < run[k].ID })
	return append(out, run...)
}

// SetObserver registers fn to run after every metrics sample is
// recorded — the attach point of the test-only invariant checker. A nil
// fn clears it (including anything added with AddObserver).
func (c *Controller) SetObserver(fn func(now int64)) { c.observer = fn }

// AddObserver chains fn behind the current observer instead of
// replacing it, so independent probes compose: the service's telemetry
// collector attaches this way and an invariant checker (or another
// collector) can still ride along. Observers run in attach order.
func (c *Controller) AddObserver(fn func(now int64)) {
	if fn == nil {
		return
	}
	if prev := c.observer; prev != nil {
		c.observer = func(now int64) {
			prev(now)
			fn(now)
		}
		return
	}
	c.observer = fn
}

// --- event handlers -------------------------------------------------

// requestPass coalesces scheduling passes: all triggers at one timestamp
// (e.g. a backlog of hundreds of submissions at t=0) share a single pass,
// enqueued behind them in the same event tick.
func (c *Controller) requestPass(now int64) {
	if c.passQueued {
		return
	}
	c.passQueued = true
	if _, err := c.eng.At(now, c.passFn); err != nil {
		panic(fmt.Sprintf("rjms: pass scheduling: %v", err))
	}
}

// invalidatePassMemo drops the committed-nothing pass memo; called by
// every event that moves the scheduling frontier.
func (c *Controller) invalidatePassMemo() { c.passMemoValid = false }

func (c *Controller) submit(j *job.Job, now int64) {
	j.State = job.StatePending
	c.pending = append(c.pending, j)
	// A submission needing fewer cores than the smallest request the
	// memoized pass refused could launch — anything wider is pruned by
	// the same rule the pass itself applies, so the memo holds.
	if c.passMemoValid && j.Cores < c.passMemoMinFail {
		c.invalidatePassMemo()
	}
	c.rec.NoteSubmit()
	c.requestPass(now)
}

func (c *Controller) capBoundary(now int64) {
	c.invalidatePassMemo()
	if c.cfg.DynamicDVFS && c.cfg.Policy.CanScale() {
		c.throttleRunning(now)
	}
	if c.cfg.KillOnOverrun {
		c.killToFit(now)
	}
	c.requestPass(now)
}

// capEnded fires when a powercap window closes.
func (c *Controller) capEnded(now int64) {
	c.invalidatePassMemo()
	if c.cfg.DynamicDVFS && c.cfg.Policy.CanScale() {
		c.boostRunning(now)
	}
	c.requestPass(now)
}

// windowOpen powers down the reserved group; busy nodes drain first.
func (c *Controller) windowOpen(nodes []cluster.NodeID, now int64) {
	c.invalidatePassMemo()
	for _, id := range nodes {
		switch c.clus.State(id) {
		case cluster.StateIdle:
			if err := c.clus.PowerOff(id); err == nil {
				continue
			}
		case cluster.StateBusy:
			c.offPending[id] = true
		}
	}
	c.noteState(now)
	c.requestPass(now)
}

// windowClose powers the group back on and releases the reservation
// flags.
func (c *Controller) windowClose(nodes []cluster.NodeID, now int64) {
	c.invalidatePassMemo()
	for _, id := range nodes {
		delete(c.offPending, id)
		// A failed node stays off past its window; RepairNode brings
		// it back.
		if !c.failed[id] {
			_ = c.clus.PowerOn(id)
		}
		_ = c.clus.SetReserved(id, false)
	}
	c.survivorFresh = false
	c.futureFreqMemo.Invalidate()
	c.noteState(now)
	c.requestPass(now)
}

func (c *Controller) finish(j *job.Job, now int64, killed bool) {
	if j.State != job.StateRunning {
		return
	}
	c.invalidatePassMemo()
	c.viewRemove(c.viewKey(j))
	for _, a := range j.Allocs {
		nj := c.nodeJobs[a.Node]
		rem := dvfs.Freq(0)
		for k := 0; k < len(nj); {
			if nj[k].id == j.ID {
				last := len(nj) - 1
				nj[k] = nj[last]
				nj = nj[:last]
				continue
			}
			if nj[k].f > rem {
				rem = nj[k].f
			}
			k++
		}
		c.nodeJobs[a.Node] = nj
		if err := c.clus.Vacate(a.Node, a.Cores, rem); err != nil {
			panic(fmt.Sprintf("rjms: vacate inconsistency for job %d node %d: %v", j.ID, a.Node, err))
		}
		// Drain-to-off: reserved node freed inside its window.
		if c.offPending[a.Node] && c.clus.State(a.Node) == cluster.StateIdle {
			if err := c.clus.PowerOff(a.Node); err == nil {
				delete(c.offPending, a.Node)
			}
		}
	}
	if killed {
		j.State = job.StateKilled
	} else {
		j.State = job.StateCompleted
	}
	j.EndTime = now
	if rs, ok := c.runStates[j.ID]; ok {
		c.eng.Cancel(rs.endEv)
		delete(c.runStates, j.ID)
	}
	delete(c.running, j.ID)
	c.fairshare.Charge(j.User, float64(j.CoreSeconds(now)), now)
	c.rec.NoteCompletion(killed)
	if !killed {
		c.rec.NoteJobDone(j.StartTime-j.Submit, now-j.StartTime)
	}
	c.noteState(now)
	c.requestPass(now)
}

func (c *Controller) sampleTick(now int64) {
	c.addSample(now)
	next := now + c.cfg.SampleInterval
	if next <= c.horizon {
		if _, err := c.eng.At(next, c.sampleTick); err != nil {
			panic(fmt.Sprintf("rjms: sample scheduling: %v", err))
		}
	}
}

func (c *Controller) addSample(now int64) {
	capW := power.Watts(0)
	if b := c.book.CapAt(now); b.IsSet() {
		capW = b.Watts()
	}
	c.rec.AddSample(metrics.Sample{
		T:           now,
		CoresByFreq: c.clus.CoresByFreq(),
		BusyNodes:   c.clus.Count(cluster.StateBusy),
		IdleNodes:   c.clus.Count(cluster.StateIdle),
		OffNodes:    c.clus.Count(cluster.StateOff),
		OffCores:    c.clus.Count(cluster.StateOff) * c.cfg.Topology.CoresPerNode,
		Power:       c.clus.Power(),
		Cap:         capW,
		Bonus:       c.clus.BonusWatts(),
	})
	if c.observer != nil {
		c.observer(now)
	}
}

// noteState pushes the power and busy-core integrals after any mutation
// and, in measured mode, feeds the sensor.
func (c *Controller) noteState(now int64) {
	if c.estimator != nil {
		c.estimator.Sample(c.clus.Power())
	}
	if err := c.rec.NotePower(now, c.clus.Power()); err != nil {
		panic(fmt.Sprintf("rjms: power meter: %v", err))
	}
	if err := c.rec.NoteCores(now, c.clus.BusyCores()); err != nil {
		panic(fmt.Sprintf("rjms: work meter: %v", err))
	}
}

// --- scheduling -----------------------------------------------------

// planned is a successful allocation probe. allocs is owned by the
// planned value (copied out of the probe scratch buffer: commit stores
// it in the job's state, which outlives the next probe).
type planned struct {
	allocs []job.Alloc
	freq   dvfs.Freq
	wall   int64
}

// freeCoresUpperBound is the quick-reject bound: cores not allocated and
// not on switched-off nodes.
func (c *Controller) freeCoresUpperBound() int {
	off := c.clus.Count(cluster.StateOff) * c.cfg.Topology.CoresPerNode
	return c.clus.Cores() - c.clus.BusyCores() - off
}

// plan finds an allocation and frequency for a job, or nil. The node
// eligibility uses the job's longest possible span (ladder minimum) so a
// chosen allocation stays valid for any frequency the online algorithm
// settles on. allocFail reports that the failure happened while finding
// cores (as opposed to the power check) — the scheduling pass uses it to
// prune same-or-larger requests within the same pass.
func (c *Controller) plan(j *job.Job, now int64) (pl *planned, allocFail bool) {
	if j.Cores > c.freeCoresUpperBound() {
		return nil, true
	}
	wallMax := j.ScaledWalltime(c.pm.Deg, c.pm.Ladder.Min())
	c.planNow, c.planEndMax = now, now+wallMax
	var (
		allocs []job.Alloc
		found  bool
	)
	if c.clus.ReservedCount() > 0 {
		// Pack nodes earmarked for switch-off first: work there drains
		// away before the window, saving the survivors' budget.
		allocs, found = sched.AllocateInto(c.allocBuf, c.clus, j.Cores, c.eligibleFn, c.reservedFn)
		c.allocBuf = allocs[:0] // keep the grown probe buffer
	} else if c.cfg.CompactPlacement {
		allocs = sched.AllocateCompact(c.clus, j.Cores, c.eligibleFn)
		found = allocs != nil
	} else {
		allocs, found = sched.AllocateInto(c.allocBuf, c.clus, j.Cores, c.eligibleFn, nil)
		c.allocBuf = allocs[:0]
	}
	if !found {
		return nil, true
	}
	nodes := c.nodeBuf[:0]
	for _, a := range allocs {
		nodes = append(nodes, a.Node)
	}
	c.nodeBuf = nodes[:0] // same backing array; only alive within this call
	c.planJob = j
	c.planNodes = nodes
	c.planCapNow = c.book.CapAt(now)
	f, ok := core.SelectFreq(c.pm, c.admitFn)
	if !ok {
		return nil, false
	}
	owned := append([]job.Alloc(nil), allocs...)
	return &planned{allocs: owned, freq: f, wall: j.ScaledWalltime(c.pm.Deg, f)}, false
}

func (c *Controller) commit(j *job.Job, pl *planned, now int64) {
	c.invalidatePassMemo()
	for _, a := range pl.allocs {
		if err := c.clus.Occupy(a.Node, a.Cores, pl.freq); err != nil {
			panic(fmt.Sprintf("rjms: occupy inconsistency for job %d: %v", j.ID, err))
		}
		c.nodeJobs[a.Node] = append(c.nodeJobs[a.Node], nodeJobEntry{id: j.ID, f: pl.freq})
	}
	j.State = job.StateRunning
	j.Freq = pl.freq
	j.StartTime = now
	j.Allocs = pl.allocs
	c.running[j.ID] = j
	c.viewInsert(c.viewKey(j))
	c.rec.NoteLaunch(pl.freq, now-j.Submit)

	runFor := j.ScaledRuntime(c.pm.Deg, pl.freq)
	ev, err := c.eng.At(now+runFor, func(t int64) { c.finish(j, t, false) })
	if err != nil {
		panic(fmt.Sprintf("rjms: end scheduling for job %d: %v", j.ID, err))
	}
	c.runStates[j.ID] = runState{endEv: ev, remainingNominal: float64(j.Runtime), freqSince: now}
	c.noteState(now)
}

// viewKey is a running job's entry in the backfill view: its core count
// and the time the scheduler must assume it ends (start + walltime
// scaled by the frequency it currently runs at).
func (c *Controller) viewKey(j *job.Job) sched.RunningJob {
	return sched.RunningJob{
		Cores:       j.Cores,
		ExpectedEnd: j.StartTime + j.ScaledWalltime(c.pm.Deg, j.Freq),
	}
}

func viewLess(a, b sched.RunningJob) bool {
	if a.ExpectedEnd != b.ExpectedEnd {
		return a.ExpectedEnd < b.ExpectedEnd
	}
	return a.Cores < b.Cores
}

// viewInsert adds one entry to the persistent (end, cores)-sorted
// running view at its binary-search position.
func (c *Controller) viewInsert(r sched.RunningJob) {
	v := c.viewBuf
	i := sort.Search(len(v), func(k int) bool { return viewLess(r, v[k]) })
	v = append(v, sched.RunningJob{})
	copy(v[i+1:], v[i:])
	v[i] = r
	c.viewBuf = v
}

// viewRemove deletes one entry equal to r from the sorted view. Equal
// (end, cores) keys are indistinguishable to every consumer
// (ShadowTime accumulates cores until the threshold, FreeCoresAt
// sums), so removing any of them keeps replays bit-identical.
func (c *Controller) viewRemove(r sched.RunningJob) {
	v := c.viewBuf
	i := sort.Search(len(v), func(k int) bool { return !viewLess(v[k], r) })
	if i >= len(v) || v[i] != r {
		panic(fmt.Sprintf("rjms: running view out of sync: missing entry %+v", r))
	}
	copy(v[i:], v[i+1:])
	c.viewBuf = v[:len(v)-1]
}

// runningView returns the backfill view of the running set, sorted by
// ascending (expected end, cores) — the order ShadowTimeSorted
// consumes. The view is maintained incrementally on job start, finish
// and re-clock instead of being rebuilt and re-sorted every pass.
func (c *Controller) runningView() []sched.RunningJob {
	return c.viewBuf
}

// pass runs one EASY-backfill scheduling cycle. Within one pass,
// failures are memoized by core count: once an allocation (or the power
// check) has refused a request of c cores, requests of >= c cores are
// pruned — the cluster state only shrinks as the pass commits jobs, so
// the pruning is sound for allocations and a SLURM-like heuristic for
// the power check.
func (c *Controller) pass(now int64) {
	if len(c.pending) == 0 {
		return
	}
	if c.passMemoValid {
		// The previous pass committed nothing and nothing that could
		// change its outcome has happened since: same cluster and cap
		// state (any commit/finish/re-clock/boundary invalidates), every
		// newer submission at least as wide as the smallest refused
		// request (pruned by the pass's own rule), FCFS order
		// time-independent, and every switch-off reservation in the same
		// blocking phase — so a re-run would provably refuse everything
		// again. Skip it.
		if c.book.OffsPhaseStable(c.passMemoNow, now, c.cfg.ReservationLead) {
			c.statPassesSkipped++
			return
		}
		c.invalidatePassMemo()
	}
	c.statPasses++
	order := c.pending
	if c.cfg.Priority != sched.FCFS {
		order = c.orderer.Order(c.pending, c.cfg.Priority, c.weights, c.fairshare, now)
	}
	startedCount := 0

	shadowAt := int64(-1)
	shadowNeed := 0
	freeAtShadow := 0
	minAllocFail := math.MaxInt
	minPowerFail := math.MaxInt

	tryPlan := func(j *job.Job) (*planned, bool) {
		if j.Cores >= minAllocFail || j.Cores >= minPowerFail {
			return nil, j.Cores >= minAllocFail
		}
		pl, allocFail := c.plan(j, now)
		if pl == nil {
			if allocFail {
				minAllocFail = j.Cores
			} else {
				minPowerFail = j.Cores
			}
		}
		return pl, allocFail
	}

	considered := 0
	for _, j := range order {
		if considered >= c.cfg.BackfillDepth {
			break
		}
		considered++

		if shadowAt < 0 {
			if pl, _ := tryPlan(j); pl != nil {
				c.commit(j, pl, now)
				startedCount++
				continue
			}
			// Head blocked: set up the EASY reservation. The view is
			// already end-sorted, so no per-event re-sort happens in
			// the shadow computation.
			running := c.runningView()
			free := c.freeCoresUpperBound()
			if at, ok := sched.ShadowTimeSorted(running, free, j.Cores, now); ok {
				shadowAt = at
				shadowNeed = j.Cores
				freeAtShadow = sched.FreeCoresAt(running, free, at)
			} else {
				// Cannot fit even when everything drains (nodes off);
				// backfill the rest unconstrained.
				shadowAt = math.MaxInt64
			}
			continue
		}

		// Backfill candidate: must not delay the head reservation.
		pl, _ := tryPlan(j)
		if pl == nil {
			continue
		}
		if now+pl.wall > shadowAt && shadowAt != math.MaxInt64 {
			if freeAtShadow-j.Cores < shadowNeed {
				continue
			}
			freeAtShadow -= j.Cores
		}
		c.commit(j, pl, now)
		startedCount++
	}

	if startedCount > 0 {
		// commit flipped started jobs to StateRunning, so the pending
		// queue filters on state — no per-pass started set needed.
		kept := c.pending[:0]
		for _, j := range c.pending {
			if j.State == job.StatePending {
				kept = append(kept, j)
			}
		}
		c.pending = kept
		return
	}
	// Nothing launched: memoize the refusal so the next pass can skip
	// the whole probe cycle unless the frontier moves. Only sound when
	// the queue order cannot change with time (FCFS) and the power
	// checks use the exact bookkeeping (a measurement estimator's
	// guarded estimate drifts between samples).
	if c.cfg.Priority == sched.FCFS && c.estimator == nil {
		mf := minAllocFail
		if minPowerFail < mf {
			mf = minPowerFail
		}
		c.passMemoValid = true
		c.passMemoNow = now
		c.passMemoMinFail = mf
	}
}

// optimalFutureFreq returns the highest policy-ladder frequency at which
// all surviving (unreserved) nodes could run busy within the future
// budget, accounting for the shared equipment of the chassis and racks
// that keep at least one survivor. When even the ladder minimum exceeds
// the budget the minimum is returned: launches are then as conservative
// as the policy allows and the active-cap check takes over once the
// window opens.
func (c *Controller) optimalFutureFreq(budget power.Cap) dvfs.Freq {
	// The projection is a pure function of (budget, survivor set); a
	// pass probes it for every backfill candidate against the same few
	// reservation budgets, so the keyed memo answers all but the first.
	// Invalidated together with the survivor stats.
	w := budget.Watts()
	if f, ok := c.futureFreqMemo.Get(w); ok {
		return f
	}
	c.ensureSurvivorStats()
	prof := c.clus.Profile()
	out := c.pm.Ladder.Min()
	for i := len(c.pm.Ladder) - 1; i >= 0; i-- {
		f := c.pm.Ladder[i]
		projected := power.Watts(float64(c.survivorCount)*float64(prof.Busy(f))) + c.survivorOverhead
		if budget.Allows(projected) {
			out = f
			break
		}
	}
	c.futureFreqMemo.Put(w, out)
	return out
}

// ensureSurvivorStats caches the survivor count and the shared-equipment
// draw of groups containing at least one unreserved node; invalidated
// whenever reservation flags change.
func (c *Controller) ensureSurvivorStats() {
	if c.survivorFresh {
		return
	}
	topo := c.cfg.Topology
	ov := c.clus.Overhead()
	chassisHasSurvivor := make([]bool, topo.Chassis())
	rackHasSurvivor := make([]bool, topo.Racks)
	count := 0
	c.clus.ForEach(func(n cluster.NodeInfo) bool {
		if !n.Reserved {
			count++
			chassisHasSurvivor[topo.ChassisOf(n.ID)] = true
			rackHasSurvivor[topo.RackOf(n.ID)] = true
		}
		return true
	})
	overhead := 0.0
	for _, has := range chassisHasSurvivor {
		if has {
			overhead += ov.ChassisWatts
		}
	}
	for _, has := range rackHasSurvivor {
		if has {
			overhead += ov.RackWatts
		}
	}
	c.survivorCount = count
	c.survivorOverhead = power.Watts(overhead)
	c.survivorFresh = true
}

// killToFit implements the "extreme actions" option: terminate running
// jobs, newest first, until the draw respects the active cap.
func (c *Controller) killToFit(now int64) {
	budget := c.book.CapAt(now)
	if !budget.IsSet() || budget.Allows(c.observedPower()) {
		return
	}
	victims := make([]*job.Job, 0, len(c.running))
	for _, j := range c.running {
		victims = append(victims, j)
	}
	sort.Slice(victims, func(i, k int) bool {
		if victims[i].StartTime != victims[k].StartTime {
			return victims[i].StartTime > victims[k].StartTime
		}
		return victims[i].ID > victims[k].ID
	})
	for _, v := range victims {
		if budget.Allows(c.observedPower()) {
			return
		}
		c.finish(v, now, true)
	}
}
