// Package job defines the job records flowing through the RJMS: core
// counts, user runtime estimates (walltimes), the actual runtimes the
// replay engine uses in place of real executions (the paper's "sleep"
// jobs), and the DVFS frequency assigned at launch, which stretches the
// runtime by the degradation model of Section V.
package job

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dvfs"
)

// ID identifies a job within one workload.
type ID int64

// State is the lifecycle state of a job.
type State int

const (
	// StatePending means submitted and waiting in the queue.
	StatePending State = iota
	// StateRunning means dispatched on nodes.
	StateRunning
	// StateCompleted means finished normally.
	StateCompleted
	// StateKilled means terminated by the controller (e.g. the extreme
	// powercap action of Section IV-B).
	StateKilled
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StateKilled:
		return "killed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Alloc records cores taken on one node.
type Alloc struct {
	Node  cluster.NodeID
	Cores int
}

// Job is one workload entry. Times are virtual-clock seconds.
type Job struct {
	ID     ID
	User   string
	Cores  int   // requested (and allocated) core count
	Submit int64 // submission time

	// Runtime is the job's execution time at nominal frequency — what
	// the original trace observed. The replay runs a virtual "sleep" of
	// Runtime stretched by the degradation factor of the launch
	// frequency.
	Runtime int64

	// Walltime is the user's requested runtime (the estimate the
	// scheduler must trust for backfilling; on Curie it overestimates
	// Runtime by a median factor of about 12000). When a job launches
	// below nominal frequency the controller extends the walltime by
	// the same degradation factor (Section V).
	Walltime int64

	// Mutable scheduling state, owned by the controller.
	State     State
	Freq      dvfs.Freq // frequency assigned at launch (0 until then)
	StartTime int64     // launch time (meaningful once running)
	EndTime   int64     // completion/kill time (once terminated)
	Allocs    []Alloc   // node/core allocation while running
}

// Validate reports structural problems with a job record.
func (j *Job) Validate() error {
	switch {
	case j.Cores <= 0:
		return fmt.Errorf("job %d: cores = %d, want > 0", j.ID, j.Cores)
	case j.Submit < 0:
		return fmt.Errorf("job %d: negative submit time %d", j.ID, j.Submit)
	case j.Runtime < 0:
		return fmt.Errorf("job %d: negative runtime %d", j.ID, j.Runtime)
	case j.Walltime < j.Runtime:
		return fmt.Errorf("job %d: walltime %d below runtime %d", j.ID, j.Walltime, j.Runtime)
	}
	return nil
}

// ScaledRuntime returns the execution time at frequency f under the
// degradation model deg.
func (j *Job) ScaledRuntime(deg *dvfs.Degradation, f dvfs.Freq) int64 {
	return deg.ScaleDuration(j.Runtime, f)
}

// ScaledWalltime returns the requested time at frequency f under the
// degradation model deg ("the walltime of the job needs to be adapted
// respectively", Section V).
func (j *Job) ScaledWalltime(deg *dvfs.Degradation, f dvfs.Freq) int64 {
	return deg.ScaleDuration(j.Walltime, f)
}

// AllocatedCores sums the allocation.
func (j *Job) AllocatedCores() int {
	n := 0
	for _, a := range j.Allocs {
		n += a.Cores
	}
	return n
}

// CoreSeconds returns the work the job accumulated: allocated cores times
// wall-clock running time (the paper's "accumulated cpu time" of Figure 8).
// For running jobs pass the current time as now; for finished jobs now is
// ignored.
func (j *Job) CoreSeconds(now int64) int64 {
	switch j.State {
	case StateRunning:
		if now < j.StartTime {
			return 0
		}
		return int64(j.Cores) * (now - j.StartTime)
	case StateCompleted, StateKilled:
		return int64(j.Cores) * (j.EndTime - j.StartTime)
	default:
		return 0
	}
}

// Clone returns a deep copy (fresh Allocs slice) so replays can reuse an
// immutable workload across runs.
func (j *Job) Clone() *Job {
	cp := *j
	if j.Allocs != nil {
		cp.Allocs = make([]Alloc, len(j.Allocs))
		copy(cp.Allocs, j.Allocs)
	}
	return &cp
}
