package service

import (
	"bytes"
	"encoding/json"
	"time"

	"repro/internal/sim"
)

// StageTimings breaks a run's wall-clock into pipeline stages, all in
// milliseconds: queued (submission to worker pickup), setup
// (validation + normalization + hashing), execute (sim.RunObserved),
// render (sink renderings at retire) and archive (the durable
// write-through; 0 with no archive). Recorded when the run retires.
type StageTimings struct {
	QueuedMS  float64 `json:"queued_ms"`
	SetupMS   float64 `json:"setup_ms"`
	ExecuteMS float64 `json:"execute_ms"`
	RenderMS  float64 `json:"render_ms"`
	ArchiveMS float64 `json:"archive_ms,omitempty"`
}

// RunView is the wire form of one run: everything a client needs to
// poll, plus (on demand) the report payload encoded through the json
// sink — the same bytes the CLIs' -json flag writes.
type RunView struct {
	ID       string   `json:"id"`
	SpecHash string   `json:"spec_hash"`
	Name     string   `json:"name,omitempty"`
	Mode     sim.Mode `json:"mode"`
	State    State    `json:"state"`
	Error    string   `json:"error,omitempty"`
	// Tenant is the submitting tenant's name (empty on open daemons).
	Tenant string `json:"tenant,omitempty"`
	// Spec is the normalized spec the run executes. Only the single-run
	// GET carries it: cell-list specs can be megabytes, and a listing
	// of a thousand runs must not amplify every submitted byte back out
	// on each poll.
	Spec *sim.RunSpec `json:"spec,omitempty"`

	// CacheHits counts identical submissions deduped into this run
	// after the first — the heavy-traffic observable.
	CacheHits int `json:"cache_hits"`

	// CellsDone/CellsTotal track sweep progress (0/0 before the first
	// cell finishes).
	CellsDone  int `json:"cells_done"`
	CellsTotal int `json:"cells_total"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// ElapsedMS is the wall-clock execution time so far (or total, once
	// terminal); 0 while queued.
	ElapsedMS float64 `json:"elapsed_ms"`

	// Stages is the per-stage timing breakdown, present once the run has
	// retired into the store tiers.
	Stages *StageTimings `json:"stages,omitempty"`

	// Report carries the json-sink encoding of the finished run's
	// sim.Report; populated only when requested and terminal.
	Report json.RawMessage `json:"report,omitempty"`
}

// Terminal reports whether the viewed run is finished.
func (v RunView) Terminal() bool { return v.State.Terminal() }

// viewLocked renders the run; r.mu must be held. withSpec embeds the
// full normalized spec (the single-run GET), withReport the encoded
// report payload.
func (r *run) viewLocked(withReport, withSpec bool) RunView {
	v := RunView{
		ID:          r.id,
		SpecHash:    r.hash,
		Name:        r.spec.Name,
		Mode:        r.spec.Mode,
		State:       r.state,
		Error:       r.errMsg,
		Tenant:      r.tenant,
		CacheHits:   r.hits,
		CellsDone:   r.done,
		CellsTotal:  r.total,
		SubmittedAt: r.submitted,
	}
	if withSpec {
		sp := r.spec
		v.Spec = &sp
	}
	if !r.started.IsZero() {
		t := r.started
		v.StartedAt = &t
		end := time.Now()
		if !r.finished.IsZero() {
			end = r.finished
		}
		v.ElapsedMS = float64(end.Sub(r.started).Microseconds()) / 1000
	}
	if !r.finished.IsZero() {
		t := r.finished
		v.FinishedAt = &t
	}
	if withReport && r.report != nil {
		if r.reportJSON == nil {
			var buf bytes.Buffer
			if err := sim.Export(&buf, "json", *r.report, sim.SinkOptions{}); err == nil {
				r.reportJSON = buf.Bytes()
			}
		}
		v.Report = json.RawMessage(r.reportJSON)
	}
	return v
}

// viewFromRecord renders a stored (terminal) run the same way
// viewLocked renders a live one, so clients cannot tell which tier
// answered. The report payload comes from the stored json rendering
// when present, else is rendered from the hot tier's live Report.
func viewFromRecord(rec Record, withReport, withSpec bool) RunView {
	v := RunView{
		ID:          rec.ID,
		SpecHash:    rec.SpecHash,
		Name:        rec.Name,
		Mode:        rec.Mode,
		State:       rec.State,
		Error:       rec.Error,
		Tenant:      rec.Tenant,
		CacheHits:   rec.CacheHits,
		CellsDone:   rec.CellsDone,
		CellsTotal:  rec.CellsTotal,
		SubmittedAt: rec.Submitted,
	}
	if withSpec {
		sp := rec.Spec
		v.Spec = &sp
	}
	if !rec.Started.IsZero() {
		t := rec.Started
		v.StartedAt = &t
		end := rec.Finished
		if end.IsZero() {
			end = rec.Started
		}
		v.ElapsedMS = float64(end.Sub(rec.Started).Microseconds()) / 1000
	}
	if !rec.Finished.IsZero() {
		t := rec.Finished
		v.FinishedAt = &t
	}
	if rec.Stages != nil {
		st := *rec.Stages
		v.Stages = &st
	}
	if withReport {
		if b, ok := rec.Renders["json"]; ok {
			v.Report = json.RawMessage(b)
		} else if rec.Report != nil {
			var buf bytes.Buffer
			if err := sim.Export(&buf, "json", *rec.Report, sim.SinkOptions{}); err == nil {
				v.Report = json.RawMessage(buf.Bytes())
			}
		}
	}
	return v
}
