package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities. The zero value is LevelDebug; daemons
// default to LevelInfo via the -log-level flag.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// ParseLevel parses a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// logCore is the shared sink behind a Logger tree: one writer, one
// level, one mutex — Component/With derive cheap views over it.
type logCore struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	// now is the clock; tests may pin it for deterministic output.
	now func() time.Time
}

// Logger writes leveled key=value lines:
//
//	ts=2026-08-07T12:00:00.000Z level=info component=service msg="run done" run=r000001
//
// A nil *Logger is valid and silent, so call sites need no nil checks
// — the daemon's default until -log-level wires a real one.
type Logger struct {
	core      *logCore
	component string
	// ctx is the pre-rendered " k=v" pairs bound by With.
	ctx string
}

// NewLogger builds a logger writing to w at the given level.
func NewLogger(w io.Writer, level Level) *Logger {
	c := &logCore{w: w, now: time.Now}
	c.level.Store(int32(level))
	return &Logger{core: c}
}

// SetClock pins the logger's timestamp source (tests).
func (l *Logger) SetClock(now func() time.Time) {
	if l != nil && l.core != nil {
		l.core.now = now
	}
}

// SetLevel changes the level for the whole logger tree.
func (l *Logger) SetLevel(level Level) {
	if l != nil && l.core != nil {
		l.core.level.Store(int32(level))
	}
}

// Enabled reports whether the level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && l.core != nil && level >= Level(l.core.level.Load())
}

// Component derives a logger stamping component=name on every line.
func (l *Logger) Component(name string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{core: l.core, component: name, ctx: l.ctx}
}

// With derives a logger with extra key/value pairs bound to every
// line. Args are alternating keys and values, like the log methods.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	var sb strings.Builder
	sb.WriteString(l.ctx)
	appendKV(&sb, kv)
	return &Logger{core: l.core, component: l.component, ctx: sb.String()}
}

// Debug/Info/Warn/Error write one line at their level. kv are
// alternating keys and values appended after msg.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }
func (l *Logger) Info(msg string, kv ...any)  { l.log(LevelInfo, msg, kv) }
func (l *Logger) Warn(msg string, kv ...any)  { l.log(LevelWarn, msg, kv) }
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var sb strings.Builder
	sb.Grow(128)
	sb.WriteString("ts=")
	sb.WriteString(l.core.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	sb.WriteString(" level=")
	sb.WriteString(level.String())
	if l.component != "" {
		sb.WriteString(" component=")
		sb.WriteString(quoteIfNeeded(l.component))
	}
	sb.WriteString(" msg=")
	sb.WriteString(quoteIfNeeded(msg))
	sb.WriteString(l.ctx)
	appendKV(&sb, kv)
	sb.WriteByte('\n')
	l.core.mu.Lock()
	_, _ = io.WriteString(l.core.w, sb.String())
	l.core.mu.Unlock()
}

func appendKV(sb *strings.Builder, kv []any) {
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		sb.WriteByte(' ')
		sb.WriteString(key)
		sb.WriteByte('=')
		sb.WriteString(quoteIfNeeded(renderValue(kv[i+1])))
	}
	if len(kv)%2 == 1 {
		sb.WriteString(" !BADKEY=")
		sb.WriteString(quoteIfNeeded(renderValue(kv[len(kv)-1])))
	}
}

func renderValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case error:
		return x.Error()
	case time.Duration:
		return x.String()
	case fmt.Stringer:
		return x.String()
	}
	return fmt.Sprint(v)
}

// quoteIfNeeded quotes values containing whitespace, quotes or '='
// so lines stay machine-splittable on spaces.
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	for _, r := range s {
		if r <= ' ' || r == '"' || r == '=' || r == 0x7f {
			return strconv.Quote(s)
		}
	}
	return s
}
