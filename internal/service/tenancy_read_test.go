package service_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/service"
)

// getPath GETs an authenticated path and returns status + body. Every
// probe carries the same fixed X-Request-ID: error bodies echo the
// request ID, so the byte-identical-404 comparisons below need the
// client-controlled ID the middleware adopts, not a fresh random one.
func getPath(t *testing.T, base, token, path string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "tenancy-probe")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// unknownRunBody is the exact wire body an id that never existed
// answers (for getPath's fixed request ID) — the reference bytes the
// foreign-tenant 404 must match.
func unknownRunBody(id string) string {
	return fmt.Sprintf("{\n  \"error\": \"service: unknown run \\\"%s\\\"\",\n  \"request_id\": \"tenancy-probe\"\n}\n", id)
}

// TestCrossTenantReads404 pins the read-side ownership matrix: on an
// authenticated daemon, every per-run GET — the run itself and each
// subresource — answers a foreign tenant with the byte-identical 404 an
// unknown id gets. A 403 would confirm the id exists; with sequential
// run ids that is an enumeration oracle over other tenants' activity.
// Owners and admins keep full access, and cross-tenant DELETE stays the
// explicit 403 it has always been (mutations already confirm existence
// to their owner only).
func TestCrossTenantReads404(t *testing.T) {
	_, base := newAuthServer(t)
	ctx := context.Background()
	bob := authClient(base, "tok-bob")

	v, _, err := bob.Submit(ctx, fastSpec("read-matrix"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Wait(ctx, v.ID, nil); err != nil {
		t.Fatal(err)
	}

	subresources := []string{"", "/report", "/metrics", "/series", "/events"}

	// The reference: a run id that never existed, probed on every verb.
	for _, sub := range subresources {
		status, body := getPath(t, base, "tok-alice", "/v1/runs/r999999"+sub)
		if status != 404 {
			t.Errorf("unknown id GET %s status = %d, want 404", sub, status)
		}
		if sub == "" && body != unknownRunBody("r999999") {
			t.Errorf("unknown id body = %q, want %q", body, unknownRunBody("r999999"))
		}
	}

	// Foreign tenant: same 404, same body bytes, on every subresource.
	for _, sub := range subresources {
		status, body := getPath(t, base, "tok-alice", "/v1/runs/"+v.ID+sub)
		if status != 404 {
			t.Errorf("foreign GET %s status = %d, want 404", sub, status)
		}
		if body != unknownRunBody(v.ID) {
			t.Errorf("foreign GET %s body = %q, want the unknown-run bytes %q", sub, body, unknownRunBody(v.ID))
		}
	}

	// Owner and admin read everything.
	for _, token := range []string{"tok-bob", "tok-ops"} {
		for _, sub := range subresources {
			status, body := getPath(t, base, token, "/v1/runs/"+v.ID+sub)
			if status != 200 {
				t.Errorf("%s GET %s status = %d (%s), want 200", token, sub, status, body)
			}
		}
	}

	// Foreign cancel stays 403 — the pre-existing mutation contract.
	alice := authClient(base, "tok-alice")
	_, err = alice.Cancel(ctx, v.ID)
	if apiErr, ok := err.(*service.Error); !ok || apiErr.Status != 403 {
		t.Errorf("foreign cancel error = %v, want 403", err)
	}

	// A live (running) run hides from foreign tenants the same way.
	long, _, err := bob.Submit(ctx, longSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Cancel(ctx, long.ID)
	status, body := getPath(t, base, "tok-alice", "/v1/runs/"+long.ID)
	if status != 404 || body != unknownRunBody(long.ID) {
		t.Errorf("foreign GET of live run = %d %q, want the unknown-run 404", status, body)
	}
}

// TestListScopeBeforeValidation pins the check ordering on the list
// endpoint: an unauthorized cross-tenant listing is refused with 403
// even when the request also carries a malformed parameter. Answering
// the 400 first would let a tenant distinguish "param invalid" from
// "param invalid AND scope denied" and probe scope rules it cannot
// pass.
func TestListScopeBeforeValidation(t *testing.T) {
	_, base := newAuthServer(t)

	// Malformed cursor + foreign tenant: the scope refusal wins.
	status, refusal := getPath(t, base, "tok-alice", "/v1/runs?tenant=bob&cursor=banana")
	if status != 403 {
		t.Errorf("foreign tenant + bad cursor status = %d (%s), want 403", status, refusal)
	}
	if !strings.Contains(refusal, "admin token") {
		t.Errorf("scope refusal body = %q, want the admin-token message", refusal)
	}
	// Same malformed cursor inside the caller's own scope: a plain 400.
	status, _ = getPath(t, base, "tok-alice", "/v1/runs?tenant=alice&cursor=banana")
	if status != 400 {
		t.Errorf("own tenant + bad cursor status = %d, want 400", status)
	}
	// Admins skip scoping and hit validation directly.
	status, _ = getPath(t, base, "tok-ops", "/v1/runs?tenant=bob&cursor=banana")
	if status != 400 {
		t.Errorf("admin + bad cursor status = %d, want 400", status)
	}
}
