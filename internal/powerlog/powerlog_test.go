package powerlog

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/power"
)

func TestSensorDeterministic(t *testing.T) {
	a, err := NewSensor(42, 0.02, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSensor(42, 0.02, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a.Read(1000) != b.Read(1000) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSensorStatistics(t *testing.T) {
	s, err := NewSensor(7, 0.02, 0)
	if err != nil {
		t.Fatal(err)
	}
	const truth = 1000.0
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		r := float64(s.Read(truth))
		sum += r
		sumSq += r * r
	}
	mean := sum / n
	stddev := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-truth) > 2 {
		t.Errorf("mean = %.2f, want about %.0f", mean, truth)
	}
	if math.Abs(stddev-20) > 2 {
		t.Errorf("stddev = %.2f, want about 20 (2%% of 1000)", stddev)
	}
}

func TestSensorOffsetAndClamp(t *testing.T) {
	s, err := NewSensor(1, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Read(1000); got != 1050 {
		t.Errorf("offset reading = %v, want 1050", got)
	}
	neg, err := NewSensor(1, 0, -2000)
	if err != nil {
		t.Fatal(err)
	}
	if got := neg.Read(1000); got != 0 {
		t.Errorf("reading clamped to %v, want 0", got)
	}
	if _, err := NewSensor(1, -0.1, 0); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestWindowMeanAndEviction(t *testing.T) {
	w, err := NewWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Mean() != 0 || w.Len() != 0 {
		t.Error("empty window not zero")
	}
	w.Push(10)
	w.Push(20)
	if got := w.Mean(); got != 15 {
		t.Errorf("mean = %v", got)
	}
	w.Push(30)
	w.Push(40) // evicts 10
	if got := w.Mean(); got != 30 {
		t.Errorf("mean after eviction = %v, want 30", got)
	}
	if w.Len() != 3 {
		t.Errorf("len = %d", w.Len())
	}
	if got := w.Max(); got != 40 {
		t.Errorf("max = %v", got)
	}
	if _, err := NewWindow(0); err == nil {
		t.Error("zero-size window accepted")
	}
}

// Property: window mean always equals the mean of the last `size` pushes.
func TestWindowMeanProperty(t *testing.T) {
	f := func(vals []uint16, size8 uint8) bool {
		size := int(size8%16) + 1
		w, err := NewWindow(size)
		if err != nil {
			return false
		}
		for _, v := range vals {
			w.Push(power.Watts(v))
		}
		lo := len(vals) - size
		if lo < 0 {
			lo = 0
		}
		if len(vals) == 0 {
			return w.Mean() == 0
		}
		var sum float64
		for _, v := range vals[lo:] {
			sum += float64(v)
		}
		want := sum / float64(len(vals)-lo)
		return math.Abs(float64(w.Mean())-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEstimatorGuardBand(t *testing.T) {
	s, err := NewSensor(3, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimator(s, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e.Estimate() != 0 {
		t.Error("empty estimator not zero")
	}
	for i := 0; i < 10; i++ {
		e.Sample(1000)
	}
	est := float64(e.Estimate())
	mean := float64(e.window.Mean())
	if est <= mean {
		t.Errorf("estimate %v not above window mean %v (guard band missing)", est, mean)
	}
	// Guard = 3 x 0.05 x mean / sqrt(10) ~ 4.7% of mean.
	wantGuard := 3 * 0.05 * mean / math.Sqrt(10)
	if math.Abs((est-mean)-wantGuard) > 1e-9 {
		t.Errorf("guard = %v, want %v", est-mean, wantGuard)
	}
}

func TestEstimatorGuardKeepsTruthUnderCap(t *testing.T) {
	// Monte-Carlo: if the controller admits load only while the guarded
	// estimate fits the cap, the true draw rarely exceeds it.
	s, err := NewSensor(11, 0.03, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimator(s, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	budget := power.CapWatts(10000)
	truth := power.Watts(9500) // close to the cap
	violations := 0
	admitted := 0
	for i := 0; i < 5000; i++ {
		e.Sample(truth)
		if e.window.Len() < 20 {
			continue
		}
		if e.Headroom(budget) >= 0 {
			admitted++
			if truth > budget.Watts() {
				violations++
			}
		}
	}
	if admitted == 0 {
		t.Fatal("estimator never admitted a compliant draw")
	}
	if violations != 0 {
		t.Errorf("true draw above cap admitted %d times", violations)
	}
}

func TestEstimatorValidation(t *testing.T) {
	s, _ := NewSensor(1, 0.01, 0)
	if _, err := NewEstimator(nil, 5, 2); err == nil {
		t.Error("nil sensor accepted")
	}
	if _, err := NewEstimator(s, 0, 2); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewEstimator(s, 5, -1); err == nil {
		t.Error("negative guard accepted")
	}
}

func TestHeadroomUncapped(t *testing.T) {
	s, _ := NewSensor(1, 0.01, 0)
	e, _ := NewEstimator(s, 5, 2)
	if h := e.Headroom(power.NoCap); !math.IsInf(float64(h), 1) {
		t.Errorf("uncapped headroom = %v", h)
	}
}
