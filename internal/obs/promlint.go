package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Lint walks a Prometheus text exposition and returns every problem
// found — the promlint-style checks the daemon and gateway /metrics
// tests pin:
//
//   - every sample belongs to a family with # HELP and # TYPE declared
//     before it, and TYPE is counter, gauge or histogram
//   - no family declares HELP or TYPE twice
//   - counter families end in _total; gauge families do not
//   - histogram children expose _bucket/_sum/_count only, bucket le
//     bounds strictly increase, cumulative counts never decrease, the
//     +Inf bucket terminates the series and equals _count
//   - metric and label names are legal, values parse as floats
//
// An empty slice means the exposition is clean.
func Lint(r io.Reader) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	fams := map[string]*famMeta{}
	// histogram bucket accounting, keyed by family + label set (minus le)
	type histSeries struct {
		lastLE   float64
		lastCum  uint64
		infCum   uint64
		seenInf  bool
		count    uint64
		hasCount bool
	}
	hists := map[string]*histSeries{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			f := fams[name]
			if f == nil {
				f = &famMeta{}
				fams[name] = f
			}
			if f.sampled {
				addf("line %d: %s for %s after its samples", line, fields[1], name)
			}
			switch fields[1] {
			case "HELP":
				if f.help != "" {
					addf("line %d: duplicate HELP for %s", line, name)
				}
				f.help = "set"
				if len(fields) >= 4 && strings.TrimSpace(fields[3]) != "" {
					f.help = fields[3]
				}
			case "TYPE":
				if f.typ != "" {
					addf("line %d: duplicate TYPE for %s", line, name)
				}
				typ := ""
				if len(fields) >= 4 {
					typ = strings.TrimSpace(fields[3])
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = typ
				default:
					addf("line %d: bad TYPE %q for %s", line, typ, name)
					f.typ = "untyped"
				}
				switch {
				case typ == "counter" && !strings.HasSuffix(name, "_total"):
					addf("line %d: counter %s should end in _total", line, name)
				case typ == "gauge" && strings.HasSuffix(name, "_total"):
					addf("line %d: gauge %s should not end in _total", line, name)
				}
			}
			continue
		}

		name, labels, value, perr := parseSample(text)
		if perr != "" {
			addf("line %d: %s", line, perr)
			continue
		}
		fam, sampleKind := resolveFamily(fams, name)
		if fam == nil {
			addf("line %d: sample %s has no # HELP/# TYPE family", line, name)
			continue
		}
		meta := fams[fam.name]
		if meta.help == "" {
			addf("line %d: family %s has TYPE but no HELP", line, fam.name)
			meta.help = "reported"
		}
		meta.sampled = true
		if meta.typ == "histogram" && sampleKind == "" {
			addf("line %d: histogram family %s exposes bare sample %s", line, fam.name, name)
			continue
		}
		if meta.typ != "histogram" && sampleKind != "" {
			// _bucket/_sum/_count resolved only for histogram families,
			// so this cannot happen; keep the branch for clarity.
			addf("line %d: %s sample %s on non-histogram family", line, sampleKind, name)
		}
		if meta.typ == "histogram" {
			key := fam.name + "{" + labelsKeyWithoutLE(labels) + "}"
			hs := hists[key]
			if hs == nil {
				hs = &histSeries{lastLE: -1e308}
				hists[key] = hs
			}
			switch sampleKind {
			case "bucket":
				leStr, ok := labelValue(labels, "le")
				if !ok {
					addf("line %d: %s_bucket without le label", line, fam.name)
					break
				}
				le, isInf, err := parseLE(leStr)
				if err != nil {
					addf("line %d: bad le %q on %s", line, leStr, fam.name)
					break
				}
				cum := uint64(value)
				if hs.seenInf {
					addf("line %d: %s bucket after +Inf", line, fam.name)
				}
				if isInf {
					hs.seenInf = true
					hs.infCum = cum
				} else {
					if le <= hs.lastLE {
						addf("line %d: %s bucket bounds not increasing (%v after %v)", line, fam.name, le, hs.lastLE)
					}
					hs.lastLE = le
				}
				if cum < hs.lastCum {
					addf("line %d: %s cumulative bucket count decreased", line, fam.name)
				}
				hs.lastCum = cum
			case "count":
				hs.count = uint64(value)
				hs.hasCount = true
			}
		}
		if value < 0 && (meta.typ == "counter") {
			addf("line %d: counter %s has negative value", line, name)
		}
	}
	if err := sc.Err(); err != nil {
		addf("read: %v", err)
	}

	// Terminal checks: every histogram series must have closed with
	// +Inf and agree with its _count.
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		hs := hists[k]
		if !hs.seenInf {
			addf("histogram %s: no +Inf bucket", k)
			continue
		}
		if hs.hasCount && hs.count != hs.infCum {
			addf("histogram %s: _count %d != +Inf bucket %d", k, hs.count, hs.infCum)
		}
	}
	for name, f := range fams {
		if !f.sampled && f.typ != "" {
			addf("family %s declared but never sampled", name)
		}
	}
	sort.Strings(problems)
	return problems
}

// famMeta tracks one declared family while linting.
type famMeta struct {
	help, typ string
	sampled   bool
}

// famRef names the family a sample resolved to.
type famRef struct{ name string }

// resolveFamily maps a sample name to its declared family: exact match
// first, then the histogram suffixes. kind is "bucket", "sum", "count"
// or "" for a plain sample.
func resolveFamily(fams map[string]*famMeta, name string) (*famRef, string) {
	if f, ok := fams[name]; ok && f.typ != "" {
		return &famRef{name: name}, ""
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if f, ok := fams[base]; ok && f.typ == "histogram" {
			return &famRef{name: base}, strings.TrimPrefix(suffix, "_")
		}
	}
	return nil, ""
}

// parseSample splits `name{labels} value` into parts; perr is non-empty
// on malformed lines.
func parseSample(text string) (name, labels string, value float64, perr string) {
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Sprintf("unbalanced braces in %q", text)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", 0, fmt.Sprintf("malformed sample %q", text)
		}
		name = fields[0]
		rest = fields[1]
	}
	if !validName(name) {
		return "", "", 0, fmt.Sprintf("invalid metric name %q", name)
	}
	valStr := strings.Fields(rest)
	if len(valStr) == 0 {
		return "", "", 0, fmt.Sprintf("sample %q has no value", text)
	}
	v, err := parseValue(valStr[0])
	if err != nil {
		return "", "", 0, fmt.Sprintf("bad value %q for %s", valStr[0], name)
	}
	return name, labels, v, ""
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return 1e308, nil
	case "-Inf":
		return -1e308, nil
	case "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLE(s string) (v float64, isInf bool, err error) {
	if s == "+Inf" {
		return 0, true, nil
	}
	v, err = strconv.ParseFloat(s, 64)
	return v, false, err
}

// labelValue extracts one label's value from a rendered label string.
func labelValue(labels, key string) (string, bool) {
	for _, part := range splitLabels(labels) {
		k, v, ok := strings.Cut(part, "=")
		if ok && k == key {
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}

// labelsKeyWithoutLE renders a stable key of the label set minus le —
// the per-series identity histogram bucket checks group by.
func labelsKeyWithoutLE(labels string) string {
	parts := splitLabels(labels)
	kept := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, "le=") {
			kept = append(kept, p)
		}
	}
	sort.Strings(kept)
	return strings.Join(kept, ",")
}

// splitLabels splits `k1="v1",k2="v2"` on commas outside quotes.
func splitLabels(labels string) []string {
	if labels == "" {
		return nil
	}
	var parts []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '"':
			if i == 0 || labels[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				parts = append(parts, labels[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, labels[start:])
	return parts
}
