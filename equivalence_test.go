// Engine-equivalence golden test: the committed fingerprints in
// testdata/golden_fingerprints.json were generated with the pre-PR-7
// engine (binary container/heap event queue, full scheduling pass per
// event, unmemoized power projections). Any rewrite of the hot path —
// the 4-ary event queue, the incremental backfill pass, the projection
// memo — must reproduce them byte-identically at every worker count.
//
// Regenerate (only when an intentional semantic change lands) with:
//
//	UPDATE_GOLDEN=1 go test -run TestEngineEquivalenceGolden .
package repro_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/invariant"
	"repro/internal/replay"
	"repro/internal/rjms"
	"repro/internal/trace"
)

const goldenFingerprintFile = "testdata/golden_fingerprints.json"

type goldenFingerprints struct {
	// Library is the Table fingerprint of the full scenario library
	// sweep (7 workloads x uncapped + {60%,40%} x {SHUT,DVFS,MIX}) on
	// a 2-rack machine.
	Library string `json:"library"`
	// SWF is the Table fingerprint of a streamed SWF replay (the
	// library's bursty workload written to an SWF file and replayed
	// through the scanner + streaming ingestion path).
	SWF string `json:"swf"`
	// Federation is the FederationTable fingerprint of a 2- and
	// 3-member federated sweep at a 50% global budget under both
	// division policies.
	Federation string `json:"federation"`
}

// equivalenceWorkerCounts are the pool sizes every sweep is repeated
// at; fingerprints must agree across them and with the golden file.
func equivalenceWorkerCounts() []int {
	return []int{1, 4, runtime.GOMAXPROCS(0)}
}

func libraryEquivalenceScenarios() []replay.Scenario {
	return replay.LibraryScenarios(2)
}

// swfEquivalenceScenarios writes a deterministic synthetic workload out
// as an SWF trace file and builds scenarios that stream it back in —
// exercising the lazy LoadWorkloadStream ingestion under both the
// uncapped and capped-MIX frontiers.
func swfEquivalenceScenarios(t testing.TB, dir string) []replay.Scenario {
	t.Helper()
	wl := trace.Config{Kind: trace.Bursty, Seed: 1006, Cores: replay.Scenario{ScaleRacks: 2}.Machine().Cores()}
	jobs, err := trace.Generate(wl)
	if err != nil {
		t.Fatalf("generating SWF workload: %v", err)
	}
	path := filepath.Join(dir, "bursty.swf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("creating SWF file: %v", err)
	}
	if err := trace.WriteSWF(f, jobs, "equivalence golden workload"); err != nil {
		t.Fatalf("writing SWF file: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("closing SWF file: %v", err)
	}
	dur := wl.Kind.Duration()
	src := trace.SWFSource{Path: path}
	uncapped := replay.FromSWF("swf/100%/None", src, core.PolicyNone, 0, dur)
	uncapped.ScaleRacks = 2
	capped := replay.FromSWF("swf/40%/MIX", src, core.PolicyMix, 0.4, dur)
	capped.ScaleRacks = 2
	return []replay.Scenario{uncapped, capped}
}

func federationEquivalenceGrid() experiment.FederationGrid {
	return experiment.FederationGrid{
		Name:         "equivalence-federation",
		MemberCounts: []int{2, 3},
		CapFractions: []float64{0.5},
		Divisions:    []replay.Division{replay.DivideProRata, replay.DivideDemand},
		ScaleRacks:   2,
	}
}

// runLibraryFingerprint runs the scenario list at the given worker
// count with the invariant checker attached to every cell, failing the
// test on any cell error or invariant violation.
func runFingerprint(t *testing.T, name string, scens []replay.Scenario, workers int) string {
	t.Helper()
	r := experiment.Runner{
		Workers: workers,
		Observe: func(i int, sc replay.Scenario, ctl *rjms.Controller) {
			k := invariant.Attach(ctl, sc.Name)
			t.Cleanup(func() {
				if err := k.Err(); err != nil {
					t.Errorf("%s workers=%d: invariant violation: %v", name, workers, err)
				}
			})
		},
	}
	tab := r.Run(name, scens)
	if errs := tab.Errs(); len(errs) > 0 {
		t.Fatalf("%s workers=%d: %v", name, workers, errs[0])
	}
	return tab.Fingerprint()
}

// TestEngineEquivalenceGolden pins the engine rewrite to the old
// engine's results: library sweep, streamed SWF replay, and federation
// fingerprints must match the committed goldens at 1, 4 and max
// workers.
func TestEngineEquivalenceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-library equivalence sweep in -short mode")
	}
	update := os.Getenv("UPDATE_GOLDEN") != ""

	var got goldenFingerprints
	swfDir := t.TempDir()
	for _, workers := range equivalenceWorkerCounts() {
		lib := runFingerprint(t, "equivalence-library", libraryEquivalenceScenarios(), workers)
		if got.Library == "" {
			got.Library = lib
		} else if lib != got.Library {
			t.Fatalf("library fingerprint differs at %d workers:\n got  %s\n want %s", workers, lib, got.Library)
		}

		swf := runFingerprint(t, "equivalence-swf", swfEquivalenceScenarios(t, swfDir), workers)
		if got.SWF == "" {
			got.SWF = swf
		} else if swf != got.SWF {
			t.Fatalf("SWF fingerprint differs at %d workers:\n got  %s\n want %s", workers, swf, got.SWF)
		}

		fed := experiment.RunFederation(federationEquivalenceGrid(), workers)
		if errs := fed.Errs(); len(errs) > 0 {
			t.Fatalf("federation workers=%d: %v", workers, errs[0])
		}
		fp := fed.Fingerprint()
		if got.Federation == "" {
			got.Federation = fp
		} else if fp != got.Federation {
			t.Fatalf("federation fingerprint differs at %d workers:\n got  %s\n want %s", workers, fp, got.Federation)
		}
	}

	if update {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenFingerprintFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFingerprintFile, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden fingerprints updated: %+v", got)
		return
	}

	b, err := os.ReadFile(goldenFingerprintFile)
	if err != nil {
		t.Fatalf("reading golden file (run with UPDATE_GOLDEN=1 to create it): %v", err)
	}
	var want goldenFingerprints
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatalf("decoding golden file: %v", err)
	}
	if got != want {
		t.Errorf("fingerprints diverge from the committed old-engine goldens:\n got  %+v\n want %+v", got, want)
	}
}
