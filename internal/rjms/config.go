// Package rjms is the SLURM-like resource and job management controller
// the paper implements its powercapping strategy in (Section V): a
// centralized controller that accepts job submissions and powercap
// reservations, schedules with EASY backfilling over a core-level node
// allocator, keeps per-node power states (IdleWatts / MaxWatts /
// DownWatts / CpuFreqXWatts), runs the offline planning of Algorithm 1
// when a powercap reservation arrives and the online frequency control of
// Algorithm 2 at every job dispatch. It executes against the
// deterministic discrete-event engine, replacing the paper's real-time
// multiple-slurmd emulation.
package rjms

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/power"
	"repro/internal/sched"
)

// DefaultCapPlanningHorizon is how far ahead (seconds) the online
// algorithm prepares for a future powercap window by default: one hour,
// the reservation length of the paper's scenarios.
const DefaultCapPlanningHorizon = 3600

// DefaultReservationLead is how long (seconds) before a switch-off
// window its nodes stop accepting new jobs by default. Thirty minutes
// covers the bulk of the short-job-dominated Curie runtime distribution,
// so the group is mostly drained when the window opens and the draw
// settles onto the cap within minutes (the paper's default powercap
// behaviour tolerates the remaining transient: "the scheduler will wait
// until some jobs are completed").
const DefaultReservationLead = 1800

// Config assembles a controller. Zero fields take the documented
// defaults.
type Config struct {
	// Topology of the machine; zero value means full Curie.
	Topology cluster.Topology
	// Profile is the per-node power table; nil means the Curie table.
	Profile *power.Profile
	// Overhead is the shared-equipment draw; nil means Curie's
	// (248 W / 900 W). Pass a zero-valued Overhead to model a machine
	// without group bonuses.
	Overhead *cluster.Overhead

	// Policy is the powercap scheduling mode.
	Policy core.Policy
	// DegMinFull/DegMinMix are the walltime degradations at the ladder
	// minimum for full-range DVFS and for MIX; zero means the paper's
	// 1.63 / 1.29.
	DegMinFull float64
	DegMinMix  float64
	// MixFloor is the lowest MIX frequency; zero means 2.0 GHz.
	MixFloor dvfs.Freq

	// BackfillDepth bounds how many pending jobs one scheduling pass
	// considers (SLURM's bf_max_job_test); zero means 100.
	BackfillDepth int
	// SampleInterval is the metrics sampling period in seconds; zero
	// means 120.
	SampleInterval int64
	// KillOnOverrun enables the "extreme actions" of Section IV-B:
	// when a cap activates while the cluster draws more, jobs are
	// killed (newest first) until the draw fits. Default off: the
	// scheduler just stops launching and waits.
	KillOnOverrun bool
	// ScatteredShutdown disables the bonus-aware grouping of the
	// offline phase (ablation); default false = grouped.
	ScatteredShutdown bool
	// ReservationLead is how many seconds before a switch-off window
	// its nodes stop accepting jobs whose walltime crosses the window.
	// Zero means DefaultReservationLead; negative means pure drain
	// (reserved nodes take work until the window opens and power down
	// as their jobs end). With Curie's ~12000x walltime overestimates,
	// large leads idle the group far ahead of the window (see the lead
	// ablation benchmark).
	ReservationLead int64
	// CapPlanningHorizon bounds how far ahead of a future powercap
	// window the online algorithm starts throttling jobs that overlap
	// it. Beyond the horizon jobs run unconstrained: with the trace's
	// four-orders-of-magnitude walltime overestimates, every job
	// formally "overlaps" any future reservation, and unbounded
	// preparation would idle the machine all day (the paper's Figure 6
	// shows preparation close to the window). Negative disables the
	// horizon (unbounded); zero means DefaultCapPlanningHorizon.
	CapPlanningHorizon int64

	// DynamicDVFS enables re-clocking of running jobs at powercap
	// boundaries (the paper's Section VIII future work): when a cap
	// activates above the current draw, running jobs are slowed one
	// ladder rung at a time until the budget is met; when the window
	// closes they are raised back toward nominal. Only effective for
	// policies that may scale (DVFS, MIX).
	DynamicDVFS bool

	// MeasuredPowerNoise enables measurement-based capping (the paper's
	// final future-work item): instead of trusting the static per-state
	// watt bookkeeping, the active-cap checks use a guarded estimate
	// built from noisy IPMI-style sensor readings of the true draw.
	// The value is the sensor's relative standard deviation (e.g. 0.02);
	// zero keeps the paper's static table behaviour.
	MeasuredPowerNoise float64
	// MeasuredPowerSeed makes the sensor noise reproducible; zero means 1.
	MeasuredPowerSeed int64
	// MeasuredPowerWindow is the smoothing window (readings); zero means 10.
	MeasuredPowerWindow int
	// MeasuredPowerGuard is the guard band in noise sigmas; zero means 3.
	MeasuredPowerGuard float64

	// CompactPlacement switches node selection to the topology-aware
	// allocator that minimizes the chassis span of each job (jobs share
	// first-level switches; Section IV-A's network-topology criterion).
	// Switch-off reservations still take precedence: when a shutdown is
	// planned, reserved nodes are packed first regardless.
	CompactPlacement bool

	// Priority selects the pending-queue order; default FCFS.
	Priority sched.PriorityPolicy
	// FairshareHalfLife (seconds) for the multifactor policy; zero
	// means 7 days.
	FairshareHalfLife int64
}

func (c Config) withDefaults() Config {
	if c.Topology == (cluster.Topology{}) {
		c.Topology = cluster.CurieTopology()
	}
	if c.Profile == nil {
		c.Profile = power.CurieProfile()
	}
	if c.Overhead == nil {
		ov := cluster.CurieOverhead()
		c.Overhead = &ov
	}
	if c.DegMinFull == 0 {
		c.DegMinFull = dvfs.DegMinCommon
	}
	if c.DegMinMix == 0 {
		c.DegMinMix = dvfs.DegMinMix
	}
	if c.MixFloor == 0 {
		c.MixFloor = core.DefaultMixFloor
	}
	if c.BackfillDepth == 0 {
		c.BackfillDepth = 100
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = 120
	}
	if c.FairshareHalfLife == 0 {
		c.FairshareHalfLife = 7 * 24 * 3600
	}
	if c.ReservationLead == 0 {
		c.ReservationLead = DefaultReservationLead
	} else if c.ReservationLead < 0 {
		c.ReservationLead = 0
	}
	if c.CapPlanningHorizon == 0 {
		c.CapPlanningHorizon = DefaultCapPlanningHorizon
	} else if c.CapPlanningHorizon < 0 {
		c.CapPlanningHorizon = 1 << 40 // effectively unbounded
	}
	if c.MeasuredPowerNoise > 0 {
		if c.MeasuredPowerSeed == 0 {
			c.MeasuredPowerSeed = 1
		}
		if c.MeasuredPowerWindow == 0 {
			c.MeasuredPowerWindow = 10
		}
		if c.MeasuredPowerGuard == 0 {
			c.MeasuredPowerGuard = 3
		}
	}
	return c
}

func (c Config) validate() error {
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	if c.BackfillDepth < 0 {
		return fmt.Errorf("rjms: negative backfill depth %d", c.BackfillDepth)
	}
	if c.SampleInterval < 0 {
		return fmt.Errorf("rjms: negative sample interval %d", c.SampleInterval)
	}
	if c.DegMinFull < 1 || c.DegMinMix < 1 {
		return fmt.Errorf("rjms: degradation factors must be >= 1 (got %v, %v)", c.DegMinFull, c.DegMinMix)
	}
	if c.MeasuredPowerNoise < 0 {
		return fmt.Errorf("rjms: negative measurement noise %v", c.MeasuredPowerNoise)
	}
	return nil
}
