// Quickstart: build a small Curie-like machine, submit a handful of
// jobs, reserve a 60% powercap for a window, and watch the SHUT policy
// plan a grouped switch-off and keep the draw inside the budget.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/power"
	"repro/internal/rjms"
)

func main() {
	// A 2-rack slice of Curie: 2 x 5 chassis x 18 nodes = 180 nodes,
	// 16 cores each, with the measured Figure 4 power table.
	cfg := rjms.Config{
		Topology: cluster.Topology{Racks: 2, ChassisPerRack: 5, NodesPerChassis: 18, CoresPerNode: 16},
		Policy:   core.PolicyShut,
	}
	ctl, err := rjms.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %d nodes / %d cores, max draw %v, idle draw %v\n",
		ctl.Cluster().Nodes(), ctl.Cluster().Cores(),
		ctl.Cluster().MaxPower(), ctl.Cluster().IdlePower())

	// A 60% powercap reservation one hour into the day, for one hour.
	budget := power.CapFraction(0.6, ctl.Cluster().MaxPower())
	plan, err := ctl.ReservePowerCap(3600, 7200, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline plan: mechanism=%v, %d nodes reserved for switch-off "+
		"(sheds %v; the cap demands %v)\n",
		plan.Mechanism, len(plan.OffNodes), plan.PlannedSaving, plan.NeededSaving)

	// A steady stream of jobs, one submitted every 2 minutes.
	var jobs []*job.Job
	for i := 0; i < 120; i++ {
		jobs = append(jobs, &job.Job{
			ID:       job.ID(i + 1),
			User:     fmt.Sprintf("user%d", i%7),
			Cores:    64 << (i % 3), // 64, 128, 256 cores
			Submit:   int64(i) * 120,
			Runtime:  900,
			Walltime: 7200, // the usual massive overestimate
		})
	}
	if err := ctl.LoadWorkload(jobs); err != nil {
		log.Fatal(err)
	}

	summary, err := ctl.Run(4 * 3600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter 4 simulated hours:")
	fmt.Println(" ", summary)
	fmt.Printf("  energy %.1f kWh, mean draw %v, peak %v\n",
		summary.EnergyJ.KWh(), summary.MeanPower, summary.PeakPower)

	// Show that the cap held while the window was open.
	var peakInWindow power.Watts
	for _, s := range ctl.Samples() {
		if s.T >= 3600+600 && s.T < 7200 && s.Power > peakInWindow {
			peakInWindow = s.Power
		}
	}
	fmt.Printf("  peak draw inside the capped window (after drain): %v (budget %v)\n",
		peakInWindow, budget)
}
