package replay

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/rjms"
	"repro/internal/trace"
)

// TestRunContextWithMatchesRun pins the stepping equivalence the
// service's cancellable execution path relies on: Start + stepped
// Advance + Finish replays the exact event sequence of one Run call, so
// an uncancelled RunContextWith is bit-identical to Run.
func TestRunContextWithMatchesRun(t *testing.T) {
	s := Scenario{
		Name:     "ctx-equiv",
		Workload: shortWorkload(trace.MedianJob, 7),
		Policy:   core.PolicyMix, CapFraction: 0.5, ScaleRacks: testRacks,
	}
	want := Run(s)
	got := RunContextWith(context.Background(), s, nil)
	if want.Err != nil || got.Err != nil {
		t.Fatalf("errs: run=%v stepped=%v", want.Err, got.Err)
	}
	if !reflect.DeepEqual(want.Summary, got.Summary) {
		t.Errorf("summaries differ:\nrun:     %+v\nstepped: %+v", want.Summary, got.Summary)
	}
	var a, b bytes.Buffer
	if err := WriteSeriesCSV(&a, want.Samples); err != nil {
		t.Fatal(err)
	}
	if err := WriteSeriesCSV(&b, got.Samples); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("sample series differ between Run and RunContextWith")
	}
}

// TestRunContextWithCancelled checks both cancellation points: a
// pre-cancelled context never builds a controller, and a cancellation
// raised mid-replay (from a sample observer, the way a service cancel
// races a running cell) stops the replay at the next step boundary with
// ctx.Err() and the partial sample series.
func TestRunContextWithCancelled(t *testing.T) {
	s := Scenario{
		Workload: shortWorkload(trace.MedianJob, 7),
		Policy:   core.PolicyShut, CapFraction: 0.6, ScaleRacks: testRacks,
	}

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunContextWith(pre, s, nil)
	if res.Err != context.Canceled {
		t.Fatalf("pre-cancelled Err = %v, want context.Canceled", res.Err)
	}
	if res.Summary.JobsSubmitted != 0 || len(res.Samples) != 0 {
		t.Errorf("pre-cancelled run produced output: %+v", res.Summary)
	}

	full := Run(s)
	ctx, cancelMid := context.WithCancel(context.Background())
	defer cancelMid()
	cutoff := s.Duration() / 4
	res = RunContextWith(ctx, s, func(ctl *rjms.Controller) {
		ctl.AddObserver(func(now int64) {
			if now >= cutoff {
				cancelMid()
			}
		})
	})
	if res.Err != context.Canceled {
		t.Fatalf("mid-run Err = %v, want context.Canceled", res.Err)
	}
	if len(res.Samples) == 0 {
		t.Error("mid-run cancel kept no partial samples")
	}
	if len(res.Samples) >= len(full.Samples) {
		t.Errorf("cancelled run recorded %d samples, uncancelled %d — cancellation was not prompt",
			len(res.Samples), len(full.Samples))
	}
}
