// Package replay implements the experimental methodology of Section VII:
// replaying (synthetic) Curie workload intervals against the RJMS under a
// powercap scenario — a policy, a cap fraction, and a one-hour reservation
// window in the middle of the interval — and collecting the utilization
// and power series plus the Figure 8 totals. A worker pool runs whole
// scenario sweeps in parallel, one independent controller per scenario.
//
// The predefined scenario builders (Fig6/7/8, the claims, the
// ablations, and the generic SweepScenarios cross product) are the
// vocabulary the sweep layer speaks: internal/experiment expands grids
// through SweepScenarios and aggregates Run results into comparable
// tables.
package replay

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/reservation"
	"repro/internal/rjms"
	"repro/internal/trace"
)

// Scenario is one experiment cell: workload x policy x cap.
type Scenario struct {
	Name     string
	Workload trace.Config
	Policy   core.Policy

	// CapFraction is the power budget as a fraction of the machine's
	// maximum draw; >= 1 (or 0) means no powercap reservation.
	CapFraction float64
	// CapStart/CapDuration position the reservation window; zero means
	// the paper's default: one hour centred in the interval.
	CapStart    int64
	CapDuration int64
	// OpenEnded makes the cap start at CapStart and never end
	// (the "powercap set for now" mode).
	OpenEnded bool

	// ScaleRacks shrinks the machine to this many racks (0 = full 56).
	// The workload's Cores is adjusted to match automatically.
	ScaleRacks int

	// Jobs replaces the synthetic workload with an explicit job list
	// (e.g. parsed from a real SWF trace); Workload.Kind still labels
	// the run and Duration()/DurationSec must be set to the interval
	// length when the default kind duration does not apply.
	Jobs []*job.Job

	// SWF streams the workload from an SWF trace file through the
	// scanner and its window/rescale transforms instead of
	// materializing it: submissions are ingested lazily as the virtual
	// clock reaches them, so million-job archive traces replay in
	// bounded memory. Ignored when Jobs is set; each scenario cell
	// opens its own stream, so SWF scenarios sweep in parallel like any
	// other. As with Jobs, Workload.Kind only labels the run and
	// DurationSec bounds the replayed interval.
	SWF *trace.SWFSource

	// Ablations and options, forwarded to the controller.
	Scattered       bool
	KillOnOverrun   bool
	BackfillDepth   int
	SampleEvery     int64
	ReservationLead int64
	PlanningHorizon int64
	DynamicDVFS     bool
	// MeasuredNoise > 0 switches the active-cap checks to the noisy
	// sensor path (relative stddev).
	MeasuredNoise float64
	// Compact enables topology-aware (chassis-span-minimizing) node
	// selection.
	Compact bool
}

// Machine returns the topology the scenario runs on.
func (s Scenario) Machine() cluster.Topology {
	topo := cluster.CurieTopology()
	if s.ScaleRacks > 0 {
		topo.Racks = s.ScaleRacks
	}
	return topo
}

// Duration returns the replayed interval length.
func (s Scenario) Duration() int64 {
	if s.Workload.DurationSec > 0 {
		return s.Workload.DurationSec
	}
	return s.Workload.Kind.Duration()
}

// Capped reports whether the scenario actually reserves power.
func (s Scenario) Capped() bool { return s.CapFraction > 0 && s.CapFraction < 1 }

// Window returns the powercap reservation window.
func (s Scenario) Window() (start, end int64) {
	dur := s.CapDuration
	if dur == 0 {
		dur = 3600
	}
	start = s.CapStart
	if start == 0 {
		start = (s.Duration() - dur) / 2
		if start < 0 {
			start = 0
		}
	}
	if s.OpenEnded {
		return start, reservation.Horizon
	}
	return start, start + dur
}

// Label renders the Figure 8 row name, e.g. "40%/MIX".
func (s Scenario) Label() string {
	if !s.Capped() {
		return "100%/None"
	}
	return fmt.Sprintf("%d%%/%s", int(s.CapFraction*100+0.5), s.Policy)
}

// Result is the outcome of one scenario run.
type Result struct {
	Scenario Scenario
	Plan     core.OfflinePlan
	Summary  metrics.Summary
	Samples  []metrics.Sample
	MaxPower power.Watts
	Cores    int
	Err      error
}

// Build constructs the controller of one scenario with its workload
// loaded (materialized or streaming) but nothing reserved or run — the
// shared front half of Run and of federation members, which reserve
// and drive their controllers themselves. The returned cleanup releases
// a streaming source (it is non-nil even when there is nothing to
// close) and must be called once the run is over.
func Build(s Scenario) (ctl *rjms.Controller, cleanup func(), err error) {
	topo := s.Machine()
	cleanup = func() {}

	jobs := s.Jobs
	var stream *trace.FileStream
	switch {
	case jobs != nil:
	case s.SWF != nil:
		stream, err = s.SWF.Open()
		if err != nil {
			return nil, cleanup, err
		}
		cleanup = func() { stream.Close() }
	default:
		wl := s.Workload
		wl.Cores = topo.Cores()
		jobs, err = trace.Generate(wl)
		if err != nil {
			return nil, cleanup, err
		}
	}

	cfg := rjms.Config{
		Topology:           topo,
		Policy:             s.Policy,
		ScatteredShutdown:  s.Scattered,
		KillOnOverrun:      s.KillOnOverrun,
		BackfillDepth:      s.BackfillDepth,
		SampleInterval:     s.SampleEvery,
		ReservationLead:    s.ReservationLead,
		CapPlanningHorizon: s.PlanningHorizon,
		DynamicDVFS:        s.DynamicDVFS,
		MeasuredPowerNoise: s.MeasuredNoise,
		CompactPlacement:   s.Compact,
	}
	ctl, err = rjms.New(cfg)
	if err != nil {
		cleanup()
		return nil, func() {}, err
	}
	if stream != nil {
		// Lazy ingestion: the controller pulls submissions from the
		// stream as the virtual clock advances, so only pending and
		// running jobs are ever materialized.
		err = ctl.LoadWorkloadStream(stream)
	} else {
		err = ctl.LoadWorkload(jobs)
	}
	if err != nil {
		cleanup()
		return nil, func() {}, err
	}
	return ctl, cleanup, nil
}

// Run executes one scenario to completion.
func Run(s Scenario) Result { return RunWith(s, nil) }

// RunWith executes one scenario like Run, invoking observe (when
// non-nil) on the built controller before the replay starts — the
// attach point of the invariant checker and other test probes.
func RunWith(s Scenario, observe func(*rjms.Controller)) Result {
	res := Result{Scenario: s}
	ctl, cleanup, err := Build(s)
	if err != nil {
		res.Err = err
		return res
	}
	defer cleanup()
	res.MaxPower = ctl.Cluster().MaxPower()
	res.Cores = ctl.Cluster().Cores()
	if observe != nil {
		observe(ctl)
	}

	if s.Capped() {
		start, end := s.Window()
		budget := power.CapFraction(s.CapFraction, ctl.Cluster().MaxPower())
		plan, err := ctl.ReservePowerCap(start, end, budget)
		if err != nil {
			res.Err = err
			return res
		}
		res.Plan = plan
	}
	sum, err := ctl.Run(s.Duration())
	if err != nil {
		res.Err = err
		return res
	}
	res.Summary = sum
	res.Samples = ctl.Samples()
	return res
}

// cancelSteps bounds how stale a cancellation check can get: a replay
// advances in duration/cancelSteps chunks of virtual time, probing ctx
// between chunks, so a cancelled scenario returns after at most ~1/128
// of its remaining wall-clock cost.
const cancelSteps = 128

// RunContextWith executes one scenario like RunWith but checks ctx
// between bounded steps of virtual time, so a cancellation aborts the
// replay mid-run instead of after it: the result then carries ctx.Err()
// plus the samples recorded so far. Uncancelled runs are bit-identical
// to Run's (Start + stepped Advance + Finish is the same event sequence
// as one Run to the horizon — the federation broker's lockstep
// contract; TestRunContextWithMatchesRun pins it).
func RunContextWith(ctx context.Context, s Scenario, observe func(*rjms.Controller)) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	res := Result{Scenario: s}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	ctl, cleanup, err := Build(s)
	if err != nil {
		res.Err = err
		return res
	}
	defer cleanup()
	res.MaxPower = ctl.Cluster().MaxPower()
	res.Cores = ctl.Cluster().Cores()
	if observe != nil {
		observe(ctl)
	}

	if s.Capped() {
		start, end := s.Window()
		budget := power.CapFraction(s.CapFraction, ctl.Cluster().MaxPower())
		plan, err := ctl.ReservePowerCap(start, end, budget)
		if err != nil {
			res.Err = err
			return res
		}
		res.Plan = plan
	}
	dur := s.Duration()
	if err := ctl.Start(dur); err != nil {
		res.Err = err
		return res
	}
	step := dur / cancelSteps
	if step < 1 {
		step = 1
	}
	for t := step; ; t += step {
		if t > dur {
			t = dur
		}
		if err := ctx.Err(); err != nil {
			res.Err = err
			res.Samples = ctl.Samples()
			return res
		}
		if err := ctl.Advance(t); err != nil {
			res.Err = err
			return res
		}
		if t == dur {
			break
		}
	}
	res.Summary = ctl.Finish()
	res.Samples = ctl.Samples()
	return res
}

// RunAll executes scenarios on a worker pool (one controller per worker;
// controllers are single-threaded, the sweep is embarrassingly parallel).
// workers <= 0 means GOMAXPROCS. Results keep the input order.
//
// RunAll is the minimal pool; the internal/experiment package layers
// grid expansion, per-cell timing, progress callbacks, aggregation and
// CSV/JSON/ASCII export on top — prefer it for new sweep code.
func RunAll(scenarios []Scenario, workers int) []Result {
	results, _ := RunAllContext(context.Background(), scenarios, workers)
	return results
}

// RunAllContext is RunAll with cancellation: when ctx is cancelled the
// feeder stops handing out scenarios, the in-flight workers finish
// their cell, and the call returns the partial results plus ctx.Err().
// The pool is always fully drained before returning — a worker never
// outlives the call, and the feeder never blocks on workers that quit
// (the early-exit goroutine leak the old hand-rolled pools risked).
// Cells that never ran carry their scenario and ctx.Err().
func RunAllContext(ctx context.Context, scenarios []Scenario, workers int) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	results := make([]Result, len(scenarios))
	ran := make([]bool, len(scenarios)) // index-owned by the cell's worker
	if workers <= 1 {
		for i, s := range scenarios {
			if ctx.Err() != nil {
				break
			}
			results[i] = RunContextWith(ctx, s, nil)
			ran[i] = true
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					// Drain without running once cancelled, so the
					// feeder can never block on a quit worker.
					if ctx.Err() == nil {
						results[i] = RunContextWith(ctx, scenarios[i], nil)
						ran[i] = true
					}
				}
			}()
		}
	feed:
		for i := range scenarios {
			select {
			case idx <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(idx)
		wg.Wait()
	}
	err := ctx.Err()
	for i := range results {
		if !ran[i] {
			results[i] = Result{Scenario: scenarios[i], Err: err}
		}
	}
	return results, err
}
