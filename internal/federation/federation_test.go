package federation

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/power"
	"repro/internal/replay"
)

// testScenario is the standard small federation: three members on two
// racks each, member 0 bursty and overloaded, members 1-2 lightly
// loaded — the asymmetric fleet the division policies disagree on.
func testScenario(div replay.Division) replay.FederationScenario {
	return replay.FederationLibraryScenario(3, 2, 0.5, div)
}

func TestValidateRejectsBadScenarios(t *testing.T) {
	fs := testScenario(replay.DivideProRata)
	fs.Members = nil
	if r := Run(fs); r.Err == nil {
		t.Error("no members: want error")
	}
	fs = testScenario(replay.DivideProRata)
	fs.GlobalCapFraction = 1.2
	if r := Run(fs); r.Err == nil {
		t.Error("cap fraction 1.2: want error")
	}
	fs = testScenario(replay.DivideProRata)
	fs.Members[1].CapFraction = 0.4
	if r := Run(fs); r.Err == nil {
		t.Error("member-level cap: want error")
	}
}

// TestLockstepMatchesSingleRun pins the broker's core premise: driving
// a controller with Start + epoch-sized Advance steps + Finish replays
// the exact event sequence of one Run call.
func TestLockstepMatchesSingleRun(t *testing.T) {
	s := replay.FederationMembers(1, 2)[0]
	dur := s.Duration()

	one, cleanup1, err := replay.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup1()
	sumOne, err := one.Run(dur)
	if err != nil {
		t.Fatal(err)
	}

	stepped, cleanup2, err := replay.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup2()
	if err := stepped.Start(dur); err != nil {
		t.Fatal(err)
	}
	for tm := int64(900); tm < dur; tm += 900 {
		if err := stepped.Advance(tm); err != nil {
			t.Fatal(err)
		}
	}
	if err := stepped.Advance(dur); err != nil {
		t.Fatal(err)
	}
	sumStepped := stepped.Finish()

	if !reflect.DeepEqual(sumOne, sumStepped) {
		t.Errorf("stepped summary differs from single run:\none:     %+v\nstepped: %+v", sumOne, sumStepped)
	}
	if !reflect.DeepEqual(one.Samples(), stepped.Samples()) {
		t.Error("stepped sample series differs from single run")
	}
}

func TestFederationDeterminism(t *testing.T) {
	for _, div := range []replay.Division{replay.DivideProRata, replay.DivideDemand} {
		a := Run(testScenario(div))
		b := Run(testScenario(div))
		if a.Err != nil || b.Err != nil {
			t.Fatalf("%v: run errors %v / %v", div, a.Err, b.Err)
		}
		if !reflect.DeepEqual(a.Epochs, b.Epochs) {
			t.Errorf("%v: epoch share series differ between identical runs", div)
		}
		for i := range a.Members {
			if !reflect.DeepEqual(a.Members[i].Summary, b.Members[i].Summary) {
				t.Errorf("%v: member %d summaries differ between identical runs", div, i)
			}
		}
	}
}

// TestSharesConserveGlobalBudget: no division policy may hand out more
// than the site budget, and the demand division must never cut a member
// below zero.
func TestSharesConserveGlobalBudget(t *testing.T) {
	for _, div := range []replay.Division{replay.DivideProRata, replay.DivideDemand} {
		r := Run(testScenario(div))
		if r.Err != nil {
			t.Fatalf("%v: %v", div, r.Err)
		}
		if len(r.Epochs) == 0 {
			t.Fatalf("%v: no epoch records", div)
		}
		for _, ep := range r.Epochs {
			var sum power.Watts
			for i, c := range ep.CapW {
				if c < 0 {
					t.Fatalf("%v: t=%d member %d negative share %v", div, ep.T, i, c)
				}
				sum += c
			}
			if float64(sum) > float64(r.GlobalBudgetW)*(1+1e-9) {
				t.Fatalf("%v: t=%d shares sum to %v, budget %v", div, ep.T, sum, r.GlobalBudgetW)
			}
		}
	}
}

// TestGlobalCapSafety: the summed member draw must respect the site
// budget at every sample — members start idle (well under their initial
// shares) and the launch checks keep each under its cap, so the sum
// stays under the global budget for the whole run.
func TestGlobalCapSafety(t *testing.T) {
	for _, div := range []replay.Division{replay.DivideProRata, replay.DivideDemand} {
		r := Run(testScenario(div))
		if r.Err != nil {
			t.Fatalf("%v: %v", div, r.Err)
		}
		if len(r.Global) == 0 {
			t.Fatalf("%v: no global samples", div)
		}
		for _, g := range r.Global {
			if float64(g.Power) > float64(r.GlobalBudgetW)*(1+1e-9) {
				t.Fatalf("%v: t=%d site draw %v exceeds budget %v", div, g.T, g.Power, r.GlobalBudgetW)
			}
		}
	}
}

// TestDemandBeatsProRataOnBurstyFleet is the headline claim of the
// demand-driven division: with one backlogged bursty member among idle
// ones, reallocating idle headroom must improve aggregate stretch.
func TestDemandBeatsProRataOnBurstyFleet(t *testing.T) {
	pro := Run(testScenario(replay.DivideProRata))
	dem := Run(testScenario(replay.DivideDemand))
	if pro.Err != nil || dem.Err != nil {
		t.Fatalf("run errors: %v / %v", pro.Err, dem.Err)
	}
	if pro.JobsCompleted == 0 || dem.JobsCompleted == 0 {
		t.Fatal("degenerate runs: no completions")
	}
	if dem.MeanBSLD >= pro.MeanBSLD {
		t.Errorf("demand division mean BSLD %.3f not better than pro-rata %.3f",
			dem.MeanBSLD, pro.MeanBSLD)
	}
	if dem.JobsLaunched < pro.JobsLaunched {
		t.Errorf("demand division launched %d jobs, pro-rata %d — reallocation should not launch fewer",
			dem.JobsLaunched, pro.JobsLaunched)
	}
	// The reallocation must show up in the share series: at some epoch
	// the bursty member's budget exceeds its static pro-rata share.
	share0 := float64(dem.GlobalBudgetW) * float64(dem.Members[0].MaxPower) / sumMaxPower(dem)
	raised := false
	for _, ep := range dem.Epochs {
		if float64(ep.CapW[0]) > share0*1.05 {
			raised = true
			break
		}
	}
	if !raised {
		t.Error("demand division never raised the bursty member above its pro-rata share")
	}
}

func sumMaxPower(r Result) float64 {
	var s float64
	for _, m := range r.Members {
		s += float64(m.MaxPower)
	}
	return s
}

// TestEpochBoundaryCount: redistribution happens at every interior
// epoch boundary, whatever the epoch length.
func TestEpochBoundaryCount(t *testing.T) {
	fs := testScenario(replay.DivideDemand)
	fs.EpochSec = 3600
	r := Run(fs)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	want := int(math.Ceil(float64(fs.Duration())/3600)) - 1
	if len(r.Epochs) != want {
		t.Errorf("epochs recorded = %d, want %d", len(r.Epochs), want)
	}
}
