// Package power provides the power and energy accounting substrate of the
// powercapping RJMS: per-node power profiles (the Figure 4 table of the
// paper), cluster-level power bookkeeping, power caps expressed in watts or
// as a fraction of the cluster maximum, and exact piecewise-constant energy
// integration used by the experiment harness.
package power

import (
	"fmt"
	"math"
)

// Watts is an instantaneous power draw.
type Watts float64

// String renders the value with an adaptive unit (W, kW, MW).
func (w Watts) String() string {
	a := math.Abs(float64(w))
	switch {
	case a >= 1e6:
		return fmt.Sprintf("%.3f MW", float64(w)/1e6)
	case a >= 1e3:
		return fmt.Sprintf("%.2f kW", float64(w)/1e3)
	default:
		return fmt.Sprintf("%.1f W", float64(w))
	}
}

// Joules is an amount of energy.
type Joules float64

// KWh converts the energy to kilowatt-hours.
func (j Joules) KWh() float64 { return float64(j) / 3.6e6 }

// String renders the value with an adaptive unit (J, kJ, MJ, GJ).
func (j Joules) String() string {
	a := math.Abs(float64(j))
	switch {
	case a >= 1e9:
		return fmt.Sprintf("%.3f GJ", float64(j)/1e9)
	case a >= 1e6:
		return fmt.Sprintf("%.3f MJ", float64(j)/1e6)
	case a >= 1e3:
		return fmt.Sprintf("%.2f kJ", float64(j)/1e3)
	default:
		return fmt.Sprintf("%.1f J", float64(j))
	}
}

// Energy accumulated by drawing w watts for seconds s.
func Energy(w Watts, seconds int64) Joules {
	return Joules(float64(w) * float64(seconds))
}

// Cap is a power budget. The zero value means "no cap".
type Cap struct {
	watts Watts
	set   bool
}

// NoCap is the absent power budget.
var NoCap = Cap{}

// CapWatts builds a cap from an absolute wattage. Non-positive wattages
// yield a cap of zero watts, which forbids any consumption.
func CapWatts(w Watts) Cap {
	if w < 0 {
		w = 0
	}
	return Cap{watts: w, set: true}
}

// CapFraction builds a cap as a fraction lambda (0..1] of a maximum power.
// This mirrors the paper's normalized powercap P = lambda * N * Pmax.
func CapFraction(lambda float64, max Watts) Cap {
	if lambda < 0 {
		lambda = 0
	}
	return CapWatts(Watts(lambda * float64(max)))
}

// IsSet reports whether a budget is active.
func (c Cap) IsSet() bool { return c.set }

// Watts returns the budget. Only meaningful when IsSet.
func (c Cap) Watts() Watts { return c.watts }

// Allows reports whether drawing w watts stays within the budget.
// An unset cap allows everything.
func (c Cap) Allows(w Watts) bool { return !c.set || w <= c.watts }

// Headroom returns how many watts remain below the cap at draw w
// (negative when over budget). An unset cap has infinite headroom.
func (c Cap) Headroom(w Watts) Watts {
	if !c.set {
		return Watts(math.Inf(1))
	}
	return c.watts - w
}

// Fraction returns the cap as a fraction of max, or +Inf when unset.
func (c Cap) Fraction(max Watts) float64 {
	if !c.set {
		return math.Inf(1)
	}
	if max == 0 {
		return 0
	}
	return float64(c.watts) / float64(max)
}

// String implements fmt.Stringer.
func (c Cap) String() string {
	if !c.set {
		return "uncapped"
	}
	return c.watts.String()
}
