package service_test

import (
	"net/url"
	"testing"

	"repro/internal/service"
	"repro/internal/service/storetest"
)

// FuzzParseListFilter pins the list API's parameter handling on
// arbitrary query strings (seed corpus inline plus the checked-in
// files under testdata/fuzz/): parsing never panics, and any filter it
// accepts must be executable — matching a record and paging a store
// without error — since a 200 listing computed from a half-parsed
// filter would quietly hand a caller the wrong runs.
func FuzzParseListFilter(f *testing.F) {
	seeds := []string{
		"",
		"state=done&hash=ab12&limit=10",
		"policy=SHUT&kind=smalljob&name=sweep&tenant=alice",
		"since=1700000000&until=2026-01-02T03:04:05Z",
		"cursor=42&limit=2",
		"cursor=-1",
		"cursor=banana",
		"limit=-5",
		"limit=999999999999999999999",
		"since=yesterday",
		"until=1e9",
		"state=%zz",
		"cursor=42;limit=2",
		"a=1&a=2&a=3&state=done&state=failed",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, query string) {
		q, err := url.ParseQuery(query)
		if err != nil {
			return // not a query string; nothing to parse a filter from
		}
		filter, err := service.ParseListFilter(q)
		if err != nil {
			// Rejections must be classified API errors (the HTTP layer
			// turns them into 400s), never bare failures.
			apiErr, ok := err.(*service.Error)
			if !ok || apiErr.Status != 400 {
				t.Fatalf("ParseListFilter(%q) error %v is not a 400", query, err)
			}
			return
		}
		if filter.Limit < 0 {
			t.Fatalf("accepted filter has negative limit: %+v", filter)
		}
		// An accepted filter must execute: Match on a sample record and
		// List against a populated store, both without error.
		rec := storetest.SampleRecord(t, "fuzz", 7)
		filter.Match(rec)
		store := service.NewMemStore(0, nil)
		if err := store.Put(rec); err != nil {
			t.Fatal(err)
		}
		if _, _, err := store.List(filter); err != nil {
			t.Fatalf("accepted filter %+v failed to list: %v", filter, err)
		}
	})
}
