// Command simd serves the simulator as a long-running daemon: a JSON
// HTTP API accepting declarative sim.RunSpec submissions, executing
// them on a bounded worker scheduler with a content-addressed result
// cache (identical specs under load run once), per-run telemetry in an
// in-memory time-series store, SSE progress streams and graceful drain
// on SIGINT/SIGTERM.
//
//	simd -listen :8080
//	curl -s -X POST -d @examples/specs/quick_single.json localhost:8080/v1/runs
//	curl -s localhost:8080/v1/runs/r000001
//	curl -s 'localhost:8080/v1/runs/r000001/metrics?series=power&res=300'
//	curl -s localhost:8080/v1/runs/r000001/report?format=ascii
//
// The powersched and expfig commands speak this API through their
// -remote flag, so any locally expressible run can be executed by a
// shared daemon instead.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/tsdb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is the testable entry point: parse flags, serve until the context
// (or a termination signal) ends, drain, exit. When ready is non-nil it
// receives the bound address once the listener is up (tests bind
// ":0").
func run(args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("simd", flag.ExitOnError)
	var (
		listen       = fs.String("listen", ":8080", "HTTP listen address")
		workers      = fs.Int("workers", 2, "concurrent run executions")
		sweepWorkers = fs.Int("sweep-workers", 0, "per-run sweep pool clamp (0 = leave specs as submitted)")
		queueDepth   = fs.Int("queue", 256, "pending-submission queue bound")
		maxRuns      = fs.Int("max-runs", 1024, "retained run records before terminal runs are evicted")
		points       = fs.Int("tsdb-points", 512, "telemetry ring capacity per series level")
		levels       = fs.Int("tsdb-levels", 4, "telemetry downsampling levels")
		maxSeries    = fs.Int("tsdb-series", 128, "telemetry series cap per run (4 per sweep cell; wider sweeps report dropped_series)")
		drainSecs    = fs.Int64("drain-timeout", 60, "seconds to wait for in-flight runs on shutdown before hard-cancelling them")
		archiveDir   = fs.String("archive-dir", "", "directory for the durable run archive (empty = in-memory only; results do not survive restarts)")
		archiveMax   = fs.Int("archive-max", 0, "archived run records before the oldest are pruned (0 = unbounded)")
		archiveAge   = fs.Duration("archive-max-age", 0, "archived run records older than this are pruned at boot and on store (0 = keep forever)")
		tokensFile   = fs.String("tokens-file", "", `JSON tenant/token file enabling bearer-token auth and per-tenant quotas ({"tenants":[{"name":...,"token":...,"max_queued":...,"rate_per_min":...}]})`)
		logLevel     = fs.String("log-level", "info", "structured log threshold on stderr: debug, info, warn or error")

		gateway   = fs.Bool("gateway", false, "run as a fleet gateway: route submissions to joined workers instead of executing locally")
		lease     = fs.Duration("lease", 15*time.Second, "gateway worker-lease TTL; a worker silent past it is dead and its runs requeue")
		join      = fs.String("join", "", "gateway URL to join as a worker (this daemon executes runs the gateway routes to it)")
		name      = fs.String("name", "", "stable worker name for fleet membership (default: the advertised address)")
		advertise = fs.String("advertise", "", "base URL the gateway should dial this worker at (default: derived from -listen)")
		heartbeat = fs.Duration("heartbeat", 0, "worker heartbeat cadence (default: a third of the gateway's lease TTL)")
		joinToken = fs.String("join-token", "", "bearer token for the gateway's fleet endpoints (admin token when the gateway authenticates)")
	)
	fs.Parse(args)

	if *gateway && *join != "" {
		return errors.New("simd: -gateway and -join are mutually exclusive")
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return fmt.Errorf("simd: %w", err)
	}
	logger := obs.NewLogger(os.Stderr, level)
	if *gateway {
		return runGateway(out, ready, gatewayFlags{
			listen: *listen, dispatchers: *workers, queueDepth: *queueDepth,
			lease: *lease, drainSecs: *drainSecs, tokensFile: *tokensFile,
			logger: logger,
		})
	}

	cfg := service.Config{
		Logger:       logger,
		Workers:      *workers,
		SweepWorkers: *sweepWorkers,
		QueueDepth:   *queueDepth,
		MaxRuns:      *maxRuns,
		TSDB:         tsdb.Options{PointsPerLevel: *points, Levels: *levels, MaxSeriesPerRun: *maxSeries},
	}
	if *archiveDir != "" {
		fsStore, err := service.OpenFSStore(*archiveDir, service.FSOptions{MaxRecords: *archiveMax, MaxAge: *archiveAge})
		if err != nil {
			return fmt.Errorf("opening archive: %w", err)
		}
		for _, f := range fsStore.Skipped() {
			fmt.Fprintf(out, "simd: archive: skipping unreadable %s\n", f)
		}
		cfg.Archive = fsStore
	}
	if *tokensFile != "" {
		tenants, err := service.LoadTokens(*tokensFile)
		if err != nil {
			return fmt.Errorf("loading tokens: %w", err)
		}
		auth, err := service.NewAuth(tenants)
		if err != nil {
			return err
		}
		cfg.Auth = auth
		fmt.Fprintf(out, "simd: auth enabled for %d tenants\n", len(tenants))
	}
	srv := service.New(cfg)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler: srv.Handler(),
		// Slow-client bounds: headers cannot trickle forever and idle
		// keep-alives are reaped. No ReadTimeout — it is an absolute
		// per-connection deadline that would sever long-lived SSE
		// /events streams mid-run; request bodies are bounded by size
		// (MaxBytesReader in the handler) instead of time.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(out, "simd listening on %s (%d workers, queue %d)\n", ln.Addr(), *workers, *queueDepth)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	if *join != "" {
		addr := advertiseURL(*advertise, ln.Addr().String())
		workerName := *name
		if workerName == "" {
			workerName = addr
		}
		fm := &service.FleetMember{
			Gateway:   *join,
			Name:      workerName,
			Advertise: addr,
			Token:     *joinToken,
			Interval:  *heartbeat,
		}
		fmt.Fprintf(out, "simd joining fleet %s as %s (%s)\n", *join, workerName, addr)
		go func() { _ = fm.Run(ctx) }()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections and submissions, let
	// in-flight runs finish (bounded by -drain-timeout), then exit 0.
	// The two shutdowns must overlap: SSE followers of queued runs hold
	// their connections open until those runs turn terminal, which is
	// exactly what the service drain's queued-run cancellation causes —
	// sequencing the HTTP shutdown first would let one follower burn
	// the whole budget and force a hard cancel of healthy runs.
	fmt.Fprintln(out, "simd draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSecs)*time.Second)
	defer cancel()
	svcDone := make(chan error, 1)
	go func() { svcDone <- srv.Shutdown(drainCtx) }()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		<-svcDone
		return err
	}
	if err := <-svcDone; err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(out, "simd drained: %d runs served, %d executions, %d cache hits\n",
		st.Runs, st.Executions, st.CacheHits)
	return nil
}

// gatewayFlags carries the subset of flags the gateway mode consumes.
type gatewayFlags struct {
	listen      string
	dispatchers int
	queueDepth  int
	lease       time.Duration
	drainSecs   int64
	tokensFile  string
	logger      *obs.Logger
}

// runGateway serves the fleet gateway: same /v1 surface, no local
// execution — submissions route to joined workers by rendezvous hashing
// on the spec hash, and a worker whose lease lapses has its in-flight
// runs requeued elsewhere.
func runGateway(out io.Writer, ready chan<- string, gf gatewayFlags) error {
	cfg := service.GatewayConfig{
		Dispatchers: gf.dispatchers,
		QueueDepth:  gf.queueDepth,
		LeaseTTL:    gf.lease,
		Logger:      gf.logger,
	}
	if gf.tokensFile != "" {
		tenants, err := service.LoadTokens(gf.tokensFile)
		if err != nil {
			return fmt.Errorf("loading tokens: %w", err)
		}
		auth, err := service.NewAuth(tenants)
		if err != nil {
			return err
		}
		cfg.Auth = auth
		fmt.Fprintf(out, "simd: auth enabled for %d tenants\n", len(tenants))
	}
	gw := service.NewGateway(cfg)

	ln, err := net.Listen("tcp", gf.listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(out, "simd gateway listening on %s (lease %s, queue %d)\n", ln.Addr(), cfg.LeaseTTL, gf.queueDepth)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(out, "simd gateway draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Duration(gf.drainSecs)*time.Second)
	defer cancel()
	gwDone := make(chan error, 1)
	go func() { gwDone <- gw.Shutdown(drainCtx) }()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		<-gwDone
		return err
	}
	if err := <-gwDone; err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	st := gw.Stats(context.Background()).Gateway
	fmt.Fprintf(out, "simd gateway drained: %d runs routed, %d cache hits, %d requeues\n",
		st.Runs, st.CacheHits, st.Requeues)
	return nil
}

// advertiseURL resolves the worker address the gateway dials: the
// explicit -advertise when given, else the bound listen address with
// unspecified hosts (":8080", "0.0.0.0", "[::]") rewritten to loopback
// — the single-machine default; multi-host fleets must advertise a
// reachable name explicitly.
func advertiseURL(advertise, bound string) string {
	if advertise != "" {
		if !strings.Contains(advertise, "://") {
			return "http://" + advertise
		}
		return advertise
	}
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return "http://" + bound
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}
