package core

import (
	"repro/internal/cluster"
	"repro/internal/dvfs"
	"repro/internal/power"
)

// SelectFreq runs the online part (Algorithm 2) for one job about to be
// dispatched: starting from the highest frequency of the policy ladder,
// it lowers the frequency until admit accepts, and fails when even the
// ladder minimum is refused ("Impossible to schedule the job now").
// Policies that may not scale (SHUT, IDLE) probe only the nominal
// frequency; NONE skips admission entirely.
//
// admit receives a candidate frequency and decides whether the cluster
// stays within every applicable power budget if the job starts at it —
// the controller checks the currently active cap against the actual draw
// and future cap windows against the draw projected after the planned
// switch-offs (see SelectFreqUnderCap for the single-budget form).
func SelectFreq(pm PolicyModel, admit func(dvfs.Freq) bool) (dvfs.Freq, bool) {
	if pm.Policy == PolicyNone {
		return pm.Ladder.Max(), true
	}
	// Descending index walk, not Ladder.Descending(): this probe runs
	// per backfill candidate and the reversed-copy allocation dominated
	// the scheduler's heap churn.
	for i := len(pm.Ladder) - 1; i >= 0; i-- {
		if admit(pm.Ladder[i]) {
			return pm.Ladder[i], true
		}
		if !pm.Policy.CanScale() {
			break // SHUT/IDLE probe only the nominal frequency
		}
	}
	return 0, false
}

// SelectFreqUnderCap is the single-budget form of SelectFreq: the
// candidate draw is the current cluster power plus the exact occupation
// delta of the allocation — jobs filling already-busy nodes at or below
// the node's frequency add nothing and therefore "always pass the
// powercapping criteria". capFor returns the effective budget when the
// job runs at frequency f (the tightest cap over the job's expected
// span, which lengthens as f drops because the walltime is stretched by
// the degradation model of Section V).
func SelectFreqUnderCap(c *cluster.Cluster, pm PolicyModel, nodes []cluster.NodeID, capFor func(dvfs.Freq) power.Cap) (dvfs.Freq, bool) {
	return SelectFreq(pm, func(f dvfs.Freq) bool {
		return capFor(f).Allows(c.Power() + c.OccupyDelta(nodes, f))
	})
}

// OptimalClusterFreq returns the highest ladder frequency at which every
// currently idle node could be put to work while the cluster stays within
// the budget — the "optimal CPU frequency" notion of Section IV-B the
// scheduler reasons about between jobs. Returns false when even the
// minimum frequency would blow the budget.
func OptimalClusterFreq(c *cluster.Cluster, pm PolicyModel, budget power.Cap) (dvfs.Freq, bool) {
	if !budget.IsSet() {
		return pm.Ladder.Max(), true
	}
	prof := c.Profile()
	idle := c.Count(cluster.StateIdle)
	current := c.Power()
	for _, f := range pm.Ladder.Descending() {
		delta := power.Watts(float64(idle) * float64(prof.Busy(f)-prof.Idle()))
		if budget.Allows(current + delta) {
			return f, true
		}
	}
	return 0, false
}
