package experiment

import (
	"fmt"
	"strings"

	"repro/internal/ascii"
)

// ASCII renders the sweep as text: a header with the parallel-run
// accounting, a summary table (one line per cell), and per-workload bar
// charts of the Figure 8 normalized metrics. width sizes the bars.
func (t Table) ASCII(width int) string {
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d configurations, %d workers, %v wall clock",
		t.Name, len(t.Rows), t.Workers, t.Elapsed.Round(1e6))
	if t.Workers > 1 {
		fmt.Fprintf(&b, " (serial cost %v, speedup %.2fx)",
			t.SerialCost().Round(1e6), t.Speedup())
	}
	b.WriteString("\n\n")

	fmt.Fprintf(&b, "%-28s %10s %10s %10s %8s %8s %9s %7s\n",
		"scenario", "energy", "work", "launched", "normE", "normW", "wait(s)", "killed")
	for _, r := range t.Rows {
		if r.Err != nil {
			fmt.Fprintf(&b, "%-28s ERROR: %v\n", r.Scenario.Name, r.Err)
			continue
		}
		s := r.Summary
		fmt.Fprintf(&b, "%-28s %10.3g %10.3g %6d/%-4d %8.3f %8.3f %9.0f %7d\n",
			r.Scenario.Name, float64(s.EnergyJ), s.WorkCoreSec,
			s.JobsLaunched, s.JobsSubmitted, s.NormEnergy, s.NormWork,
			s.MeanWaitSec, s.JobsKilled)
	}

	// Group the bars the way Figure 8 stacks its rows: one block per
	// workload, cells in grid order within it.
	var order []string
	byWorkload := map[string][]Result{}
	for _, r := range t.Rows {
		if r.Err != nil {
			continue
		}
		k := r.Scenario.Workload.Kind.String()
		if _, ok := byWorkload[k]; !ok {
			order = append(order, k)
		}
		byWorkload[k] = append(byWorkload[k], r)
	}
	for _, wl := range order {
		rs := byWorkload[wl]
		fmt.Fprintf(&b, "\n== workload %s ==\n", wl)
		var energy, work, launched []ascii.Bar
		for _, r := range rs {
			label := r.Scenario.Label()
			energy = append(energy, ascii.Bar{Label: label, Value: r.Summary.NormEnergy})
			work = append(work, ascii.Bar{Label: label, Value: r.Summary.NormWork})
			launched = append(launched, ascii.Bar{Label: label, Value: r.Summary.NormLaunched})
		}
		b.WriteString(ascii.BarChart(energy, width, 1, "Energy (normalized)"))
		b.WriteString(ascii.BarChart(work, width, 1, "Work (fraction of cores x duration)"))
		b.WriteString(ascii.BarChart(launched, width, 1, "Jobs launched (fraction of submitted)"))
	}
	return b.String()
}
