// Package federation runs fleets of independent powercap-aware RJMS
// controllers under one shared site power budget — the multi-cluster
// extension of the paper's single-cluster controller. A Broker owns N
// member clusters (one rjms.Controller per member, each on its own
// simengine.Engine, preserving the single-goroutine contract), drives
// them in lockstep epochs over virtual time, and redistributes the
// global budget across members at every epoch boundary through
// per-member open-ended powercap reservations.
//
// Everything is deterministic: members are built, advanced, inspected
// and re-budgeted in member-index order by one goroutine, so a
// federation cell replays bit-identically — the property the
// experiment-sweep fingerprints rely on. Parallelism lives one layer
// up, in the sweep engine, which runs many independent federations at
// once.
//
// Two division policies are provided (replay.Division): static
// pro-rata by member maximum draw, and demand-driven reallocation that
// moves the launch headroom of idle members to backlogged ones at
// every epoch, never cutting a member below its current draw. As long
// as the fleet's summed draw fits the budget the shares sum to at most
// the global budget; when even the irreducible draws exceed it, every
// share pins at its member's draw (the single-cluster over-budget
// regime, shared with DVFS members under very low caps).
package federation

import (
	"context"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/replay"
	"repro/internal/reservation"
	"repro/internal/rjms"
	"repro/internal/signal"
)

// MemberResult is the per-cluster outcome of a federation run.
type MemberResult struct {
	Name     string
	Summary  metrics.Summary
	Samples  []metrics.Sample
	MaxPower power.Watts
	Cores    int
	// FinalCapW is the member's budget at the end of the run (equals
	// the pro-rata share under DivideProRata).
	FinalCapW power.Watts
}

// EpochShares records the division chosen at one epoch boundary.
type EpochShares struct {
	T int64
	// BudgetW is the effective global budget divided at this boundary —
	// constant without a budget signal, the signal-scaled value with
	// one.
	BudgetW power.Watts
	// CapW is each member's budget after the redistribution, in member
	// order.
	CapW []power.Watts
	// PendingCores is each member's queued demand at the boundary — the
	// signal the demand-driven division acted on.
	PendingCores []int
}

// GlobalSample is one point of the site-level time series: the summed
// member draws against the global budget. Member sample series align
// exactly (same interval, same horizon), so the sum is well-defined.
type GlobalSample struct {
	T     int64
	Power power.Watts
	// Cap is the effective global budget at T: constant without a
	// budget signal, the epoch-held signal value with one.
	Cap power.Watts
}

// Result is the outcome of one federation run.
type Result struct {
	Scenario      replay.FederationScenario
	GlobalBudgetW power.Watts
	Members       []MemberResult
	Epochs        []EpochShares
	Global        []GlobalSample

	// Aggregates across members.
	EnergyJ       power.Joules
	WorkCoreSec   float64
	JobsSubmitted int
	JobsLaunched  int
	JobsCompleted int
	JobsKilled    int
	// MeanBSLD is the completed-job-weighted mean bounded slowdown
	// across members — the aggregate stretch the division policies are
	// compared on.
	MeanBSLD    float64
	MaxBSLD     float64
	MeanWaitSec float64 // launched-job-weighted
	// PeakGlobalW is the peak of the summed member draws.
	PeakGlobalW power.Watts

	Err error
}

// Observer is the test hook of RunWith: it sees every member's
// controller after its workload is loaded and its reservation placed,
// before any virtual time passes — where the invariant checker
// attaches.
type Observer func(i int, name string, ctl *rjms.Controller)

// member is the broker's bookkeeping for one cluster.
type member struct {
	name     string
	ctl      *rjms.Controller
	cleanup  func()
	capID    int
	maxPower power.Watts
	capW     power.Watts
}

// Run executes one federation scenario to completion.
func Run(fs replay.FederationScenario) Result { return RunWith(fs, nil) }

// RunWith executes one federation scenario, invoking observe on each
// member as it is assembled.
func RunWith(fs replay.FederationScenario, observe Observer) Result {
	return RunContext(context.Background(), fs, observe)
}

// RunContext is RunWith with cancellation: ctx is checked at every
// epoch boundary (the broker's natural control points), so a cancelled
// federation returns within one epoch of member lockstep work, carrying
// ctx.Err() and whatever epochs completed. Uncancelled runs are
// identical to RunWith's.
func RunContext(ctx context.Context, fs replay.FederationScenario, observe Observer) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	res := Result{Scenario: fs}
	if err := fs.Validate(); err != nil {
		res.Err = err
		return res
	}

	// Assemble the fleet: controllers with loaded workloads, then the
	// global budget from the summed member maxima.
	members := make([]*member, 0, len(fs.Members))
	defer func() {
		for _, m := range members {
			m.cleanup()
		}
	}()
	var sumMax power.Watts
	for i, ms := range fs.Members {
		ctl, cleanup, err := replay.Build(ms)
		if err != nil {
			res.Err = fmt.Errorf("federation: member %d (%s): %w", i, ms.Name, err)
			return res
		}
		name := ms.Name
		if name == "" {
			name = fmt.Sprintf("member%d", i)
		}
		m := &member{name: name, ctl: ctl, cleanup: cleanup, maxPower: ctl.Cluster().MaxPower()}
		members = append(members, m)
		sumMax += m.maxPower
	}
	base := power.Watts(fs.GlobalCapFraction * float64(sumMax))
	sig, err := signal.Build(fs.BudgetSignal)
	if err != nil {
		res.Err = fmt.Errorf("federation: budget signal: %w", err)
		return res
	}
	// budgetAt is the effective site budget at an epoch boundary: the
	// cap-fraction base scaled by the signal, clamped into [0, sumMax].
	// Without a signal it is the constant base.
	budgetAt := func(t int64) power.Watts {
		b := power.Watts(float64(base) * sig.At(t))
		if b < 0 {
			b = 0
		}
		if b > sumMax {
			b = sumMax
		}
		return b
	}
	global := budgetAt(0)
	res.GlobalBudgetW = global

	// Initial division: both policies start pro-rata — with no demand
	// observed yet there is nothing to reallocate. Each member gets one
	// open-ended powercap reservation; its offline plan (switch-offs
	// under SHUT/MIX member policies) runs against this initial share.
	duration := fs.Duration()
	for i, m := range members {
		m.capW = proRataShare(global, m.maxPower, sumMax)
		id, _, err := m.ctl.ReservePowerCapID(0, reservation.Horizon, power.CapWatts(m.capW))
		if err != nil {
			res.Err = fmt.Errorf("federation: member %d (%s): %w", i, m.name, err)
			return res
		}
		m.capID = id
		if observe != nil {
			observe(i, m.name, m.ctl)
		}
		if err := m.ctl.Start(duration); err != nil {
			res.Err = fmt.Errorf("federation: member %d (%s): %w", i, m.name, err)
			return res
		}
	}

	// Lockstep epochs: advance every member to the boundary (member
	// order), then redistribute. All of this happens on one goroutine,
	// so every member engine keeps its single-goroutine contract and
	// the whole run is a deterministic function of the scenario.
	epoch := fs.Epoch()
	if epoch <= 0 {
		// Epoch() defaults a zero EpochSec and Validate rejects negative
		// ones, so this only trips on a future change — but a
		// non-positive epoch would loop forever below, so fail loudly.
		res.Err = fmt.Errorf("federation: epoch must be a positive duration, got %d", epoch)
		return res
	}
	for t := epoch; t < duration; t += epoch {
		if err := ctx.Err(); err != nil {
			res.Err = err
			return res
		}
		for i, m := range members {
			if err := m.ctl.Advance(t); err != nil {
				res.Err = fmt.Errorf("federation: member %d (%s) at t=%d: %w", i, m.name, t, err)
				return res
			}
		}
		global = budgetAt(t)
		shares := divide(fs.Division, global, members)
		rec := EpochShares{T: t, BudgetW: global, CapW: make([]power.Watts, len(members)), PendingCores: make([]int, len(members))}
		for i, m := range members {
			rec.PendingCores[i] = m.ctl.PendingCores()
			rec.CapW[i] = shares[i]
			if shares[i] != m.capW {
				m.capW = shares[i]
				if err := m.ctl.AdjustPowerCap(m.capID, power.CapWatts(shares[i])); err != nil {
					res.Err = fmt.Errorf("federation: member %d (%s) at t=%d: %w", i, m.name, t, err)
					return res
				}
			}
		}
		res.Epochs = append(res.Epochs, rec)
	}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}
	for i, m := range members {
		if err := m.ctl.Advance(duration); err != nil {
			res.Err = fmt.Errorf("federation: member %d (%s): %w", i, m.name, err)
			return res
		}
	}

	// Close out and aggregate.
	res.Members = make([]MemberResult, len(members))
	for i, m := range members {
		sum := m.ctl.Finish()
		res.Members[i] = MemberResult{
			Name:      m.name,
			Summary:   sum,
			Samples:   m.ctl.Samples(),
			MaxPower:  m.maxPower,
			Cores:     m.ctl.Cluster().Cores(),
			FinalCapW: m.capW,
		}
	}
	aggregate(&res)
	return res
}

// proRataShare is the static division: global scaled by the member's
// fraction of the summed maximum draw.
func proRataShare(global, maxPower, sumMax power.Watts) power.Watts {
	return power.Watts(float64(global) * float64(maxPower) / float64(sumMax))
}

// DemandReserveFraction is the fraction of its pro-rata share an idle
// member keeps under the demand-driven division: enough headroom to
// start launching the moment work arrives mid-epoch (the next boundary
// then reclassifies it as backlogged and refills it), small enough
// that most of an idle fleet's budget still moves to the backlogged
// members.
const DemandReserveFraction = 0.5

// MemberState is the per-member input of Divide: everything a division
// policy reads about one cluster at an epoch boundary.
type MemberState struct {
	// MaxPower is the member's maximum draw (its waterfill weight and
	// share ceiling).
	MaxPower power.Watts
	// Draw is the member's observed draw at the boundary (its share
	// floor — a cap below the draw would be unenforceable).
	Draw power.Watts
	// PendingCores is the member's queued demand.
	PendingCores int
}

// divide adapts the broker's member bookkeeping onto Divide.
func divide(div replay.Division, global power.Watts, members []*member) []power.Watts {
	states := make([]MemberState, len(members))
	for i, m := range members {
		states[i] = MemberState{
			MaxPower:     m.maxPower,
			Draw:         m.ctl.Cluster().Power(),
			PendingCores: m.ctl.PendingCores(),
		}
	}
	return Divide(div, global, states)
}

// Divide computes every member's budget for the next epoch. It returns
// shares in member order; their sum never exceeds the global budget
// (up to float rounding). Exported so the twin's live broker divides
// with exactly the batch broker's arithmetic.
func Divide(div replay.Division, global power.Watts, states []MemberState) []power.Watts {
	shares := make([]power.Watts, len(states))
	var sumMax power.Watts
	for _, s := range states {
		sumMax += s.MaxPower
	}
	if div == replay.DivideProRata {
		for i, s := range states {
			shares[i] = proRataShare(global, s.MaxPower, sumMax)
		}
		return shares
	}

	// Demand-driven: floor every member at its current draw (a cap
	// below the draw would be unenforceable — the controller only
	// gates launches, it does not evict) or at a reserve fraction of
	// its pro-rata share, whichever is higher — the reserve keeps an
	// idle member able to launch work that arrives mid-epoch instead
	// of stalling a full epoch at zero headroom. The remaining slack
	// water-fills over the backlogged members, weighted by machine
	// size and capped at each machine's maximum draw. Any slack left
	// once every backlogged member is saturated (or when nobody
	// queues) spreads pro-rata over the whole fleet, so the shares
	// always sum to the global budget.
	reserve := make([]power.Watts, len(states))
	maxima := make([]power.Watts, len(states))
	backlogged := make([]bool, len(states))
	var floorSum power.Watts
	anyBacklog := false
	for i, s := range states {
		reserve[i] = power.Watts(DemandReserveFraction * float64(proRataShare(global, s.MaxPower, sumMax)))
		if reserve[i] < s.Draw {
			reserve[i] = s.Draw
		}
		maxima[i] = s.MaxPower
		shares[i] = s.Draw
		floorSum += s.Draw
		if s.PendingCores > 0 {
			backlogged[i] = true
			anyBacklog = true
		}
	}
	slack := global - floorSum
	if slack <= 0 {
		// The fleet already draws the whole budget (or draws exceed it
		// — possible when members cannot shut nodes down); everyone is
		// pinned at their draw.
		return shares
	}
	// Stage 1: lift everyone toward the reserve floor, so idle members
	// keep launch headroom for work arriving mid-epoch.
	slack = waterfill(shares, slack, reserve, func(i int) bool { return true }, states)
	// Stage 2: the backlogged members split the real surplus.
	if anyBacklog && slack > 0 {
		slack = waterfill(shares, slack, maxima, func(i int) bool { return backlogged[i] }, states)
	}
	// Stage 3: residue spreads by machine size over everyone, capped at
	// the machine maximum; anything still left (whole fleet saturated)
	// is surplus the site simply does not spend.
	if slack > 0 {
		slack = waterfill(shares, slack, maxima, func(i int) bool { return true }, states)
	}
	return shares
}

// waterfill distributes amount over the eligible members proportionally
// to their maximum draw, capping each at its ceiling and re-spreading
// the overflow until nothing moves. It mutates shares and returns the
// undistributed remainder. Iteration is in member order throughout, so
// the float arithmetic is reproducible.
func waterfill(shares []power.Watts, amount power.Watts, ceiling []power.Watts, eligible func(int) bool, states []MemberState) power.Watts {
	active := make([]bool, len(states))
	for i := range states {
		active[i] = eligible(i) && shares[i] < ceiling[i]
	}
	for amount > 1e-9 {
		var weight power.Watts
		for i, s := range states {
			if active[i] {
				weight += s.MaxPower
			}
		}
		if weight == 0 {
			break
		}
		moved := false
		remaining := amount
		for i, s := range states {
			if !active[i] {
				continue
			}
			give := power.Watts(float64(remaining) * float64(s.MaxPower) / float64(weight))
			if room := ceiling[i] - shares[i]; give >= room {
				give = room
				active[i] = false
			}
			if give > 0 {
				shares[i] += give
				amount -= give
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return amount
}

// aggregate folds the member results into the site totals.
func aggregate(res *Result) {
	var bsldW float64 // completed-weighted BSLD accumulator
	var waitW float64 // launched-weighted wait accumulator
	for _, m := range res.Members {
		s := m.Summary
		res.EnergyJ += s.EnergyJ
		res.WorkCoreSec += s.WorkCoreSec
		res.JobsSubmitted += s.JobsSubmitted
		res.JobsLaunched += s.JobsLaunched
		res.JobsCompleted += s.JobsCompleted
		res.JobsKilled += s.JobsKilled
		bsldW += s.MeanBSLD * float64(s.JobsCompleted)
		waitW += s.MeanWaitSec * float64(s.JobsLaunched)
		if s.MaxBSLD > res.MaxBSLD {
			res.MaxBSLD = s.MaxBSLD
		}
	}
	if res.JobsCompleted > 0 {
		res.MeanBSLD = bsldW / float64(res.JobsCompleted)
	}
	if res.JobsLaunched > 0 {
		res.MeanWaitSec = waitW / float64(res.JobsLaunched)
	}

	// The site-level draw series: member sample series align (same
	// interval, same horizon), so sum pointwise. Guard against ragged
	// series anyway — a member with sampling disabled contributes none.
	n := 0
	for _, m := range res.Members {
		if len(m.Samples) > n {
			n = len(m.Samples)
		}
	}
	// The effective budget holds from one epoch boundary to the next:
	// GlobalBudgetW until the first recorded boundary, then each
	// boundary's BudgetW. Samples arrive in time order, so one cursor
	// over the epoch records prices every sample.
	ep := 0
	capAt := func(t int64) power.Watts {
		for ep < len(res.Epochs) && res.Epochs[ep].T <= t {
			ep++
		}
		if ep == 0 {
			return res.GlobalBudgetW
		}
		return res.Epochs[ep-1].BudgetW
	}
	for k := 0; k < n; k++ {
		var g GlobalSample
		ok := false
		for _, m := range res.Members {
			if k < len(m.Samples) {
				g.T = m.Samples[k].T
				g.Power += m.Samples[k].Power
				ok = true
			}
		}
		if ok {
			g.Cap = capAt(g.T)
			res.Global = append(res.Global, g)
			if g.Power > res.PeakGlobalW {
				res.PeakGlobalW = g.Power
			}
		}
	}
}
