// Package registry provides the small generic name->value registry the
// simulator's extension points share: powercap policies, workload
// kinds, federation budget divisions, figure builders and output sinks
// all self-register into one of these, so command-line parsing, flag
// help text and error messages enumerate what is actually registered
// instead of repeating hardcoded name lists that drift from the code.
//
// Lookups are case-insensitive; every entry has one canonical name
// (the spelling String() renders and Names reports, in registration
// order) plus any number of aliases. Registration normally happens in
// package init of the package owning the value type, which keeps the
// registry a leaf dependency: core, trace and replay each own their
// registry, and internal/sim re-exports them as the facade surface.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry maps names (case-insensitively) to values of one extension
// point. The zero value is not usable; construct with New.
type Registry[T any] struct {
	kind string // what the entries are, for error messages ("policy", ...)

	mu      sync.RWMutex
	order   []string // canonical names in registration order
	entries map[string]entry[T]
}

type entry[T any] struct {
	canonical string
	value     T
	help      string
}

// New returns an empty registry whose error messages call the entries
// kind (e.g. "policy", "workload kind").
func New[T any](kind string) *Registry[T] {
	return &Registry[T]{kind: kind, entries: map[string]entry[T]{}}
}

// Register adds a value under its canonical name plus any aliases.
// Registering a name (or alias) twice panics: two packages claiming the
// same name is a programming error worth failing loudly at init time.
func (r *Registry[T]) Register(name string, value T, help string, aliases ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := entry[T]{canonical: name, value: value, help: help}
	for _, n := range append([]string{name}, aliases...) {
		key := strings.ToLower(strings.TrimSpace(n))
		if key == "" {
			panic(fmt.Sprintf("registry: empty %s name", r.kind))
		}
		if prev, dup := r.entries[key]; dup {
			panic(fmt.Sprintf("registry: %s %q already registered (as %q)", r.kind, n, prev.canonical))
		}
		r.entries[key] = e
	}
	r.order = append(r.order, name)
}

// find resolves a name or alias to its entry under the read lock — the
// one place key normalization and the unknown-name error live, so
// Lookup and Canonical can never disagree.
func (r *Registry[T]) find(name string) (entry[T], error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return entry[T]{}, fmt.Errorf("unknown %s %q (registered: %s)", r.kind, name, strings.Join(r.order, "|"))
	}
	return e, nil
}

// Lookup resolves a name or alias. The error of an unknown name
// enumerates the registered canonical names.
func (r *Registry[T]) Lookup(name string) (T, error) {
	e, err := r.find(name)
	if err != nil {
		var zero T
		return zero, err
	}
	return e.value, nil
}

// Canonical resolves a name or alias to its canonical spelling — the
// normalization step spec hashing relies on, so "shut" and "SHUT"
// content-address identically. The error of an unknown name matches
// Lookup's.
func (r *Registry[T]) Canonical(name string) (string, error) {
	e, err := r.find(name)
	if err != nil {
		return "", err
	}
	return e.canonical, nil
}

// Names returns the canonical names in registration order.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Join renders the canonical names separated by sep — the building
// block of registry-derived flag descriptions ("medianjob|smalljob|...").
func (r *Registry[T]) Join(sep string) string {
	return strings.Join(r.Names(), sep)
}

// Help returns "name - help" lines, one per canonical entry in
// registration order (entries without help collapse to the name).
func (r *Registry[T]) Help() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var b strings.Builder
	for _, n := range r.order {
		e := r.entries[strings.ToLower(n)]
		if e.help == "" {
			fmt.Fprintf(&b, "%s\n", n)
			continue
		}
		fmt.Fprintf(&b, "%s - %s\n", n, e.help)
	}
	return b.String()
}

// Aliases returns every registered spelling (canonical plus aliases),
// sorted — mainly for tests asserting the legacy spellings survive.
func (r *Registry[T]) Aliases() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for k := range r.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
