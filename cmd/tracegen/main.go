// Command tracegen synthesizes workload intervals in the Standard
// Workload Format, and windows, rescales and summarizes existing SWF
// traces through the streaming trace pipeline — every trace operation
// runs in bounded memory, so Parallel Workloads Archive traces of any
// size are fair game.
//
// Usage:
//
//	tracegen [gen] -kind medianjob -seed 1001 [-cores 80640] [-load 2.0] \
//	         [-o trace.swf]
//	tracegen window -in trace.swf -start 3600 -end 21600 [-o out.swf]
//	tracegen rescale -in trace.swf [-time 0.5] [-cores 80640:5760] \
//	         [-max 100000] [-o out.swf]
//	tracegen summarize trace.swf
//
// Kinds cover the paper's four Curie intervals plus the extended
// scenario library; the -kind help text enumerates the workload-kind
// registry, so a newly registered kind is immediately visible here.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is the testable entry point: out receives the primary artifact
// (the SWF stream or the summary), stats the side-channel statistics.
func run(args []string, out, stats io.Writer) error {
	cmd := "gen"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd = args[0]
		args = args[1:]
	}
	switch cmd {
	case "gen":
		return runGen(args, out, stats)
	case "window":
		return runWindow(args, out, stats)
	case "rescale":
		return runRescale(args, out, stats)
	case "summarize":
		return runSummarize(args, out)
	default:
		return fmt.Errorf("tracegen: unknown subcommand %q (want gen, window, rescale or summarize)", cmd)
	}
}

func runGen(args []string, out, stats io.Writer) error {
	fs := flag.NewFlagSet("tracegen gen", flag.ExitOnError)
	var (
		kind    = fs.String("kind", "medianjob", "interval kind: "+trace.Kinds.Join("|"))
		seed    = fs.Int64("seed", 1001, "generator seed")
		cores   = fs.Int("cores", 80640, "machine core count")
		load    = fs.Float64("load", 2.0, "submitted work / machine capacity")
		outPath = fs.String("o", "", "output file (default stdout)")
		summary = fs.String("summarize", "", "summarize an existing SWF file instead of generating")
	)
	fs.Parse(args)

	if *summary != "" { // legacy spelling of the summarize subcommand
		return summarizeFile(*summary, out)
	}

	k, err := trace.ParseKind(*kind)
	if err != nil {
		return err
	}
	cfg := trace.Config{Kind: k, Seed: *seed, Cores: *cores, LoadFactor: *load}
	jobs, err := trace.Generate(cfg)
	if err != nil {
		return err
	}

	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	comment := fmt.Sprintf("synthetic Curie-like %s interval, seed %d, %d cores, load %.2f",
		k, *seed, *cores, *load)
	if err := trace.WriteSWF(w, jobs, comment); err != nil {
		return err
	}
	printStats(stats, trace.Summarize(jobs, int64(*cores)*3600))
	return nil
}

// runWindow streams -in through a submit-time window onto -o: reading,
// filtering and writing overlap, so windowing a million-job archive
// trace holds one record in memory.
func runWindow(args []string, out, stats io.Writer) error {
	fs := flag.NewFlagSet("tracegen window", flag.ExitOnError)
	var (
		in      = fs.String("in", "", "input SWF trace (required)")
		start   = fs.Int64("start", 0, "window start, submit seconds")
		end     = fs.Int64("end", 0, "window end, submit seconds (exclusive; 0 = end of trace)")
		outPath = fs.String("o", "", "output file (default stdout)")
	)
	fs.Parse(args)
	if *in == "" || *start < 0 || (*end != 0 && *end <= *start) || (*start == 0 && *end == 0) {
		return fmt.Errorf("tracegen window: need -in and a non-empty [-start, -end) window (-end 0 = to end of trace)")
	}
	src := trace.SWFSource{Path: *in, WindowStart: *start, WindowEnd: *end}
	endLabel := "end"
	if *end != 0 {
		endLabel = strconv.FormatInt(*end, 10)
	}
	comment := fmt.Sprintf("window [%d, %s) of %s, re-based to t=0", *start, endLabel, *in)
	return pipe(src, *outPath, comment, out, stats)
}

// runRescale streams -in through arrival-rate and/or cluster-size
// rescaling onto -o.
func runRescale(args []string, out, stats io.Writer) error {
	fs := flag.NewFlagSet("tracegen rescale", flag.ExitOnError)
	var (
		in      = fs.String("in", "", "input SWF trace (required)")
		timeSc  = fs.Float64("time", 0, "multiply submit times by this factor (0.5 = double the arrival rate)")
		coresSc = fs.String("cores", "", "rescale job widths FROM:TO cores, e.g. 80640:5760")
		maxJobs = fs.Int("max", 0, "keep at most this many jobs (0 = all)")
		outPath = fs.String("o", "", "output file (default stdout)")
	)
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("tracegen rescale: need -in")
	}
	if *maxJobs < 0 {
		return fmt.Errorf("tracegen rescale: negative -max %d", *maxJobs)
	}
	src := trace.SWFSource{Path: *in, TimeScale: *timeSc, MaxJobs: *maxJobs}
	if *coresSc != "" {
		from, to, err := parseCores(*coresSc)
		if err != nil {
			return err
		}
		src.CoresFrom, src.CoresTo = from, to
	}
	// Mirror the transform chain's no-op conditions, so the command never
	// writes an unmodified copy labeled as rescaled.
	if (*timeSc == 0 || *timeSc == 1) && src.CoresFrom == src.CoresTo && *maxJobs == 0 {
		return fmt.Errorf("tracegen rescale: nothing to do (pass -time != 1, -cores FROM:TO with FROM != TO, and/or -max)")
	}
	comment := fmt.Sprintf("rescaled from %s (time x%v, cores %s, max %d)", *in, *timeSc, *coresSc, *maxJobs)
	return pipe(src, *outPath, comment, out, stats)
}

func runSummarize(args []string, out io.Writer) error {
	if len(args) != 1 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("usage: tracegen summarize trace.swf")
	}
	return summarizeFile(args[0], out)
}

// pipe streams src into an SWF writer at path (out when empty).
func pipe(src trace.SWFSource, path, comment string, out, stats io.Writer) error {
	fs, err := src.Open()
	if err != nil {
		return err
	}
	defer fs.Close()
	w := out
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	n, err := trace.Copy(trace.NewWriter(w, comment), fs)
	if err != nil {
		return err
	}
	fmt.Fprintf(stats, "%d jobs written\n", n)
	return nil
}

// summarizeFile characterizes a trace through the streaming summarizer,
// so traces of any size summarize in bounded memory.
func summarizeFile(path string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := trace.SummarizeStream(trace.NewScanner(f), 80640*3600)
	if err != nil {
		return err
	}
	printStats(out, s)
	return nil
}

func printStats(w io.Writer, s trace.Stats) {
	fmt.Fprintf(w, "jobs: %d (distinct users %d, backlog at t=0: %d)\n",
		s.Jobs, s.DistinctUsers, s.BacklogAtuZero)
	fmt.Fprintf(w, "total work: %d core-seconds, widest job %d cores\n", s.TotalCoreSec, s.MaxCores)
	fmt.Fprintf(w, "small&short fraction: %.1f%%   huge fraction: %.2f%%\n",
		100*s.SmallShort, 100*s.Huge)
	fmt.Fprintf(w, "walltime overestimation: median %.0fx, mean %.0fx\n",
		s.MedianOverEst, s.MeanOverEst)
	fmt.Fprintf(w, "submission horizon: %d s\n", s.HorizonSec)
}

func parseCores(s string) (from, to int, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("tracegen: -cores wants FROM:TO, got %q", s)
	}
	from, err = strconv.Atoi(parts[0])
	if err == nil {
		to, err = strconv.Atoi(parts[1])
	}
	if err != nil || from <= 0 || to <= 0 {
		return 0, 0, fmt.Errorf("tracegen: bad -cores %q", s)
	}
	return from, to, nil
}
