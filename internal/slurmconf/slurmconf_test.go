package slurmconf

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dvfs"
	"repro/internal/rjms"
)

const curieConf = `
# Curie powercap configuration (Section V parameters)
ClusterName=curie
Topology=56x5x18
CoresPerNode=16
DownWatts=14
IdleWatts=117
CpuFreqWatts=1200:193,1400:213,1600:234,1800:248,2000:269,2200:289,2400:317,2700:358
ChassisWatts=248
RackWatts=900
SchedulerParameters=powercap_policy=MIX,bf_max_job_test=100
ReservationLead=1800   # drain lead
CapPlanningHorizon=3600
DynamicDVFS=true
`

func TestParseCurieConf(t *testing.T) {
	f, err := Parse(strings.NewReader(curieConf))
	if err != nil {
		t.Fatal(err)
	}
	if f.ClusterName != "curie" {
		t.Errorf("cluster name = %q", f.ClusterName)
	}
	cfg := f.Config
	if cfg.Topology != cluster.CurieTopology() {
		t.Errorf("topology = %+v", cfg.Topology)
	}
	if cfg.Profile == nil {
		t.Fatal("no profile parsed")
	}
	if cfg.Profile.Down() != 14 || cfg.Profile.Idle() != 117 || cfg.Profile.Max() != 358 {
		t.Errorf("profile endpoints wrong: %v %v %v",
			cfg.Profile.Down(), cfg.Profile.Idle(), cfg.Profile.Max())
	}
	if got := cfg.Profile.Busy(dvfs.F2000); got != 269 {
		t.Errorf("Busy(2.0) = %v", got)
	}
	if cfg.Overhead == nil || cfg.Overhead.ChassisWatts != 248 || cfg.Overhead.RackWatts != 900 {
		t.Errorf("overhead = %+v", cfg.Overhead)
	}
	if cfg.Policy != core.PolicyMix {
		t.Errorf("policy = %v", cfg.Policy)
	}
	if cfg.BackfillDepth != 100 {
		t.Errorf("backfill depth = %d", cfg.BackfillDepth)
	}
	if cfg.ReservationLead != 1800 || cfg.CapPlanningHorizon != 3600 {
		t.Errorf("lead/horizon = %d/%d", cfg.ReservationLead, cfg.CapPlanningHorizon)
	}
	if !cfg.DynamicDVFS {
		t.Error("DynamicDVFS not parsed")
	}
	// The parsed config must build a working controller.
	ctl, err := rjms.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Cluster().Nodes() != 5040 {
		t.Errorf("controller nodes = %d", ctl.Cluster().Nodes())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing equals":      "ClusterName curie\n",
		"unknown key":         "Frobnicate=1\n",
		"bad topology":        "Topology=56x5\n",
		"bad freq pair":       "CpuFreqWatts=1200-193\n",
		"negative watts":      "IdleWatts=-3\nCpuFreqWatts=2700:358\nDownWatts=1\n",
		"profile w/o freqs":   "IdleWatts=117\nDownWatts=14\n",
		"bad sched param":     "SchedulerParameters=warp_speed=9\n",
		"malformed sched":     "SchedulerParameters=powercap_policy\n",
		"bad policy":          "SchedulerParameters=powercap_policy=TURBO\n",
		"bad bool":            "KillOnOverrun=maybe\n",
		"bad lead":            "ReservationLead=soon\n",
		"non-monotone watts":  "DownWatts=14\nIdleWatts=117\nCpuFreqWatts=1200:300,2700:200\n",
		"bad chassis watts":   "ChassisWatts=heavy\n",
		"bad mix floor":       "MixFloor=fast\n",
		"bad backfill number": "SchedulerParameters=bf_max_job_test=lots\n",
	}
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestParseTopologyWithCores(t *testing.T) {
	f, err := Parse(strings.NewReader("Topology=2x3x4x8\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := cluster.Topology{Racks: 2, ChassisPerRack: 3, NodesPerChassis: 4, CoresPerNode: 8}
	if f.Config.Topology != want {
		t.Errorf("topology = %+v, want %+v", f.Config.Topology, want)
	}
	// Three-part form defaults cores to 16.
	f, err = Parse(strings.NewReader("Topology=2x3x4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f.Config.Topology.CoresPerNode != 16 {
		t.Errorf("default cores = %d", f.Config.Topology.CoresPerNode)
	}
}

func TestRoundTrip(t *testing.T) {
	orig := CurieFile(core.PolicyShut)
	orig.Config.BackfillDepth = 50
	orig.Config.ScatteredShutdown = true
	orig.Config.ReservationLead = 900
	orig.Config.KillOnOverrun = true
	orig.Config.DynamicDVFS = true
	orig.Config.DegMinFull = 1.63
	orig.Config.MixFloor = dvfs.F2000

	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, buf.String())
	}
	if back.ClusterName != "curie" {
		t.Errorf("name = %q", back.ClusterName)
	}
	a, b := orig.Config, back.Config
	if a.Topology != b.Topology || a.Policy != b.Policy ||
		a.BackfillDepth != b.BackfillDepth || a.ScatteredShutdown != b.ScatteredShutdown ||
		a.ReservationLead != b.ReservationLead || a.KillOnOverrun != b.KillOnOverrun ||
		a.DynamicDVFS != b.DynamicDVFS || a.DegMinFull != b.DegMinFull || a.MixFloor != b.MixFloor {
		t.Errorf("config mismatch:\n  wrote %+v\n  read  %+v", a, b)
	}
	for _, fr := range a.Profile.Frequencies() {
		if a.Profile.Busy(fr) != b.Profile.Busy(fr) {
			t.Errorf("profile mismatch at %v", fr)
		}
	}
	if b.Overhead.ChassisWatts != 248 || b.Overhead.RackWatts != 900 {
		t.Errorf("overhead mismatch: %+v", b.Overhead)
	}
}

func TestWattSuffixAndComments(t *testing.T) {
	in := "IdleWatts=117W # inline comment\nDownWatts=14 W\nCpuFreqWatts=2700:358W\n"
	f, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.Config.Profile.Idle() != 117 || f.Config.Profile.Down() != 14 {
		t.Errorf("suffixed watts parsed wrong: %+v", f.Config.Profile)
	}
}
