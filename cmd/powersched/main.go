// Command powersched replays one workload scenario end to end: it
// generates (or loads) a Curie-like workload, runs the powercap-aware
// RJMS under the chosen policy and cap, and prints the Figure 6/7 style
// utilization and power charts plus the run summary.
//
// Usage:
//
//	powersched -kind 24h -policy MIX -cap 0.4 [-racks 56] [-seed 1004] \
//	           [-swf trace.swf] [-kill] [-scattered] [-lead 0] [-width 100]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/replay"
	"repro/internal/slurmconf"
	"repro/internal/trace"
)

func main() {
	var (
		kind      = flag.String("kind", "medianjob", "workload kind: medianjob|smalljob|bigjob|24h")
		policy    = flag.String("policy", "SHUT", "powercap policy: NONE|SHUT|DVFS|MIX|IDLE")
		capFrac   = flag.Float64("cap", 0.6, "powercap fraction of max power (>=1 disables)")
		racks     = flag.Int("racks", 56, "machine size in racks (56 = full Curie)")
		seed      = flag.Int64("seed", 1001, "workload seed")
		kill      = flag.Bool("kill", false, "kill jobs when the cap activates above the draw")
		scattered = flag.Bool("scattered", false, "disable bonus-aware grouped shutdown")
		lead      = flag.Int64("lead", 0, "seconds before the window reserved nodes stop taking jobs")
		horizon   = flag.Int64("horizon", 0, "cap planning horizon seconds (0 = default 3600)")
		width     = flag.Int("width", 96, "chart width")
		height    = flag.Int("height", 16, "chart height")
		dynamic   = flag.Bool("dynamic", false, "re-clock running jobs at cap boundaries (Section VIII extension)")
		jsonOut   = flag.String("json", "", "write the run summary as JSON to this file")
		csvOut    = flag.String("csv", "", "write the time series as CSV to this file")
		confPath  = flag.String("conf", "", "print the controller configuration of this run as a slurmconf file and exit")
		swfPath   = flag.String("swf", "", "replay this SWF trace instead of the synthetic workload")
		duration  = flag.Int64("duration", 0, "replayed interval seconds (default: the workload kind's length)")
	)
	flag.Parse()

	k, err := trace.ParseKind(*kind)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p, err := core.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scaleRacks := 0
	if *racks != 56 {
		scaleRacks = *racks
	}
	s := replay.Scenario{
		Name:            fmt.Sprintf("%s/%d%%/%s", k, int(*capFrac*100), p),
		Workload:        trace.Config{Kind: k, Seed: *seed, DurationSec: *duration},
		Policy:          p,
		CapFraction:     *capFrac,
		ScaleRacks:      scaleRacks,
		KillOnOverrun:   *kill,
		Scattered:       *scattered,
		ReservationLead: *lead,
		PlanningHorizon: *horizon,
		DynamicDVFS:     *dynamic,
	}
	if *swfPath != "" {
		f, err := os.Open(*swfPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		jobs, err := trace.ReadSWF(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s.Jobs = jobs
		s.Name = fmt.Sprintf("%s/%d%%/%s", *swfPath, int(*capFrac*100), p)
		fmt.Printf("loaded %d jobs from %s\n", len(jobs), *swfPath)
	}
	if *confPath != "" {
		f := slurmconf.CurieFile(p)
		f.Config.Topology = s.Machine()
		f.Config.KillOnOverrun = *kill
		f.Config.ScatteredShutdown = *scattered
		f.Config.ReservationLead = *lead
		f.Config.CapPlanningHorizon = *horizon
		f.Config.DynamicDVFS = *dynamic
		if err := writeFile(*confPath, func(w *os.File) error {
			return slurmconf.Write(w, f)
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("configuration written to %s\n", *confPath)
		return
	}
	fmt.Printf("replaying %s on %d racks (%d nodes)...\n", s.Name, s.Machine().Racks, s.Machine().Nodes())
	r := replay.Run(s)
	if r.Err != nil {
		fmt.Fprintln(os.Stderr, r.Err)
		os.Exit(1)
	}
	if s.Capped() {
		start, end := s.Window()
		fmt.Printf("powercap window: [%d, %d) at %.0f%% of %v\n",
			start, end, *capFrac*100, r.MaxPower)
		fmt.Printf("offline plan: %v, %d nodes reserved for switch-off (saving %v, needed %v)\n",
			r.Plan.Mechanism, len(r.Plan.OffNodes), r.Plan.PlannedSaving, r.Plan.NeededSaving)
	}
	fmt.Println()
	fmt.Print(figures.TimeSeries(r, *width, *height))
	fmt.Println()
	fmt.Println("summary:", r.Summary)
	fmt.Printf("normalized: energy=%.3f work=%.3f launched=%.3f mean-wait=%.0fs\n",
		r.Summary.NormEnergy, r.Summary.NormWork, r.Summary.NormLaunched, r.Summary.MeanWaitSec)
	fmt.Printf("launch frequencies: %v\n", r.Summary.LaunchedByFreq)
	if r.Summary.Rescales > 0 {
		fmt.Printf("dynamic re-clocks: %d\n", r.Summary.Rescales)
	}
	if *jsonOut != "" {
		if err := writeFile(*jsonOut, func(w *os.File) error {
			return replay.WriteJSON(w, []replay.Result{r})
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("summary JSON written to %s\n", *jsonOut)
	}
	if *csvOut != "" {
		if err := writeFile(*csvOut, func(w *os.File) error {
			return replay.WriteSeriesCSV(w, r.Samples)
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("time series CSV written to %s\n", *csvOut)
	}
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
