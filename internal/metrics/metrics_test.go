package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dvfs"
)

func TestRecorderCountsAndIntegrals(t *testing.T) {
	r := NewRecorder(0, 1000, 0)
	r.NoteSubmit()
	r.NoteSubmit()
	r.NoteSubmit()
	if err := r.NotePower(10, 2000); err != nil {
		t.Fatal(err)
	}
	if err := r.NoteCores(10, 64); err != nil {
		t.Fatal(err)
	}
	r.NoteLaunch(dvfs.F2700, 10)
	r.NoteLaunch(dvfs.F2000, 4)
	r.NoteCompletion(false)
	r.NoteCompletion(true)

	s := r.Finalize(0, 20, 4000, 128)
	if s.JobsSubmitted != 3 || s.JobsLaunched != 2 || s.JobsCompleted != 1 || s.JobsKilled != 1 {
		t.Fatalf("counters wrong: %+v", s)
	}
	// Energy: 1000 W x 10 s + 2000 W x 10 s = 30000 J.
	if s.EnergyJ != 30000 {
		t.Errorf("energy = %v, want 30000", s.EnergyJ)
	}
	// Work: 0 x 10 + 64 x 10 = 640 core-s.
	if s.WorkCoreSec != 640 {
		t.Errorf("work = %v, want 640", s.WorkCoreSec)
	}
	if s.PeakPower != 2000 {
		t.Errorf("peak = %v", s.PeakPower)
	}
	if s.MeanPower != 1500 {
		t.Errorf("mean = %v, want 1500", s.MeanPower)
	}
	// Normalizations: energy/(4000x20), work/(128x20), launched/submitted.
	if math.Abs(s.NormEnergy-30000.0/80000) > 1e-12 {
		t.Errorf("normEnergy = %v", s.NormEnergy)
	}
	if math.Abs(s.NormWork-640.0/2560) > 1e-12 {
		t.Errorf("normWork = %v", s.NormWork)
	}
	if math.Abs(s.NormLaunched-2.0/3) > 1e-12 {
		t.Errorf("normLaunched = %v", s.NormLaunched)
	}
	if s.MeanWaitSec != 7 {
		t.Errorf("meanWait = %v, want 7", s.MeanWaitSec)
	}
	if s.LaunchedByFreq[dvfs.F2700] != 1 || s.LaunchedByFreq[dvfs.F2000] != 1 {
		t.Errorf("launchedByFreq = %v", s.LaunchedByFreq)
	}
}

func TestFinalizeZeroDivisors(t *testing.T) {
	r := NewRecorder(0, 0, 0)
	s := r.Finalize(0, 0, 0, 0)
	if s.NormEnergy != 0 || s.NormWork != 0 || s.NormLaunched != 0 || s.MeanWaitSec != 0 {
		t.Errorf("zero-divisor normalizations non-zero: %+v", s)
	}
}

func TestSamplesAndFreqsUsed(t *testing.T) {
	r := NewRecorder(0, 0, 0)
	r.AddSample(Sample{T: 0, CoresByFreq: map[dvfs.Freq]int{dvfs.F2700: 10}})
	r.AddSample(Sample{T: 60, CoresByFreq: map[dvfs.Freq]int{dvfs.F2000: 5, dvfs.F1200: 0}})
	if len(r.Samples()) != 2 {
		t.Fatalf("samples = %d", len(r.Samples()))
	}
	fs := FreqsUsed(r.Samples())
	if len(fs) != 2 || fs[0] != dvfs.F2000 || fs[1] != dvfs.F2700 {
		t.Errorf("FreqsUsed = %v, want [2.0 2.7] (zero-count excluded)", fs)
	}
}

func TestBSLD(t *testing.T) {
	r := NewRecorder(0, 0, 0)
	// Job 1: waited 90 s, ran 10 s -> BSLD = 100/10 = 10.
	r.NoteJobDone(90, 10)
	// Job 2: short job floor: waited 90 s, ran 2 s -> (92)/10 = 9.2.
	r.NoteJobDone(90, 2)
	// Job 3: no wait -> clamps to 1.
	r.NoteJobDone(0, 100)
	s := r.Finalize(0, 100, 0, 0)
	want := (10.0 + 9.2 + 1.0) / 3
	if math.Abs(s.MeanBSLD-want) > 1e-9 {
		t.Errorf("MeanBSLD = %v, want %v", s.MeanBSLD, want)
	}
	if s.MaxBSLD != 10 {
		t.Errorf("MaxBSLD = %v, want 10", s.MaxBSLD)
	}
	empty := NewRecorder(0, 0, 0).Finalize(0, 1, 0, 0)
	if empty.MeanBSLD != 0 || empty.MaxBSLD != 0 {
		t.Errorf("empty BSLD = %v/%v", empty.MeanBSLD, empty.MaxBSLD)
	}
}

func TestSummaryString(t *testing.T) {
	r := NewRecorder(0, 100, 0)
	s := r.Finalize(0, 10, 1000, 16)
	str := s.String()
	for _, frag := range []string{"energy=", "work=", "launched=", "peak="} {
		if !strings.Contains(str, frag) {
			t.Errorf("summary string missing %q: %s", frag, str)
		}
	}
}
