package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/job"
)

// Scanner is the streaming SWF reader: it yields one job per call in
// file order without ever materializing the trace, so arbitrarily large
// Parallel Workloads Archive traces parse in bounded memory. Header and
// comment lines (leading ';') are skipped; records with unknown (-1)
// runtimes or processor counts are dropped and counted in Skipped, the
// same filter the paper's replay applies. Archive traces are
// submit-sorted, which makes a Scanner directly usable as the head of a
// transform pipeline (see Stream); ReadSWF adds the explicit sort for
// inputs that are not.
type Scanner struct {
	sc      *bufio.Scanner
	line    int
	skipped int
	err     error
	done    bool
}

// NewScanner returns a Scanner reading SWF records from r.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Scanner{sc: sc}
}

// Next returns the next complete job record, or (nil, nil) at end of
// input. Parse errors are sticky.
func (s *Scanner) Next() (*job.Job, error) {
	if s.err != nil || s.done {
		return nil, s.err
	}
	for s.sc.Scan() {
		s.line++
		text := strings.TrimSpace(s.sc.Text())
		if text == "" || strings.HasPrefix(text, ";") {
			continue
		}
		j, err := parseSWFLine(text, s.line)
		if err != nil {
			s.err = err
			return nil, err
		}
		if j == nil {
			s.skipped++
			continue
		}
		return j, nil
	}
	s.done = true
	if err := s.sc.Err(); err != nil {
		s.err = fmt.Errorf("trace: %v", err)
	}
	return nil, s.err
}

// Line returns the number of input lines consumed so far.
func (s *Scanner) Line() int { return s.line }

// Skipped returns how many incomplete records (unknown runtime or
// processor count) were dropped so far.
func (s *Scanner) Skipped() int { return s.skipped }

// parseSWFLine parses one non-comment SWF record. It returns (nil, nil)
// for incomplete records the replay filter drops.
func parseSWFLine(text string, line int) (*job.Job, error) {
	fields := strings.Fields(text)
	if len(fields) < swfThinkTime+1 && len(fields) < 5 {
		return nil, fmt.Errorf("trace: line %d: %d fields, want at least 5", line, len(fields))
	}
	get := func(i int) (int64, error) {
		if i >= len(fields) {
			return -1, nil
		}
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return 0, fmt.Errorf("trace: line %d field %d: %v", line, i+1, err)
		}
		// Reject NaN, infinities and values outside int64: the
		// float-to-int conversion of such values is implementation
		// specific in Go (found by the parser fuzzer), and a trace
		// carrying them is corrupt, not merely incomplete.
		if math.IsNaN(v) || v >= math.MaxInt64 || v <= math.MinInt64 {
			return 0, fmt.Errorf("trace: line %d field %d: value %v out of range", line, i+1, fields[i])
		}
		return int64(v), nil
	}
	id, err := get(swfJobID)
	if err != nil {
		return nil, err
	}
	submit, err := get(swfSubmit)
	if err != nil {
		return nil, err
	}
	run, err := get(swfRunTime)
	if err != nil {
		return nil, err
	}
	procs, err := get(swfAllocProcs)
	if err != nil {
		return nil, err
	}
	reqProcs, err := get(swfReqProcs)
	if err != nil {
		return nil, err
	}
	reqTime, err := get(swfReqTime)
	if err != nil {
		return nil, err
	}
	user, err := get(swfUserID)
	if err != nil {
		return nil, err
	}

	if procs <= 0 {
		procs = reqProcs
	}
	if run < 0 || procs <= 0 {
		return nil, nil // incomplete record, mirroring the replay filter
	}
	if reqTime < run {
		reqTime = run
	}
	if submit < 0 {
		submit = 0
	}
	return &job.Job{
		ID:       job.ID(id),
		User:     "user" + strconv.FormatInt(user, 10),
		Cores:    int(procs),
		Submit:   submit,
		Runtime:  run,
		Walltime: reqTime,
	}, nil
}

// Writer serializes jobs to SWF one record at a time — the streaming
// counterpart of WriteSWF, so window/rescale pipelines can write their
// output while still reading their input. Unknown fields are written as
// -1 per the SWF convention.
type Writer struct {
	bw  *bufio.Writer
	err error
}

// NewWriter returns a Writer emitting to w, with the comment (possibly
// multi-line) as the ';'-prefixed header.
func NewWriter(w io.Writer, comment string) *Writer {
	sw := &Writer{bw: bufio.NewWriter(w)}
	if comment != "" {
		for _, l := range strings.Split(comment, "\n") {
			if _, err := fmt.Fprintf(sw.bw, "; %s\n", l); err != nil {
				sw.err = err
				break
			}
		}
	}
	return sw
}

// Write appends one job record. Errors are sticky.
func (w *Writer) Write(j *job.Job) error {
	if w.err != nil {
		return w.err
	}
	user := int64(-1)
	if n, err := strconv.ParseInt(strings.TrimPrefix(j.User, "user"), 10, 64); err == nil {
		user = n
	}
	// job submit wait run procs avgcpu mem reqprocs reqtime reqmem
	// status uid gid exe queue partition preceding think
	if _, err := fmt.Fprintf(w.bw, "%d %d -1 %d %d -1 -1 %d %d -1 1 %d -1 -1 -1 -1 -1 -1\n",
		j.ID, j.Submit, j.Runtime, j.Cores, j.Cores, j.Walltime, user); err != nil {
		w.err = err
	}
	return w.err
}

// Flush writes any buffered output.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// Copy drains src into w, returning the number of records written.
func Copy(w *Writer, src Stream) (int, error) {
	n := 0
	for {
		j, err := src.Next()
		if err != nil {
			return n, err
		}
		if j == nil {
			return n, w.Flush()
		}
		if err := w.Write(j); err != nil {
			return n, err
		}
		n++
	}
}
