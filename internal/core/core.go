// Package core implements the paper's contribution: the power-consumption
// adaptive scheduling strategy of Sections IV-VI. It is split the way the
// paper splits it:
//
//   - an offline part (Algorithm 1, offline.go) that runs when a powercap
//     reservation is created and plans grouped node switch-offs so the
//     chassis/rack "power bonus" of Section III-B is harvested, and
//   - an online part (Algorithm 2, online.go) that runs at job-allocation
//     time and picks the highest CPU frequency keeping the cluster inside
//     the power budget.
//
// Three production policies are provided — SHUT, DVFS and MIX — plus the
// NONE baseline and the IDLE fallback the paper evaluates ("DVFS and
// switch-off mechanisms deactivated: the only solution is to let nodes
// idle"). The policy types and their ladder/degradation bindings live in
// policy.go.
//
// This file intentionally carries only the package documentation: the
// package splits one algorithm across offline.go / online.go / policy.go,
// and no single one of those is the natural home for the overview.
package core
