package cluster

import "math/bits"

// bitset is a fixed-capacity bit vector over node IDs. The cluster
// maintains one per allocation class (partially-free busy nodes, idle
// nodes) so allocation probes walk only candidate nodes instead of the
// whole machine; iteration is in ascending ID order, matching ForEach.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)   { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// forEach calls fn for every set bit in ascending order; fn returning
// false stops the walk. fn must not mutate the bitset.
func (b bitset) forEach(fn func(i int) bool) {
	for w, word := range b {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			if !fn(i) {
				return
			}
			word &= word - 1
		}
	}
}
