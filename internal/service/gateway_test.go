package service_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
)

// fleetWorker is one worker daemon behind a test gateway.
type fleetWorker struct {
	name string
	srv  *service.Server
	ts   *httptest.Server
}

// kill severs the worker's HTTP surface — the fleet-visible equivalent
// of the process dying. The embedded Server keeps draining in Cleanup.
func (w *fleetWorker) kill() { w.ts.Close() }

// newFleet boots a gateway with n registered workers. The gateway is
// tuned for test time scales: fast polls, fast dispatch retries, a
// short lease.
func newFleet(t *testing.T, n int, cfg service.GatewayConfig) (*service.Gateway, *service.Client, []*fleetWorker) {
	t.Helper()
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 10 * time.Millisecond
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 10 * time.Millisecond
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 200 * time.Millisecond
	}
	gw := service.NewGateway(cfg)
	gwTS := httptest.NewServer(gw.Handler())
	workers := make([]*fleetWorker, n)
	for i := range workers {
		srv := service.New(service.Config{Workers: 2})
		ts := httptest.NewServer(srv.Handler())
		workers[i] = &fleetWorker{name: fmt.Sprintf("w%d", i+1), srv: srv, ts: ts}
		if _, err := gw.Register(workers[i].name, ts.URL); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		gw.Shutdown(ctx)
		gwTS.Close()
		for _, w := range workers {
			w.srv.Shutdown(ctx)
			w.ts.Close()
		}
	})
	c := service.NewClient(gwTS.URL)
	c.PollInterval = 10 * time.Millisecond
	return gw, c, workers
}

// heartbeatLoop keeps the named workers' leases alive for the duration
// of the test (manual registration has no FleetMember renewing them).
func heartbeatLoop(t *testing.T, gw *service.Gateway, workers []*fleetWorker, skip func(name string) bool) {
	t.Helper()
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go func() {
		tick := time.NewTicker(30 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			for _, w := range workers {
				if skip == nil || !skip(w.name) {
					_ = gw.Heartbeat(w.name)
				}
			}
		}
	}()
}

// TestRendezvousPickProperties pins the routing function: it is
// deterministic, and removing one member only moves the hashes that
// member owned — every other hash keeps its worker (and its worker's
// warm result cache).
func TestRendezvousPickProperties(t *testing.T) {
	members := []string{"w1", "w2", "w3"}
	without := []string{"w1", "w3"}
	moved := 0
	for i := 0; i < 64; i++ {
		hash := fmt.Sprintf("spec-hash-%03d", i)
		pick := service.RendezvousPick(members, hash)
		if again := service.RendezvousPick(members, hash); again != pick {
			t.Fatalf("hash %s: pick not deterministic (%s then %s)", hash, pick, again)
		}
		after := service.RendezvousPick(without, hash)
		if pick == "w2" {
			moved++
			if after == "w2" {
				t.Fatalf("hash %s still routed to removed member", hash)
			}
		} else if after != pick {
			t.Fatalf("hash %s moved from %s to %s though %s is still alive", hash, pick, after, pick)
		}
	}
	if moved == 0 {
		t.Fatal("no hash was owned by w2 — the distribution test is vacuous")
	}
	if service.RendezvousPick(nil, "anything") != "" {
		t.Error("empty member set should pick nobody")
	}
}

// TestFleetRoutesAndDedupes drives the happy path through a 2-worker
// fleet: a submission routes to a worker and completes; the gateway's
// view carries gateway ids; resubmitting the identical spec is a
// gateway-level cache hit; the proxied report matches a single daemon's
// bytes.
func TestFleetRoutesAndDedupes(t *testing.T) {
	gw, c, workers := newFleet(t, 2, service.GatewayConfig{LeaseTTL: time.Hour})
	_ = workers
	ctx := context.Background()

	v, hit, err := c.Submit(ctx, fastSpec("fleet-basic"))
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first submission reported a cache hit")
	}
	if v.ID == "" || v.ID[0] != 'g' {
		t.Fatalf("gateway run id = %q, want the g-prefixed namespace", v.ID)
	}
	done, err := c.Wait(ctx, v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != service.StateDone {
		t.Fatalf("run finished %s (%s), want done", done.State, done.Error)
	}
	if done.ID != v.ID {
		t.Errorf("proxied view id = %q, want the gateway id %q", done.ID, v.ID)
	}

	// Identical spec: deduped at the gateway, same run, no new dispatch.
	v2, hit, err := c.Submit(ctx, fastSpec("fleet-basic"))
	if err != nil {
		t.Fatal(err)
	}
	if !hit || v2.ID != v.ID {
		t.Errorf("resubmit: id=%s hit=%v, want a cache hit on %s", v2.ID, hit, v.ID)
	}

	// The proxied report is byte-identical to a single daemon's
	// rendering of the same spec — routing must not change physics.
	var gatewayReport bytes.Buffer
	if err := c.WriteReport(ctx, v.ID, "json", sim.SinkOptions{}, &gatewayReport); err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	localSrv, localClient := newTestServer(t, service.Config{Workers: 1})
	lv, _, err := localClient.Submit(ctx, fastSpec("fleet-basic"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := localClient.Wait(ctx, lv.ID, nil); err != nil {
		t.Fatal(err)
	}
	if err := localSrv.RenderReport(lv.ID, "json", sim.SinkOptions{}, &local); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gatewayReport.Bytes(), local.Bytes()) {
		t.Errorf("fleet report differs from single-daemon report (%d vs %d bytes)", gatewayReport.Len(), local.Len())
	}

	st := gw.Stats(ctx)
	if st.Gateway.CacheHits != 1 || st.Gateway.Done < 1 {
		t.Errorf("gateway stats = %+v, want 1 cache hit and a done run", st.Gateway)
	}
}

// TestFleetFailover is the fleet's headline guarantee: SIGKILL a worker
// mid-run and the gateway requeues its in-flight runs onto a survivor,
// where the deterministic engine reproduces a byte-identical report.
// The client never sees an error — just a run that goes back to queued
// and then completes.
func TestFleetFailover(t *testing.T) {
	gw, c, workers := newFleet(t, 2, service.GatewayConfig{LeaseTTL: 200 * time.Millisecond})
	ctx := context.Background()
	var (
		killedMu sync.Mutex
		killed   string
	)
	heartbeatLoop(t, gw, workers, func(name string) bool {
		killedMu.Lock()
		defer killedMu.Unlock()
		return name == killed
	})

	v, _, err := c.Submit(ctx, longSpec())
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the run is actually executing on a worker.
	deadline := time.Now().Add(20 * time.Second)
	var assigned string
	for assigned == "" {
		if time.Now().After(deadline) {
			t.Fatal("run never started on a worker")
		}
		for _, m := range gw.Fleet().Members {
			if m.Runs > 0 {
				if vv, err := c.Get(ctx, v.ID); err == nil && vv.State == service.StateRunning {
					assigned = m.Name
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill it mid-run.
	killedMu.Lock()
	killed = assigned
	killedMu.Unlock()
	for _, w := range workers {
		if w.name == assigned {
			w.kill()
		}
	}

	done, err := c.Wait(ctx, v.ID, nil)
	if err != nil {
		t.Fatalf("waiting through failover: %v", err)
	}
	if done.State != service.StateDone {
		t.Fatalf("run finished %s (%s), want done after requeue", done.State, done.Error)
	}
	st := gw.Stats(ctx)
	if st.Gateway.Requeues < 1 {
		t.Errorf("requeues = %d, want >= 1 (the kill must have been observed)", st.Gateway.Requeues)
	}

	// The survivor's report matches a single daemon's bytes exactly.
	var fleetReport bytes.Buffer
	if err := c.WriteReport(ctx, v.ID, "json", sim.SinkOptions{}, &fleetReport); err != nil {
		t.Fatal(err)
	}
	localSrv, localClient := newTestServer(t, service.Config{Workers: 1})
	lv, _, err := localClient.Submit(ctx, longSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := localClient.Wait(ctx, lv.ID, nil); err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	if err := localSrv.RenderReport(lv.ID, "json", sim.SinkOptions{}, &local); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fleetReport.Bytes(), local.Bytes()) {
		t.Errorf("post-failover report differs from single-daemon report (%d vs %d bytes)", fleetReport.Len(), local.Len())
	}
}

// TestFleetQueuesWithNoWorkers: submissions to an empty fleet are
// accepted and dispatch as soon as a worker joins — the retry
// scheduler's reason to exist.
func TestFleetQueuesWithNoWorkers(t *testing.T) {
	gw, c, _ := newFleet(t, 0, service.GatewayConfig{LeaseTTL: time.Hour})
	ctx := context.Background()

	v, _, err := c.Submit(ctx, fastSpec("fleet-empty"))
	if err != nil {
		t.Fatal(err)
	}
	if v.State != service.StateQueued {
		t.Fatalf("empty-fleet submission state = %s, want queued", v.State)
	}

	srv := service.New(service.Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	})
	if _, err := gw.Register("late-joiner", ts.URL); err != nil {
		t.Fatal(err)
	}

	done, err := c.Wait(ctx, v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != service.StateDone {
		t.Fatalf("run finished %s (%s), want done once a worker joined", done.State, done.Error)
	}
}

// TestGatewayTenancy pins the gateway's auth surface: per-run reads
// hide foreign runs behind the identical unknown-run 404, cancels stay
// 403, and the fleet-management endpoints demand an admin token.
func TestGatewayTenancy(t *testing.T) {
	auth, err := service.NewAuth([]service.TenantConfig{
		{Name: "alice", Token: "tok-alice"},
		{Name: "bob", Token: "tok-bob"},
		{Name: "ops", Token: "tok-ops", Admin: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, c, _ := newFleet(t, 1, service.GatewayConfig{LeaseTTL: time.Hour, Auth: auth})
	base := c.Base
	ctx := context.Background()

	bob := authClient(base, "tok-bob")
	v, _, err := bob.Submit(ctx, fastSpec("gw-tenancy"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Wait(ctx, v.ID, nil); err != nil {
		t.Fatal(err)
	}
	if v.Tenant != "bob" {
		t.Errorf("gateway run tenant = %q, want bob", v.Tenant)
	}

	// Foreign reads: the unknown-run 404, byte for byte, on the run and
	// every proxied subresource.
	for _, sub := range []string{"", "/report", "/metrics", "/series", "/events"} {
		status, body := getPath(t, base, "tok-alice", "/v1/runs/"+v.ID+sub)
		if status != 404 {
			t.Errorf("foreign gateway GET %s status = %d, want 404", sub, status)
		}
		if body != unknownRunBody(v.ID) {
			t.Errorf("foreign gateway GET %s body = %q, want %q", sub, body, unknownRunBody(v.ID))
		}
	}
	// Owner and admin read through the proxy.
	for _, token := range []string{"tok-bob", "tok-ops"} {
		status, body := getPath(t, base, token, "/v1/runs/"+v.ID+"/report?format=json")
		if status != 200 {
			t.Errorf("%s gateway report status = %d (%s), want 200", token, status, body)
		}
	}
	// Foreign cancel: 403, as on a daemon.
	alice := authClient(base, "tok-alice")
	_, err = alice.Cancel(ctx, v.ID)
	if apiErr, ok := err.(*service.Error); !ok || apiErr.Status != 403 {
		t.Errorf("foreign gateway cancel error = %v, want 403", err)
	}

	// Fleet management: tenants are refused, admins pass.
	status, _ := getPath(t, base, "tok-alice", "/v1/fleet")
	if status != 403 {
		t.Errorf("tenant GET /v1/fleet status = %d, want 403", status)
	}
	status, body := getPath(t, base, "tok-ops", "/v1/fleet")
	if status != 200 {
		t.Errorf("admin GET /v1/fleet status = %d (%s), want 200", status, body)
	}
	// Joining needs admin credentials too.
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/fleet/join",
		bytes.NewReader([]byte(`{"name":"rogue","url":"http://127.0.0.1:1"}`)))
	req.Header.Set("Authorization", "Bearer tok-alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Errorf("tenant join status = %d, want 403", resp.StatusCode)
	}
}

// TestFleetMemberLeaseProtocol drives the worker-side join loop against
// a live gateway: it registers, heartbeats inside the lease, and
// re-registers after the gateway forgets it.
func TestFleetMemberLeaseProtocol(t *testing.T) {
	gw, c, _ := newFleet(t, 0, service.GatewayConfig{LeaseTTL: 150 * time.Millisecond})

	srv := service.New(service.Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	})

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	fm := &service.FleetMember{
		Gateway:   c.Base,
		Name:      "joiner",
		Advertise: ts.URL,
		Interval:  25 * time.Millisecond,
	}
	go fm.Run(ctx)

	alive := func() bool {
		for _, m := range gw.Fleet().Members {
			if m.Name == "joiner" && m.Alive {
				return true
			}
		}
		return false
	}
	waitFor := func(what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !alive() {
			if time.Now().After(deadline) {
				t.Fatalf("worker never %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitFor("joined")

	// The lease outlives several TTLs because heartbeats renew it, and a
	// submission routes to the joined worker.
	time.Sleep(400 * time.Millisecond)
	if !alive() {
		t.Fatal("lease lapsed despite heartbeats")
	}
	v, _, err := c.Submit(context.Background(), fastSpec("fleet-member"))
	if err != nil {
		t.Fatal(err)
	}
	if done, err := c.Wait(context.Background(), v.ID, nil); err != nil || done.State != service.StateDone {
		t.Fatalf("run via joined worker: state=%v err=%v", done.State, err)
	}
}
