// Package signal provides deterministic time-varying scalar sources:
// pure functions of simulated time that drive the federation's global
// power budget at epoch boundaries. Synthetic shapes (constant, step,
// sinusoid, diurnal) cover modelling; trace replay covers recorded
// energy-price or carbon-intensity series; clamp/scale/compose
// combinators build the rest. Sources are referenced declaratively
// through Spec — a small JSON tree embeddable in sim.RunSpec and
// twin.Spec — so sweeps, simd and the twin control plane share one
// registry and one determinism contract: the same Spec evaluated at
// the same instant always yields the same value.
package signal

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/registry"
)

// Source is a deterministic scalar signal: At must be a pure function
// of t (simulated seconds), so replaying a spec reproduces the exact
// budget sequence a live session saw.
type Source interface {
	At(t int64) float64
}

// Func adapts a plain function to a Source.
type Func func(t int64) float64

// At evaluates the function.
func (f Func) At(t int64) float64 { return f(t) }

// Spec is the declarative form of a source tree. Exactly the fields
// the named kind consumes are meaningful; the rest stay zero and are
// omitted from JSON, so specs read as terse as the shape they name.
type Spec struct {
	// Kind names the source shape (see Kinds for the registry).
	Kind string `json:"kind"`
	// Value is the constant kind's level (default 1).
	Value float64 `json:"value,omitempty"`
	// Times/Values define the step kind's piecewise-hold breakpoints
	// (strictly increasing times; before Times[0] the signal holds
	// Values[0]) and may inline a trace instead of Path.
	Times  []int64   `json:"times,omitempty"`
	Values []float64 `json:"values,omitempty"`
	// Mean/Amplitude/PeriodSec/PhaseSec shape the sinusoid and diurnal
	// kinds: mean + amplitude·sin(2π(t+phase)/period). Diurnal pins the
	// period to 86400s and inverts the phase so the trough sits at
	// midnight and the crest at mid-afternoon — the shape of a solar
	// feed or an off-peak price series.
	Mean      float64 `json:"mean,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`
	PeriodSec int64   `json:"period_sec,omitempty"`
	PhaseSec  int64   `json:"phase_sec,omitempty"`
	// Path names a CSV trace file ("t,value" rows, '#' comments) the
	// trace kind replays with step-hold semantics. Inline Times/Values
	// may stand in for a file.
	Path string `json:"path,omitempty"`
	// Min/Max bound the clamp kind (at least one set).
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// Factor scales the scale kind's input (default 1).
	Factor float64 `json:"factor,omitempty"`
	// Input is the clamp/scale kinds' operand.
	Input *Spec `json:"input,omitempty"`
	// Inputs are the compose kind's operands (pointwise product).
	Inputs []*Spec `json:"inputs,omitempty"`
}

// Builder constructs a Source from a validated, normalized spec.
type Builder func(*Spec) (Source, error)

// Kinds registers every signal shape; package init of this package is
// the only registrar, but the registry keeps flag help and error
// messages enumerating what exists.
var Kinds = registry.New[Builder]("signal kind")

func init() {
	Kinds.Register("constant", buildConstant, "fixed level (value)")
	Kinds.Register("step", buildStep, "piecewise-hold breakpoints (times/values)", "steps")
	Kinds.Register("sinusoid", buildSinusoid, "mean + amplitude*sin(2*pi*(t+phase)/period)", "sine", "sin")
	Kinds.Register("diurnal", buildDiurnal, "24h cycle: trough at midnight, crest mid-afternoon")
	Kinds.Register("trace", buildTrace, "CSV trace replay with step-hold (path or inline times/values)", "csv")
	Kinds.Register("clamp", buildClamp, "bound input into [min,max]")
	Kinds.Register("scale", buildScale, "input * factor")
	Kinds.Register("compose", buildCompose, "pointwise product of inputs", "product")
}

// Normalize canonicalizes kind spellings and fills defaults (constant
// value 1, sinusoid/diurnal mean 1, scale factor 1) recursively. It is
// idempotent, so normalizing an already-normalized spec is a no-op —
// the property spec hashing relies on.
func (s *Spec) Normalize() error {
	if s == nil {
		return nil
	}
	kind, err := Kinds.Canonical(s.Kind)
	if err != nil {
		return fmt.Errorf("signal: %w", err)
	}
	s.Kind = kind
	switch kind {
	case "constant":
		if s.Value == 0 {
			s.Value = 1
		}
	case "sinusoid", "diurnal":
		if s.Mean == 0 {
			s.Mean = 1
		}
	case "scale":
		if s.Factor == 0 {
			s.Factor = 1
		}
	}
	if err := s.Input.Normalize(); err != nil {
		return err
	}
	for _, in := range s.Inputs {
		if err := in.Normalize(); err != nil {
			return err
		}
	}
	return nil
}

// Validate rejects malformed specs with errors naming the offending
// field; it does not touch the filesystem (a bad trace file surfaces
// at Build).
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	kind, err := Kinds.Canonical(s.Kind)
	if err != nil {
		return fmt.Errorf("signal: %w", err)
	}
	switch kind {
	case "step":
		if err := validBreakpoints(s.Times, s.Values); err != nil {
			return fmt.Errorf("signal: step: %w", err)
		}
	case "sinusoid":
		if s.PeriodSec <= 0 {
			return fmt.Errorf("signal: sinusoid: period_sec must be positive, got %d", s.PeriodSec)
		}
	case "trace":
		if s.Path == "" && len(s.Times) == 0 {
			return fmt.Errorf("signal: trace: needs path or inline times/values")
		}
		if s.Path != "" && len(s.Times) > 0 {
			return fmt.Errorf("signal: trace: path and inline times/values are mutually exclusive")
		}
		if s.Path == "" {
			if err := validBreakpoints(s.Times, s.Values); err != nil {
				return fmt.Errorf("signal: trace: %w", err)
			}
		}
	case "clamp":
		if s.Input == nil {
			return fmt.Errorf("signal: clamp: missing input")
		}
		if s.Min == nil && s.Max == nil {
			return fmt.Errorf("signal: clamp: needs min and/or max")
		}
		if s.Min != nil && s.Max != nil && *s.Min > *s.Max {
			return fmt.Errorf("signal: clamp: min %g > max %g", *s.Min, *s.Max)
		}
	case "scale":
		if s.Input == nil {
			return fmt.Errorf("signal: scale: missing input")
		}
	case "compose":
		if len(s.Inputs) == 0 {
			return fmt.Errorf("signal: compose: needs at least one input")
		}
	}
	if s.Input != nil {
		if err := s.Input.Validate(); err != nil {
			return err
		}
	}
	for _, in := range s.Inputs {
		if err := in.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func validBreakpoints(times []int64, values []float64) error {
	if len(times) == 0 {
		return fmt.Errorf("needs at least one breakpoint")
	}
	if len(times) != len(values) {
		return fmt.Errorf("%d times but %d values", len(times), len(values))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return fmt.Errorf("times must be strictly increasing (times[%d]=%d after %d)", i, times[i], times[i-1])
		}
	}
	return nil
}

// Build validates, normalizes and constructs the source tree. Trace
// files are read here, once — the returned Source holds everything in
// memory and never touches IO again.
func Build(s *Spec) (Source, error) {
	if s == nil {
		return Func(func(int64) float64 { return 1 }), nil
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	return build(s)
}

func build(s *Spec) (Source, error) {
	b, err := Kinds.Lookup(s.Kind)
	if err != nil {
		return nil, fmt.Errorf("signal: %w", err)
	}
	return b(s)
}

func buildConstant(s *Spec) (Source, error) {
	v := s.Value
	return Func(func(int64) float64 { return v }), nil
}

// stepSource holds the shared piecewise-hold evaluation of step and
// trace: the value at t is the value of the last breakpoint at or
// before t, and Values[0] before the first.
type stepSource struct {
	times  []int64
	values []float64
}

func (st *stepSource) At(t int64) float64 {
	i := sort.Search(len(st.times), func(i int) bool { return st.times[i] > t })
	if i == 0 {
		return st.values[0]
	}
	return st.values[i-1]
}

func buildStep(s *Spec) (Source, error) {
	return &stepSource{
		times:  append([]int64(nil), s.Times...),
		values: append([]float64(nil), s.Values...),
	}, nil
}

func buildSinusoid(s *Spec) (Source, error) {
	mean, amp, period, phase := s.Mean, s.Amplitude, float64(s.PeriodSec), float64(s.PhaseSec)
	return Func(func(t int64) float64 {
		return mean + amp*math.Sin(2*math.Pi*(float64(t)+phase)/period)
	}), nil
}

func buildDiurnal(s *Spec) (Source, error) {
	mean, amp, phase := s.Mean, s.Amplitude, float64(s.PhaseSec)
	return Func(func(t int64) float64 {
		return mean - amp*math.Cos(2*math.Pi*(float64(t)+phase)/86400)
	}), nil
}

func buildTrace(s *Spec) (Source, error) {
	if s.Path == "" {
		return buildStep(s)
	}
	times, values, err := loadTrace(s.Path)
	if err != nil {
		return nil, err
	}
	return &stepSource{times: times, values: values}, nil
}

// loadTrace parses a CSV trace: one "t,value" row per line, '#'
// comments and blank lines skipped, times strictly increasing. Errors
// cite line numbers, never line content — trace paths are user input
// and must not become a file-content oracle.
func loadTrace(path string) (times []int64, values []float64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("signal: trace: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		row := strings.TrimSpace(sc.Text())
		if row == "" || strings.HasPrefix(row, "#") {
			continue
		}
		tPart, vPart, ok := strings.Cut(row, ",")
		if !ok {
			return nil, nil, fmt.Errorf("signal: trace %s:%d: want \"t,value\"", path, line)
		}
		t, err := strconv.ParseInt(strings.TrimSpace(tPart), 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("signal: trace %s:%d: bad time", path, line)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(vPart), 64)
		if err != nil {
			return nil, nil, fmt.Errorf("signal: trace %s:%d: bad value", path, line)
		}
		if len(times) > 0 && t <= times[len(times)-1] {
			return nil, nil, fmt.Errorf("signal: trace %s:%d: times must be strictly increasing", path, line)
		}
		times = append(times, t)
		values = append(values, v)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("signal: trace %s: %w", path, err)
	}
	if len(times) == 0 {
		return nil, nil, fmt.Errorf("signal: trace %s: no data rows", path)
	}
	return times, values, nil
}

func buildClamp(s *Spec) (Source, error) {
	in, err := build(s.Input)
	if err != nil {
		return nil, err
	}
	lo, hi := math.Inf(-1), math.Inf(1)
	if s.Min != nil {
		lo = *s.Min
	}
	if s.Max != nil {
		hi = *s.Max
	}
	return Func(func(t int64) float64 {
		v := in.At(t)
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}), nil
}

func buildScale(s *Spec) (Source, error) {
	in, err := build(s.Input)
	if err != nil {
		return nil, err
	}
	factor := s.Factor
	return Func(func(t int64) float64 { return factor * in.At(t) }), nil
}

func buildCompose(s *Spec) (Source, error) {
	ins := make([]Source, 0, len(s.Inputs))
	for _, spec := range s.Inputs {
		in, err := build(spec)
		if err != nil {
			return nil, err
		}
		ins = append(ins, in)
	}
	return Func(func(t int64) float64 {
		v := 1.0
		for _, in := range ins {
			v *= in.At(t)
		}
		return v
	}), nil
}
