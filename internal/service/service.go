// Package service is the simulation-as-a-service core behind cmd/simd:
// a long-running daemon that accepts declarative sim.RunSpec
// submissions over HTTP, executes them on one shared bounded worker
// scheduler, content-addresses results by canonical spec hash so
// identical specs under load collapse into a single execution, and
// streams per-run telemetry into the internal/tsdb time-series store.
//
// The execution pipeline is the sim facade end to end: a submission is
// validated and normalized exactly like a -spec file, runs through
// sim.RunObserved with a per-run cancellable context, and its Report is
// served back through the same sink pipeline the CLIs print with — the
// service adds queueing, dedup, telemetry and lifecycle, never a second
// result format.
//
// Completed runs move out of the live registry into the persistence
// tier: always the in-memory MemStore (the hot tier, bounded by
// Config.MaxRuns), and — when Config.Archive is set — a write-through
// RunStore that survives restarts (cmd/simd wires the filesystem
// archive there). Reads fall through live -> hot -> archive, so a
// rebooted daemon still serves yesterday's reports and dedupes
// resubmissions of archived specs into cache hits.
//
// Layering (see ARCHITECTURE.md "Service layer" and "Persistence &
// tenancy"):
//
//	cmd/simd                     HTTP + signals + archive/tokens wiring
//	        v
//	internal/service             queue, spec-hash cache, events, drain
//	        |                    auth/quotas, MemStore + archive tiers
//	        |            sim.RunObserved(ctx, spec, progress, observe)
//	        v
//	internal/sim -> experiment/replay/federation -> rjms
//	        |
//	        +-- rjms.AddObserver samples -> internal/tsdb rings
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rjms"
	"repro/internal/sim"
	"repro/internal/tsdb"
)

// Config bounds a server. The zero value picks the defaults.
type Config struct {
	// Workers is the number of runs executing concurrently (the shared
	// scheduler's pool size; default 2). Each run's internal sweep pool
	// is bounded separately by SweepWorkers.
	Workers int
	// QueueDepth bounds the submissions waiting for a worker (default
	// 256); a full queue rejects submissions instead of buffering
	// without bound.
	QueueDepth int
	// SweepWorkers clamps every run's sweep pool (spec.Workers); 0
	// leaves specs as submitted. With W service workers and S sweep
	// workers the daemon runs at most W*S controllers at once.
	SweepWorkers int
	// TSDB bounds the telemetry store (per-series ring sizes).
	TSDB tsdb.Options
	// MaxRuns caps the hot tier's retained run records; when exceeded,
	// the oldest records (and their live telemetry) are evicted
	// (default 1024). Archived copies survive eviction.
	MaxRuns int
	// Archive, when non-nil, is the durable store completed runs are
	// written through to and read back from after hot-tier eviction or
	// a restart. The server owns it from New on and closes it in
	// Shutdown.
	Archive RunStore
	// Auth, when non-nil, turns on bearer-token authentication and
	// per-tenant quotas; nil runs the daemon open (single-user
	// default).
	Auth *Auth
	// Logger, when non-nil, receives the daemon's structured log lines
	// (lifecycle, cache hits, archive failures, HTTP access); nil is
	// silent.
	Logger *obs.Logger
	// SSEKeepalive is the interval between ": keepalive" comment frames
	// on event streams, keeping idle proxies from reaping long-lived
	// connections (default 15s; negative disables).
	SSEKeepalive time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 1024
	}
	if c.SSEKeepalive == 0 {
		c.SSEKeepalive = 15 * time.Second
	}
	return c
}

// State is a run's lifecycle position.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one entry of a run's progress log, streamed over SSE and
// replayed to late subscribers in order. Seq increases by one per
// event.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // queued|started|cell|done|failed|cancelled
	// Cell/Done/Total/ElapsedMS describe finished sweep cells (type
	// "cell").
	Cell      string  `json:"cell,omitempty"`
	Done      int     `json:"done,omitempty"`
	Total     int     `json:"total,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// run is the server-side record of one live (queued or running)
// submission. Terminal runs are retired into the store tiers and no
// longer live here.
type run struct {
	id     string
	hash   string
	spec   sim.RunSpec // normalized, sweep pool clamped
	seq    int         // submission order
	tenant string
	// policies/kinds are the spec's derived filter columns, computed
	// once at submission.
	policies []string
	kinds    []string

	ctx    context.Context
	cancel context.CancelFunc

	// reqID is the X-Request-ID of the submission that created the run,
	// stamped into its lifecycle log lines; setupDur is the
	// validate/normalize/hash time, folded into the stage timings.
	reqID    string
	setupDur time.Duration

	mu        sync.Mutex
	cond      *sync.Cond // signals event appends and state changes
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	hits      int // deduped identical submissions after the first
	done      int // finished sweep cells
	total     int
	report    *sim.Report
	// reportJSON caches the json-sink encoding of report, built on the
	// first view that asks for it — a poll loop on a finished sweep
	// must not re-serialize hundreds of cells per request.
	reportJSON []byte
	errMsg     string
	events     []Event
}

func (r *run) appendEventLocked(typ string, e Event) {
	e.Seq = len(r.events)
	e.Type = typ
	r.events = append(r.events, e)
	r.cond.Broadcast()
}

// recordLocked builds the run's Record from its current fields; r.mu
// must be held. Heavy payloads (events copy, renders, telemetry) are
// attached by the caller.
func (r *run) recordLocked() Record {
	return Record{
		ID:         r.id,
		Seq:        r.seq,
		Tenant:     r.tenant,
		SpecHash:   r.hash,
		Name:       r.spec.Name,
		Mode:       r.spec.Mode,
		Policies:   r.policies,
		Kinds:      r.kinds,
		State:      r.state,
		Error:      r.errMsg,
		Submitted:  r.submitted,
		Started:    r.started,
		Finished:   r.finished,
		CacheHits:  r.hits,
		CellsDone:  r.done,
		CellsTotal: r.total,
	}
}

// Stats are the server-wide counters the cache-hit story is measured
// by.
type Stats struct {
	// Runs counts the process-visible runs: live plus the hot tier.
	Runs       int  `json:"runs"`
	Queued     int  `json:"queued"`
	Running    int  `json:"running"`
	Executions int  `json:"executions"`
	CacheHits  int  `json:"cache_hits"`
	Workers    int  `json:"workers"`
	QueueDepth int  `json:"queue_depth"`
	Draining   bool `json:"draining"`
	// Archived counts the durable archive's records (0 with no
	// archive configured); ArchiveErrors counts failed archive writes
	// — a non-zero value means the durable tier is lossy right now.
	Archived      int `json:"archived,omitempty"`
	ArchiveErrors int `json:"archive_errors,omitempty"`
	// TwinsLive counts the twin sessions running now; TwinsTotal every
	// session the registry retains (live and finished).
	TwinsLive  int `json:"twins_live,omitempty"`
	TwinsTotal int `json:"twins_total,omitempty"`
}

// Server is the daemon core: the live run registry, the spec-hash
// result cache, the FIFO worker scheduler, the telemetry store and the
// persistence tiers. Construct with New; serve its HTTP API via
// Handler; stop with Shutdown.
type Server struct {
	cfg   Config
	tsdb  *tsdb.Store
	store *MemStore // hot tier: terminal runs completed in this process

	// met is the metric registry and instruments (always present); log
	// is the component-scoped logger (nil-safe when Config.Logger is
	// unset).
	met *serverMetrics
	log *obs.Logger

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// sched dispatches queued run ids onto execution slots — the
	// in-process FIFO pool by default (see Scheduler for the seam the
	// fleet gateway shares).
	sched Scheduler

	mu          sync.Mutex
	runs        map[string]*run // live (non-terminal) runs only
	order       []*run          // live submission order
	byHash      map[string]*run // live dedupe index
	draining    bool
	nextSeq     int
	executions  int
	cacheHits   int
	archiveErrs int

	// restoring single-flights archived-telemetry restores per run id:
	// concurrent first queries for an evicted run wait on the winner's
	// channel instead of racing duplicate tsdb.Restore work.
	restoreMu sync.Mutex
	restoring map[string]chan struct{}

	// The twin registry (see twin.go). twinMu is leaf-level: never
	// taken while holding s.mu or a run's lock.
	twinMu      sync.Mutex
	twins       map[string]*twinRun
	twinOrder   []*twinRun
	nextTwinSeq int
	twinWG      sync.WaitGroup
}

// New builds a server and starts its worker pool. With an archive
// configured, the run-id sequence resumes above the archive's highest
// stored sequence so restarted daemons never reissue an archived id.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		tsdb:       tsdb.New(cfg.TSDB),
		baseCtx:    ctx,
		baseCancel: cancel,
		runs:       map[string]*run{},
		byHash:     map[string]*run{},
		restoring:  map[string]chan struct{}{},
		twins:      map[string]*twinRun{},
	}
	// Hot-tier eviction drops the run's live telemetry with it; the
	// archived copy keeps a snapshot for later restore.
	s.store = NewMemStore(cfg.MaxRuns, func(rec Record) { s.tsdb.Drop(rec.ID) })
	if cfg.Archive != nil {
		if max, err := cfg.Archive.MaxSeq(); err == nil && max >= 0 {
			s.nextSeq = max + 1
		}
	}
	s.sched = NewPoolScheduler(cfg.Workers, cfg.QueueDepth, s.executeID)
	s.log = cfg.Logger.Component("service")
	s.met = newServerMetrics(s)
	return s
}

// executeID is the scheduler's executor: resolve the id to its live run
// and execute it. Ids whose runs were cancelled while queued (or
// already retired) are cheap no-ops — the scheduler stays free of run
// lifecycle knowledge.
func (s *Server) executeID(id string) error {
	s.mu.Lock()
	r := s.runs[id]
	s.mu.Unlock()
	if r != nil {
		s.execute(r)
	}
	return nil
}

// TSDB exposes the telemetry store (the metrics endpoint reads it).
func (s *Server) TSDB() *tsdb.Store { return s.tsdb }

// Store exposes the hot-tier run store (tests and tooling).
func (s *Server) Store() RunStore { return s.store }

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Runs:          len(s.runs),
		Executions:    s.executions,
		CacheHits:     s.cacheHits,
		Workers:       s.cfg.Workers,
		QueueDepth:    s.cfg.QueueDepth,
		Draining:      s.draining,
		ArchiveErrors: s.archiveErrs,
	}
	for _, r := range s.runs {
		switch r.snapshot().State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		}
	}
	s.mu.Unlock()
	if n, err := s.store.Len(); err == nil {
		st.Runs += n
	}
	if s.cfg.Archive != nil {
		if n, err := s.cfg.Archive.Len(); err == nil {
			st.Archived = n
		}
	}
	st.TwinsLive, st.TwinsTotal = s.twinStats()
	return st
}

// Submit is SubmitAs for the open (unauthenticated) daemon.
func (s *Server) Submit(spec sim.RunSpec) (RunView, bool, error) {
	return s.SubmitAs(TenantConfig{}, spec)
}

// SubmitAs validates, normalizes and content-addresses a spec on behalf
// of a tenant. An identical spec already queued, running or done —
// live, hot or archived — dedupes into that run and reports cacheHit
// true; the result cache is shared across tenants (identical physics is
// identical physics), while quotas bill only fresh executions. Failed
// and cancelled runs never serve as cache entries: resubmitting their
// spec starts a fresh execution.
func (s *Server) SubmitAs(tenant TenantConfig, spec sim.RunSpec) (RunView, bool, error) {
	return s.submitAs(tenant, spec, "")
}

// SubmitTraced is SubmitAs with the caller's request ID (from the
// request context, see obs.WithRequestID) bound to the run, so the
// run's lifecycle log lines correlate with the submitting HTTP request
// across gateway and worker logs.
func (s *Server) SubmitTraced(ctx context.Context, tenant TenantConfig, spec sim.RunSpec) (RunView, bool, error) {
	return s.submitAs(tenant, spec, obs.RequestIDFrom(ctx))
}

func (s *Server) submitAs(tenant TenantConfig, spec sim.RunSpec, reqID string) (RunView, bool, error) {
	setupStart := time.Now()
	if s.cfg.Auth != nil && tenant.Name != "" {
		if wait, ok := s.cfg.Auth.AllowSubmit(tenant.Name); !ok {
			return RunView{}, false, &Error{
				Status:     429,
				Msg:        fmt.Sprintf("service: tenant %s over submission rate", tenant.Name),
				RetryAfter: wait,
			}
		}
	}
	if err := spec.Validate(); err != nil {
		return RunView{}, false, &Error{Status: 400, Msg: err.Error()}
	}
	norm := spec.Normalize()
	if s.cfg.SweepWorkers > 0 && (norm.Workers == 0 || norm.Workers > s.cfg.SweepWorkers) {
		norm.Workers = s.cfg.SweepWorkers
	}
	hash, err := sim.SpecHash(norm)
	if err != nil {
		return RunView{}, false, &Error{Status: 400, Msg: err.Error()}
	}
	setupDur := time.Since(setupStart)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return RunView{}, false, &Error{Status: 503, Msg: "service: draining, not accepting submissions"}
	}
	if prev := s.byHash[hash]; prev != nil {
		prev.mu.Lock()
		st := prev.state
		if st != StateFailed && st != StateCancelled {
			prev.hits++
			s.cacheHits++
			s.met.tierLive.Inc()
			v := prev.viewLocked(false, false)
			prev.mu.Unlock()
			s.log.Debug("cache hit", "run", v.ID, "tier", "live", "request_id", reqID)
			return v, true, nil
		}
		prev.mu.Unlock()
	}
	// Not live: a done run in the hot tier or the archive is still a
	// cache hit — the durable half of the result cache. The hit count
	// update is serialized by s.mu (stores do no read-modify-write of
	// their own), and re-putting an archive-only record warms it back
	// into the hot tier.
	if rec, tier, ok := s.storeByHashLocked(hash); ok && rec.State == StateDone {
		rec.CacheHits++
		s.cacheHits++
		if tier == "archive" {
			s.met.tierArchive.Inc()
		} else {
			s.met.tierHot.Inc()
		}
		if err := s.store.Put(rec); err == nil {
			v := viewFromRecord(rec, false, false)
			s.log.Debug("cache hit", "run", v.ID, "tier", tier, "request_id", reqID)
			return v, true, nil
		}
	}

	// A fresh execution: this is the submission quotas bill.
	if s.cfg.Auth != nil && tenant.Name != "" && tenant.MaxQueued > 0 {
		live := 0
		for _, r := range s.runs {
			if r.tenant == tenant.Name && !r.snapshot().State.Terminal() {
				live++
			}
		}
		if live >= tenant.MaxQueued {
			return RunView{}, false, &Error{
				Status:     429,
				Msg:        fmt.Sprintf("service: tenant %s has %d live runs (quota %d)", tenant.Name, live, tenant.MaxQueued),
				RetryAfter: time.Second,
			}
		}
	}

	policies, kinds := derivePolicyKinds(norm)
	ctx, cancel := context.WithCancel(s.baseCtx)
	r := &run{
		id:        fmt.Sprintf("r%06d", s.nextSeq+1),
		hash:      hash,
		spec:      norm,
		seq:       s.nextSeq,
		tenant:    tenant.Name,
		policies:  policies,
		kinds:     kinds,
		ctx:       ctx,
		cancel:    cancel,
		reqID:     reqID,
		setupDur:  setupDur,
		state:     StateQueued,
		submitted: time.Now(),
	}
	s.nextSeq++
	r.cond = sync.NewCond(&r.mu)
	// The queued event lands before the run is visible to any worker,
	// so the event log always starts queued -> started.
	r.mu.Lock()
	r.appendEventLocked("queued", Event{})
	v := r.viewLocked(false, false)
	r.mu.Unlock()
	// Register before enqueueing: a scheduler slot resolves the id
	// through s.runs, and s.mu (held here) keeps it from looking before
	// the maps are consistent. A refused enqueue unwinds the
	// registration — the run was never accepted.
	s.runs[r.id] = r
	s.order = append(s.order, r)
	s.byHash[hash] = r
	if err := s.sched.Enqueue(r.id); err != nil {
		delete(s.runs, r.id)
		delete(s.byHash, hash)
		s.order = s.order[:len(s.order)-1]
		cancel()
		if errors.Is(err, ErrQueueFull) {
			return RunView{}, false, &Error{Status: 503, Msg: fmt.Sprintf("service: queue full (%d pending)", s.cfg.QueueDepth)}
		}
		return RunView{}, false, &Error{Status: 503, Msg: err.Error()}
	}
	s.log.Info("run queued", "run", r.id, "hash", hash[:12], "tenant", tenant.Name,
		"mode", string(norm.Mode), "request_id", reqID)
	return v, false, nil
}

// storeByHashLocked resolves a spec hash through the store tiers (hot
// first) and names the tier that answered ("hot" or "archive") for the
// cache-tier metrics; s.mu must be held (it serializes hit-count
// updates).
func (s *Server) storeByHashLocked(hash string) (Record, string, bool) {
	if rec, ok, err := s.store.ByHash(hash); err == nil && ok {
		return rec, "hot", true
	}
	if s.cfg.Archive != nil {
		if rec, ok, err := s.cfg.Archive.ByHash(hash); err == nil && ok {
			return rec, "archive", true
		}
	}
	return Record{}, "", false
}

// storeRecord resolves a run id through the store tiers (hot first).
func (s *Server) storeRecord(id string) (Record, bool) {
	if rec, ok, err := s.store.Get(id); err == nil && ok {
		return rec, true
	}
	if s.cfg.Archive != nil {
		if rec, ok, err := s.cfg.Archive.Get(id); err == nil && ok {
			return rec, true
		}
	}
	return Record{}, false
}

// retire moves a terminal run out of the live registry into the store
// tiers: hot always, archive (write-through) for done runs. The record
// is built outside the server lock (rendering a big sweep's sinks is
// the expensive part), then the handoff — final hit count, live-index
// removal, hot-tier put — is atomic under s.mu, so a concurrent Submit
// sees the run either live or stored, never neither, and no cache hit
// lands between the count copy and the put.
func (s *Server) retire(r *run) {
	r.mu.Lock()
	rec := r.recordLocked()
	rec.Events = append([]Event(nil), r.events...)
	rec.Spec = r.spec
	rec.Report = r.report
	r.mu.Unlock()

	renderStart := time.Now()
	if rec.Report != nil {
		rec.Renders = renderAll(*rec.Report)
	}
	renderDur := time.Since(renderStart)
	if rs := s.tsdb.Lookup(r.id); rs != nil {
		rec.Telemetry = rs.Snapshot()
	}
	rec.Stages = r.stageTimings(rec, renderDur)

	// Only done runs are worth durable bytes: failures and
	// cancellations are not reusable results, and archiving them would
	// shadow (by spec hash) a later successful run of the same spec
	// written by another process sharing the directory. The write
	// happens before the live→hot handoff so its duration lands in the
	// hot record's stage timings; the run is still live (and deduping)
	// meanwhile. The archived copy itself carries ArchiveMS 0 — it was
	// serialized mid-write — and a hit count that may trail the hot
	// tier's by the hits landing during the write; both keep accruing
	// only in the hot tier afterwards anyway.
	if s.cfg.Archive != nil && rec.State == StateDone {
		archiveStart := time.Now()
		err := s.cfg.Archive.Put(rec)
		rec.Stages.ArchiveMS = float64(time.Since(archiveStart).Microseconds()) / 1000
		if err != nil {
			s.mu.Lock()
			s.archiveErrs++
			s.mu.Unlock()
			s.log.Warn("archive write failed", "run", r.id, "error", err,
				"request_id", r.reqID)
		}
	}
	s.met.observeStages(rec.Stages)

	s.mu.Lock()
	r.mu.Lock()
	rec.CacheHits = r.hits
	r.mu.Unlock()
	if s.runs[r.id] == r {
		delete(s.runs, r.id)
		if s.byHash[r.hash] == r {
			delete(s.byHash, r.hash)
		}
		for i, cur := range s.order {
			if cur == r {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	putErr := s.store.Put(rec)
	s.mu.Unlock()
	_ = putErr
}

// stageTimings assembles the run's pipeline stage breakdown at retire
// time. Runs cancelled while queued have no execute stage; ArchiveMS
// is stamped by retire after the durable write it times.
func (r *run) stageTimings(rec Record, renderDur time.Duration) *StageTimings {
	ms := func(d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(d.Microseconds()) / 1000
	}
	st := &StageTimings{
		SetupMS:  ms(r.setupDur),
		RenderMS: ms(renderDur),
	}
	if !rec.Started.IsZero() {
		st.QueuedMS = ms(rec.Started.Sub(rec.Submitted))
		st.ExecuteMS = ms(rec.Finished.Sub(rec.Started))
	} else if !rec.Finished.IsZero() {
		st.QueuedMS = ms(rec.Finished.Sub(rec.Submitted))
	}
	return st
}

// renderAll renders the report through every registered sink at default
// options — the forms a Record serves after the live Report is gone
// (and the only forms the archive can persist at all).
func renderAll(rep sim.Report) map[string][]byte {
	out := map[string][]byte{}
	for _, name := range sim.Sinks.Names() {
		var buf bytes.Buffer
		if err := sim.Export(&buf, name, rep, sim.SinkOptions{}); err == nil {
			out[name] = buf.Bytes()
		}
	}
	return out
}

// Get returns one run's view (withReport controls the heavy payload),
// resolving live runs first, then the store tiers. Trusted in-process
// callers only — HTTP reads go through GetAs.
func (s *Server) Get(id string, withReport bool) (RunView, error) {
	return s.GetAs(TenantConfig{Admin: true}, id, withReport)
}

// GetAs is Get with the caller's tenancy applied: on an authenticated
// daemon a non-admin tenant resolves only its own runs, and anyone
// else's run answers the exact 404 an id that never existed answers —
// a 403 would confirm the id is taken, handing a tenant walking the
// sequential id space an existence oracle.
func (s *Server) GetAs(tenant TenantConfig, id string, withReport bool) (RunView, error) {
	s.mu.Lock()
	r := s.runs[id]
	s.mu.Unlock()
	if r != nil {
		r.mu.Lock()
		defer r.mu.Unlock()
		if err := readAllowed(s.cfg.Auth, tenant, r.tenant, id); err != nil {
			return RunView{}, err
		}
		return r.viewLocked(withReport, true), nil
	}
	if rec, ok := s.storeRecord(id); ok {
		if err := readAllowed(s.cfg.Auth, tenant, rec.Tenant, id); err != nil {
			return RunView{}, err
		}
		return viewFromRecord(rec, withReport, true), nil
	}
	return RunView{}, errUnknownRun(id)
}

// errUnknownRun is THE not-found answer for a run id: foreign-tenant
// reads reuse it verbatim so the two cases are indistinguishable.
func errUnknownRun(id string) *Error {
	return &Error{Status: 404, Msg: fmt.Sprintf("service: unknown run %q", id)}
}

// readAllowed is the per-run read ownership check: open daemons,
// admins, trusted in-process callers (empty tenant name) and owners
// pass; every other tenant gets the unknown-run 404.
func readAllowed(auth *Auth, tenant TenantConfig, owner, id string) error {
	if auth == nil || tenant.Admin || tenant.Name == "" || tenant.Name == owner {
		return nil
	}
	return errUnknownRun(id)
}

// Report hands the run's sim.Report to fn while the run is terminal —
// the in-process bridge to the report payload. Runs that only exist as
// archive records (completed by an earlier process) carry no live
// Report; use RenderReport for those.
func (s *Server) Report(id string, fn func(rep sim.Report) error) error {
	s.mu.Lock()
	r := s.runs[id]
	s.mu.Unlock()
	if r != nil {
		r.mu.Lock()
		state, rep, errMsg := r.state, r.report, r.errMsg
		r.mu.Unlock()
		if !state.Terminal() {
			return &Error{Status: 409, Msg: fmt.Sprintf("service: run %s is %s; report not ready", id, state)}
		}
		if rep == nil {
			return &Error{Status: 409, Msg: fmt.Sprintf("service: run %s (%s) produced no report: %s", id, state, errMsg)}
		}
		return fn(*rep)
	}
	rec, ok := s.storeRecord(id)
	if !ok {
		return &Error{Status: 404, Msg: fmt.Sprintf("service: unknown run %q", id)}
	}
	if rec.Report == nil {
		return &Error{Status: 409, Msg: fmt.Sprintf("service: run %s (%s) has no report in this process", id, rec.State)}
	}
	return fn(*rec.Report)
}

// RenderReport writes the run's report in the named sink format — the
// report endpoint's engine. Runs with a live Report render on demand
// with the requested options; archive-only records serve the rendering
// captured at completion (default options), so a restarted daemon still
// answers byte-identically for the formats it stored.
func (s *Server) RenderReport(id, format string, opt sim.SinkOptions, w io.Writer) error {
	if _, err := sim.Sinks.Lookup(format); err != nil {
		return &Error{Status: 400, Msg: err.Error()}
	}
	err := s.Report(id, func(rep sim.Report) error {
		return sim.Export(w, format, rep, opt)
	})
	var apiErr *Error
	if err == nil || !errors.As(err, &apiErr) || apiErr.Status != 409 {
		return err
	}
	// No live report — fall back to the stored rendering.
	rec, ok := s.storeRecord(id)
	if !ok {
		return err
	}
	b, ok := rec.Renders[format]
	if !ok {
		return &Error{Status: 409, Msg: fmt.Sprintf("service: run %s (%s) stored no %s rendering", id, rec.State, format)}
	}
	_, werr := w.Write(b)
	return werr
}

// List returns the run views matching the filter in submission order
// across every tier — live runs, the hot tier and the archive — plus
// the cursor of the next page ("" when exhausted). Ids are unique
// across tiers (the archive seeds the id sequence at boot), with the
// freshest tier winning when a record exists in several.
func (s *Server) List(f ListFilter) ([]RunView, string, error) {
	// Stores are asked for everything matching (no cursor/limit):
	// paging must happen once, over the merged set, or page boundaries
	// would drift between tiers.
	base := f
	base.Cursor, base.Limit = "", 0

	seen := map[string]bool{}
	var records []Record
	s.mu.Lock()
	for _, r := range s.order {
		r.mu.Lock()
		rec := r.recordLocked()
		r.mu.Unlock()
		records = append(records, rec)
		seen[rec.ID] = true
	}
	s.mu.Unlock()

	hot, _, err := s.store.List(base)
	if err != nil {
		return nil, "", err
	}
	for _, rec := range hot {
		if !seen[rec.ID] {
			records = append(records, rec)
			seen[rec.ID] = true
		}
	}
	if s.cfg.Archive != nil {
		arch, _, err := s.cfg.Archive.List(base)
		if err != nil {
			return nil, "", err
		}
		for _, rec := range arch {
			if !seen[rec.ID] {
				records = append(records, rec)
				seen[rec.ID] = true
			}
		}
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Seq < records[j].Seq })
	page, next, err := pageRecords(records, f)
	if err != nil {
		return nil, "", err
	}
	views := make([]RunView, 0, len(page))
	for _, rec := range page {
		views = append(views, viewFromRecord(rec, false, false))
	}
	return views, next, nil
}

// Cancel is CancelAs with operator rights (trusted in-process callers).
func (s *Server) Cancel(id string) (RunView, error) {
	return s.CancelAs(TenantConfig{Admin: true}, id)
}

// CancelAs cancels a run on behalf of a tenant: a queued run
// transitions immediately, a running one has its context cancelled and
// transitions when the engine unwinds (bounded-step checks keep that
// prompt). Cancelling a terminal run is a no-op; the returned view
// reports the state reached. With auth enabled, a tenant may cancel
// only its own runs unless marked admin.
func (s *Server) CancelAs(tenant TenantConfig, id string) (RunView, error) {
	s.mu.Lock()
	r := s.runs[id]
	s.mu.Unlock()
	if r == nil {
		if rec, ok := s.storeRecord(id); ok {
			if err := cancelAllowed(s.cfg.Auth, tenant, rec.Tenant); err != nil {
				return RunView{}, err
			}
			// Already terminal: cancelling is a no-op.
			return viewFromRecord(rec, false, false), nil
		}
		return RunView{}, &Error{Status: 404, Msg: fmt.Sprintf("service: unknown run %q", id)}
	}
	if err := cancelAllowed(s.cfg.Auth, tenant, r.tenant); err != nil {
		return RunView{}, err
	}
	r.cancel()
	retired := false
	r.mu.Lock()
	if r.state == StateQueued {
		r.state = StateCancelled
		r.finished = time.Now()
		r.errMsg = context.Canceled.Error()
		r.appendEventLocked("cancelled", Event{Error: r.errMsg})
		retired = true
	}
	v := r.viewLocked(false, false)
	r.mu.Unlock()
	if retired {
		// The worker that later pops this run sees it non-queued and
		// skips it, so this is the only retire.
		s.retire(r)
	}
	return v, nil
}

// cancelAllowed is the cancellation ownership check.
func cancelAllowed(auth *Auth, tenant TenantConfig, owner string) error {
	if auth == nil || tenant.Admin || tenant.Name == "" || tenant.Name == owner {
		return nil
	}
	return &Error{Status: 403, Msg: "service: run belongs to another tenant"}
}

// Follow replays a run's event log from the start and then follows live
// appends, invoking fn per event in order, until the run is terminal
// and fully delivered, fn errors, or ctx ends — the SSE loop. Stored
// (terminal) runs replay their archived log and return.
func (s *Server) Follow(ctx context.Context, id string, fn func(Event) error) error {
	s.mu.Lock()
	r := s.runs[id]
	s.mu.Unlock()
	if r == nil {
		rec, ok := s.storeRecord(id)
		if !ok {
			return &Error{Status: 404, Msg: fmt.Sprintf("service: unknown run %q", id)}
		}
		for _, e := range rec.Events {
			if err := fn(e); err != nil {
				return err
			}
		}
		return nil
	}
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()

	idx := 0
	r.mu.Lock()
	for {
		for idx < len(r.events) {
			e := r.events[idx]
			idx++
			r.mu.Unlock()
			if err := fn(e); err != nil {
				return err
			}
			r.mu.Lock()
		}
		if r.state.Terminal() {
			r.mu.Unlock()
			return nil
		}
		if err := ctx.Err(); err != nil {
			r.mu.Unlock()
			return err
		}
		r.cond.Wait()
	}
}

// execute runs one queued submission on the calling worker.
func (s *Server) execute(r *run) {
	// The run's cancel context is a child of baseCtx and stays
	// registered there until cancelled — release it once execution is
	// over, or a long-lived daemon leaks one context per finished run.
	defer r.cancel()
	r.mu.Lock()
	if r.state != StateQueued {
		r.mu.Unlock()
		return // cancelled while queued (that path retires the run)
	}
	r.state = StateRunning
	r.started = time.Now()
	wait := r.started.Sub(r.submitted)
	r.appendEventLocked("started", Event{})
	r.mu.Unlock()

	s.met.schedWait.Observe(wait.Seconds())
	s.log.Debug("run started", "run", r.id, "wait", wait.Round(time.Microsecond),
		"request_id", r.reqID)

	s.mu.Lock()
	s.executions++
	s.mu.Unlock()

	rep, err := sim.RunObserved(r.ctx, r.spec, s.progressFn(r), s.observeFn(r))

	r.mu.Lock()
	r.finished = time.Now()
	if rep.Single != nil || rep.Table != nil || rep.FederationTable != nil {
		r.report = &rep
	}
	ctxErr := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	// A cancellation that raced in after every cell completed leaves a
	// ctx error but an error-free report — the work is all there, so
	// classify by the result, not the race: only an *incomplete* run is
	// cancelled (the sweep pools stamp ctx.Err() into unrun cells, so
	// completeness is exactly "payload present, no cell errors").
	complete := r.report != nil && len(rep.Errs()) == 0
	switch {
	case ctxErr && !complete:
		r.state = StateCancelled
		r.errMsg = err.Error()
		r.appendEventLocked("cancelled", Event{Error: r.errMsg})
	case err != nil && !ctxErr:
		r.state = StateFailed
		r.errMsg = err.Error()
		r.appendEventLocked("failed", Event{Error: r.errMsg})
	default:
		r.state = StateDone
		if errs := rep.Errs(); len(errs) > 0 {
			// Cell-level failures keep the run inspectable but mark it
			// failed: a cached result must never silently hide errors.
			r.state = StateFailed
			r.errMsg = errs[0].Error()
			r.appendEventLocked("failed", Event{Error: r.errMsg})
		} else {
			r.appendEventLocked("done", Event{Done: r.done, Total: r.total})
		}
	}
	state, errMsg, elapsed := r.state, r.errMsg, r.finished.Sub(r.started)
	r.mu.Unlock()
	s.log.Info("run finished", "run", r.id, "state", string(state),
		"elapsed", elapsed.Round(time.Millisecond), "error", errMsg,
		"request_id", r.reqID)
	s.retire(r)
}

// progressFn adapts finished-cell callbacks into run events.
func (s *Server) progressFn(r *run) sim.Progress {
	return func(done, total int, cell string, elapsed time.Duration, err error) {
		e := Event{Cell: cell, Done: done, Total: total, ElapsedMS: float64(elapsed.Microseconds()) / 1000}
		if err != nil {
			e.Error = err.Error()
		}
		r.mu.Lock()
		r.done, r.total = done, total
		r.appendEventLocked("cell", e)
		r.mu.Unlock()
	}
}

// observeFn attaches the telemetry collector: every controller the run
// builds streams power draw, active cap, pending cores and running jobs
// into the run's tsdb series at each metrics sample. Single runs use
// the bare series names; sweep cells and federation members prefix
// theirs with the cell label ("smalljob/60%/SHUT/power"). Nothing stops
// a cell-list spec from naming two cells identically, and two
// controllers interleaving appends into one series would corrupt it —
// colliding labels get a "#2"-style disambiguator instead (assignment
// order follows pool scheduling, so the suffixes are stable only for
// deterministic label sets; deduped telemetry beats dropped telemetry).
func (s *Server) observeFn(r *run) sim.Observer {
	rs := s.tsdb.Run(r.id)
	single := r.spec.Mode == sim.ModeSingle
	var (
		mu   sync.Mutex
		seen = map[string]int{}
	)
	return func(cell string, ctl *rjms.Controller) {
		prefix := ""
		if !single {
			mu.Lock()
			seen[cell]++
			if n := seen[cell]; n > 1 {
				cell = fmt.Sprintf("%s#%d", cell, n)
			}
			mu.Unlock()
			prefix = cell + "/"
		}
		power, cap := prefix+"power", prefix+"cap"
		pending, running := prefix+"pending_cores", prefix+"running_jobs"
		// Engine hot-path counters are sampled out-of-band here: the
		// controller bumps plain uint64s on the deterministic path, and
		// each sample publishes the delta since the previous one as
		// atomic adds — the hot path never touches an atomic or
		// allocates for metrics. The tail between the final sample and
		// run teardown goes unreported; the counters are rates, not
		// ledgers.
		var last rjms.SchedCounters
		met := s.met
		ctl.AddObserver(func(now int64) {
			// Append errors (series caps, never out-of-order — the
			// virtual clock is monotone) drop the sample, not the run.
			_ = rs.Append(power, now, float64(ctl.Cluster().Power()))
			w := 0.0
			if c := ctl.ActiveCap(); c.IsSet() {
				w = float64(c.Watts())
			}
			_ = rs.Append(cap, now, w)
			_ = rs.Append(pending, now, float64(ctl.PendingCores()))
			_ = rs.Append(running, now, float64(ctl.RunningCount()))

			cur := ctl.SchedCounters()
			met.engineEvents.Add(cur.EventsFired - last.EventsFired)
			met.passRun.Add(cur.Passes - last.Passes)
			met.passSkipped.Add(cur.PassesSkipped - last.PassesSkipped)
			met.memoHit.Add(cur.ProjectionMemoHits - last.ProjectionMemoHits)
			met.memoMiss.Add(cur.ProjectionMemoMiss - last.ProjectionMemoMiss)
			last = cur
		})
	}
}

// Shutdown drains the server: submissions are refused, queued runs are
// cancelled (they never started; re-submitting later re-executes), and
// the workers finish their in-flight runs — whose results land in the
// store tiers, so an archive-backed daemon hands its successor
// everything that completed. If ctx ends first, the in-flight runs are
// hard-cancelled through their contexts and Shutdown still waits for
// the pool to unwind (no goroutine outlives it) before returning ctx's
// error. The archive is closed last.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	queued := make([]*run, 0)
	for _, r := range s.runs {
		if r.snapshot().State == StateQueued {
			queued = append(queued, r)
		}
	}
	s.mu.Unlock()

	sort.Slice(queued, func(i, j int) bool { return queued[i].seq < queued[j].seq })
	for _, r := range queued {
		r.cancel()
		retired := false
		r.mu.Lock()
		if r.state == StateQueued {
			r.state = StateCancelled
			r.finished = time.Now()
			r.errMsg = "service: shut down before the run started"
			r.appendEventLocked("cancelled", Event{Error: r.errMsg})
			retired = true
		}
		r.mu.Unlock()
		if retired {
			s.retire(r)
		}
	}

	// Twins are cancelled outright — a live session has no batch result
	// to finish; its spec + mutation log (already served to the owner)
	// is the replayable artifact.
	twinErr := s.stopTwins(ctx)

	// The scheduler drains the in-flight runs (the cancelled queued ones
	// pop as no-ops). If ctx ends first, hard-cancel every run context
	// and wait again — the engine unwinds promptly, so no goroutine
	// outlives Shutdown.
	var err error
	if err = s.sched.Shutdown(ctx); err != nil {
		s.baseCancel()
		_ = s.sched.Shutdown(context.Background())
	}
	if err == nil {
		err = twinErr
	}
	if s.cfg.Archive != nil {
		if cerr := s.cfg.Archive.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// snapshot reads the run's mutable fields under its lock.
func (r *run) snapshot() RunView {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.viewLocked(false, false)
}

// Error is an API error with its HTTP status.
type Error struct {
	Status int
	Msg    string
	// RetryAfter, when non-zero, is surfaced as a Retry-After header on
	// 429 responses.
	RetryAfter time.Duration
}

func (e *Error) Error() string { return e.Msg }
