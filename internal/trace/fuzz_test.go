package trace

import (
	"bytes"
	"testing"

	"repro/internal/job"
)

// Native Go fuzz targets for the streaming SWF pipeline. The seed
// corpus (inline here plus the checked-in files under
// testdata/fuzz/) covers valid records, truncated lines, malformed
// numerics and pathological values; the targets assert the parsing
// contracts rather than just crash-freedom:
//
//   - Scanner never yields a job that fails job.Validate (consumers
//     schedule whatever it yields),
//   - errors are sticky and end-of-stream is stable,
//   - the transform chain never panics and preserves the per-record
//     contracts whatever the input bytes.

// scannerSeeds is the shared seed corpus of both targets.
var scannerSeeds = []string{
	// Valid records (Writer's own field layout).
	"1 0 -1 120 16 -1 -1 16 600 -1 1 7 -1 -1 -1 -1 -1 -1\n" +
		"2 60 -1 30 4 -1 -1 4 60 -1 1 8 -1 -1 -1 -1 -1 -1\n",
	// Header comments and blank lines.
	"; UnixStartTime: 0\n; MaxNodes: 80\n\n1 0 -1 10 1 -1 -1 1 10 -1 1 1 -1 -1 -1 -1 -1 -1\n",
	// Incomplete records the replay filter drops (unknown runtime or
	// processors).
	"3 0 -1 -1 8 -1 -1 8 60 -1 1 2 -1 -1 -1 -1 -1 -1\n" +
		"4 0 -1 50 -1 -1 -1 -1 60 -1 1 2 -1 -1 -1 -1 -1 -1\n",
	// Truncated line (too few fields).
	"5 0 -1 10\n",
	// Malformed numerics.
	"abc def ghi jkl mno\n",
	"6 zero -1 10 1 -1 -1 1 10 -1 1 1 -1 -1 -1 -1 -1 -1\n",
	// Pathological values: NaN, infinities, out-of-int64 floats,
	// negatives everywhere.
	"7 NaN -1 10 1 -1 -1 1 10 -1 1 1 -1 -1 -1 -1 -1 -1\n",
	"8 0 -1 Inf 1 -1 -1 1 10 -1 1 1 -1 -1 -1 -1 -1 -1\n",
	"9 0 -1 1e300 1 -1 -1 1 10 -1 1 1 -1 -1 -1 -1 -1 -1\n",
	"10 -5 -1 10 1 -1 -1 1 -20 -1 1 1 -1 -1 -1 -1 -1 -1\n",
	"11 9223372036854775807 -1 10 1 -1 -1 1 10 -1 1 1 -1 -1 -1 -1 -1 -1\n",
	// Walltime below runtime (scanner must lift it).
	"12 0 -1 100 2 -1 -1 2 5 -1 1 1 -1 -1 -1 -1 -1 -1\n",
	// Empty and whitespace-only inputs.
	"",
	"   \n\t\n",
}

// drainScanner pulls the whole stream, checking the per-record
// contract; it returns the records and whether an error ended the
// stream.
func drainScanner(t *testing.T, sc *Scanner) ([]*job.Job, error) {
	t.Helper()
	var out []*job.Job
	for {
		j, err := sc.Next()
		if err != nil {
			// Errors must be sticky.
			if _, err2 := sc.Next(); err2 == nil {
				t.Fatalf("scanner error %v not sticky", err)
			}
			return out, err
		}
		if j == nil {
			// End of stream must be stable.
			if j2, err2 := sc.Next(); j2 != nil || err2 != nil {
				t.Fatalf("scanner yielded (%v, %v) after end of stream", j2, err2)
			}
			return out, nil
		}
		if err := j.Validate(); err != nil {
			t.Fatalf("scanner yielded invalid job: %v", err)
		}
		out = append(out, j)
	}
}

func FuzzScanner(f *testing.F) {
	for _, s := range scannerSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewScanner(bytes.NewReader(data))
		jobs, err := drainScanner(t, sc)
		if err != nil {
			return
		}
		if sc.Skipped() < 0 {
			t.Fatalf("negative skip count %d", sc.Skipped())
		}
		// Round-trip: whatever parsed must serialize and re-parse to
		// the same scheduling-relevant fields.
		var buf bytes.Buffer
		w := NewWriter(&buf, "fuzz")
		for _, j := range jobs {
			if err := w.Write(j); err != nil {
				t.Fatalf("write back: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		back, err := drainScanner(t, NewScanner(&buf))
		if err != nil {
			t.Fatalf("re-parse of written output: %v", err)
		}
		if len(back) != len(jobs) {
			t.Fatalf("round trip kept %d of %d jobs", len(back), len(jobs))
		}
		for i, j := range jobs {
			b := back[i]
			if b.ID != j.ID || b.Cores != j.Cores || b.Submit != j.Submit ||
				b.Runtime != j.Runtime || b.Walltime != j.Walltime {
				t.Fatalf("round trip changed job %d: %+v -> %+v", i, j, b)
			}
		}
	})
}

func FuzzStreamTransforms(f *testing.F) {
	for _, s := range scannerSeeds {
		f.Add([]byte(s), int64(0), int64(3600), 1.0, 16, 8, 10)
	}
	f.Add([]byte("1 0 -1 120 16 -1 -1 16 600 -1 1 7 -1 -1 -1 -1 -1 -1\n"),
		int64(-5), int64(-1), -2.5, 0, -3, -1)
	f.Add([]byte("1 0 -1 120 16 -1 -1 16 600 -1 1 7 -1 -1 -1 -1 -1 -1\n"),
		int64(100), int64(100), 0.5, 1000000, 1, 2)
	f.Fuzz(func(t *testing.T, data []byte, wstart, wend int64, scale float64, coresFrom, coresTo, limit int) {
		// The chain mirrors SWFSource.transforms over arbitrary
		// parameters; invalid configurations must surface as stream
		// errors, never panics.
		var src Stream = NewScanner(bytes.NewReader(data))
		src = Window(src, wstart, wend)
		src = ScaleTime(src, scale)
		src = ScaleCores(src, coresFrom, coresTo)
		src = Filter(src, func(j *job.Job) bool { return j.Cores%2 == 0 })
		if limit >= 0 {
			src = Limit(src, limit)
		}
		n := 0
		for {
			j, err := src.Next()
			if err != nil {
				if j != nil {
					t.Fatal("stream returned a job alongside an error")
				}
				// Sticky.
				if _, err2 := src.Next(); err2 == nil {
					t.Fatal("stream error not sticky")
				}
				return
			}
			if j == nil {
				return
			}
			n++
			if limit >= 0 && n > limit {
				t.Fatalf("Limit(%d) passed %d jobs", limit, n)
			}
			if j.Cores < 1 {
				t.Fatalf("transform chain yielded %d cores", j.Cores)
			}
			if j.Cores%2 != 0 {
				t.Fatalf("Filter leaked odd-core job %d", j.ID)
			}
			if coresFrom > 0 && coresTo > 0 && j.Cores > coresTo {
				t.Fatalf("ScaleCores yielded %d cores on a %d-core machine", j.Cores, coresTo)
			}
			if j.Submit < 0 && wstart >= 0 && scale > 0 {
				t.Fatalf("windowed+scaled submit %d negative", j.Submit)
			}
		}
	})
}
