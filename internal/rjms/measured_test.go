package rjms

import (
	"testing"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/power"
)

func TestMeasuredModeValidation(t *testing.T) {
	cfg := tinyConfig(core.PolicyShut)
	cfg.MeasuredPowerNoise = -0.1
	if _, err := New(cfg); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestMeasuredModeDeterministic(t *testing.T) {
	run := func() float64 {
		cfg := tinyConfig(core.PolicyDvfs)
		cfg.MeasuredPowerNoise = 0.03
		cfg.MeasuredPowerSeed = 99
		c := mustNew(t, cfg)
		if _, err := c.ReservePowerCap(0, 100000, power.CapFraction(0.7, c.Cluster().MaxPower())); err != nil {
			t.Fatal(err)
		}
		var jobs []*job.Job
		for i := 0; i < 30; i++ {
			jobs = append(jobs, &job.Job{
				ID: job.ID(i + 1), User: "u", Cores: 8,
				Submit: int64(i * 10), Runtime: 300, Walltime: 600,
			})
		}
		if err := c.LoadWorkload(jobs); err != nil {
			t.Fatal(err)
		}
		sum, err := c.Run(2000)
		if err != nil {
			t.Fatal(err)
		}
		return float64(sum.EnergyJ)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("measured mode not deterministic: %v vs %v", a, b)
	}
}

// With a guarded estimator, measurement-based capping admits less load
// than exact bookkeeping near the cap (the guard band is conservative)
// but the true draw stays within the budget.
func TestMeasuredModeConservative(t *testing.T) {
	mk := func(noise float64) (*Controller, power.Cap) {
		cfg := tinyConfig(core.PolicyShut)
		cfg.MeasuredPowerNoise = noise
		cfg.MeasuredPowerSeed = 7
		c := mustNew(t, cfg)
		budget := power.CapWatts(c.Cluster().IdlePower() + 3*241 + 10)
		if _, err := c.ReservePowerCap(0, 100000, budget); err != nil {
			t.Fatal(err)
		}
		var jobs []*job.Job
		for i := 0; i < 12; i++ {
			jobs = append(jobs, &job.Job{
				ID: job.ID(i + 1), User: "u", Cores: 4, // one node each
				Submit: int64(i * 20), Runtime: 100000, Walltime: 200000,
			})
		}
		if err := c.LoadWorkload(jobs); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(5000); err != nil {
			t.Fatal(err)
		}
		return c, budget
	}
	exact, budget := mk(0)
	if got := exact.Cluster().Power(); !budget.Allows(got) {
		t.Fatalf("exact mode exceeded the cap: %v > %v", got, budget)
	}
	exactRunning := exact.RunningCount()
	if exactRunning == 0 {
		t.Fatal("exact mode admitted nothing")
	}
	measured, budget2 := mk(0.05)
	if got := measured.Cluster().Power(); !budget2.Allows(got) {
		t.Errorf("measured mode let the true draw exceed the cap: %v > %v", got, budget2)
	}
	if measured.RunningCount() > exactRunning {
		t.Errorf("measured mode admitted more (%d) than exact (%d) despite the guard band",
			measured.RunningCount(), exactRunning)
	}
}
