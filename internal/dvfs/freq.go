// Package dvfs models Dynamic Voltage and Frequency Scaling as used by the
// powercapping scheduler of Georgiou, Glesser and Trystram (IPDPSW 2015).
//
// The package provides the CPU frequency ladder of the Curie supercomputer's
// Bullx B510 nodes (Intel Sandy Bridge, 1.2 GHz to 2.7 GHz), the walltime
// degradation model used when jobs are forced to run below the nominal
// frequency (Section V of the paper), and the rho criterion that decides
// whether DVFS or node shutdown yields more computational work under a power
// cap (Section III-A).
package dvfs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Freq is a CPU frequency in megahertz. The zero value means "unspecified";
// schedulers should treat it as the nominal (maximum) frequency.
type Freq int

// The Curie frequency ladder (Figure 4 of the paper).
const (
	F1200 Freq = 1200
	F1400 Freq = 1400
	F1600 Freq = 1600
	F1800 Freq = 1800
	F2000 Freq = 2000
	F2200 Freq = 2200
	F2400 Freq = 2400
	F2700 Freq = 2700
)

// GHz reports the frequency in gigahertz.
func (f Freq) GHz() float64 { return float64(f) / 1000 }

// String renders the frequency as e.g. "2.7 GHz".
func (f Freq) String() string {
	if f == 0 {
		return "nominal"
	}
	s := strconv.FormatFloat(f.GHz(), 'f', -1, 64)
	return s + " GHz"
}

// ParseFreq parses strings such as "2.7", "2.7GHz", "2700", "2700MHz".
func ParseFreq(s string) (Freq, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	t = strings.TrimSuffix(t, "ghz")
	t = strings.TrimSuffix(t, "mhz")
	t = strings.TrimSpace(t)
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("dvfs: cannot parse frequency %q: %v", s, err)
	}
	// Values below 100 are interpreted as GHz, otherwise MHz.
	if v < 100 {
		v *= 1000
	}
	if v <= 0 {
		return 0, fmt.Errorf("dvfs: non-positive frequency %q", s)
	}
	return Freq(v + 0.5), nil
}

// Ladder is an ordered set of available frequencies, ascending.
type Ladder []Freq

// CurieLadder returns the eight P-states of a Curie compute node,
// ascending from 1.2 GHz to the nominal 2.7 GHz.
func CurieLadder() Ladder {
	return Ladder{F1200, F1400, F1600, F1800, F2000, F2200, F2400, F2700}
}

// MixLadder returns the restricted ladder used by the MIX policy
// (Section VI-B): only the high frequencies 2.0-2.7 GHz, because the
// energy/performance trade-off is non-monotonic and its optimum lies
// between 2.0 and 2.7 GHz on Curie.
func MixLadder() Ladder {
	return Ladder{F2000, F2200, F2400, F2700}
}

// Validate checks that the ladder is non-empty, strictly ascending and
// contains only positive frequencies.
func (l Ladder) Validate() error {
	if len(l) == 0 {
		return fmt.Errorf("dvfs: empty frequency ladder")
	}
	for i, f := range l {
		if f <= 0 {
			return fmt.Errorf("dvfs: non-positive frequency %d at index %d", f, i)
		}
		if i > 0 && l[i-1] >= f {
			return fmt.Errorf("dvfs: ladder not strictly ascending at index %d (%v >= %v)", i, l[i-1], f)
		}
	}
	return nil
}

// Min returns the lowest frequency of the ladder.
func (l Ladder) Min() Freq { return l[0] }

// Max returns the highest (nominal) frequency of the ladder.
func (l Ladder) Max() Freq { return l[len(l)-1] }

// Contains reports whether f is a member of the ladder.
func (l Ladder) Contains(f Freq) bool {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= f })
	return i < len(l) && l[i] == f
}

// Below returns the next frequency strictly below f, or 0 and false when f
// already is the lowest rung. It is the "a slower value" step of the online
// Algorithm 2.
func (l Ladder) Below(f Freq) (Freq, bool) {
	i := sort.Search(len(l), func(i int) bool { return l[i] >= f })
	if i == 0 {
		return 0, false
	}
	return l[i-1], true
}

// Above returns the next frequency strictly above f, or 0 and false when f
// already is the nominal frequency.
func (l Ladder) Above(f Freq) (Freq, bool) {
	i := sort.Search(len(l), func(i int) bool { return l[i] > f })
	if i == len(l) {
		return 0, false
	}
	return l[i], true
}

// Clamp returns f limited to the ladder's range and snapped to the nearest
// rung at or below f (or the minimum rung when f is below the range).
func (l Ladder) Clamp(f Freq) Freq {
	if f <= l.Min() {
		return l.Min()
	}
	if f >= l.Max() {
		return l.Max()
	}
	i := sort.Search(len(l), func(i int) bool { return l[i] > f })
	return l[i-1]
}

// Descending returns a copy of the ladder sorted from the nominal frequency
// downwards, the order in which the online algorithm probes frequencies.
func (l Ladder) Descending() []Freq {
	out := make([]Freq, len(l))
	for i, f := range l {
		out[len(l)-1-i] = f
	}
	return out
}

// Clone returns an independent copy of the ladder.
func (l Ladder) Clone() Ladder {
	out := make(Ladder, len(l))
	copy(out, l)
	return out
}
