package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dvfs"
	"repro/internal/power"
)

func TestPolicyParseAndString(t *testing.T) {
	cases := map[string]Policy{
		"NONE": PolicyNone, "off": PolicyNone,
		"SHUT": PolicyShut, "shutdown": PolicyShut,
		"dvfs": PolicyDvfs,
		"MIX":  PolicyMix, "mixed": PolicyMix,
		" idle ": PolicyIdle,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v,%v want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
	for p, want := range map[Policy]string{
		PolicyNone: "NONE", PolicyShut: "SHUT", PolicyDvfs: "DVFS",
		PolicyMix: "MIX", PolicyIdle: "IDLE", Policy(9): "Policy(9)",
	} {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q", int(p), got)
		}
	}
}

func TestPolicyCapabilities(t *testing.T) {
	if !PolicyShut.CanShutdown() || !PolicyMix.CanShutdown() {
		t.Error("SHUT/MIX must be able to shut down")
	}
	if PolicyDvfs.CanShutdown() || PolicyIdle.CanShutdown() || PolicyNone.CanShutdown() {
		t.Error("DVFS/IDLE/NONE must not shut down")
	}
	if !PolicyDvfs.CanScale() || !PolicyMix.CanScale() {
		t.Error("DVFS/MIX must scale")
	}
	if PolicyShut.CanScale() || PolicyIdle.CanScale() {
		t.Error("SHUT/IDLE must not scale")
	}
}

func TestPolicyModelLadders(t *testing.T) {
	dv := CuriePolicyModel(PolicyDvfs)
	if dv.Ladder.Min() != dvfs.F1200 || dv.Ladder.Max() != dvfs.F2700 {
		t.Errorf("DVFS ladder = %v", dv.Ladder)
	}
	if dv.Deg.DegMin() != dvfs.DegMinCommon {
		t.Errorf("DVFS degMin = %v", dv.Deg.DegMin())
	}
	mx := CuriePolicyModel(PolicyMix)
	if mx.Ladder.Min() != dvfs.F2000 || mx.Ladder.Max() != dvfs.F2700 {
		t.Errorf("MIX ladder = %v (floor must be 2.0 GHz)", mx.Ladder)
	}
	if mx.Deg.DegMin() != dvfs.DegMinMix {
		t.Errorf("MIX degMin = %v", mx.Deg.DegMin())
	}
	for _, p := range []Policy{PolicyNone, PolicyShut, PolicyIdle} {
		pm := CuriePolicyModel(p)
		if len(pm.Ladder) != 1 || pm.Ladder.Max() != dvfs.F2700 {
			t.Errorf("%v ladder = %v, want nominal only", p, pm.Ladder)
		}
		if pm.Deg.Factor(dvfs.F2700) != 1 {
			t.Errorf("%v degradation at nominal = %v", p, pm.Deg.Factor(dvfs.F2700))
		}
	}
}

func TestNewPolicyModelErrors(t *testing.T) {
	if _, err := NewPolicyModel(PolicyDvfs, nil, 1.63, 1.29, 0); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := NewPolicyModel(Policy(42), power.CurieProfile(), 1.63, 1.29, 0); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewPolicyModel(PolicyMix, power.CurieProfile(), 1.63, 1.29, 9999); err == nil {
		t.Error("floor above the ladder accepted")
	}
	if _, err := NewPolicyModel(PolicyDvfs, power.CurieProfile(), 0.5, 1.29, 0); err == nil {
		t.Error("degMin < 1 accepted")
	}
}

func smallCurie() *cluster.Cluster {
	// 2 racks x 5 chassis x 18 nodes = 180 nodes, Curie constants.
	topo := cluster.Topology{Racks: 2, ChassisPerRack: 5, NodesPerChassis: 18, CoresPerNode: 16}
	c, err := cluster.New(topo, power.CurieProfile(), cluster.CurieOverhead())
	if err != nil {
		panic(err)
	}
	return c
}

func TestPlanOfflineNoCapOrPassivePolicies(t *testing.T) {
	c := smallCurie()
	for _, p := range []Policy{PolicyNone, PolicyIdle, PolicyDvfs} {
		plan := PlanOffline(c, CuriePolicyModel(p), power.CapFraction(0.5, c.MaxPower()), true, nil)
		if plan.OffNodes != nil {
			t.Errorf("%v planned a shutdown: %d nodes", p, len(plan.OffNodes))
		}
	}
	plan := PlanOffline(c, CuriePolicyModel(PolicyShut), power.NoCap, true, nil)
	if plan.OffNodes != nil {
		t.Error("uncapped plan reserved nodes")
	}
}

func TestPlanOfflineShut(t *testing.T) {
	c := smallCurie()
	cap := power.CapFraction(0.6, c.MaxPower())
	plan := PlanOffline(c, CuriePolicyModel(PolicyShut), cap, true, nil)
	if plan.Mechanism != dvfs.MechanismShutdown {
		t.Errorf("mechanism = %v", plan.Mechanism)
	}
	if len(plan.OffNodes) == 0 {
		t.Fatal("no nodes planned at 60% cap")
	}
	if plan.PlannedSaving < plan.NeededSaving {
		t.Errorf("saving %v < need %v", plan.PlannedSaving, plan.NeededSaving)
	}
	// The remaining nodes, all busy at nominal, must fit in the cap:
	// simulate by powering off exactly the plan.
	for _, id := range plan.OffNodes {
		if err := c.PowerOff(id); err != nil {
			t.Fatal(err)
		}
	}
	topo := c.Topology()
	for id := 0; id < topo.Nodes(); id++ {
		if c.State(cluster.NodeID(id)) == cluster.StateIdle {
			if err := c.Occupy(cluster.NodeID(id), topo.CoresPerNode, dvfs.F2700); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := c.Power(); !cap.Allows(got) {
		t.Errorf("all-busy survivors draw %v > cap %v", got, cap)
	}
}

func TestPlanOfflineShutGroupsChassis(t *testing.T) {
	c := smallCurie()
	plan := PlanOffline(c, CuriePolicyModel(PolicyShut), power.CapFraction(0.5, c.MaxPower()), true, nil)
	topo := c.Topology()
	perChassis := map[int]int{}
	for _, id := range plan.OffNodes {
		perChassis[topo.ChassisOf(id)]++
	}
	full := 0
	for _, n := range perChassis {
		if n == topo.NodesPerChassis {
			full++
		}
	}
	if full == 0 {
		t.Errorf("50%% cap plan completed no chassis (%d nodes over %d chassis)",
			len(plan.OffNodes), len(perChassis))
	}
	// Grouped planning must not need more nodes than scattered planning.
	scat := PlanOffline(c, CuriePolicyModel(PolicyShut), power.CapFraction(0.5, c.MaxPower()), false, nil)
	if len(plan.OffNodes) > len(scat.OffNodes) {
		t.Errorf("grouped plan uses %d nodes, scattered %d — bonus wasted",
			len(plan.OffNodes), len(scat.OffNodes))
	}
}

func TestPlanOfflineMixCombinedRegime(t *testing.T) {
	c := smallCurie()
	pm := CuriePolicyModel(PolicyMix)
	// All nodes at the 2.0 GHz floor draw 269 W: fraction 269/358 = 0.751
	// of nominal. A 60% cap is below that => combined regime.
	plan := PlanOffline(c, pm, power.CapFraction(0.6, c.MaxPower()), true, nil)
	if !plan.CombineBoth {
		t.Fatalf("60%% cap should combine both mechanisms (Section VI-B: below 75%%)")
	}
	if len(plan.OffNodes) == 0 {
		t.Fatal("combined regime planned no shutdown")
	}
	if plan.AssumedBusy != c.Profile().Busy(dvfs.F2000) {
		t.Errorf("assumed busy = %v, want the 2.0 GHz draw", plan.AssumedBusy)
	}

	// At 80% the cap is above the all-at-floor draw; rho < 0 picks pure
	// shutdown.
	plan80 := PlanOffline(c, pm, power.CapFraction(0.8, c.MaxPower()), true, nil)
	if plan80.CombineBoth {
		t.Error("80% cap combined both mechanisms")
	}
	if plan80.Mechanism != dvfs.MechanismShutdown {
		t.Errorf("80%% mechanism = %v, want shutdown (rho=%v)", plan80.Mechanism, plan80.Rho)
	}
	if len(plan80.OffNodes) == 0 {
		t.Error("80% cap planned no shutdown")
	}
	// MIX at a lower cap must shut down at least as many nodes.
	if len(plan.OffNodes) < len(plan80.OffNodes) {
		t.Errorf("60%% cap plans %d nodes < 80%% cap %d", len(plan.OffNodes), len(plan80.OffNodes))
	}
}

func TestPlanOfflineRespectsEligibility(t *testing.T) {
	c := smallCurie()
	topo := c.Topology()
	// Only the second rack is eligible.
	eligible := func(id cluster.NodeID) bool { return topo.RackOf(id) == 1 }
	plan := PlanOffline(c, CuriePolicyModel(PolicyShut), power.CapFraction(0.3, c.MaxPower()), true, eligible)
	for _, id := range plan.OffNodes {
		if topo.RackOf(id) != 1 {
			t.Fatalf("ineligible node %d planned", id)
		}
	}
	// A 30% cap on half the machine cannot be met: the plan saturates
	// eligibility rather than looping forever.
	if len(plan.OffNodes) != topo.NodesPerRack() {
		t.Errorf("plan size = %d, want all %d eligible nodes", len(plan.OffNodes), topo.NodesPerRack())
	}
}

func TestPlanOfflineTrimsBonusNodes(t *testing.T) {
	c := smallCurie()
	prof := c.Profile()
	// Need exactly the saving of one full chassis (6692 W): the grouped
	// plan should use one chassis (18 nodes), while the scattered plan
	// needs ceil(6692/344) = 20 singles.
	needW := 6692.0
	capW := float64(wattsAllBusy(c, prof.Max())) - needW
	grouped := PlanOffline(c, CuriePolicyModel(PolicyShut), power.CapWatts(power.Watts(capW)), true, nil)
	scattered := PlanOffline(c, CuriePolicyModel(PolicyShut), power.CapWatts(power.Watts(capW)), false, nil)
	if len(grouped.OffNodes) != 18 {
		t.Errorf("grouped plan = %d nodes, want 18 (one chassis)", len(grouped.OffNodes))
	}
	if len(scattered.OffNodes) != 20 {
		t.Errorf("scattered plan = %d nodes, want 20", len(scattered.OffNodes))
	}
}

func capConst(c power.Cap) func(dvfs.Freq) power.Cap {
	return func(dvfs.Freq) power.Cap { return c }
}

func TestSelectFreqNoneAlwaysNominal(t *testing.T) {
	c := smallCurie()
	pm := CuriePolicyModel(PolicyNone)
	f, ok := SelectFreqUnderCap(c, pm, []cluster.NodeID{0}, capConst(power.CapWatts(1)))
	if !ok || f != dvfs.F2700 {
		t.Errorf("NONE SelectFreq = %v,%v", f, ok)
	}
}

func TestSelectFreqDvfsLowersUntilFit(t *testing.T) {
	c := smallCurie()
	pm := CuriePolicyModel(PolicyDvfs)
	nodes := []cluster.NodeID{0, 1}

	// Budget that admits the two nodes at 1.8 GHz but not at 2.0 GHz.
	base := c.Power()
	budget := base + 2*power.Watts(248-117) // idle -> 1.8 GHz uplift
	f, ok := SelectFreqUnderCap(c, pm, nodes, capConst(power.CapWatts(budget)))
	if !ok || f != dvfs.F1800 {
		t.Errorf("SelectFreq = %v,%v want 1.8 GHz", f, ok)
	}

	// Generous budget: nominal.
	f, ok = SelectFreqUnderCap(c, pm, nodes, capConst(power.CapWatts(base+1000)))
	if !ok || f != dvfs.F2700 {
		t.Errorf("SelectFreq = %v,%v want nominal", f, ok)
	}

	// Budget below even 1.2 GHz: impossible.
	if _, ok := SelectFreqUnderCap(c, pm, nodes, capConst(power.CapWatts(base))); ok {
		t.Error("SelectFreq fit a zero-headroom budget")
	}
}

func TestSelectFreqShutProbesOnlyNominal(t *testing.T) {
	c := smallCurie()
	pm := CuriePolicyModel(PolicyShut)
	base := c.Power()
	// Headroom enough for 1.2 GHz but not for nominal: SHUT must fail.
	budget := base + power.Watts(193-117+1)
	if _, ok := SelectFreqUnderCap(c, pm, []cluster.NodeID{0}, capConst(power.CapWatts(budget))); ok {
		t.Error("SHUT downclocked a job")
	}
	// And succeed with nominal headroom.
	f, ok := SelectFreqUnderCap(c, pm, []cluster.NodeID{0}, capConst(power.CapWatts(base+242)))
	if !ok || f != dvfs.F2700 {
		t.Errorf("SHUT SelectFreq = %v,%v", f, ok)
	}
}

func TestSelectFreqMixRespectsFloor(t *testing.T) {
	c := smallCurie()
	pm := CuriePolicyModel(PolicyMix)
	base := c.Power()
	// Headroom for 1.2 GHz only: MIX may not go below 2.0 GHz => fail.
	budget := base + power.Watts(193-117+1)
	if _, ok := SelectFreqUnderCap(c, pm, []cluster.NodeID{0}, capConst(power.CapWatts(budget))); ok {
		t.Error("MIX went below its 2.0 GHz floor")
	}
	// Headroom for exactly 2.0 GHz: succeed at the floor.
	budget = base + power.Watts(269-117)
	f, ok := SelectFreqUnderCap(c, pm, []cluster.NodeID{0}, capConst(power.CapWatts(budget)))
	if !ok || f != dvfs.F2000 {
		t.Errorf("MIX SelectFreq = %v,%v want 2.0 GHz", f, ok)
	}
}

func TestSelectFreqUsesPerFreqCap(t *testing.T) {
	c := smallCurie()
	pm := CuriePolicyModel(PolicyDvfs)
	base := c.Power()
	// The span at low frequencies overlaps a tight future window: caps
	// tighten as frequency drops, so only high frequencies succeed.
	capFor := func(f dvfs.Freq) power.Cap {
		if f >= dvfs.F2400 {
			return power.CapWatts(base + 500)
		}
		return power.CapWatts(1) // low frequency => longer span => tight window
	}
	f, ok := SelectFreqUnderCap(c, pm, []cluster.NodeID{0}, capFor)
	if !ok || f < dvfs.F2400 {
		t.Errorf("SelectFreq = %v,%v want >= 2.4 GHz", f, ok)
	}
}

func TestSelectFreqPartialNodeFreeRide(t *testing.T) {
	c := smallCurie()
	pm := CuriePolicyModel(PolicyShut)
	if err := c.Occupy(0, 4, dvfs.F2700); err != nil {
		t.Fatal(err)
	}
	// Zero headroom, but the job fills an already-busy node: allowed.
	budget := c.Power()
	f, ok := SelectFreqUnderCap(c, pm, []cluster.NodeID{0}, capConst(power.CapWatts(budget)))
	if !ok || f != dvfs.F2700 {
		t.Errorf("partial-node job rejected: %v,%v", f, ok)
	}
}

func TestOptimalClusterFreq(t *testing.T) {
	c := smallCurie()
	pm := CuriePolicyModel(PolicyDvfs)
	if f, ok := OptimalClusterFreq(c, pm, power.NoCap); !ok || f != dvfs.F2700 {
		t.Errorf("uncapped optimal = %v,%v", f, ok)
	}
	// Budget = all nodes busy at 2.0 GHz plus overheads.
	budget := wattsAllBusy(c, c.Profile().Busy(dvfs.F2000))
	f, ok := OptimalClusterFreq(c, pm, power.CapWatts(budget))
	if !ok || f != dvfs.F2000 {
		t.Errorf("optimal = %v,%v want 2.0 GHz", f, ok)
	}
	// Budget below all-idle: impossible.
	if _, ok := OptimalClusterFreq(c, pm, power.CapWatts(1)); ok {
		t.Error("impossible budget reported feasible")
	}
}

func TestCuriePolicyModelMixFloorConstant(t *testing.T) {
	if DefaultMixFloor != dvfs.F2000 {
		t.Errorf("DefaultMixFloor = %v", DefaultMixFloor)
	}
}
