package ascii

import (
	"strings"
	"testing"
)

func TestStackedAreaBasics(t *testing.T) {
	s := []Series{
		{Label: "low", Values: []float64{1, 1, 1, 1}, Rune: '.'},
		{Label: "high", Values: []float64{0, 1, 2, 3}, Rune: '#'},
	}
	out := StackedArea(s, 8, 4, 0, 0, "title", "units")
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, ".=low") || !strings.Contains(out, "#=high") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, ".") || !strings.Contains(out, "#") {
		t.Errorf("missing fills:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 4 rows + axis + legend
	if len(lines) != 7 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestStackedAreaRefLine(t *testing.T) {
	s := []Series{{Label: "x", Values: []float64{1, 1}, Rune: '#'}}
	out := StackedArea(s, 4, 8, 10, 8, "", "W")
	if !strings.Contains(out, "=") {
		t.Errorf("reference line not rendered:\n%s", out)
	}
	if !strings.Contains(out, "==powercap") {
		t.Errorf("reference legend missing:\n%s", out)
	}
}

func TestStackedAreaMismatchedSeries(t *testing.T) {
	s := []Series{
		{Label: "a", Values: []float64{1, 2}, Rune: 'a'},
		{Label: "b", Values: []float64{1}, Rune: 'b'},
	}
	out := StackedArea(s, 4, 4, 0, 0, "", "")
	if !strings.Contains(out, "want 2") {
		t.Errorf("mismatch not reported: %q", out)
	}
}

func TestStackedAreaEmpty(t *testing.T) {
	if out := StackedArea(nil, 4, 4, 0, 0, "", ""); out != "" {
		t.Errorf("nil series rendered %q", out)
	}
	s := []Series{{Label: "a", Values: nil, Rune: 'a'}}
	if out := StackedArea(s, 4, 4, 0, 0, "", ""); out != "" {
		t.Errorf("empty values rendered %q", out)
	}
	if out := StackedArea(s, 0, 4, 0, 0, "", ""); out != "" {
		t.Errorf("zero width rendered %q", out)
	}
}

func TestResample(t *testing.T) {
	got := resample([]float64{1, 3, 5, 7}, 2)
	if got[0] != 2 || got[1] != 6 {
		t.Errorf("downsample = %v, want [2 6]", got)
	}
	got = resample([]float64{4}, 3)
	for _, v := range got {
		if v != 4 {
			t.Errorf("upsample = %v", got)
		}
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]Bar{
		{Label: "40%/MIX", Value: 0.5},
		{Label: "100%/None", Value: 1.0},
		{Label: "over", Value: 1.5},
		{Label: "neg", Value: -0.2},
	}, 10, 1, "Work")
	if !strings.Contains(out, "Work") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "40%/MIX") {
		t.Error("missing label")
	}
	if !strings.Contains(out, "|#####     | 0.500") {
		t.Errorf("half bar wrong:\n%s", out)
	}
	if !strings.Contains(out, "|##########| 1.500") {
		t.Errorf("clamped bar wrong:\n%s", out)
	}
	if !strings.Contains(out, "|          | -0.200") {
		t.Errorf("negative bar wrong:\n%s", out)
	}
}

func TestScatterPlot(t *testing.T) {
	pts := []ScatterPoint{
		{X: 1, Y: 100, Tag: "linpack"},
		{X: 2, Y: 200, Tag: "stream"},
	}
	out := ScatterPlot(pts, 20, 10, 0, 0, 0, 0, "Fig3")
	if !strings.Contains(out, "Fig3") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "l") || !strings.Contains(out, "s") {
		t.Errorf("markers missing:\n%s", out)
	}
	if ScatterPlot(nil, 20, 10, 0, 0, 0, 0, "") != "" {
		t.Error("empty points rendered something")
	}
}

func TestScatterPlotDegenerateRanges(t *testing.T) {
	pts := []ScatterPoint{{X: 5, Y: 5, Tag: "x"}}
	out := ScatterPlot(pts, 10, 5, 0, 0, 0, 0, "")
	if !strings.Contains(out, "x") {
		t.Errorf("single point missing:\n%s", out)
	}
}
