package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden-file tests for the trace pipeline CLI: generation is seeded
// and the transforms are deterministic, so the summaries (and the SWF
// stream itself) are bit-stable.
//
// Regenerate after an intentional change with:
//
//	go test ./cmd/tracegen -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its golden file (run with -update if intentional)\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// genArgs generates a small deterministic interval (a 2-rack machine
// keeps the test fast).
func genArgs(path string) []string {
	return []string{"gen", "-kind", "smalljob", "-seed", "1002", "-cores", "2880", "-o", path}
}

func TestGoldenGenAndSummarize(t *testing.T) {
	dir := t.TempDir()
	swf := filepath.Join(dir, "small.swf")

	var out, stats bytes.Buffer
	if err := run(genArgs(swf), &out, &stats); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "gen_stats", stats.Bytes())

	// The summarize subcommand re-derives the stats from the file
	// through the streaming pipeline.
	out.Reset()
	if err := run([]string{"summarize", swf}, &out, &stats); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "summarize", out.Bytes())
}

func TestGoldenWindowRescaleChain(t *testing.T) {
	dir := t.TempDir()
	swf := filepath.Join(dir, "small.swf")
	windowed := filepath.Join(dir, "window.swf")
	rescaled := filepath.Join(dir, "rescaled.swf")

	var out, stats bytes.Buffer
	if err := run(genArgs(swf), &out, &stats); err != nil {
		t.Fatal(err)
	}

	stats.Reset()
	if err := run([]string{"window", "-in", swf, "-start", "3600", "-end", "10800", "-o", windowed}, &out, &stats); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "window_stats", stats.Bytes())

	stats.Reset()
	if err := run([]string{"rescale", "-in", windowed, "-time", "0.5", "-cores", "2880:1440", "-max", "200", "-o", rescaled}, &out, &stats); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "rescale_stats", stats.Bytes())

	// The final artifact itself is golden: the whole gen -> window ->
	// rescale chain is deterministic byte for byte.
	data, err := os.ReadFile(rescaled)
	if err != nil {
		t.Fatal(err)
	}
	// The comment header embeds the temp path; strip comment lines so
	// the golden is location-independent.
	var b strings.Builder
	for _, line := range strings.SplitAfter(string(data), "\n") {
		if strings.HasPrefix(line, ";") {
			continue
		}
		b.WriteString(line)
	}
	checkGolden(t, "rescaled_swf", []byte(b.String()))

	out.Reset()
	if err := run([]string{"summarize", rescaled}, &out, &stats); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "rescaled_summary", out.Bytes())
}

func TestErrors(t *testing.T) {
	var out, stats bytes.Buffer
	cases := [][]string{
		{"frobnicate"},                      // unknown subcommand
		{"window", "-in", ""},               // missing input
		{"rescale", "-in", "x.swf"},         // nothing to do
		{"summarize"},                       // missing operand
		{"gen", "-kind", "mystery"},         // unknown kind
		{"summarize", "definitely-missing"}, // unreadable file
	}
	for i, args := range cases {
		if err := run(args, &out, &stats); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
	// The unknown-kind error enumerates the registry.
	err := run([]string{"gen", "-kind", "mystery"}, &out, &stats)
	if err == nil || !strings.Contains(err.Error(), "medianjob|smalljob") {
		t.Errorf("unknown-kind error %v does not enumerate registered kinds", err)
	}
}
