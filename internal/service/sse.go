package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// sseWriter serializes one SSE response between the event follower and
// the keepalive ticker goroutine — two writers interleaving frames on
// one connection would corrupt the stream. The first write error
// sticks: later frames are dropped and the follower unwinds.
type sseWriter struct {
	mu  sync.Mutex
	w   http.ResponseWriter
	f   http.Flusher
	err error
}

func newSSEWriter(w http.ResponseWriter, f http.Flusher) *sseWriter {
	return &sseWriter{w: w, f: f}
}

func (sw *sseWriter) locked(fn func() error) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.err != nil {
		return sw.err
	}
	sw.err = fn()
	return sw.err
}

// event writes one typed SSE event frame and flushes it.
func (sw *sseWriter) event(typ string, data []byte) error {
	return sw.locked(func() error {
		if _, err := fmt.Fprintf(sw.w, "event: %s\ndata: %s\n\n", typ, data); err != nil {
			return err
		}
		sw.f.Flush()
		return nil
	})
}

// comment writes one SSE comment frame (": text") — invisible to
// EventSource consumers, but enough traffic to keep idle proxies and
// LBs from reaping the connection.
func (sw *sseWriter) comment(text string) error {
	return sw.locked(func() error {
		if _, err := fmt.Fprintf(sw.w, ": %s\n\n", text); err != nil {
			return err
		}
		sw.f.Flush()
		return nil
	})
}

// serveSSE is the shared SSE loop behind the daemon's and gateway's
// event endpoints: set the stream headers, start the keepalive ticker
// (every <= 0 disables it), and run the follower until it returns or
// the request context ends. Authorization must have happened already.
func serveSSE(w http.ResponseWriter, r *http.Request, every time.Duration,
	follow func(ctx context.Context, emit func(Event) error) error) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, &Error{Status: 500, Msg: "streaming unsupported by this connection"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(200)
	flusher.Flush()

	sw := newSSEWriter(w, flusher)
	if every > 0 {
		ctx, cancel := context.WithCancel(r.Context())
		done := make(chan struct{})
		// The ticker must be joined, not just cancelled: a keepalive
		// Flush racing the server's end-of-request close corrupts the
		// response state. Returning only after done closes guarantees
		// no frame is written once the handler has unwound.
		defer func() {
			cancel()
			<-done
		}()
		go func() {
			defer close(done)
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if sw.comment("keepalive") != nil {
						return
					}
				}
			}
		}()
	}
	_ = follow(r.Context(), func(e Event) error {
		data, err := json.Marshal(e)
		if err != nil {
			return err
		}
		return sw.event(e.Type, data)
	})
}
