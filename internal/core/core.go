package core
